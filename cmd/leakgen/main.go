// Command leakgen fabricates the synthetic measurement dataset: a capture
// of HTTP packets from a population of Android applications calibrated to
// the paper's Tables I-III and Figure 2, plus the device identity file the
// other tools need to re-derive ground truth.
//
// Usage:
//
//	leakgen -out capture.jsonl -device device.json [-seed 1]
//	        [-apps 1188] [-packets 107859] [-format jsonl|binary]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"leaksig/internal/sensitive"
	"leaksig/internal/trafficgen"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("leakgen: ")
	var (
		seed    = flag.Int64("seed", 1, "generation seed")
		apps    = flag.Int("apps", 1188, "number of applications")
		packets = flag.Int("packets", 107859, "total packet budget")
		out     = flag.String("out", "capture.jsonl", "capture output path")
		device  = flag.String("device", "device.json", "device identity output path")
		format  = flag.String("format", "jsonl", "capture format: jsonl or binary")
		orgs    = flag.String("orgs", "", "optional path for the organization/IP-block registry (WHOIS data)")
	)
	flag.Parse()

	ds := trafficgen.Generate(trafficgen.Config{
		Seed:         *seed,
		NumApps:      *apps,
		TotalPackets: *packets,
	})

	switch *format {
	case "jsonl":
		if err := ds.Capture.SaveJSONL(*out); err != nil {
			log.Fatalf("writing capture: %v", err)
		}
	case "binary":
		if err := ds.Capture.SaveBinary(*out); err != nil {
			log.Fatalf("writing capture: %v", err)
		}
	default:
		log.Fatalf("unknown format %q (want jsonl or binary)", *format)
	}

	df, err := os.Create(*device)
	if err != nil {
		log.Fatalf("creating device file: %v", err)
	}
	enc := json.NewEncoder(df)
	enc.SetIndent("", "  ")
	if err := enc.Encode(ds.Device); err != nil {
		log.Fatalf("writing device file: %v", err)
	}
	if err := df.Close(); err != nil {
		log.Fatalf("closing device file: %v", err)
	}

	if *orgs != "" {
		blocks := ds.Universe.OrgBlocks()
		reg := make(map[string]string, len(blocks))
		for org, b := range blocks {
			reg[org] = b.String()
		}
		of, err := os.Create(*orgs)
		if err != nil {
			log.Fatalf("creating orgs file: %v", err)
		}
		enc := json.NewEncoder(of)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reg); err != nil {
			log.Fatalf("writing orgs file: %v", err)
		}
		if err := of.Close(); err != nil {
			log.Fatalf("closing orgs file: %v", err)
		}
		fmt.Printf("orgs:    %s (%d allocations)\n", *orgs, len(reg))
	}

	oracle := sensitive.NewOracle(ds.Device)
	susp := 0
	for _, p := range ds.Capture.Packets {
		if oracle.IsSensitive(p) {
			susp++
		}
	}
	fmt.Printf("generated %d packets from %d apps (%d suspicious, %d normal)\n",
		ds.Capture.Len(), len(ds.Apps), susp, ds.Capture.Len()-susp)
	fmt.Printf("capture: %s (%s)\ndevice:  %s\n", *out, *format, *device)
}
