// Command leakeval reproduces the paper's evaluation artifacts from the
// synthetic dataset: Tables I-III and Figures 2 and 4.
//
// Usage:
//
//	leakeval -all                 # everything (Figure 4 takes ~15s)
//	leakeval -table 1 -table 3    # specific tables
//	leakeval -figure 4 -repeats 3 # averaged detection sweep
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"

	"leaksig/internal/core"
	"leaksig/internal/detect"
	"leaksig/internal/eval"
	"leaksig/internal/report"
	"leaksig/internal/signature"
	"leaksig/internal/trafficgen"
)

type intList []int

func (l *intList) String() string { return fmt.Sprint([]int(*l)) }
func (l *intList) Set(s string) error {
	n, err := strconv.Atoi(s)
	if err != nil {
		return err
	}
	*l = append(*l, n)
	return nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("leakeval: ")
	var (
		tables      intList
		figures     intList
		all         = flag.Bool("all", false, "run every table and figure")
		seed        = flag.Int64("seed", 1, "dataset seed")
		apps        = flag.Int("apps", 1188, "number of applications")
		packets     = flag.Int("packets", 107859, "total packet budget")
		repeats     = flag.Int("repeats", 1, "Figure 4: average over this many sample draws")
		sample      = flag.Int64("sample-seed", 42, "Figure 4: sampling seed")
		compare     = flag.Bool("compare", false, "also compare signature classes (conjunction/subsequence/bayes) at N=300")
		adversarial = flag.Bool("adversarial", false, "score decode-view matching against encoded/compressed leak variants")
	)
	flag.Var(&tables, "table", "table to reproduce (1, 2 or 3); repeatable")
	flag.Var(&figures, "figure", "figure to reproduce (2 or 4); repeatable")
	flag.Parse()

	if *all {
		tables = intList{1, 2, 3}
		figures = intList{2, 4}
	}
	if len(tables) == 0 && len(figures) == 0 && !*compare && !*adversarial {
		flag.Usage()
		log.Fatal("nothing selected; use -all, -table, -figure, -compare or -adversarial")
	}

	if *adversarial {
		if err := runAdversarial(*seed); err != nil {
			log.Fatal(err)
		}
		if len(tables) == 0 && len(figures) == 0 && !*compare {
			return
		}
		fmt.Println()
	}

	fmt.Println("building dataset...")
	env := eval.NewEnv(trafficgen.Config{Seed: *seed, NumApps: *apps, TotalPackets: *packets})
	fmt.Println(env.Describe())
	fmt.Println()

	for _, t := range tables {
		switch t {
		case 1:
			tbl := report.NewTable("Table I — applications per dangerous permission combination",
				"combination", "# apps")
			for _, r := range env.TableI() {
				tbl.AddRow(r.Combo.String(), r.Apps)
			}
			fmt.Println(tbl.String())
		case 2:
			tbl := report.NewTable("Table II — HTTP packet destinations",
				"host", "# packets", "# apps")
			for _, r := range env.TableII(26) {
				tbl.AddRow(r.Host, r.Packets, r.Apps)
			}
			fmt.Println(tbl.String())
		case 3:
			tbl := report.NewTable("Table III — sensitive information",
				"kind", "# packets", "# apps", "# destinations")
			for _, r := range env.TableIII() {
				tbl.AddRow(r.Kind.String(), r.Packets, r.Apps, r.Hosts)
			}
			fmt.Println(tbl.String())
		default:
			log.Fatalf("unknown table %d", t)
		}
	}

	for _, f := range figures {
		switch f {
		case 2:
			fig := env.Figure2()
			fmt.Println("Figure 2 — cumulative frequency distribution of destinations per app")
			fmt.Printf("  mean %.1f, max %d, %0.f%% have 1, %0.f%% <=10, %0.f%% <=16\n",
				fig.Mean, fig.Max, fig.FracOne*100, fig.FracLE10*100, fig.FracLE16*100)
			for _, marker := range []int{1, 2, 4, 8, 10, 16, 24, 32, 64, fig.Max} {
				frac := 0.0
				for _, p := range fig.Points {
					if p.Value <= marker {
						frac = p.Fraction
					}
				}
				fmt.Printf("  <=%-3d %6.1f%%\n", marker, frac*100)
			}
			fmt.Println()
		case 4:
			fmt.Println("Figure 4 — detection rate sweep (this runs the full pipeline; ~15s)")
			pts := env.Figure4(eval.Figure4Config{SampleSeed: *sample, Repeats: *repeats})
			xs := make([]int, len(pts))
			tp := make([]float64, len(pts))
			fn := make([]float64, len(pts))
			fp := make([]float64, len(pts))
			tbl := report.NewTable("", "N", "signatures", "TP%", "FN%", "FP%")
			for i, p := range pts {
				xs[i] = p.N
				tp[i], fn[i], fp[i] = p.TP, p.FN, p.FP
				tbl.AddRow(p.N, p.Signatures,
					fmt.Sprintf("%.2f", p.TP), fmt.Sprintf("%.2f", p.FN), fmt.Sprintf("%.3f", p.FP))
			}
			fmt.Println(tbl.String())
			fmt.Println(report.Series("detection rates vs N", xs,
				map[string][]float64{"true positive": tp, "false negative": fn, "false positive": fp},
				[]string{"true positive", "false negative", "false positive"}))
		default:
			log.Fatalf("unknown figure %d", f)
		}
	}

	if *compare {
		fmt.Println("Signature-class comparison at N=300 (paper \u00a7VI future work)")
		rows := env.CompareSignatureTypes(300, *sample, core.Config{})
		tbl := report.NewTable("", "class", "signatures/tokens", "TP%", "FN%", "FP%")
		for _, r := range rows {
			tbl.AddRow(r.Type, r.Signatures,
				fmt.Sprintf("%.2f", r.TP), fmt.Sprintf("%.2f", r.FN), fmt.Sprintf("%.3f", r.FP))
		}
		fmt.Println(tbl.String())
	}
}

// runAdversarial scores decode-view matching against the adversarial
// capture: identifier leaks shipped base64/hex/URL-encoded and
// gzip-compressed. Three signature postures run over the same packets —
// a cleartext conjunction without views, the same conjunction with every
// view enabled, and a subsequence-kind signature with every view — and
// the per-encoding detection fractions are printed. The run fails (for
// CI smoke use) unless views recover 100% detection of every encoding
// the view-less posture misses.
func runAdversarial(seed int64) error {
	adv := trafficgen.GenerateAdversarial(trafficgen.AdversarialConfig{Seed: seed, PerEncoding: 16})
	views := signature.KnownViews()

	conjPlain := trafficgen.AdversarialSignature(adv.Device, nil)
	conjViews := trafficgen.AdversarialSignature(adv.Device, views)
	subseq := trafficgen.AdversarialSignature(adv.Device, views)
	subseq.Kind = signature.KindSubsequence

	postures := []struct {
		name string
		eng  *detect.Engine
	}{
		{"conjunction", detect.NewEngine(&signature.Set{Signatures: []*signature.Signature{conjPlain}})},
		{"conjunction+views", detect.NewEngine(&signature.Set{Signatures: []*signature.Signature{conjViews}})},
		{"subsequence+views", detect.NewEngine(&signature.Set{Signatures: []*signature.Signature{subseq}})},
	}

	total := make(map[trafficgen.Encoding]int)
	hits := make([]map[trafficgen.Encoding]int, len(postures))
	for pi := range postures {
		hits[pi] = make(map[trafficgen.Encoding]int)
	}
	for i, p := range adv.Packets {
		enc := adv.Encodings[i]
		total[enc]++
		for pi, post := range postures {
			if post.eng.Matches(p) {
				hits[pi][enc]++
			}
		}
	}

	fmt.Println("Adversarial encodings — detection fraction per signature posture")
	tbl := report.NewTable("", "encoding", postures[0].name, postures[1].name, postures[2].name)
	bad := false
	for _, enc := range trafficgen.Encodings() {
		frac := func(pi int) string {
			return fmt.Sprintf("%.2f", float64(hits[pi][enc])/float64(total[enc]))
		}
		tbl.AddRow(string(enc), frac(0), frac(1), frac(2))
		// Views must fully recover every encoding, for both kinds; the
		// view-less posture must catch cleartext and miss the rest (if
		// it caught an encoded variant the encoding itself is broken).
		if hits[1][enc] != total[enc] || hits[2][enc] != total[enc] {
			bad = true
		}
		if enc == trafficgen.EncodingClear && hits[0][enc] != total[enc] {
			bad = true
		}
		if enc != trafficgen.EncodingClear && hits[0][enc] != 0 {
			bad = true
		}
	}
	fmt.Println(tbl.String())
	if bad {
		return fmt.Errorf("adversarial scenario failed: view-enabled postures must detect every encoding (table above)")
	}
	fmt.Println("PASS: decode views recover 100% detection of base64/hex/url/gzip leak variants")
	return nil
}
