// Command leakstream is the streaming detection daemon: it wires a
// signature server to the sharded matching engine and turns packet
// streams into verdict streams without ever restarting.
//
// Packets enter as NDJSON (the capture JSONL schema, one packet per
// line) on stdin and/or over HTTP; verdicts leave as NDJSON on stdout.
// With -server the daemon watches the signature server — long-polling
// its /wait endpoint, falling back to -poll interval polling — and hot
// reloads the engine on every publish, so new signatures take effect
// mid-stream with zero dropped packets.
//
// With -pool the daemon becomes multi-tenant: packets are routed to
// per-tenant engines (created lazily, evicted when idle, sharing the
// -shard-budget) keyed by the X-Leaksig-Tenant header, the ?tenant=
// query parameter, or each packet's app/host field per -tenant-by.
// Verdict lines then carry a "tenant" field and /stats aggregates
// across tenants.
//
// With -learn the daemon closes the generation loop: every packet the
// live signature set does not match is sampled into an embedded siggen
// learner, which periodically clusters the misses, distills candidate
// signatures, and auto-publishes accepted sets back to -server — the
// very server this daemon watches, so its own engine (and every other
// watcher) hot-reloads what it just learned. In pipe mode a final learn
// epoch runs at stdin EOF before exit.
//
// With -learn-tenants the learner additionally distills one named set
// per tenant (keyed by -tenant-by, or by the pool tenant key with
// -pool) and publishes each to -server under /sets/{tenant}/ with its
// own version sequence. In pool mode the daemon watches the server's
// whole set catalog: the default set reloads unpinned tenants, and each
// named set pins its tenant via ReloadTenant — so tenant A's learned
// signatures fire only on tenant A's traffic, the per-population
// isolation of the paper's per-module signatures. Signatures whose
// source clusters go stale are dropped from the next published versions
// (drift retirement), and the watchers converge off them automatically.
//
// Usage:
//
//	leakstream -server http://127.0.0.1:8700 < capture.jsonl > verdicts.jsonl
//	leakstream -sigs signatures.json -listen :8900
//	leakstream -sigs signatures.json -listen :8900 -pool -tenant-by app -idle 5m
//	leakstream -server http://127.0.0.1:8700 -learn < capture.jsonl > verdicts.jsonl
//	leakstream -server http://127.0.0.1:8700 -pool -learn -learn-tenants < capture.jsonl
//
// HTTP endpoints (with -listen):
//
//	POST /ingest — NDJSON packets in, queued for async matching;
//	               responds {"accepted":N,"rejected":M}
//	POST /match  — NDJSON packets in, NDJSON verdicts out (synchronous)
//	GET  /stats  — engine metrics snapshot as JSON; with -pool, the
//	               pool-wide aggregate, or one tenant via ?tenant=
//	GET  /metrics— Prometheus text exposition for the whole daemon
//	GET  /healthz— liveness
//	GET  /readyz — readiness: 503 until the first signature set is live
//
// The ops plane rides along on every posture: -tenant-rate imposes a
// per-tenant token-bucket intake limit ahead of the engines (policy per
// -rate-policy, drops surfaced as leaksig_intake_* series), -events-url
// ships leak verdicts, reloads, and publishes as batched NDJSON events
// without ever blocking intake, and -debug-addr opens a private
// listener with /metrics and /debug/pprof for operators.
//
// Robustness flags: -sig-cache persists every watch delivery as a
// last-known-good file, and a boot against an unreachable -server
// serves the cached sets immediately — /readyz answers 200
// "ready-degraded" and the leaksig_degraded gauge holds 1 until the
// server answers again. -checkpoint (with -learn) makes the embedded
// learner crash-safe. -faults (or LEAKSIG_FAULTS) injects deterministic
// chaos into outbound HTTP. SIGTERM drains the intake listener and
// engine rings, runs a final learn epoch, checkpoints, and flushes the
// event shipper before exit.
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"leaksig/internal/capture"
	"leaksig/internal/durable"
	"leaksig/internal/engine"
	"leaksig/internal/faultinject"
	"leaksig/internal/httpmodel"
	"leaksig/internal/obs"
	"leaksig/internal/obs/trace"
	"leaksig/internal/resilience"
	"leaksig/internal/siggen"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// loadFaults builds the chaos injector from -faults or, when the flag is
// empty, the LEAKSIG_FAULTS/FAULT_SEED environment.
func loadFaults(spec string) *faultinject.Injector {
	if spec != "" {
		cfg, err := faultinject.Parse(spec)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		return faultinject.New(cfg)
	}
	inj, err := faultinject.FromEnv()
	if err != nil {
		log.Fatalf("LEAKSIG_FAULTS: %v", err)
	}
	return inj
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("leakstream: ")
	var (
		server   = flag.String("server", "", "signature server base URL (hot reload via long poll)")
		sigsIn   = flag.String("sigs", "", "signature set file (static alternative to -server)")
		sigCache = flag.String("sig-cache", "", "last-known-good signature cache file: every watch delivery is persisted, and a boot against an unreachable -server serves the cached sets in degraded mode instead of refusing traffic")
		listen   = flag.String("listen", "", "HTTP ingest address (empty: stdin only)")
		shards   = flag.Int("shards", 0, "worker shards per engine (0: GOMAXPROCS)")
		batch    = flag.Int("batch", 0, "initial packets batched per dispatch (0: default; adapts between min/max)")
		queue    = flag.Int("queue", 0, "per-shard queue depth in packets (0: default)")
		poll     = flag.Duration("poll", 10*time.Second, "fallback poll interval with -server")
		statsInt = flag.Duration("stats", 0, "metrics reporting interval on stderr (0: off)")
		affinity = flag.String("affinity", "host", "shard affinity: host | none")

		pool        = flag.Bool("pool", false, "multi-tenant mode: one engine per tenant population")
		tenantBy    = flag.String("tenant-by", "app", "packet field keying tenants with -pool: app | host")
		idle        = flag.Duration("idle", 0, "evict tenants idle this long with -pool (0: never)")
		shardBudget = flag.Int("shard-budget", 0, "total shards across tenants with -pool (0: GOMAXPROCS)")
		// Tenant keys come from request headers and packet fields —
		// attacker-controlled in an exposed deployment — so the cap
		// defaults bounded: past it the least-recently-active tenant is
		// recycled rather than goroutines growing without limit.
		maxTenants = flag.Int("max-tenants", 1024, "live tenant cap with -pool, LRU-evicted past it (0: unlimited)")

		learn           = flag.Bool("learn", false, "sample unmatched flows into an online signature generator publishing back to -server")
		learnInterval   = flag.Duration("learn-interval", 30*time.Second, "generation epoch cadence with -learn")
		learnBenign     = flag.String("learn-benign", "", "benign capture (JSONL) for the -learn Bayes and FP gates")
		learnMinCluster = flag.Int("learn-min-cluster", 3, "cluster size a -learn signature needs")
		learnToken      = flag.String("learn-token", "", "bearer token for the -learn publish endpoint")
		learnTenants    = flag.Bool("learn-tenants", false, "with -learn: publish one named set per tenant (keyed by -tenant-by) alongside the global set")
		checkpoint      = flag.String("checkpoint", "", "with -learn: learner checkpoint file, restored on start and rewritten each epoch")
		faults          = flag.String("faults", "", `chaos injection spec for outbound HTTP, e.g. "seed=7,reset=0.1,latency_p=0.1,latency=20ms" (empty: read LEAKSIG_FAULTS)`)

		tenantRate  = flag.Float64("tenant-rate", 0, "per-tenant sustained intake limit in packets/sec (0: account only, never limit)")
		tenantBurst = flag.Float64("tenant-burst", 0, "per-tenant intake burst depth (0: one second of -tenant-rate)")
		ratePolicy  = flag.String("rate-policy", "drop", "over-limit intake policy: drop (shed silently, counted) | reject (error the line)")
		eventsURL   = flag.String("events-url", "", "ship structured events as batched NDJSON POSTs to this endpoint")
		eventsToken = flag.String("events-token", "", "bearer token for -events-url uploads")
		debugAddr   = flag.String("debug-addr", "", "private ops listener: /metrics, /healthz, /debug/flight, /debug/pprof")

		traceSample = flag.Int("trace-sample", 0, "head-sample one packet in N through the pipeline tracer (0: off; incoming trace IDs are always honored)")
		p99Breach   = flag.Duration("p99-breach", 0, "flight-dump trigger when engine p99 latency exceeds this (0: off)")
	)
	flag.Parse()

	var aff engine.Affinity
	switch *affinity {
	case "host":
		aff = engine.AffinityHost
	case "none":
		aff = engine.AffinityNone
	default:
		log.Fatalf("unknown affinity %q (want host or none)", *affinity)
	}
	if *tenantBy != "app" && *tenantBy != "host" {
		log.Fatalf("unknown -tenant-by %q (want app or host)", *tenantBy)
	}
	if *ratePolicy != "drop" && *ratePolicy != "reject" {
		log.Fatalf("unknown -rate-policy %q (want drop or reject)", *ratePolicy)
	}

	// The ops plane: a metrics registry every endpoint scrapes from, an
	// always-on intake limiter (pass-through below any -tenant-rate, so
	// per-tenant intake accounting exists even without enforcement), an
	// optional event shipper, and a readiness latch that trips when the
	// first signature set is live.
	reg := obs.NewRegistry()
	reg.Register(obs.BuildInfoCollector())
	inj := loadFaults(*faults)
	if inj != nil {
		log.Printf("chaos: %s", inj)
		reg.Register(obs.FaultCollector(inj))
	}
	limiter := obs.NewRateLimiter(obs.RateLimiterConfig{Rate: *tenantRate, Burst: *tenantBurst})
	reg.Register(limiter)
	var shipper *obs.Shipper
	if *eventsURL != "" {
		shipper = obs.NewShipper(obs.ShipperConfig{
			URL: *eventsURL, Token: *eventsToken, Node: "leakstream",
			HTTPClient: inj.Client(nil),
		})
		defer shipper.Close()
		reg.Register(shipper)
	}
	// The trace plane: a head-sampling tracer (always constructed — at
	// sample 0 it starts nothing but still adopts upstream trace IDs) and
	// an always-on flight recorder the engine feeds. Trigger conditions
	// ship as events when a shipper is wired.
	tracer := trace.NewTracer(*traceSample)
	flight := trace.NewFlight(engine.Config{Shards: *shards}.ShardCount(), 0)
	reg.Register(obs.TracerCollector(tracer))
	reg.Register(obs.FlightCollector(flight))
	if shipper != nil {
		flight.SetTrigger(func(reason string, ev trace.FlightEvent) {
			st := flight.Stats()
			shipper.Ship(obs.Event{
				Type:  "flight",
				Trace: ev.Trace,
				Detail: fmt.Sprintf("reason=%s kind=%s shard=%d value=%d held=%d recorded=%d",
					reason, ev.Kind, ev.Shard, ev.Value, st.Held, st.Recorded),
			})
		})
	}

	// ready latches once any signature set is live; degraded is raised
	// while the live sets came from the -sig-cache fallback rather than
	// the server, and clears on the first genuine watch delivery.
	var ready, degraded atomic.Bool
	reg.Register(obs.CollectorFunc(func(m *obs.MetricWriter) {
		var v float64
		if degraded.Load() {
			v = 1
		}
		m.Gauge("leaksig_degraded", "1 while serving cached signatures because the signature server is unreachable.", v)
	}))
	ops := &opsState{
		limiter:  limiter,
		keyFn:    tenantKeyFn(*tenantBy),
		reject:   *ratePolicy == "reject",
		reg:      reg,
		ready:    &ready,
		degraded: &degraded,
		tracer:   tracer,
		flight:   flight,
	}

	set := &signature.Set{}
	if *sigsIn != "" {
		f, err := os.Open(*sigsIn)
		if err != nil {
			log.Fatalf("opening signatures: %v", err)
		}
		set, err = signature.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("reading signatures: %v", err)
		}
	}

	out := newVerdictWriter(os.Stdout)
	cfg := engine.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		BatchSize:  *batch,
		Affinity:   aff,
		Flight:     flight,
	}

	// With -learn, an embedded siggen service samples every miss and
	// auto-publishes generated sets back into the watched server: the
	// closed detect → cluster → generate → publish → hot-reload loop in
	// one process.
	var svc *siggen.Service
	if *learn {
		if *server == "" {
			log.Fatal("-learn requires -server (generated sets publish back to it)")
		}
		var benign []*httpmodel.Packet
		if *learnBenign != "" {
			bset, err := capture.LoadJSONL(*learnBenign)
			if err != nil {
				log.Fatalf("loading -learn-benign capture: %v", err)
			}
			benign = bset.Packets
		}
		pubClient := sigserver.NewClient(*server, inj.Client(nil))
		pubClient.SetToken(*learnToken)
		pubBreaker := resilience.NewBreaker(resilience.BreakerConfig{})
		pubClient.SetBreaker(pubBreaker)
		reg.Register(obs.BreakerCollector("publish", pubBreaker))
		lcfg := siggen.Config{
			Publisher:        siggen.NewHTTPPublisherFrom(pubClient),
			CheckpointPath:   *checkpoint,
			Benign:           benign,
			MinClusterSize:   *learnMinCluster,
			GenerateInterval: *learnInterval,
			TenantSets:       *learnTenants,
			Tracer:           tracer,
			OnPublish: func(set *signature.Set) {
				log.Printf("learn: published version %d (%d signatures)", set.Version, set.Len())
				if shipper != nil {
					shipper.Ship(obs.Event{Type: "publish", Version: set.Version, Trace: firstTrace(set), Detail: fmt.Sprintf("%d signatures", set.Len())})
				}
			},
		}
		if *learnTenants {
			lcfg.OnPublishNamed = func(name string, set *signature.Set) {
				if name != "" {
					log.Printf("learn: published set %q version %d (%d signatures)", name, set.Version, set.Len())
					if shipper != nil {
						shipper.Ship(obs.Event{Type: "publish", Set: name, Version: set.Version, Trace: firstTrace(set), Detail: fmt.Sprintf("%d signatures", set.Len())})
					}
				}
			}
		}
		svc = siggen.NewService(lcfg)
		defer svc.Close()
		reg.Register(obs.SiggenCollector(svc.Stats))
		if *checkpoint != "" && svc.Stats().CheckpointRestored {
			log.Printf("learn: checkpoint %s restored", *checkpoint)
		}
	}

	// Leak verdicts are ops-plane events: ship them (clean traffic is
	// volume, leaks are signal). The shipper never blocks the verdict
	// path — a wedged event consumer costs dropped events, not matching
	// throughput.
	shipVerdict := func(tenant string, v engine.Verdict) {
		if shipper == nil || !v.Leak() {
			return
		}
		shipper.Ship(obs.Event{
			Type:    "verdict",
			Tenant:  tenant,
			App:     v.Packet.App,
			Host:    v.Packet.Host,
			Matched: v.Matched,
			Version: v.Version,
			Trace:   v.Packet.Trace,
		})
	}

	// The daemon fronts either one engine or a pool of them; backend
	// abstracts the difference for ingest, reload, and stats.
	var be backend
	if *pool {
		be = newPoolBackend(set, engine.PoolConfig{
			Engine:      cfg,
			ShardBudget: *shardBudget,
			MaxTenants:  *maxTenants,
			IdleAfter:   *idle,
			ConfigureTenant: func(key string, cfg engine.Config) engine.Config {
				cfg.OnVerdict = func(v engine.Verdict) {
					out.emitTenant(key, v)
					shipVerdict(key, v)
				}
				if svc != nil {
					cfg.Sink = svc.MissSinkFor(key)
				}
				return cfg
			},
		}, *tenantBy)
	} else {
		cfg.OnVerdict = func(v engine.Verdict) {
			out.emit(v)
			shipVerdict("", v)
		}
		if svc != nil {
			if *learnTenants {
				// Single-engine learning with tenant labels: tenancy rides
				// on packet fields, so named sets still form per tenant.
				cfg.Sink = svc.MissSinkBy(tenantKeyFn(*tenantBy))
			} else {
				cfg.Sink = svc.MissSink()
			}
		}
		be = &engineBackend{eng: engine.New(set, cfg)}
	}
	switch b := be.(type) {
	case *engineBackend:
		reg.Register(obs.EngineCollector(b.eng.Metrics, b.eng.ShardStats))
	case *poolBackend:
		reg.Register(obs.PoolCollector(b.pool.Metrics))
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *server == "" {
		// No server to wait on: whatever -sigs loaded is all the
		// signatures this process will ever have, so it is as ready now as
		// it will ever be.
		ready.Store(true)
	}

	// The last-known-good cache: boot serving whatever the previous run
	// saw published, so a dead sigserver degrades this daemon instead of
	// blanking it. The watch below overwrites both the engines and the
	// cache the moment the server answers.
	var cache *durable.SetCache
	if *sigCache != "" {
		var loaded bool
		var err error
		cache, loaded, err = durable.OpenSetCache(*sigCache)
		if err != nil {
			log.Fatalf("opening -sig-cache: %v", err)
		}
		if !loaded && cache.Len() == 0 {
			log.Printf("sig-cache %s: empty (first run or unreadable); nothing to serve until the server answers", *sigCache)
		}
		if *server != "" && cache.Len() > 0 {
			applied := 0
			for _, name := range cache.Names() {
				cached, ok := cache.Get(name)
				if !ok {
					continue
				}
				if name == "" {
					be.reload(cached)
				} else {
					be.reloadTenant(name, cached)
				}
				applied++
			}
			if applied > 0 {
				ready.Store(true)
				degraded.Store(true)
				log.Printf("sig-cache %s: serving %d cached set(s) in degraded mode until the server answers", *sigCache, applied)
				flight.Trigger(trace.KindDegraded, trace.FlightEvent{
					Kind: trace.KindDegraded, Shard: -1, Value: int64(applied),
					Detail: "booted from sig-cache; sigserver not yet confirmed",
				})
				if shipper != nil {
					shipper.Ship(obs.Event{Type: "degraded", Detail: fmt.Sprintf("serving %d cached set(s) from %s", applied, *sigCache)})
				}
			}
		}
	}

	// liveDelivery is what every watch callback runs first: persist the
	// set, and if this is the first server contact since boot, clear the
	// degraded latch.
	liveDelivery := func(name string, set *signature.Set) {
		if cache != nil {
			if err := cache.Put(name, set); err != nil {
				log.Printf("sig-cache write: %v", err)
			}
		}
		if degraded.CompareAndSwap(true, false) {
			log.Printf("sigserver reachable again: leaving degraded mode")
			if shipper != nil {
				shipper.Ship(obs.Event{Type: "degraded", Version: set.Version, Set: name, Detail: "recovered: live set delivered"})
			}
		}
	}

	if *server != "" {
		client := sigserver.NewClient(*server, inj.Client(nil))
		if *pool {
			// Pool mode follows the server's whole set catalog: the
			// default set rolls unpinned tenants, each named set pins its
			// tenant — the HTTP route for per-tenant learned signatures.
			go func() {
				err := client.WatchSets(ctx, *poll, func(name string, set *signature.Set) {
					ready.Store(true)
					liveDelivery(name, set)
					if name == "" {
						applyReload(be, set, tracer, shipper, "")
						log.Printf("signatures reloaded: version %d, %d entries", set.Version, set.Len())
						return
					}
					start := time.Now()
					be.reloadTenant(name, set)
					tracer.Observe(trace.StageReloadApply, time.Since(start))
					if shipper != nil {
						shipper.Ship(obs.Event{Type: "reload", Set: name, Version: set.Version, Trace: firstTrace(set)})
					}
					log.Printf("tenant %q signatures pinned: version %d, %d entries", name, set.Version, set.Len())
				})
				if err != nil && ctx.Err() == nil {
					log.Printf("signature watch ended: %v", err)
				}
			}()
		} else {
			go func() {
				err := client.Watch(ctx, *poll, func(set *signature.Set) {
					ready.Store(true)
					liveDelivery("", set)
					applyReload(be, set, tracer, shipper, "")
					log.Printf("signatures reloaded: version %d, %d entries", set.Version, set.Len())
				})
				if err != nil && ctx.Err() == nil {
					log.Printf("signature watch ended: %v", err)
				}
			}()
		}
	}

	if *p99Breach > 0 {
		// The p99 watchdog: one of the flight recorder's three trigger
		// conditions (with drop bursts and sink stalls, detected in the
		// engine itself).
		go func() {
			t := time.NewTicker(5 * time.Second)
			defer t.Stop()
			for range t.C {
				snap, ok := be.stats("")
				if !ok {
					continue
				}
				var p99 time.Duration
				switch m := snap.(type) {
				case engine.Snapshot:
					p99 = m.P99
				case engine.PoolSnapshot:
					p99 = m.Aggregate.P99
				}
				if p99 > *p99Breach {
					flight.Trigger(trace.KindP99Breach, trace.FlightEvent{
						Kind: trace.KindP99Breach, Shard: -1,
						Value: p99.Nanoseconds(), Detail: "p99 over " + p99Breach.String(),
					})
				}
			}
		}()
	}

	if *statsInt > 0 {
		go func() {
			t := time.NewTicker(*statsInt)
			defer t.Stop()
			for range t.C {
				log.Print(be.statsLine())
			}
		}()
	}

	var ingest *http.Server
	if *listen != "" {
		ingest = &http.Server{Addr: *listen, Handler: ingestHandler(be, ops)}
		go func() {
			log.Printf("HTTP ingest on %s (/ingest, /match, /stats, /metrics, /healthz, /readyz)", *listen)
			if err := ingest.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
	}
	if *debugAddr != "" {
		go func() {
			log.Printf("debug listener on %s (/metrics, /debug/flight, /debug/pprof)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.DebugHandler(reg, flight)); err != nil {
				log.Fatal(err)
			}
		}()
	}

	// Stdin is always consumed: in pipe mode it is the packet source; in
	// daemon mode it typically hits EOF immediately and only -listen feeds
	// the engine.
	if *listen == "" {
		accepted, rejected := streamNDJSON(os.Stdin, ops.submitter(be, ""))
		// Closing the backend drains every queued packet through the
		// matcher — and, with -learn, through the miss sink — so the
		// final learn epoch below sees the complete stream.
		be.close()
		out.flush()
		if svc != nil {
			set, err := svc.RunEpoch(ctx)
			if err != nil {
				log.Printf("learn: final epoch: %v", err)
			} else if set == nil {
				log.Printf("learn: final epoch published nothing")
			}
		}
		log.Printf("stdin done: %d accepted, %d rejected lines", accepted, rejected)
		log.Print(be.statsLine())
		return
	}

	// Daemon mode: stdin off the main goroutine so SIGTERM is answered
	// even mid-stream, then serve until signalled. Shutdown order is the
	// reverse of the data flow: stop intake, drain the engine rings, run
	// a final learn epoch, then let the deferred closes checkpoint the
	// learner and flush the event shipper.
	go func() {
		accepted, rejected := streamNDJSON(os.Stdin, ops.submitter(be, ""))
		log.Printf("stdin done: %d accepted, %d rejected lines", accepted, rejected)
	}()
	sigCtx, sigStop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer sigStop()
	<-sigCtx.Done()
	sigStop()
	log.Printf("shutting down: draining intake and engine rings")
	if ingest != nil {
		sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
		ingest.Shutdown(sctx)
		scancel()
	}
	cancel()   // end the signature watch
	be.close() // drain every queued packet through the matcher
	out.flush()
	if svc != nil {
		if _, err := svc.RunEpoch(context.Background()); err != nil {
			log.Printf("learn: final epoch: %v", err)
		}
	}
	log.Print(be.statsLine())
}

// backend abstracts the single-engine and multi-tenant postures for the
// daemon's ingest, reload, and stats paths.
type backend interface {
	// submitter returns the queueing function for one stream. tenant is
	// the stream-level override ("" means route per packet).
	submitter(tenant string) func(*httpmodel.Packet) error
	// match vets one packet synchronously and returns the matched IDs
	// with the deciding version.
	match(tenant string, p *httpmodel.Packet) ([]int, int64)
	reload(set *signature.Set)
	// reloadTenant pins one tenant's named set; a single-engine backend
	// has no tenants and ignores it.
	reloadTenant(name string, set *signature.Set)
	statsLine() string
	// stats returns the JSON-ready snapshot; tenant selects one tenant's
	// view in pool mode ("" means everything). It reports whether the
	// tenant exists.
	stats(tenant string) (any, bool)
	close()
}

// errRateLimited is what a limited submit returns under -rate-policy
// reject; under drop the packet is shed silently and only the limiter's
// counters record it.
var errRateLimited = errors.New("tenant over intake rate limit")

// firstTrace returns a set's lead provenance trace ID ("" when the set
// carries none) — the ID reload and publish events attribute to.
func firstTrace(set *signature.Set) string {
	if len(set.Traces) > 0 {
		return set.Traces[0]
	}
	return ""
}

// applyReload rolls one published set into the backend under its trace
// context: a span adopted from the set's provenance records the apply
// stage, and the shipped reload event carries the issued-vs-applied
// ticket accounting that makes reload coalescing visible.
func applyReload(be backend, set *signature.Set, tracer *trace.Tracer, shipper *obs.Shipper, name string) {
	sp := tracer.Adopt(firstTrace(set))
	start := time.Now()
	be.reload(set)
	tracer.Observe(trace.StageReloadApply, time.Since(start))
	sp.Stamp(trace.StageReloadApply)
	sp.Finish()
	if shipper != nil {
		shipper.Ship(obs.Event{
			Type: "reload", Set: name, Version: set.Version,
			Trace: firstTrace(set), Detail: reloadOutcome(be),
		})
	}
}

// reloadOutcome summarizes the backend's reload-coalescing books: tickets
// issued versus generations actually applied (the gap is publishes
// coalesced away or still compiling).
func reloadOutcome(be backend) string {
	snap, ok := be.stats("")
	if !ok {
		return ""
	}
	switch m := snap.(type) {
	case engine.Snapshot:
		return fmt.Sprintf("issued=%d applied=%d", m.ReloadIssued, m.ReloadGen)
	case engine.PoolSnapshot:
		return fmt.Sprintf("issued=%d applied=%d", m.Aggregate.ReloadIssued, m.Aggregate.ReloadGen)
	}
	return ""
}

// opsState carries the daemon-wide ops plane: the intake limiter wrapped
// around every submit path, the metrics registry behind /metrics, and
// the readiness latch behind /readyz.
type opsState struct {
	limiter  *obs.RateLimiter
	keyFn    func(*httpmodel.Packet) string
	reject   bool // -rate-policy reject (vs drop)
	reg      *obs.Registry
	ready    *atomic.Bool
	degraded *atomic.Bool // serving cached signatures, server unreachable
	tracer   *trace.Tracer
	flight   *trace.Flight
}

// submitter wraps the backend's queueing function with per-tenant intake
// limiting. tenant is the stream-level override; when empty each packet
// is keyed individually, so the limiter sees the same tenancy the pool
// and learner do.
func (o *opsState) submitter(be backend, tenant string) func(*httpmodel.Packet) error {
	submit := be.submitter(tenant)
	return func(p *httpmodel.Packet) error {
		p.BeginTrace(o.tracer)
		key := tenant
		if key == "" {
			key = o.keyFn(p)
		}
		if !o.limiter.Allow(key) {
			// Shed packets are drops like any other: the flight recorder's
			// burst detector turns a shedding storm into a dump trigger.
			o.flight.RecordDrop(-1, p.Trace)
			p.EndTrace() // the limited packet's journey ends here
			if o.reject {
				return errRateLimited
			}
			return nil // drop policy: shed silently, the limiter counted it
		}
		if p.Span != nil {
			p.Span.Stamp(trace.StageRateLimit)
		}
		return submit(p)
	}
}

// engineBackend is the classic single-population daemon.
type engineBackend struct{ eng *engine.Engine }

func (b *engineBackend) submitter(string) func(*httpmodel.Packet) error {
	return b.eng.Submit
}

func (b *engineBackend) match(_ string, p *httpmodel.Packet) ([]int, int64) {
	return b.eng.MatchPacket(p), b.eng.Version()
}

// reload is async: the watcher loop must keep long-polling while a large
// set compiles on the engine's background compiler, and a publish burst
// coalesces into the newest set rather than queueing stale compiles.
func (b *engineBackend) reload(set *signature.Set)           { b.eng.ReloadAsync(set) }
func (b *engineBackend) reloadTenant(string, *signature.Set) {}
func (b *engineBackend) statsLine() string                   { return b.eng.Metrics().String() }
func (b *engineBackend) close()                              { b.eng.Close() }

func (b *engineBackend) stats(tenant string) (any, bool) {
	if tenant != "" {
		return nil, false
	}
	return b.eng.Metrics(), true
}

// poolBackend is the multi-tenant daemon: one engine per population.
type poolBackend struct {
	pool  *engine.Pool
	keyFn func(*httpmodel.Packet) string
}

// tenantKeyFn maps packets to tenant keys per the -tenant-by flag — the
// same keying for pool routing and for learner tenancy, so learned named
// sets always land on the tenants that produced the misses.
func tenantKeyFn(tenantBy string) func(*httpmodel.Packet) string {
	return func(p *httpmodel.Packet) string {
		key := p.App
		if tenantBy == "host" || key == "" {
			key = p.Host
		}
		if key == "" {
			key = "default"
		}
		return key
	}
}

func newPoolBackend(set *signature.Set, cfg engine.PoolConfig, tenantBy string) *poolBackend {
	return &poolBackend{pool: engine.NewPool(set, cfg), keyFn: tenantKeyFn(tenantBy)}
}

func (b *poolBackend) submitter(tenant string) func(*httpmodel.Packet) error {
	if tenant != "" {
		return func(p *httpmodel.Packet) error { return b.pool.Submit(tenant, p) }
	}
	return func(p *httpmodel.Packet) error { return b.pool.Submit(b.keyFn(p), p) }
}

func (b *poolBackend) match(tenant string, p *httpmodel.Packet) ([]int, int64) {
	key := tenant
	if key == "" {
		key = b.keyFn(p)
	}
	eng := b.pool.Tenant(key)
	if eng == nil {
		return nil, 0
	}
	return eng.MatchPacket(p), eng.Version()
}

func (b *poolBackend) reload(set *signature.Set) { b.pool.Reload(set) }
func (b *poolBackend) reloadTenant(name string, set *signature.Set) {
	b.pool.ReloadTenant(name, set)
}
func (b *poolBackend) close() { b.pool.Close() }

func (b *poolBackend) statsLine() string {
	s := b.pool.Metrics()
	return fmt.Sprintf("pool: tenants=%d created=%d evicted=%d shards=%d/%d in=%d out=%d matched=%d dropped=%d pps=%.0f",
		s.Tenants, s.Created, s.Evicted, s.ShardsInUse, s.ShardBudget,
		s.Aggregate.Ingested, s.Aggregate.Processed, s.Aggregate.Matched,
		s.Aggregate.Dropped, s.Aggregate.PacketsPerSec)
}

func (b *poolBackend) stats(tenant string) (any, bool) {
	if tenant == "" {
		return b.pool.Metrics(), true
	}
	snap, ok := b.pool.TenantMetrics(tenant)
	if !ok {
		return nil, false
	}
	return snap, true
}

// streamNDJSON feeds packets from one NDJSON stream into the submit
// function. Malformed or invalid lines are reported and skipped.
func streamNDJSON(r io.Reader, submit func(*httpmodel.Packet) error) (accepted, rejected int) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		p := new(httpmodel.Packet)
		if err := json.Unmarshal(line, p); err != nil {
			log.Printf("skipping malformed packet line: %v", err)
			rejected++
			continue
		}
		if err := p.Validate(); err != nil {
			log.Printf("skipping invalid packet: %v", err)
			rejected++
			continue
		}
		if err := submit(p); err != nil {
			log.Printf("submit: %v", err)
			rejected++
			continue
		}
		accepted++
	}
	if err := sc.Err(); err != nil {
		log.Printf("reading stdin: %v", err)
	}
	return accepted, rejected
}

// verdictLine is the NDJSON verdict schema.
type verdictLine struct {
	ID        int64  `json:"id"`
	App       string `json:"app,omitempty"`
	Tenant    string `json:"tenant,omitempty"`
	Host      string `json:"host"`
	Leak      bool   `json:"leak"`
	Matched   []int  `json:"matched,omitempty"`
	Version   int64  `json:"version"`
	LatencyUS int64  `json:"latency_us,omitempty"`
	Trace     string `json:"trace,omitempty"`
}

func toLine(v engine.Verdict) verdictLine {
	return verdictLine{
		ID:        v.Packet.ID,
		App:       v.Packet.App,
		Host:      v.Packet.Host,
		Leak:      v.Leak(),
		Matched:   v.Matched,
		Version:   v.Version,
		LatencyUS: int64(v.Latency / time.Microsecond),
		Trace:     v.Packet.Trace,
	}
}

// verdictFlushInterval bounds how long a verdict may sit in the output
// buffer; flushing per verdict would cost one syscall per packet.
const verdictFlushInterval = 25 * time.Millisecond

// verdictWriter serializes verdicts from concurrent shard workers onto
// one NDJSON stream, flushing on a ticker rather than per line so the
// engine's batching is not undone by per-packet write(2) calls.
type verdictWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
}

func newVerdictWriter(w io.Writer) *verdictWriter {
	bw := bufio.NewWriter(w)
	vw := &verdictWriter{bw: bw, enc: json.NewEncoder(bw)}
	go func() {
		t := time.NewTicker(verdictFlushInterval)
		defer t.Stop()
		for range t.C {
			vw.flush()
		}
	}()
	return vw
}

func (vw *verdictWriter) emit(v engine.Verdict) {
	vw.mu.Lock()
	vw.enc.Encode(toLine(v))
	vw.mu.Unlock()
}

func (vw *verdictWriter) emitTenant(tenant string, v engine.Verdict) {
	line := toLine(v)
	line.Tenant = tenant
	vw.mu.Lock()
	vw.enc.Encode(line)
	vw.mu.Unlock()
}

func (vw *verdictWriter) flush() {
	vw.mu.Lock()
	vw.bw.Flush()
	vw.mu.Unlock()
}

// tenantOf resolves the stream-level tenant override of one HTTP request:
// the ?tenant= query parameter wins, then the X-Leaksig-Tenant header;
// empty means route per packet.
func tenantOf(r *http.Request) string {
	if t := r.URL.Query().Get("tenant"); t != "" {
		return t
	}
	return r.Header.Get("X-Leaksig-Tenant")
}

// ingestHandler exposes the backend over HTTP, every submit path routed
// through the ops plane's intake limiter.
func ingestHandler(be backend, ops *opsState) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		accepted, rejected := streamNDJSON(r.Body, ops.submitter(be, tenantOf(r)))
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"accepted":%d,"rejected":%d}`+"\n", accepted, rejected)
	})
	mux.HandleFunc("POST /match", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		tenant := tenantOf(r)
		enc := json.NewEncoder(w)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			p := new(httpmodel.Packet)
			if err := json.Unmarshal(sc.Bytes(), p); err != nil {
				// The status line is already committed, so a bad line
				// becomes an in-band NDJSON error and the stream goes on —
				// same skip semantics as /ingest.
				enc.Encode(map[string]string{"error": err.Error()})
				continue
			}
			matched, version := be.match(tenant, p)
			enc.Encode(verdictLine{
				ID:      p.ID,
				App:     p.App,
				Tenant:  tenant,
				Host:    p.Host,
				Leak:    len(matched) > 0,
				Matched: matched,
				Version: version,
			})
		}
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		snap, ok := be.stats(r.URL.Query().Get("tenant"))
		if !ok {
			http.Error(w, "unknown tenant", http.StatusNotFound)
			return
		}
		obs.WriteJSON(w, snap)
	})
	mux.Handle("GET /metrics", ops.reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Distinct from /healthz on purpose: the process is alive the
		// moment it serves, but routing traffic to it before a signature
		// set is live would vet packets against nothing.
		if !ops.ready.Load() {
			http.Error(w, "no signature set yet", http.StatusServiceUnavailable)
			return
		}
		if ops.degraded != nil && ops.degraded.Load() {
			// Still 200 — cached signatures are real signatures — but the
			// body tells the balancer (and the smoke test) which mode this
			// is.
			io.WriteString(w, "ready-degraded")
			return
		}
		io.WriteString(w, "ready")
	})
	return mux
}
