// Command leakstream is the streaming detection daemon: it wires a
// signature server to the sharded matching engine and turns packet
// streams into verdict streams without ever restarting.
//
// Packets enter as NDJSON (the capture JSONL schema, one packet per
// line) on stdin and/or over HTTP; verdicts leave as NDJSON on stdout.
// With -server the daemon watches the signature server — long-polling
// its /wait endpoint, falling back to -poll interval polling — and hot
// reloads the engine on every publish, so new signatures take effect
// mid-stream with zero dropped packets.
//
// Usage:
//
//	leakstream -server http://127.0.0.1:8700 < capture.jsonl > verdicts.jsonl
//	leakstream -sigs signatures.json -listen :8900
//
// HTTP endpoints (with -listen):
//
//	POST /ingest — NDJSON packets in, queued for async matching;
//	               responds {"accepted":N,"rejected":M}
//	POST /match  — NDJSON packets in, NDJSON verdicts out (synchronous)
//	GET  /stats  — engine metrics snapshot as JSON
//	GET  /healthz— liveness
package main

import (
	"bufio"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"sync"
	"time"

	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("leakstream: ")
	var (
		server   = flag.String("server", "", "signature server base URL (hot reload via long poll)")
		sigsIn   = flag.String("sigs", "", "signature set file (static alternative to -server)")
		listen   = flag.String("listen", "", "HTTP ingest address (empty: stdin only)")
		shards   = flag.Int("shards", 0, "worker shards (0: GOMAXPROCS)")
		batch    = flag.Int("batch", 0, "packets batched per dispatch (0: default)")
		queue    = flag.Int("queue", 0, "per-shard queue depth in packets (0: default)")
		poll     = flag.Duration("poll", 10*time.Second, "fallback poll interval with -server")
		statsInt = flag.Duration("stats", 0, "metrics reporting interval on stderr (0: off)")
		affinity = flag.String("affinity", "host", "shard affinity: host | none")
	)
	flag.Parse()

	var aff engine.Affinity
	switch *affinity {
	case "host":
		aff = engine.AffinityHost
	case "none":
		aff = engine.AffinityNone
	default:
		log.Fatalf("unknown affinity %q (want host or none)", *affinity)
	}

	set := &signature.Set{}
	if *sigsIn != "" {
		f, err := os.Open(*sigsIn)
		if err != nil {
			log.Fatalf("opening signatures: %v", err)
		}
		set, err = signature.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("reading signatures: %v", err)
		}
	}

	out := newVerdictWriter(os.Stdout)
	eng := engine.New(set, engine.Config{
		Shards:     *shards,
		QueueDepth: *queue,
		BatchSize:  *batch,
		Affinity:   aff,
		OnVerdict:  out.emit,
	})

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if *server != "" {
		client := sigserver.NewClient(*server, nil)
		go func() {
			err := client.Watch(ctx, *poll, func(set *signature.Set) {
				eng.Reload(set)
				log.Printf("signatures reloaded: version %d, %d entries", set.Version, set.Len())
			})
			if err != nil && ctx.Err() == nil {
				log.Printf("signature watch ended: %v", err)
			}
		}()
	}

	if *statsInt > 0 {
		go func() {
			t := time.NewTicker(*statsInt)
			defer t.Stop()
			for range t.C {
				log.Print(eng.Metrics())
			}
		}()
	}

	if *listen != "" {
		srv := &http.Server{Addr: *listen, Handler: ingestHandler(eng, out)}
		go func() {
			log.Printf("HTTP ingest on %s (/ingest, /match, /stats, /healthz)", *listen)
			if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
	}

	// Stdin is always consumed: in pipe mode it is the packet source; in
	// daemon mode it typically hits EOF immediately and only -listen feeds
	// the engine.
	accepted, rejected := streamNDJSON(os.Stdin, eng)
	if *listen == "" {
		eng.Close()
		out.flush()
		m := eng.Metrics()
		log.Printf("stdin done: %d accepted, %d rejected lines", accepted, rejected)
		log.Print(m)
		return
	}
	select {} // daemon mode: serve until killed
}

// streamNDJSON feeds packets from one NDJSON stream into the engine.
// Malformed or invalid lines are reported and skipped.
func streamNDJSON(r io.Reader, eng *engine.Engine) (accepted, rejected int) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		p := new(httpmodel.Packet)
		if err := json.Unmarshal(line, p); err != nil {
			log.Printf("skipping malformed packet line: %v", err)
			rejected++
			continue
		}
		if err := p.Validate(); err != nil {
			log.Printf("skipping invalid packet: %v", err)
			rejected++
			continue
		}
		if err := eng.Submit(p); err != nil {
			log.Printf("submit: %v", err)
			rejected++
			continue
		}
		accepted++
	}
	if err := sc.Err(); err != nil {
		log.Printf("reading stdin: %v", err)
	}
	return accepted, rejected
}

// verdictLine is the NDJSON verdict schema.
type verdictLine struct {
	ID        int64  `json:"id"`
	App       string `json:"app,omitempty"`
	Host      string `json:"host"`
	Leak      bool   `json:"leak"`
	Matched   []int  `json:"matched,omitempty"`
	Version   int64  `json:"version"`
	LatencyUS int64  `json:"latency_us,omitempty"`
}

func toLine(v engine.Verdict) verdictLine {
	return verdictLine{
		ID:        v.Packet.ID,
		App:       v.Packet.App,
		Host:      v.Packet.Host,
		Leak:      v.Leak(),
		Matched:   v.Matched,
		Version:   v.Version,
		LatencyUS: int64(v.Latency / time.Microsecond),
	}
}

// verdictFlushInterval bounds how long a verdict may sit in the output
// buffer; flushing per verdict would cost one syscall per packet.
const verdictFlushInterval = 25 * time.Millisecond

// verdictWriter serializes verdicts from concurrent shard workers onto
// one NDJSON stream, flushing on a ticker rather than per line so the
// engine's batching is not undone by per-packet write(2) calls.
type verdictWriter struct {
	mu  sync.Mutex
	bw  *bufio.Writer
	enc *json.Encoder
}

func newVerdictWriter(w io.Writer) *verdictWriter {
	bw := bufio.NewWriter(w)
	vw := &verdictWriter{bw: bw, enc: json.NewEncoder(bw)}
	go func() {
		t := time.NewTicker(verdictFlushInterval)
		defer t.Stop()
		for range t.C {
			vw.flush()
		}
	}()
	return vw
}

func (vw *verdictWriter) emit(v engine.Verdict) {
	vw.mu.Lock()
	vw.enc.Encode(toLine(v))
	vw.mu.Unlock()
}

func (vw *verdictWriter) flush() {
	vw.mu.Lock()
	vw.bw.Flush()
	vw.mu.Unlock()
}

// ingestHandler exposes the engine over HTTP.
func ingestHandler(eng *engine.Engine, out *verdictWriter) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /ingest", func(w http.ResponseWriter, r *http.Request) {
		accepted, rejected := streamNDJSON(r.Body, eng)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"accepted":%d,"rejected":%d}`+"\n", accepted, rejected)
	})
	mux.HandleFunc("POST /match", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		sc := bufio.NewScanner(r.Body)
		sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
		for sc.Scan() {
			if len(sc.Bytes()) == 0 {
				continue
			}
			p := new(httpmodel.Packet)
			if err := json.Unmarshal(sc.Bytes(), p); err != nil {
				// The status line is already committed, so a bad line
				// becomes an in-band NDJSON error and the stream goes on —
				// same skip semantics as /ingest.
				enc.Encode(map[string]string{"error": err.Error()})
				continue
			}
			matched := eng.MatchPacket(p)
			enc.Encode(verdictLine{
				ID:      p.ID,
				App:     p.App,
				Host:    p.Host,
				Leak:    len(matched) > 0,
				Matched: matched,
				Version: eng.Version(),
			})
		}
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(eng.Metrics())
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	return mux
}
