// Command leakcluster runs the paper's server-side pipeline (Figure 3a):
// it separates a capture into suspicious and normal groups with the payload
// check, samples N suspicious packets, clusters them by the HTTP packet
// distance, and writes the generated conjunction signature set.
//
// Usage:
//
//	leakcluster -in capture.jsonl -device device.json -n 500 -out sigs.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"

	"leaksig/internal/android"
	"leaksig/internal/capture"
	"leaksig/internal/core"
	"leaksig/internal/httpmodel"
	"leaksig/internal/sensitive"
)

func loadDevice(path string) (*android.Device, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var d android.Device
	if err := json.NewDecoder(f).Decode(&d); err != nil {
		return nil, fmt.Errorf("decoding device file: %w", err)
	}
	return &d, nil
}

func loadCapture(path string) (*capture.Set, error) {
	if set, err := capture.LoadBinary(path); err == nil {
		return set, nil
	}
	return capture.LoadJSONL(path)
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("leakcluster: ")
	var (
		in      = flag.String("in", "capture.jsonl", "capture input (jsonl or binary)")
		device  = flag.String("device", "device.json", "device identity file")
		n       = flag.Int("n", 500, "suspicious packets to sample (0: use all)")
		seed    = flag.Int64("seed", 42, "sampling seed")
		out     = flag.String("out", "signatures.json", "signature set output")
		cutFrac = flag.Float64("cut", 0, "dendrogram cut fraction (0: default)")
		verbose = flag.Bool("v", false, "print per-cluster details")
		dendOut = flag.String("dendrogram", "", "optional dendrogram JSON output path")
		newick  = flag.String("newick", "", "optional Newick tree output path (host-labelled)")
	)
	flag.Parse()

	dev, err := loadDevice(*device)
	if err != nil {
		log.Fatalf("loading device: %v", err)
	}
	set, err := loadCapture(*in)
	if err != nil {
		log.Fatalf("loading capture: %v", err)
	}
	oracle := sensitive.NewOracle(dev)
	suspicious := set.Filter(oracle.IsSensitive)
	fmt.Printf("capture: %d packets, %d suspicious\n", set.Len(), suspicious.Len())

	var sample []*httpmodel.Packet
	if *n <= 0 || *n >= suspicious.Len() {
		sample = suspicious.Packets
	} else {
		sample = suspicious.Sample(rand.New(rand.NewSource(*seed)), *n).Packets
	}

	pl := core.NewPipeline(core.Config{CutFraction: *cutFrac})
	dend, clusters := pl.Cluster(sample)
	sigs := pl.GenerateSignatures(sample)
	fmt.Printf("sampled %d packets -> %d clusters -> %d signatures\n",
		len(sample), len(clusters), sigs.Len())

	if *dendOut != "" {
		df, err := os.Create(*dendOut)
		if err != nil {
			log.Fatalf("creating dendrogram file: %v", err)
		}
		if err := dend.WriteJSON(df); err != nil {
			log.Fatalf("writing dendrogram: %v", err)
		}
		if err := df.Close(); err != nil {
			log.Fatalf("closing dendrogram: %v", err)
		}
		fmt.Printf("dendrogram: %s\n", *dendOut)
	}
	if *newick != "" {
		labels := make([]string, len(sample))
		for i, p := range sample {
			labels[i] = fmt.Sprintf("%s#%d", p.Host, p.ID)
		}
		if err := os.WriteFile(*newick, []byte(dend.Newick(labels)+"\n"), 0o644); err != nil {
			log.Fatalf("writing newick: %v", err)
		}
		fmt.Printf("newick: %s\n", *newick)
	}
	if *verbose {
		for _, s := range sigs.Signatures {
			fmt.Println("  " + s.String())
		}
	}

	f, err := os.Create(*out)
	if err != nil {
		log.Fatalf("creating output: %v", err)
	}
	if err := sigs.WriteJSON(f); err != nil {
		log.Fatalf("writing signatures: %v", err)
	}
	if err := f.Close(); err != nil {
		log.Fatalf("closing output: %v", err)
	}
	fmt.Printf("signatures: %s\n", *out)
}
