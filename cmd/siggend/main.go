// Command siggend is the online signature-generation daemon: the server
// half of the paper's Figure 3(a) run as a live loop instead of a
// one-shot pipeline. It ingests suspect flows (misses forwarded by
// leakstream, flowproxy, or any NDJSON producer), maintains rolling
// clusters over a bounded per-tenant sample, distills conjunction
// signatures gated by a Bayes model and a held-out benign corpus, and
// auto-publishes accepted sets to a sigserver — which every watching
// engine hot-reloads. No manual leakgen/leakcluster invocation remains
// in the loop.
//
// Usage:
//
//	siggend -server http://127.0.0.1:8700 -listen :8810 -interval 30s
//	siggend -server http://127.0.0.1:8700 -benign benign.jsonl < misses.jsonl
//	siggend -server http://127.0.0.1:8700 -tenant-by app -tenant-sets < misses.jsonl
//
// With -tenant-sets the learner distills one named set per tenant (the
// -tenant-by key) alongside the global set and publishes each under
// /sets/{tenant}/ with its own version sequence, so pools can pin
// per-population signatures via ReloadTenant instead of sharing one
// flattened set. Signatures whose source clusters go stale are dropped
// from the next published versions (drift retirement).
//
// Packets enter as NDJSON on stdin (pipe mode: a final epoch runs at
// EOF, then the daemon exits unless -listen is set) and/or over HTTP:
//
//	POST /observe — NDJSON packets in, offered to the learner;
//	                responds {"observed":N,"dropped":M}
//	GET  /stats   — learner statistics as JSON
//	GET  /metrics — Prometheus text exposition
//	GET  /healthz — liveness
//	GET  /readyz  — readiness: 503 until the first set publishes
//
// -events-url ships publish and retirement events as batched NDJSON;
// -debug-addr opens a private listener with /metrics and /debug/pprof.
//
// -checkpoint makes the learner crash-safe: reservoirs, clusters, the
// published catalog, and per-set version counters are written through an
// atomic checkpoint each epoch and restored on start, so a restarted
// daemon resumes its version sequences instead of being 409'd by the
// server. -faults (or LEAKSIG_FAULTS) injects deterministic chaos into
// every outbound HTTP call; publishes ride a jittered-retry client with
// a circuit breaker either way. SIGTERM drains the intake, runs a final
// epoch, checkpoints, and flushes the event shipper.
//
// /observe is a write path into fleet signature generation: whoever can
// reach it influences what the learner clusters and ultimately
// publishes. Without -observe-token, bind -listen to loopback (or front
// it with an authenticating proxy) — the same exposure rule as
// sigserver's /publish.
package main

import (
	"bufio"
	"context"
	"crypto/subtle"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sort"
	"strings"
	"sync/atomic"
	"syscall"
	"time"

	"leaksig/internal/capture"
	"leaksig/internal/faultinject"
	"leaksig/internal/httpmodel"
	"leaksig/internal/obs"
	"leaksig/internal/obs/trace"
	"leaksig/internal/resilience"
	"leaksig/internal/siggen"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// loadFaults builds the chaos injector from -faults or, when the flag is
// empty, the LEAKSIG_FAULTS/FAULT_SEED environment.
func loadFaults(spec string) *faultinject.Injector {
	if spec != "" {
		cfg, err := faultinject.Parse(spec)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		return faultinject.New(cfg)
	}
	inj, err := faultinject.FromEnv()
	if err != nil {
		log.Fatalf("LEAKSIG_FAULTS: %v", err)
	}
	return inj
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("siggend: ")
	var (
		server       = flag.String("server", "", "sigserver base URL to auto-publish into (empty: generate only, log what would publish)")
		token        = flag.String("token", "", "bearer token for the publish endpoint")
		listen       = flag.String("listen", "", "HTTP intake address (empty: stdin only)")
		obsToken     = flag.String("observe-token", "", "bearer token required on POST /observe (empty: unauthenticated — keep -listen on loopback)")
		interval     = flag.Duration("interval", 30*time.Second, "generation epoch cadence (0: only the final stdin epoch)")
		benignIn     = flag.String("benign", "", "benign capture (JSONL) for the Bayes and held-out FP gates")
		tenantBenign = tenantCaptureFlag{}
		tenantBy     = flag.String("tenant-by", "app", "reservoir tenant key: app | host | none")
		tenants      = flag.Bool("tenant-sets", false, "publish one named set per tenant alongside the global set")

		reservoir   = flag.Int("reservoir", 256, "per-tenant reservoir size")
		maxTenants  = flag.Int("max-tenants", 64, "tenants with private reservoirs; the rest share one")
		maxClusters = flag.Int("max-clusters", 64, "rolling cluster table size")
		maxMembers  = flag.Int("max-members", 64, "member window per cluster")
		minCluster  = flag.Int("min-cluster", 3, "members a cluster needs before emitting a signature")
		join        = flag.Float64("join", 0.22, "cluster join threshold as a fraction of the metric maximum")
		maxFP       = flag.Float64("max-fp", 0.01, "held-out benign fraction a signature may match")
		minSamples  = flag.Int("min-samples", 8, "new samples required before a timed epoch generates")
		seed        = flag.Int64("seed", 1, "sampling seed")
		statsInt    = flag.Duration("stats", 0, "stats reporting interval on stderr (0: off)")
		checkpoint  = flag.String("checkpoint", "", "learner checkpoint file: restore on start, rewrite each epoch and at shutdown (empty: learner state dies with the process)")
		faults      = flag.String("faults", "", `chaos injection spec for outbound HTTP, e.g. "seed=7,reset=0.1,latency_p=0.1,latency=20ms" (empty: read LEAKSIG_FAULTS)`)

		eventsURL   = flag.String("events-url", "", "ship structured events as batched NDJSON POSTs to this endpoint")
		eventsToken = flag.String("events-token", "", "bearer token for -events-url uploads")
		debugAddr   = flag.String("debug-addr", "", "private ops listener: /metrics, /healthz, /debug/pprof, /debug/flight")

		traceSample = flag.Int("trace-sample", 0, "head-sample 1 in N locally-originated packets for stage tracing; forwarded trace IDs are always adopted (0: adopt only)")
	)
	flag.Var(&tenantBenign, "benign-tenant",
		"per-tenant benign capture as name=path (repeatable); candidates attributed to the named tenant must also clear that corpus' FP gate")
	flag.Parse()

	reg := obs.NewRegistry()
	reg.Register(obs.BuildInfoCollector())
	inj := loadFaults(*faults)
	if inj != nil {
		log.Printf("chaos: %s", inj)
		reg.Register(obs.FaultCollector(inj))
	}
	var shipper *obs.Shipper
	if *eventsURL != "" {
		shipper = obs.NewShipper(obs.ShipperConfig{
			URL: *eventsURL, Token: *eventsToken, Node: "siggend",
			HTTPClient: inj.Client(nil),
		})
		defer shipper.Close()
		reg.Register(shipper)
	}
	tracer := trace.NewTracer(*traceSample)
	reg.Register(obs.TracerCollector(tracer))
	flight := trace.NewFlight(0, 0)
	reg.Register(obs.FlightCollector(flight))
	if shipper != nil {
		flight.SetTrigger(func(reason string, ev trace.FlightEvent) {
			st := flight.Stats()
			shipper.Ship(obs.Event{
				Type:  "flight",
				Trace: ev.Trace,
				Detail: fmt.Sprintf("reason=%s kind=%s shard=%d value=%d held=%d recorded=%d",
					reason, ev.Kind, ev.Shard, ev.Value, st.Held, st.Recorded),
			})
		})
	}
	var ready atomic.Bool

	var benign []*httpmodel.Packet
	if *benignIn != "" {
		set, err := capture.LoadJSONL(*benignIn)
		if err != nil {
			log.Fatalf("loading benign capture: %v", err)
		}
		benign = set.Packets
		log.Printf("benign corpus: %d packets (half train, half held out)", len(benign))
	}
	var tenantCorpora map[string][]*httpmodel.Packet
	if len(tenantBenign) > 0 {
		tenantCorpora = make(map[string][]*httpmodel.Packet, len(tenantBenign))
		for tenant, path := range tenantBenign {
			set, err := capture.LoadJSONL(path)
			if err != nil {
				log.Fatalf("loading benign capture for tenant %q: %v", tenant, err)
			}
			tenantCorpora[tenant] = set.Packets
			log.Printf("tenant %q benign corpus: %d packets (held out in full)", tenant, set.Len())
		}
	}

	var keyFn func(*httpmodel.Packet) string
	switch *tenantBy {
	case "app":
		keyFn = func(p *httpmodel.Packet) string { return p.App }
	case "host":
		keyFn = func(p *httpmodel.Packet) string { return p.Host }
	case "none":
		keyFn = func(*httpmodel.Packet) string { return "" }
	default:
		log.Fatalf("unknown -tenant-by %q (want app, host, or none)", *tenantBy)
	}

	cfg := siggen.Config{
		Cluster: siggen.ClusterConfig{
			JoinFraction: *join,
			MaxClusters:  *maxClusters,
			MaxMembers:   *maxMembers,
		},
		ReservoirSize:       *reservoir,
		MaxTenantReservoirs: *maxTenants,
		MinClusterSize:      *minCluster,
		Benign:              benign,
		TenantBenign:        tenantCorpora,
		MaxHoldoutFP:        *maxFP,
		GenerateInterval:    *interval,
		MinNewSamples:       *minSamples,
		TenantSets:          *tenants,
		Seed:                *seed,
		Tracer:              tracer,
		OnPublish: func(set *signature.Set) {
			ready.Store(true)
			log.Printf("published version %d: %d signatures", set.Version, set.Len())
			if shipper != nil {
				shipper.Ship(obs.Event{Type: "publish", Version: set.Version, Trace: firstTrace(set), Detail: fmt.Sprintf("%d signatures", set.Len())})
			}
		},
		OnRetire: func(n int) {
			log.Printf("retired %d signatures (source clusters went stale)", n)
			if shipper != nil {
				shipper.Ship(obs.Event{Type: "retire", Detail: fmt.Sprintf("%d signatures", n)})
			}
		},
	}
	if *tenants {
		if *tenantBy == "none" {
			log.Fatal("-tenant-sets needs a tenant key; use -tenant-by app or host")
		}
		cfg.OnPublishNamed = func(name string, set *signature.Set) {
			ready.Store(true)
			if name != "" {
				log.Printf("published set %q version %d: %d signatures", name, set.Version, set.Len())
				if shipper != nil {
					shipper.Ship(obs.Event{Type: "publish", Set: name, Version: set.Version, Trace: firstTrace(set), Detail: fmt.Sprintf("%d signatures", set.Len())})
				}
			}
		}
	}
	cfg.CheckpointPath = *checkpoint
	if *server != "" {
		pc := sigserver.NewClient(*server, inj.Client(nil))
		pc.SetToken(*token)
		br := resilience.NewBreaker(resilience.BreakerConfig{})
		pc.SetBreaker(br)
		reg.Register(obs.BreakerCollector("publish", br))
		cfg.Publisher = siggen.NewHTTPPublisherFrom(pc)
	}
	svc := siggen.NewService(cfg)
	defer svc.Close()
	reg.Register(obs.SiggenCollector(svc.Stats))
	if *checkpoint != "" && svc.Stats().CheckpointRestored {
		log.Printf("checkpoint %s: learner state restored", *checkpoint)
	}

	if *statsInt > 0 {
		go func() {
			t := time.NewTicker(*statsInt)
			defer t.Stop()
			for range t.C {
				st := svc.Stats()
				log.Printf("stats: observed=%d sampled=%d dropped=%d clusters=%d members=%d epochs=%d publishes=%d v=%d",
					st.Observed, st.Sampled, st.SinkDropped, st.Clusters,
					st.ClusterMembers, st.Epochs, st.Publishes, st.LastVersion)
			}
		}()
	}

	var intake *http.Server
	if *listen != "" {
		intake = &http.Server{Addr: *listen, Handler: handler(svc, keyFn, *obsToken, reg, &ready, tracer)}
		go func() {
			log.Printf("HTTP intake on %s (/observe, /stats, /metrics, /healthz, /readyz)", *listen)
			if err := intake.ListenAndServe(); err != nil && err != http.ErrServerClosed {
				log.Fatal(err)
			}
		}()
	}
	if *debugAddr != "" {
		go func() {
			log.Printf("debug listener on %s (/metrics, /debug/pprof, /debug/flight)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.DebugHandler(reg, flight)); err != nil {
				log.Fatal(err)
			}
		}()
	}

	if *listen == "" {
		observed, dropped := observeNDJSON(os.Stdin, svc, keyFn, tracer)
		set, err := svc.RunEpoch(context.Background())
		if err != nil {
			log.Printf("final epoch: %v", err)
		}
		switch {
		case set != nil && cfg.Publisher != nil:
			log.Printf("final epoch published version %d (%d signatures)", set.Version, set.Len())
		case set != nil:
			log.Printf("final epoch generated %d signatures (no -server; not published)", set.Len())
		default:
			log.Printf("final epoch published nothing")
		}
		log.Printf("stdin done: %d observed, %d dropped/filtered", observed, dropped)
		return
	}

	// Daemon mode: stdin intake off the main goroutine so SIGTERM is
	// answered even mid-stream, then serve until signalled.
	go func() {
		observed, dropped := observeNDJSON(os.Stdin, svc, keyFn, tracer)
		log.Printf("stdin done: %d observed, %d dropped/filtered", observed, dropped)
	}()
	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	<-ctx.Done()
	stop()
	log.Printf("shutting down: draining intake, final epoch")
	if intake != nil {
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		intake.Shutdown(sctx)
		cancel()
	}
	if _, err := svc.RunEpoch(context.Background()); err != nil {
		log.Printf("final epoch: %v", err)
	}
	// Deferred svc.Close writes the final checkpoint; shipper.Close
	// flushes pending event batches.
}

// observeNDJSON offers every NDJSON packet on r to the learner. Packets
// forwarded with a trace ID (the "trace" field leakstream stamps on
// sampled misses) are adopted so their span keeps accumulating stage
// timestamps — reservoir, cluster — inside this process; the intake's
// own reference is released once the learner has taken (or refused) its
// hold.
func observeNDJSON(r io.Reader, svc *siggen.Service, keyFn func(*httpmodel.Packet) string, tracer *trace.Tracer) (observed, dropped int) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Bytes()
		if len(line) == 0 {
			continue
		}
		p := new(httpmodel.Packet)
		if err := json.Unmarshal(line, p); err != nil {
			log.Printf("skipping malformed packet line: %v", err)
			dropped++
			continue
		}
		if err := p.Validate(); err != nil {
			log.Printf("skipping invalid packet: %v", err)
			dropped++
			continue
		}
		p.BeginTrace(tracer)
		// Capture before Observe: once the learner owns the packet it may
		// end the trace (niling p.Span) on its own goroutine.
		sp := p.Span
		if svc.Observe(keyFn(p), p) {
			observed++
		} else {
			dropped++
		}
		// The learner holds its own span reference when it admits the
		// packet; drop the intake's.
		sp.Finish()
	}
	if err := sc.Err(); err != nil {
		log.Printf("reading stdin: %v", err)
	}
	return observed, dropped
}

// tenantCaptureFlag collects repeated -benign-tenant name=path pairs.
type tenantCaptureFlag map[string]string

func (f tenantCaptureFlag) String() string {
	parts := make([]string, 0, len(f))
	for tenant, path := range f {
		parts = append(parts, tenant+"="+path)
	}
	sort.Strings(parts)
	return strings.Join(parts, ",")
}

func (f tenantCaptureFlag) Set(v string) error {
	tenant, path, ok := strings.Cut(v, "=")
	if !ok || tenant == "" || path == "" {
		return fmt.Errorf("want name=path, got %q", v)
	}
	if _, dup := f[tenant]; dup {
		return fmt.Errorf("tenant %q given twice", tenant)
	}
	f[tenant] = path
	return nil
}

// firstTrace is the provenance trace ID a published set carries, if any.
func firstTrace(set *signature.Set) string {
	if len(set.Traces) > 0 {
		return set.Traces[0]
	}
	return ""
}

// handler exposes the learner over HTTP. A non-empty obsToken requires
// `Authorization: Bearer <token>` on the intake, since /observe shapes
// what the fleet will eventually enforce.
func handler(svc *siggen.Service, keyFn func(*httpmodel.Packet) string, obsToken string, reg *obs.Registry, ready *atomic.Bool, tracer *trace.Tracer) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /observe", func(w http.ResponseWriter, r *http.Request) {
		if obsToken != "" {
			if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+obsToken)) != 1 {
				http.Error(w, "missing or wrong bearer token", http.StatusUnauthorized)
				return
			}
		}
		observed, dropped := observeNDJSON(r.Body, svc, keyFn, tracer)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"observed":%d,"dropped":%d}`+"\n", observed, dropped)
	})
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		obs.WriteJSON(w, svc.Stats())
	})
	mux.Handle("GET /metrics", reg.Handler())
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// Not ready until something has published: before that the
		// learner has produced nothing the fleet can enforce.
		if !ready.Load() {
			http.Error(w, "nothing published yet", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready")
	})
	return mux
}
