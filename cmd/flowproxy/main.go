// Command flowproxy runs the on-device information flow control
// application of the paper's Figure 3(b) as a local HTTP forward proxy:
// point applications (or a test client) at it, and it vets every request
// against the signature set, blocking or logging transmissions of
// sensitive information.
//
// Vetting runs through a streaming engine backend, so the proxy shares
// the engine's telemetry (inline vets land in the SyncVetted/SyncMatched
// counters of the periodic stats line) and its hot-reload path: with
// -server, a sigserver watch swaps the compiled set atomically on every
// publish. With -learn, requests that match nothing — exactly the flows
// the current signatures cannot explain — are forwarded in batches to a
// siggend intake, feeding the online generation loop that will publish
// the signatures this proxy later enforces.
//
// Usage:
//
//	flowproxy -addr :8080 -sigs signatures.json -policy block
//	flowproxy -addr :8080 -server http://sigserver:8700 -refresh 30s
//	flowproxy -addr :8080 -server http://sigserver:8700 -learn http://siggend:8810
//	flowproxy -addr :8080 -sigs signatures.json -debug-addr 127.0.0.1:8081
//
// The main address is the proxy itself — every verb and path forwards —
// so the ops plane lives on -debug-addr: /metrics (engine, proxy
// decision, and learn-forwarder families), /stats as JSON, and
// /debug/pprof. -events-url ships every policy decision on a matching
// request as a structured NDJSON event.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"leaksig/internal/engine"
	"leaksig/internal/faultinject"
	"leaksig/internal/flowcontrol"
	"leaksig/internal/httpmodel"
	"leaksig/internal/obs"
	"leaksig/internal/obs/trace"
	"leaksig/internal/resilience"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// loadFaults builds the chaos injector from -faults or, when the flag is
// empty, the LEAKSIG_FAULTS/FAULT_SEED environment.
func loadFaults(spec string) *faultinject.Injector {
	if spec != "" {
		cfg, err := faultinject.Parse(spec)
		if err != nil {
			log.Fatalf("-faults: %v", err)
		}
		return faultinject.New(cfg)
	}
	inj, err := faultinject.FromEnv()
	if err != nil {
		log.Fatalf("LEAKSIG_FAULTS: %v", err)
	}
	return inj
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowproxy: ")
	var (
		addr       = flag.String("addr", ":8080", "proxy listen address")
		sigsIn     = flag.String("sigs", "", "signature set file (static)")
		server     = flag.String("server", "", "signature server base URL (dynamic)")
		refresh    = flag.Duration("refresh", 30*time.Second, "poll interval with -server")
		policy     = flag.String("policy", "block", "block | log (log allows but records)")
		learn      = flag.String("learn", "", "siggend base URL; unmatched flows are forwarded to its /observe intake")
		learnToken = flag.String("learn-token", "", "bearer token for the siggend /observe intake")

		eventsURL   = flag.String("events-url", "", "ship structured events as batched NDJSON POSTs to this endpoint")
		eventsToken = flag.String("events-token", "", "bearer token for -events-url uploads")
		debugAddr   = flag.String("debug-addr", "", "private ops listener: /metrics, /stats, /healthz, /readyz, /debug/pprof, /debug/flight")
		faults      = flag.String("faults", "", `chaos injection spec for outbound HTTP, e.g. "seed=7,reset=0.1,latency_p=0.1,latency=20ms" (empty: read LEAKSIG_FAULTS)`)

		traceSample = flag.Int("trace-sample", 0, "head-sample 1 in N learn-forwarded misses with a trace ID, so the signature each one seeds can be followed back here (0: off)")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	reg.Register(obs.BuildInfoCollector())
	inj := loadFaults(*faults)
	if inj != nil {
		log.Printf("chaos: %s", inj)
		reg.Register(obs.FaultCollector(inj))
	}
	var shipper *obs.Shipper
	if *eventsURL != "" {
		shipper = obs.NewShipper(obs.ShipperConfig{
			URL: *eventsURL, Token: *eventsToken, Node: "flowproxy",
			HTTPClient: inj.Client(nil),
		})
		defer shipper.Close()
		reg.Register(shipper)
	}
	tracer := trace.NewTracer(*traceSample)
	reg.Register(obs.TracerCollector(tracer))
	flight := trace.NewFlight(1, 0)
	reg.Register(obs.FlightCollector(flight))
	if shipper != nil {
		flight.SetTrigger(func(reason string, ev trace.FlightEvent) {
			st := flight.Stats()
			shipper.Ship(obs.Event{
				Type:  "flight",
				Trace: ev.Trace,
				Detail: fmt.Sprintf("reason=%s kind=%s shard=%d value=%d held=%d recorded=%d",
					reason, ev.Kind, ev.Shard, ev.Value, st.Held, st.Recorded),
			})
		})
	}

	// Readiness: with static signatures (or none) the proxy can vet as
	// soon as it listens; with -server it is not ready until the first
	// watch callback lands a set, since before that it would enforce
	// nothing the fleet has agreed on.
	var ready atomic.Bool
	if *server == "" {
		ready.Store(true)
	}

	set := &signature.Set{}
	if *sigsIn != "" {
		f, err := os.Open(*sigsIn)
		if err != nil {
			log.Fatalf("opening signatures: %v", err)
		}
		set, err = signature.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("reading signatures: %v", err)
		}
	}

	var pol flowcontrol.Policy
	switch *policy {
	case "block":
		pol = flowcontrol.BlockMatched()
	case "log":
		pol = flowcontrol.PolicyFunc(func(p *httpmodel.Packet, matched []int) flowcontrol.Action {
			if len(matched) > 0 {
				log.Printf("LEAK (allowed by policy): %s %s%s matched %v", p.Method, p.Host, p.Path, matched)
			}
			return flowcontrol.Allow
		})
	default:
		log.Fatalf("unknown policy %q", *policy)
	}
	if shipper != nil {
		// Every decision on a matching request is an ops-plane event —
		// blocked exfiltration and policy-allowed leaks alike. The wrap
		// costs one closure call on the vet path; shipping never blocks.
		inner := pol
		pol = flowcontrol.PolicyFunc(func(p *httpmodel.Packet, matched []int) flowcontrol.Action {
			action := inner.Decide(p, matched)
			if len(matched) > 0 {
				shipper.Ship(obs.Event{
					Type:    "decision",
					App:     p.App,
					Host:    p.Host,
					Matched: matched,
					Detail:  action.String(),
				})
			}
			return action
		})
	}

	// The engine backend gives the proxy sharded compilation, atomic hot
	// reload, and shared telemetry; its worker shards stay idle (vetting
	// is inline via MatchPacket), costing only parked goroutines.
	eng := engine.New(set, engine.Config{Shards: 1, Flight: flight})
	var be flowcontrol.Backend = eng
	var fwd *missForwarder
	if *learn != "" {
		fwd = newMissForwarder(*learn, *learnToken, inj.Client(nil), tracer, flight)
		be = flowcontrol.NewObservedBackend(eng, fwd.offer)
		reg.Register(obs.BreakerCollector("learn_forward", fwd.br))
	}
	proxy := flowcontrol.NewProxyWith(be, pol, nil)
	fmt.Printf("flow control proxy on %s with %d signatures (policy: %s)\n",
		*addr, set.Len(), *policy)

	reg.Register(obs.EngineCollector(eng.Metrics, eng.ShardStats))
	reg.Register(obs.ProxyCollector(proxy.Stats))
	if fwd != nil {
		reg.Register(obs.CollectorFunc(func(m *obs.MetricWriter) {
			sent, dropped := fwd.stats()
			m.Counter("leaksig_proxy_learn_forwarded_total", "Unmatched flows delivered to the siggend intake.", float64(sent))
			m.Counter("leaksig_proxy_learn_dropped_total", "Unmatched flows dropped before the siggend intake (full buffer or failed POST).", float64(dropped))
		}))
	}
	if *debugAddr != "" {
		// The main address proxies every verb and path, so the ops plane
		// gets its own listener rather than stealing a URL from proxied
		// traffic.
		mux := http.NewServeMux()
		mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
			allowed, blocked := proxy.Stats()
			sent, dropped := int64(0), int64(0)
			if fwd != nil {
				sent, dropped = fwd.stats()
			}
			obs.WriteJSON(w, struct {
				Allowed      int64           `json:"allowed"`
				Blocked      int64           `json:"blocked"`
				LearnSent    int64           `json:"learn_sent"`
				LearnDropped int64           `json:"learn_dropped"`
				Engine       engine.Snapshot `json:"engine"`
			}{allowed, blocked, sent, dropped, eng.Metrics()})
		})
		mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
			if !ready.Load() {
				http.Error(w, "no signature set loaded yet", http.StatusServiceUnavailable)
				return
			}
			io.WriteString(w, "ready")
		})
		mux.Handle("/", obs.DebugHandler(reg, flight))
		go func() {
			log.Printf("debug listener on %s (/metrics, /stats, /readyz, /debug/pprof, /debug/flight)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, mux); err != nil {
				log.Fatal(err)
			}
		}()
	}

	watchCtx, watchStop := context.WithCancel(context.Background())
	defer watchStop()
	if *server != "" {
		client := sigserver.NewClient(*server, inj.Client(nil))
		go func() {
			// Watch long-polls the server's /wait endpoint, so updates
			// land within one round trip; -refresh only bounds the retry
			// and fallback cadence.
			err := client.Watch(watchCtx, *refresh, func(newSet *signature.Set) {
				// Adopt the set's provenance trace, if it carries one, so
				// the reload apply closes that trace's loop in this process.
				var id string
				if len(newSet.Traces) > 0 {
					id = newSet.Traces[0]
				}
				sp := tracer.Adopt(id)
				start := time.Now()
				eng.Reload(newSet)
				tracer.Observe(trace.StageReloadApply, time.Since(start))
				sp.Stamp(trace.StageReloadApply)
				sp.Finish()
				ready.Store(true)
				log.Printf("signatures updated: %d entries, version %d", newSet.Len(), newSet.Version)
			})
			log.Printf("signature watch ended: %v", err)
		}()
	}

	go func() {
		ticker := time.NewTicker(time.Minute)
		for range ticker.C {
			allowed, blocked := proxy.Stats()
			m := eng.Metrics()
			line := fmt.Sprintf("stats: %d allowed, %d blocked; engine v%d sigs=%d reloads=%d vetted=%d matched=%d",
				allowed, blocked, m.Version, m.Signatures, m.Reloads, m.SyncVetted, m.SyncMatched)
			if fwd != nil {
				sent, dropped := fwd.stats()
				line += fmt.Sprintf("; learn fwd=%d dropped=%d", sent, dropped)
			}
			log.Print(line)
		}
	}()

	hs := &http.Server{Addr: *addr, Handler: proxy}
	ctx, sigStop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer sigStop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	sigStop()
	log.Printf("shutting down: draining proxied requests")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	hs.Shutdown(sctx)
	cancel()
	watchStop()
	if fwd != nil {
		// Ship whatever misses are still buffered before the learner
		// loses them.
		fwd.close()
	}
	eng.Close()
	// Deferred shipper.Close flushes pending event batches.
}

// missForwarder batches unmatched packets and ships them to a siggend
// /observe intake. The offer path is one non-blocking channel send, so a
// slow or absent learner never adds latency to proxied requests; the
// shipping side carries its own HTTP timeout so a hung learner costs one
// failed batch, never a wedged forwarder.
type missForwarder struct {
	ch      chan *httpmodel.Packet
	url     string
	token   string
	hc      *http.Client
	br      *resilience.Breaker
	tracer  *trace.Tracer
	flight  *trace.Flight
	sent    atomic.Int64
	dropped atomic.Int64
	shed    atomic.Int64
	stop    chan struct{}
	done    chan struct{}
}

// forwarderBatch bounds one POST; forwarderLinger bounds how long a
// partial batch waits before shipping anyway; forwarderTimeout bounds
// one POST round trip.
const (
	forwarderBatch   = 64
	forwarderLinger  = 500 * time.Millisecond
	forwarderTimeout = 10 * time.Second
)

func newMissForwarder(base, token string, hc *http.Client, tracer *trace.Tracer, flight *trace.Flight) *missForwarder {
	if hc == nil {
		hc = &http.Client{Timeout: forwarderTimeout}
	} else if hc.Timeout == 0 {
		hc.Timeout = forwarderTimeout
	}
	f := &missForwarder{
		ch:     make(chan *httpmodel.Packet, 1024),
		url:    base + "/observe",
		token:  token,
		hc:     hc,
		br:     resilience.NewBreaker(resilience.BreakerConfig{}),
		tracer: tracer,
		flight: flight,
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	go f.run()
	return f
}

// close drains whatever is already buffered into a final batch, ships it
// once, and stops the forwarder goroutine. Safe to call once.
func (f *missForwarder) close() {
	close(f.stop)
	<-f.done
}

func (f *missForwarder) offer(p *httpmodel.Packet) {
	// Tag sampled misses with an ID only — the proxy vets inline, so
	// there are no local stage timestamps worth a span; the learner
	// adopts the ID and the stages it stamps downstream carry it through
	// to the published set's provenance.
	if p.Trace == "" {
		p.Trace = f.tracer.StartID()
	}
	select {
	case f.ch <- p:
	default:
		f.dropped.Add(1)
		f.flight.RecordDrop(-1, p.Trace)
	}
}

func (f *missForwarder) stats() (sent, dropped int64) {
	return f.sent.Load(), f.dropped.Load()
}

func (f *missForwarder) run() {
	defer close(f.done)
	t := time.NewTicker(forwarderLinger)
	defer t.Stop()
	batch := make([]*httpmodel.Packet, 0, forwarderBatch)
	ship := func() {
		if len(batch) == 0 {
			return
		}
		if !f.br.Allow() {
			// Learner known-dead: shed the batch without dialing so the
			// forwarder goroutine never queues behind connect timeouts.
			f.dropped.Add(int64(len(batch)))
			f.shed.Add(int64(len(batch)))
			batch = batch[:0]
			return
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, p := range batch {
			enc.Encode(p)
		}
		req, err := http.NewRequest(http.MethodPost, f.url, &buf)
		if err != nil {
			log.Printf("learn forward: %v", err)
			f.dropped.Add(int64(len(batch)))
			batch = batch[:0]
			return
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		if f.token != "" {
			req.Header.Set("Authorization", "Bearer "+f.token)
		}
		resp, err := f.hc.Do(req)
		switch {
		case err != nil:
			log.Printf("learn forward: %v", err)
			f.dropped.Add(int64(len(batch)))
			f.br.Record(err)
		default:
			// Drain before closing so the connection returns to the
			// keep-alive pool instead of being torn down per batch.
			io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			resp.Body.Close()
			if resp.StatusCode >= 300 {
				log.Printf("learn forward: %s", resp.Status)
				f.dropped.Add(int64(len(batch)))
			} else {
				f.sent.Add(int64(len(batch)))
			}
			// Any HTTP status means the learner answered; only transport
			// failures push the breaker toward open.
			f.br.Record(nil)
		}
		batch = batch[:0]
	}
	for {
		select {
		case p := <-f.ch:
			batch = append(batch, p)
			if len(batch) >= forwarderBatch {
				ship()
			}
		case <-t.C:
			ship()
		case <-f.stop:
			// Final flush: drain what is already buffered, ship, exit.
			for {
				select {
				case p := <-f.ch:
					batch = append(batch, p)
					if len(batch) >= forwarderBatch {
						ship()
					}
					continue
				default:
				}
				break
			}
			ship()
			return
		}
	}
}
