// Command flowproxy runs the on-device information flow control
// application of the paper's Figure 3(b) as a local HTTP forward proxy:
// point applications (or a test client) at it, and it vets every request
// against the signature set, blocking or logging transmissions of
// sensitive information.
//
// Usage:
//
//	flowproxy -addr :8080 -sigs signatures.json -policy block
//	flowproxy -addr :8080 -server http://sigserver:8700 -refresh 30s
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"time"

	"leaksig/internal/flowcontrol"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowproxy: ")
	var (
		addr    = flag.String("addr", ":8080", "proxy listen address")
		sigsIn  = flag.String("sigs", "", "signature set file (static)")
		server  = flag.String("server", "", "signature server base URL (dynamic)")
		refresh = flag.Duration("refresh", 30*time.Second, "poll interval with -server")
		policy  = flag.String("policy", "block", "block | log (log allows but records)")
	)
	flag.Parse()

	set := &signature.Set{}
	if *sigsIn != "" {
		f, err := os.Open(*sigsIn)
		if err != nil {
			log.Fatalf("opening signatures: %v", err)
		}
		set, err = signature.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("reading signatures: %v", err)
		}
	}

	var pol flowcontrol.Policy
	switch *policy {
	case "block":
		pol = flowcontrol.BlockMatched()
	case "log":
		pol = flowcontrol.PolicyFunc(func(p *httpmodel.Packet, matched []int) flowcontrol.Action {
			if len(matched) > 0 {
				log.Printf("LEAK (allowed by policy): %s %s%s matched %v", p.Method, p.Host, p.Path, matched)
			}
			return flowcontrol.Allow
		})
	default:
		log.Fatalf("unknown policy %q", *policy)
	}

	proxy := flowcontrol.NewProxy(set, pol, nil)
	fmt.Printf("flow control proxy on %s with %d signatures (policy: %s)\n",
		*addr, set.Len(), *policy)

	if *server != "" {
		client := sigserver.NewClient(*server, nil)
		go func() {
			// Watch long-polls the server's /wait endpoint, so updates
			// land within one round trip; -refresh only bounds the retry
			// and fallback cadence.
			err := client.Watch(context.Background(), *refresh, func(newSet *signature.Set) {
				proxy.SetSignatures(newSet)
				log.Printf("signatures updated: %d entries, version %d", newSet.Len(), newSet.Version)
			})
			log.Printf("signature watch ended: %v", err)
		}()
	}

	go func() {
		ticker := time.NewTicker(time.Minute)
		for range ticker.C {
			allowed, blocked := proxy.Stats()
			log.Printf("stats: %d allowed, %d blocked", allowed, blocked)
		}
	}()

	if err := http.ListenAndServe(*addr, proxy); err != nil {
		log.Fatal(err)
	}
}
