// Command leakdetect applies a generated signature set to a capture and
// reports detections; with the device identity it also scores the result
// using the paper's TP/FN/FP equations (§V-B).
//
// Usage:
//
//	leakdetect -in capture.jsonl -sigs sigs.json [-device device.json] [-n 500]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"

	"leaksig/internal/android"
	"leaksig/internal/capture"
	"leaksig/internal/detect"
	"leaksig/internal/report"
	"leaksig/internal/sensitive"
	"leaksig/internal/signature"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("leakdetect: ")
	var (
		in     = flag.String("in", "capture.jsonl", "capture input (jsonl or binary)")
		sigsIn = flag.String("sigs", "signatures.json", "signature set")
		device = flag.String("device", "", "device identity file (enables scoring)")
		n      = flag.Int("n", 0, "training sample size used when generating the signatures")
		top    = flag.Int("top", 10, "show this many most-hit signatures")
	)
	flag.Parse()

	set, err := loadCapture(*in)
	if err != nil {
		log.Fatalf("loading capture: %v", err)
	}
	sf, err := os.Open(*sigsIn)
	if err != nil {
		log.Fatalf("opening signatures: %v", err)
	}
	sigs, err := signature.ReadJSON(sf)
	sf.Close()
	if err != nil {
		log.Fatalf("reading signatures: %v", err)
	}
	eng := detect.NewEngine(sigs)

	hits := make(map[int]int)
	detected := 0
	for _, p := range set.Packets {
		ids := eng.MatchPacket(p)
		if len(ids) > 0 {
			detected++
		}
		for _, id := range ids {
			hits[id]++
		}
	}
	fmt.Printf("capture: %d packets; %d signatures; %d packets matched\n",
		set.Len(), sigs.Len(), detected)

	tbl := report.NewTable("most-hit signatures", "sig", "hits", "tokens")
	shown := 0
	for _, s := range sigs.Signatures {
		if hits[s.ID] == 0 {
			continue
		}
		if shown >= *top {
			break
		}
		tok := ""
		if len(s.Tokens) > 0 {
			tok = s.Tokens[0]
			if len(tok) > 48 {
				tok = tok[:48] + "..."
			}
		}
		tbl.AddRow(s.ID, hits[s.ID], fmt.Sprintf("%d tokens, first %q", len(s.Tokens), tok))
		shown++
	}
	fmt.Print(tbl.String())

	if *device == "" {
		return
	}
	df, err := os.Open(*device)
	if err != nil {
		log.Fatalf("opening device: %v", err)
	}
	var dev android.Device
	err = json.NewDecoder(df).Decode(&dev)
	df.Close()
	if err != nil {
		log.Fatalf("decoding device: %v", err)
	}
	oracle := sensitive.NewOracle(&dev)
	labels := make([]bool, set.Len())
	for i, p := range set.Packets {
		labels[i] = oracle.IsSensitive(p)
	}
	res := detect.Evaluate(eng, set, labels, *n)
	fmt.Printf("\nscoring against payload check (N=%d):\n", *n)
	fmt.Printf("  sensitive %d / normal %d\n", res.SensitiveTotal, res.NormalTotal)
	fmt.Printf("  TP %s  FN %s  FP %s\n",
		report.Percent(res.TruePositiveRate),
		report.Percent(res.FalseNegativeRate),
		report.Percent(res.FalsePositiveRate))
}

func loadCapture(path string) (*capture.Set, error) {
	if set, err := capture.LoadBinary(path); err == nil {
		return set, nil
	}
	return capture.LoadJSONL(path)
}
