// Command sigserver serves a signature set over HTTP — the distribution
// half of the paper's Figure 3(a). Devices running flowproxy or
// leakstream watch it for updates; a new set can be published into the
// running server through the publish endpoint, and every long-poll
// watcher picks the rollover up within one round trip.
//
// Usage:
//
//	sigserver -addr :8700 -sigs signatures.json -token S3CRET
//	sigserver -addr 127.0.0.1:8700          # start empty; siggend/leakstream -learn fill it
//	curl -X POST -H 'Authorization: Bearer S3CRET' \
//	     --data-binary @new.json http://127.0.0.1:8700/publish
//
// A publish whose body carries a non-zero "version" engages the
// strict-increase guard: versions at or below the current one are
// rejected with 409 Conflict (and counted in GET /stats as
// publishes_rejected), so a stale or looping auto-publisher can never
// roll the fleet backwards. A zero version auto-bumps, preserving the
// manual curl workflow.
//
// GET /metrics serves Prometheus text exposition (per-set publish
// counters under the set label, the default set as the empty label);
// GET /readyz answers 503 until a seed load or first publish gives the
// server something to distribute. -events-url ships every accepted
// publish as a structured NDJSON event; -debug-addr opens a private
// listener with /metrics and /debug/pprof.
//
// -journal makes publishes crash-safe: every accepted set appends to an
// fsync'd CRC-framed journal, and a restarted server replays it before
// listening, so named-set versions stay strictly increasing across a
// SIGKILL and no watcher ever observes a rollback. -journal-fsync picks
// the durability/latency trade (always | interval | never). SIGTERM
// drains in-flight requests, syncs the journal, and flushes the event
// shipper before exiting.
//
// Without -token the publish endpoint is open: bind -addr to loopback
// (or front it with an authenticating proxy) before exposing the
// read-only API beyond the host, or anyone who can reach the port can
// replace the fleet's signature set.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"leaksig/internal/durable"
	"leaksig/internal/obs"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// replayCount is Replayed on a possibly-nil journal.
func replayCount(j *durable.ServerJournal) (restored, skipped int) {
	if j == nil {
		return 0, 0
	}
	return j.Replayed()
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("sigserver: ")
	var (
		addr   = flag.String("addr", ":8700", "listen address")
		sigsIn = flag.String("sigs", "", "signature set to publish at startup (empty: start empty at version 0)")
		token  = flag.String("token", "", "bearer token required on POST /publish (empty: unauthenticated)")

		journalPath  = flag.String("journal", "", "durable publish journal: replay on start, append every accepted publish (empty: publishes live in memory only)")
		journalFsync = flag.String("journal-fsync", "always", "journal fsync policy: always | interval | never")

		eventsURL   = flag.String("events-url", "", "ship structured events as batched NDJSON POSTs to this endpoint")
		eventsToken = flag.String("events-token", "", "bearer token for -events-url uploads")
		debugAddr   = flag.String("debug-addr", "", "private ops listener: /metrics, /healthz, /debug/pprof")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	reg.Register(obs.BuildInfoCollector())
	var shipper *obs.Shipper
	if *eventsURL != "" {
		shipper = obs.NewShipper(obs.ShipperConfig{URL: *eventsURL, Token: *eventsToken, Node: "sigserver"})
		defer shipper.Close()
		reg.Register(shipper)
	}

	srv := sigserver.New()
	reg.Register(obs.SigserverCollector(srv.Stats))

	// Attach the journal BEFORE the log/ship hook: replayed publishes
	// restore state silently, and only live publishes reach the ops
	// plane as events.
	var journal *durable.ServerJournal
	if *journalPath != "" {
		policy, err := durable.ParseFsyncPolicy(*journalFsync)
		if err != nil {
			log.Fatalf("-journal-fsync: %v", err)
		}
		journal, err = durable.AttachServerJournal(srv, *journalPath, durable.JournalConfig{Fsync: policy})
		if err != nil {
			log.Fatalf("opening journal: %v", err)
		}
		defer journal.Close()
		reg.Register(obs.JournalCollector(journal.Stats))
		if restored, skipped := journal.Replayed(); restored > 0 || skipped > 0 {
			_, v := srv.Current()
			log.Printf("journal %s: replayed %d sets, skipped %d records (default set at version %d)",
				*journalPath, restored, skipped, v)
		}
	}

	srv.OnPublishNamed(func(name string, v int64) {
		if name == "" {
			log.Printf("published version %d", v)
		} else {
			log.Printf("published set %q version %d", name, v)
		}
		if shipper != nil {
			shipper.Ship(obs.Event{Type: "publish", Set: name, Version: v})
		}
	})

	if *sigsIn != "" {
		f, err := os.Open(*sigsIn)
		if err != nil {
			log.Fatalf("opening signatures: %v", err)
		}
		set, err := signature.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("reading signatures: %v", err)
		}
		version := srv.Publish(set)
		fmt.Printf("published %d signatures as version %d\n", set.Len(), version)
	} else if restored, _ := replayCount(journal); restored > 0 {
		_, v := srv.Current()
		fmt.Printf("resuming from journal at version %d\n", v)
	} else {
		fmt.Println("starting empty at version 0 (publish to fill)")
	}

	if *debugAddr != "" {
		go func() {
			log.Printf("debug listener on %s (/metrics, /debug/pprof)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.DebugHandler(reg, nil)); err != nil {
				log.Fatal(err)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.HandlerWithPublish(*token))
	mux.Handle("GET /metrics", reg.Handler())
	hs := &http.Server{Addr: *addr, Handler: mux}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	fmt.Printf("serving on %s (GET /signatures, /version, /wait, /stats, /metrics, /healthz, /readyz; POST /publish)\n", *addr)

	select {
	case err := <-errc:
		log.Fatal(err)
	case <-ctx.Done():
	}
	stop()
	log.Printf("shutting down: draining requests")
	sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := hs.Shutdown(sctx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("shutdown: %v", err)
	}
	cancel()
	if journal != nil {
		if err := journal.Sync(); err != nil {
			log.Printf("journal sync: %v", err)
		}
	}
	// Deferred journal.Close and shipper.Close run now: final fsync and
	// a last event flush before exit.
}
