// Command sigserver serves a signature set over HTTP — the distribution
// half of the paper's Figure 3(a). Devices running flowproxy or
// leakstream watch it for updates; a new set can be published into the
// running server through the publish endpoint, and every long-poll
// watcher picks the rollover up within one round trip.
//
// Usage:
//
//	sigserver -addr :8700 -sigs signatures.json -token S3CRET
//	sigserver -addr 127.0.0.1:8700          # start empty; siggend/leakstream -learn fill it
//	curl -X POST -H 'Authorization: Bearer S3CRET' \
//	     --data-binary @new.json http://127.0.0.1:8700/publish
//
// A publish whose body carries a non-zero "version" engages the
// strict-increase guard: versions at or below the current one are
// rejected with 409 Conflict (and counted in GET /stats as
// publishes_rejected), so a stale or looping auto-publisher can never
// roll the fleet backwards. A zero version auto-bumps, preserving the
// manual curl workflow.
//
// Without -token the publish endpoint is open: bind -addr to loopback
// (or front it with an authenticating proxy) before exposing the
// read-only API beyond the host, or anyone who can reach the port can
// replace the fleet's signature set.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sigserver: ")
	var (
		addr   = flag.String("addr", ":8700", "listen address")
		sigsIn = flag.String("sigs", "", "signature set to publish at startup (empty: start empty at version 0)")
		token  = flag.String("token", "", "bearer token required on POST /publish (empty: unauthenticated)")
	)
	flag.Parse()

	srv := sigserver.New()
	srv.OnPublish(func(v int64) { log.Printf("published version %d", v) })

	if *sigsIn != "" {
		f, err := os.Open(*sigsIn)
		if err != nil {
			log.Fatalf("opening signatures: %v", err)
		}
		set, err := signature.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("reading signatures: %v", err)
		}
		version := srv.Publish(set)
		fmt.Printf("published %d signatures as version %d\n", set.Len(), version)
	} else {
		fmt.Println("starting empty at version 0 (publish to fill)")
	}

	fmt.Printf("serving on %s (GET /signatures, /version, /wait, /stats, /healthz; POST /publish)\n", *addr)
	if err := http.ListenAndServe(*addr, srv.HandlerWithPublish(*token)); err != nil {
		log.Fatal(err)
	}
}
