// Command sigserver serves a signature set over HTTP — the distribution
// half of the paper's Figure 3(a). Devices running flowproxy poll it for
// updates.
//
// Usage:
//
//	sigserver -addr :8700 -sigs signatures.json
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sigserver: ")
	var (
		addr   = flag.String("addr", ":8700", "listen address")
		sigsIn = flag.String("sigs", "signatures.json", "signature set to publish")
	)
	flag.Parse()

	f, err := os.Open(*sigsIn)
	if err != nil {
		log.Fatalf("opening signatures: %v", err)
	}
	set, err := signature.ReadJSON(f)
	f.Close()
	if err != nil {
		log.Fatalf("reading signatures: %v", err)
	}

	srv := sigserver.New()
	version := srv.Publish(set)
	fmt.Printf("published %d signatures as version %d\n", set.Len(), version)
	fmt.Printf("serving on %s (GET /signatures, /version, /healthz)\n", *addr)
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		log.Fatal(err)
	}
}
