// Command sigserver serves a signature set over HTTP — the distribution
// half of the paper's Figure 3(a). Devices running flowproxy or
// leakstream watch it for updates; a new set can be published into the
// running server through the admin endpoint, and every long-poll watcher
// picks the rollover up within one round trip.
//
// Usage:
//
//	sigserver -addr :8700 -sigs signatures.json -token S3CRET
//	curl -X POST -H 'Authorization: Bearer S3CRET' \
//	     --data-binary @new.json http://127.0.0.1:8700/publish
//
// Without -token the publish endpoint is open: bind -addr to loopback
// (or front it with an authenticating proxy) before exposing the
// read-only API beyond the host, or anyone who can reach the port can
// replace the fleet's signature set.
package main

import (
	"crypto/subtle"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sigserver: ")
	var (
		addr   = flag.String("addr", ":8700", "listen address")
		sigsIn = flag.String("sigs", "signatures.json", "signature set to publish")
		token  = flag.String("token", "", "bearer token required on POST /publish (empty: unauthenticated)")
	)
	flag.Parse()

	f, err := os.Open(*sigsIn)
	if err != nil {
		log.Fatalf("opening signatures: %v", err)
	}
	set, err := signature.ReadJSON(f)
	f.Close()
	if err != nil {
		log.Fatalf("reading signatures: %v", err)
	}

	srv := sigserver.New()
	srv.OnPublish(func(v int64) { log.Printf("published version %d", v) })
	version := srv.Publish(set)
	fmt.Printf("published %d signatures as version %d\n", set.Len(), version)

	mux := http.NewServeMux()
	mux.Handle("/", srv.Handler())
	mux.HandleFunc("POST /publish", func(w http.ResponseWriter, r *http.Request) {
		if *token != "" {
			if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+*token)) != 1 {
				http.Error(w, "missing or wrong bearer token", http.StatusUnauthorized)
				return
			}
		}
		newSet, err := signature.ReadJSON(r.Body)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad signature set: %v", err), http.StatusBadRequest)
			return
		}
		v := srv.Publish(newSet)
		fmt.Fprintf(w, "%d\n", v)
	})

	fmt.Printf("serving on %s (GET /signatures, /version, /wait, /healthz; POST /publish)\n", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
