// Command sigserver serves a signature set over HTTP — the distribution
// half of the paper's Figure 3(a). Devices running flowproxy or
// leakstream watch it for updates; a new set can be published into the
// running server through the publish endpoint, and every long-poll
// watcher picks the rollover up within one round trip.
//
// Usage:
//
//	sigserver -addr :8700 -sigs signatures.json -token S3CRET
//	sigserver -addr 127.0.0.1:8700          # start empty; siggend/leakstream -learn fill it
//	curl -X POST -H 'Authorization: Bearer S3CRET' \
//	     --data-binary @new.json http://127.0.0.1:8700/publish
//
// A publish whose body carries a non-zero "version" engages the
// strict-increase guard: versions at or below the current one are
// rejected with 409 Conflict (and counted in GET /stats as
// publishes_rejected), so a stale or looping auto-publisher can never
// roll the fleet backwards. A zero version auto-bumps, preserving the
// manual curl workflow.
//
// GET /metrics serves Prometheus text exposition (per-set publish
// counters under the set label, the default set as the empty label);
// GET /readyz answers 503 until a seed load or first publish gives the
// server something to distribute. -events-url ships every accepted
// publish as a structured NDJSON event; -debug-addr opens a private
// listener with /metrics and /debug/pprof.
//
// Without -token the publish endpoint is open: bind -addr to loopback
// (or front it with an authenticating proxy) before exposing the
// read-only API beyond the host, or anyone who can reach the port can
// replace the fleet's signature set.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"leaksig/internal/obs"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("sigserver: ")
	var (
		addr   = flag.String("addr", ":8700", "listen address")
		sigsIn = flag.String("sigs", "", "signature set to publish at startup (empty: start empty at version 0)")
		token  = flag.String("token", "", "bearer token required on POST /publish (empty: unauthenticated)")

		eventsURL   = flag.String("events-url", "", "ship structured events as batched NDJSON POSTs to this endpoint")
		eventsToken = flag.String("events-token", "", "bearer token for -events-url uploads")
		debugAddr   = flag.String("debug-addr", "", "private ops listener: /metrics, /healthz, /debug/pprof")
	)
	flag.Parse()

	reg := obs.NewRegistry()
	reg.Register(obs.BuildInfoCollector())
	var shipper *obs.Shipper
	if *eventsURL != "" {
		shipper = obs.NewShipper(obs.ShipperConfig{URL: *eventsURL, Token: *eventsToken, Node: "sigserver"})
		defer shipper.Close()
		reg.Register(shipper)
	}

	srv := sigserver.New()
	reg.Register(obs.SigserverCollector(srv.Stats))
	srv.OnPublishNamed(func(name string, v int64) {
		if name == "" {
			log.Printf("published version %d", v)
		} else {
			log.Printf("published set %q version %d", name, v)
		}
		if shipper != nil {
			shipper.Ship(obs.Event{Type: "publish", Set: name, Version: v})
		}
	})

	if *sigsIn != "" {
		f, err := os.Open(*sigsIn)
		if err != nil {
			log.Fatalf("opening signatures: %v", err)
		}
		set, err := signature.ReadJSON(f)
		f.Close()
		if err != nil {
			log.Fatalf("reading signatures: %v", err)
		}
		version := srv.Publish(set)
		fmt.Printf("published %d signatures as version %d\n", set.Len(), version)
	} else {
		fmt.Println("starting empty at version 0 (publish to fill)")
	}

	if *debugAddr != "" {
		go func() {
			log.Printf("debug listener on %s (/metrics, /debug/pprof)", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, obs.DebugHandler(reg, nil)); err != nil {
				log.Fatal(err)
			}
		}()
	}

	mux := http.NewServeMux()
	mux.Handle("/", srv.HandlerWithPublish(*token))
	mux.Handle("GET /metrics", reg.Handler())
	fmt.Printf("serving on %s (GET /signatures, /version, /wait, /stats, /metrics, /healthz, /readyz; POST /publish)\n", *addr)
	if err := http.ListenAndServe(*addr, mux); err != nil {
		log.Fatal(err)
	}
}
