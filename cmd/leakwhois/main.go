// Command leakwhois answers allocation queries against the synthetic
// registry exported by leakgen -orgs — the paper's §VI proposal to verify
// IP-prefix closeness through registration data.
//
// Usage:
//
//	leakwhois -orgs orgs.json 203.0.113.9              # lookup
//	leakwhois -orgs orgs.json -verify 23.16.0.1,23.16.9.9 -prefix 16
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"leaksig/internal/ipaddr"
	"leaksig/internal/whois"
)

func loadRegistry(path string) (*whois.Registry, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var raw map[string]string
	if err := json.NewDecoder(f).Decode(&raw); err != nil {
		return nil, fmt.Errorf("decoding orgs file: %w", err)
	}
	blocks := make(map[string]ipaddr.Block, len(raw))
	for org, cidr := range raw {
		b, err := ipaddr.ParseBlock(cidr)
		if err != nil {
			return nil, fmt.Errorf("org %s: %w", org, err)
		}
		blocks[org] = b
	}
	return whois.NewRegistry(blocks), nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("leakwhois: ")
	var (
		orgs   = flag.String("orgs", "orgs.json", "organization registry from leakgen -orgs")
		verify = flag.String("verify", "", "comma-separated address pair to verify")
		prefix = flag.Int("prefix", 16, "shared-prefix claim to verify (bits)")
	)
	flag.Parse()

	reg, err := loadRegistry(*orgs)
	if err != nil {
		log.Fatalf("loading registry: %v", err)
	}

	if *verify != "" {
		parts := strings.SplitN(*verify, ",", 2)
		if len(parts) != 2 {
			log.Fatal("-verify wants ADDR,ADDR")
		}
		a, err := ipaddr.Parse(strings.TrimSpace(parts[0]))
		if err != nil {
			log.Fatalf("first address: %v", err)
		}
		b, err := ipaddr.Parse(strings.TrimSpace(parts[1]))
		if err != nil {
			log.Fatalf("second address: %v", err)
		}
		shared := ipaddr.CommonPrefixLen(a, b)
		verdict := reg.VerifyCloseness(a, b, *prefix)
		fmt.Printf("%s and %s share %d bits; claim at /%d: %s\n",
			a, b, shared, *prefix, verdict)
		return
	}

	if flag.NArg() == 0 {
		log.Fatal("give addresses to look up, or use -verify")
	}
	for _, arg := range flag.Args() {
		a, err := ipaddr.Parse(arg)
		if err != nil {
			log.Fatalf("address %q: %v", arg, err)
		}
		fmt.Print(reg.Text(a))
	}
}
