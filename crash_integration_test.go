package leaksig

// Crash-safety end to end: a journal-backed sigserver is SIGKILLed in
// the middle of a publish burst, restarted against the same journal, and
// must come back with every acknowledged set at a version at least as
// high as the one it acknowledged — versions monotonic, no set lost.
// The server runs as a re-exec of this test binary (TestHelperSigserver)
// so the kill is a real SIGKILL of a real process, not a simulated one.
//
// The second test is the degraded-boot path in-process: an engine boots
// from a last-known-good signature cache while the server is down, keeps
// matching, and converges back to the live set (updating the cache) the
// moment the server answers.

import (
	"context"
	"errors"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"leaksig/internal/durable"
	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// TestHelperSigserver is not a test: it is the child process of
// TestKillRestartPublishBurst — a journal-backed sigserver that serves
// until killed. Gated on an env var so a plain `go test` skips it.
func TestHelperSigserver(t *testing.T) {
	if os.Getenv("LEAKSIG_CRASH_HELPER") != "1" {
		t.Skip("helper process for TestKillRestartPublishBurst")
	}
	srv := sigserver.New()
	if _, err := durable.AttachServerJournal(srv, os.Getenv("LEAKSIG_CRASH_JOURNAL"), durable.JournalConfig{}); err != nil {
		fmt.Fprintf(os.Stderr, "helper: journal: %v\n", err)
		os.Exit(1)
	}
	l, err := net.Listen("tcp", os.Getenv("LEAKSIG_CRASH_ADDR"))
	if err != nil {
		fmt.Fprintf(os.Stderr, "helper: listen: %v\n", err)
		os.Exit(1)
	}
	// The parent polls /version to know the helper is up.
	http.Serve(l, srv.HandlerWithPublish(""))
}

// crashTestSet builds a small distinguishable set for one publish.
func crashTestSet(name string, version int64) *signature.Set {
	return &signature.Set{
		Version: version,
		Signatures: []*signature.Signature{{
			ID:     1,
			Kind:   signature.KindConjunction,
			Tokens: []string{"uid=", fmt.Sprintf("%s-v%d", name, version)},
		}},
	}
}

// startHelper spawns the re-exec'd sigserver and waits until it serves.
func startHelper(t *testing.T, addr, journal string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run", "^TestHelperSigserver$", "-test.v")
	cmd.Env = append(os.Environ(),
		"LEAKSIG_CRASH_HELPER=1",
		"LEAKSIG_CRASH_ADDR="+addr,
		"LEAKSIG_CRASH_JOURNAL="+journal,
	)
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting helper: %v", err)
	}
	c := sigserver.NewClient("http://"+addr, nil)
	deadline := time.Now().Add(10 * time.Second)
	for {
		ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
		_, err := c.Version(ctx)
		cancel()
		if err == nil {
			return cmd
		}
		if time.Now().After(deadline) {
			cmd.Process.Kill()
			t.Fatalf("helper never served on %s: %v", addr, err)
		}
		time.Sleep(25 * time.Millisecond)
	}
}

func TestKillRestartPublishBurst(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns and SIGKILLs a child process")
	}
	dir := t.TempDir()
	journal := filepath.Join(dir, "publish.journal")

	// A fixed port the restarted server can reuse: grab a free one, free
	// it, and hand the address to both helper runs.
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := l.Addr().String()
	l.Close()

	helper := startHelper(t, addr, journal)
	base := "http://" + addr

	// The burst: one publisher goroutine per set, each driving explicit
	// strictly-increasing versions and recording the highest version the
	// server ACKNOWLEDGED. After the kill, only acknowledged versions
	// are owed to us — an unacked publish may legitimately be lost.
	names := []string{"", "tenant-a", "tenant-b", "tenant-c"}
	acked := make([]atomic.Int64, len(names))
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, name string) {
			defer wg.Done()
			c := sigserver.NewClient(base, nil)
			for v := int64(1); ; v++ {
				select {
				case <-stop:
					return
				default:
				}
				ctx, cancel := context.WithTimeout(context.Background(), time.Second)
				var got int64
				var err error
				if name == "" {
					got, err = c.Publish(ctx, crashTestSet("default", v))
				} else {
					got, err = c.PublishNamed(ctx, name, crashTestSet(name, v))
				}
				cancel()
				if err != nil {
					// Post-kill connection errors: keep spinning until the
					// test says stop; the burst must be mid-flight at kill
					// time, so we do not exit on first failure.
					continue
				}
				acked[i].Store(got)
			}
		}(i, name)
	}

	// Let the burst land some publishes, then SIGKILL mid-flight.
	deadline := time.Now().Add(10 * time.Second)
	for {
		landed := 0
		for i := range names {
			if acked[i].Load() >= 3 {
				landed++
			}
		}
		if landed == len(names) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("burst never landed 3 versions per set; acked=%v", ackSnapshot(acked))
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := helper.Process.Signal(syscall.SIGKILL); err != nil {
		t.Fatalf("SIGKILL: %v", err)
	}
	helper.Wait()
	close(stop)
	wg.Wait()
	ackedAtKill := ackSnapshot(acked)

	// Restart against the same journal: every acknowledged version must
	// still be there (or newer — an in-flight publish may have committed
	// to the journal after the ack we saw).
	helper2 := startHelper(t, addr, journal)
	defer func() {
		helper2.Process.Kill()
		helper2.Wait()
	}()
	c := sigserver.NewClient(base, nil)
	ctx := context.Background()
	for i, name := range names {
		var v int64
		var err error
		if name == "" {
			v, err = c.Version(ctx)
		} else {
			v, err = c.VersionNamed(ctx, name)
		}
		if err != nil {
			t.Fatalf("version of %q after restart: %v", name, err)
		}
		if v < ackedAtKill[i] {
			t.Fatalf("set %q rolled back: acked version %d before kill, serving %d after restart", name, ackedAtKill[i], v)
		}
		// The set content must have survived, not just the counter.
		var set *signature.Set
		var ok bool
		if name == "" {
			set, ok, err = c.Fetch(ctx)
		} else {
			set, ok, err = c.FetchNamed(ctx, name)
		}
		if err != nil || !ok || set.Len() == 0 {
			t.Fatalf("set %q after restart: ok=%v len-err=%v", name, ok, err)
		}
	}

	// And the sequences keep going: a publish one past the restored
	// version is accepted, a stale one is rejected — the monotonic guard
	// survived the crash too.
	v, err := c.VersionNamed(ctx, "tenant-a")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PublishNamed(ctx, "tenant-a", crashTestSet("tenant-a", v)); !errors.Is(err, sigserver.ErrStaleVersion) {
		t.Fatalf("stale publish after restart: err=%v, want ErrStaleVersion", err)
	}
	if got, err := c.PublishNamed(ctx, "tenant-a", crashTestSet("tenant-a", v+1)); err != nil || got != v+1 {
		t.Fatalf("next publish after restart: got v%d, err=%v, want v%d", got, err, v+1)
	}
}

func ackSnapshot(acked []atomic.Int64) []int64 {
	out := make([]int64, len(acked))
	for i := range acked {
		out[i] = acked[i].Load()
	}
	return out
}

// TestDegradedBootFromSignatureCache is the leakstream fallback path in
// process form: with the server down, a boot from the last-known-good
// cache still matches traffic; when the server comes back, the watch
// delivery replaces the cached set and rewrites the cache.
func TestDegradedBootFromSignatureCache(t *testing.T) {
	dir := t.TempDir()
	cachePath := filepath.Join(dir, "sigs.cache")

	// A previous healthy run persisted version 3.
	prev, _, err := durable.OpenSetCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	cached := &signature.Set{
		Version: 3,
		Signatures: []*signature.Signature{{
			ID: 1, Kind: signature.KindConjunction,
			Tokens: []string{"imei=", "3579"},
		}},
	}
	if err := prev.Put("", cached); err != nil {
		t.Fatal(err)
	}

	// "Boot" with the server down: the cache loads and the engine serves
	// its set.
	cache, loaded, err := durable.OpenSetCache(cachePath)
	if err != nil {
		t.Fatal(err)
	}
	if !loaded || cache.Len() != 1 {
		t.Fatalf("cache reload: loaded=%v len=%d, want a 1-set cache", loaded, cache.Len())
	}
	set, ok := cache.Get("")
	if !ok || set.Version != 3 {
		t.Fatalf("cached default set: ok=%v version=%d, want version 3", ok, set.Version)
	}
	eng := engine.New(set, engine.Config{Shards: 1})
	defer eng.Close()
	leak := httpmodel.Get("x.ads.example", "/a").Query("imei", "3579").Build()
	if matched := eng.MatchPacket(leak); len(matched) == 0 {
		t.Fatal("degraded engine did not match against the cached set")
	}

	// The server comes back with version 4; the watch path applies it
	// and persists it, exactly as leakstream's liveDelivery does.
	srv := sigserver.New()
	live := &signature.Set{
		Version: 4,
		Signatures: []*signature.Signature{{
			ID: 2, Kind: signature.KindConjunction,
			Tokens: []string{"android_id=", "a1b2"},
		}},
	}
	if _, err := srv.PublishVersioned(live); err != nil {
		t.Fatal(err)
	}
	backend := httptest.NewServer(srv.Handler())
	defer backend.Close()

	client := sigserver.NewClient(backend.URL, backend.Client())
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := make(chan *signature.Set, 1)
	go client.Watch(ctx, time.Second, func(s *signature.Set) {
		if err := cache.Put("", s); err != nil {
			t.Errorf("cache put: %v", err)
		}
		eng.Reload(s)
		select {
		case delivered <- s:
		default:
		}
	})
	select {
	case s := <-delivered:
		if s.Version != 4 {
			t.Fatalf("watch delivered version %d, want 4", s.Version)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watch never delivered the live set")
	}
	if eng.Version() != 4 {
		t.Fatalf("engine version %d after recovery, want 4", eng.Version())
	}

	// The cache on disk now holds the live set: the next degraded boot
	// starts from version 4, not 3.
	after, loaded, err := durable.OpenSetCache(cachePath)
	if err != nil || !loaded {
		t.Fatalf("reopening cache: loaded=%v err=%v", loaded, err)
	}
	got, ok := after.Get("")
	if !ok || got.Version != 4 {
		t.Fatalf("persisted set version %d (ok=%v), want 4", got.Version, ok)
	}
}
