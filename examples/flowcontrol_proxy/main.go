// flowcontrol_proxy demonstrates the paper's deployment (Figure 3) end to
// end on localhost:
//
//  1. a signature server publishes signatures learned from a synthetic
//     capture (Figure 3a),
//  2. a flow-control proxy fetches them and starts vetting traffic
//     (Figure 3b),
//  3. a simulated application sends benign and leaking requests through
//     the proxy: the benign ones reach the origin, the leaking ones are
//     blocked, and the audit log records every decision.
package main

import (
	"context"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"

	"leaksig/internal/android"
	"leaksig/internal/core"
	"leaksig/internal/flowcontrol"
	"leaksig/internal/sensitive"
	"leaksig/internal/sigserver"
	"leaksig/internal/trafficgen"
)

func main() {
	log.SetFlags(0)

	// --- Figure 3a: collect traffic, cluster, publish signatures. ---
	fmt.Println("[server] generating capture and learning signatures...")
	ds := trafficgen.Generate(trafficgen.Config{Seed: 4, NumApps: 150, TotalPackets: 12000})
	oracle := sensitive.NewOracle(ds.Device)
	suspicious := ds.Capture.Filter(oracle.IsSensitive)
	sample := suspicious.Sample(rand.New(rand.NewSource(1)), 250)
	sigs := core.NewPipeline(core.Config{}).GenerateSignatures(sample.Packets)
	fmt.Printf("[server] %d signatures learned from %d sampled packets\n", sigs.Len(), sample.Len())

	srv := sigserver.New()
	srv.Publish(sigs)
	sigHTTP := httptest.NewServer(srv.Handler())
	defer sigHTTP.Close()
	fmt.Printf("[server] signature server at %s\n", sigHTTP.URL)

	// --- Figure 3b: the device-side proxy fetches and enforces. ---
	client := sigserver.NewClient(sigHTTP.URL, nil)
	fetched, _, err := client.Fetch(context.Background())
	if err != nil {
		log.Fatalf("fetching signatures: %v", err)
	}
	proxy := flowcontrol.NewProxy(fetched, flowcontrol.BlockMatched(), nil)
	proxyHTTP := httptest.NewServer(proxy)
	defer proxyHTTP.Close()
	fmt.Printf("[device] flow-control proxy at %s with %d signatures\n\n", proxyHTTP.URL, fetched.Len())

	// An origin standing in for the ad network / web services.
	origin := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "served "+r.URL.Path)
	}))
	defer origin.Close()

	// --- A simulated application sends traffic through the proxy. ---
	proxyURL, _ := url.Parse(proxyHTTP.URL)
	appClient := &http.Client{Transport: &http.Transport{Proxy: http.ProxyURL(proxyURL)}}
	device := ds.Device

	requests := []struct {
		label string
		url   string
	}{
		{"benign weather lookup", origin.URL + "/api/weather?city=tokyo&units=metric"},
		{"ad request leaking Android ID", origin.URL + "/ad/v2/fetch?zone=12&aid=" + device.AndroidID + "&fmt=json&seq=77"},
		{"benign image fetch", origin.URL + "/assets/img/logo1.png"},
		{"tracker leaking hashed Android ID", origin.URL + "/v1/imp?pub=abc123&dev=" + sensitive.MD5Hex(device.AndroidID) + "&sz=320x50&c=deadbeef"},
		{"benign search", origin.URL + "/search?q=recipe"},
	}
	for _, rq := range requests {
		resp, err := appClient.Get(rq.url)
		if err != nil {
			log.Fatalf("request failed: %v", err)
		}
		resp.Body.Close()
		verdict := "ALLOWED"
		if resp.StatusCode == http.StatusUnavailableForLegalReasons {
			verdict = "BLOCKED"
		}
		fmt.Printf("[app] %-38s -> %s (%d)\n", rq.label, verdict, resp.StatusCode)
	}

	// --- The audit trail the user can review. ---
	fmt.Println("\n[device] audit log:")
	for _, e := range proxy.Audit() {
		fmt.Printf("  %s %-22s %-40s %s (signatures %v)\n",
			e.Time.Format("15:04:05"), e.Host, truncate(e.Path, 40), e.Action, e.Matched)
	}
	allowed, blocked := proxy.Stats()
	fmt.Printf("\n[device] %d allowed, %d blocked — device: %s (%s)\n",
		allowed, blocked, device.Model, describe(device))
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}

func describe(d *android.Device) string {
	return "Android " + d.OSVersion + ", " + d.Carrier.Name
}
