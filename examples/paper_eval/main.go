// paper_eval reproduces every table and figure of the paper's evaluation
// in one run. By default it uses a reduced dataset so the full pipeline
// finishes in a few seconds; pass -full for the paper-scale 1,188-app /
// 107,859-packet configuration (Figure 4 then takes ~15s).
package main

import (
	"flag"
	"fmt"
	"log"

	"leaksig/internal/eval"
	"leaksig/internal/report"
	"leaksig/internal/trafficgen"
)

func main() {
	log.SetFlags(0)
	full := flag.Bool("full", false, "paper-scale dataset (1188 apps, 107859 packets)")
	flag.Parse()

	cfg := trafficgen.Config{Seed: 1, NumApps: 300, TotalPackets: 27000}
	ns := []int{50, 100, 150, 200, 250}
	if *full {
		cfg = trafficgen.Config{Seed: 1}
		ns = nil // paper's 100..500
	}
	fmt.Println("building dataset...")
	env := eval.NewEnv(cfg)
	fmt.Println(env.Describe())
	fmt.Println()

	t1 := report.NewTable("Table I — permission combinations", "combination", "# apps")
	for _, r := range env.TableI() {
		t1.AddRow(r.Combo.String(), r.Apps)
	}
	fmt.Println(t1.String())

	t2 := report.NewTable("Table II — destinations (top 10)", "host", "# packets", "# apps")
	for _, r := range env.TableII(10) {
		t2.AddRow(r.Host, r.Packets, r.Apps)
	}
	fmt.Println(t2.String())

	t3 := report.NewTable("Table III — sensitive information", "kind", "# packets", "# apps", "# hosts")
	for _, r := range env.TableIII() {
		t3.AddRow(r.Kind.String(), r.Packets, r.Apps, r.Hosts)
	}
	fmt.Println(t3.String())

	f2 := env.Figure2()
	fmt.Printf("Figure 2 — destinations per app: mean %.1f, max %d, %.0f%% single-destination, %.0f%% <=10\n\n",
		f2.Mean, f2.Max, f2.FracOne*100, f2.FracLE10*100)

	fmt.Println("Figure 4 — detection sweep (clustering + signature generation per N)...")
	pts := env.Figure4(eval.Figure4Config{Ns: ns, SampleSeed: 42})
	f4 := report.NewTable("", "N", "signatures", "TP%", "FN%", "FP%")
	for _, p := range pts {
		f4.AddRow(p.N, p.Signatures,
			fmt.Sprintf("%.2f", p.TP), fmt.Sprintf("%.2f", p.FN), fmt.Sprintf("%.3f", p.FP))
	}
	fmt.Println(f4.String())
	fmt.Println("paper reference: TP 85%→94%, FN 15%→5%, FP 0.3%→2.3% over N=100..500")
}
