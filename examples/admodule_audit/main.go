// admodule_audit reproduces the paper's §III-B analysis on the synthetic
// dataset: which destinations receive which device identifiers, and which
// applications are responsible — the measurement that motivated the
// detection system ("ad-maker.info, mydas.mobi, medibaad.com, and
// adlantis.jp expect IMEI and Android ID; zqapk.com expects IMEI, and SIM
// Serial ID, and Carrier name...").
package main

import (
	"fmt"
	"log"
	"sort"

	"leaksig/internal/report"
	"leaksig/internal/sensitive"
	"leaksig/internal/trafficgen"
)

func main() {
	log.SetFlags(0)

	fmt.Println("generating dataset (400 apps)...")
	ds := trafficgen.Generate(trafficgen.Config{Seed: 2, NumApps: 400, TotalPackets: 36000})
	oracle := sensitive.NewOracle(ds.Device)

	fmt.Printf("device under observation:\n  IMEI %s  IMSI %s\n  SIM %s  Android ID %s  carrier %s\n\n",
		ds.Device.IMEI, ds.Device.IMSI, ds.Device.SIMSerial, ds.Device.AndroidID, ds.Device.Carrier.Name)

	// Per destination: which identifier kinds arrive there, how often, and
	// from how many applications.
	type hostAcc struct {
		kinds   map[sensitive.Kind]int
		apps    map[string]bool
		packets int
	}
	hosts := make(map[string]*hostAcc)
	for _, p := range ds.Capture.Packets {
		kinds := oracle.Scan(p)
		if len(kinds) == 0 {
			continue
		}
		acc := hosts[p.Host]
		if acc == nil {
			acc = &hostAcc{kinds: make(map[sensitive.Kind]int), apps: make(map[string]bool)}
			hosts[p.Host] = acc
		}
		acc.packets++
		acc.apps[p.App] = true
		for _, k := range kinds {
			acc.kinds[k]++
		}
	}

	names := make([]string, 0, len(hosts))
	for h := range hosts {
		names = append(names, h)
	}
	sort.Slice(names, func(i, j int) bool {
		if hosts[names[i]].packets != hosts[names[j]].packets {
			return hosts[names[i]].packets > hosts[names[j]].packets
		}
		return names[i] < names[j]
	})

	tbl := report.NewTable("destinations receiving sensitive information (top 15)",
		"host", "pkts", "apps", "identifiers received")
	for _, h := range names[:min(15, len(names))] {
		acc := hosts[h]
		var kinds []string
		for k := sensitive.Kind(0); int(k) < sensitive.NumKinds; k++ {
			if acc.kinds[k] > 0 {
				kinds = append(kinds, k.String())
			}
		}
		tbl.AddRow(h, acc.packets, len(acc.apps), fmt.Sprint(kinds))
	}
	fmt.Println(tbl.String())

	// The worst offenders among applications: most identifier kinds leaked.
	type appAcc struct {
		kinds map[sensitive.Kind]bool
		hosts map[string]bool
	}
	apps := make(map[string]*appAcc)
	for _, p := range ds.Capture.Packets {
		kinds := oracle.Scan(p)
		if len(kinds) == 0 {
			continue
		}
		acc := apps[p.App]
		if acc == nil {
			acc = &appAcc{kinds: make(map[sensitive.Kind]bool), hosts: make(map[string]bool)}
			apps[p.App] = acc
		}
		acc.hosts[p.Host] = true
		for _, k := range kinds {
			acc.kinds[k] = true
		}
	}
	type offender struct {
		app          string
		kinds, hosts int
	}
	var off []offender
	for a, acc := range apps {
		off = append(off, offender{a, len(acc.kinds), len(acc.hosts)})
	}
	sort.Slice(off, func(i, j int) bool {
		if off[i].kinds != off[j].kinds {
			return off[i].kinds > off[j].kinds
		}
		if off[i].hosts != off[j].hosts {
			return off[i].hosts > off[j].hosts
		}
		return off[i].app < off[j].app
	})
	tbl2 := report.NewTable("applications leaking the most identifier kinds (top 10)",
		"application", "identifier kinds", "leak destinations")
	for _, o := range off[:min(10, len(off))] {
		tbl2.AddRow(o.app, o.kinds, o.hosts)
	}
	fmt.Println(tbl2.String())

	fmt.Printf("%d of %d applications leaked sensitive information to %d destinations\n",
		len(apps), len(ds.Apps), len(hosts))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
