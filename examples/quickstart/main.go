// Quickstart: generate a small synthetic Android traffic dataset, learn
// conjunction signatures from a sample of the leaking packets, and detect
// sensitive transmissions across the whole capture — the paper's pipeline
// in ~40 lines against the public facade.
package main

import (
	"fmt"
	"log"
	"math/rand"

	"leaksig"
)

func main() {
	log.SetFlags(0)

	// A scaled-down version of the paper's dataset: 200 apps, ~15k packets.
	fmt.Println("generating synthetic dataset (200 apps)...")
	ds := leaksig.SyntheticDataset(1, 200, 15000)
	suspicious := ds.SuspiciousPackets()
	fmt.Printf("capture: %d packets, %d carry sensitive information\n",
		len(ds.Packets), len(suspicious))

	// Sample N suspicious packets (§V-A) and generate signatures (§IV).
	const n = 200
	rng := rand.New(rand.NewSource(7))
	train := make([]*leaksig.Packet, 0, n)
	for _, i := range rng.Perm(len(suspicious))[:n] {
		train = append(train, suspicious[i])
	}
	set := leaksig.GenerateSignatures(train, leaksig.Config{})
	fmt.Printf("generated %d signatures from %d sampled packets\n", set.Len(), n)
	for _, s := range set.Signatures[:min(5, set.Len())] {
		fmt.Println("  " + s.String())
	}

	// Apply them to everything and score with the paper's equations (§V-B).
	res := leaksig.Evaluate(set, ds.Packets, ds.Sensitive, n)
	fmt.Printf("\ndetection: TP %.1f%%  FN %.1f%%  FP %.2f%%\n",
		res.TruePositiveRate*100, res.FalseNegativeRate*100, res.FalsePositiveRate*100)
	fmt.Printf("(%d of %d sensitive packets detected, %d false alarms among %d normal)\n",
		res.DetectedSensitive, res.SensitiveTotal, res.DetectedNormal, res.NormalTotal)
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
