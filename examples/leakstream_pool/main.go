// leakstream_pool demonstrates the multi-tenant streaming layer end to
// end on localhost:
//
//  1. a signature server publishes two signature sets in sequence — one
//     learned for the "alpha" app population, one for "beta" — and a
//     client fetches each published version,
//  2. an engine pool pins each set to its population's tenant, so the two
//     populations are vetted by independent engines under one shard
//     budget,
//  3. both populations' traffic streams through the pool concurrently:
//     alpha's identifier trips only alpha's tenant, beta's only beta's —
//     the isolation the paper's per-module signatures aim at, at the
//     engine level.
//
// The example exits non-zero if any verdict crosses tenants.
package main

import (
	"context"
	"fmt"
	"log"
	"net/http/httptest"

	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// population fabricates one app population: its tenant key, the device
// identifier its packets leak, and a signature set trained on it (here a
// literal conjunction signature, standing in for the clustered pipeline).
type population struct {
	tenant string
	ident  string
	sigs   *signature.Set
}

func main() {
	log.SetFlags(0)

	alpha := &population{
		tenant: "com.example.alpha",
		ident:  "udid=f3a9c1d2e88b41aa",
		sigs: &signature.Set{Signatures: []*signature.Signature{
			{ID: 100, Tokens: []string{"udid=f3a9c1d2e88b41aa"}, ClusterSize: 3},
		}},
	}
	beta := &population{
		tenant: "com.example.beta",
		ident:  "imei=353918051234563",
		sigs: &signature.Set{Signatures: []*signature.Signature{
			{ID: 200, Tokens: []string{"imei=353918051234563"}, ClusterSize: 3},
		}},
	}

	// --- Publish both sets through a signature server. Each Publish bumps
	// the version; the client fetches each one as it lands, exactly as a
	// long-poll watcher would. ---
	srv := sigserver.New()
	sigHTTP := httptest.NewServer(srv.Handler())
	defer sigHTTP.Close()
	client := sigserver.NewClient(sigHTTP.URL, nil)
	fmt.Printf("[sigserver] at %s\n", sigHTTP.URL)

	pool := engine.NewPool(nil, engine.PoolConfig{
		Engine:      engine.Config{Shards: 1, BatchSize: 16},
		ShardBudget: 2, // one worker per population
	})
	defer pool.Close()

	for _, pop := range []*population{alpha, beta} {
		version := srv.Publish(pop.sigs)
		set, _, err := client.Fetch(context.Background())
		if err != nil {
			log.Fatalf("fetching signatures: %v", err)
		}
		pool.ReloadTenant(pop.tenant, set)
		fmt.Printf("[sigserver] version %d published and pinned to tenant %s\n",
			version, pop.tenant)
	}

	// --- Stream both populations' traffic through the pool. Every third
	// packet of a population leaks its own identifier; everything else is
	// benign. ---
	const perTenant = 3000
	send := func(pop *population) {
		for i := 0; i < perTenant; i++ {
			payload := fmt.Sprintf("zone=%d", i)
			if i%3 == 0 {
				payload = pop.ident
			}
			pkt := &httpmodel.Packet{
				ID:     int64(i),
				App:    pop.tenant,
				Host:   "ads.tracker.example",
				Method: "GET",
				Path:   "/track?" + payload,
				Proto:  "HTTP/1.1",
			}
			if err := pool.Submit(pop.tenant, pkt); err != nil {
				log.Fatalf("submit: %v", err)
			}
		}
	}
	send(alpha)
	send(beta)
	// Cross traffic: alpha's identifier inside beta's population must NOT
	// trip beta's tenant — beta's signatures do not know alpha's device.
	for i := 0; i < 500; i++ {
		pkt := &httpmodel.Packet{
			ID:     int64(i),
			App:    beta.tenant,
			Host:   "ads.tracker.example",
			Method: "GET",
			Path:   "/track?" + alpha.ident,
			Proto:  "HTTP/1.1",
		}
		if err := pool.Submit(beta.tenant, pkt); err != nil {
			log.Fatalf("submit: %v", err)
		}
	}
	pool.Flush()

	// --- Assert isolation. ---
	const wantLeaks = perTenant / 3
	check := func(pop *population, wantMatched uint64) {
		m, ok := pool.TenantMetrics(pop.tenant)
		if !ok {
			log.Fatalf("tenant %s vanished", pop.tenant)
		}
		fmt.Printf("[pool] %-18s processed=%d leaks=%d (version %d)\n",
			pop.tenant, m.Processed, m.Matched, m.Version)
		if m.Matched != wantMatched {
			log.Fatalf("tenant %s matched %d packets, want %d — tenant isolation broken",
				pop.tenant, m.Matched, wantMatched)
		}
	}
	check(alpha, wantLeaks)
	// Beta saw its own 1000 leaks plus 500 alpha-identifier packets that
	// must stay invisible to its signature set.
	check(beta, wantLeaks)

	snap := pool.Metrics()
	fmt.Printf("[pool] aggregate: tenants=%d processed=%d matched=%d shards=%d/%d\n",
		snap.Tenants, snap.Aggregate.Processed, snap.Aggregate.Matched,
		snap.ShardsInUse, snap.ShardBudget)
	fmt.Println("ok: verdicts stayed inside their tenants")
}
