package ahocorasick

// buildNode is one trie state of the construction intermediate.
type buildNode struct {
	next map[byte]int32
	fail int32
	out  []int32 // pattern indices ending at this node, fail-chain merged
}

// builder is the map-based Aho–Corasick trie used only during Compile.
// It keeps the textbook goto/failure structure; dense() lowers it into
// the flat table the scan path runs on. The map-based walk (step,
// occursInto) survives as the differential-test reference.
type builder struct {
	nodes    []buildNode
	patterns [][]byte
}

func newBuilder(patterns [][]byte) *builder {
	b := &builder{
		nodes:    make([]buildNode, 1, 16),
		patterns: patterns,
	}
	b.nodes[0].next = make(map[byte]int32)
	for i, p := range patterns {
		if len(p) == 0 {
			continue
		}
		cur := int32(0)
		for _, c := range p {
			nxt, ok := b.nodes[cur].next[c]
			if !ok {
				b.nodes = append(b.nodes, buildNode{next: make(map[byte]int32)})
				nxt = int32(len(b.nodes) - 1)
				b.nodes[cur].next[c] = nxt
			}
			cur = nxt
		}
		b.nodes[cur].out = append(b.nodes[cur].out, int32(i))
	}
	// BFS to assign failure links and merge outputs.
	queue := make([]int32, 0, len(b.nodes))
	for _, v := range b.nodes[0].next {
		b.nodes[v].fail = 0
		queue = append(queue, v)
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for c, v := range b.nodes[u].next {
			queue = append(queue, v)
			f := b.nodes[u].fail
			for {
				if nxt, ok := b.nodes[f].next[c]; ok && nxt != v {
					b.nodes[v].fail = nxt
					break
				}
				if f == 0 {
					b.nodes[v].fail = 0
					break
				}
				f = b.nodes[f].fail
			}
			b.nodes[v].out = append(b.nodes[v].out, b.nodes[b.nodes[v].fail].out...)
		}
	}
	return b
}

// dense lowers the trie into the flat matcher: byte-class table, fully
// failure-resolved delta rows, and flat output lists.
func (b *builder) dense() *Matcher {
	m := &Matcher{patterns: b.patterns}

	// Byte classes: every byte occurring in some pattern gets its own
	// column; all others share one dead column (unless the alphabet is
	// already full).
	var present [256]bool
	for _, p := range b.patterns {
		for _, c := range p {
			present[c] = true
		}
	}
	n := 0
	for c := 0; c < 256; c++ {
		if present[c] {
			m.classes[c] = uint8(n)
			n++
		}
	}
	stride := n
	if n < 256 {
		for c := 0; c < 256; c++ {
			if !present[c] {
				m.classes[c] = uint8(n)
			}
		}
		stride = n + 1
	}
	if stride == 0 {
		stride = 1
	}
	m.stride = stride

	// Resolve delta rows in BFS order so each state's failure row is
	// complete before its own: row = copy of fail row, overwritten by the
	// state's goto edges. The root's missing edges self-loop at 0, which
	// the zero-initialized row already encodes.
	ns := len(b.nodes)
	m.delta = make([]int32, ns*stride)
	order := make([]int32, 1, ns)
	for qi := 0; qi < len(order); qi++ {
		for _, v := range b.nodes[order[qi]].next {
			order = append(order, v)
		}
	}
	for _, s := range order {
		row := m.delta[int(s)*stride : (int(s)+1)*stride]
		if s != 0 {
			copy(row, m.delta[int(b.nodes[s].fail)*stride:(int(b.nodes[s].fail)+1)*stride])
		}
		for c, v := range b.nodes[s].next {
			row[m.classes[c]] = v
		}
	}

	total := 0
	for i := range b.nodes {
		total += len(b.nodes[i].out)
	}
	m.outStart = make([]int32, ns+1)
	m.outList = make([]int32, 0, total)
	for i := range b.nodes {
		m.outStart[i] = int32(len(m.outList))
		m.outList = append(m.outList, b.nodes[i].out...)
	}
	m.outStart[ns] = int32(len(m.outList))
	return m
}

// step is the original map-based walk with scan-time failure chasing,
// kept as the reference implementation for differential tests.
func (b *builder) step(state int32, c byte) int32 {
	for {
		if nxt, ok := b.nodes[state].next[c]; ok {
			return nxt
		}
		if state == 0 {
			return 0
		}
		state = b.nodes[state].fail
	}
}

// occursInto is the reference Occurs over the map-based walk.
func (b *builder) occursInto(text []byte, seen []bool) {
	state := int32(0)
	for _, c := range text {
		state = b.step(state, c)
		for _, p := range b.nodes[state].out {
			seen[p] = true
		}
	}
}
