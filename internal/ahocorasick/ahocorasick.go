// Package ahocorasick implements the Aho–Corasick multi-pattern string
// matching automaton.
//
// The detection engine (§IV/Figure 3(b) of the paper) must test every HTTP
// packet against the union of all signature tokens. A single Aho–Corasick
// pass over the packet reports which tokens occur, after which conjunction
// signatures are checked with per-signature token bitsets.
//
// Compilation happens in two stages. A map-based trie (the construction
// intermediate, see builder) assigns failure links by BFS; Compile then
// flattens it into a dense delta table — one contiguous []int32 row per
// state, indexed by byte class — with every failure link resolved into the
// table at compile time. The scan loop is therefore a single bounds-checked
// array load per input byte: no map lookups, no failure chasing, no
// allocation. Byte-class compression keeps the rows small: all bytes that
// never appear in any pattern share one column, so a token set over a
// 40-byte alphabet costs 41 columns per state instead of 256.
package ahocorasick

// Match records one occurrence of a pattern in the scanned text.
type Match struct {
	Pattern int // index of the pattern as passed to Compile
	End     int // byte offset just past the end of the occurrence
}

// Matcher is a compiled Aho–Corasick automaton in dense form. It is
// immutable after Compile and safe for concurrent use. All scan entry
// points are allocation-free except where documented.
type Matcher struct {
	patterns [][]byte

	// classes maps each input byte to its column in the delta table.
	// Bytes absent from every pattern share one dead column whose
	// transitions all resolve through the root.
	classes [256]uint8
	stride  int // columns per state row

	// delta is the fully resolved transition function: numStates×stride,
	// delta[s*stride+classes[c]] is the next state — goto edges and
	// failure-link fallbacks are indistinguishable at scan time.
	delta []int32

	// Flat per-state output lists (failure-inherited outputs already
	// merged): state s emits outList[outStart[s]:outStart[s+1]].
	outStart []int32
	outList  []int32
}

// Compile builds a matcher over the given patterns. Empty patterns are
// permitted but never match. Duplicate patterns each report their own index.
func Compile(patterns [][]byte) *Matcher {
	return newBuilder(patterns).dense()
}

// NumPatterns returns the number of patterns the matcher was compiled with.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

// BitsetWords returns the length a caller-owned occurrence bitset must
// have: one bit per pattern, packed into uint64 words.
func (m *Matcher) BitsetWords() int { return (len(m.patterns) + 63) / 64 }

// States returns the number of automaton states (exposed for sizing
// diagnostics and tests).
func (m *Matcher) States() int { return len(m.outStart) - 1 }

// emit sets the occurrence bit of every pattern ending at state s.
func (m *Matcher) emit(s int, occ []uint64) {
	for _, p := range m.outList[m.outStart[s]:m.outStart[s+1]] {
		occ[uint(p)>>6] |= 1 << (uint(p) & 63)
	}
}

// scan is the one hot-loop body behind ScanBytes and ScanString: the
// generic instantiations for []byte and string compile to identical
// code, so string fields scan without a conversion allocation.
func scan[T interface{ ~string | ~[]byte }](m *Matcher, state int32, chunk T, occ []uint64) int32 {
	s := int(state)
	stride := m.stride
	for i := 0; i < len(chunk); i++ {
		s = int(m.delta[s*stride+int(m.classes[chunk[i]])])
		if m.outStart[s] != m.outStart[s+1] {
			m.emit(s, occ)
		}
	}
	return int32(s)
}

// ScanBytes feeds one chunk of input through the automaton, OR-ing the
// bit of every pattern that ends inside the chunk into occ (which must
// have BitsetWords() length). Pass state 0 to start a new segment and the
// returned state to continue one across chunks: patterns may span chunk
// boundaries within a segment but never across a state reset. ScanBytes
// performs no allocation.
func (m *Matcher) ScanBytes(state int32, chunk []byte, occ []uint64) int32 {
	return scan(m, state, chunk, occ)
}

// ScanString is ScanBytes over a string chunk, so callers holding string
// fields need not convert (and allocate) to scan them.
func (m *Matcher) ScanString(state int32, chunk string, occ []uint64) int32 {
	return scan(m, state, chunk, occ)
}

// OccursSegments clears occ, then scans each segment with the automaton
// state reset in between, so no pattern can match across a segment
// boundary. occ must have BitsetWords() length. The scan itself is
// allocation-free.
func (m *Matcher) OccursSegments(occ []uint64, segs ...[]byte) {
	for i := range occ {
		occ[i] = 0
	}
	for _, seg := range segs {
		m.ScanBytes(0, seg, occ)
	}
}

// FindAll returns every occurrence of every pattern in text, in order of
// end offset. Overlapping occurrences are all reported.
func (m *Matcher) FindAll(text []byte) []Match {
	var out []Match
	s := 0
	stride := m.stride
	for i := 0; i < len(text); i++ {
		s = int(m.delta[s*stride+int(m.classes[text[i]])])
		for _, p := range m.outList[m.outStart[s]:m.outStart[s+1]] {
			out = append(out, Match{Pattern: int(p), End: i + 1})
		}
	}
	return out
}

// Occurs returns a boolean slice, indexed by pattern, reporting which
// patterns occur at least once in text. It allocates one slice per call;
// hot paths should use ScanBytes/OccursSegments with a reused bitset.
func (m *Matcher) Occurs(text []byte) []bool {
	seen := make([]bool, len(m.patterns))
	m.OccursInto(text, seen)
	return seen
}

// OccursInto is like Occurs but writes into a caller-provided slice, which
// must have length NumPatterns(). It does not reset the slice first, so a
// caller can accumulate occurrences across multiple fields of one packet.
func (m *Matcher) OccursInto(text []byte, seen []bool) {
	if len(seen) != len(m.patterns) {
		panic("ahocorasick: OccursInto slice length mismatch")
	}
	s := 0
	stride := m.stride
	for i := 0; i < len(text); i++ {
		s = int(m.delta[s*stride+int(m.classes[text[i]])])
		for _, p := range m.outList[m.outStart[s]:m.outStart[s+1]] {
			seen[p] = true
		}
	}
}

// Count returns the total number of pattern occurrences in text.
func (m *Matcher) Count(text []byte) int {
	n := 0
	s := 0
	stride := m.stride
	for i := 0; i < len(text); i++ {
		s = int(m.delta[s*stride+int(m.classes[text[i]])])
		n += int(m.outStart[s+1] - m.outStart[s])
	}
	return n
}
