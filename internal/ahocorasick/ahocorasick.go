// Package ahocorasick implements the Aho–Corasick multi-pattern string
// matching automaton.
//
// The detection engine (§IV/Figure 3(b) of the paper) must test every HTTP
// packet against the union of all signature tokens. A single Aho–Corasick
// pass over the packet reports which tokens occur, after which conjunction
// signatures are checked with per-signature token bitsets.
package ahocorasick

// Match records one occurrence of a pattern in the scanned text.
type Match struct {
	Pattern int // index of the pattern as passed to Compile
	End     int // byte offset just past the end of the occurrence
}

type node struct {
	next map[byte]int32
	fail int32
	out  []int32 // pattern indices ending at this node
}

// Matcher is a compiled Aho–Corasick automaton. It is immutable after
// Compile and safe for concurrent use.
type Matcher struct {
	nodes    []node
	patterns [][]byte
}

// Compile builds a matcher over the given patterns. Empty patterns are
// permitted but never match. Duplicate patterns each report their own index.
func Compile(patterns [][]byte) *Matcher {
	m := &Matcher{
		nodes:    make([]node, 1, 16),
		patterns: patterns,
	}
	m.nodes[0].next = make(map[byte]int32)
	for i, p := range patterns {
		if len(p) == 0 {
			continue
		}
		cur := int32(0)
		for _, c := range p {
			nxt, ok := m.nodes[cur].next[c]
			if !ok {
				m.nodes = append(m.nodes, node{next: make(map[byte]int32)})
				nxt = int32(len(m.nodes) - 1)
				m.nodes[cur].next[c] = nxt
			}
			cur = nxt
		}
		m.nodes[cur].out = append(m.nodes[cur].out, int32(i))
	}
	// BFS to assign failure links and merge outputs.
	queue := make([]int32, 0, len(m.nodes))
	for _, v := range m.nodes[0].next {
		m.nodes[v].fail = 0
		queue = append(queue, v)
	}
	for qi := 0; qi < len(queue); qi++ {
		u := queue[qi]
		for c, v := range m.nodes[u].next {
			queue = append(queue, v)
			f := m.nodes[u].fail
			for {
				if nxt, ok := m.nodes[f].next[c]; ok && nxt != v {
					m.nodes[v].fail = nxt
					break
				}
				if f == 0 {
					m.nodes[v].fail = 0
					break
				}
				f = m.nodes[f].fail
			}
			m.nodes[v].out = append(m.nodes[v].out, m.nodes[m.nodes[v].fail].out...)
		}
	}
	return m
}

// NumPatterns returns the number of patterns the matcher was compiled with.
func (m *Matcher) NumPatterns() int { return len(m.patterns) }

func (m *Matcher) step(state int32, c byte) int32 {
	for {
		if nxt, ok := m.nodes[state].next[c]; ok {
			return nxt
		}
		if state == 0 {
			return 0
		}
		state = m.nodes[state].fail
	}
}

// FindAll returns every occurrence of every pattern in text, in order of
// end offset. Overlapping occurrences are all reported.
func (m *Matcher) FindAll(text []byte) []Match {
	var out []Match
	state := int32(0)
	for i, c := range text {
		state = m.step(state, c)
		for _, p := range m.nodes[state].out {
			out = append(out, Match{Pattern: int(p), End: i + 1})
		}
	}
	return out
}

// Occurs returns a boolean slice, indexed by pattern, reporting which
// patterns occur at least once in text. It allocates one slice per call and
// stops descending into output lists already fully seen.
func (m *Matcher) Occurs(text []byte) []bool {
	seen := make([]bool, len(m.patterns))
	m.OccursInto(text, seen)
	return seen
}

// OccursInto is like Occurs but writes into a caller-provided slice, which
// must have length NumPatterns(). It does not reset the slice first, so a
// caller can accumulate occurrences across multiple fields of one packet.
func (m *Matcher) OccursInto(text []byte, seen []bool) {
	if len(seen) != len(m.patterns) {
		panic("ahocorasick: OccursInto slice length mismatch")
	}
	state := int32(0)
	for _, c := range text {
		state = m.step(state, c)
		for _, p := range m.nodes[state].out {
			seen[p] = true
		}
	}
}

// Count returns the total number of pattern occurrences in text.
func (m *Matcher) Count(text []byte) int {
	n := 0
	state := int32(0)
	for _, c := range text {
		state = m.step(state, c)
		n += len(m.nodes[state].out)
	}
	return n
}
