package ahocorasick

import (
	"bytes"
	"math/rand"
	"sort"
	"testing"
)

func pats(ss ...string) [][]byte {
	out := make([][]byte, len(ss))
	for i, s := range ss {
		out[i] = []byte(s)
	}
	return out
}

// naiveFindAll is the reference implementation using bytes.Index.
func naiveFindAll(patterns [][]byte, text []byte) []Match {
	var out []Match
	for pi, p := range patterns {
		if len(p) == 0 {
			continue
		}
		for i := 0; i+len(p) <= len(text); i++ {
			if bytes.Equal(text[i:i+len(p)], p) {
				out = append(out, Match{Pattern: pi, End: i + len(p)})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].End != out[j].End {
			return out[i].End < out[j].End
		}
		return out[i].Pattern < out[j].Pattern
	})
	return out
}

func sortMatches(ms []Match) {
	sort.Slice(ms, func(i, j int) bool {
		if ms[i].End != ms[j].End {
			return ms[i].End < ms[j].End
		}
		return ms[i].Pattern < ms[j].Pattern
	})
}

func TestFindAllClassic(t *testing.T) {
	m := Compile(pats("he", "she", "his", "hers"))
	got := m.FindAll([]byte("ushers"))
	sortMatches(got)
	want := []Match{{1, 4}, {0, 4}, {3, 6}}
	sortMatches(want)
	if len(got) != len(want) {
		t.Fatalf("FindAll = %v, want %v", got, want)
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("FindAll = %v, want %v", got, want)
		}
	}
}

func TestOccurs(t *testing.T) {
	m := Compile(pats("udid=", "imei=", "carrier=docomo", "zz"))
	seen := m.Occurs([]byte("GET /track?udid=abc&carrier=docomo HTTP/1.1"))
	want := []bool{true, false, true, false}
	for i := range want {
		if seen[i] != want[i] {
			t.Errorf("Occurs[%d] = %v, want %v", i, seen[i], want[i])
		}
	}
}

func TestOccursIntoAccumulates(t *testing.T) {
	m := Compile(pats("alpha", "beta"))
	seen := make([]bool, m.NumPatterns())
	m.OccursInto([]byte("xx alpha xx"), seen)
	m.OccursInto([]byte("yy beta yy"), seen)
	if !seen[0] || !seen[1] {
		t.Errorf("accumulation failed: %v", seen)
	}
}

func TestOccursIntoPanicsOnBadLength(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	Compile(pats("a")).OccursInto([]byte("a"), make([]bool, 3))
}

func TestEmptyAndDuplicatePatterns(t *testing.T) {
	m := Compile(pats("", "ab", "ab", "b"))
	got := m.FindAll([]byte("ab"))
	sortMatches(got)
	// "" never matches; both "ab" copies and "b" match.
	want := []Match{{1, 2}, {2, 2}, {3, 2}}
	if len(got) != len(want) {
		t.Fatalf("FindAll = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FindAll = %v, want %v", got, want)
		}
	}
}

func TestNoPatterns(t *testing.T) {
	m := Compile(nil)
	if got := m.FindAll([]byte("anything")); len(got) != 0 {
		t.Errorf("FindAll with no patterns = %v", got)
	}
	if m.Count([]byte("anything")) != 0 {
		t.Error("Count with no patterns != 0")
	}
}

func TestOverlappingAndNested(t *testing.T) {
	m := Compile(pats("aa", "aaa", "a"))
	got := m.FindAll([]byte("aaaa"))
	want := naiveFindAll(pats("aa", "aaa", "a"), []byte("aaaa"))
	sortMatches(got)
	if len(got) != len(want) {
		t.Fatalf("got %d matches %v, want %d %v", len(got), got, len(want), want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("FindAll = %v, want %v", got, want)
		}
	}
}

func TestCount(t *testing.T) {
	m := Compile(pats("an", "ana"))
	if got := m.Count([]byte("banana")); got != 4 { // an@3, ana@4(x via an), an@5, ana@5... verify via naive
		want := len(naiveFindAll(pats("an", "ana"), []byte("banana")))
		if got != want {
			t.Errorf("Count = %d, want %d", got, want)
		}
	}
}

func TestRandomAgainstNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alpha := []byte("abc")
	randStr := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return b
	}
	for iter := 0; iter < 200; iter++ {
		np := 1 + rng.Intn(8)
		patterns := make([][]byte, np)
		for i := range patterns {
			patterns[i] = randStr(1 + rng.Intn(5))
		}
		text := randStr(rng.Intn(60))
		m := Compile(patterns)
		got := m.FindAll(text)
		want := naiveFindAll(patterns, text)
		sortMatches(got)
		if len(got) != len(want) {
			t.Fatalf("patterns %q text %q: got %v want %v", patterns, text, got, want)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("patterns %q text %q: got %v want %v", patterns, text, got, want)
			}
		}
		// Occurs must agree with FindAll.
		occ := m.Occurs(text)
		wantOcc := make([]bool, np)
		for _, w := range want {
			wantOcc[w.Pattern] = true
		}
		for i := range occ {
			if occ[i] != wantOcc[i] {
				t.Fatalf("Occurs[%d] mismatch for patterns %q text %q", i, patterns, text)
			}
		}
	}
}

func TestBinaryPatterns(t *testing.T) {
	p := [][]byte{{0x00, 0xff}, {0xff, 0x00, 0xff}}
	m := Compile(p)
	text := []byte{0x01, 0xff, 0x00, 0xff, 0x02}
	got := m.FindAll(text)
	sortMatches(got)
	want := naiveFindAll(p, text)
	if len(got) != len(want) {
		t.Fatalf("binary: got %v want %v", got, want)
	}
}
