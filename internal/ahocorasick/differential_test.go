package ahocorasick

import (
	"bytes"
	"math/rand"
	"testing"
)

// naiveOccursSegments is the reference segment matcher: a pattern occurs
// iff bytes.Contains finds it inside a single segment. Nothing matches
// across a boundary.
func naiveOccursSegments(patterns [][]byte, segs [][]byte) []bool {
	out := make([]bool, len(patterns))
	for pi, p := range patterns {
		if len(p) == 0 {
			continue
		}
		for _, seg := range segs {
			if bytes.Contains(seg, p) {
				out[pi] = true
				break
			}
		}
	}
	return out
}

func bitsetToBools(occ []uint64, n int) []bool {
	out := make([]bool, n)
	for i := range out {
		if occ[i>>6]&(1<<(uint(i)&63)) != 0 {
			out[i] = true
		}
	}
	return out
}

// TestDifferentialDenseVsNaiveVsMapWalk fuzzes random token sets and
// random multi-segment packets and asserts three-way agreement: the dense
// flat automaton (OccursSegments), the naive bytes.Contains reference,
// and the original map-based walk with scan-time failure chasing — the
// construction intermediate the dense form is lowered from.
func TestDifferentialDenseVsNaiveVsMapWalk(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alphabets := [][]byte{
		[]byte("ab"),
		[]byte("abcde=&?"),
		{0x00, 0x0a, 0xff, 'a', 'b'}, // binary, includes the old '\n' separator
	}
	randStr := func(alpha []byte, n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return b
	}
	for iter := 0; iter < 400; iter++ {
		alpha := alphabets[iter%len(alphabets)]
		np := 1 + rng.Intn(10)
		patterns := make([][]byte, np)
		for i := range patterns {
			patterns[i] = randStr(alpha, rng.Intn(6)) // empty patterns included
		}
		nSegs := 1 + rng.Intn(4)
		segs := make([][]byte, nSegs)
		for i := range segs {
			segs[i] = randStr(alpha, rng.Intn(40))
		}

		m := Compile(patterns)
		occ := make([]uint64, m.BitsetWords())
		m.OccursSegments(occ, segs...)
		dense := bitsetToBools(occ, np)

		naive := naiveOccursSegments(patterns, segs)

		b := newBuilder(patterns)
		mapWalk := make([]bool, np)
		for _, seg := range segs {
			b.occursInto(seg, mapWalk) // state implicitly resets per call
		}

		for i := range patterns {
			if dense[i] != naive[i] {
				t.Fatalf("iter %d: dense[%d]=%v naive=%v patterns=%q segs=%q",
					iter, i, dense[i], naive[i], patterns, segs)
			}
			if dense[i] != mapWalk[i] {
				t.Fatalf("iter %d: dense[%d]=%v mapwalk=%v patterns=%q segs=%q",
					iter, i, dense[i], mapWalk[i], patterns, segs)
			}
		}
	}
}

// TestSegmentBoundaryNeverMatches plants every split of each token across
// two adjacent segments and asserts the segment scan refuses the match,
// while the same bytes in one segment do match.
func TestSegmentBoundaryNeverMatches(t *testing.T) {
	tokens := [][]byte{
		[]byte("udid=f3a9"),
		[]byte("imei4412"),
		[]byte("ab"),
	}
	m := Compile(tokens)
	occ := make([]uint64, m.BitsetWords())
	for ti, tok := range tokens {
		for cut := 1; cut < len(tok); cut++ {
			left := append([]byte("xx"), tok[:cut]...)
			right := append(append([]byte{}, tok[cut:]...), "yy"...)
			m.OccursSegments(occ, left, right)
			if got := bitsetToBools(occ, len(tokens)); got[ti] {
				t.Errorf("token %q matched across segment split %d", tok, cut)
			}
			m.OccursSegments(occ, append(left, right...))
			if got := bitsetToBools(occ, len(tokens)); !got[ti] {
				t.Errorf("token %q missed in joined segment at split %d", tok, cut)
			}
		}
	}
}

// TestScanChunkContinuation verifies the inverse property: chunks of the
// SAME segment (state threaded through) do allow matches spanning chunk
// boundaries, which is what lets the scanner walk a packet field in
// pieces without concatenating it.
func TestScanChunkContinuation(t *testing.T) {
	m := Compile([][]byte{[]byte("hello world")})
	occ := make([]uint64, m.BitsetWords())
	st := m.ScanBytes(0, []byte("say hello"), occ)
	st = m.ScanString(st, " wor", occ)
	m.ScanBytes(st, []byte("ld!"), occ)
	if occ[0]&1 == 0 {
		t.Error("pattern spanning three chunks of one segment not matched")
	}
}

// TestScanZeroAlloc pins the allocation contract of the hot scan path.
func TestScanZeroAlloc(t *testing.T) {
	m := Compile([][]byte{[]byte("udid="), []byte("imei="), []byte("carrier=docomo")})
	occ := make([]uint64, m.BitsetWords())
	text := []byte("GET /track?udid=abc&carrier=docomo HTTP/1.1")
	allocs := testing.AllocsPerRun(100, func() {
		m.OccursSegments(occ, text)
	})
	if allocs != 0 {
		t.Errorf("OccursSegments allocated %v per run, want 0", allocs)
	}
	allocs = testing.AllocsPerRun(100, func() {
		st := m.ScanString(0, "udid=", occ)
		m.ScanBytes(st, text, occ)
	})
	if allocs != 0 {
		t.Errorf("ScanString/ScanBytes allocated %v per run, want 0", allocs)
	}
}
