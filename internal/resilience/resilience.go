// Package resilience is the control plane's shared failure policy:
// jittered exponential backoff and a three-state circuit breaker, used by
// every HTTP client path in the pipeline (the sigserver client's watch
// and publish, the siggend HTTP publisher, the flowproxy miss forwarder,
// and the obs event shipper).
//
// The two pieces answer different questions. Backoff answers "when do I
// retry?" — and answers it differently for every caller, because a fleet
// of watchers that all lost the same server will all retry at the same
// instant unless each one's delay is randomized (the thundering-herd
// problem a restarted sigserver would otherwise face at fan-out).
// Breaker answers "should I even try?" — after enough consecutive
// failures the answer becomes no, callers fail fast and shed work
// locally (cache a pending publish, drop a batch with accounting)
// instead of stacking timeouts against a dead dependency.
//
// Both are deterministic under test: Backoff takes a seed, Breaker takes
// a clock.
package resilience

import (
	"errors"
	"math/rand"
	"sync"
	"time"
)

// ErrOpen is returned by Breaker.Do (and surfaced by callers checking
// Allow) when the breaker is open: the dependency has failed enough
// consecutive times that attempts are being shed without trying.
var ErrOpen = errors.New("resilience: circuit open")

// Backoff computes jittered exponential retry delays. The zero value is
// not usable; construct with NewBackoff. Safe for concurrent use.
type Backoff struct {
	// Min is the base delay of attempt 0; Max caps growth. Factor is the
	// per-attempt multiplier. Jitter is the randomized fraction: each
	// delay is drawn uniformly from [d*(1-Jitter), d], so Jitter 0.5
	// spreads a fleet's retries across half the window while never
	// exceeding the deterministic ceiling.
	Min, Max time.Duration
	Factor   float64
	Jitter   float64

	mu  sync.Mutex
	rng *rand.Rand
}

// NewBackoff returns a backoff policy. Zero arguments select the
// defaults: min 100ms, max 30s, factor 2, jitter 0.5. seed fixes the
// jitter stream; 0 seeds from the current time.
func NewBackoff(min, max time.Duration, seed int64) *Backoff {
	if min <= 0 {
		min = 100 * time.Millisecond
	}
	if max <= 0 {
		max = 30 * time.Second
	}
	if max < min {
		max = min
	}
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Backoff{
		Min:    min,
		Max:    max,
		Factor: 2,
		Jitter: 0.5,
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Delay returns the delay before retry number attempt (0-based). The
// deterministic ceiling is min(Max, Min*Factor^attempt); the returned
// value is that ceiling shrunk by up to the Jitter fraction.
func (b *Backoff) Delay(attempt int) time.Duration {
	d := float64(b.Min)
	for i := 0; i < attempt; i++ {
		d *= b.Factor
		if d >= float64(b.Max) {
			d = float64(b.Max)
			break
		}
	}
	if b.Jitter > 0 {
		b.mu.Lock()
		f := b.rng.Float64()
		b.mu.Unlock()
		d -= b.Jitter * f * d
	}
	if d < 1 {
		d = 1
	}
	return time.Duration(d)
}

// State is a breaker's position in its lifecycle.
type State int32

const (
	// Closed: the dependency is healthy; every attempt is allowed.
	Closed State = iota
	// Open: consecutive failures crossed the threshold; attempts are
	// shed until OpenFor elapses.
	Open
	// HalfOpen: the open window elapsed; one probe attempt is allowed
	// through. Success closes the breaker, failure re-opens it.
	HalfOpen
)

// String names the state for logs and metric labels.
func (s State) String() string {
	switch s {
	case Closed:
		return "closed"
	case Open:
		return "open"
	case HalfOpen:
		return "half_open"
	}
	return "unknown"
}

// BreakerConfig parameterizes a Breaker. Zero values select the noted
// defaults.
type BreakerConfig struct {
	// FailureThreshold is the consecutive-failure count that opens the
	// breaker; default 5.
	FailureThreshold int

	// OpenFor is how long an open breaker sheds attempts before allowing
	// a half-open probe; default 10s.
	OpenFor time.Duration

	// Clock supplies the current time; nil means time.Now. Tests inject
	// a fake clock here so open windows elapse without sleeping.
	Clock func() time.Time

	// OnStateChange, when non-nil, observes every transition. It runs
	// under the breaker's lock and must not call back into the breaker.
	OnStateChange func(from, to State)
}

// BreakerStats is a point-in-time view of a breaker's accounting.
type BreakerStats struct {
	State        string `json:"state"`
	Consecutive  int    `json:"consecutive_failures"`
	Failures     uint64 `json:"failures"`      // lifetime recorded failures
	Successes    uint64 `json:"successes"`     // lifetime recorded successes
	Opens        uint64 `json:"opens"`         // closed/half-open → open transitions
	ShedAttempts uint64 `json:"shed_attempts"` // Allow calls refused while open
}

// Breaker is a consecutive-failure circuit breaker. Construct with
// NewBreaker; all methods are safe for concurrent use. Callers ask Allow
// before an attempt and Record the outcome after; Do wraps both.
type Breaker struct {
	cfg BreakerConfig

	mu       sync.Mutex
	state    State
	consec   int
	openedAt time.Time
	probing  bool // a half-open probe is in flight

	failures  uint64
	successes uint64
	opens     uint64
	shed      uint64
}

// NewBreaker returns a closed breaker.
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.FailureThreshold <= 0 {
		cfg.FailureThreshold = 5
	}
	if cfg.OpenFor <= 0 {
		cfg.OpenFor = 10 * time.Second
	}
	if cfg.Clock == nil {
		cfg.Clock = time.Now
	}
	return &Breaker{cfg: cfg}
}

// Allow reports whether an attempt may proceed. While open it returns
// false (counting the shed attempt) until OpenFor has elapsed, at which
// point the breaker goes half-open and exactly one caller is admitted as
// the probe; concurrent callers keep shedding until that probe Records
// its outcome.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case Closed:
		return true
	case Open:
		if b.cfg.Clock().Sub(b.openedAt) < b.cfg.OpenFor {
			b.shed++
			return false
		}
		b.transition(HalfOpen)
		b.probing = true
		return true
	default: // HalfOpen
		if b.probing {
			b.shed++
			return false
		}
		b.probing = true
		return true
	}
}

// Record reports one attempt's outcome. A nil error closes a half-open
// breaker and resets the consecutive-failure count; an error counts
// toward the threshold and re-opens a half-open breaker immediately.
func (b *Breaker) Record(err error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.probing = false
	if err == nil {
		b.successes++
		b.consec = 0
		if b.state != Closed {
			b.transition(Closed)
		}
		return
	}
	b.failures++
	b.consec++
	if b.state == HalfOpen || (b.state == Closed && b.consec >= b.cfg.FailureThreshold) {
		b.openedAt = b.cfg.Clock()
		b.opens++
		b.transition(Open)
	}
}

// transition moves to next, running the observer. Callers hold b.mu.
func (b *Breaker) transition(next State) {
	prev := b.state
	b.state = next
	if b.cfg.OnStateChange != nil && prev != next {
		b.cfg.OnStateChange(prev, next)
	}
}

// Do runs fn if the breaker allows it, records the outcome, and returns
// fn's error — or ErrOpen without running fn when the breaker is open.
func (b *Breaker) Do(fn func() error) error {
	if !b.Allow() {
		return ErrOpen
	}
	err := fn()
	b.Record(err)
	return err
}

// State returns the breaker's current position, advancing an expired
// open window to half-open so observers never read a stale "open".
func (b *Breaker) State() State {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == Open && b.cfg.Clock().Sub(b.openedAt) >= b.cfg.OpenFor {
		b.transition(HalfOpen)
	}
	return b.state
}

// Stats returns the breaker's accounting.
func (b *Breaker) Stats() BreakerStats {
	state := b.State()
	b.mu.Lock()
	defer b.mu.Unlock()
	return BreakerStats{
		State:        state.String(),
		Consecutive:  b.consec,
		Failures:     b.failures,
		Successes:    b.successes,
		Opens:        b.opens,
		ShedAttempts: b.shed,
	}
}
