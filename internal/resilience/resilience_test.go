package resilience

import (
	"errors"
	"testing"
	"time"
)

func TestBackoffDeterministicWithSeed(t *testing.T) {
	a := NewBackoff(10*time.Millisecond, time.Second, 42)
	b := NewBackoff(10*time.Millisecond, time.Second, 42)
	for i := 0; i < 20; i++ {
		da, db := a.Delay(i), b.Delay(i)
		if da != db {
			t.Fatalf("attempt %d: same seed diverged: %v vs %v", i, da, db)
		}
	}
}

func TestBackoffBounds(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, 160*time.Millisecond, 7)
	for attempt := 0; attempt < 12; attempt++ {
		ceil := 10 * time.Millisecond
		for i := 0; i < attempt && ceil < 160*time.Millisecond; i++ {
			ceil *= 2
		}
		if ceil > 160*time.Millisecond {
			ceil = 160 * time.Millisecond
		}
		for trial := 0; trial < 50; trial++ {
			d := b.Delay(attempt)
			if d > ceil {
				t.Fatalf("attempt %d: delay %v above ceiling %v", attempt, d, ceil)
			}
			if d < ceil/2 {
				t.Fatalf("attempt %d: delay %v below jitter floor %v", attempt, d, ceil/2)
			}
		}
	}
}

func TestBackoffNoJitterIsExact(t *testing.T) {
	b := NewBackoff(10*time.Millisecond, time.Second, 1)
	b.Jitter = 0
	want := []time.Duration{
		10 * time.Millisecond,
		20 * time.Millisecond,
		40 * time.Millisecond,
		80 * time.Millisecond,
	}
	for i, w := range want {
		if got := b.Delay(i); got != w {
			t.Fatalf("attempt %d: got %v want %v", i, got, w)
		}
	}
}

// fakeClock is a manually advanced clock for breaker window tests.
type fakeClock struct{ now time.Time }

func (c *fakeClock) Now() time.Time          { return c.now }
func (c *fakeClock) Advance(d time.Duration) { c.now = c.now.Add(d) }

func TestBreakerOpensAfterThreshold(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	br := NewBreaker(BreakerConfig{FailureThreshold: 3, OpenFor: 10 * time.Second, Clock: clk.Now})
	boom := errors.New("boom")

	for i := 0; i < 2; i++ {
		if !br.Allow() {
			t.Fatalf("failure %d: breaker should still be closed", i)
		}
		br.Record(boom)
	}
	if got := br.State(); got != Closed {
		t.Fatalf("below threshold: state = %v, want closed", got)
	}
	br.Allow()
	br.Record(boom)
	if got := br.State(); got != Open {
		t.Fatalf("at threshold: state = %v, want open", got)
	}
	if br.Allow() {
		t.Fatal("open breaker admitted an attempt before OpenFor elapsed")
	}
	if err := br.Do(func() error { t.Fatal("fn ran while open"); return nil }); !errors.Is(err, ErrOpen) {
		t.Fatalf("Do while open: err = %v, want ErrOpen", err)
	}
}

func TestBreakerHalfOpenProbeAndRecovery(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	br := NewBreaker(BreakerConfig{FailureThreshold: 1, OpenFor: 5 * time.Second, Clock: clk.Now})
	boom := errors.New("boom")

	br.Allow()
	br.Record(boom)
	if br.State() != Open {
		t.Fatal("breaker should open after one failure at threshold 1")
	}

	clk.Advance(5 * time.Second)
	if !br.Allow() {
		t.Fatal("expired open window should admit a half-open probe")
	}
	// A concurrent caller while the probe is in flight is shed.
	if br.Allow() {
		t.Fatal("second caller admitted while probe in flight")
	}
	// Probe fails → straight back to open.
	br.Record(boom)
	if got := br.State(); got != Open {
		t.Fatalf("failed probe: state = %v, want open", got)
	}

	clk.Advance(5 * time.Second)
	if !br.Allow() {
		t.Fatal("second probe refused")
	}
	br.Record(nil)
	if got := br.State(); got != Closed {
		t.Fatalf("successful probe: state = %v, want closed", got)
	}
	if !br.Allow() {
		t.Fatal("closed breaker refused an attempt")
	}
}

func TestBreakerStatsAndTransitions(t *testing.T) {
	clk := &fakeClock{now: time.Unix(1000, 0)}
	var transitions []string
	br := NewBreaker(BreakerConfig{
		FailureThreshold: 2,
		OpenFor:          time.Second,
		Clock:            clk.Now,
		OnStateChange: func(from, to State) {
			transitions = append(transitions, from.String()+"->"+to.String())
		},
	})
	boom := errors.New("boom")

	br.Do(func() error { return boom })
	br.Do(func() error { return boom })
	br.Do(func() error { return boom }) // shed
	clk.Advance(time.Second)
	br.Do(func() error { return nil }) // probe succeeds

	st := br.Stats()
	if st.State != "closed" {
		t.Fatalf("state = %q, want closed", st.State)
	}
	if st.Failures != 2 || st.Successes != 1 || st.Opens != 1 || st.ShedAttempts != 1 {
		t.Fatalf("stats = %+v", st)
	}
	want := []string{"closed->open", "open->half_open", "half_open->closed"}
	if len(transitions) != len(want) {
		t.Fatalf("transitions = %v, want %v", transitions, want)
	}
	for i := range want {
		if transitions[i] != want[i] {
			t.Fatalf("transition %d = %q, want %q", i, transitions[i], want[i])
		}
	}
}
