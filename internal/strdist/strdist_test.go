package strdist

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLevenshteinBasics(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "abc", 3},
		{"abc", "", 3},
		{"abc", "abc", 0},
		{"kitten", "sitting", 3},
		{"flaw", "lawn", 2},
		{"gumbo", "gambol", 2},
		{"admob.com", "admob.com", 0},
		{"admob.com", "amob.com", 1},
		{"ad-maker.info", "admob.com", 9},
		{"a", "b", 1},
	}
	for _, c := range cases {
		if got := Levenshtein(c.a, c.b); got != c.want {
			t.Errorf("Levenshtein(%q, %q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

func TestLevenshteinSymmetric(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 64 {
			a = a[:64]
		}
		if len(b) > 64 {
			b = b[:64]
		}
		return Levenshtein(a, b) == Levenshtein(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	randStr := func() string {
		n := rng.Intn(20)
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(4))
		}
		return string(b)
	}
	for i := 0; i < 500; i++ {
		a, b, c := randStr(), randStr(), randStr()
		ab, bc, ac := Levenshtein(a, b), Levenshtein(b, c), Levenshtein(a, c)
		if ac > ab+bc {
			t.Fatalf("triangle violated: d(%q,%q)=%d > d(%q,%q)=%d + d(%q,%q)=%d",
				a, c, ac, a, b, ab, b, c, bc)
		}
	}
}

func TestLevenshteinBoundsProperty(t *testing.T) {
	// |len(a)-len(b)| <= d <= max(len(a), len(b))
	f := func(a, b string) bool {
		if len(a) > 48 {
			a = a[:48]
		}
		if len(b) > 48 {
			b = b[:48]
		}
		d := Levenshtein(a, b)
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		return d >= lo && d <= hi
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLevenshteinBoundedAgreesWhenWithinBound(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	randStr := func(n int) string {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte('a' + rng.Intn(6))
		}
		return string(b)
	}
	for i := 0; i < 300; i++ {
		a := randStr(rng.Intn(30))
		b := randStr(rng.Intn(30))
		exact := Levenshtein(a, b)
		for _, k := range []int{0, 1, 2, 5, 10, 40} {
			got := LevenshteinBounded(a, b, k)
			if exact <= k {
				if got != exact {
					t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, want exact %d", a, b, k, got, exact)
				}
			} else if got != k+1 {
				t.Fatalf("LevenshteinBounded(%q,%q,%d) = %d, want %d (over bound)", a, b, k, got, k+1)
			}
		}
	}
}

func TestLevenshteinBoundedEdgeCases(t *testing.T) {
	if got := LevenshteinBounded("abc", "abc", 0); got != 0 {
		t.Errorf("identical strings bound 0: got %d", got)
	}
	if got := LevenshteinBounded("abc", "abd", 0); got != 1 {
		t.Errorf("bound 0 exceeded should report 1: got %d", got)
	}
	if got := LevenshteinBounded("", "abcdef", 3); got != 4 {
		t.Errorf("length-gap prune: got %d, want 4", got)
	}
	if got := LevenshteinBounded("x", "y", -1); got != 0 {
		t.Errorf("negative bound: got %d, want 0", got)
	}
}

func TestNormalized(t *testing.T) {
	cases := []struct {
		a, b string
		want float64
	}{
		{"", "", 0},
		{"abc", "abc", 0},
		{"abc", "", 1},
		{"", "abcd", 1},
		{"ab", "ba", 1.0}, // two substitutions over max len 2
		{"admob.com", "admob.org", 3.0 / 9.0},
	}
	for _, c := range cases {
		if got := Normalized(c.a, c.b); got != c.want {
			t.Errorf("Normalized(%q, %q) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestNormalizedRange(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 40 {
			a = a[:40]
		}
		if len(b) > 40 {
			b = b[:40]
		}
		d := Normalized(a, b)
		return d >= 0 && d <= 1
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestCommonPrefixSuffix(t *testing.T) {
	if got := CommonPrefixLen("ads.example.com", "ads.example.org"); got != 12 {
		t.Errorf("CommonPrefixLen = %d, want 12", got)
	}
	if got := CommonSuffixLen("a.adlantis.jp", "b.adlantis.jp"); got != 12 {
		t.Errorf("CommonSuffixLen = %d, want 12", got)
	}
	if got := CommonPrefixLen("", "x"); got != 0 {
		t.Errorf("CommonPrefixLen empty = %d", got)
	}
	if got := CommonSuffixLen("same", "same"); got != 4 {
		t.Errorf("CommonSuffixLen identical = %d", got)
	}
}
