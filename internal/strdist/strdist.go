// Package strdist implements string edit distances used by the HTTP host
// component of the packet destination distance (§IV-B of the paper).
//
// The paper defines the host distance as
//
//	dhost(px, py) = ed(hostx, hosty) / max(len(hostx), len(hosty))
//
// where ed is the (unit-cost Levenshtein) edit distance. The package provides
// a two-row dynamic-programming implementation, an early-exit bounded
// variant, and the normalized form.
package strdist

// Levenshtein returns the unit-cost edit distance (insertions, deletions,
// substitutions) between a and b, operating on bytes. Hostnames are ASCII,
// so byte-level distance matches rune-level distance for our inputs.
func Levenshtein(a, b string) int {
	if a == b {
		return 0
	}
	// Ensure b is the shorter string so the DP row is minimal.
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(b) == 0 {
		return len(a)
	}
	row := make([]int, len(b)+1)
	for j := range row {
		row[j] = j
	}
	for i := 1; i <= len(a); i++ {
		prev := row[0] // row[i-1][j-1]
		row[0] = i
		ca := a[i-1]
		for j := 1; j <= len(b); j++ {
			cur := row[j]
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev + cost
			if v := row[j] + 1; v < m {
				m = v
			}
			if v := row[j-1] + 1; v < m {
				m = v
			}
			row[j] = m
			prev = cur
		}
	}
	return row[len(b)]
}

// LevenshteinBounded returns the edit distance between a and b if it is at
// most maxDist; otherwise it returns maxDist+1. It prunes DP cells outside
// the diagonal band of width 2*maxDist+1, which makes near-duplicate host
// comparisons fast.
func LevenshteinBounded(a, b string, maxDist int) int {
	if maxDist < 0 {
		return 0
	}
	if a == b {
		return 0
	}
	if len(a) < len(b) {
		a, b = b, a
	}
	if len(a)-len(b) > maxDist {
		return maxDist + 1
	}
	if len(b) == 0 {
		return len(a)
	}
	const inf = int(^uint(0) >> 2)
	row := make([]int, len(b)+1)
	for j := range row {
		if j <= maxDist {
			row[j] = j
		} else {
			row[j] = inf
		}
	}
	for i := 1; i <= len(a); i++ {
		lo := i - maxDist
		if lo < 1 {
			lo = 1
		}
		hi := i + maxDist
		if hi > len(b) {
			hi = len(b)
		}
		prev := row[lo-1] // diagonal cell
		if lo == 1 {
			if i <= maxDist {
				row[0] = i
			} else {
				row[0] = inf
			}
		}
		if lo > 1 {
			// Cell left of the band is unreachable.
			row[lo-1] = inf
		}
		best := inf
		ca := a[i-1]
		for j := lo; j <= hi; j++ {
			cur := row[j]
			cost := 1
			if ca == b[j-1] {
				cost = 0
			}
			m := prev + cost
			if v := cur + 1; v < m {
				m = v
			}
			if v := row[j-1] + 1; v < m {
				m = v
			}
			row[j] = m
			if m < best {
				best = m
			}
			prev = cur
		}
		if best > maxDist {
			return maxDist + 1
		}
	}
	if row[len(b)] > maxDist {
		return maxDist + 1
	}
	return row[len(b)]
}

// Normalized returns the paper's dhost term: Levenshtein(a, b) divided by
// the length of the longer string, in [0, 1]. Two empty strings have
// distance 0.
func Normalized(a, b string) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	return float64(Levenshtein(a, b)) / float64(n)
}

// CommonPrefixLen returns the length of the longest common prefix of a and b.
func CommonPrefixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

// CommonSuffixLen returns the length of the longest common suffix of a and b.
// It is used to compare registrable domain tails such as ".example.co.jp".
func CommonSuffixLen(a, b string) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[len(a)-1-i] != b[len(b)-1-i] {
			return i
		}
	}
	return n
}
