package durable

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"
)

// FuzzJournalReplay throws arbitrary damage at a valid journal —
// truncation, bit flips, appended garbage — and asserts the recovery
// invariants: Open never panics or errors, every replayed record is one
// the original journal actually contained, the replayed records form a
// prefix of the original sequence, and the recovered journal accepts
// new appends that survive a further reopen.
func FuzzJournalReplay(f *testing.F) {
	f.Add(int64(0), uint8(0), []byte{})
	f.Add(int64(3), uint8(1), []byte{0xff})
	f.Add(int64(100), uint8(7), []byte("garbage tail"))
	f.Add(int64(8191), uint8(255), bytes.Repeat([]byte{0x00}, 64))

	f.Fuzz(func(t *testing.T, cut int64, flips uint8, tail []byte) {
		dir := t.TempDir()
		path := filepath.Join(dir, "fuzz.journal")

		// Build a known-good journal of 8 records.
		records := [][]byte{
			[]byte("r0"), []byte("record-one"), []byte("r2-xxxxxxxxxxxxxxxx"),
			[]byte("r3"), bytes.Repeat([]byte("r4"), 300), []byte("r5"),
			[]byte("r6"), []byte("r7-final"),
		}
		j, err := Open(path, JournalConfig{Fsync: FsyncNever})
		if err != nil {
			t.Fatalf("seed open: %v", err)
		}
		for _, r := range records {
			if err := j.Append(r); err != nil {
				t.Fatalf("seed append: %v", err)
			}
		}
		j.Close()

		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("read seed: %v", err)
		}

		// Damage: truncate to |cut| mod len, flip up to 8 bits at
		// positions derived from flips, then append arbitrary tail bytes.
		if cut < 0 {
			cut = -cut
		}
		if len(raw) > 0 {
			raw = raw[:cut%int64(len(raw)+1)]
		}
		for i := 0; i < int(flips%8) && len(raw) > 0; i++ {
			pos := (int(flips) * 31 * (i + 1)) % len(raw)
			raw[pos] ^= 1 << (uint(i) % 8)
		}
		raw = append(raw, tail...)
		if err := os.WriteFile(path, raw, 0o644); err != nil {
			t.Fatalf("write damaged: %v", err)
		}

		var replayed [][]byte
		j2, err := Open(path, JournalConfig{Replay: func(p []byte) error {
			replayed = append(replayed, append([]byte(nil), p...))
			return nil
		}})
		if err != nil {
			t.Fatalf("recovery refused to open: %v", err)
		}

		// Whatever was replayed must be a prefix of the original
		// sequence — corruption may cost records but never invents or
		// reorders them. (Bit flips can in principle forge a different
		// valid record, but the CRC makes that astronomically unlikely
		// for these inputs; a hit here is a finding worth seeing.)
		if len(replayed) > len(records) {
			t.Fatalf("replayed %d records from a journal of %d", len(replayed), len(records))
		}
		for i, r := range replayed {
			if !bytes.Equal(r, records[i]) {
				t.Fatalf("record %d mutated: got %q want %q", i, r, records[i])
			}
		}

		// The recovered journal must accept appends, and they must
		// survive a reopen along with the recovered prefix.
		if err := j2.Append([]byte("post-recovery")); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		j2.Close()

		var again [][]byte
		j3, err := Open(path, JournalConfig{Replay: func(p []byte) error {
			again = append(again, append([]byte(nil), p...))
			return nil
		}})
		if err != nil {
			t.Fatalf("reopen after recovery: %v", err)
		}
		j3.Close()
		if len(again) != len(replayed)+1 {
			t.Fatalf("second replay saw %d records, want %d", len(again), len(replayed)+1)
		}
		if !bytes.Equal(again[len(again)-1], []byte("post-recovery")) {
			t.Fatalf("post-recovery record lost: %q", again[len(again)-1])
		}
	})
}
