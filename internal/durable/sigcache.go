package durable

import (
	"errors"
	"os"
	"sort"
	"sync"

	"leaksig/internal/signature"
)

// SetCache is leakstream's last-known-good signature store: every set
// delivered by a watch is written through to one atomic checkpoint
// file, and on a boot where sigserver is unreachable the engine loads
// and serves the cached sets instead of starting blind (degraded mode).
// Safe for concurrent use.
type SetCache struct {
	path string

	mu   sync.Mutex
	sets map[string]*signature.Set // name ("" = default) → last good set
}

// cachedSets is the on-disk shape.
type cachedSets struct {
	Sets map[string]*signature.Set `json:"sets"`
}

// OpenSetCache loads the cache at path. Missing and corrupt files both
// yield an empty, usable cache — corruption is counted by the caller's
// logs, never fatal. The returned bool reports whether cached sets were
// actually loaded.
func OpenSetCache(path string) (*SetCache, bool, error) {
	c := &SetCache{path: path, sets: map[string]*signature.Set{}}
	var disk cachedSets
	err := LoadJSON(path, &disk)
	switch {
	case err == nil:
		if disk.Sets != nil {
			c.sets = disk.Sets
		}
		return c, len(c.sets) > 0, nil
	case errors.Is(err, os.ErrNotExist):
		return c, false, nil
	case errors.Is(err, ErrCorrupt):
		return c, false, nil
	default:
		return nil, false, err
	}
}

// Put records set as the last known good for name and persists the
// whole cache atomically. The write is synchronous — a watch delivery
// returns only after the cache would survive a crash.
func (c *SetCache) Put(name string, set *signature.Set) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.sets[name] = set
	return SaveJSON(c.path, cachedSets{Sets: c.sets})
}

// Get returns the cached set for name, if any.
func (c *SetCache) Get(name string) (*signature.Set, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	set, ok := c.sets[name]
	return set, ok
}

// Names returns the cached set names, sorted, "" (the default set)
// first when present.
func (c *SetCache) Names() []string {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := make([]string, 0, len(c.sets))
	for name := range c.sets {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Len reports how many sets are cached.
func (c *SetCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.sets)
}
