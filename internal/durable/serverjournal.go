package durable

import (
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"

	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// publishRecord is one journaled publish: which set, at what version,
// with what contents. The default set journals under name "".
type publishRecord struct {
	Name    string         `json:"name"`
	Version int64          `json:"version"`
	Set     *signature.Set `json:"set"`
}

// compactEvery is how many appended records accumulate before the
// journal is compacted down to the latest record per name. Publishes
// supersede each other per name, so a long-lived journal would
// otherwise replay every historical version just to land on the last.
const compactEvery = 256

// ServerJournal binds a sigserver.Server to an on-disk publish journal:
// Attach replays the journal into the server (restoring every named set
// at its pre-crash version), then hooks the server's publish callbacks
// so each new publish is appended — and periodically compacted to
// latest-record-per-name — before anything else observes it as durable.
type ServerJournal struct {
	j     *Journal
	srv   *sigserver.Server
	since atomic.Uint64 // appends since last compaction

	replayedSets  int
	replaySkipped int
}

// AttachServerJournal opens the journal at path, replays every intact
// record into srv via the versioned publish path (so versions are
// preserved, stay strictly increasing, and stale duplicates left behind
// by compaction races are skipped, not fatal), and then registers an
// OnPublishNamed hook that journals all future publishes. Call before
// srv serves traffic or other publish hooks are registered — replayed
// sets do not fire hooks added later, so log/ship hooks added after
// Attach see only live publishes.
func AttachServerJournal(srv *sigserver.Server, path string, cfg JournalConfig) (*ServerJournal, error) {
	sj := &ServerJournal{srv: srv}
	if cfg.Replay != nil {
		return nil, errors.New("durable: AttachServerJournal owns the replay callback")
	}
	cfg.Replay = func(payload []byte) error {
		var rec publishRecord
		if err := json.Unmarshal(payload, &rec); err != nil {
			// An intact-CRC record that fails to decode is a version-skew
			// artifact, not corruption; skip it rather than refuse to boot.
			sj.replaySkipped++
			return nil
		}
		if rec.Set == nil || rec.Version <= 0 {
			sj.replaySkipped++
			return nil
		}
		rec.Set.Version = rec.Version
		var err error
		if rec.Name == "" {
			_, err = srv.PublishVersioned(rec.Set)
		} else {
			_, err = srv.PublishNamedVersioned(rec.Name, rec.Set)
		}
		switch {
		case err == nil:
			sj.replayedSets++
		case errors.Is(err, sigserver.ErrStaleVersion):
			sj.replaySkipped++ // superseded by a later record; normal
		default:
			return fmt.Errorf("replay %q v%d: %w", rec.Name, rec.Version, err)
		}
		return nil
	}
	j, err := Open(path, cfg)
	if err != nil {
		return nil, err
	}
	sj.j = j
	srv.OnPublishNamed(sj.onPublish)
	return sj, nil
}

// onPublish journals the set that is now current for name. The callback
// delivers only (name, version); the set is re-read from the server. If
// a racing publish already superseded version, the newer set is
// journaled instead — harmless, since replay keeps the latest per name.
func (sj *ServerJournal) onPublish(name string, version int64) {
	set, v, ok := sj.srv.CurrentNamed(name)
	if !ok || v == 0 {
		return
	}
	payload, err := json.Marshal(publishRecord{Name: name, Version: v, Set: set})
	if err != nil {
		return
	}
	if err := sj.j.Append(payload); err != nil {
		return
	}
	if sj.since.Add(1) >= compactEvery {
		sj.since.Store(0)
		sj.compact()
	}
}

// compact rewrites the journal as one latest-version record per name
// (default set included).
func (sj *ServerJournal) compact() {
	names := append([]string{""}, sj.srv.SetNames()...)
	records := make([][]byte, 0, len(names))
	for _, name := range names {
		set, v, ok := sj.srv.CurrentNamed(name)
		if !ok || v == 0 {
			continue
		}
		payload, err := json.Marshal(publishRecord{Name: name, Version: v, Set: set})
		if err != nil {
			continue
		}
		records = append(records, payload)
	}
	sj.j.Compact(records)
}

// Replayed reports how many sets were restored at Attach and how many
// stale/undecodable records were skipped.
func (sj *ServerJournal) Replayed() (restored, skipped int) {
	return sj.replayedSets, sj.replaySkipped
}

// Stats returns the underlying journal's accounting.
func (sj *ServerJournal) Stats() JournalStats { return sj.j.Stats() }

// Sync forces buffered appends to disk (shutdown path).
func (sj *ServerJournal) Sync() error { return sj.j.Sync() }

// Close syncs and closes the journal. The publish hook stays registered
// but appends to a closed journal fail silently; close only at process
// shutdown after the server stops accepting publishes.
func (sj *ServerJournal) Close() error { return sj.j.Close() }
