// Package durable is the crash-safety layer of the control plane: an
// append-only CRC-framed journal (the sigserver publish log), atomic
// checkpoint files (the siggen learner state), and a last-known-good
// signature cache (leakstream degraded boot).
//
// Everything here shares one recovery philosophy: **never refuse to
// boot**. A truncated or bit-flipped tail — the normal residue of a
// crash mid-write — recovers to the last intact record and keeps going.
// Data that cannot be authenticated by its CRC is discarded, counted,
// and logged, not fatal. The paper's signatures are expensive to learn
// and cheap to re-learn incrementally; a process that refuses to start
// over one torn write loses far more than the torn write did.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
	"time"
)

// journalMagic heads every journal file; a file that does not start
// with it is treated as foreign and rebuilt from scratch.
const journalMagic = "LSJRNL1\n"

// MaxRecord bounds a single journal payload. A corrupt length field
// would otherwise ask recovery to allocate gigabytes; anything above
// the bound is treated as tail corruption.
const MaxRecord = 16 << 20

// castagnoli is the CRC-32C table; hardware-accelerated on amd64/arm64.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// FsyncPolicy dictates when appended records are forced to stable
// storage.
type FsyncPolicy int

const (
	// FsyncAlways syncs after every append: no acknowledged record is
	// ever lost. The default, and the right choice for the publish
	// journal where each record is one version of a named set.
	FsyncAlways FsyncPolicy = iota
	// FsyncInterval syncs lazily, at most once per SyncEvery, checked
	// on the append path (no background goroutine). Bounded loss window
	// for high-rate journals.
	FsyncInterval
	// FsyncNever leaves syncing to the OS. For tests and throwaway
	// journals only.
	FsyncNever
)

// ParseFsyncPolicy maps flag spellings to a policy.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "", "always":
		return FsyncAlways, nil
	case "interval":
		return FsyncInterval, nil
	case "never":
		return FsyncNever, nil
	}
	return FsyncAlways, fmt.Errorf("durable: unknown fsync policy %q (want always|interval|never)", s)
}

// JournalConfig parameterizes Open.
type JournalConfig struct {
	// Fsync selects the sync policy; default FsyncAlways.
	Fsync FsyncPolicy
	// SyncEvery is the FsyncInterval cadence; default 100ms.
	SyncEvery time.Duration
	// Replay, when non-nil, receives every intact record's payload in
	// append order during Open. The slice is reused between calls;
	// callers keep data by copying or decoding it.
	Replay func(payload []byte) error
}

// JournalStats is a point-in-time view of a journal's accounting.
type JournalStats struct {
	Appends        uint64 `json:"appends"`
	FsyncErrors    uint64 `json:"fsync_errors"`
	Recovered      uint64 `json:"recovered_records"`
	TruncatedBytes int64  `json:"truncated_bytes"`
	Compactions    uint64 `json:"compactions"`
	SizeBytes      int64  `json:"size_bytes"`
}

// Journal is an append-only record log. All methods are safe for
// concurrent use.
type Journal struct {
	path string
	cfg  JournalConfig

	mu       sync.Mutex
	f        *os.File
	size     int64
	dirty    bool
	lastSync time.Time
	closed   bool

	appends     uint64
	fsyncErrors uint64
	recovered   uint64
	truncated   int64
	compactions uint64
}

func (c JournalConfig) withDefaults() JournalConfig {
	if c.SyncEvery <= 0 {
		c.SyncEvery = 100 * time.Millisecond
	}
	return c
}

// Open opens (creating if absent) the journal at path, replaying every
// intact record through cfg.Replay and truncating any corrupt or torn
// tail. It fails only on real I/O errors or a Replay callback error —
// corruption alone never prevents opening.
func Open(path string, cfg JournalConfig) (*Journal, error) {
	cfg = cfg.withDefaults()
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("durable: open journal: %w", err)
	}
	j := &Journal{path: path, cfg: cfg, f: f}
	if err := j.recover(); err != nil {
		f.Close()
		return nil, err
	}
	return j, nil
}

// recover scans the file from the top, replaying intact records and
// truncating at the first sign of damage. Runs once, at Open, before
// any appends.
func (j *Journal) recover() error {
	info, err := j.f.Stat()
	if err != nil {
		return fmt.Errorf("durable: stat journal: %w", err)
	}
	total := info.Size()

	if total == 0 {
		if _, err := j.f.Write([]byte(journalMagic)); err != nil {
			return fmt.Errorf("durable: write journal header: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("durable: sync journal header: %w", err)
		}
		j.size = int64(len(journalMagic))
		return nil
	}

	header := make([]byte, len(journalMagic))
	good := int64(0)
	if _, err := io.ReadFull(j.f, header); err == nil && string(header) == journalMagic {
		good = int64(len(header))
	} else {
		// Foreign or mangled header: the whole file is unrecoverable.
		// Rebuild rather than refuse to boot.
		j.truncated += total
		if err := j.rewrite(nil); err != nil {
			return err
		}
		return nil
	}

	var frame [8]byte
	payload := make([]byte, 0, 4096)
	for {
		if _, err := io.ReadFull(j.f, frame[:]); err != nil {
			break // clean end or torn frame header
		}
		n := binary.LittleEndian.Uint32(frame[0:4])
		sum := binary.LittleEndian.Uint32(frame[4:8])
		if n == 0 || n > MaxRecord {
			break // corrupt length
		}
		if cap(payload) < int(n) {
			payload = make([]byte, n)
		}
		payload = payload[:n]
		if _, err := io.ReadFull(j.f, payload); err != nil {
			break // torn payload
		}
		if crc32.Checksum(payload, castagnoli) != sum {
			break // bit-flipped payload
		}
		if j.cfg.Replay != nil {
			if err := j.cfg.Replay(payload); err != nil {
				return fmt.Errorf("durable: replay record at offset %d: %w", good, err)
			}
		}
		j.recovered++
		good += 8 + int64(n)
	}

	if good < total {
		j.truncated += total - good
		if err := j.f.Truncate(good); err != nil {
			return fmt.Errorf("durable: truncate corrupt tail: %w", err)
		}
		if err := j.f.Sync(); err != nil {
			return fmt.Errorf("durable: sync after truncate: %w", err)
		}
	}
	if _, err := j.f.Seek(good, io.SeekStart); err != nil {
		return fmt.Errorf("durable: seek to append position: %w", err)
	}
	j.size = good
	return nil
}

// Append frames payload and writes it to the journal, syncing per the
// fsync policy. The payload is copied into the file; the caller keeps
// ownership of the slice.
func (j *Journal) Append(payload []byte) error {
	if len(payload) == 0 {
		return errors.New("durable: empty record")
	}
	if len(payload) > MaxRecord {
		return fmt.Errorf("durable: record of %d bytes exceeds MaxRecord %d", len(payload), MaxRecord)
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))

	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("durable: journal closed")
	}
	if _, err := j.f.Write(frame[:]); err != nil {
		return fmt.Errorf("durable: append frame: %w", err)
	}
	if _, err := j.f.Write(payload); err != nil {
		return fmt.Errorf("durable: append payload: %w", err)
	}
	j.size += 8 + int64(len(payload))
	j.appends++
	j.dirty = true
	j.maybeSyncLocked()
	return nil
}

// maybeSyncLocked applies the fsync policy after a write. Callers hold
// j.mu. Sync failures are counted (exported for alerting) but do not
// fail the append: the record is in the page cache and a later sync
// retries.
func (j *Journal) maybeSyncLocked() {
	switch j.cfg.Fsync {
	case FsyncAlways:
	case FsyncInterval:
		now := time.Now()
		if now.Sub(j.lastSync) < j.cfg.SyncEvery {
			return
		}
		j.lastSync = now
	case FsyncNever:
		return
	}
	if err := j.f.Sync(); err != nil {
		j.fsyncErrors++
		return
	}
	j.dirty = false
}

// Sync forces any buffered appends to stable storage regardless of
// policy. Used at shutdown.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed || !j.dirty {
		return nil
	}
	if err := j.f.Sync(); err != nil {
		j.fsyncErrors++
		return fmt.Errorf("durable: sync: %w", err)
	}
	j.dirty = false
	return nil
}

// Compact atomically replaces the journal's contents with records: a
// temp file in the same directory gets the header plus every record,
// is synced, and renamed over the live path (directory synced too), so
// a crash at any point leaves either the old journal or the new one —
// never a hybrid. The journal stays open for appends afterwards.
func (j *Journal) Compact(records [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return errors.New("durable: journal closed")
	}
	if err := j.rewrite(records); err != nil {
		return err
	}
	j.compactions++
	return nil
}

// rewrite replaces the journal file with header+records via
// temp+rename. Callers hold j.mu (or run before concurrency starts).
func (j *Journal) rewrite(records [][]byte) error {
	dir := filepath.Dir(j.path)
	tmp, err := os.CreateTemp(dir, filepath.Base(j.path)+".tmp*")
	if err != nil {
		return fmt.Errorf("durable: compact temp: %w", err)
	}
	tmpName := tmp.Name()
	cleanup := func() {
		tmp.Close()
		os.Remove(tmpName)
	}
	if _, err := tmp.Write([]byte(journalMagic)); err != nil {
		cleanup()
		return fmt.Errorf("durable: compact header: %w", err)
	}
	size := int64(len(journalMagic))
	var frame [8]byte
	for _, rec := range records {
		if len(rec) == 0 || len(rec) > MaxRecord {
			cleanup()
			return fmt.Errorf("durable: compact record of %d bytes out of range", len(rec))
		}
		binary.LittleEndian.PutUint32(frame[0:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(rec, castagnoli))
		if _, err := tmp.Write(frame[:]); err != nil {
			cleanup()
			return fmt.Errorf("durable: compact write: %w", err)
		}
		if _, err := tmp.Write(rec); err != nil {
			cleanup()
			return fmt.Errorf("durable: compact write: %w", err)
		}
		size += 8 + int64(len(rec))
	}
	if err := tmp.Sync(); err != nil {
		cleanup()
		return fmt.Errorf("durable: compact sync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: compact close: %w", err)
	}
	if err := os.Rename(tmpName, j.path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: compact rename: %w", err)
	}
	syncDir(dir)

	// Swap the open handle to the new file, positioned for append.
	f, err := os.OpenFile(j.path, os.O_RDWR, 0o644)
	if err != nil {
		return fmt.Errorf("durable: reopen after compact: %w", err)
	}
	if _, err := f.Seek(size, io.SeekStart); err != nil {
		f.Close()
		return fmt.Errorf("durable: seek after compact: %w", err)
	}
	j.f.Close()
	j.f = f
	j.size = size
	j.dirty = false
	return nil
}

// syncDir fsyncs a directory so a just-renamed file survives power
// loss. Best-effort: some filesystems refuse directory syncs.
func syncDir(dir string) {
	d, err := os.Open(dir)
	if err != nil {
		return
	}
	d.Sync()
	d.Close()
}

// Size returns the journal's current byte length.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Stats returns the journal's accounting.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{
		Appends:        j.appends,
		FsyncErrors:    j.fsyncErrors,
		Recovered:      j.recovered,
		TruncatedBytes: j.truncated,
		Compactions:    j.compactions,
		SizeBytes:      j.size,
	}
}

// Close syncs outstanding appends and closes the file. Idempotent.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.closed {
		return nil
	}
	j.closed = true
	var firstErr error
	if j.dirty {
		if err := j.f.Sync(); err != nil {
			j.fsyncErrors++
			firstErr = err
		}
	}
	if err := j.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
