package durable

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

func journalPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "publish.journal")
}

func TestJournalAppendAndReplay(t *testing.T) {
	path := journalPath(t)
	j, err := Open(path, JournalConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	want := [][]byte{[]byte("alpha"), []byte("beta"), []byte("gamma")}
	for _, rec := range want {
		if err := j.Append(rec); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	var got [][]byte
	j2, err := Open(path, JournalConfig{Replay: func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	}})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	if st := j2.Stats(); st.Recovered != 3 || st.TruncatedBytes != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestJournalRecoversTruncatedTail(t *testing.T) {
	path := journalPath(t)
	j, err := Open(path, JournalConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	for i := 0; i < 5; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%d", i))); err != nil {
			t.Fatalf("Append: %v", err)
		}
	}
	j.Close()

	// Tear the last record: chop 3 bytes off the file.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-3], 0o644); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}

	var got []string
	j2, err := Open(path, JournalConfig{Replay: func(p []byte) error {
		got = append(got, string(p))
		return nil
	}})
	if err != nil {
		t.Fatalf("reopen after tear: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("recovered %d records, want 4 (torn tail dropped): %v", len(got), got)
	}
	if st := j2.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("truncated bytes not counted")
	}
	// The journal must be appendable after tail truncation, and the new
	// record must replay cleanly.
	if err := j2.Append([]byte("after-recovery")); err != nil {
		t.Fatalf("Append after recovery: %v", err)
	}
	j2.Close()

	got = got[:0]
	j3, err := Open(path, JournalConfig{Replay: func(p []byte) error {
		got = append(got, string(p))
		return nil
	}})
	if err != nil {
		t.Fatalf("third open: %v", err)
	}
	defer j3.Close()
	if len(got) != 5 || got[4] != "after-recovery" {
		t.Fatalf("after append-on-recovered: %v", got)
	}
}

func TestJournalRecoversBitFlip(t *testing.T) {
	path := journalPath(t)
	j, _ := Open(path, JournalConfig{Fsync: FsyncNever})
	j.Append([]byte("first"))
	j.Append([]byte("second"))
	j.Close()

	raw, _ := os.ReadFile(path)
	raw[len(raw)-2] ^= 0x40 // flip a bit inside "second"
	os.WriteFile(path, raw, 0o644)

	var got []string
	j2, err := Open(path, JournalConfig{Replay: func(p []byte) error {
		got = append(got, string(p))
		return nil
	}})
	if err != nil {
		t.Fatalf("reopen after bit flip: %v", err)
	}
	defer j2.Close()
	if len(got) != 1 || got[0] != "first" {
		t.Fatalf("recovered %v, want just [first]", got)
	}
}

func TestJournalForeignFileRebuilds(t *testing.T) {
	path := journalPath(t)
	os.WriteFile(path, []byte("this is not a journal at all"), 0o644)
	j, err := Open(path, JournalConfig{})
	if err != nil {
		t.Fatalf("Open over foreign file: %v", err)
	}
	defer j.Close()
	if err := j.Append([]byte("fresh")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if st := j.Stats(); st.TruncatedBytes == 0 {
		t.Fatal("foreign bytes not counted as truncated")
	}
}

func TestJournalCompact(t *testing.T) {
	path := journalPath(t)
	j, _ := Open(path, JournalConfig{Fsync: FsyncNever})
	for i := 0; i < 100; i++ {
		j.Append([]byte(fmt.Sprintf("v%d", i)))
	}
	before := j.Size()
	if err := j.Compact([][]byte{[]byte("v99")}); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if j.Size() >= before {
		t.Fatalf("compaction did not shrink: %d -> %d", before, j.Size())
	}
	// Appends continue against the compacted file.
	if err := j.Append([]byte("v100")); err != nil {
		t.Fatalf("Append after compact: %v", err)
	}
	j.Close()

	var got []string
	j2, err := Open(path, JournalConfig{Replay: func(p []byte) error {
		got = append(got, string(p))
		return nil
	}})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer j2.Close()
	if len(got) != 2 || got[0] != "v99" || got[1] != "v100" {
		t.Fatalf("replay after compact = %v", got)
	}
}

func makeSet(version int64, tags ...string) *signature.Set {
	set := &signature.Set{Version: version}
	for i, tag := range tags {
		set.Signatures = append(set.Signatures, &signature.Signature{
			ID:     i + 1,
			Kind:   signature.KindConjunction,
			Tokens: []string{"uid=", tag},
		})
	}
	return set
}

// sigTag extracts the tag token makeSet stored in a signature.
func sigTag(set *signature.Set) string {
	if len(set.Signatures) == 0 || len(set.Signatures[0].Tokens) < 2 {
		return ""
	}
	return set.Signatures[0].Tokens[1]
}

func TestServerJournalReplayPreservesVersions(t *testing.T) {
	path := journalPath(t)

	srv := sigserver.New()
	sj, err := AttachServerJournal(srv, path, JournalConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	// A publish burst across the default and two named sets, with
	// several generations each.
	for v := int64(1); v <= 5; v++ {
		if _, err := srv.PublishVersioned(makeSet(v, "d")); err != nil {
			t.Fatalf("publish default v%d: %v", v, err)
		}
		if _, err := srv.PublishNamedVersioned("tenant-a", makeSet(v, "a")); err != nil {
			t.Fatalf("publish a v%d: %v", v, err)
		}
	}
	if _, err := srv.PublishNamedVersioned("tenant-b", makeSet(3, "b")); err != nil {
		t.Fatalf("publish b: %v", err)
	}
	if err := sj.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}

	// "Restart": fresh server, same journal.
	srv2 := sigserver.New()
	sj2, err := AttachServerJournal(srv2, path, JournalConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("re-attach: %v", err)
	}
	defer sj2.Close()

	if _, v := srv2.Current(); v != 5 {
		t.Fatalf("default version = %d, want 5", v)
	}
	if _, v, ok := srv2.CurrentNamed("tenant-a"); !ok || v != 5 {
		t.Fatalf("tenant-a version = %d (ok=%v), want 5", v, ok)
	}
	set, v, ok := srv2.CurrentNamed("tenant-b")
	if !ok || v != 3 {
		t.Fatalf("tenant-b version = %d (ok=%v), want 3", v, ok)
	}
	if len(set.Signatures) != 1 || sigTag(set) != "b" {
		t.Fatalf("tenant-b contents lost: %+v", set)
	}

	// Strict increase survives the restart: replaying the old version
	// must be rejected, the next version accepted.
	if _, err := srv2.PublishNamedVersioned("tenant-a", makeSet(5, "a")); err == nil {
		t.Fatal("stale republish accepted after replay")
	}
	if _, err := srv2.PublishNamedVersioned("tenant-a", makeSet(6, "a")); err != nil {
		t.Fatalf("next version rejected after replay: %v", err)
	}
	restored, _ := sj2.Replayed()
	if restored == 0 {
		t.Fatal("Replayed() reports zero restored sets")
	}
}

func TestServerJournalSurvivesTornTail(t *testing.T) {
	path := journalPath(t)
	srv := sigserver.New()
	sj, err := AttachServerJournal(srv, path, JournalConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("attach: %v", err)
	}
	for v := int64(1); v <= 3; v++ {
		srv.PublishNamedVersioned("tenant-a", makeSet(v, "a"))
	}
	sj.Close()

	// Simulate a crash mid-append: shear the file partway into the
	// final record.
	raw, _ := os.ReadFile(path)
	os.WriteFile(path, raw[:len(raw)-7], 0o644)

	srv2 := sigserver.New()
	sj2, err := AttachServerJournal(srv2, path, JournalConfig{Fsync: FsyncNever})
	if err != nil {
		t.Fatalf("re-attach over torn journal: %v", err)
	}
	defer sj2.Close()
	if _, v, _ := srv2.CurrentNamed("tenant-a"); v != 2 {
		t.Fatalf("recovered version = %d, want 2 (last intact record)", v)
	}
	// The loop continues from the recovered version.
	if _, err := srv2.PublishNamedVersioned("tenant-a", makeSet(3, "a")); err != nil {
		t.Fatalf("publish after recovery: %v", err)
	}
}

func TestCheckpointRoundTripAndCorruption(t *testing.T) {
	path := filepath.Join(t.TempDir(), "learner.ckpt")
	type state struct {
		Epoch int      `json:"epoch"`
		Names []string `json:"names"`
	}
	if err := SaveJSON(path, state{Epoch: 7, Names: []string{"a", "b"}}); err != nil {
		t.Fatalf("SaveJSON: %v", err)
	}
	var got state
	if err := LoadJSON(path, &got); err != nil {
		t.Fatalf("LoadJSON: %v", err)
	}
	if got.Epoch != 7 || len(got.Names) != 2 {
		t.Fatalf("got %+v", got)
	}

	raw, _ := os.ReadFile(path)
	raw[len(raw)-1] ^= 0xff
	os.WriteFile(path, raw, 0o644)
	if err := LoadJSON(path, &got); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("corrupt checkpoint err = %v, want ErrCorrupt", err)
	}

	if _, err := LoadCheckpoint(filepath.Join(t.TempDir(), "missing")); !os.IsNotExist(err) {
		t.Fatalf("missing checkpoint err = %v, want not-exist", err)
	}
}

func TestSetCacheRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "sigs.cache")
	c, loaded, err := OpenSetCache(path)
	if err != nil {
		t.Fatalf("OpenSetCache: %v", err)
	}
	if loaded {
		t.Fatal("fresh cache claims to have loaded sets")
	}
	if err := c.Put("", makeSet(4, "d")); err != nil {
		t.Fatalf("Put default: %v", err)
	}
	if err := c.Put("tenant-a", makeSet(9, "a")); err != nil {
		t.Fatalf("Put named: %v", err)
	}

	c2, loaded, err := OpenSetCache(path)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if !loaded || c2.Len() != 2 {
		t.Fatalf("loaded=%v len=%d, want true/2", loaded, c2.Len())
	}
	set, ok := c2.Get("tenant-a")
	if !ok || set.Version != 9 || sigTag(set) != "a" {
		t.Fatalf("tenant-a from cache: ok=%v set=%+v", ok, set)
	}

	// Corrupt cache: boots empty, never errors.
	raw, _ := os.ReadFile(path)
	raw[len(raw)/2] ^= 0xaa
	os.WriteFile(path, raw, 0o644)
	c3, loaded, err := OpenSetCache(path)
	if err != nil {
		t.Fatalf("open corrupt cache: %v", err)
	}
	if loaded || c3.Len() != 0 {
		t.Fatalf("corrupt cache: loaded=%v len=%d, want false/0", loaded, c3.Len())
	}
	// And is immediately writable again.
	if err := c3.Put("", makeSet(1, "d")); err != nil {
		t.Fatalf("Put over corrupt cache: %v", err)
	}
}
