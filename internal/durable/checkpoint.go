package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// checkpointMagic heads every checkpoint file.
const checkpointMagic = "LSCKPT1\n"

// SaveCheckpoint atomically writes payload to path: magic, CRC-32C,
// length, payload — built in a temp file, synced, renamed into place,
// directory synced. A crash mid-save leaves the previous checkpoint
// untouched.
func SaveCheckpoint(path string, payload []byte) error {
	if len(payload) > MaxRecord {
		return fmt.Errorf("durable: checkpoint of %d bytes exceeds MaxRecord %d", len(payload), MaxRecord)
	}
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp*")
	if err != nil {
		return fmt.Errorf("durable: checkpoint temp: %w", err)
	}
	tmpName := tmp.Name()
	fail := func(err error) error {
		tmp.Close()
		os.Remove(tmpName)
		return err
	}
	var frame [8]byte
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(frame[4:8], crc32.Checksum(payload, castagnoli))
	if _, err := tmp.Write([]byte(checkpointMagic)); err != nil {
		return fail(fmt.Errorf("durable: checkpoint header: %w", err))
	}
	if _, err := tmp.Write(frame[:]); err != nil {
		return fail(fmt.Errorf("durable: checkpoint frame: %w", err))
	}
	if _, err := tmp.Write(payload); err != nil {
		return fail(fmt.Errorf("durable: checkpoint payload: %w", err))
	}
	if err := tmp.Sync(); err != nil {
		return fail(fmt.Errorf("durable: checkpoint sync: %w", err))
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: checkpoint close: %w", err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return fmt.Errorf("durable: checkpoint rename: %w", err)
	}
	syncDir(dir)
	return nil
}

// LoadCheckpoint reads and authenticates the checkpoint at path.
// A missing file returns (nil, os.ErrNotExist); a corrupt or foreign
// file returns ErrCorrupt. Callers treat both as "start fresh".
func LoadCheckpoint(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	header := make([]byte, len(checkpointMagic))
	if _, err := io.ReadFull(f, header); err != nil || string(header) != checkpointMagic {
		return nil, ErrCorrupt
	}
	var frame [8]byte
	if _, err := io.ReadFull(f, frame[:]); err != nil {
		return nil, ErrCorrupt
	}
	n := binary.LittleEndian.Uint32(frame[0:4])
	sum := binary.LittleEndian.Uint32(frame[4:8])
	if n == 0 || n > MaxRecord {
		return nil, ErrCorrupt
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(f, payload); err != nil {
		return nil, ErrCorrupt
	}
	if crc32.Checksum(payload, castagnoli) != sum {
		return nil, ErrCorrupt
	}
	return payload, nil
}

// ErrCorrupt marks a checkpoint or cache file that failed
// authentication. It is a recoverable condition: callers start fresh.
var ErrCorrupt = fmt.Errorf("durable: corrupt file")

// SaveJSON marshals v and writes it as an atomic checkpoint.
func SaveJSON(path string, v any) error {
	payload, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("durable: marshal checkpoint: %w", err)
	}
	return SaveCheckpoint(path, payload)
}

// LoadJSON loads an atomic checkpoint into v. Missing and corrupt
// files return their respective errors unchanged so callers can
// distinguish "first boot" from "damaged state" in logs.
func LoadJSON(path string, v any) error {
	payload, err := LoadCheckpoint(path)
	if err != nil {
		return err
	}
	if err := json.Unmarshal(payload, v); err != nil {
		return fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return nil
}
