package siggen

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"leaksig/internal/detect"
	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// leakPacket fabricates one "leaking" request: a stable ad-tracker shape
// carrying a device identifier, with minor per-call jitter so clustering
// has real work to do.
func leakPacket(app string, i int) *httpmodel.Packet {
	return httpmodel.Get("ads.tracker-net.example", "/ad/fetch").
		App(app).
		ID(int64(i)).
		Dest(ipaddr.FromOctets(10, 1, 2, 3), 80).
		Query("zone", fmt.Sprintf("%d", i%7)).
		Query("device_id", "IMEI-358240051111110").
		Query("aid", "9774d56d682e549c").
		UserAgent("Dalvik/1.6.0").
		Build()
}

// benignPacket fabricates one clean request with no identifier material.
func benignPacket(i int) *httpmodel.Packet {
	return httpmodel.Get("cdn.example.org", "/static/style.css").
		ID(int64(1000+i)).
		Dest(ipaddr.FromOctets(192, 0, 2, 9), 80).
		Query("rev", fmt.Sprintf("%d", i)).
		UserAgent("Dalvik/1.6.0").
		Build()
}

func TestReservoirBoundsUnderBurst(t *testing.T) {
	const capacity = 32
	r := newReservoir(capacity)
	rng := rand.New(rand.NewSource(1))
	// A 100k-packet burst must never grow storage past capacity.
	for i := 0; i < 100_000; i++ {
		r.offer(sample{tenant: "app", p: leakPacket("app", i)}, rng)
		if r.size() > capacity {
			t.Fatalf("reservoir grew to %d (cap %d) at offer %d", r.size(), capacity, i)
		}
	}
	if r.size() != capacity {
		t.Fatalf("reservoir holds %d after burst, want full %d", r.size(), capacity)
	}
	// The sample must not be the first-capacity prefix: algorithm R keeps
	// replacing, so at least one stored ID should come from the later
	// 99% of the stream.
	late := 0
	for _, smp := range r.buf {
		if smp.p.ID >= capacity {
			late++
		}
	}
	if late == 0 {
		t.Fatal("reservoir kept only the stream prefix; replacement never happened")
	}
	// take drains and resets.
	got := r.take()
	if len(got) != capacity || r.size() != 0 || r.seen != 0 {
		t.Fatalf("take: got %d packets, size now %d, seen %d", len(got), r.size(), r.seen)
	}
}

func TestServiceIntakeBoundsUnderBurstAcrossTenants(t *testing.T) {
	const (
		resSize    = 16
		maxTenants = 4
	)
	svc := NewService(Config{
		ReservoirSize:       resSize,
		MaxTenantReservoirs: maxTenants,
		IntakeDepth:         256,
	})
	defer svc.Close()

	// Burst 4× more tenants than reservoir slots, interleaved the way
	// engine shards interleave tenants, from concurrent producers.
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				key := fmt.Sprintf("tenant-%d", i%(4*maxTenants))
				svc.Observe(key, leakPacket(key, i))
			}
		}(w)
	}
	wg.Wait()

	// Wait for the intake goroutine to drain what it accepted.
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := svc.Stats()
		if st.Admitted == st.Observed || time.Now().After(deadline) {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	st := svc.Stats()
	if st.Admitted != st.Observed {
		t.Fatalf("intake never drained: %+v", st)
	}
	if st.Tenants > maxTenants {
		t.Fatalf("%d private reservoirs, cap %d", st.Tenants, maxTenants)
	}
	// Private reservoirs plus the shared overflow reservoir.
	if max := (maxTenants + 1) * resSize; st.PendingSamples > max {
		t.Fatalf("%d pending samples, bound %d", st.PendingSamples, max)
	}
	if st.OverflowTenants == 0 {
		t.Fatal("no admissions were routed to the overflow reservoir")
	}
	if st.Observed == 0 {
		t.Fatal("nothing observed")
	}
}

func TestMissSinkFeedsOnlyMisses(t *testing.T) {
	svc := NewService(Config{IntakeDepth: 64})
	defer svc.Close()
	sink := svc.MissSink().Bind(0, 1)
	if sink.CountOnly() {
		t.Fatal("miss sink must see verdicts, not counts")
	}
	sink.Verdict(engine.Verdict{Packet: leakPacket("a", 1), Matched: []int{0}}) // a hit: ignored
	sink.Verdict(engine.Verdict{Packet: leakPacket("a", 2)})                    // a miss: learned
	deadline := time.Now().Add(time.Second)
	for svc.Stats().Observed == 0 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if got := svc.Stats().Observed; got != 1 {
		t.Fatalf("observed %d, want 1 (misses only)", got)
	}
}

func TestSuspectFilterScreensIntake(t *testing.T) {
	svc := NewService(Config{
		SuspectFilter: func(p *httpmodel.Packet) bool { return p.App != "" },
	})
	defer svc.Close()
	if svc.Observe("", benignPacket(1)) {
		t.Fatal("filter should have rejected the app-less packet")
	}
	if !svc.Observe("", leakPacket("com.app", 1)) {
		t.Fatal("filter rejected a packet it should admit")
	}
}

func TestClustererGroupsSimilarPackets(t *testing.T) {
	c := NewClusterer(ClusterConfig{MaxClusters: 8, MaxMembers: 16}, 1)
	for i := 0; i < 10; i++ {
		c.Observe(leakPacket("com.game", i))
	}
	for i := 0; i < 10; i++ {
		c.Observe(benignPacket(i))
	}
	if c.Len() < 2 {
		t.Fatalf("expected the two populations to form >= 2 clusters, got %d", c.Len())
	}
	st := c.Compact()
	if st.Clusters != c.Len() || st.Members != c.Members() {
		t.Fatalf("compact stats inconsistent: %+v vs len=%d members=%d", st, c.Len(), c.Members())
	}
	// The leak population must sit together in one cluster of >= 10.
	var big int
	for _, g := range c.Groups(2) {
		if len(g) > big {
			big = len(g)
		}
	}
	if big < 10 {
		t.Fatalf("largest cluster has %d members, want the 10-packet leak population together", big)
	}
}

func TestClustererBoundsAndStaleness(t *testing.T) {
	c := NewClusterer(ClusterConfig{MaxClusters: 4, MaxMembers: 8, StaleEpochs: 2}, 1)
	// Far-apart hosts so nothing joins: table fills, then rejects.
	for i := 0; i < 12; i++ {
		host := fmt.Sprintf("host-%c%c.example-%d.com", 'a'+i%26, 'a'+(i*7)%26, i)
		p := httpmodel.Get(host, "/x").Dest(ipaddr.FromOctets(byte(i), byte(i*3), 7, 1), uint16(1000+i*13)).
			Query("payload", fmt.Sprintf("%032x", i*7919)).Build()
		c.Observe(p)
	}
	if c.Len() > 4 {
		t.Fatalf("cluster table grew to %d, cap 4", c.Len())
	}
	if c.Rejected() == 0 {
		t.Fatal("full table never rejected an arrival")
	}
	// Member windows stay bounded too.
	for i := 0; i < 100; i++ {
		c.Observe(leakPacket("app", i))
	}
	for _, g := range c.Groups(1) {
		if len(g) > 8 {
			t.Fatalf("cluster holds %d members, cap 8", len(g))
		}
	}
	// Idle clusters age out after StaleEpochs compactions.
	before := c.Len()
	for i := 0; i < 4; i++ {
		c.Compact()
	}
	if c.Len() >= before {
		t.Fatalf("no clusters pruned: %d before, %d after 4 idle epochs", before, c.Len())
	}
}

func TestDistillBayesAndFPGates(t *testing.T) {
	// One leaking cluster and one cluster of pure benign shape; the
	// benign corpus contains that same benign shape.
	var leaks, benignLike, corpus []*httpmodel.Packet
	for i := 0; i < 8; i++ {
		leaks = append(leaks, leakPacket("com.app", i))
		benignLike = append(benignLike, benignPacket(i))
	}
	for i := 100; i < 200; i++ {
		corpus = append(corpus, benignPacket(i))
	}
	train, hold := splitBenign(corpus)
	groups := []Group{
		{ID: 1, Packets: leaks, Tenants: map[string]int{"com.app": len(leaks)}},
		{ID: 2, Packets: benignLike, Tenants: map[string]int{"com.other": len(benignLike)}},
	}
	// Raising MaxBenignFraction to 1 disables the generator's own
	// token-frequency filter, so the benign-shaped candidate survives to
	// the later gates and each gate can be exercised in isolation.
	opts := signature.Options{MinClusterSize: 2, MaxBenignFraction: 1}

	// Bayes gate alone (no held-out corpus): token material as common in
	// benign as in suspect traffic scores below the threshold.
	_, st := distill(groups, train, nil, nil, opts, signature.BayesOptions{}, 0.01)
	if st.Candidates < 2 {
		t.Fatalf("expected candidates from both clusters, got %d", st.Candidates)
	}
	if st.RejectedBayes == 0 {
		t.Fatalf("the benign-shaped signature slipped past the Bayes gate: %+v", st)
	}

	// FP gate alone (no training corpus, so no Bayes model): the
	// benign-shaped signature matches the held-out corpus and dies.
	_, st = distill(groups, nil, hold, nil, opts, signature.BayesOptions{}, 0.01)
	if st.RejectedFP == 0 {
		t.Fatalf("the benign-shaped signature slipped past the held-out FP gate: %+v", st)
	}

	// Both gates plus the default token-frequency filter: the leak
	// signature survives, carries its provenance, and still detects the
	// leaking packets.
	cands, st := distill(groups, train, hold, nil, signature.Options{MinClusterSize: 2}, signature.BayesOptions{}, 0.01)
	if len(cands) == 0 {
		t.Fatalf("the leak signature was over-filtered: %+v", st)
	}
	for _, c := range cands {
		if _, ok := c.sources[1]; !ok {
			t.Fatalf("candidate lost its source-cluster provenance: %+v", c.sources)
		}
		if c.tenants["com.app"] != len(leaks) {
			t.Fatalf("candidate lost its tenant provenance: %+v", c.tenants)
		}
	}
	sigs := make([]*signature.Signature, len(cands))
	for i, c := range cands {
		sigs[i] = c.sig
	}
	set := assemble(sigs, len(leaks))
	eng := detect.NewEngine(set)
	hits := 0
	for _, p := range leaks {
		if eng.Matches(p) {
			hits++
		}
	}
	if hits < len(leaks)/2 {
		t.Fatalf("accepted signatures detect only %d/%d leak packets", hits, len(leaks))
	}
	for _, p := range hold {
		if eng.Matches(p) {
			t.Fatal("an accepted signature matches held-out benign traffic")
		}
	}
}

func TestServiceEpochPublishesAndDeduplicates(t *testing.T) {
	srv := sigserver.New()
	var published []int64
	svc := NewService(Config{
		Publisher:      ServerPublisher{Server: srv},
		MinClusterSize: 2,
		OnPublish:      func(set *signature.Set) { published = append(published, set.Version) },
	})
	defer svc.Close()

	for i := 0; i < 12; i++ {
		svc.Observe("com.app", leakPacket("com.app", i))
	}
	set, err := svc.RunEpoch(context.Background())
	if err != nil {
		t.Fatalf("epoch: %v", err)
	}
	if set == nil || set.Len() == 0 {
		t.Fatal("epoch published nothing from a 12-packet leak stream")
	}
	if _, v := srv.Current(); v != set.Version || v == 0 {
		t.Fatalf("server at version %d, set says %d", v, set.Version)
	}

	// Same content again: the fingerprint suppresses a second publish.
	for i := 0; i < 12; i++ {
		svc.Observe("com.app", leakPacket("com.app", i))
	}
	again, err := svc.RunEpoch(context.Background())
	if err != nil {
		t.Fatalf("second epoch: %v", err)
	}
	if again != nil {
		t.Fatalf("identical content republished as version %d", again.Version)
	}
	if len(published) != 1 {
		t.Fatalf("OnPublish fired %d times, want 1", len(published))
	}
	if st := svc.Stats(); st.Publishes != 1 || st.Epochs != 2 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestServicePublishLosesRaceAndResyncs(t *testing.T) {
	srv := sigserver.New()
	svc := NewService(Config{
		Publisher:      ServerPublisher{Server: srv},
		MinClusterSize: 2,
	})
	defer svc.Close()

	// A competing writer advances the server past anything the service
	// has seen, so the service's stamped version is stale.
	other := &signature.Set{Version: 7}
	if _, err := srv.PublishVersioned(other); err != nil {
		t.Fatal(err)
	}

	for i := 0; i < 12; i++ {
		svc.Observe("com.app", leakPacket("com.app", i))
	}
	// First epoch seeds lastVersion from the server (7), so the publish
	// should stamp 8 and succeed.
	set, err := svc.RunEpoch(context.Background())
	if err != nil {
		t.Fatalf("epoch: %v", err)
	}
	if set == nil || set.Version != 8 {
		t.Fatalf("published %+v, want version 8", set)
	}

	// Now lose a race: the competitor jumps ahead between epochs.
	if _, err := srv.PublishVersioned(&signature.Set{Version: 20}); err != nil {
		t.Fatal(err)
	}
	// Change the traffic so the fingerprint differs and a publish is
	// attempted with the stale stamp 9.
	for i := 0; i < 12; i++ {
		svc.Observe("com.other", benignPacket(i))
	}
	_, err = svc.RunEpoch(context.Background())
	if err == nil {
		// The new clusters may legitimately produce no signatures
		// (benign shape, no publish attempt); force the check only when
		// a publish happened.
		if st := svc.Stats(); st.PublishErrors > 0 {
			t.Fatal("publish error counted but RunEpoch returned nil error")
		}
	} else {
		st := svc.Stats()
		if st.PublishErrors == 0 {
			t.Fatalf("stale publish not counted: %+v", st)
		}
		if st.LastVersion != 20 {
			t.Fatalf("service did not resync to the server's version: %+v", st)
		}
	}
	// Either way the server's guard never went backwards.
	if _, v := srv.Current(); v != 20 {
		t.Fatalf("server regressed to version %d", v)
	}
}

func TestTimedEpochLoop(t *testing.T) {
	srv := sigserver.New()
	svc := NewService(Config{
		Publisher:        ServerPublisher{Server: srv},
		MinClusterSize:   2,
		GenerateInterval: 20 * time.Millisecond,
		MinNewSamples:    1,
	})
	defer svc.Close()
	for i := 0; i < 12; i++ {
		svc.Observe("com.app", leakPacket("com.app", i))
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, v := srv.Current(); v > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed loop never published; stats %+v", svc.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// flakyPublisher fails its first n Publish calls, then delegates to an
// in-process server.
type flakyPublisher struct {
	srv      *sigserver.Server
	failures int
	calls    int
}

func (p *flakyPublisher) CurrentVersion(context.Context) (int64, error) {
	_, v := p.srv.Current()
	return v, nil
}

func (p *flakyPublisher) Publish(_ context.Context, set *signature.Set) (int64, error) {
	p.calls++
	if p.calls <= p.failures {
		return 0, fmt.Errorf("simulated outage %d", p.calls)
	}
	return p.srv.PublishVersioned(set)
}

// TestFailedPublishRetriesWithoutNewSamples pins the outage contract:
// a generated set whose publish fails is cached and republished by a
// later epoch even though no new samples arrived and the clusters that
// produced it may since have been pruned.
func TestFailedPublishRetriesWithoutNewSamples(t *testing.T) {
	srv := sigserver.New()
	pub := &flakyPublisher{srv: srv, failures: 1}
	svc := NewService(Config{
		Publisher:      pub,
		MinClusterSize: 2,
		Cluster:        ClusterConfig{StaleEpochs: 1}, // prune aggressively
	})
	defer svc.Close()

	for i := 0; i < 12; i++ {
		svc.Observe("com.app", leakPacket("com.app", i))
	}
	if _, err := svc.RunEpoch(context.Background()); err == nil {
		t.Fatal("first epoch should surface the publish failure")
	}
	if st := svc.Stats(); st.PublishErrors != 1 {
		t.Fatalf("stats after outage: %+v", st)
	}

	// Age the clusters past StaleEpochs with empty epochs, then retry:
	// the cached set must still go out.
	var set *signature.Set
	var err error
	for i := 0; i < 3 && set == nil; i++ {
		set, err = svc.RunEpoch(context.Background())
		if err != nil {
			t.Fatalf("retry epoch %d: %v", i, err)
		}
	}
	if set == nil || set.Len() == 0 {
		t.Fatalf("cached set never republished; stats %+v", svc.Stats())
	}
	if _, v := srv.Current(); v != set.Version || v == 0 {
		t.Fatalf("server at %d, want %d", v, set.Version)
	}
}

// leakPacketAt is leakPacket with a distinct destination shape, so two
// tenant populations form separable clusters.
func leakPacketAt(host, app string, i int) *httpmodel.Packet {
	return httpmodel.Get(host, "/beacon/track").
		App(app).
		ID(int64(i)).
		Dest(ipaddr.FromOctets(172, 16, 9, 21), 8080).
		Query("slot", fmt.Sprintf("%d", i%5)).
		Query("android_id", "a3f5c4d56d682e54").
		Query("serial", "R58M30WZNBX").
		UserAgent("Dalvik/2.1.0").
		Build()
}

// TestReservoirSlotsRecycleAcrossEpochs is the regression for the
// slot-exhaustion bug: admit() created a private reservoir per tenant key
// and nothing ever removed it, so after MaxTenantReservoirs distinct keys
// had EVER appeared, every later tenant was permanently routed to the
// shared overflow reservoir and Stats.Tenants counted dead tenants
// forever. Slots must recycle at epoch take().
func TestReservoirSlotsRecycleAcrossEpochs(t *testing.T) {
	const cap = 64
	svc := NewService(Config{ReservoirSize: 4, MaxTenantReservoirs: cap})
	defer svc.Close()

	observe := func(prefix string, tenants int) {
		for i := 0; i < tenants; i++ {
			key := fmt.Sprintf("%s-t%d", prefix, i)
			svc.Observe(key, leakPacket(key, i))
		}
		deadline := time.Now().Add(5 * time.Second)
		for svc.Stats().Admitted != svc.Stats().Observed && time.Now().Before(deadline) {
			time.Sleep(time.Millisecond)
		}
	}

	// Epoch 1: 100 transient tenants — 64 private slots plus overflow.
	observe("epoch1", 100)
	st := svc.Stats()
	if st.Tenants != cap || st.OverflowTenants == 0 {
		t.Fatalf("epoch-1 intake: tenants=%d overflow=%d, want %d and >0", st.Tenants, st.OverflowTenants, cap)
	}
	overflowAfterEpoch1 := st.OverflowTenants
	if _, err := svc.RunEpoch(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := svc.Stats(); st.Tenants != 0 {
		t.Fatalf("epoch take() released %d of %d reservoir slots", cap-st.Tenants, cap)
	}

	// Epoch 2: 50 brand-new tenants. With recycled slots every one gets
	// a private reservoir; with the bug all 50 would land in overflow.
	observe("epoch2", 50)
	st = svc.Stats()
	if st.Tenants != 50 {
		t.Fatalf("epoch-2 tenants = %d, want 50 private reservoirs from recycled slots", st.Tenants)
	}
	if st.OverflowTenants != overflowAfterEpoch1 {
		t.Fatalf("epoch-2 admissions overflowed (%d -> %d) despite free slots",
			overflowAfterEpoch1, st.OverflowTenants)
	}
}

func TestTenantSetsPublishAndIsolate(t *testing.T) {
	srv := sigserver.New()
	published := map[string]int64{}
	svc := NewService(Config{
		Publisher:      ServerPublisher{Server: srv},
		TenantSets:     true,
		MinClusterSize: 2,
		OnPublishNamed: func(name string, set *signature.Set) { published[name] = set.Version },
	})
	defer svc.Close()

	// Two tenants with separable leak populations.
	for i := 0; i < 12; i++ {
		svc.Observe("tenant-a", leakPacket("com.a", i))
		svc.Observe("tenant-b", leakPacketAt("beacon.other-ads.example", "com.b", i))
	}
	global, err := svc.RunEpoch(context.Background())
	if err != nil {
		t.Fatalf("epoch: %v", err)
	}
	if global == nil || global.Len() < 2 {
		t.Fatalf("global set should carry both populations: %+v", global)
	}
	if published[""] == 0 || published["tenant-a"] == 0 || published["tenant-b"] == 0 {
		t.Fatalf("OnPublishNamed deliveries = %v, want global + both tenants", published)
	}

	setA, vA, okA := srv.CurrentNamed("tenant-a")
	setB, vB, okB := srv.CurrentNamed("tenant-b")
	if !okA || !okB || vA == 0 || vB == 0 {
		t.Fatalf("named sets not on the server: a=(%v,%d) b=(%v,%d)", okA, vA, okB, vB)
	}
	if setA.Len() == 0 || setB.Len() == 0 {
		t.Fatalf("empty named sets: a=%d b=%d", setA.Len(), setB.Len())
	}

	// Isolation: each tenant's set fires on its own traffic only.
	engA := detect.NewEngine(setA)
	engB := detect.NewEngine(setB)
	aPkt := leakPacket("com.a", 99)
	bPkt := leakPacketAt("beacon.other-ads.example", "com.b", 99)
	if !engA.Matches(aPkt) {
		t.Fatal("tenant-a set misses tenant-a traffic")
	}
	if engA.Matches(bPkt) {
		t.Fatal("tenant-a set fires on tenant-b traffic")
	}
	if !engB.Matches(bPkt) {
		t.Fatal("tenant-b set misses tenant-b traffic")
	}
	if engB.Matches(aPkt) {
		t.Fatal("tenant-b set fires on tenant-a traffic")
	}

	// Stats track the per-tenant lifecycle.
	st := svc.Stats()
	if st.NamedPublishes < 2 || st.NamedVersions["tenant-a"] != vA || st.Catalog < 2 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestDriftRetirementDropsStaleSignatures pins the aging-out half of the
// lifecycle: when staleness pruning retires every cluster that sourced a
// published signature, the next epoch publishes sets without it — the
// fleet converges off signatures whose populations vanished, instead of
// matching ghosts forever.
func TestDriftRetirementDropsStaleSignatures(t *testing.T) {
	srv := sigserver.New()
	svc := NewService(Config{
		Publisher:      ServerPublisher{Server: srv},
		TenantSets:     true,
		MinClusterSize: 2,
		Cluster:        ClusterConfig{StaleEpochs: 1},
	})
	defer svc.Close()

	for i := 0; i < 12; i++ {
		svc.Observe("tenant-a", leakPacket("com.a", i))
	}
	first, err := svc.RunEpoch(context.Background())
	if err != nil || first == nil || first.Len() == 0 {
		t.Fatalf("first epoch: set=%+v err=%v", first, err)
	}
	if _, vA, _ := srv.CurrentNamed("tenant-a"); vA == 0 {
		t.Fatal("tenant-a named set never published")
	}

	// Idle epochs age the population out; the publish that follows must
	// drop the retired signature from both the global and the tenant set.
	var retiredSet *signature.Set
	for i := 0; i < 4 && retiredSet == nil; i++ {
		set, err := svc.RunEpoch(context.Background())
		if err != nil {
			t.Fatalf("idle epoch %d: %v", i, err)
		}
		if set != nil && set.Len() == 0 {
			retiredSet = set
		}
	}
	if retiredSet == nil {
		t.Fatalf("drift retirement never published the shrunken set; stats %+v", svc.Stats())
	}
	if retiredSet.Version <= first.Version {
		t.Fatalf("retirement version %d did not advance past %d", retiredSet.Version, first.Version)
	}
	cur, v := srv.Current()
	if v != retiredSet.Version || cur.Len() != 0 {
		t.Fatalf("server still carries retired signatures: %d sigs at v%d", cur.Len(), v)
	}
	setA, vA, _ := srv.CurrentNamed("tenant-a")
	if setA.Len() != 0 || vA < 2 {
		t.Fatalf("tenant-a named set not retired: %d sigs at v%d", setA.Len(), vA)
	}
	st := svc.Stats()
	if st.RetiredSig == 0 {
		t.Fatalf("no retirement counted: %+v", st)
	}
	if _, tracked := st.NamedVersions["tenant-a"]; tracked {
		t.Fatalf("retired tenant still tracked in %v", st.NamedVersions)
	}

	// A quiet learner after retirement publishes nothing further.
	again, err := svc.RunEpoch(context.Background())
	if err != nil || again != nil {
		t.Fatalf("post-retirement epoch republished: set=%+v err=%v", again, err)
	}
}

// TestPoolReloaderLandsTenantSets closes the in-process loop: learner →
// OnPublishNamed → Pool.ReloadTenant, with the pool default left alone so
// one tenant's learned signatures can never fire on another tenant.
func TestPoolReloaderLandsTenantSets(t *testing.T) {
	pool := engine.NewPool(nil, engine.PoolConfig{Engine: engine.Config{Shards: 1}})
	defer pool.Close()
	svc := NewService(Config{
		TenantSets:     true,
		MinClusterSize: 2,
		OnPublishNamed: PoolReloader(pool),
	})
	defer svc.Close()

	for i := 0; i < 12; i++ {
		svc.Observe("tenant-a", leakPacket("com.a", i))
	}
	if _, err := svc.RunEpoch(context.Background()); err != nil {
		t.Fatalf("epoch: %v", err)
	}
	if m := pool.MatchPacket("tenant-a", leakPacket("com.a", 99)); len(m) == 0 {
		t.Fatal("tenant-a never received its learned set")
	}
	// The same traffic through another tenant stays clean: the global
	// union was not installed as the pool default.
	if m := pool.MatchPacket("tenant-b", leakPacket("com.a", 99)); len(m) != 0 {
		t.Fatal("tenant-a's learned signatures fire on tenant-b")
	}
}
