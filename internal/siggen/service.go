// Package siggen is the online half of the paper's signature generation:
// an incremental, always-on learner that closes the loop the offline
// tools (cmd/leakcluster, cmd/leakgen) leave open.
//
// The offline pipeline materializes a corpus, computes a full distance
// matrix, agglomerates once, and writes a signature file somebody must
// publish by hand. This package runs the same method — the §IV-B/C packet
// distance, group-average clustering, common-substring token extraction,
// Bayes filtering — as a streaming service with three stages:
//
//	intake:   engine shards push unmatched ("miss") flows through a
//	          MissSink into per-tenant bounded reservoirs (algorithm R),
//	          so burst load can never grow learner memory and the sampled
//	          corpus stays uniform over each epoch's traffic;
//	cluster:  a rolling medoid clusterer assigns each sampled flow on
//	          arrival (no from-scratch re-clustering), with epoch
//	          compaction that re-elects medoids, agglomerates them with
//	          internal/cluster, merges below-threshold neighbors, and
//	          forgets stale clusters;
//	publish:  each epoch distills candidate conjunction signatures from
//	          the mature clusters, gates them through a Bayes model and a
//	          held-out false-positive corpus, and — when the accepted set
//	          actually changed — publishes it to a sigserver with a
//	          strictly increasing version, which every watching engine
//	          hot-reloads.
//
// Detection and generation thereby form the closed loop of the paper's
// Figure 3: traffic the current signatures cannot explain is exactly the
// corpus the next signature generation learns from.
package siggen

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// Config parameterizes the service. The zero value selects the defaults
// noted on each field; only Publisher is required for auto-publishing
// (without it epochs still cluster and distill, returning sets to the
// RunEpoch caller).
type Config struct {
	// Cluster tunes the incremental clusterer (distance metric, join
	// threshold, table bounds, staleness).
	Cluster ClusterConfig

	// ReservoirSize bounds each tenant's per-epoch sample; default 256.
	ReservoirSize int

	// MaxTenantReservoirs bounds how many tenants get private
	// reservoirs; tenants past the cap share one overflow reservoir
	// (tenant keys can be attacker-influenced). Default 64.
	MaxTenantReservoirs int

	// IntakeDepth is the sink-to-learner queue bound in packets; a full
	// queue drops samples (counted) rather than stalling engine shards.
	// Default 4096.
	IntakeDepth int

	// SuspectFilter, when non-nil, pre-screens misses before they enter
	// the intake queue — e.g. a sensitive-payload oracle, or "has a
	// query string or body". It runs on engine shard goroutines and must
	// be cheap and concurrency-safe. Nil admits every miss.
	SuspectFilter func(*httpmodel.Packet) bool

	// MinClusterSize is how many members a cluster needs before it may
	// emit a signature; default 3 (stricter than the offline default —
	// an online learner sees volatile singletons constantly).
	MinClusterSize int

	// Signature configures token extraction and filtering; Bayes the
	// gate model. Zero values select the package defaults.
	Signature signature.Options
	Bayes     signature.BayesOptions

	// Benign is the benign corpus, split internally: even indices train
	// the token-frequency filter and the Bayes gate, odd indices form
	// the held-out false-positive corpus. Empty disables both gates.
	Benign []*httpmodel.Packet

	// MaxHoldoutFP is the held-out benign fraction a candidate signature
	// may match before it is dropped; default 0.01.
	MaxHoldoutFP float64

	// MinSilhouette, when positive, skips publishing for epochs whose
	// medoid-clustering silhouette falls below it — a low score means
	// the clusters are not separable enough to trust their signatures.
	// 0 disables the gate.
	MinSilhouette float64

	// GenerateInterval is the epoch cadence of the background loop; 0
	// disables the timer, leaving epochs to explicit RunEpoch calls
	// (pipe-mode daemons, tests).
	GenerateInterval time.Duration

	// MinNewSamples skips timed epochs until at least this many samples
	// arrived since the last one; default 1. RunEpoch ignores it.
	MinNewSamples int

	// Publisher receives accepted sets; nil disables auto-publish.
	Publisher Publisher

	// OnPublish, when non-nil, observes every successful publish with
	// the accepted set (Version already assigned). It runs on the epoch
	// goroutine.
	OnPublish func(set *signature.Set)

	// Seed fixes the reservoir and medoid-election randomness; default 1.
	Seed int64
}

func (c Config) withDefaults() Config {
	if c.ReservoirSize <= 0 {
		c.ReservoirSize = 256
	}
	if c.MaxTenantReservoirs <= 0 {
		c.MaxTenantReservoirs = 64
	}
	if c.IntakeDepth <= 0 {
		c.IntakeDepth = 4096
	}
	if c.MinClusterSize <= 0 {
		c.MinClusterSize = 3
	}
	if c.MaxHoldoutFP == 0 {
		c.MaxHoldoutFP = 0.01
	}
	if c.MinNewSamples <= 0 {
		c.MinNewSamples = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// Service is the online signature generator. Construct with NewService;
// all methods are safe for concurrent use. Feed it through MissSink /
// MissSinkFor (engine sinks) or Observe (direct), and either let the
// GenerateInterval loop publish or drive epochs yourself with RunEpoch.
type Service struct {
	cfg Config

	intake chan sample

	// mu guards the learner state: reservoirs, clusterer, distillation
	// bookkeeping, and the epoch path itself.
	mu              sync.Mutex
	reservoirs      map[string]*reservoir
	overflow        *reservoir
	clusterer       *Clusterer
	rng             *rand.Rand
	newSamples      int            // samples admitted since the last epoch
	pendingSet      *signature.Set // generated but not yet published (publish failed)
	pendingFP       string         // fingerprint of pendingSet
	publishing      bool           // a publisher round trip is in flight (s.mu released)
	lastVersion     int64          // latest version we know the publisher holds
	lastFingerprint string         // content identity of the last published set
	lastCompact     CompactStats
	lastDistill     DistillStats

	observed        atomic.Uint64
	sinkDropped     atomic.Uint64
	admitted        atomic.Uint64
	sampled         atomic.Uint64
	overflowTenants atomic.Uint64
	epochs          atomic.Uint64
	publishes       atomic.Uint64
	publishErrors   atomic.Uint64

	benignTrain []*httpmodel.Packet
	benignHold  []*httpmodel.Packet

	stop     chan struct{}
	loopDone chan struct{}
	closed   atomic.Bool
}

// NewService starts the learner: the intake goroutine begins draining
// immediately, and — when GenerateInterval is set — the epoch loop
// begins generating.
func NewService(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:        cfg,
		intake:     make(chan sample, cfg.IntakeDepth),
		reservoirs: make(map[string]*reservoir),
		overflow:   newReservoir(cfg.ReservoirSize),
		clusterer:  NewClusterer(cfg.Cluster, cfg.Seed),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		stop:       make(chan struct{}),
		loopDone:   make(chan struct{}),
	}
	s.benignTrain, s.benignHold = splitBenign(cfg.Benign)
	go s.run()
	return s
}

// run drains the intake queue into the reservoirs and fires timed
// epochs.
func (s *Service) run() {
	defer close(s.loopDone)
	var tick <-chan time.Time
	if s.cfg.GenerateInterval > 0 {
		t := time.NewTicker(s.cfg.GenerateInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case smp := <-s.intake:
			s.mu.Lock()
			s.admit(smp)
			s.mu.Unlock()
		case <-tick:
			s.mu.Lock()
			switch {
			case s.newSamples >= s.cfg.MinNewSamples:
				s.epochLocked(context.Background())
			case s.pendingSet != nil:
				// Retry a generated-but-unpublished set without running
				// the cluster pipeline: a pure retry must not advance
				// the clusterer epoch (staleness pruning would discard
				// the clusters while the server is down), and the set
				// itself is already cached.
				s.publishLocked(context.Background(), s.pendingSet, s.pendingFP)
			}
			s.mu.Unlock()
		case <-s.stop:
			return
		}
	}
}

// RunEpoch drains any queued intake, runs one full epoch — cluster the
// reservoir samples, compact, distill, publish if changed — and returns
// the set it published (nil when nothing was generated or nothing
// changed). The error reports publish failures; generation itself cannot
// fail.
func (s *Service) RunEpoch(ctx context.Context) (*signature.Set, error) {
	// Every sample observed before this call must make the epoch. One
	// may sit in the run() goroutine's hands — dequeued from the channel
	// but not yet admitted — so wait until admissions catch up with the
	// entry snapshot before generating (bounded: with producers quiesced
	// this converges in one handoff; with live producers the snapshot
	// keeps the wait finite).
	target := s.observed.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	for deadline := time.Now().Add(time.Second); ; {
		s.drainLocked()
		if s.admitted.Load() >= target || time.Now().After(deadline) {
			break
		}
		s.mu.Unlock()
		time.Sleep(100 * time.Microsecond)
		s.mu.Lock()
	}
	return s.epochLocked(ctx)
}

// drainLocked empties the intake queue into the reservoirs without
// blocking. Callers hold s.mu.
func (s *Service) drainLocked() {
	for {
		select {
		case smp := <-s.intake:
			s.admit(smp)
		default:
			return
		}
	}
}

// errStalePublish marks an epoch that lost a publish race; the service
// re-syncs its version and the next epoch retries.
var errStalePublish = errors.New("siggen: publish raced a newer version")

// publishTimeout bounds one epoch's publisher round trips so a hung
// server costs one failed (and retried) publish, never a wedged epoch
// goroutine.
const publishTimeout = 30 * time.Second

// epochLocked is one generation epoch. Callers hold s.mu.
func (s *Service) epochLocked(ctx context.Context) (*signature.Set, error) {
	s.epochs.Add(1)
	s.newSamples = 0

	// Stage 2: feed this epoch's samples into the rolling clusters,
	// then compact.
	for _, r := range s.reservoirs {
		for _, p := range r.take() {
			s.clusterer.Observe(p)
		}
	}
	for _, p := range s.overflow.take() {
		s.clusterer.Observe(p)
	}
	s.lastCompact = s.clusterer.Compact()

	// Stage 3: distill and gate.
	groups := s.clusterer.Groups(s.cfg.MinClusterSize)
	opts := s.cfg.Signature
	opts.MinClusterSize = s.cfg.MinClusterSize
	set, dst := distill(groups, s.benignTrain, s.benignHold, opts, s.cfg.Bayes, s.cfg.MaxHoldoutFP)
	s.lastDistill = dst
	if set.Len() == 0 {
		if s.pendingSet != nil {
			// Nothing fresh, but an earlier generation still awaits
			// publishing (its clusters may have been pruned since).
			return s.publishLocked(ctx, s.pendingSet, s.pendingFP)
		}
		return nil, nil
	}
	if s.cfg.MinSilhouette > 0 && s.lastCompact.Silhouette < s.cfg.MinSilhouette {
		return nil, nil
	}
	fp := setFingerprint(set)
	if fp == s.lastFingerprint {
		s.pendingSet, s.pendingFP = nil, ""
		return nil, nil // same content as last publish; don't spam watchers
	}

	if s.cfg.Publisher == nil {
		s.lastFingerprint = fp
		return set, nil
	}
	return s.publishLocked(ctx, set, fp)
}

// publishLocked ships one generated set with a strictly increasing
// version stamp. Callers hold s.mu; the publisher round trips run with
// the mutex RELEASED (re-acquired for bookkeeping) under a hard
// deadline, so a slow or hung server neither wedges Stats/Close nor
// stalls intake admissions driven by RunEpoch. A `publishing` guard
// keeps concurrent epochs from racing the version stamp: the loser
// parks the set as pending and the next tick retries.
func (s *Service) publishLocked(ctx context.Context, set *signature.Set, fp string) (*signature.Set, error) {
	if s.publishing {
		s.pendingSet, s.pendingFP = set, fp
		return nil, nil
	}
	s.publishing = true
	version := s.lastVersion + 1
	needSeed := s.lastVersion == 0
	s.mu.Unlock()

	pubCtx, cancel := context.WithTimeout(ctx, publishTimeout)
	if needSeed {
		// First publish: seed the stamp from the server so we continue
		// its sequence instead of starting a losing race at 1.
		if v, err := s.cfg.Publisher.CurrentVersion(pubCtx); err == nil && v >= version {
			version = v + 1
		}
	}
	set.Version = version
	v, err := s.cfg.Publisher.Publish(pubCtx, set)
	var cur int64
	var curErr error
	if err != nil {
		// Another writer may have advanced the server; learn its version
		// so the retry stamps past it.
		cur, curErr = s.cfg.Publisher.CurrentVersion(pubCtx)
	}
	cancel()

	s.mu.Lock()
	s.publishing = false
	if err != nil {
		s.publishErrors.Add(1)
		// Cache the set so retries survive cluster pruning and quiet
		// traffic; the next tick republishes it as-is.
		s.pendingSet, s.pendingFP = set, fp
		if curErr == nil && cur > s.lastVersion {
			s.lastVersion = cur
			return nil, errStalePublish
		}
		return nil, err
	}
	s.lastVersion = v
	set.Version = v
	s.lastFingerprint = fp
	s.pendingSet, s.pendingFP = nil, ""
	s.publishes.Add(1)
	if s.cfg.OnPublish != nil {
		s.cfg.OnPublish(set)
	}
	return set, nil
}

// Stats is a point-in-time view of the learner.
type Stats struct {
	Observed        uint64 `json:"observed"`         // misses admitted past the filter into the intake queue
	SinkDropped     uint64 `json:"sink_dropped"`     // misses dropped at the sink (queue full)
	Admitted        uint64 `json:"admitted"`         // intake samples routed to a reservoir so far
	Sampled         uint64 `json:"sampled"`          // packets stored by a reservoir
	OverflowTenants uint64 `json:"overflow_tenants"` // admissions routed to the shared overflow reservoir
	PendingSamples  int    `json:"pending_samples"`  // packets currently held in reservoirs
	Tenants         int    `json:"tenants"`          // tenants with a private reservoir

	Clusters        int     `json:"clusters"`
	ClusterMembers  int     `json:"cluster_members"`
	ClusterRejected uint64  `json:"cluster_rejected"` // arrivals dropped: table full, nothing close
	Silhouette      float64 `json:"silhouette"`       // last compaction's medoid silhouette

	Epochs        uint64 `json:"epochs"`
	Candidates    int    `json:"candidates"`     // last distillation
	RejectedBayes int    `json:"rejected_bayes"` // last distillation
	RejectedFP    int    `json:"rejected_fp"`    // last distillation
	Accepted      int    `json:"accepted"`       // last distillation

	Publishes     uint64 `json:"publishes"`
	PublishErrors uint64 `json:"publish_errors"`
	LastVersion   int64  `json:"last_version"`
}

// Stats assembles a snapshot. Safe to call while streaming.
func (s *Service) Stats() Stats {
	st := Stats{
		Observed:        s.observed.Load(),
		SinkDropped:     s.sinkDropped.Load(),
		Admitted:        s.admitted.Load(),
		Sampled:         s.sampled.Load(),
		OverflowTenants: s.overflowTenants.Load(),
		Epochs:          s.epochs.Load(),
		Publishes:       s.publishes.Load(),
		PublishErrors:   s.publishErrors.Load(),
	}
	s.mu.Lock()
	st.Tenants = len(s.reservoirs)
	for _, r := range s.reservoirs {
		st.PendingSamples += r.size()
	}
	st.PendingSamples += s.overflow.size()
	st.Clusters = s.clusterer.Len()
	st.ClusterMembers = s.clusterer.Members()
	st.ClusterRejected = s.clusterer.Rejected()
	st.Silhouette = s.lastCompact.Silhouette
	st.Candidates = s.lastDistill.Candidates
	st.RejectedBayes = s.lastDistill.RejectedBayes
	st.RejectedFP = s.lastDistill.RejectedFP
	st.Accepted = s.lastDistill.Accepted
	st.LastVersion = s.lastVersion
	s.mu.Unlock()
	return st
}

// Close stops the intake and epoch loops. It does not run a final epoch;
// callers that want one (pipe-mode daemons) call RunEpoch first. Close
// is idempotent.
func (s *Service) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.stop)
		<-s.loopDone
	}
}
