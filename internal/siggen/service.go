// Package siggen is the online half of the paper's signature generation:
// an incremental, always-on learner that closes the loop the offline
// tools (cmd/leakcluster, cmd/leakgen) leave open.
//
// The offline pipeline materializes a corpus, computes a full distance
// matrix, agglomerates once, and writes a signature file somebody must
// publish by hand. This package runs the same method — the §IV-B/C packet
// distance, group-average clustering, common-substring token extraction,
// Bayes filtering — as a streaming service with three stages:
//
//	intake:   engine shards push unmatched ("miss") flows through a
//	          MissSink into per-tenant bounded reservoirs (algorithm R),
//	          so burst load can never grow learner memory and the sampled
//	          corpus stays uniform over each epoch's traffic;
//	cluster:  a rolling medoid clusterer assigns each sampled flow on
//	          arrival (no from-scratch re-clustering), tagging every
//	          cluster with the tenant mix of its members, with epoch
//	          compaction that re-elects medoids, agglomerates them with
//	          internal/cluster, merges below-threshold neighbors, and
//	          forgets stale clusters;
//	publish:  each epoch distills candidate conjunction signatures from
//	          the mature clusters, gates them through a Bayes model and a
//	          held-out false-positive corpus, folds survivors into a
//	          published catalog that remembers which clusters sourced
//	          each signature, and — when content actually changed —
//	          publishes the global set plus (with TenantSets) one named
//	          set per tenant, each under its own strictly increasing
//	          version, which every watching engine hot-reloads.
//
// The catalog is also where drift retirement lives: when staleness
// pruning retires every cluster that sourced a published signature, the
// signature leaves the catalog and the next epoch publishes sets without
// it — signatures age out as app/library traffic evolves instead of
// accumulating forever. A tenant whose signatures all retire gets one
// final empty publish so watchers converge, then drops out of the
// learner's books entirely.
//
// Detection and generation thereby form the closed loop of the paper's
// Figure 3: traffic the current signatures cannot explain is exactly the
// corpus the next signature generation learns from — per population, the
// way the paper's per-module signatures isolate ad libraries.
package siggen

import (
	"context"
	"errors"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"leaksig/internal/httpmodel"
	"leaksig/internal/obs/trace"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// Config parameterizes the service. The zero value selects the defaults
// noted on each field; only Publisher is required for auto-publishing
// (without it epochs still cluster and distill, returning sets to the
// RunEpoch caller and feeding OnPublishNamed).
type Config struct {
	// Cluster tunes the incremental clusterer (distance metric, join
	// threshold, table bounds, staleness).
	Cluster ClusterConfig

	// ReservoirSize bounds each tenant's per-epoch sample; default 256.
	ReservoirSize int

	// MaxTenantReservoirs bounds how many tenants get private
	// reservoirs; tenants past the cap share one overflow reservoir
	// (tenant keys can be attacker-influenced). Reservoir slots are
	// released every epoch, so the cap bounds tenants per epoch, not
	// tenants ever seen. Default 64.
	MaxTenantReservoirs int

	// IntakeDepth is the sink-to-learner queue bound in packets; a full
	// queue drops samples (counted) rather than stalling engine shards.
	// Default 4096.
	IntakeDepth int

	// SuspectFilter, when non-nil, pre-screens misses before they enter
	// the intake queue — e.g. a sensitive-payload oracle, or "has a
	// query string or body". It runs on engine shard goroutines and must
	// be cheap and concurrency-safe. Nil admits every miss.
	SuspectFilter func(*httpmodel.Packet) bool

	// MinClusterSize is how many members a cluster needs before it may
	// emit a signature; default 3 (stricter than the offline default —
	// an online learner sees volatile singletons constantly).
	MinClusterSize int

	// Signature configures token extraction and filtering; Bayes the
	// gate model. Zero values select the package defaults.
	Signature signature.Options
	Bayes     signature.BayesOptions

	// Benign is the benign corpus, split internally: even indices train
	// the token-frequency filter and the Bayes gate, odd indices form
	// the held-out false-positive corpus. Empty disables both gates.
	Benign []*httpmodel.Packet

	// TenantBenign supplies per-tenant benign corpora for the held-out
	// false-positive gate: a candidate signature whose source clusters
	// include tenant T's traffic must also clear MaxHoldoutFP against
	// T's corpus. Tenants absent here fall back to the shared Benign
	// corpus alone. Unlike Benign, these corpora are never trained on,
	// so each is used held-out in full.
	TenantBenign map[string][]*httpmodel.Packet

	// MaxHoldoutFP is the held-out benign fraction a candidate signature
	// may match before it is dropped; default 0.01.
	MaxHoldoutFP float64

	// MinSilhouette, when positive, skips publishing fresh content for
	// epochs whose medoid-clustering silhouette falls below it — a low
	// score means the clusters are not separable enough to trust their
	// signatures. Cached sets from failed publishes still retry. 0
	// disables the gate.
	MinSilhouette float64

	// TenantSets, when true, distills one named signature set per tenant
	// alongside the global set: a signature lands in tenant T's set when
	// T's traffic is part of its source clusters' member mix. Named sets
	// publish through the Publisher's NamedPublisher side (when
	// implemented) and through OnPublishNamed, each tenant under its own
	// strictly increasing version.
	TenantSets bool

	// GenerateInterval is the epoch cadence of the background loop; 0
	// disables the timer, leaving epochs to explicit RunEpoch calls
	// (pipe-mode daemons, tests).
	GenerateInterval time.Duration

	// MinNewSamples skips timed epochs until at least this many samples
	// arrived since the last one; default 1. RunEpoch ignores it.
	MinNewSamples int

	// Publisher receives accepted sets; nil disables remote publishing
	// (sets still reach OnPublish/OnPublishNamed with locally stamped
	// versions). A Publisher that also implements NamedPublisher
	// receives per-tenant sets under their names.
	Publisher Publisher

	// OnPublish, when non-nil, observes every successful global-set
	// publish with the accepted set (Version already assigned). It runs
	// on the epoch goroutine with the service lock held; it must not
	// call back into the service.
	OnPublish func(set *signature.Set)

	// OnPublishNamed, when non-nil, observes every successful publish —
	// the global set as "", each tenant set under its tenant key. This
	// is the in-process route for landing per-tenant sets in an
	// engine.Pool (see PoolReloader). Same execution rules as OnPublish.
	OnPublishNamed func(name string, set *signature.Set)

	// OnRetire, when non-nil, observes drift retirement: n catalog
	// signatures lost their last source cluster this epoch and will be
	// absent from the next published versions. Same execution rules as
	// OnPublish.
	OnRetire func(n int)

	// Seed fixes the reservoir and medoid-election randomness; default 1.
	Seed int64

	// CheckpointPath, when set, makes learner state durable: NewService
	// restores from it (missing/corrupt files restore nothing and are
	// not errors), every epoch atomically rewrites it, and Close writes
	// a final checkpoint — so reservoir samples, cluster medoids+tags,
	// the published catalog, and retirement bookkeeping survive a
	// restart. RNG state is not checkpointed; a restored service
	// reseeds from Seed.
	CheckpointPath string

	// Tracer, when non-nil, receives the learner's stage latencies:
	// sampled packet spans end at the cluster-feed stamp, and the
	// epoch-granular distill and publish stages report their durations
	// directly. Nil disables tracing (spans still flow through correctly
	// if an upstream engine attached them).
	Tracer *trace.Tracer
}

func (c Config) withDefaults() Config {
	if c.ReservoirSize <= 0 {
		c.ReservoirSize = 256
	}
	if c.MaxTenantReservoirs <= 0 {
		c.MaxTenantReservoirs = 64
	}
	if c.IntakeDepth <= 0 {
		c.IntakeDepth = 4096
	}
	if c.MinClusterSize <= 0 {
		c.MinClusterSize = 3
	}
	if c.MaxHoldoutFP == 0 {
		c.MaxHoldoutFP = 0.01
	}
	if c.MinNewSamples <= 0 {
		c.MinNewSamples = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	return c
}

// publishedSig is one catalog entry: a published (or to-be-published)
// signature with the provenance drift retirement and per-tenant set
// assembly need.
type publishedSig struct {
	sig     *signature.Signature
	sources map[uint64]int // live source cluster ID → member count when distilled
	tenants map[string]int // member count per tenant across those clusters
	traces  []string       // sampled trace IDs of contributing packets (bounded)
}

// pubState tracks one published name's delivery state: the version
// sequence, the content fingerprint of the last successful publish, and
// a cached set awaiting retry after a failed publish.
type pubState struct {
	lastVersion     int64
	lastFingerprint string
	pending         *signature.Set
	pendingFP       string
}

// namedPublish is one (name, set) pair an epoch decided to ship.
type namedPublish struct {
	name string
	set  *signature.Set
	fp   string
}

// Service is the online signature generator. Construct with NewService;
// all methods are safe for concurrent use. Feed it through MissSink /
// MissSinkFor / MissSinkBy (engine sinks) or Observe (direct), and either
// let the GenerateInterval loop publish or drive epochs yourself with
// RunEpoch.
type Service struct {
	cfg Config

	intake chan sample

	// mu guards the learner state: reservoirs, clusterer, catalog,
	// publish states, and the epoch path itself.
	mu          sync.Mutex
	reservoirs  map[string]*reservoir
	overflow    *reservoir
	clusterer   *Clusterer
	rng         *rand.Rand
	newSamples  int                      // samples admitted since the last epoch
	catalog     map[string]*publishedSig // published signatures by key
	pubs        map[string]*pubState     // per published-name delivery state; "" = global
	publishing  bool                     // a publisher round trip is in flight (s.mu released)
	lastCompact CompactStats
	lastDistill DistillStats

	observed        atomic.Uint64
	sinkDropped     atomic.Uint64
	admitted        atomic.Uint64
	sampled         atomic.Uint64
	overflowTenants atomic.Uint64
	epochs          atomic.Uint64
	publishes       atomic.Uint64
	namedPublishes  atomic.Uint64
	publishErrors   atomic.Uint64
	retiredSigs     atomic.Uint64
	ckptSaves       atomic.Uint64
	ckptErrors      atomic.Uint64
	ckptRestored    atomic.Bool

	benignTrain []*httpmodel.Packet
	benignHold  []*httpmodel.Packet

	stop     chan struct{}
	loopDone chan struct{}
	closed   atomic.Bool
}

// NewService starts the learner: the intake goroutine begins draining
// immediately, and — when GenerateInterval is set — the epoch loop
// begins generating.
func NewService(cfg Config) *Service {
	cfg = cfg.withDefaults()
	s := &Service{
		cfg:        cfg,
		intake:     make(chan sample, cfg.IntakeDepth),
		reservoirs: make(map[string]*reservoir),
		overflow:   newReservoir(cfg.ReservoirSize),
		clusterer:  NewClusterer(cfg.Cluster, cfg.Seed),
		rng:        rand.New(rand.NewSource(cfg.Seed)),
		catalog:    make(map[string]*publishedSig),
		pubs:       make(map[string]*pubState),
		stop:       make(chan struct{}),
		loopDone:   make(chan struct{}),
	}
	s.benignTrain, s.benignHold = splitBenign(cfg.Benign)
	if cfg.CheckpointPath != "" {
		// Restore before the loops start: failure to restore (missing or
		// corrupt checkpoint) is a fresh start, never a refusal to boot.
		s.RestoreCheckpoint(cfg.CheckpointPath)
	}
	go s.run()
	return s
}

// run drains the intake queue into the reservoirs and fires timed
// epochs.
func (s *Service) run() {
	defer close(s.loopDone)
	var tick <-chan time.Time
	if s.cfg.GenerateInterval > 0 {
		t := time.NewTicker(s.cfg.GenerateInterval)
		defer t.Stop()
		tick = t.C
	}
	for {
		select {
		case smp := <-s.intake:
			s.mu.Lock()
			s.admit(smp)
			s.mu.Unlock()
		case <-tick:
			s.mu.Lock()
			switch {
			case s.newSamples >= s.cfg.MinNewSamples:
				s.epochLocked(context.Background())
			case s.hasPendingLocked():
				// Retry generated-but-unpublished sets without running
				// the cluster pipeline: a pure retry must not advance
				// the clusterer epoch (staleness pruning would discard
				// the clusters while the server is down), and the sets
				// themselves are already cached.
				s.publishLocked(context.Background(), s.pendingBatchLocked())
			}
			s.mu.Unlock()
		case <-s.stop:
			return
		}
	}
}

// RunEpoch drains any queued intake, runs one full epoch — cluster the
// reservoir samples, compact, retire, distill, publish what changed —
// and returns the global set it published (nil when nothing was
// generated or nothing changed; per-tenant publishes surface through
// OnPublishNamed). The error reports the first publish failure;
// generation itself cannot fail.
func (s *Service) RunEpoch(ctx context.Context) (*signature.Set, error) {
	// Every sample observed before this call must make the epoch. One
	// may sit in the run() goroutine's hands — dequeued from the channel
	// but not yet admitted — so wait until admissions catch up with the
	// entry snapshot before generating (bounded: with producers quiesced
	// this converges in one handoff; with live producers the snapshot
	// keeps the wait finite).
	target := s.observed.Load()
	s.mu.Lock()
	defer s.mu.Unlock()
	for deadline := time.Now().Add(time.Second); ; {
		s.drainLocked()
		if s.admitted.Load() >= target || time.Now().After(deadline) {
			break
		}
		s.mu.Unlock()
		time.Sleep(100 * time.Microsecond)
		s.mu.Lock()
	}
	return s.epochLocked(ctx)
}

// drainLocked empties the intake queue into the reservoirs without
// blocking. Callers hold s.mu.
func (s *Service) drainLocked() {
	for {
		select {
		case smp := <-s.intake:
			s.admit(smp)
		default:
			return
		}
	}
}

// errStalePublish marks an epoch that lost a publish race; the service
// re-syncs its version and the next epoch retries.
var errStalePublish = errors.New("siggen: publish raced a newer version")

// publishTimeout bounds one publisher round trip so a hung server costs
// one failed (and retried) publish, never a wedged epoch goroutine.
const publishTimeout = 30 * time.Second

// epochLocked is one generation epoch. Callers hold s.mu.
func (s *Service) epochLocked(ctx context.Context) (*signature.Set, error) {
	s.epochs.Add(1)
	s.newSamples = 0

	// Stage 2: feed this epoch's samples into the rolling clusters, then
	// compact. Taking a reservoir empties it, and the slot itself is
	// released: the tenant table only ever holds tenants seen since the
	// last epoch, so transient tenant keys can never exhaust the
	// MaxTenantReservoirs slots for everyone who comes later.
	for key, r := range s.reservoirs {
		for _, smp := range r.take() {
			// The cluster feed is a sampled packet's last per-packet
			// station: stamp it and end the span here, so packets the
			// clusterer retains across epochs carry only the trace ID.
			smp.p.Span.Stamp(trace.StageCluster)
			smp.p.EndTrace()
			s.clusterer.ObserveTenant(smp.p, smp.tenant)
		}
		delete(s.reservoirs, key)
	}
	for _, smp := range s.overflow.take() {
		smp.p.Span.Stamp(trace.StageCluster)
		smp.p.EndTrace()
		s.clusterer.ObserveTenant(smp.p, smp.tenant)
	}
	s.lastCompact = s.clusterer.Compact()

	// Drift retirement: follow this compaction's merge renames, drop its
	// retired clusters, and retire every catalog signature that lost its
	// last source cluster — the next assembly simply no longer has it.
	s.retireLocked(s.lastCompact)

	// Stage 3: distill, gate, and fold survivors into the catalog.
	groups := s.clusterer.TaggedGroups(s.cfg.MinClusterSize)
	opts := s.cfg.Signature
	opts.MinClusterSize = s.cfg.MinClusterSize
	distillStart := time.Now()
	cands, dst := distill(groups, s.benignTrain, s.benignHold, s.cfg.TenantBenign, opts, s.cfg.Bayes, s.cfg.MaxHoldoutFP)
	s.cfg.Tracer.Observe(trace.StageDistill, time.Since(distillStart))
	s.lastDistill = dst
	for _, c := range cands {
		key := c.sig.Key()
		traces := c.traces
		if prev := s.catalog[key]; prev != nil {
			traces = mergeTraces(prev.traces, c.traces)
		}
		s.catalog[key] = &publishedSig{sig: c.sig, sources: c.sources, tenants: c.tenants, traces: traces}
	}

	// Publish whatever changed. A silhouette below the quality gate
	// holds back fresh content but still lets cached failed publishes
	// retry — their content already cleared the gate once.
	skipFresh := s.cfg.MinSilhouette > 0 && s.lastCompact.Silhouette < s.cfg.MinSilhouette
	set, err := s.publishLocked(ctx, s.buildBatchLocked(skipFresh))

	// Checkpoint after the publish bookkeeping settles, so the stored
	// pubState versions and pending sets reflect this epoch's outcome —
	// including failed publishes parked for retry.
	if s.cfg.CheckpointPath != "" {
		s.saveCheckpointLocked(s.cfg.CheckpointPath)
	}
	return set, err
}

// retireLocked applies one compaction's cluster-identity changes to the
// catalog. Callers hold s.mu.
func (s *Service) retireLocked(cs CompactStats) {
	if len(s.catalog) == 0 || (len(cs.Retired) == 0 && len(cs.MergedInto) == 0) {
		return
	}
	retired := make(map[uint64]struct{}, len(cs.Retired))
	for _, id := range cs.Retired {
		retired[id] = struct{}{}
	}
	dropped := 0
	for key, ps := range s.catalog {
		next := make(map[uint64]int, len(ps.sources))
		for src, size := range ps.sources {
			if dst, ok := cs.MergedInto[src]; ok {
				src = dst // the population lives on under the surviving ID
			}
			if _, gone := retired[src]; gone {
				continue
			}
			if size > next[src] {
				next[src] = size
			}
		}
		if len(next) == 0 {
			delete(s.catalog, key)
			s.retiredSigs.Add(1)
			dropped++
			continue
		}
		ps.sources = next
	}
	if dropped > 0 && s.cfg.OnRetire != nil {
		s.cfg.OnRetire(dropped)
	}
}

// buildBatchLocked assembles the global set (and, with TenantSets, one
// set per tenant) from the catalog and returns the publishes this epoch
// owes: every name whose content fingerprint moved, plus cached sets
// still awaiting their first successful delivery. Callers hold s.mu.
func (s *Service) buildBatchLocked(skipFresh bool) []namedPublish {
	assembled := map[string]*signature.Set{"": s.assembleLocked(func(*publishedSig) bool { return true })}
	if s.cfg.TenantSets {
		for _, tenant := range s.catalogTenantsLocked() {
			assembled[tenant] = s.assembleLocked(func(ps *publishedSig) bool { return ps.tenants[tenant] > 0 })
		}
		// A tenant whose signatures all retired still owes watchers one
		// final empty publish so they converge off the stale set.
		for name, pub := range s.pubs {
			if name == "" {
				continue
			}
			if _, ok := assembled[name]; !ok && (pub.lastFingerprint != "" || pub.pending != nil) {
				assembled[name] = &signature.Set{}
			}
		}
	}

	var batch []namedPublish
	for name, set := range assembled {
		fp := setFingerprint(set)
		pub := s.pubs[name]
		lastFP := ""
		if pub != nil {
			lastFP = pub.lastFingerprint
		}
		if fp == lastFP {
			if pub != nil && pub.pending != nil && fp == "" {
				// Nothing was ever published under this name, but an
				// earlier generation still awaits delivery (its clusters
				// may have been pruned since): retry the cached set as-is.
				batch = append(batch, namedPublish{name: name, set: pub.pending, fp: pub.pendingFP})
			} else if pub != nil {
				// Current content equals the published content; any older
				// failed generation is obsolete.
				pub.pending, pub.pendingFP = nil, ""
			}
			continue
		}
		if skipFresh {
			// The silhouette gate holds back this epoch's fresh content,
			// but a cached failed publish already cleared the gate once —
			// keep retrying it rather than dropping the name entirely.
			if pub != nil && pub.pending != nil {
				batch = append(batch, namedPublish{name: name, set: pub.pending, fp: pub.pendingFP})
			}
			continue
		}
		batch = append(batch, namedPublish{name: name, set: set, fp: fp})
	}
	sortBatch(batch)
	return batch
}

// sortBatch orders publishes deterministically: the global set first,
// then tenants in name order.
func sortBatch(batch []namedPublish) {
	sort.Slice(batch, func(i, j int) bool { return batch[i].name < batch[j].name })
}

// assembleLocked builds a set from the catalog entries keep admits. The
// set's TrainingSize counts packets across the unique source clusters
// behind the kept signatures (one cluster distilling three signatures
// counts once). Callers hold s.mu.
func (s *Service) assembleLocked(keep func(*publishedSig) bool) *signature.Set {
	var sigs []*signature.Signature
	var traces []string
	clusters := make(map[uint64]int)
	for _, ps := range s.catalog {
		if !keep(ps) {
			continue
		}
		sigs = append(sigs, ps.sig)
		traces = mergeTraces(traces, ps.traces)
		for id, size := range ps.sources {
			if size > clusters[id] {
				clusters[id] = size
			}
		}
	}
	training := 0
	for _, size := range clusters {
		training += size
	}
	set := assemble(sigs, training)
	// Trace provenance rides the set but never its fingerprint, so a
	// stable catalog under new trace IDs republishes nothing.
	sort.Strings(traces)
	set.Traces = traces
	return set
}

// catalogTenantsLocked lists every tenant named in the catalog's
// provenance. Excluded: the unattributed "" label (its flows back only
// the global set) and tenant keys that cannot name a distributable set
// (sigserver.ValidSetName — tenant keys ride on traffic fields, and a
// crafted key like ".." must not wedge the publisher in a permanent
// retry loop). Callers hold s.mu.
func (s *Service) catalogTenantsLocked() []string {
	seen := make(map[string]struct{})
	for _, ps := range s.catalog {
		for tenant, n := range ps.tenants {
			if tenant != "" && n > 0 && sigserver.ValidSetName(tenant) {
				seen[tenant] = struct{}{}
			}
		}
	}
	out := make([]string, 0, len(seen))
	for tenant := range seen {
		out = append(out, tenant)
	}
	sort.Strings(out)
	return out
}

// hasPendingLocked reports whether any name holds a cached set awaiting
// a publish retry. Callers hold s.mu.
func (s *Service) hasPendingLocked() bool {
	for _, pub := range s.pubs {
		if pub.pending != nil {
			return true
		}
	}
	return false
}

// pendingBatchLocked lists every cached set awaiting retry. Callers hold
// s.mu.
func (s *Service) pendingBatchLocked() []namedPublish {
	var batch []namedPublish
	for name, pub := range s.pubs {
		if pub.pending != nil {
			batch = append(batch, namedPublish{name: name, set: pub.pending, fp: pub.pendingFP})
		}
	}
	sortBatch(batch)
	return batch
}

// pub returns (creating if needed) the delivery state for name. Callers
// hold s.mu.
func (s *Service) pub(name string) *pubState {
	p := s.pubs[name]
	if p == nil {
		p = &pubState{}
		s.pubs[name] = p
	}
	return p
}

// publishLocked ships one epoch's batch, each set with a strictly
// increasing version stamp under its own name. Callers hold s.mu; the
// publisher round trips run with the mutex RELEASED (re-acquired for
// bookkeeping) under a hard deadline, so a slow or hung server neither
// wedges Stats/Close nor stalls intake admissions driven by RunEpoch. A
// `publishing` guard keeps concurrent epochs from racing the version
// stamps: the loser parks its sets as pending and the next tick retries.
// It returns the published global set (nil when the batch had none) and
// the first error.
func (s *Service) publishLocked(ctx context.Context, batch []namedPublish) (*signature.Set, error) {
	if len(batch) == 0 {
		return nil, nil
	}
	if s.publishing {
		for _, item := range batch {
			pub := s.pub(item.name)
			pub.pending, pub.pendingFP = item.set, item.fp
		}
		return nil, nil
	}
	s.publishing = true
	var globalSet *signature.Set
	var firstErr error
	for _, item := range batch {
		set, err := s.publishOneLocked(ctx, item)
		if item.name == "" && set != nil {
			globalSet = set
		}
		if err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.publishing = false
	return globalSet, firstErr
}

// publishOneLocked ships one named set. Callers hold s.mu (released
// around the round trip) and have set s.publishing.
func (s *Service) publishOneLocked(ctx context.Context, item namedPublish) (*signature.Set, error) {
	name, set, fp := item.name, item.set, item.fp
	pub := s.pub(name)

	// Resolve the remote route: the Publisher for the global set, its
	// NamedPublisher side for tenant sets. Without one, the set is
	// stamped locally and delivered to the in-process hooks only.
	var publish func(ctx context.Context, set *signature.Set) (int64, error)
	var current func(ctx context.Context) (int64, error)
	if name == "" {
		if p := s.cfg.Publisher; p != nil {
			publish, current = p.Publish, p.CurrentVersion
		}
	} else if np, ok := s.cfg.Publisher.(NamedPublisher); ok {
		publish = func(ctx context.Context, set *signature.Set) (int64, error) {
			return np.PublishNamed(ctx, name, set)
		}
		current = func(ctx context.Context) (int64, error) {
			return np.CurrentNamedVersion(ctx, name)
		}
	}

	version := pub.lastVersion + 1
	if publish == nil {
		set.Version = version
		pub.lastVersion = version
		pub.lastFingerprint = fp
		pub.pending, pub.pendingFP = nil, ""
		s.deliveredLocked(name, set)
		return set, nil
	}

	needSeed := pub.lastVersion == 0
	s.mu.Unlock()
	pubCtx, cancel := context.WithTimeout(ctx, publishTimeout)
	if needSeed {
		// First publish under this name: seed the stamp from the server
		// so we continue its sequence instead of starting a losing race
		// at 1.
		if v, err := current(pubCtx); err == nil && v >= version {
			version = v + 1
		}
	}
	set.Version = version
	pubStart := time.Now()
	v, err := publish(pubCtx, set)
	s.cfg.Tracer.Observe(trace.StagePublish, time.Since(pubStart))
	var cur int64
	var curErr error
	if err != nil {
		// Another writer may have advanced the server; learn its version
		// so the retry stamps past it.
		cur, curErr = current(pubCtx)
	}
	cancel()

	s.mu.Lock()
	if err != nil {
		s.publishErrors.Add(1)
		// Cache the set so retries survive cluster pruning and quiet
		// traffic; the next tick republishes it as-is.
		pub.pending, pub.pendingFP = set, fp
		if curErr == nil && cur > pub.lastVersion {
			pub.lastVersion = cur
			return nil, errStalePublish
		}
		return nil, err
	}
	pub.lastVersion = v
	set.Version = v
	pub.lastFingerprint = fp
	pub.pending, pub.pendingFP = nil, ""
	s.deliveredLocked(name, set)
	return set, nil
}

// deliveredLocked counts one successful publish and runs the observer
// hooks. A tenant set that published empty (its signatures all retired)
// drops its delivery state: the server re-seeds the version sequence if
// the tenant ever returns, so the learner's books stay bounded by live
// tenants rather than tenants ever seen. Callers hold s.mu.
func (s *Service) deliveredLocked(name string, set *signature.Set) {
	if name == "" {
		s.publishes.Add(1)
		if s.cfg.OnPublish != nil {
			s.cfg.OnPublish(set)
		}
	} else {
		s.namedPublishes.Add(1)
		if set.Len() == 0 {
			delete(s.pubs, name)
		}
	}
	if s.cfg.OnPublishNamed != nil {
		s.cfg.OnPublishNamed(name, set)
	}
}

// Stats is a point-in-time view of the learner.
type Stats struct {
	Observed        uint64 `json:"observed"`         // misses admitted past the filter into the intake queue
	SinkDropped     uint64 `json:"sink_dropped"`     // misses dropped at the sink (queue full)
	Admitted        uint64 `json:"admitted"`         // intake samples routed to a reservoir so far
	Sampled         uint64 `json:"sampled"`          // packets stored by a reservoir
	OverflowTenants uint64 `json:"overflow_tenants"` // admissions routed to the shared overflow reservoir
	PendingSamples  int    `json:"pending_samples"`  // packets currently held in reservoirs
	Tenants         int    `json:"tenants"`          // tenants with a private reservoir this epoch

	Clusters        int     `json:"clusters"`
	ClusterMembers  int     `json:"cluster_members"`
	ClusterRejected uint64  `json:"cluster_rejected"` // arrivals dropped: table full, nothing close
	Silhouette      float64 `json:"silhouette"`       // last compaction's medoid silhouette

	Epochs        uint64 `json:"epochs"`
	Candidates    int    `json:"candidates"`     // last distillation
	RejectedBayes int    `json:"rejected_bayes"` // last distillation
	RejectedFP    int    `json:"rejected_fp"`    // last distillation
	Accepted      int    `json:"accepted"`       // last distillation

	Catalog    int    `json:"catalog"`            // signatures currently published (or publishable)
	RetiredSig uint64 `json:"retired_signatures"` // signatures retired because every source cluster went stale

	Publishes      uint64 `json:"publishes"`       // global-set publishes
	NamedPublishes uint64 `json:"named_publishes"` // per-tenant set publishes
	PublishErrors  uint64 `json:"publish_errors"`
	LastVersion    int64  `json:"last_version"` // global set

	CheckpointSaves    uint64 `json:"checkpoint_saves,omitempty"`
	CheckpointErrors   uint64 `json:"checkpoint_errors,omitempty"`
	CheckpointRestored bool   `json:"checkpoint_restored,omitempty"` // this process booted from a checkpoint

	// NamedVersions is the last published version per tenant set.
	NamedVersions map[string]int64 `json:"named_versions,omitempty"`
}

// Stats assembles a snapshot. Safe to call while streaming.
func (s *Service) Stats() Stats {
	st := Stats{
		Observed:        s.observed.Load(),
		SinkDropped:     s.sinkDropped.Load(),
		Admitted:        s.admitted.Load(),
		Sampled:         s.sampled.Load(),
		OverflowTenants: s.overflowTenants.Load(),
		Epochs:          s.epochs.Load(),
		Publishes:       s.publishes.Load(),
		NamedPublishes:  s.namedPublishes.Load(),
		PublishErrors:   s.publishErrors.Load(),
		RetiredSig:      s.retiredSigs.Load(),

		CheckpointSaves:    s.ckptSaves.Load(),
		CheckpointErrors:   s.ckptErrors.Load(),
		CheckpointRestored: s.ckptRestored.Load(),
	}
	s.mu.Lock()
	st.Tenants = len(s.reservoirs)
	for _, r := range s.reservoirs {
		st.PendingSamples += r.size()
	}
	st.PendingSamples += s.overflow.size()
	st.Clusters = s.clusterer.Len()
	st.ClusterMembers = s.clusterer.Members()
	st.ClusterRejected = s.clusterer.Rejected()
	st.Silhouette = s.lastCompact.Silhouette
	st.Candidates = s.lastDistill.Candidates
	st.RejectedBayes = s.lastDistill.RejectedBayes
	st.RejectedFP = s.lastDistill.RejectedFP
	st.Accepted = s.lastDistill.Accepted
	st.Catalog = len(s.catalog)
	for name, pub := range s.pubs {
		if name == "" {
			st.LastVersion = pub.lastVersion
			continue
		}
		if st.NamedVersions == nil {
			st.NamedVersions = make(map[string]int64, len(s.pubs))
		}
		st.NamedVersions[name] = pub.lastVersion
	}
	s.mu.Unlock()
	return st
}

// Close stops the intake and epoch loops and, with CheckpointPath set,
// writes a final checkpoint (capturing samples that arrived after the
// last epoch). It does not run a final epoch; callers that want one
// (pipe-mode daemons) call RunEpoch first. Close is idempotent.
func (s *Service) Close() {
	if s.closed.CompareAndSwap(false, true) {
		close(s.stop)
		<-s.loopDone
		if s.cfg.CheckpointPath != "" {
			s.mu.Lock()
			s.drainLocked()
			s.saveCheckpointLocked(s.cfg.CheckpointPath)
			s.mu.Unlock()
		}
	}
}
