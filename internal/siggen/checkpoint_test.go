package siggen

import (
	"context"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// feedAndEpoch pushes n packets from gen into svc under tenant and runs
// one epoch.
func feedAndEpoch(t *testing.T, svc *Service, tenant string, n int, gen func(string, int) *httpmodel.Packet) {
	t.Helper()
	for i := 0; i < n; i++ {
		if !svc.Observe(tenant, gen(tenant, i)) {
			t.Fatalf("observe %d rejected", i)
		}
	}
	if _, err := svc.RunEpoch(context.Background()); err != nil {
		t.Fatalf("RunEpoch: %v", err)
	}
}

// beaconPacket is a second leak population with token material disjoint
// from leakPacket, so feeding it genuinely changes the catalog.
func beaconPacket(app string, i int) *httpmodel.Packet {
	return httpmodel.Get("metrics.collector.example", "/v2/beacon").
		App(app).
		ID(int64(2000+i)).
		Dest(ipaddr.FromOctets(10, 9, 8, 7), 80).
		Query("s", fmt.Sprintf("%d", i%5)).
		Query("android_id", "a1b2c3d4e5f60718").
		Query("serial", "SN-998877665544").
		UserAgent("Dalvik/2.1.0").
		Build()
}

func TestCheckpointRestoresCatalogAndVersions(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "learner.ckpt")

	srv := sigserver.New()
	svc := NewService(Config{
		TenantSets:     true,
		CheckpointPath: ckpt,
		Publisher:      ServerPublisher{Server: srv},
	})
	feedAndEpoch(t, svc, "com.app.alpha", 40, leakPacket)
	stBefore := svc.Stats()
	if stBefore.Catalog == 0 {
		t.Fatal("learner published nothing; test premise broken")
	}
	if stBefore.CheckpointSaves == 0 {
		t.Fatalf("epoch did not checkpoint: %+v", stBefore)
	}
	svc.Close()

	if _, err := os.Stat(ckpt); err != nil {
		t.Fatalf("checkpoint file: %v", err)
	}

	// "Restart": a fresh service against the same (still-live) server
	// restores the catalog and continues each name's version sequence
	// instead of restarting at 1 (which the server would reject).
	svc2 := NewService(Config{
		TenantSets:     true,
		CheckpointPath: ckpt,
		Publisher:      ServerPublisher{Server: srv},
	})
	defer svc2.Close()
	st := svc2.Stats()
	if !st.CheckpointRestored {
		t.Fatal("restart did not restore the checkpoint")
	}
	if st.Catalog != stBefore.Catalog {
		t.Fatalf("catalog = %d after restore, want %d", st.Catalog, stBefore.Catalog)
	}
	if st.LastVersion != stBefore.LastVersion {
		t.Fatalf("global version = %d after restore, want %d", st.LastVersion, stBefore.LastVersion)
	}
	for name, v := range stBefore.NamedVersions {
		if st.NamedVersions[name] != v {
			t.Fatalf("named version %q = %d, want %d", name, st.NamedVersions[name], v)
		}
	}

	// An unchanged catalog publishes nothing new (fingerprint carried
	// over), so versions hold; new content advances them past the
	// restored point without a stale-version rejection.
	feedAndEpoch(t, svc2, "com.app.beta", 40, beaconPacket)
	st2 := svc2.Stats()
	if st2.LastVersion <= stBefore.LastVersion {
		t.Fatalf("version after new content = %d, want > %d", st2.LastVersion, stBefore.LastVersion)
	}
	if st2.PublishErrors != 0 {
		t.Fatalf("publish errors after restore: %+v", st2)
	}
}

func TestCheckpointRestoresPendingRetry(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "learner.ckpt")

	// A publisher that always fails: the epoch parks its sets as
	// pending, and the checkpoint must carry them.
	svc := NewService(Config{
		CheckpointPath: ckpt,
		Publisher:      failingPublisher{},
	})
	for i := 0; i < 40; i++ {
		svc.Observe("com.app.alpha", leakPacket("com.app.alpha", i))
	}
	if _, err := svc.RunEpoch(context.Background()); err == nil {
		t.Fatal("publish against failing publisher succeeded")
	}
	svc.Close()

	// Restart against a working server: the restored pending set must
	// deliver on the next epoch without new traffic.
	srv := sigserver.New()
	svc2 := NewService(Config{
		CheckpointPath: ckpt,
		Publisher:      ServerPublisher{Server: srv},
	})
	defer svc2.Close()
	if _, err := svc2.RunEpoch(context.Background()); err != nil {
		t.Fatalf("retry epoch: %v", err)
	}
	if _, v := srv.Current(); v == 0 {
		t.Fatal("restored pending set never delivered")
	}
}

func TestCheckpointCorruptStartsFresh(t *testing.T) {
	dir := t.TempDir()
	ckpt := filepath.Join(dir, "learner.ckpt")
	if err := os.WriteFile(ckpt, []byte("not a checkpoint"), 0o644); err != nil {
		t.Fatal(err)
	}
	svc := NewService(Config{CheckpointPath: ckpt})
	defer svc.Close()
	if st := svc.Stats(); st.CheckpointRestored {
		t.Fatal("corrupt checkpoint claimed restored")
	}
	// The service is fully functional and overwrites the corrupt file
	// on its next epoch.
	for i := 0; i < 10; i++ {
		svc.Observe("t", leakPacket("t", i))
	}
	if _, err := svc.RunEpoch(context.Background()); err != nil {
		t.Fatalf("epoch over corrupt checkpoint: %v", err)
	}
	if st := svc.Stats(); st.CheckpointSaves == 0 {
		t.Fatalf("checkpoint not rewritten: %+v", st)
	}
}

// failingPublisher rejects every publish, simulating a dead sigserver.
type failingPublisher struct{}

func (failingPublisher) Publish(context.Context, *signature.Set) (int64, error) {
	return 0, fmt.Errorf("injected: server down")
}
func (failingPublisher) CurrentVersion(context.Context) (int64, error) {
	return 0, fmt.Errorf("injected: server down")
}
