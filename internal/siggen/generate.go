package siggen

import (
	"sort"
	"strings"

	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// DistillStats reports what one generation pass kept and why it dropped
// the rest.
type DistillStats struct {
	Groups        int // clusters large enough to generate from
	Candidates    int // signatures emitted by the conjunction generator
	RejectedBayes int // dropped by the Bayes log-likelihood gate
	RejectedFP    int // dropped by the held-out false-positive gate
	Accepted      int // signatures in the returned set
}

// distill turns cluster groups into a publishable conjunction set. Three
// filters run in sequence, mirroring the paper's §VI concerns about
// careless signatures:
//
//  1. signature.Generate's own stoplist + benign-frequency token filters
//     (benignTrain feeds the frequency filter);
//  2. a Bayes gate: a model trained on the groups versus benignTrain
//     scores each candidate's token set, and candidates whose summed
//     log-likelihood ratio does not clear the calibrated threshold —
//     token material as common in benign traffic as in suspect traffic —
//     are dropped;
//  3. a held-out false-positive gate: candidates matching more than
//     maxHoldFP of benignHold (packets never seen during training) are
//     dropped.
//
// Gates 2 and 3 need benign corpora to calibrate against and pass
// everything when theirs is empty.
func distill(groups [][]*httpmodel.Packet, benignTrain, benignHold []*httpmodel.Packet,
	opts signature.Options, bayesOpts signature.BayesOptions, maxHoldFP float64) (*signature.Set, DistillStats) {

	st := DistillStats{Groups: len(groups)}
	opts.BenignSample = benignTrain
	set := signature.Generate(groups, opts)
	st.Candidates = set.Len()
	if set.Len() == 0 {
		return set, st
	}

	if len(benignTrain) > 0 {
		bayes := signature.GenerateBayes(groups, benignTrain, bayesOpts)
		kept := set.Signatures[:0]
		for _, sig := range set.Signatures {
			// A packet matching the conjunction contains every token, so
			// the score of the joined tokens lower-bounds any matching
			// packet's Bayes score; below threshold means the signature
			// can only fire on Bayes-benign content.
			content := []byte(strings.Join(sig.Tokens, "\n"))
			if bayes.ScoreContent(content) <= bayes.Threshold {
				st.RejectedBayes++
				continue
			}
			kept = append(kept, sig)
		}
		set.Signatures = kept
	}

	if len(benignHold) > 0 && len(set.Signatures) > 0 {
		eng := detect.NewEngine(set)
		hits := make(map[int]int, set.Len())
		for _, p := range benignHold {
			for _, id := range eng.MatchPacket(p) {
				hits[id]++
			}
		}
		limit := maxHoldFP * float64(len(benignHold))
		kept := set.Signatures[:0]
		for _, sig := range set.Signatures {
			if float64(hits[sig.ID]) > limit {
				st.RejectedFP++
				continue
			}
			kept = append(kept, sig)
		}
		set.Signatures = kept
	}

	for i, sig := range set.Signatures {
		sig.ID = i
	}
	st.Accepted = set.Len()
	return set, st
}

// setFingerprint canonically identifies a signature set's content (not
// its version): the sorted signature keys joined. The service publishes
// only when the fingerprint changes, so a stable traffic mix does not
// spam watchers with identical rollovers.
func setFingerprint(set *signature.Set) string {
	keys := make([]string, set.Len())
	for i, sig := range set.Signatures {
		keys[i] = sig.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

// splitBenign deals the benign corpus into training (even indices — the
// token-frequency filter and Bayes model) and held-out (odd indices —
// the false-positive gate) halves, so the FP gate always scores against
// packets generation never saw.
func splitBenign(benign []*httpmodel.Packet) (train, hold []*httpmodel.Packet) {
	for i, p := range benign {
		if i%2 == 0 {
			train = append(train, p)
		} else {
			hold = append(hold, p)
		}
	}
	return train, hold
}
