package siggen

import (
	"sort"
	"strings"

	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// DistillStats reports what one generation pass kept and why it dropped
// the rest.
type DistillStats struct {
	Groups        int // clusters large enough to generate from
	Candidates    int // signatures emitted by the conjunction generator
	RejectedBayes int // dropped by the Bayes log-likelihood gate (both kinds)
	RejectedFP    int // dropped by a held-out false-positive gate (both kinds)
	Accepted      int // candidates surviving every gate (both kinds)

	// Subsequence fallback: groups whose conjunction candidates all
	// failed the gates (or yielded none) retry as ordered-token
	// signatures, which are strictly harder to fire by accident.
	SubseqCandidates int // fallback signatures generated and gated
	SubseqAccepted   int // fallback signatures surviving every gate
}

// candidate is one gate-surviving signature with its provenance: the
// clusters it was distilled from (ID → member count at distillation)
// and the tenant mix of their members. Provenance is what the Service's
// published catalog keys retirement, per-tenant set assembly, and the
// training-size stat off.
type candidate struct {
	sig     *signature.Signature
	sources map[uint64]int // source cluster ID → member count
	tenants map[string]int // member count per tenant across those clusters
	traces  []string       // sampled trace IDs of contributing packets (bounded)
}

// maxProvenanceTraces bounds how many sampled trace IDs ride along as
// provenance per candidate and per published set — enough to find the
// originating misses, small enough to never bloat a publish body.
const maxProvenanceTraces = 8

// mergeTraces appends the new IDs up to the provenance cap, skipping
// duplicates.
func mergeTraces(dst, add []string) []string {
	for _, id := range add {
		if len(dst) >= maxProvenanceTraces {
			break
		}
		dup := false
		for _, have := range dst {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, id)
		}
	}
	return dst
}

// groupTraces harvests the sampled members' trace IDs of one group —
// provenance tying a published signature back to the misses that taught
// it.
func groupTraces(g *Group) []string {
	var gtraces []string
	for _, p := range g.Packets {
		if p.Trace != "" {
			gtraces = mergeTraces(gtraces, []string{p.Trace})
			if len(gtraces) >= maxProvenanceTraces {
				break
			}
		}
	}
	return gtraces
}

// foldCandidate merges one freshly generated signature into cands,
// deduplicating on the kind-aware key: two clusters distilling identical
// signatures collapse into one candidate whose provenance names both.
func foldCandidate(cands []candidate, byKey map[string]int, sig *signature.Signature,
	g *Group, gtraces []string) []candidate {

	key := sig.Key()
	if i, ok := byKey[key]; ok {
		c := &cands[i]
		c.sources[g.ID] = len(g.Packets)
		for tenant, n := range g.Tenants {
			c.tenants[tenant] += n
		}
		c.traces = mergeTraces(c.traces, gtraces)
		if sig.ClusterSize > c.sig.ClusterSize {
			c.sig.ClusterSize = sig.ClusterSize
		}
		return cands
	}
	byKey[key] = len(cands)
	tenants := make(map[string]int, len(g.Tenants))
	for tenant, n := range g.Tenants {
		tenants[tenant] = n
	}
	return append(cands, candidate{
		sig:     sig,
		sources: map[uint64]int{g.ID: len(g.Packets)},
		tenants: tenants,
		traces:  mergeTraces(nil, gtraces),
	})
}

// applyGates runs the Bayes and held-out false-positive gates over the
// candidates, any kind. The FP gate compiles the candidates into a probe
// engine — the same kinded compiler production matching uses — and
// scores the shared held-out corpus plus, for each candidate, every
// contributing tenant's private corpus (tenants without one are covered
// by the shared gate alone). An empty corpus passes everything.
func applyGates(cands []candidate, bayes *signature.BayesSignature,
	benignHold []*httpmodel.Packet, tenantHold map[string][]*httpmodel.Packet,
	maxHoldFP float64, st *DistillStats) []candidate {

	if len(cands) == 0 {
		return cands
	}
	if bayes != nil {
		kept := cands[:0]
		for _, c := range cands {
			// A packet matching the signature contains every token, so
			// the score of the joined tokens lower-bounds any matching
			// packet's Bayes score; below threshold means the signature
			// can only fire on Bayes-benign content.
			content := []byte(strings.Join(c.sig.Tokens, "\n"))
			if bayes.ScoreContent(content) <= bayes.Threshold {
				st.RejectedBayes++
				continue
			}
			kept = append(kept, c)
		}
		cands = kept
	}

	if len(cands) == 0 {
		return cands
	}
	corpora := 0
	if len(benignHold) > 0 {
		corpora++
	}
	corpora += len(tenantHold)
	if corpora == 0 {
		return cands
	}
	probe := &signature.Set{Signatures: make([]*signature.Signature, len(cands))}
	for i, c := range cands {
		cp := *c.sig
		cp.ID = i
		probe.Signatures[i] = &cp
	}
	eng := detect.NewEngine(probe)
	countHits := func(corpus []*httpmodel.Packet) map[int]int {
		hits := make(map[int]int, len(cands))
		for _, p := range corpus {
			for _, id := range eng.MatchPacket(p) {
				hits[id]++
			}
		}
		return hits
	}
	sharedHits := countHits(benignHold)
	tenantHits := make(map[string]map[int]int, len(tenantHold))
	for tenant, corpus := range tenantHold {
		if len(corpus) > 0 {
			tenantHits[tenant] = countHits(corpus)
		}
	}
	limit := maxHoldFP * float64(len(benignHold))
	kept := cands[:0]
	for i, c := range cands {
		if len(benignHold) > 0 && float64(sharedHits[i]) > limit {
			st.RejectedFP++
			continue
		}
		rejected := false
		for tenant := range c.tenants {
			hits, ok := tenantHits[tenant]
			if !ok {
				continue
			}
			if float64(hits[i]) > maxHoldFP*float64(len(tenantHold[tenant])) {
				st.RejectedFP++
				rejected = true
				break
			}
		}
		if !rejected {
			kept = append(kept, c)
		}
	}
	return kept
}

// distill turns tagged cluster groups into publishable candidates.
// Conjunction signatures distill first, through three filters mirroring
// the paper's §VI concerns about careless signatures:
//
//  1. signature.Generate's own stoplist + benign-frequency token filters
//     (benignTrain feeds the frequency filter);
//  2. a Bayes gate: a model trained on the groups versus benignTrain
//     scores each candidate's token set, and candidates whose summed
//     log-likelihood ratio does not clear the calibrated threshold —
//     token material as common in benign traffic as in suspect traffic —
//     are dropped;
//  3. held-out false-positive gates: candidates matching more than
//     maxHoldFP of benignHold (packets never seen during training) — or
//     of any contributing tenant's private corpus in tenantHold — are
//     dropped.
//
// Groups whose conjunction candidates all fail the gates (or never
// produce one — every token benign-frequent, say) fall back to
// subsequence candidates: the same extracted tokens, but matched in
// order. Order is strictly harder to satisfy by accident, so an ordered
// signature can clear the very FP gate its unordered form failed; the
// fallback runs through the same Bayes/FP gates and publishes with the
// same provenance machinery, just with Kind set on the wire.
//
// Gates 2 and 3 need benign corpora to calibrate against and pass
// everything when theirs is empty.
func distill(groups []Group, benignTrain, benignHold []*httpmodel.Packet,
	tenantHold map[string][]*httpmodel.Packet,
	opts signature.Options, bayesOpts signature.BayesOptions, maxHoldFP float64) ([]candidate, DistillStats) {

	st := DistillStats{Groups: len(groups)}
	var cands []candidate
	byKey := make(map[string]int) // signature key → index in cands
	for gi := range groups {
		g := &groups[gi]
		gopts := opts
		gopts.BenignSample = benignTrain
		set := signature.Generate([][]*httpmodel.Packet{g.Packets}, gopts)
		gtraces := groupTraces(g)
		for _, sig := range set.Signatures {
			cands = foldCandidate(cands, byKey, sig, g, gtraces)
		}
	}
	st.Candidates = len(cands)

	var bayes *signature.BayesSignature
	if len(benignTrain) > 0 && len(groups) > 0 {
		packetGroups := make([][]*httpmodel.Packet, len(groups))
		for i, g := range groups {
			packetGroups[i] = g.Packets
		}
		bayes = signature.GenerateBayes(packetGroups, benignTrain, bayesOpts)
	}
	cands = applyGates(cands, bayes, benignHold, tenantHold, maxHoldFP, &st)

	// Subsequence fallback for the groups no surviving candidate covers.
	surviving := make(map[uint64]bool)
	for i := range cands {
		for src := range cands[i].sources {
			surviving[src] = true
		}
	}
	var fallback []candidate
	fbKey := make(map[string]int)
	for gi := range groups {
		g := &groups[gi]
		if surviving[g.ID] {
			continue
		}
		sset := signature.GenerateSubsequence([][]*httpmodel.Packet{g.Packets}, opts)
		gtraces := groupTraces(g)
		for _, ssig := range sset.Signatures {
			fallback = foldCandidate(fallback, fbKey, ssig.AsKinded(), g, gtraces)
		}
	}
	st.SubseqCandidates = len(fallback)
	fallback = applyGates(fallback, bayes, benignHold, tenantHold, maxHoldFP, &st)
	st.SubseqAccepted = len(fallback)
	cands = append(cands, fallback...)

	st.Accepted = len(cands)
	return cands, st
}

// assemble builds a publishable set from signatures, in canonical
// (sorted key) order with fresh IDs. trainingSize is the packet count
// across the UNIQUE source clusters behind the signatures — callers
// compute it from provenance, because summing per-signature ClusterSize
// would double-count clusters that distilled several signatures. The
// signatures are copied, never shared: the same catalog entry may
// appear in the global set and several tenant sets, each with its own
// ID.
func assemble(sigs []*signature.Signature, trainingSize int) *signature.Set {
	sorted := make([]*signature.Signature, len(sigs))
	copy(sorted, sigs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key() < sorted[j].Key() })
	set := &signature.Set{Signatures: make([]*signature.Signature, len(sorted)), TrainingSize: trainingSize}
	for i, sig := range sorted {
		cp := *sig
		cp.ID = i
		set.Signatures[i] = &cp
	}
	return set
}

// setFingerprint canonically identifies a signature set's content (not
// its version): the sorted signature keys joined. The service publishes
// only when the fingerprint changes, so a stable traffic mix does not
// spam watchers with identical rollovers.
func setFingerprint(set *signature.Set) string {
	keys := make([]string, set.Len())
	for i, sig := range set.Signatures {
		keys[i] = sig.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

// splitBenign deals the benign corpus into training (even indices — the
// token-frequency filter and Bayes model) and held-out (odd indices —
// the false-positive gate) halves, so the FP gate always scores against
// packets generation never saw.
func splitBenign(benign []*httpmodel.Packet) (train, hold []*httpmodel.Packet) {
	for i, p := range benign {
		if i%2 == 0 {
			train = append(train, p)
		} else {
			hold = append(hold, p)
		}
	}
	return train, hold
}
