package siggen

import (
	"sort"
	"strings"

	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// DistillStats reports what one generation pass kept and why it dropped
// the rest.
type DistillStats struct {
	Groups        int // clusters large enough to generate from
	Candidates    int // signatures emitted by the conjunction generator
	RejectedBayes int // dropped by the Bayes log-likelihood gate
	RejectedFP    int // dropped by the held-out false-positive gate
	Accepted      int // candidates surviving every gate
}

// candidate is one gate-surviving signature with its provenance: the
// clusters it was distilled from (ID → member count at distillation)
// and the tenant mix of their members. Provenance is what the Service's
// published catalog keys retirement, per-tenant set assembly, and the
// training-size stat off.
type candidate struct {
	sig     *signature.Signature
	sources map[uint64]int // source cluster ID → member count
	tenants map[string]int // member count per tenant across those clusters
	traces  []string       // sampled trace IDs of contributing packets (bounded)
}

// maxProvenanceTraces bounds how many sampled trace IDs ride along as
// provenance per candidate and per published set — enough to find the
// originating misses, small enough to never bloat a publish body.
const maxProvenanceTraces = 8

// mergeTraces appends the new IDs up to the provenance cap, skipping
// duplicates.
func mergeTraces(dst, add []string) []string {
	for _, id := range add {
		if len(dst) >= maxProvenanceTraces {
			break
		}
		dup := false
		for _, have := range dst {
			if have == id {
				dup = true
				break
			}
		}
		if !dup {
			dst = append(dst, id)
		}
	}
	return dst
}

// distill turns tagged cluster groups into publishable conjunction
// candidates. Three filters run in sequence, mirroring the paper's §VI
// concerns about careless signatures:
//
//  1. signature.Generate's own stoplist + benign-frequency token filters
//     (benignTrain feeds the frequency filter);
//  2. a Bayes gate: a model trained on the groups versus benignTrain
//     scores each candidate's token set, and candidates whose summed
//     log-likelihood ratio does not clear the calibrated threshold —
//     token material as common in benign traffic as in suspect traffic —
//     are dropped;
//  3. a held-out false-positive gate: candidates matching more than
//     maxHoldFP of benignHold (packets never seen during training) are
//     dropped.
//
// Gates 2 and 3 need benign corpora to calibrate against and pass
// everything when theirs is empty.
//
// Generation runs one group at a time so each candidate knows exactly
// which cluster produced it; two clusters distilling identical signatures
// collapse into one candidate whose provenance names both.
func distill(groups []Group, benignTrain, benignHold []*httpmodel.Packet,
	opts signature.Options, bayesOpts signature.BayesOptions, maxHoldFP float64) ([]candidate, DistillStats) {

	st := DistillStats{Groups: len(groups)}
	var cands []candidate
	byKey := make(map[string]int) // signature key → index in cands
	for _, g := range groups {
		gopts := opts
		gopts.BenignSample = benignTrain
		set := signature.Generate([][]*httpmodel.Packet{g.Packets}, gopts)
		// Trace provenance: the sampled members' trace IDs, harvested once
		// per group, tie the published signature back to the misses that
		// taught it.
		var gtraces []string
		for _, p := range g.Packets {
			if p.Trace != "" {
				gtraces = mergeTraces(gtraces, []string{p.Trace})
				if len(gtraces) >= maxProvenanceTraces {
					break
				}
			}
		}
		for _, sig := range set.Signatures {
			key := sig.Key()
			if i, ok := byKey[key]; ok {
				// Another cluster distilled the same signature: merge
				// provenance, largest cluster wins the size tag.
				c := &cands[i]
				c.sources[g.ID] = len(g.Packets)
				for tenant, n := range g.Tenants {
					c.tenants[tenant] += n
				}
				c.traces = mergeTraces(c.traces, gtraces)
				if sig.ClusterSize > c.sig.ClusterSize {
					c.sig.ClusterSize = sig.ClusterSize
				}
				continue
			}
			byKey[key] = len(cands)
			tenants := make(map[string]int, len(g.Tenants))
			for tenant, n := range g.Tenants {
				tenants[tenant] = n
			}
			cands = append(cands, candidate{
				sig:     sig,
				sources: map[uint64]int{g.ID: len(g.Packets)},
				tenants: tenants,
				traces:  mergeTraces(nil, gtraces),
			})
		}
	}
	st.Candidates = len(cands)
	if len(cands) == 0 {
		return nil, st
	}

	if len(benignTrain) > 0 {
		packetGroups := make([][]*httpmodel.Packet, len(groups))
		for i, g := range groups {
			packetGroups[i] = g.Packets
		}
		bayes := signature.GenerateBayes(packetGroups, benignTrain, bayesOpts)
		kept := cands[:0]
		for _, c := range cands {
			// A packet matching the conjunction contains every token, so
			// the score of the joined tokens lower-bounds any matching
			// packet's Bayes score; below threshold means the signature
			// can only fire on Bayes-benign content.
			content := []byte(strings.Join(c.sig.Tokens, "\n"))
			if bayes.ScoreContent(content) <= bayes.Threshold {
				st.RejectedBayes++
				continue
			}
			kept = append(kept, c)
		}
		cands = kept
	}

	if len(benignHold) > 0 && len(cands) > 0 {
		probe := &signature.Set{Signatures: make([]*signature.Signature, len(cands))}
		for i, c := range cands {
			cp := *c.sig
			cp.ID = i
			probe.Signatures[i] = &cp
		}
		eng := detect.NewEngine(probe)
		hits := make(map[int]int, len(cands))
		for _, p := range benignHold {
			for _, id := range eng.MatchPacket(p) {
				hits[id]++
			}
		}
		limit := maxHoldFP * float64(len(benignHold))
		kept := cands[:0]
		for i, c := range cands {
			if float64(hits[i]) > limit {
				st.RejectedFP++
				continue
			}
			kept = append(kept, c)
		}
		cands = kept
	}

	st.Accepted = len(cands)
	return cands, st
}

// assemble builds a publishable set from signatures, in canonical
// (sorted key) order with fresh IDs. trainingSize is the packet count
// across the UNIQUE source clusters behind the signatures — callers
// compute it from provenance, because summing per-signature ClusterSize
// would double-count clusters that distilled several signatures. The
// signatures are copied, never shared: the same catalog entry may
// appear in the global set and several tenant sets, each with its own
// ID.
func assemble(sigs []*signature.Signature, trainingSize int) *signature.Set {
	sorted := make([]*signature.Signature, len(sigs))
	copy(sorted, sigs)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Key() < sorted[j].Key() })
	set := &signature.Set{Signatures: make([]*signature.Signature, len(sorted)), TrainingSize: trainingSize}
	for i, sig := range sorted {
		cp := *sig
		cp.ID = i
		set.Signatures[i] = &cp
	}
	return set
}

// setFingerprint canonically identifies a signature set's content (not
// its version): the sorted signature keys joined. The service publishes
// only when the fingerprint changes, so a stable traffic mix does not
// spam watchers with identical rollovers.
func setFingerprint(set *signature.Set) string {
	keys := make([]string, set.Len())
	for i, sig := range set.Signatures {
		keys[i] = sig.Key()
	}
	sort.Strings(keys)
	return strings.Join(keys, "\x01")
}

// splitBenign deals the benign corpus into training (even indices — the
// token-frequency filter and Bayes model) and held-out (odd indices —
// the false-positive gate) halves, so the FP gate always scores against
// packets generation never saw.
func splitBenign(benign []*httpmodel.Packet) (train, hold []*httpmodel.Packet) {
	for i, p := range benign {
		if i%2 == 0 {
			train = append(train, p)
		} else {
			hold = append(hold, p)
		}
	}
	return train, hold
}
