package siggen

import (
	"errors"
	"os"

	"leaksig/internal/durable"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// ckptFormat versions the learner checkpoint; a mismatch is treated as
// "no checkpoint" (the learner re-learns), never a boot failure.
const ckptFormat = 1

// ckptSample is one reservoir sample at rest. Packets serialize through
// their wire JSON; trace spans (runtime-only) are dropped, so restored
// packets re-enter the pipeline traceless — nil-span-safe everywhere.
type ckptSample struct {
	Tenant string            `json:"tenant"`
	Packet *httpmodel.Packet `json:"packet"`
}

// ckptCluster is one rolling cluster at rest. The medoid is serialized
// as its own packet: the live medoid pointer may reference a member the
// ring has since evicted, so an index into Members cannot represent it.
type ckptCluster struct {
	ID        uint64            `json:"id"`
	Members   []ckptSample      `json:"members"`
	Next      int               `json:"next"`
	Medoid    *httpmodel.Packet `json:"medoid"`
	LastEpoch int               `json:"last_epoch"`
}

// ckptCatalogEntry is one published-catalog entry at rest.
type ckptCatalogEntry struct {
	Sig     *signature.Signature `json:"sig"`
	Sources map[uint64]int       `json:"sources"`
	Tenants map[string]int       `json:"tenants"`
	Traces  []string             `json:"traces,omitempty"`
}

// ckptPub is one name's delivery state at rest.
type ckptPub struct {
	LastVersion     int64          `json:"last_version"`
	LastFingerprint string         `json:"last_fingerprint"`
	Pending         *signature.Set `json:"pending,omitempty"`
	PendingFP       string         `json:"pending_fp,omitempty"`
}

// ckptState is the learner's full durable state: everything retirement
// bookkeeping and version continuity need to survive a restart. RNG
// state is deliberately absent — math/rand streams are not serializable,
// so a restored service reseeds from Config.Seed; sampling remains
// deterministic per process, just not across the restart boundary.
type ckptState struct {
	Format int `json:"format"`

	Reservoirs map[string][]ckptSample `json:"reservoirs,omitempty"`
	Overflow   []ckptSample            `json:"overflow,omitempty"`

	ClusterEpoch  int           `json:"cluster_epoch"`
	ClusterNextID uint64        `json:"cluster_next_id"`
	Clusters      []ckptCluster `json:"clusters,omitempty"`

	Catalog map[string]ckptCatalogEntry `json:"catalog,omitempty"`
	Pubs    map[string]ckptPub          `json:"pubs,omitempty"`
}

// SaveCheckpoint atomically writes the learner's state to path. Safe to
// call concurrently with streaming; it holds the service lock for the
// snapshot and the (synced) file write, so it belongs on epoch cadence,
// not per packet.
func (s *Service) SaveCheckpoint(path string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.saveCheckpointLocked(path)
}

// saveCheckpointLocked snapshots and writes. Callers hold s.mu.
func (s *Service) saveCheckpointLocked(path string) error {
	state := ckptState{
		Format:        ckptFormat,
		ClusterEpoch:  s.clusterer.epoch,
		ClusterNextID: s.clusterer.nextID,
	}
	if len(s.reservoirs) > 0 {
		state.Reservoirs = make(map[string][]ckptSample, len(s.reservoirs))
		for tenant, r := range s.reservoirs {
			state.Reservoirs[tenant] = samplesOut(r.buf)
		}
	}
	state.Overflow = samplesOut(s.overflow.buf)
	for _, cl := range s.clusterer.clusters {
		members := make([]ckptSample, len(cl.members))
		for i, m := range cl.members {
			members[i] = ckptSample{Tenant: m.tenant, Packet: m.p}
		}
		state.Clusters = append(state.Clusters, ckptCluster{
			ID: cl.id, Members: members, Next: cl.next,
			Medoid: cl.medoid, LastEpoch: cl.lastEpoch,
		})
	}
	if len(s.catalog) > 0 {
		state.Catalog = make(map[string]ckptCatalogEntry, len(s.catalog))
		for key, ps := range s.catalog {
			state.Catalog[key] = ckptCatalogEntry{
				Sig: ps.sig, Sources: ps.sources, Tenants: ps.tenants, Traces: ps.traces,
			}
		}
	}
	if len(s.pubs) > 0 {
		state.Pubs = make(map[string]ckptPub, len(s.pubs))
		for name, pub := range s.pubs {
			state.Pubs[name] = ckptPub{
				LastVersion:     pub.lastVersion,
				LastFingerprint: pub.lastFingerprint,
				Pending:         pub.pending,
				PendingFP:       pub.pendingFP,
			}
		}
	}
	if err := durable.SaveJSON(path, state); err != nil {
		s.ckptErrors.Add(1)
		return err
	}
	s.ckptSaves.Add(1)
	return nil
}

func samplesOut(buf []sample) []ckptSample {
	if len(buf) == 0 {
		return nil
	}
	out := make([]ckptSample, len(buf))
	for i, smp := range buf {
		out[i] = ckptSample{Tenant: smp.tenant, Packet: smp.p}
	}
	return out
}

// RestoreCheckpoint loads learner state from path, replacing the
// service's (presumed empty) state. It reports whether a checkpoint was
// actually restored: a missing, corrupt, or format-skewed file restores
// nothing and returns (false, nil) — re-learning beats refusing to
// boot. Call it right after NewService, before traffic flows.
func (s *Service) RestoreCheckpoint(path string) (bool, error) {
	var state ckptState
	err := durable.LoadJSON(path, &state)
	switch {
	case errors.Is(err, os.ErrNotExist), errors.Is(err, durable.ErrCorrupt):
		return false, nil
	case err != nil:
		return false, err
	}
	if state.Format != ckptFormat {
		return false, nil
	}

	s.mu.Lock()
	defer s.mu.Unlock()

	restored := 0
	for tenant, samples := range state.Reservoirs {
		if len(s.reservoirs) >= s.cfg.MaxTenantReservoirs {
			break
		}
		r := newReservoir(s.cfg.ReservoirSize)
		r.buf = samplesIn(samples, s.cfg.ReservoirSize)
		r.seen = uint64(len(r.buf))
		s.reservoirs[tenant] = r
		restored += len(r.buf)
	}
	s.overflow.buf = samplesIn(state.Overflow, s.cfg.ReservoirSize)
	s.overflow.seen = uint64(len(s.overflow.buf))
	restored += len(s.overflow.buf)
	// Restored samples count as new: the next timed epoch clusters them
	// instead of waiting for fresh traffic to clear MinNewSamples.
	s.newSamples += restored

	c := s.clusterer
	c.epoch = state.ClusterEpoch
	c.nextID = state.ClusterNextID
	c.clusters = c.clusters[:0]
	for _, ck := range state.Clusters {
		if len(ck.Members) == 0 || ck.Medoid == nil {
			continue
		}
		members := make([]member, len(ck.Members))
		for i, m := range ck.Members {
			if m.Packet == nil {
				m.Packet = &httpmodel.Packet{}
			}
			members[i] = member{p: m.Packet, tenant: m.Tenant}
		}
		next := ck.Next
		if next < 0 || next >= len(members) {
			next = 0
		}
		if ck.ID > c.nextID {
			c.nextID = ck.ID
		}
		c.clusters = append(c.clusters, &rolling{
			id: ck.ID, members: members, next: next,
			medoid: ck.Medoid, lastEpoch: ck.LastEpoch,
		})
	}

	for key, e := range state.Catalog {
		if e.Sig == nil {
			continue
		}
		s.catalog[key] = &publishedSig{
			sig: e.Sig, sources: e.Sources, tenants: e.Tenants, traces: e.Traces,
		}
	}
	for name, p := range state.Pubs {
		s.pubs[name] = &pubState{
			lastVersion:     p.LastVersion,
			lastFingerprint: p.LastFingerprint,
			pending:         p.Pending,
			pendingFP:       p.PendingFP,
		}
	}
	s.ckptRestored.Store(true)
	return true, nil
}

func samplesIn(in []ckptSample, capacity int) []sample {
	if len(in) > capacity {
		in = in[:capacity]
	}
	out := make([]sample, 0, capacity)
	for _, smp := range in {
		if smp.Packet == nil {
			continue
		}
		out = append(out, sample{tenant: smp.Tenant, p: smp.Packet})
	}
	return out
}
