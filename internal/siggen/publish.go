package siggen

import (
	"context"

	"leaksig/internal/engine"
	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// Publisher is where accepted signature sets go. The service stamps each
// set with a version strictly greater than the last one it saw, so a
// conforming publisher (sigserver's versioned publish path) rejects
// stale or looping writers instead of ping-ponging the fleet between
// generations.
type Publisher interface {
	// CurrentVersion returns the live published version, used to seed
	// and re-sync the service's version counter.
	CurrentVersion(ctx context.Context) (int64, error)
	// Publish submits the set (Version pre-stamped by the service) and
	// returns the version the server accepted it as.
	Publish(ctx context.Context, set *signature.Set) (int64, error)
}

// NamedPublisher is the per-tenant extension of Publisher: a publisher
// that can route sets by name (sigserver's /sets/{name} endpoints).
// When Config.TenantSets is on and the configured Publisher implements
// NamedPublisher, each tenant's distilled set publishes under the tenant
// key with its own version sequence; a plain Publisher receives only the
// global set, and tenant sets reach OnPublishNamed alone.
type NamedPublisher interface {
	Publisher
	// CurrentNamedVersion returns the named set's live version.
	CurrentNamedVersion(ctx context.Context, name string) (int64, error)
	// PublishNamed submits the set under name and returns the accepted
	// version.
	PublishNamed(ctx context.Context, name string, set *signature.Set) (int64, error)
}

// ServerPublisher publishes into an in-process sigserver.Server — the
// embedded deployment (leakstream -learn against its own server, tests).
// It implements NamedPublisher, so per-tenant sets land as named sets.
type ServerPublisher struct{ Server *sigserver.Server }

// CurrentVersion implements Publisher.
func (p ServerPublisher) CurrentVersion(context.Context) (int64, error) {
	_, v := p.Server.Current()
	return v, nil
}

// Publish implements Publisher.
func (p ServerPublisher) Publish(_ context.Context, set *signature.Set) (int64, error) {
	return p.Server.PublishVersioned(set)
}

// CurrentNamedVersion implements NamedPublisher.
func (p ServerPublisher) CurrentNamedVersion(_ context.Context, name string) (int64, error) {
	_, v, _ := p.Server.CurrentNamed(name)
	return v, nil
}

// PublishNamed implements NamedPublisher.
func (p ServerPublisher) PublishNamed(_ context.Context, name string, set *signature.Set) (int64, error) {
	return p.Server.PublishNamedVersioned(name, set)
}

// httpPublisher publishes over sigserver's HTTP API — the cmd/siggend
// deployment against a remote distribution server.
type httpPublisher struct{ client *sigserver.Client }

// NewHTTPPublisher returns a publisher POSTing to the sigserver at base
// (e.g. "http://127.0.0.1:8700"); token, when non-empty, is sent as the
// publish bearer token. The returned publisher implements NamedPublisher:
// per-tenant sets POST to /sets/{tenant}/publish.
func NewHTTPPublisher(base, token string) Publisher {
	c := sigserver.NewClient(base, nil)
	c.SetToken(token)
	return httpPublisher{client: c}
}

// NewHTTPPublisherFrom wraps a caller-built sigserver.Client — the hook
// daemons use to publish through a client that already carries a fault
// injector, circuit breaker, or custom transport.
func NewHTTPPublisherFrom(c *sigserver.Client) Publisher {
	return httpPublisher{client: c}
}

// CurrentVersion implements Publisher.
func (p httpPublisher) CurrentVersion(ctx context.Context) (int64, error) {
	return p.client.Version(ctx)
}

// Publish implements Publisher.
func (p httpPublisher) Publish(ctx context.Context, set *signature.Set) (int64, error) {
	return p.client.Publish(ctx, set)
}

// CurrentNamedVersion implements NamedPublisher.
func (p httpPublisher) CurrentNamedVersion(ctx context.Context, name string) (int64, error) {
	return p.client.VersionNamed(ctx, name)
}

// PublishNamed implements NamedPublisher.
func (p httpPublisher) PublishNamed(ctx context.Context, name string, set *signature.Set) (int64, error) {
	return p.client.PublishNamed(ctx, name, set)
}

// PoolReloader returns a Config.OnPublishNamed hook that lands published
// per-tenant sets in an engine.Pool without a server round trip — the
// in-process closed loop. Each tenant set pins its tenant via
// Pool.ReloadTenant, so tenant A's learned signatures fire only on
// tenant A's traffic. The global set ("") is deliberately NOT installed
// as the pool default: it is the union across tenants, and making it the
// default would let one tenant's learned signatures fire on every
// unpinned tenant — the exact cross-tenant leakage per-tenant sets
// exist to prevent. Wire Config.OnPublish to Pool.Reload yourself if
// unpinned tenants should follow the union.
func PoolReloader(p *engine.Pool) func(name string, set *signature.Set) {
	return func(name string, set *signature.Set) {
		if name == "" {
			return
		}
		p.ReloadTenant(name, set)
	}
}
