package siggen

import (
	"context"

	"leaksig/internal/signature"
	"leaksig/internal/sigserver"
)

// Publisher is where accepted signature sets go. The service stamps each
// set with a version strictly greater than the last one it saw, so a
// conforming publisher (sigserver's versioned publish path) rejects
// stale or looping writers instead of ping-ponging the fleet between
// generations.
type Publisher interface {
	// CurrentVersion returns the live published version, used to seed
	// and re-sync the service's version counter.
	CurrentVersion(ctx context.Context) (int64, error)
	// Publish submits the set (Version pre-stamped by the service) and
	// returns the version the server accepted it as.
	Publish(ctx context.Context, set *signature.Set) (int64, error)
}

// ServerPublisher publishes into an in-process sigserver.Server — the
// embedded deployment (leakstream -learn against its own server, tests).
type ServerPublisher struct{ Server *sigserver.Server }

// CurrentVersion implements Publisher.
func (p ServerPublisher) CurrentVersion(context.Context) (int64, error) {
	_, v := p.Server.Current()
	return v, nil
}

// Publish implements Publisher.
func (p ServerPublisher) Publish(_ context.Context, set *signature.Set) (int64, error) {
	return p.Server.PublishVersioned(set)
}

// httpPublisher publishes over sigserver's HTTP API — the cmd/siggend
// deployment against a remote distribution server.
type httpPublisher struct{ client *sigserver.Client }

// NewHTTPPublisher returns a publisher POSTing to the sigserver at base
// (e.g. "http://127.0.0.1:8700"); token, when non-empty, is sent as the
// publish bearer token.
func NewHTTPPublisher(base, token string) Publisher {
	c := sigserver.NewClient(base, nil)
	c.SetToken(token)
	return httpPublisher{client: c}
}

// CurrentVersion implements Publisher.
func (p httpPublisher) CurrentVersion(ctx context.Context) (int64, error) {
	return p.client.Version(ctx)
}

// Publish implements Publisher.
func (p httpPublisher) Publish(ctx context.Context, set *signature.Set) (int64, error) {
	return p.client.Publish(ctx, set)
}
