package siggen

import (
	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	"leaksig/internal/obs/trace"
)

// sample is one suspect flow in flight from an engine shard to the
// intake goroutine.
type sample struct {
	tenant string
	p      *httpmodel.Packet
}

// missSink adapts the Service's intake to the engine's Sink interface:
// every verdict that matched nothing (a miss — exactly the traffic the
// live signature set cannot explain) is offered to the learner. The
// offer is a single non-blocking channel send, so a saturated learner
// costs the matching hot path nothing beyond a dropped-sample counter —
// detection latency is never held hostage to generation.
type missSink struct {
	svc    *Service
	tenant string
	keyFn  func(*httpmodel.Packet) string // overrides tenant when set
}

// MissSink returns an engine Sink that feeds the service's intake with
// unmatched flows, labeled with the tenant key ("" for a single-engine
// deployment). Pass it as engine Config.Sink — alone, or combined with
// other consumers via engine.TeeSink. One service may back any number of
// engines and tenants.
func (s *Service) MissSink() engine.Sink { return missSink{svc: s} }

// MissSinkFor is MissSink with a tenant label — the pool form, installed
// per tenant from PoolConfig.ConfigureTenant.
func (s *Service) MissSinkFor(tenant string) engine.Sink {
	return missSink{svc: s, tenant: tenant}
}

// MissSinkBy is MissSink with a per-packet tenant key function — the
// single-engine form of per-tenant learning (one engine serving mixed
// traffic, tenancy riding on packet fields like App or Host). keyFn runs
// on engine shard goroutines and must be cheap and concurrency-safe.
func (s *Service) MissSinkBy(keyFn func(*httpmodel.Packet) string) engine.Sink {
	return missSink{svc: s, keyFn: keyFn}
}

func (m missSink) Bind(shard, shards int) engine.ShardSink { return m }
func (m missSink) CountOnly() bool                         { return false }
func (m missSink) Count(bool)                              {}

func (m missSink) Verdict(v engine.Verdict) {
	if v.Leak() {
		return // already explained by a signature; nothing to learn
	}
	tenant := m.tenant
	if m.keyFn != nil {
		tenant = m.keyFn(v.Packet)
	}
	m.svc.Observe(tenant, v.Packet)
}

// Observe offers one unmatched/suspect flow to the learner directly —
// the hook for consumers outside the engine sink path (the flowcontrol
// proxy's miss forwarding, cmd/siggend's HTTP intake). It applies the
// suspect filter, then hands the packet to the intake goroutine without
// blocking; it reports false when the packet was filtered out or the
// intake queue was full.
func (s *Service) Observe(tenant string, p *httpmodel.Packet) bool {
	if s.cfg.SuspectFilter != nil && !s.cfg.SuspectFilter(p) {
		return false
	}
	// Hold the packet's span before handing it off: Observe runs on the
	// producer's goroutine (often an engine shard, which finishes its own
	// reference right after sink delivery), and the hold keeps the span
	// alive until the learner's side of the trace ends.
	p.Span.Hold()
	select {
	case s.intake <- sample{tenant: tenant, p: p}:
		s.observed.Add(1)
		return true
	default:
		p.Span.Finish() // release the hold; the sample never entered
		s.sinkDropped.Add(1)
		return false
	}
}

// admit routes one intake sample into its tenant's reservoir. Tenants
// past the reservoir-table cap share one overflow reservoir, so tenant
// cardinality (attacker-influenced in an exposed deployment) can never
// grow memory without bound. Callers hold s.mu.
func (s *Service) admit(smp sample) {
	r := s.reservoirs[smp.tenant]
	if r == nil {
		if len(s.reservoirs) >= s.cfg.MaxTenantReservoirs {
			s.overflowTenants.Add(1)
			r = s.overflow
		} else {
			r = newReservoir(s.cfg.ReservoirSize)
			s.reservoirs[smp.tenant] = r
		}
	}
	smp.p.Span.Stamp(trace.StageReservoir)
	if r.offer(smp, s.rng) {
		s.sampled.Add(1)
	}
	s.admitted.Add(1)
	s.newSamples++
}
