package siggen

import (
	"math/rand"

	"leaksig/internal/cluster"
	"leaksig/internal/distance"
	"leaksig/internal/httpmodel"
)

// ClusterConfig tunes the incremental clusterer. The zero value selects
// the defaults noted on each field.
type ClusterConfig struct {
	// Distance configures the packet metric (§IV-B/C) used for both the
	// arrival assignment and the epoch compaction.
	Distance distance.Config

	// JoinFraction positions the assignment threshold as a fraction of
	// the metric's maximum value, mirroring core.Config.CutFraction so an
	// online cluster corresponds to a flat cut of the offline dendrogram
	// at the same height. Default 0.22.
	JoinFraction float64

	// MaxClusters bounds the live cluster count; an arrival farther than
	// the join threshold from every medoid when the table is full is
	// dropped (and counted). Default 64.
	MaxClusters int

	// MaxMembers bounds each cluster's member list; past it, new arrivals
	// overwrite the oldest member ring-buffer style, so a long-lived
	// cluster tracks its population's recent shape. Default 64.
	MaxMembers int

	// ElectSample caps both the candidate and reference sets of the
	// medoid election (the member minimizing summed distance to a sample
	// of its peers), keeping elections O(ElectSample²) instead of
	// O(members²). Default 16.
	ElectSample int

	// StaleEpochs drops clusters that saw no arrival for this many
	// compaction epochs — the forgetting half of "rolling". Default 8.
	StaleEpochs int
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.JoinFraction == 0 {
		c.JoinFraction = 0.22
	}
	if c.MaxClusters <= 0 {
		c.MaxClusters = 64
	}
	if c.MaxMembers <= 0 {
		c.MaxMembers = 64
	}
	if c.ElectSample <= 0 {
		c.ElectSample = 16
	}
	if c.StaleEpochs <= 0 {
		c.StaleEpochs = 8
	}
	return c
}

// rolling is one live cluster: a bounded member window around an elected
// medoid.
type rolling struct {
	members   []*httpmodel.Packet
	next      int // ring cursor once members is full
	medoid    *httpmodel.Packet
	lastEpoch int // compaction epoch of the most recent arrival
}

// add appends the packet, overwriting the oldest member once the window
// is full.
func (r *rolling) add(p *httpmodel.Packet, maxMembers int) {
	if len(r.members) < maxMembers {
		r.members = append(r.members, p)
		return
	}
	r.members[r.next] = p
	r.next = (r.next + 1) % len(r.members)
}

// Clusterer maintains rolling clusters over an unbounded packet stream —
// the online counterpart of cluster.Agglomerate. Arrivals are assigned to
// the nearest medoid when it lies within the join threshold (updating
// that cluster in place) and seed a new cluster otherwise; Compact runs
// periodically, re-electing medoids, merging clusters whose medoids
// agglomerate below the threshold (reusing the offline nearest-neighbor
// chain over the medoid matrix), and pruning clusters gone stale. Not
// safe for concurrent use; the siggen Service serializes access.
type Clusterer struct {
	cfg    ClusterConfig
	metric *distance.Metric
	joinAt float64
	rng    *rand.Rand

	clusters []*rolling
	epoch    int

	observed uint64
	rejected uint64 // arrivals dropped: table full and nothing close enough
}

// NewClusterer builds an empty clusterer. seed fixes the medoid-election
// sampling so runs are reproducible.
func NewClusterer(cfg ClusterConfig, seed int64) *Clusterer {
	cfg = cfg.withDefaults()
	m := distance.New(cfg.Distance)
	return &Clusterer{
		cfg:    cfg,
		metric: m,
		joinAt: cfg.JoinFraction * m.MaxValue(),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Metric exposes the configured packet metric.
func (c *Clusterer) Metric() *distance.Metric { return c.metric }

// Observe assigns one packet: join the nearest cluster within the
// threshold, else seed a new cluster, else (table full) drop. It reports
// whether the packet was retained.
func (c *Clusterer) Observe(p *httpmodel.Packet) bool {
	c.observed++
	best, bestD := -1, 0.0
	for i, cl := range c.clusters {
		d := c.metric.Packet(p, cl.medoid)
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	if best >= 0 && bestD <= c.joinAt {
		cl := c.clusters[best]
		cl.add(p, c.cfg.MaxMembers)
		cl.lastEpoch = c.epoch
		return true
	}
	if len(c.clusters) < c.cfg.MaxClusters {
		c.clusters = append(c.clusters, &rolling{
			members:   []*httpmodel.Packet{p},
			medoid:    p,
			lastEpoch: c.epoch,
		})
		return true
	}
	c.rejected++
	return false
}

// electMedoid picks the member minimizing summed distance to a sampled
// reference set, over a sampled candidate set.
func (c *Clusterer) electMedoid(r *rolling) {
	n := len(r.members)
	if n <= 2 {
		r.medoid = r.members[0]
		return
	}
	candidates := c.sampleMembers(r, c.cfg.ElectSample)
	refs := c.sampleMembers(r, c.cfg.ElectSample)
	best, bestSum := r.medoid, -1.0
	for _, cand := range candidates {
		sum := 0.0
		for _, ref := range refs {
			if ref != cand {
				sum += c.metric.Packet(cand, ref)
			}
		}
		if bestSum < 0 || sum < bestSum {
			best, bestSum = cand, sum
		}
	}
	r.medoid = best
}

// sampleMembers returns up to k distinct members, all of them when the
// cluster is small.
func (c *Clusterer) sampleMembers(r *rolling, k int) []*httpmodel.Packet {
	n := len(r.members)
	if n <= k {
		return r.members
	}
	idx := c.rng.Perm(n)[:k]
	out := make([]*httpmodel.Packet, k)
	for i, j := range idx {
		out[i] = r.members[j]
	}
	return out
}

// CompactStats reports what one compaction epoch did.
type CompactStats struct {
	Epoch      int     // epoch number just completed
	Clusters   int     // live clusters after compaction
	Members    int     // total members after compaction
	Merged     int     // clusters folded into a neighbor
	Pruned     int     // stale clusters dropped
	Silhouette float64 // silhouette of the medoid clustering (0 when degenerate)
}

// Compact advances the epoch: prune stale clusters, re-elect every
// medoid, then agglomerate the medoids (group-average, the paper's
// criterion) and merge clusters whose medoids sit below the join
// threshold. The returned silhouette scores the post-merge medoid
// partition and feeds the Service's publish quality gate.
func (c *Clusterer) Compact() CompactStats {
	c.epoch++
	st := CompactStats{Epoch: c.epoch}

	// Prune clusters that saw nothing for StaleEpochs epochs.
	kept := c.clusters[:0]
	for _, cl := range c.clusters {
		if c.epoch-cl.lastEpoch > c.cfg.StaleEpochs {
			st.Pruned++
			continue
		}
		kept = append(kept, cl)
	}
	c.clusters = kept

	for _, cl := range c.clusters {
		c.electMedoid(cl)
	}

	// Merge: offline agglomeration over the medoids, cut at the same
	// threshold arrivals join under, so two clusters the online
	// assignment split (arrival order artifacts) re-fuse here.
	if len(c.clusters) >= 2 {
		medoids := make([]*httpmodel.Packet, len(c.clusters))
		for i, cl := range c.clusters {
			medoids[i] = cl.medoid
		}
		mx := distance.NewMatrix(c.metric, medoids)
		dend := cluster.Agglomerate(mx, cluster.GroupAverage)
		groups := dend.CutDistance(c.joinAt)
		merged := make([]*rolling, 0, len(groups))
		for _, g := range groups {
			dst := c.clusters[g[0]]
			for _, idx := range g[1:] {
				src := c.clusters[idx]
				for _, p := range src.members {
					dst.add(p, c.cfg.MaxMembers)
				}
				if src.lastEpoch > dst.lastEpoch {
					dst.lastEpoch = src.lastEpoch
				}
				st.Merged++
			}
			if len(g) > 1 {
				c.electMedoid(dst)
			}
			merged = append(merged, dst)
		}
		c.clusters = merged
		st.Silhouette = cluster.Silhouette(mx, groups)
	}

	st.Clusters = len(c.clusters)
	for _, cl := range c.clusters {
		st.Members += len(cl.members)
	}
	return st
}

// Groups returns the member lists of every cluster holding at least
// minSize packets — the input shape signature.Generate consumes. The
// returned slices alias internal state; callers must not mutate them.
func (c *Clusterer) Groups(minSize int) [][]*httpmodel.Packet {
	if minSize < 1 {
		minSize = 1
	}
	var out [][]*httpmodel.Packet
	for _, cl := range c.clusters {
		if len(cl.members) >= minSize {
			out = append(out, cl.members)
		}
	}
	return out
}

// Len returns the live cluster count.
func (c *Clusterer) Len() int { return len(c.clusters) }

// Members returns the total packets held across clusters.
func (c *Clusterer) Members() int {
	n := 0
	for _, cl := range c.clusters {
		n += len(cl.members)
	}
	return n
}

// Rejected returns how many arrivals were dropped because the cluster
// table was full and no medoid was within the join threshold.
func (c *Clusterer) Rejected() uint64 { return c.rejected }
