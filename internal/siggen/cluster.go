package siggen

import (
	"math/rand"

	"leaksig/internal/cluster"
	"leaksig/internal/distance"
	"leaksig/internal/httpmodel"
)

// ClusterConfig tunes the incremental clusterer. The zero value selects
// the defaults noted on each field.
type ClusterConfig struct {
	// Distance configures the packet metric (§IV-B/C) used for both the
	// arrival assignment and the epoch compaction.
	Distance distance.Config

	// JoinFraction positions the assignment threshold as a fraction of
	// the metric's maximum value, mirroring core.Config.CutFraction so an
	// online cluster corresponds to a flat cut of the offline dendrogram
	// at the same height. Default 0.22.
	JoinFraction float64

	// MaxClusters bounds the live cluster count; an arrival farther than
	// the join threshold from every medoid when the table is full is
	// dropped (and counted). Default 64.
	MaxClusters int

	// MaxMembers bounds each cluster's member list; past it, new arrivals
	// overwrite the oldest member ring-buffer style, so a long-lived
	// cluster tracks its population's recent shape. Default 64.
	MaxMembers int

	// ElectSample caps both the candidate and reference sets of the
	// medoid election (the member minimizing summed distance to a sample
	// of its peers), keeping elections O(ElectSample²) instead of
	// O(members²). Default 16.
	ElectSample int

	// StaleEpochs drops clusters that saw no arrival for this many
	// compaction epochs — the forgetting half of "rolling". Default 8.
	StaleEpochs int
}

func (c ClusterConfig) withDefaults() ClusterConfig {
	if c.JoinFraction == 0 {
		c.JoinFraction = 0.22
	}
	if c.MaxClusters <= 0 {
		c.MaxClusters = 64
	}
	if c.MaxMembers <= 0 {
		c.MaxMembers = 64
	}
	if c.ElectSample <= 0 {
		c.ElectSample = 16
	}
	if c.StaleEpochs <= 0 {
		c.StaleEpochs = 8
	}
	return c
}

// member is one clustered packet with the tenant it was sampled from, so
// a cluster's tenant mix is always derivable from its current window —
// a population that drifts from tenant A to tenant B sheds A's tag as
// A's packets age out of the ring.
type member struct {
	p      *httpmodel.Packet
	tenant string
}

// rolling is one live cluster: a bounded member window around an elected
// medoid, with a stable identity that signature provenance hangs off.
type rolling struct {
	id        uint64 // stable identity; survives compaction, retired on prune
	members   []member
	next      int // ring cursor once members is full
	medoid    *httpmodel.Packet
	lastEpoch int // compaction epoch of the most recent arrival
}

// add appends the member, overwriting the oldest once the window is full.
func (r *rolling) add(m member, maxMembers int) {
	if len(r.members) < maxMembers {
		r.members = append(r.members, m)
		return
	}
	r.members[r.next] = m
	r.next = (r.next + 1) % len(r.members)
}

// tenants counts the current window's members per tenant label.
func (r *rolling) tenants() map[string]int {
	out := make(map[string]int, 4)
	for _, m := range r.members {
		out[m.tenant]++
	}
	return out
}

// Clusterer maintains rolling clusters over an unbounded packet stream —
// the online counterpart of cluster.Agglomerate. Arrivals are assigned to
// the nearest medoid when it lies within the join threshold (updating
// that cluster in place) and seed a new cluster otherwise; Compact runs
// periodically, re-electing medoids, merging clusters whose medoids
// agglomerate below the threshold (reusing the offline nearest-neighbor
// chain over the medoid matrix), and pruning clusters gone stale. Not
// safe for concurrent use; the siggen Service serializes access.
type Clusterer struct {
	cfg    ClusterConfig
	metric *distance.Metric
	joinAt float64
	rng    *rand.Rand

	clusters []*rolling
	epoch    int
	nextID   uint64

	observed uint64
	rejected uint64 // arrivals dropped: table full and nothing close enough
}

// NewClusterer builds an empty clusterer. seed fixes the medoid-election
// sampling so runs are reproducible.
func NewClusterer(cfg ClusterConfig, seed int64) *Clusterer {
	cfg = cfg.withDefaults()
	m := distance.New(cfg.Distance)
	return &Clusterer{
		cfg:    cfg,
		metric: m,
		joinAt: cfg.JoinFraction * m.MaxValue(),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// Metric exposes the configured packet metric.
func (c *Clusterer) Metric() *distance.Metric { return c.metric }

// Observe assigns one unattributed packet — ObserveTenant with the empty
// tenant label.
func (c *Clusterer) Observe(p *httpmodel.Packet) bool {
	return c.ObserveTenant(p, "")
}

// ObserveTenant assigns one packet sampled from tenant: join the nearest
// cluster within the threshold, else seed a new cluster, else (table
// full) drop. It reports whether the packet was retained. The tenant
// label rides on the member so every cluster knows the tenant mix of its
// current window — the provenance per-tenant signature sets distill from.
func (c *Clusterer) ObserveTenant(p *httpmodel.Packet, tenant string) bool {
	c.observed++
	best, bestD := -1, 0.0
	for i, cl := range c.clusters {
		d := c.metric.Packet(p, cl.medoid)
		if best == -1 || d < bestD {
			best, bestD = i, d
		}
	}
	if best >= 0 && bestD <= c.joinAt {
		cl := c.clusters[best]
		cl.add(member{p: p, tenant: tenant}, c.cfg.MaxMembers)
		cl.lastEpoch = c.epoch
		return true
	}
	if len(c.clusters) < c.cfg.MaxClusters {
		c.nextID++
		c.clusters = append(c.clusters, &rolling{
			id:        c.nextID,
			members:   []member{{p: p, tenant: tenant}},
			medoid:    p,
			lastEpoch: c.epoch,
		})
		return true
	}
	c.rejected++
	return false
}

// electMedoid picks the member minimizing summed distance to a sampled
// reference set, over a sampled candidate set.
func (c *Clusterer) electMedoid(r *rolling) {
	n := len(r.members)
	if n <= 2 {
		r.medoid = r.members[0].p
		return
	}
	candidates := c.sampleMembers(r, c.cfg.ElectSample)
	refs := c.sampleMembers(r, c.cfg.ElectSample)
	best, bestSum := r.medoid, -1.0
	for _, cand := range candidates {
		sum := 0.0
		for _, ref := range refs {
			if ref != cand {
				sum += c.metric.Packet(cand, ref)
			}
		}
		if bestSum < 0 || sum < bestSum {
			best, bestSum = cand, sum
		}
	}
	r.medoid = best
}

// sampleMembers returns up to k distinct member packets, all of them when
// the cluster is small.
func (c *Clusterer) sampleMembers(r *rolling, k int) []*httpmodel.Packet {
	n := len(r.members)
	if n <= k {
		out := make([]*httpmodel.Packet, n)
		for i, m := range r.members {
			out[i] = m.p
		}
		return out
	}
	idx := c.rng.Perm(n)[:k]
	out := make([]*httpmodel.Packet, k)
	for i, j := range idx {
		out[i] = r.members[j].p
	}
	return out
}

// CompactStats reports what one compaction epoch did. Retired and
// MergedInto carry the cluster-identity changes signature provenance
// needs: a published signature whose source clusters all appear in
// Retired (after following MergedInto renames) has lost its population
// and is due for drift retirement.
type CompactStats struct {
	Epoch      int     // epoch number just completed
	Clusters   int     // live clusters after compaction
	Members    int     // total members after compaction
	Merged     int     // clusters folded into a neighbor
	Pruned     int     // stale clusters dropped
	Silhouette float64 // silhouette of the medoid clustering (0 when degenerate)

	Retired    []uint64          // IDs of clusters pruned as stale this epoch
	MergedInto map[uint64]uint64 // folded cluster ID → surviving cluster ID
}

// Compact advances the epoch: prune stale clusters, re-elect every
// medoid, then agglomerate the medoids (group-average, the paper's
// criterion) and merge clusters whose medoids sit below the join
// threshold. The returned silhouette scores the post-merge medoid
// partition and feeds the Service's publish quality gate.
func (c *Clusterer) Compact() CompactStats {
	c.epoch++
	st := CompactStats{Epoch: c.epoch}

	// Prune clusters that saw nothing for StaleEpochs epochs.
	kept := c.clusters[:0]
	for _, cl := range c.clusters {
		if c.epoch-cl.lastEpoch > c.cfg.StaleEpochs {
			st.Pruned++
			st.Retired = append(st.Retired, cl.id)
			continue
		}
		kept = append(kept, cl)
	}
	c.clusters = kept

	for _, cl := range c.clusters {
		c.electMedoid(cl)
	}

	// Merge: offline agglomeration over the medoids, cut at the same
	// threshold arrivals join under, so two clusters the online
	// assignment split (arrival order artifacts) re-fuse here.
	if len(c.clusters) >= 2 {
		medoids := make([]*httpmodel.Packet, len(c.clusters))
		for i, cl := range c.clusters {
			medoids[i] = cl.medoid
		}
		mx := distance.NewMatrix(c.metric, medoids)
		dend := cluster.Agglomerate(mx, cluster.GroupAverage)
		groups := dend.CutDistance(c.joinAt)
		merged := make([]*rolling, 0, len(groups))
		for _, g := range groups {
			dst := c.clusters[g[0]]
			for _, idx := range g[1:] {
				src := c.clusters[idx]
				for _, m := range src.members {
					dst.add(m, c.cfg.MaxMembers)
				}
				if src.lastEpoch > dst.lastEpoch {
					dst.lastEpoch = src.lastEpoch
				}
				if st.MergedInto == nil {
					st.MergedInto = make(map[uint64]uint64)
				}
				st.MergedInto[src.id] = dst.id
				st.Merged++
			}
			if len(g) > 1 {
				c.electMedoid(dst)
			}
			merged = append(merged, dst)
		}
		c.clusters = merged
		st.Silhouette = cluster.Silhouette(mx, groups)
	}

	st.Clusters = len(c.clusters)
	for _, cl := range c.clusters {
		st.Members += len(cl.members)
	}
	return st
}

// Group is one live cluster's distillable view: its stable identity, the
// member packets of its current window, and the tenant mix of those
// members — the unit per-tenant signature sets are built from.
type Group struct {
	ID      uint64
	Packets []*httpmodel.Packet
	Tenants map[string]int
}

// TaggedGroups returns every cluster holding at least minSize packets as
// a Group with provenance. The packet slices are fresh copies of the
// member windows; the clusterer keeps no alias into them.
func (c *Clusterer) TaggedGroups(minSize int) []Group {
	if minSize < 1 {
		minSize = 1
	}
	var out []Group
	for _, cl := range c.clusters {
		if len(cl.members) < minSize {
			continue
		}
		pkts := make([]*httpmodel.Packet, len(cl.members))
		for i, m := range cl.members {
			pkts[i] = m.p
		}
		out = append(out, Group{ID: cl.id, Packets: pkts, Tenants: cl.tenants()})
	}
	return out
}

// Groups returns the member packet lists of every cluster holding at
// least minSize packets — the provenance-free form kept for callers that
// only need the paper's cluster → signature input shape.
func (c *Clusterer) Groups(minSize int) [][]*httpmodel.Packet {
	tagged := c.TaggedGroups(minSize)
	out := make([][]*httpmodel.Packet, len(tagged))
	for i, g := range tagged {
		out[i] = g.Packets
	}
	return out
}

// Len returns the live cluster count.
func (c *Clusterer) Len() int { return len(c.clusters) }

// Members returns the total packets held across clusters.
func (c *Clusterer) Members() int {
	n := 0
	for _, cl := range c.clusters {
		n += len(cl.members)
	}
	return n
}

// Rejected returns how many arrivals were dropped because the cluster
// table was full and no medoid was within the join threshold.
func (c *Clusterer) Rejected() uint64 { return c.rejected }
