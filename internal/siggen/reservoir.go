package siggen

import (
	"math/rand"

	"leaksig/internal/httpmodel"
)

// reservoir is a bounded uniform sample of a packet stream (Vitter's
// algorithm R): the first capacity offers are stored outright, after which
// the i-th offer replaces a random stored packet with probability
// capacity/i. Storage is therefore hard-bounded at capacity packets no
// matter how fast a tenant bursts, while remaining a uniform sample of
// everything offered since the last take.
type reservoir struct {
	buf  []*httpmodel.Packet
	seen uint64 // offers since the last take
	cap  int
}

func newReservoir(capacity int) *reservoir {
	return &reservoir{buf: make([]*httpmodel.Packet, 0, capacity), cap: capacity}
}

// offer admits the packet into the sample with the reservoir probability
// and reports whether it was stored.
func (r *reservoir) offer(p *httpmodel.Packet, rng *rand.Rand) bool {
	r.seen++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, p)
		return true
	}
	if j := rng.Int63n(int64(r.seen)); j < int64(r.cap) {
		r.buf[j] = p
		return true
	}
	return false
}

// take returns the sampled packets and resets the reservoir for the next
// epoch, so each epoch clusters a fresh uniform sample of that epoch's
// stream.
func (r *reservoir) take() []*httpmodel.Packet {
	out := r.buf
	r.buf = make([]*httpmodel.Packet, 0, r.cap)
	r.seen = 0
	return out
}

// size returns how many packets are currently stored.
func (r *reservoir) size() int { return len(r.buf) }
