package siggen

import (
	"math/rand"
)

// reservoir is a bounded uniform sample of a packet stream (Vitter's
// algorithm R): the first capacity offers are stored outright, after which
// the i-th offer replaces a random stored packet with probability
// capacity/i. Storage is therefore hard-bounded at capacity packets no
// matter how fast a tenant bursts, while remaining a uniform sample of
// everything offered since the last take. Samples keep their tenant label
// so provenance survives the shared overflow reservoir, where flows from
// many tenants mix.
type reservoir struct {
	buf  []sample
	seen uint64 // offers since the last take
	cap  int
}

func newReservoir(capacity int) *reservoir {
	return &reservoir{buf: make([]sample, 0, capacity), cap: capacity}
}

// offer admits the sample with the reservoir probability and reports
// whether it was stored.
func (r *reservoir) offer(smp sample, rng *rand.Rand) bool {
	r.seen++
	if len(r.buf) < r.cap {
		r.buf = append(r.buf, smp)
		return true
	}
	if j := rng.Int63n(int64(r.seen)); j < int64(r.cap) {
		// The evicted sample leaves the pipeline here: release its span
		// hold before the slot is overwritten.
		r.buf[j].p.EndTrace()
		r.buf[j] = smp
		return true
	}
	// Not stored: the offered sample's journey ends at the reservoir door.
	smp.p.EndTrace()
	return false
}

// take returns the sampled packets and resets the reservoir for the next
// epoch, so each epoch clusters a fresh uniform sample of that epoch's
// stream.
func (r *reservoir) take() []sample {
	out := r.buf
	r.buf = make([]sample, 0, r.cap)
	r.seen = 0
	return out
}

// size returns how many packets are currently stored.
func (r *reservoir) size() int { return len(r.buf) }
