package siggen

import (
	"fmt"
	"testing"

	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
	"leaksig/internal/signature"
)

// orderedLeakPacket fabricates one leaking POST whose body carries two
// identifier fields in a fixed order with varying filler between them, so
// conjunction distillation extracts the identifier segments as separate
// tokens (the filler never repeats across members).
func orderedLeakPacket(i int) *httpmodel.Packet {
	body := fmt.Sprintf("s=%04d&device_id=IMEI-358240051111110&m=%04d&aid=9774d56d682e549c&e=%04d",
		i*1371%10000, i*2467%10000, i*3613%10000)
	return httpmodel.Post("collect.tracker-net.example", "/collect").
		App("com.app").
		ID(int64(i)).
		Dest(ipaddr.FromOctets(10, 1, 2, 3), 80).
		UserAgent("Dalvik/1.6.0").
		Body([]byte(body)).
		Build()
}

// reversedBenignPacket carries the SAME identifier segments but in the
// opposite order: an unordered conjunction of the leak tokens matches it,
// the ordered subsequence does not.
func reversedBenignPacket(i int) *httpmodel.Packet {
	body := fmt.Sprintf("s=%04d&aid=9774d56d682e549c&e=%04d&device_id=IMEI-358240051111110&m=%04d",
		i*1371%10000, i*2467%10000, i*3613%10000)
	return httpmodel.Post("collect.tracker-net.example", "/collect").
		ID(int64(500+i)).
		Dest(ipaddr.FromOctets(192, 0, 2, 9), 80).
		UserAgent("Dalvik/1.6.0").
		Body([]byte(body)).
		Build()
}

func orderedGroup() []Group {
	var members []*httpmodel.Packet
	for i := 0; i < 8; i++ {
		members = append(members, orderedLeakPacket(i))
	}
	return []Group{{ID: 1, Packets: members, Tenants: map[string]int{"com.app": len(members)}}}
}

// TestSubsequenceFallback drives the distiller into the fallback path: a
// held-out corpus where the leak's token material recurs in reversed
// order kills the unordered conjunction at the FP gate, and the group
// retries as an ordered subsequence signature — which the same corpus
// cannot fire — published with the same provenance.
func TestSubsequenceFallback(t *testing.T) {
	groups := orderedGroup()
	var hold []*httpmodel.Packet
	for i := 0; i < 80; i++ {
		hold = append(hold, benignPacket(i))
	}
	for i := 0; i < 20; i++ {
		hold = append(hold, reversedBenignPacket(i))
	}
	opts := signature.Options{MinClusterSize: 2}

	cands, st := distill(groups, nil, hold, nil, opts, signature.BayesOptions{}, 0.01)
	if st.Candidates != 1 || st.RejectedFP < 1 {
		t.Fatalf("conjunction candidate should exist and die at the FP gate: %+v", st)
	}
	if st.SubseqCandidates < 1 || st.SubseqAccepted < 1 {
		t.Fatalf("no subsequence fallback was generated/accepted: %+v", st)
	}
	if len(cands) != 1 {
		t.Fatalf("want exactly the fallback candidate, got %d: %+v", len(cands), st)
	}
	c := cands[0]
	if c.sig.Kind != signature.KindSubsequence {
		t.Fatalf("fallback candidate kind = %q", c.sig.Kind)
	}
	if _, ok := c.sources[1]; !ok || c.tenants["com.app"] != len(groups[0].Packets) {
		t.Fatalf("fallback lost provenance: sources=%v tenants=%v", c.sources, c.tenants)
	}

	set := assemble([]*signature.Signature{c.sig}, len(groups[0].Packets))
	if err := set.Validate(); err != nil {
		t.Fatalf("assembled fallback set invalid: %v", err)
	}
	eng := detect.NewEngine(set)
	for i, p := range groups[0].Packets {
		if !eng.Matches(p) {
			t.Fatalf("fallback signature misses leak member %d", i)
		}
	}
	for i, p := range hold {
		if eng.Matches(p) {
			t.Fatalf("fallback signature fires on held-out benign packet %d", i)
		}
	}
}

// TestPerTenantFPGate pins the tenant-corpus gate semantics: a candidate
// must clear the shared held-out gate AND every contributing tenant's
// private corpus; corpora of tenants that did not contribute to the
// candidate are ignored.
func TestPerTenantFPGate(t *testing.T) {
	groups := orderedGroup()
	var sharedHold []*httpmodel.Packet
	for i := 0; i < 50; i++ {
		sharedHold = append(sharedHold, benignPacket(i))
	}
	var reversed []*httpmodel.Packet
	for i := 0; i < 20; i++ {
		reversed = append(reversed, reversedBenignPacket(i))
	}
	opts := signature.Options{MinClusterSize: 2}

	// No tenant corpora: the conjunction clears the shared gate.
	cands, st := distill(groups, nil, sharedHold, nil, opts, signature.BayesOptions{}, 0.01)
	if len(cands) != 1 || cands[0].sig.Kind != "" {
		t.Fatalf("baseline conjunction should survive the shared gate: %+v", st)
	}

	// The contributing tenant's private corpus holds the reversed shape:
	// the conjunction dies there even though the shared gate passed, and
	// the ordered fallback — which that corpus cannot fire — replaces it.
	tenantHold := map[string][]*httpmodel.Packet{"com.app": reversed}
	cands, st = distill(groups, nil, sharedHold, tenantHold, opts, signature.BayesOptions{}, 0.01)
	if st.RejectedFP < 1 {
		t.Fatalf("tenant corpus did not reject the conjunction: %+v", st)
	}
	if len(cands) != 1 || cands[0].sig.Kind != signature.KindSubsequence {
		t.Fatalf("want the subsequence fallback after the tenant gate, got %+v (stats %+v)", cands, st)
	}

	// A NON-contributing tenant's corpus must not gate the candidate.
	tenantHold = map[string][]*httpmodel.Packet{"com.unrelated": reversed}
	cands, st = distill(groups, nil, sharedHold, tenantHold, opts, signature.BayesOptions{}, 0.01)
	if len(cands) != 1 || cands[0].sig.Kind != "" {
		t.Fatalf("non-contributing tenant corpus rejected the conjunction: %+v", st)
	}
}
