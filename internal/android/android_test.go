package android

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestLuhnKnownValues(t *testing.T) {
	// 49015420323751 -> check digit 8 (classic IMEI example).
	if got := LuhnCheckDigit("49015420323751"); got != '8' {
		t.Errorf("LuhnCheckDigit = %c, want 8", got)
	}
	if !LuhnValid("490154203237518") {
		t.Error("LuhnValid(known IMEI) = false")
	}
	if LuhnValid("490154203237519") {
		t.Error("LuhnValid(corrupted IMEI) = true")
	}
	if LuhnValid("") || LuhnValid("5") || LuhnValid("12a4") {
		t.Error("LuhnValid accepted malformed input")
	}
}

func TestLuhnAppendProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 500; i++ {
		body := randDigits(rng, 1+rng.Intn(20))
		full := body + string(LuhnCheckDigit(body))
		if !LuhnValid(full) {
			t.Fatalf("LuhnValid(%q) = false", full)
		}
		// Mutating any single digit must break the check.
		pos := rng.Intn(len(full))
		mut := []byte(full)
		mut[pos] = byte('0' + (int(mut[pos]-'0')+1+rng.Intn(8))%10)
		if string(mut) != full && LuhnValid(string(mut)) {
			t.Fatalf("LuhnValid accepted single-digit mutation %q of %q", mut, full)
		}
	}
}

func TestLuhnPanicsOnNonDigit(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	LuhnCheckDigit("12x4")
}

func TestGenerateIMEI(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	seen := make(map[string]bool)
	for i := 0; i < 200; i++ {
		imei := GenerateIMEI(rng)
		if len(imei) != 15 {
			t.Fatalf("IMEI length = %d", len(imei))
		}
		if !LuhnValid(imei) {
			t.Fatalf("IMEI %q fails Luhn", imei)
		}
		tacOK := false
		for _, tac := range tacCodes {
			if strings.HasPrefix(imei, tac) {
				tacOK = true
			}
		}
		if !tacOK {
			t.Fatalf("IMEI %q has unknown TAC", imei)
		}
		seen[imei] = true
	}
	if len(seen) < 190 {
		t.Errorf("IMEI collisions: only %d distinct of 200", len(seen))
	}
}

func TestGenerateIMSI(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	imsi := GenerateIMSI(rng, CarrierDocomo)
	if len(imsi) != 15 {
		t.Fatalf("IMSI length = %d", len(imsi))
	}
	if !strings.HasPrefix(imsi, "44010") {
		t.Errorf("IMSI %q missing docomo MCC+MNC", imsi)
	}
}

func TestGenerateICCID(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	for i := 0; i < 50; i++ {
		iccid := GenerateICCID(rng)
		if len(iccid) != 19 {
			t.Fatalf("ICCID length = %d", len(iccid))
		}
		if !strings.HasPrefix(iccid, "8981") {
			t.Errorf("ICCID %q missing 8981 prefix", iccid)
		}
		if !LuhnValid(iccid) {
			t.Errorf("ICCID %q fails Luhn", iccid)
		}
	}
}

func TestGenerateAndroidID(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	id := GenerateAndroidID(rng)
	if len(id) != 16 {
		t.Fatalf("AndroidID length = %d", len(id))
	}
	for _, c := range id {
		if !strings.ContainsRune(hexDigits, c) {
			t.Fatalf("AndroidID %q has non-hex char", id)
		}
	}
}

func TestNewDeviceDeterministic(t *testing.T) {
	a := NewDevice(rand.New(rand.NewSource(77)), CarrierDocomo)
	b := NewDevice(rand.New(rand.NewSource(77)), CarrierDocomo)
	if *a != *b {
		t.Error("same seed produced different devices")
	}
	c := NewDevice(rand.New(rand.NewSource(78)), CarrierDocomo)
	if a.IMEI == c.IMEI && a.AndroidID == c.AndroidID {
		t.Error("different seeds produced identical identifiers")
	}
	if !strings.Contains(a.UserAgent(), "Android 2.3.4") {
		t.Errorf("UserAgent = %q", a.UserAgent())
	}
}

func TestPermissionShort(t *testing.T) {
	if PermInternet.Short() != "INTERNET" {
		t.Errorf("Short = %q", PermInternet.Short())
	}
	if Permission("BARE").Short() != "BARE" {
		t.Error("Short on bare name failed")
	}
}

func TestSetOperations(t *testing.T) {
	s := NewSet(PermInternet, PermReadPhoneState)
	if !s.Has(PermInternet) || s.Has(PermReadContacts) {
		t.Error("Has failed")
	}
	if s.HasLocation() {
		t.Error("HasLocation false positive")
	}
	s.Add(PermAccessCoarseLocation)
	if !s.HasLocation() {
		t.Error("HasLocation missed coarse location")
	}
	sorted := s.Sorted()
	for i := 1; i < len(sorted); i++ {
		if sorted[i-1] >= sorted[i] {
			t.Error("Sorted not sorted")
		}
	}
}

func TestDangerousComboTableIRows(t *testing.T) {
	cases := []struct {
		perms []Permission
		want  Combo
	}{
		{[]Permission{PermInternet}, ComboInternetOnly},
		{[]Permission{PermInternet, PermVibrate}, ComboInternetOnly},
		{[]Permission{PermInternet, PermReadPhoneState}, ComboInternetPhone},
		{[]Permission{PermInternet, PermAccessFineLocation, PermReadPhoneState}, ComboInternetLocationPhone},
		{[]Permission{PermInternet, PermAccessCoarseLocation}, ComboInternetLocation},
		{[]Permission{PermInternet, PermAccessFineLocation, PermReadPhoneState, PermReadContacts}, ComboInternetLocationPhoneContacts},
		{[]Permission{PermReadPhoneState}, ComboOther},             // no INTERNET
		{[]Permission{PermInternet, PermReadContacts}, ComboOther}, // off-table combo
		{[]Permission{}, ComboOther},
	}
	for i, c := range cases {
		m := &Manifest{Package: "p", Permissions: NewSet(c.perms...)}
		if got := m.DangerousCombo(); got != c.want {
			t.Errorf("case %d: combo = %v, want %v", i, got, c.want)
		}
	}
}

func TestCanLeak(t *testing.T) {
	leaky := &Manifest{Permissions: NewSet(PermInternet, PermReadPhoneState)}
	if !leaky.CanLeak() {
		t.Error("INTERNET+PHONE should leak")
	}
	netOnly := &Manifest{Permissions: NewSet(PermInternet)}
	if netOnly.CanLeak() {
		t.Error("INTERNET only should not leak")
	}
	noNet := &Manifest{Permissions: NewSet(PermReadPhoneState, PermReadContacts)}
	if noNet.CanLeak() {
		t.Error("no INTERNET should not leak")
	}
}

func TestComboString(t *testing.T) {
	if ComboInternetOnly.String() != "INTERNET" {
		t.Errorf("String = %q", ComboInternetOnly.String())
	}
	if !strings.Contains(Combo(99).String(), "99") {
		t.Error("unknown combo String")
	}
}

func TestReferenceMonitor(t *testing.T) {
	rm := NewReferenceMonitor()
	m := &Manifest{Package: "com.example", Permissions: NewSet(PermInternet, PermAccessFineLocation)}
	if err := rm.Check(m, ResourceNetwork); err != nil {
		t.Errorf("network access denied: %v", err)
	}
	if err := rm.Check(m, ResourceLocation); err != nil {
		t.Errorf("location access denied: %v", err)
	}
	err := rm.Check(m, ResourcePhoneState)
	if err == nil {
		t.Fatal("phone state access granted without permission")
	}
	var denied *AccessDenied
	if !errors.As(err, &denied) {
		t.Fatalf("error type = %T", err)
	}
	if denied.Resource != ResourcePhoneState || denied.Package != "com.example" {
		t.Errorf("denial = %+v", denied)
	}
	if got := len(rm.Log()); got != 3 {
		t.Errorf("log entries = %d, want 3", got)
	}
	if got := len(rm.Denials()); got != 1 {
		t.Errorf("denials = %d, want 1", got)
	}
}

func TestReferenceMonitorUnknownResource(t *testing.T) {
	rm := NewReferenceMonitor()
	m := &Manifest{Package: "p", Permissions: NewSet(PermInternet)}
	if err := rm.Check(m, Resource("bogus")); err == nil {
		t.Error("unknown resource granted")
	}
}

func TestIMSIAllCarriers(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	for _, c := range Carriers() {
		imsi := GenerateIMSI(rng, c)
		if !strings.HasPrefix(imsi, c.MCC+c.MNC) {
			t.Errorf("IMSI %q missing %s%s for %s", imsi, c.MCC, c.MNC, c.Name)
		}
	}
}

func TestLuhnQuickCheckDigitIsDigit(t *testing.T) {
	f := func(n uint32) bool {
		rng := rand.New(rand.NewSource(int64(n)))
		body := randDigits(rng, 1+int(n%25))
		d := LuhnCheckDigit(body)
		return d >= '0' && d <= '9'
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
