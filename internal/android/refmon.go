package android

import (
	"fmt"
	"sync"
)

// Resource is a protected platform resource class, the object side of the
// Binder reference monitor (§II-A: "the Binder ... checks an application's
// permission list when it tries to access sensitive information via the
// Library").
type Resource string

// Protected resources and the sensitive data they expose.
const (
	ResourceNetwork    Resource = "network"    // socket access
	ResourcePhoneState Resource = "phonestate" // IMEI, IMSI, SIM serial, line number
	ResourceLocation   Resource = "location"   // GPS / cell location
	ResourceContacts   Resource = "contacts"   // address book
)

// requiredPermissions maps each resource to the permissions any one of
// which grants access.
var requiredPermissions = map[Resource][]Permission{
	ResourceNetwork:    {PermInternet},
	ResourcePhoneState: {PermReadPhoneState},
	ResourceLocation:   {PermAccessFineLocation, PermAccessCoarseLocation},
	ResourceContacts:   {PermReadContacts},
}

// AccessDenied is returned by the reference monitor when a manifest lacks
// every permission guarding a resource.
type AccessDenied struct {
	Package  string
	Resource Resource
}

func (e *AccessDenied) Error() string {
	return fmt.Sprintf("android: %s denied access to %s", e.Package, e.Resource)
}

// AccessRecord is one entry in the reference monitor's audit log.
type AccessRecord struct {
	Package  string
	Resource Resource
	Granted  bool
}

// ReferenceMonitor simulates the Binder permission check. It keeps an audit
// log — exactly the "usage history of runtime applications' permissions"
// the paper notes Android itself does not provide (§III-B). Safe for
// concurrent use.
type ReferenceMonitor struct {
	mu  sync.Mutex
	log []AccessRecord
}

// NewReferenceMonitor returns an empty monitor.
func NewReferenceMonitor() *ReferenceMonitor { return &ReferenceMonitor{} }

// Check verifies that the manifest may access the resource, records the
// attempt, and returns *AccessDenied on refusal.
func (rm *ReferenceMonitor) Check(m *Manifest, r Resource) error {
	perms, ok := requiredPermissions[r]
	granted := false
	if ok {
		for _, p := range perms {
			if m.Permissions.Has(p) {
				granted = true
				break
			}
		}
	}
	rm.mu.Lock()
	rm.log = append(rm.log, AccessRecord{Package: m.Package, Resource: r, Granted: granted})
	rm.mu.Unlock()
	if !granted {
		return &AccessDenied{Package: m.Package, Resource: r}
	}
	return nil
}

// Log returns a copy of the audit log.
func (rm *ReferenceMonitor) Log() []AccessRecord {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	return append([]AccessRecord(nil), rm.log...)
}

// Denials returns the audit entries that were refused.
func (rm *ReferenceMonitor) Denials() []AccessRecord {
	rm.mu.Lock()
	defer rm.mu.Unlock()
	var out []AccessRecord
	for _, r := range rm.log {
		if !r.Granted {
			out = append(out, r)
		}
	}
	return out
}
