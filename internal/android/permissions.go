// Package android simulates the slice of the Android platform the paper
// depends on: the permission framework (§II-B), a Binder-like reference
// monitor guarding sensitive resources, and the device identity module that
// ad libraries read UDIDs from (§III-B).
//
// The paper's experiments ran on a Galaxy Nexus S with Android 2.3.x
// (API level ~10; the paper cites the API level 15 permission list). We
// model applications as manifests holding permission sets, and devices as
// carriers of the identifiers whose leakage the system detects.
package android

import (
	"fmt"
	"sort"
	"strings"
)

// Permission is an Android manifest permission name.
type Permission string

// The permissions the paper's analysis groups applications by (Table I),
// plus common companions seen in free applications. LOCATION in the paper
// stands for either of the two location permissions.
const (
	PermInternet             Permission = "android.permission.INTERNET"
	PermAccessFineLocation   Permission = "android.permission.ACCESS_FINE_LOCATION"
	PermAccessCoarseLocation Permission = "android.permission.ACCESS_COARSE_LOCATION"
	PermReadPhoneState       Permission = "android.permission.READ_PHONE_STATE"
	PermReadContacts         Permission = "android.permission.READ_CONTACTS"
	PermAccessNetworkState   Permission = "android.permission.ACCESS_NETWORK_STATE"
	PermWriteExternal        Permission = "android.permission.WRITE_EXTERNAL_STORAGE"
	PermWakeLock             Permission = "android.permission.WAKE_LOCK"
	PermVibrate              Permission = "android.permission.VIBRATE"
	PermCamera               Permission = "android.permission.CAMERA"
	PermRecordAudio          Permission = "android.permission.RECORD_AUDIO"
	PermReceiveBootCompleted Permission = "android.permission.RECEIVE_BOOT_COMPLETED"
)

// Short returns the final path component, e.g. "INTERNET".
func (p Permission) Short() string {
	if i := strings.LastIndexByte(string(p), '.'); i >= 0 {
		return string(p[i+1:])
	}
	return string(p)
}

// Set is an unordered collection of permissions.
type Set map[Permission]bool

// NewSet builds a Set from its arguments.
func NewSet(ps ...Permission) Set {
	s := make(Set, len(ps))
	for _, p := range ps {
		s[p] = true
	}
	return s
}

// Has reports whether the permission is present.
func (s Set) Has(p Permission) bool { return s[p] }

// HasLocation reports whether either location permission is present. The
// paper's Table I treats fine and coarse location as one LOCATION column.
func (s Set) HasLocation() bool {
	return s[PermAccessFineLocation] || s[PermAccessCoarseLocation]
}

// Add inserts permissions into the set.
func (s Set) Add(ps ...Permission) {
	for _, p := range ps {
		s[p] = true
	}
}

// Sorted returns the permissions in lexical order.
func (s Set) Sorted() []Permission {
	out := make([]Permission, 0, len(s))
	for p := range s {
		out = append(out, p)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Manifest is the permission-relevant part of an application's
// AndroidManifest.xml together with its sandbox identity.
type Manifest struct {
	Package     string // e.g. "com.example.game"
	UID         int    // unique Linux UID assigned at install (§II-A)
	Permissions Set
}

// DangerousCombo classifies a manifest into the rows of the paper's
// Table I. The five printed rows are, in order:
//
//	INTERNET only
//	INTERNET + PHONE STATE
//	INTERNET + LOCATION + PHONE STATE
//	INTERNET + LOCATION
//	INTERNET + LOCATION + PHONE STATE + CONTACTS
//
// Manifests without INTERNET, or with combinations outside the table
// (e.g. INTERNET + CONTACTS only), return ComboOther.
type Combo int

// Combo values mirror Table I rows; ComboOther covers everything else.
const (
	ComboInternetOnly Combo = iota
	ComboInternetPhone
	ComboInternetLocationPhone
	ComboInternetLocation
	ComboInternetLocationPhoneContacts
	ComboOther
)

var comboNames = [...]string{
	"INTERNET",
	"INTERNET+PHONE_STATE",
	"INTERNET+LOCATION+PHONE_STATE",
	"INTERNET+LOCATION",
	"INTERNET+LOCATION+PHONE_STATE+CONTACTS",
	"OTHER",
}

// String names the combination as in Table I.
func (c Combo) String() string {
	if int(c) < len(comboNames) {
		return comboNames[c]
	}
	return fmt.Sprintf("Combo(%d)", int(c))
}

// DangerousCombo returns the Table I row for this manifest.
func (m *Manifest) DangerousCombo() Combo {
	s := m.Permissions
	if !s.Has(PermInternet) {
		return ComboOther
	}
	loc, phone, contacts := s.HasLocation(), s.Has(PermReadPhoneState), s.Has(PermReadContacts)
	switch {
	case !loc && !phone && !contacts:
		return ComboInternetOnly
	case !loc && phone && !contacts:
		return ComboInternetPhone
	case loc && phone && !contacts:
		return ComboInternetLocationPhone
	case loc && !phone && !contacts:
		return ComboInternetLocation
	case loc && phone && contacts:
		return ComboInternetLocationPhoneContacts
	default:
		return ComboOther
	}
}

// CanLeak reports whether the manifest holds INTERNET together with at
// least one sensitive-information permission — the paper's definition of an
// application that "can access sensitive resources on the device and send
// information gathered from those sensitive resources using the network"
// (§III-A).
func (m *Manifest) CanLeak() bool {
	s := m.Permissions
	return s.Has(PermInternet) &&
		(s.HasLocation() || s.Has(PermReadPhoneState) || s.Has(PermReadContacts))
}
