package android

import (
	"fmt"
	"math/rand"
)

// Carrier identifies a mobile network operator. The dataset was collected
// in Japan (§III-B), so the built-in carriers are the Japanese operators of
// 2012 with their real MCC/MNC codes.
type Carrier struct {
	Name string // as transmitted by ad modules, e.g. "NTTDOCOMO"
	MCC  string // mobile country code (3 digits)
	MNC  string // mobile network code (2 digits)
}

// Japanese carriers contemporaneous with the paper's collection window.
var (
	CarrierDocomo   = Carrier{Name: "NTTDOCOMO", MCC: "440", MNC: "10"}
	CarrierSoftBank = Carrier{Name: "SoftBank", MCC: "440", MNC: "20"}
	CarrierKDDI     = Carrier{Name: "KDDI", MCC: "440", MNC: "50"}
	CarrierEmobile  = Carrier{Name: "eMobile", MCC: "440", MNC: "00"}
)

// Carriers lists the built-in carriers.
func Carriers() []Carrier {
	return []Carrier{CarrierDocomo, CarrierSoftBank, CarrierKDDI, CarrierEmobile}
}

// Device models the identifier-bearing state of one handset: the four UDIDs
// the paper tracks (§III-B) plus the carrier name.
//
//	IMEI       — device hardware number (15 digits, Luhn check digit)
//	IMSI       — subscriber number in the SIM (MCC+MNC+MSIN, 15 digits)
//	SIMSerial  — ICCID of the SIM card (19 digits, Luhn check digit)
//	AndroidID  — 64-bit value assigned at Android's first boot (16 hex chars)
type Device struct {
	Model     string
	OSVersion string
	Carrier   Carrier
	IMEI      string
	IMSI      string
	SIMSerial string
	AndroidID string
}

// NewDevice fabricates a device with format-valid identifiers drawn from
// rng. The model/OS default to the paper's experiment hardware
// (Galaxy Nexus S, Android 2.3).
func NewDevice(rng *rand.Rand, carrier Carrier) *Device {
	return &Device{
		Model:     "Nexus S",
		OSVersion: "2.3.4",
		Carrier:   carrier,
		IMEI:      GenerateIMEI(rng),
		IMSI:      GenerateIMSI(rng, carrier),
		SIMSerial: GenerateICCID(rng),
		AndroidID: GenerateAndroidID(rng),
	}
}

// LuhnCheckDigit returns the Luhn check digit for the given digit string.
// It panics on non-digit input (programming error).
func LuhnCheckDigit(digits string) byte {
	sum := 0
	// The check digit will be appended, so positions alternate starting
	// with double on the rightmost existing digit.
	double := true
	for i := len(digits) - 1; i >= 0; i-- {
		c := digits[i]
		if c < '0' || c > '9' {
			panic(fmt.Sprintf("android: non-digit %q in %q", c, digits))
		}
		d := int(c - '0')
		if double {
			d *= 2
			if d > 9 {
				d -= 9
			}
		}
		sum += d
		double = !double
	}
	return byte('0' + (10-sum%10)%10)
}

// LuhnValid reports whether the digit string (including its final check
// digit) passes the Luhn check.
func LuhnValid(s string) bool {
	if len(s) < 2 {
		return false
	}
	for i := 0; i < len(s); i++ {
		if s[i] < '0' || s[i] > '9' {
			return false
		}
	}
	return LuhnCheckDigit(s[:len(s)-1]) == s[len(s)-1]
}

// Type-allocation codes of 2011-2012 era Android handsets; the first is the
// Nexus S. GenerateIMEI picks one so synthetic IMEIs look like real ones.
var tacCodes = []string{
	"35391805", // Samsung Nexus S
	"35896704", // Samsung Galaxy S II
	"35824005", // HTC Desire
	"35690404", // Sony Ericsson Xperia
	"35803106", // Sharp AQUOS
}

func randDigits(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = byte('0' + rng.Intn(10))
	}
	return string(b)
}

// GenerateIMEI returns a 15-digit IMEI: 8-digit TAC, 6-digit serial,
// Luhn check digit.
func GenerateIMEI(rng *rand.Rand) string {
	body := tacCodes[rng.Intn(len(tacCodes))] + randDigits(rng, 6)
	return body + string(LuhnCheckDigit(body))
}

// GenerateIMSI returns a 15-digit IMSI for the carrier: MCC (3) + MNC (2) +
// MSIN (10).
func GenerateIMSI(rng *rand.Rand, c Carrier) string {
	return c.MCC + c.MNC + randDigits(rng, 10)
}

// GenerateICCID returns a 19-digit SIM serial: "8981" (telecom prefix +
// Japan country code) + 14 digits + Luhn check digit.
func GenerateICCID(rng *rand.Rand) string {
	body := "8981" + randDigits(rng, 14)
	return body + string(LuhnCheckDigit(body))
}

const hexDigits = "0123456789abcdef"

// GenerateAndroidID returns the 16-hex-character Android ID generated at
// first boot.
func GenerateAndroidID(rng *rand.Rand) string {
	b := make([]byte, 16)
	for i := range b {
		b[i] = hexDigits[rng.Intn(16)]
	}
	return string(b)
}

// UserAgent returns the Dalvik HTTP User-Agent string this device's stack
// would send, matching the Android 2.3-era format.
func (d *Device) UserAgent() string {
	return fmt.Sprintf("Dalvik/1.4.0 (Linux; U; Android %s; %s Build/GRJ22)", d.OSVersion, d.Model)
}
