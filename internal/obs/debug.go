package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/pprof"

	"leaksig/internal/obs/trace"
)

// WriteJSON writes v as the response body with the headers every /stats
// endpoint owes its scrapers: an explicit JSON content type and
// Cache-Control: no-store, so point-in-time snapshots are never served
// stale by an intermediary. All daemons route their JSON stats through
// this one helper so the contract cannot drift per binary again.
func WriteJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Cache-Control", "no-store")
	json.NewEncoder(w).Encode(v)
}

// DebugHandler is the operator side-channel every daemon mounts on its
// -debug-addr: pprof under /debug/pprof/, the registry's /metrics, a
// /healthz, and — when a flight recorder is wired — GET /debug/flight
// dumping its recent events. It deliberately uses a private mux —
// importing net/http/pprof for its DefaultServeMux side effect would
// expose profiling on whatever mux the daemon serves traffic on.
func DebugHandler(reg *Registry, flight *trace.Flight) http.Handler {
	mux := http.NewServeMux()
	if reg != nil {
		mux.Handle("GET /metrics", reg.Handler())
	}
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	mux.HandleFunc("GET /debug/flight", func(w http.ResponseWriter, r *http.Request) {
		events := flight.Dump() // nil-safe: no recorder → empty dump
		if events == nil {
			events = []trace.FlightEvent{}
		}
		WriteJSON(w, struct {
			Stats  trace.FlightStats   `json:"stats"`
			Events []trace.FlightEvent `json:"events"`
		}{flight.Stats(), events})
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	return mux
}
