package obs

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"leaksig/internal/resilience"
)

// Event is one structured ops-plane record: a leak verdict, a signature
// publish, a retirement convergence, a reload — whatever the daemons
// decide is worth shipping. Fields are omitted when empty so the NDJSON
// stays compact.
type Event struct {
	Time    time.Time `json:"ts"`
	Type    string    `json:"type"`              // verdict | publish | retire | reload | ...
	Node    string    `json:"node,omitempty"`    // emitting daemon, e.g. "leakstream"
	Tenant  string    `json:"tenant,omitempty"`  // traffic population
	Set     string    `json:"set,omitempty"`     // signature set name ("" = default, omitted)
	Version int64     `json:"version,omitempty"` // signature-set version involved
	App     string    `json:"app,omitempty"`
	Host    string    `json:"host,omitempty"`
	Matched []int     `json:"matched,omitempty"` // signature IDs, for verdict events
	Trace   string    `json:"trace,omitempty"`   // cross-process trace ID, when sampled
	Detail  string    `json:"detail,omitempty"`
}

// ShipperConfig parameterizes a Shipper. Zero values select the noted
// defaults; exactly one of URL and Sink must be set.
type ShipperConfig struct {
	// URL is the HTTP endpoint batches POST to as
	// application/x-ndjson. Ignored when Sink is set.
	URL string

	// Token, when non-empty, is sent as `Authorization: Bearer <token>`
	// on every upload.
	Token string

	// Sink, when non-nil, replaces the HTTP uploader: it receives one
	// encoded NDJSON batch per flush and reports delivery. It runs on the
	// shipper's flush goroutine; a Sink that blocks forever wedges
	// delivery but NEVER the producers — Ship keeps accepting (and,
	// past the buffer bound, counting drops).
	Sink func(ctx context.Context, batch []byte) error

	// Node stamps every shipped event's Node field (the emitting daemon).
	Node string

	// BufferEvents bounds the in-memory ring; producers shipping into a
	// full ring drop the NEW event and count it — the logtail posture:
	// never stall the pipeline for the log. Default 4096.
	BufferEvents int

	// FlushEvents triggers a flush when this many events are buffered;
	// default 256. FlushInterval flushes partial batches; default 2s.
	FlushEvents   int
	FlushInterval time.Duration

	// RetryMin and RetryMax bound the jittered exponential backoff
	// between failed delivery attempts; defaults 500ms and 30s.
	// MaxAttempts bounds attempts per batch before the batch is
	// abandoned and counted as delivery drops; default 5. RetrySeed
	// fixes the jitter stream (0 seeds from the clock).
	RetryMin    time.Duration
	RetryMax    time.Duration
	MaxAttempts int
	RetrySeed   int64

	// UploadTimeout bounds one delivery attempt; default 10s.
	UploadTimeout time.Duration

	// HTTPClient, when non-nil, replaces the URL sink's internal client
	// — the slot chaos harnesses use to inject faults into the upload
	// path. Ignored when Sink is set.
	HTTPClient *http.Client

	// Breaker, when non-nil, gates delivery attempts: while open, an
	// attempt is counted as failed without dialing the sink, so a dead
	// consumer costs the flush goroutine nothing but bookkeeping. Nil
	// (the default) preserves plain retry behavior.
	Breaker *resilience.Breaker
}

func (c ShipperConfig) withDefaults() ShipperConfig {
	if c.BufferEvents <= 0 {
		c.BufferEvents = 4096
	}
	if c.FlushEvents <= 0 {
		c.FlushEvents = 256
	}
	if c.FlushEvents > c.BufferEvents {
		c.FlushEvents = c.BufferEvents
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Second
	}
	if c.RetryMin <= 0 {
		c.RetryMin = 500 * time.Millisecond
	}
	if c.RetryMax <= 0 {
		c.RetryMax = 30 * time.Second
	}
	if c.RetryMax < c.RetryMin {
		c.RetryMax = c.RetryMin
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 5
	}
	if c.UploadTimeout <= 0 {
		c.UploadTimeout = 10 * time.Second
	}
	return c
}

// ShipperStats is a point-in-time view of the shipper's accounting.
type ShipperStats struct {
	Shipped        uint64 `json:"shipped"`         // events delivered to the sink
	DroppedBuffer  uint64 `json:"dropped_buffer"`  // events dropped: ring full
	DroppedUpload  uint64 `json:"dropped_upload"`  // events dropped: batch abandoned after MaxAttempts
	UploadFailures uint64 `json:"upload_failures"` // failed delivery attempts
	Batches        uint64 `json:"batches"`         // batches delivered
	Buffered       int    `json:"buffered"`        // events currently in the ring
}

// Shipper batches structured events into NDJSON and ships them to a
// consumer without ever blocking its producers: the buffer is a bounded
// ring whose overflow increments a drop counter instead of stalling the
// caller, flushing happens on size or interval off the producing
// goroutine, and failed uploads retry with exponential backoff while the
// ring keeps absorbing (and, at the bound, dropping) new events — the
// buffered-upload/backpressure idiom of tailscale's logtail. Construct
// with NewShipper; all methods are safe for concurrent use.
type Shipper struct {
	cfg ShipperConfig

	mu     sync.Mutex
	buf    []Event // bounded ring, FIFO via slice shift at take time
	wake   chan struct{}
	closed bool

	shipped        Counter
	droppedBuffer  Counter
	droppedUpload  Counter
	uploadFailures Counter
	batches        Counter

	flushSec *Histogram // delivery attempt duration, seconds
	retry    *resilience.Backoff
	stop     chan struct{}
	done     chan struct{}
}

// NewShipper starts a shipper. The flush goroutine begins immediately.
func NewShipper(cfg ShipperConfig) *Shipper {
	cfg = cfg.withDefaults()
	if cfg.Sink == nil {
		cfg.Sink = httpSink(cfg.URL, cfg.Token, cfg.UploadTimeout, cfg.HTTPClient)
	}
	s := &Shipper{
		cfg:      cfg,
		buf:      make([]Event, 0, cfg.BufferEvents),
		wake:     make(chan struct{}, 1),
		flushSec: NewHistogram(ExpBuckets(0.001, 4, 8)), // 1ms .. ~16s
		retry:    resilience.NewBackoff(cfg.RetryMin, cfg.RetryMax, cfg.RetrySeed),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
	go s.run()
	return s
}

// httpSink POSTs one NDJSON batch per call.
func httpSink(url, token string, timeout time.Duration, hc *http.Client) func(context.Context, []byte) error {
	if hc == nil {
		hc = &http.Client{Timeout: timeout}
	}
	return func(ctx context.Context, batch []byte) error {
		req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(batch))
		if err != nil {
			return err
		}
		req.Header.Set("Content-Type", "application/x-ndjson")
		if token != "" {
			req.Header.Set("Authorization", "Bearer "+token)
		}
		resp, err := hc.Do(req)
		if err != nil {
			return err
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
		resp.Body.Close()
		if resp.StatusCode >= 300 {
			return fmt.Errorf("obs: event upload status %s", resp.Status)
		}
		return nil
	}
}

// Ship offers one event. It never blocks: when the ring is full the
// event is dropped and counted, and Ship reports false. The event's Time
// is stamped if zero, and Node is stamped from the config.
func (s *Shipper) Ship(ev Event) bool {
	if ev.Time.IsZero() {
		ev.Time = time.Now().UTC()
	}
	if ev.Node == "" {
		ev.Node = s.cfg.Node
	}
	s.mu.Lock()
	if s.closed || len(s.buf) >= s.cfg.BufferEvents {
		s.mu.Unlock()
		s.droppedBuffer.Inc()
		return false
	}
	s.buf = append(s.buf, ev)
	n := len(s.buf)
	s.mu.Unlock()
	if n >= s.cfg.FlushEvents {
		select {
		case s.wake <- struct{}{}:
		default:
		}
	}
	return true
}

// take removes up to FlushEvents events from the head of the ring.
func (s *Shipper) take() []Event {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.buf)
	if n == 0 {
		return nil
	}
	if n > s.cfg.FlushEvents {
		n = s.cfg.FlushEvents
	}
	batch := make([]Event, n)
	copy(batch, s.buf)
	rest := copy(s.buf, s.buf[n:])
	s.buf = s.buf[:rest]
	return batch
}

// run is the flush loop: wait for a size trigger, the interval, or Close,
// then deliver whatever is buffered, retrying each batch with backoff.
func (s *Shipper) run() {
	defer close(s.done)
	t := time.NewTicker(s.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-s.stop:
			// Final best-effort flush: one attempt per remaining batch, no
			// retries — Close must not hang on a dead consumer.
			for {
				batch := s.take()
				if len(batch) == 0 {
					return
				}
				s.deliver(batch, 1)
			}
		case <-s.wake:
		case <-t.C:
		}
		for {
			batch := s.take()
			if len(batch) == 0 {
				break
			}
			s.deliver(batch, s.cfg.MaxAttempts)
		}
	}
}

// deliver encodes one batch as NDJSON and ships it with up to attempts
// tries. An abandoned batch is counted as upload drops — explicit loss
// accounting rather than unbounded buffering.
func (s *Shipper) deliver(batch []Event, attempts int) {
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	for i := range batch {
		enc.Encode(&batch[i])
	}
	for attempt := 1; ; attempt++ {
		var err error
		if br := s.cfg.Breaker; br != nil && !br.Allow() {
			// Shed without dialing: the consumer is known-dead and the
			// attempt is accounted like any other failure.
			err = resilience.ErrOpen
		} else {
			ctx, cancel := context.WithTimeout(context.Background(), s.cfg.UploadTimeout)
			begin := time.Now()
			err = s.cfg.Sink(ctx, buf.Bytes())
			s.flushSec.Observe(time.Since(begin).Seconds())
			cancel()
			if br := s.cfg.Breaker; br != nil {
				br.Record(err)
			}
		}
		if err == nil {
			s.shipped.Add(uint64(len(batch)))
			s.batches.Inc()
			return
		}
		s.uploadFailures.Inc()
		if attempt >= attempts {
			s.droppedUpload.Add(uint64(len(batch)))
			return
		}
		select {
		case <-s.stop:
			// Closing: abandon the retry loop, count the loss.
			s.droppedUpload.Add(uint64(len(batch)))
			return
		case <-time.After(s.retry.Delay(attempt - 1)):
		}
	}
}

// Stats returns the shipper's accounting counters.
func (s *Shipper) Stats() ShipperStats {
	s.mu.Lock()
	buffered := len(s.buf)
	s.mu.Unlock()
	return ShipperStats{
		Shipped:        s.shipped.Value(),
		DroppedBuffer:  s.droppedBuffer.Value(),
		DroppedUpload:  s.droppedUpload.Value(),
		UploadFailures: s.uploadFailures.Value(),
		Batches:        s.batches.Value(),
		Buffered:       buffered,
	}
}

// Collect implements Collector: the shipper's own accounting as metric
// families, so event loss is as scrapeable as event volume.
func (s *Shipper) Collect(m *MetricWriter) {
	st := s.Stats()
	m.Counter("leaksig_events_shipped_total", "Events delivered to the event sink.", float64(st.Shipped))
	m.Counter("leaksig_events_dropped_total", "Events dropped, by reason (buffer overflow vs abandoned upload).", float64(st.DroppedBuffer), L("reason", "buffer_full"))
	m.Counter("leaksig_events_dropped_total", "Events dropped, by reason (buffer overflow vs abandoned upload).", float64(st.DroppedUpload), L("reason", "upload_abandoned"))
	m.Counter("leaksig_events_upload_failures_total", "Failed event upload attempts (each retried batch attempt counts once).", float64(st.UploadFailures))
	m.Counter("leaksig_events_batches_total", "Event batches delivered.", float64(st.Batches))
	m.Gauge("leaksig_events_buffered", "Events currently waiting in the ship buffer.", float64(st.Buffered))
	s.flushSec.Write(m, "leaksig_events_flush_seconds", "Event batch delivery attempt duration.")
}

// Close stops the flush loop after one final best-effort delivery pass.
// Events shipped after Close are dropped and counted. Close is
// idempotent.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		<-s.done
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.stop)
	<-s.done
}
