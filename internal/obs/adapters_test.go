package obs

import (
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"leaksig/internal/engine"
	"leaksig/internal/httpmodel"
	"leaksig/internal/obs/trace"
	"leaksig/internal/signature"
)

// expose renders one collector through a fresh registry.
func expose(c Collector) string {
	reg := NewRegistry()
	reg.Register(c)
	return reg.Expose()
}

func TestEngineCollectorPerShardFamilies(t *testing.T) {
	eng := engine.New(&signature.Set{}, engine.Config{Shards: 2, Sink: engine.NewCountSink()})
	defer eng.Close()
	for i := 0; i < 32; i++ {
		p := httpmodel.Get("example.com", fmt.Sprintf("/p/%d", i)).App("app.a").Build()
		if err := eng.Submit(p); err != nil {
			t.Fatalf("submit: %v", err)
		}
	}
	eng.Flush()

	out := expose(EngineCollector(eng.Metrics, eng.ShardStats))
	// Every shard gets its own series in each per-shard family.
	for shard := 0; shard < 2; shard++ {
		for _, fam := range []string{
			"leaksig_engine_shard_processed_total",
			"leaksig_engine_shard_matched_total",
			"leaksig_engine_shard_batch_target",
			"leaksig_engine_shard_ring_depth",
		} {
			want := fmt.Sprintf(`%s{shard="%d"}`, fam, shard)
			if !strings.Contains(out, want) {
				t.Errorf("exposition missing %s; got:\n%s", want, out)
			}
		}
	}
	// The shard-summed processed counter must agree with the aggregate.
	stats := eng.ShardStats()
	var sum uint64
	for _, s := range stats {
		sum += s.Processed
	}
	if m := eng.Metrics(); sum != m.Processed || m.Processed != 32 {
		t.Errorf("shard processed sum %d vs aggregate %d (want 32)", sum, m.Processed)
	}
}

func TestPoolCollectorExposesUpgradedAndTenants(t *testing.T) {
	snap := func() engine.PoolSnapshot {
		return engine.PoolSnapshot{
			Tenants:  2,
			Created:  5,
			Evicted:  3,
			Upgraded: 4,
			PerTenant: map[string]engine.Snapshot{
				"app.b": {Processed: 7},
				"app.a": {Processed: 9},
			},
		}
	}
	out := expose(PoolCollector(snap))
	for _, want := range []string{
		"leaksig_pool_upgraded_total 4",
		`leaksig_engine_processed_total{tenant="app.a"} 9`,
		`leaksig_engine_processed_total{tenant="app.b"} 7`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// Tenant series are emitted in sorted order for diff-stable scrapes.
	if strings.Index(out, `tenant="app.a"`) > strings.Index(out, `tenant="app.b"`) {
		t.Error("tenant series not sorted")
	}
}

func TestTracerCollectorStageFamilies(t *testing.T) {
	tr := trace.NewTracer(1)
	sp := tr.Start()
	if sp == nil {
		t.Fatal("sample-1 tracer did not start a span")
	}
	sp.Stamp(trace.StageIngest)
	sp.Stamp(trace.StageEnqueue)
	sp.Stamp(trace.StageMatch)
	sp.Finish()
	tr.Observe(trace.StageDistill, 2*time.Millisecond)

	out := expose(TracerCollector(tr))
	for _, want := range []string{
		`leaksig_stage_seconds_count{stage="enqueue"} 1`,
		`leaksig_stage_seconds_count{stage="match"} 1`,
		`leaksig_stage_seconds_count{stage="distill"} 1`,
		"leaksig_trace_spans_started_total 1",
		"leaksig_trace_spans_finished_total 1",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// Every pipeline stage appears in the catalog even when unfed: fixed
	// cardinality is the contract that keeps scrapes diff-stable.
	for _, st := range trace.Stages() {
		want := fmt.Sprintf(`leaksig_stage_seconds_count{stage=%q}`, st)
		if !strings.Contains(out, want) {
			t.Errorf("stage %q missing from catalog", st)
		}
	}
	// A nil tracer contributes nothing rather than panicking.
	if out := expose(TracerCollector(nil)); strings.Contains(out, "leaksig_stage_seconds") {
		t.Error("nil tracer emitted stage families")
	}
}

func TestFlightCollectorFamilies(t *testing.T) {
	f := trace.NewFlight(2, 8)
	f.SetTrigger(func(string, trace.FlightEvent) {})
	f.Record(trace.FlightEvent{Kind: trace.KindReloadIssue, Shard: -1, Value: 1})
	f.Record(trace.FlightEvent{Kind: trace.KindBatchTarget, Shard: 1, Value: 64})
	f.Trigger("test", trace.FlightEvent{Kind: trace.KindSinkStall, Shard: 0})

	out := expose(FlightCollector(f))
	for _, want := range []string{
		"leaksig_flight_events_total 3",
		"leaksig_flight_events_held 3",
		"leaksig_flight_triggers_total 1",
		"leaksig_flight_triggers_throttled_total 0",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	if out := expose(FlightCollector(nil)); strings.Contains(out, "leaksig_flight") {
		t.Error("nil flight emitted families")
	}
}

func TestDebugHandlerFlightDump(t *testing.T) {
	f := trace.NewFlight(1, 8)
	f.Record(trace.FlightEvent{Kind: trace.KindDrop, Shard: 0, Trace: "00000000deadbeef"})
	srv := httptest.NewServer(DebugHandler(NewRegistry(), f))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("content type %q", ct)
	}
	var dump struct {
		Stats  trace.FlightStats   `json:"stats"`
		Events []trace.FlightEvent `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decoding dump: %v", err)
	}
	if len(dump.Events) != 1 || dump.Events[0].Trace != "00000000deadbeef" {
		t.Fatalf("dump events = %+v", dump.Events)
	}
	if dump.Stats.Recorded != 1 {
		t.Errorf("recorded = %d, want 1", dump.Stats.Recorded)
	}
}

func TestDebugHandlerFlightDumpNilRecorder(t *testing.T) {
	srv := httptest.NewServer(DebugHandler(NewRegistry(), nil))
	defer srv.Close()
	resp, err := srv.Client().Get(srv.URL + "/debug/flight")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var dump struct {
		Events []trace.FlightEvent `json:"events"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&dump); err != nil {
		t.Fatalf("decoding dump: %v", err)
	}
	if len(dump.Events) != 0 {
		t.Fatalf("nil recorder dumped events: %+v", dump.Events)
	}
}
