package obs

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

// fakeClock drives the limiter's refill math deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func withClock(l *RateLimiter, c *fakeClock) { l.now = c.now }

func TestRateLimiterBurstThenRefill(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(RateLimiterConfig{Rate: 10, Burst: 3})
	withClock(l, clk)

	// A new tenant starts with its full burst.
	for i := 0; i < 3; i++ {
		if !l.Allow("app.a") {
			t.Fatalf("burst packet %d rejected", i)
		}
	}
	if l.Allow("app.a") {
		t.Fatal("packet past the burst admitted without refill")
	}

	// 100ms at 10 pps refills exactly one token.
	clk.advance(100 * time.Millisecond)
	if !l.Allow("app.a") {
		t.Fatal("refilled token rejected")
	}
	if l.Allow("app.a") {
		t.Fatal("second packet admitted on a one-token refill")
	}

	// A long idle period caps at Burst, not unbounded credit.
	clk.advance(time.Hour)
	for i := 0; i < 3; i++ {
		if !l.Allow("app.a") {
			t.Fatalf("post-idle burst packet %d rejected", i)
		}
	}
	if l.Allow("app.a") {
		t.Fatal("idle credit exceeded the burst cap")
	}

	st := l.Stats()
	if st.Allowed != 7 || st.Limited != 3 {
		t.Fatalf("stats = %+v, want 7 allowed / 3 limited", st)
	}
}

func TestRateLimiterPassThroughWhenUnlimited(t *testing.T) {
	l := NewRateLimiter(RateLimiterConfig{Rate: 0})
	for i := 0; i < 100; i++ {
		if !l.Allow("anything") {
			t.Fatal("pass-through limiter rejected a packet")
		}
	}
	if st := l.Stats(); st.Allowed != 100 || st.Limited != 0 {
		t.Fatalf("pass-through must still count admissions: %+v", st)
	}
}

func TestRateLimiterBoundedTableEvictsStalest(t *testing.T) {
	clk := newFakeClock()
	l := NewRateLimiter(RateLimiterConfig{Rate: 100, Burst: 100, MaxTenants: 4})
	withClock(l, clk)

	// Four tenants fill the table, each a second apart so recency is
	// unambiguous; t0 is the stalest.
	for i := 0; i < 4; i++ {
		l.Allow(fmt.Sprintf("t%d", i))
		clk.advance(time.Second)
	}
	if st := l.Stats(); st.Tenants != 4 {
		t.Fatalf("tenants = %d, want 4", st.Tenants)
	}

	// A fifth tenant must recycle t0, not grow the table.
	l.Allow("t4")
	st := l.Stats()
	if st.Tenants != 4 {
		t.Fatalf("table grew past MaxTenants: %d", st.Tenants)
	}
	out := scrape(t, l)
	if strings.Contains(out, `leaksig_intake_tenant_allowed_total{tenant="t0"}`) {
		t.Errorf("evicted tenant's series still exposed:\n%s", out)
	}
	if !strings.Contains(out, `leaksig_intake_tenant_allowed_total{tenant="t4"}`) {
		t.Errorf("new tenant's series missing:\n%s", out)
	}
	// The aggregate keeps the evicted tenant's history.
	if !strings.Contains(out, "leaksig_intake_allowed_total 5") {
		t.Errorf("aggregate lost evicted history:\n%s", out)
	}
}

func TestRateLimiterCollectAlwaysEmitsAggregates(t *testing.T) {
	l := NewRateLimiter(RateLimiterConfig{Rate: 10})
	out := scrape(t, l)
	// Both aggregates present at zero, so loop_smoke and dashboards can
	// distinguish "no drops" from "no data".
	for _, want := range []string{
		"leaksig_intake_allowed_total 0",
		"leaksig_intake_limited_total 0",
		"leaksig_intake_limiter_tenants 0",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("scrape missing %q:\n%s", want, out)
		}
	}
}

func scrape(t *testing.T, c Collector) string {
	t.Helper()
	reg := NewRegistry()
	reg.Register(c)
	return reg.Expose()
}
