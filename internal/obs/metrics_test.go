package obs

import (
	"net/http/httptest"
	"strings"
	"testing"
)

func TestExpositionFormat(t *testing.T) {
	reg := NewRegistry()
	reg.Register(CollectorFunc(func(m *MetricWriter) {
		m.Counter("leaksig_test_total", "A test counter.", 42, L("tenant", "app.a"))
		m.Counter("leaksig_test_total", "A test counter.", 7, L("tenant", "app.b"))
		m.Gauge("leaksig_test_depth", "A test gauge.", 3.5)
	}))
	out := reg.Expose()

	wantLines := []string{
		"# HELP leaksig_test_total A test counter.",
		"# TYPE leaksig_test_total counter",
		`leaksig_test_total{tenant="app.a"} 42`,
		`leaksig_test_total{tenant="app.b"} 7`,
		"# TYPE leaksig_test_depth gauge",
		"leaksig_test_depth 3.5",
	}
	for _, want := range wantLines {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("exposition missing %q; got:\n%s", want, out)
		}
	}
	// One HELP/TYPE header per family even with samples from repeated
	// emit calls.
	if n := strings.Count(out, "# TYPE leaksig_test_total"); n != 1 {
		t.Errorf("family header emitted %d times, want 1", n)
	}
}

func TestExpositionMergesFamiliesAcrossCollectors(t *testing.T) {
	reg := NewRegistry()
	for _, v := range []string{"x", "y"} {
		v := v
		reg.Register(CollectorFunc(func(m *MetricWriter) {
			m.Counter("leaksig_shared_total", "Shared family.", 1, L("src", v))
		}))
	}
	out := reg.Expose()
	if n := strings.Count(out, "# TYPE leaksig_shared_total counter"); n != 1 {
		t.Fatalf("shared family should have exactly one TYPE header, got %d:\n%s", n, out)
	}
	for _, want := range []string{`leaksig_shared_total{src="x"} 1`, `leaksig_shared_total{src="y"} 1`} {
		if !strings.Contains(out, want) {
			t.Errorf("missing %q in:\n%s", want, out)
		}
	}
}

func TestLabelEscaping(t *testing.T) {
	reg := NewRegistry()
	reg.Register(CollectorFunc(func(m *MetricWriter) {
		m.Gauge("leaksig_esc", "Escapes.", 1, L("v", "a\"b\\c\nd"))
	}))
	out := reg.Expose()
	if !strings.Contains(out, `leaksig_esc{v="a\"b\\c\nd"} 1`) {
		t.Fatalf("label not escaped correctly:\n%s", out)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	m := newMetricWriter()
	h.Write(m, "leaksig_hist", "Test histogram.")
	var sb strings.Builder
	m.render(&sb)
	out := sb.String()
	wants := []string{
		"# TYPE leaksig_hist histogram",
		`leaksig_hist_bucket{le="0.1"} 1`,
		`leaksig_hist_bucket{le="1"} 3`,
		`leaksig_hist_bucket{le="10"} 4`,
		`leaksig_hist_bucket{le="+Inf"} 5`,
		"leaksig_hist_count 5",
		"leaksig_hist_sum 56.05",
	}
	for _, want := range wants {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("histogram exposition missing %q; got:\n%s", want, out)
		}
	}
}

func TestHandlerContentType(t *testing.T) {
	reg := NewRegistry()
	reg.Register(BuildInfoCollector())
	srv := httptest.NewServer(reg.Handler())
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ct := resp.Header.Get("Content-Type")
	if !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Errorf("Content-Type = %q, want text exposition 0.0.4", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
	buf := make([]byte, 1<<16)
	n, _ := resp.Body.Read(buf)
	if !strings.Contains(string(buf[:n]), "leaksig_build_info{") {
		t.Errorf("scrape missing leaksig_build_info:\n%s", buf[:n])
	}
}

func TestCounterVecForget(t *testing.T) {
	v := NewCounterVec("leaksig_vec_total", "Vec.", "tenant")
	v.With("a").Add(3)
	v.With("b").Inc()
	v.Forget("a")
	m := newMetricWriter()
	v.Collect(m)
	var sb strings.Builder
	m.render(&sb)
	out := sb.String()
	if strings.Contains(out, `tenant="a"`) {
		t.Errorf("forgotten series still exposed:\n%s", out)
	}
	if !strings.Contains(out, `leaksig_vec_total{tenant="b"} 1`) {
		t.Errorf("surviving series missing:\n%s", out)
	}
}
