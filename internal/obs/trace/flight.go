package trace

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Flight event kinds. Kinds are open-ended strings so daemons can record
// their own, but the pipeline's core events use these names.
const (
	KindDrop        = "drop"         // TrySubmit rejected a packet (ring full)
	KindDropBurst   = "drop_burst"   // drop rate crossed the burst threshold
	KindSinkStall   = "sink_stall"   // blocking submit spun past the stall budget
	KindReloadIssue = "reload_issue" // a reload ticket was issued (possibly coalesced)
	KindReloadApply = "reload_apply" // a compiled set was installed
	KindBatchTarget = "batch_target" // a shard's adaptive drain target changed
	KindP99Breach   = "p99_breach"   // watchdog saw stage p99 over its ceiling
	KindDegraded    = "degraded"     // daemon fell back to cached signatures (control plane unreachable)
)

// FlightEvent is one structured entry in the flight recorder: what
// happened, where (shard −1 = engine/daemon scope), under which trace (if
// one was in hand), and a kind-specific value plus free-form detail.
type FlightEvent struct {
	TimeNs int64  `json:"time_ns"`
	Kind   string `json:"kind"`
	Shard  int    `json:"shard"`
	Trace  string `json:"trace,omitempty"`
	Value  int64  `json:"value,omitempty"`
	Detail string `json:"detail,omitempty"`
}

// flightStripe is one bounded ring of recent events. Stripes map to
// shards (plus one shared stripe for engine-scope events) so concurrent
// recorders touch disjoint locks.
type flightStripe struct {
	mu   sync.Mutex
	buf  []FlightEvent
	next int    // next write slot
	n    int    // live entries (≤ len(buf))
	seen uint64 // total ever recorded through this stripe
}

func (s *flightStripe) record(ev FlightEvent) {
	s.mu.Lock()
	s.buf[s.next] = ev
	s.next = (s.next + 1) % len(s.buf)
	if s.n < len(s.buf) {
		s.n++
	}
	s.seen++
	s.mu.Unlock()
}

// snapshot appends the stripe's live events, oldest first.
func (s *flightStripe) snapshot(dst []FlightEvent) []FlightEvent {
	s.mu.Lock()
	start := s.next - s.n
	if start < 0 {
		start += len(s.buf)
	}
	for i := 0; i < s.n; i++ {
		dst = append(dst, s.buf[(start+i)%len(s.buf)])
	}
	s.mu.Unlock()
	return dst
}

// Flight is the always-on flight recorder: striped bounded rings of
// recent FlightEvents plus a trigger hook that fires (rate-limited) on
// the conditions worth dumping over — drop bursts, sink stalls, p99
// breaches. Recording is cheap enough to leave on in production; the
// rings overwrite oldest-first so the recorder always holds the last
// moments before an incident. A nil *Flight is valid everywhere and
// records nothing.
type Flight struct {
	stripes []flightStripe // index shard+1; stripe 0 is engine/daemon scope

	trigger     atomic.Pointer[func(reason string, ev FlightEvent)]
	lastTrigNs  atomic.Int64
	trigMinGap  int64 // ns between trigger firings
	triggers    atomic.Uint64
	suppressed  atomic.Uint64
	dropWin     atomic.Int64  // start of the current drop-burst window (ns)
	dropInWin   atomic.Uint64 // drops recorded in the current window
	burstThresh uint64
}

const (
	flightDefaultDepth  = 256
	flightBurstWindowNs = int64(time.Second)
	flightBurstThresh   = 64 // drops within one window → burst trigger
	flightTrigGapNs     = int64(time.Second)
)

// NewFlight builds a recorder with one stripe per shard plus a shared
// engine-scope stripe, each holding depth recent events (≤0 picks the
// default 256).
func NewFlight(shards, depth int) *Flight {
	if shards < 0 {
		shards = 0
	}
	if depth <= 0 {
		depth = flightDefaultDepth
	}
	f := &Flight{
		stripes:     make([]flightStripe, shards+1),
		trigMinGap:  flightTrigGapNs,
		burstThresh: flightBurstThresh,
	}
	for i := range f.stripes {
		f.stripes[i].buf = make([]FlightEvent, depth)
	}
	return f
}

// SetTrigger installs the dump hook. It is called at most once per
// second, off the recording fast path only in the sense that recording
// itself never blocks on it — the hook runs on the recording goroutine,
// so it must be quick (ship an event, poke a channel).
func (f *Flight) SetTrigger(fn func(reason string, ev FlightEvent)) {
	if f == nil {
		return
	}
	if fn == nil {
		f.trigger.Store(nil)
		return
	}
	f.trigger.Store(&fn)
}

func (f *Flight) stripe(shard int) *flightStripe {
	i := shard + 1
	if i < 0 || i >= len(f.stripes) {
		i = 0
	}
	return &f.stripes[i]
}

// Record appends one event (stamping its time if unset) to the shard's
// stripe. Shard −1 targets the engine/daemon scope stripe.
func (f *Flight) Record(ev FlightEvent) {
	if f == nil {
		return
	}
	if ev.TimeNs == 0 {
		ev.TimeNs = time.Now().UnixNano()
	}
	f.stripe(ev.Shard).record(ev)
}

// RecordDrop notes one TrySubmit rejection and detects drop bursts: more
// than burstThresh drops inside one second fires the trigger (once per
// rate-limit window) and logs a drop_burst event alongside the drops.
func (f *Flight) RecordDrop(shard int, traceID string) {
	if f == nil {
		return
	}
	now := time.Now().UnixNano()
	f.stripe(shard).record(FlightEvent{TimeNs: now, Kind: KindDrop, Shard: shard, Trace: traceID})

	win := f.dropWin.Load()
	if now-win > flightBurstWindowNs {
		if f.dropWin.CompareAndSwap(win, now) {
			f.dropInWin.Store(0)
		}
	}
	if f.dropInWin.Add(1) == f.burstThresh {
		ev := FlightEvent{
			TimeNs: now, Kind: KindDropBurst, Shard: shard, Trace: traceID,
			Value: int64(f.burstThresh), Detail: "drops in <1s window",
		}
		f.stripe(shard).record(ev)
		f.fire("drop_burst", ev)
	}
}

// Trigger records the event and fires the dump hook under the rate
// limit — the route for externally detected conditions (stalled sink,
// p99 breach).
func (f *Flight) Trigger(reason string, ev FlightEvent) {
	if f == nil {
		return
	}
	if ev.TimeNs == 0 {
		ev.TimeNs = time.Now().UnixNano()
	}
	f.stripe(ev.Shard).record(ev)
	f.fire(reason, ev)
}

func (f *Flight) fire(reason string, ev FlightEvent) {
	fn := f.trigger.Load()
	if fn == nil {
		return
	}
	last := f.lastTrigNs.Load()
	if ev.TimeNs-last < f.trigMinGap || !f.lastTrigNs.CompareAndSwap(last, ev.TimeNs) {
		f.suppressed.Add(1)
		return
	}
	f.triggers.Add(1)
	(*fn)(reason, ev)
}

// Dump merges every stripe's live events into one time-sorted slice —
// the body of GET /debug/flight.
func (f *Flight) Dump() []FlightEvent {
	if f == nil {
		return nil
	}
	var out []FlightEvent
	for i := range f.stripes {
		out = f.stripes[i].snapshot(out)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].TimeNs < out[j].TimeNs })
	return out
}

// FlightStats is the recorder's own accounting.
type FlightStats struct {
	Stripes   int    `json:"stripes"`
	Depth     int    `json:"depth"`
	Recorded  uint64 `json:"recorded"`  // events ever recorded (held + overwritten)
	Held      int    `json:"held"`      // events currently in the rings
	Triggers  uint64 `json:"triggers"`  // dump hook firings
	Throttled uint64 `json:"throttled"` // trigger conditions suppressed by the rate limit
}

// Stats returns the recorder's accounting.
func (f *Flight) Stats() FlightStats {
	if f == nil {
		return FlightStats{}
	}
	st := FlightStats{
		Stripes:   len(f.stripes),
		Triggers:  f.triggers.Load(),
		Throttled: f.suppressed.Load(),
	}
	if len(f.stripes) > 0 {
		st.Depth = len(f.stripes[0].buf)
	}
	for i := range f.stripes {
		s := &f.stripes[i]
		s.mu.Lock()
		st.Recorded += s.seen
		st.Held += s.n
		s.mu.Unlock()
	}
	return st
}
