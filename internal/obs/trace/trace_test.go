package trace

import (
	"sync"
	"testing"
	"time"
)

func TestNilTracerAndSpanAreInert(t *testing.T) {
	var tr *Tracer
	if sp := tr.Start(); sp != nil {
		t.Fatal("nil tracer started a span")
	}
	if id := tr.StartID(); id != "" {
		t.Fatalf("nil tracer StartID = %q", id)
	}
	if sp := tr.Adopt("deadbeefdeadbeef"); sp != nil {
		t.Fatal("nil tracer adopted a span")
	}
	tr.Observe(StageDistill, time.Millisecond)
	if snap := tr.Snapshot(); snap != nil {
		t.Fatal("nil tracer snapshot non-nil")
	}

	var sp *Span
	sp.Stamp(StageIngest)
	sp.Hold()
	sp.Finish()
	if sp.ID() != "" {
		t.Fatal("nil span has an ID")
	}
}

func TestHeadSampling(t *testing.T) {
	tr := NewTracer(4)
	var sampled int
	for i := 0; i < 400; i++ {
		if sp := tr.Start(); sp != nil {
			sampled++
			sp.Finish()
		}
	}
	if sampled != 100 {
		t.Fatalf("sample-every-4 over 400 starts: got %d spans, want 100", sampled)
	}
	st := tr.Stats()
	if st.Started != 100 || st.Finished != 100 {
		t.Fatalf("stats = %+v, want started=finished=100", st)
	}

	off := NewTracer(0)
	for i := 0; i < 100; i++ {
		if sp := off.Start(); sp != nil {
			t.Fatal("sample=0 tracer started a span")
		}
	}
	// Adoption ignores the local sampling rate: the head decision was
	// made upstream.
	if sp := off.Adopt("00000000000000aa"); sp == nil {
		t.Fatal("sample=0 tracer refused to adopt")
	} else {
		sp.Finish()
	}
}

func TestSpanStampsFeedStageHistograms(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.Start()
	if sp == nil {
		t.Fatal("sample=1 did not sample")
	}
	id := sp.ID()
	if len(id) != 16 {
		t.Fatalf("trace ID %q not 16 hex digits", id)
	}
	sp.Stamp(StageIngest)
	sp.Stamp(StageEnqueue)
	sp.Stamp(StageMatch)
	sp.Finish()

	snap := tr.Snapshot()
	byStage := map[string]StageSnapshot{}
	for _, s := range snap {
		byStage[s.Stage] = s
	}
	// Ingest has no predecessor stamp → no delta; enqueue and match each
	// record one.
	if got := byStage["ingest"].Count; got != 0 {
		t.Fatalf("ingest count = %d, want 0 (origin stage has no delta)", got)
	}
	if got := byStage["enqueue"].Count; got != 1 {
		t.Fatalf("enqueue count = %d, want 1", got)
	}
	if got := byStage["match"].Count; got != 1 {
		t.Fatalf("match count = %d, want 1", got)
	}
	// Skipped stages stay empty.
	if got := byStage["rate_limit"].Count; got != 0 {
		t.Fatalf("rate_limit count = %d, want 0", got)
	}
}

func TestHoldKeepsSpanAliveAcrossGoroutines(t *testing.T) {
	tr := NewTracer(1)
	sp := tr.Start()
	sp.Stamp(StageIngest)
	sp.Hold()

	done := make(chan struct{})
	go func() {
		sp.Stamp(StageReservoir)
		sp.Finish()
		close(done)
	}()
	sp.Finish()
	<-done

	if st := tr.Stats(); st.Finished != 1 {
		t.Fatalf("finished = %d, want exactly 1 flush for a held span", st.Finished)
	}
}

func TestObserveFeedsEpochStages(t *testing.T) {
	tr := NewTracer(1)
	tr.Observe(StageDistill, 5*time.Millisecond)
	tr.Observe(StagePublish, 2*time.Millisecond)
	tr.Observe(StageReloadApply, time.Millisecond)
	tr.Observe(StageDistill, -time.Second) // negative: dropped

	for _, s := range tr.Snapshot() {
		switch s.Stage {
		case "distill", "publish", "reload_apply":
			if s.Count != 1 {
				t.Fatalf("%s count = %d, want 1", s.Stage, s.Count)
			}
			if s.SumSeconds <= 0 {
				t.Fatalf("%s sum = %v, want > 0", s.Stage, s.SumSeconds)
			}
		}
	}
}

func TestTraceIDsDistinctAndStable(t *testing.T) {
	tr := NewTracer(1)
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		sp := tr.Start()
		id := sp.ID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
		sp.Finish()
	}
	if got := FormatID(0); got != "0000000000000000" {
		t.Fatalf("FormatID(0) = %q", got)
	}
	if got := FormatID(0xdeadbeef); got != "00000000deadbeef" {
		t.Fatalf("FormatID(0xdeadbeef) = %q", got)
	}
}

func TestTracerConcurrency(t *testing.T) {
	tr := NewTracer(2)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				sp := tr.Start()
				sp.Stamp(StageIngest)
				sp.Stamp(StageMatch)
				sp.Finish()
			}
		}()
	}
	wg.Wait()
	st := tr.Stats()
	if st.Started != 2000 || st.Finished != 2000 {
		t.Fatalf("stats = %+v, want 2000 started and finished", st)
	}
}

func TestFlightRecordAndDump(t *testing.T) {
	f := NewFlight(2, 8)
	f.Record(FlightEvent{Kind: KindReloadIssue, Shard: -1, Value: 3})
	f.Record(FlightEvent{Kind: KindBatchTarget, Shard: 0, Value: 16})
	f.Record(FlightEvent{Kind: KindBatchTarget, Shard: 1, Value: 32})

	dump := f.Dump()
	if len(dump) != 3 {
		t.Fatalf("dump holds %d events, want 3", len(dump))
	}
	for i := 1; i < len(dump); i++ {
		if dump[i].TimeNs < dump[i-1].TimeNs {
			t.Fatal("dump not time-sorted")
		}
	}
	st := f.Stats()
	if st.Recorded != 3 || st.Held != 3 {
		t.Fatalf("stats = %+v, want recorded=held=3", st)
	}
}

func TestFlightRingOverwritesOldest(t *testing.T) {
	f := NewFlight(0, 4)
	for i := 0; i < 10; i++ {
		f.Record(FlightEvent{Kind: KindDrop, Shard: -1, Value: int64(i)})
	}
	dump := f.Dump()
	if len(dump) != 4 {
		t.Fatalf("ring holds %d, want 4", len(dump))
	}
	if dump[0].Value != 6 || dump[3].Value != 9 {
		t.Fatalf("ring kept values %d..%d, want 6..9", dump[0].Value, dump[3].Value)
	}
}

func TestFlightDropBurstTrigger(t *testing.T) {
	f := NewFlight(1, 512)
	var mu sync.Mutex
	var reasons []string
	f.SetTrigger(func(reason string, ev FlightEvent) {
		mu.Lock()
		reasons = append(reasons, reason)
		mu.Unlock()
	})
	for i := 0; i < int(flightBurstThresh)+16; i++ {
		f.RecordDrop(0, "")
	}
	mu.Lock()
	defer mu.Unlock()
	if len(reasons) != 1 || reasons[0] != "drop_burst" {
		t.Fatalf("trigger fired %v, want exactly one drop_burst", reasons)
	}
	// The burst event itself landed in the ring.
	var bursts int
	for _, ev := range f.Dump() {
		if ev.Kind == KindDropBurst {
			bursts++
		}
	}
	if bursts != 1 {
		t.Fatalf("dump holds %d drop_burst events, want 1", bursts)
	}
}

func TestFlightTriggerRateLimit(t *testing.T) {
	f := NewFlight(0, 8)
	var fired int
	var mu sync.Mutex
	f.SetTrigger(func(string, FlightEvent) { mu.Lock(); fired++; mu.Unlock() })
	for i := 0; i < 5; i++ {
		f.Trigger("sink_stall", FlightEvent{Kind: KindSinkStall, Shard: -1})
	}
	mu.Lock()
	defer mu.Unlock()
	if fired != 1 {
		t.Fatalf("trigger fired %d times inside one rate window, want 1", fired)
	}
	if st := f.Stats(); st.Throttled != 4 {
		t.Fatalf("throttled = %d, want 4", st.Throttled)
	}
}

func TestNilFlightIsInert(t *testing.T) {
	var f *Flight
	f.Record(FlightEvent{Kind: KindDrop})
	f.RecordDrop(0, "")
	f.Trigger("x", FlightEvent{})
	f.SetTrigger(func(string, FlightEvent) {})
	if d := f.Dump(); d != nil {
		t.Fatal("nil flight dumped events")
	}
	if st := f.Stats(); st.Recorded != 0 {
		t.Fatal("nil flight recorded")
	}
}
