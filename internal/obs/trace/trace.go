// Package trace is the pipeline's sampling tracer and always-on flight
// recorder, built on the standard library alone and importable from the
// hottest packages (httpmodel, engine) without touching the obs parent:
// obs imports engine for its snapshot adapters, so the trace layer must
// sit below both.
//
// A Span follows one packet through the pipeline's stages — ingest,
// rate-limit, ring enqueue, shard drain, match, sink delivery, and (for
// misses that feed generation) reservoir admission and cluster epoch —
// as a fixed array of nanosecond stamps. Spans are head-sampled: Start
// returns nil for unsampled packets, so the streaming hot path pays one
// nil check per stamp point and allocates nothing. Sampled spans recycle
// through a sync.Pool, and finishing one folds its consecutive stage
// deltas into per-stage atomic histograms (the leaksig_stage_seconds
// families the obs adapter exposes).
//
// Trace identity crosses process boundaries as a 16-hex-digit ID: it
// rides packet NDJSON as the "trace" field, publish bodies as the
// signature set's "traces" provenance, and HTTP hops as the
// X-Leaksig-Trace header. Adopt continues a trace started elsewhere, so
// one ID covers "leak seen → signature published → engine reloaded"
// across leakstream, siggend, sigserver, and every watching engine.
//
// Stages whose unit of work is an epoch rather than a packet (distill,
// publish, reload apply) feed their histograms directly through Observe.
package trace

import (
	"sync"
	"sync/atomic"
	"time"
)

// Stage names one pipeline station a span can stamp.
type Stage uint8

const (
	// StageIngest is decode+validate at the daemon edge (trace origin).
	StageIngest Stage = iota
	// StageRateLimit is the per-tenant intake limiter decision.
	StageRateLimit
	// StageEnqueue is publication into the shard's MPSC ring.
	StageEnqueue
	// StageDrain is the worker pulling the packet out of its ring.
	StageDrain
	// StageMatch is the automaton match against the live compiled set.
	StageMatch
	// StageSink is verdict delivery to the engine's bound sink.
	StageSink
	// StageReservoir is admission into a learner tenant reservoir.
	StageReservoir
	// StageCluster is the epoch feeding the sample into the rolling
	// clusterer (the span's last per-packet station; the learner retains
	// only the trace ID beyond it).
	StageCluster
	// StageDistill is one epoch's candidate distillation (fed via Observe).
	StageDistill
	// StagePublish is one publisher round trip (fed via Observe).
	StagePublish
	// StageReloadApply is a watcher applying a published set (fed via
	// Observe, and stamped on adopted spans for flight visibility).
	StageReloadApply

	numStages
)

var stageNames = [numStages]string{
	"ingest", "rate_limit", "enqueue", "drain", "match", "sink",
	"reservoir", "cluster", "distill", "publish", "reload_apply",
}

// String returns the stable exposition name of the stage — these are the
// `stage` label values of leaksig_stage_seconds.
func (s Stage) String() string {
	if int(s) < len(stageNames) {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage in pipeline order.
func Stages() []Stage {
	out := make([]Stage, numStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// histBucketCount and the bounds below cover six orders of magnitude:
// sub-microsecond ring hops up to multi-minute miss-to-publish epochs.
const histBucketCount = 14

var histBounds = func() [histBucketCount]float64 {
	var b [histBucketCount]float64
	v := 1e-6 // 1µs
	for i := range b {
		b[i] = v
		v *= 4 // ..., 1µs, 4µs, ..., ~67s, ~268s
	}
	return b
}()

// stageHist is one stage's fixed-bucket latency histogram. All fields are
// atomics, so sampled-span finishes on shard workers never contend with
// scrapes.
type stageHist struct {
	counts [histBucketCount]atomic.Uint64
	count  atomic.Uint64
	sumNs  atomic.Int64
}

func (h *stageHist) observe(ns int64) {
	sec := float64(ns) / 1e9
	for i := 0; i < histBucketCount; i++ {
		if sec <= histBounds[i] {
			h.counts[i].Add(1)
			break
		}
	}
	h.count.Add(1)
	h.sumNs.Add(ns)
}

// Span is one sampled packet's journey: a trace ID plus one nanosecond
// stamp per stage. The zero stages are "never reached". Spans are pooled;
// ownership is reference counted — Start/Adopt hand the caller one
// reference, Hold takes another for a consumer that outlives the caller
// (the learner intake), and the last Finish folds the stage deltas into
// the tracer's histograms and recycles the span. A nil *Span is valid
// everywhere and does nothing, which is what the unsampled path costs.
type Span struct {
	tr     *Tracer
	id     string
	stamps [numStages]int64
	refs   atomic.Int32
}

// ID returns the 16-hex-digit trace ID ("" for a nil span).
func (sp *Span) ID() string {
	if sp == nil {
		return ""
	}
	return sp.id
}

// Stamp records "stage happened now". Stamping the same stage twice keeps
// the later time.
func (sp *Span) Stamp(st Stage) {
	if sp == nil {
		return
	}
	sp.stamps[st] = time.Now().UnixNano()
}

// Hold takes an extra reference for a consumer on another goroutine (the
// learner intake holds the span across its channel hop); pair it with
// Finish.
func (sp *Span) Hold() {
	if sp != nil {
		sp.refs.Add(1)
	}
}

// Finish releases one reference; the last release flushes the stage
// deltas into the tracer's histograms and recycles the span. The span
// must not be touched after the caller's final Finish.
func (sp *Span) Finish() {
	if sp == nil {
		return
	}
	if sp.refs.Add(-1) > 0 {
		return
	}
	sp.tr.flush(sp)
}

// Tracer is the per-process tracing state: the head-sampling decision,
// the span pool, and the per-stage latency histograms. A nil *Tracer is
// valid everywhere and disables everything. Construct with NewTracer; all
// methods are safe for concurrent use.
type Tracer struct {
	every uint64 // head-sample 1-in-N; 0 means Start never samples
	ctr   atomic.Uint64
	seq   atomic.Uint64

	started  atomic.Uint64
	adopted  atomic.Uint64
	finished atomic.Uint64

	pool  sync.Pool
	hists [numStages]stageHist
}

// NewTracer builds a tracer head-sampling one packet in sampleEvery
// (1 samples everything; 0 or negative starts no new traces, but Adopt
// and Observe still work, so a downstream daemon with sampling off keeps
// honoring traces its upstream started).
func NewTracer(sampleEvery int) *Tracer {
	t := &Tracer{}
	if sampleEvery > 0 {
		t.every = uint64(sampleEvery)
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// get readies a pooled span with one reference and no stamps.
func (t *Tracer) get() *Span {
	sp := t.pool.Get().(*Span)
	sp.tr = t
	for i := range sp.stamps {
		sp.stamps[i] = 0
	}
	sp.refs.Store(1)
	return sp
}

// Start makes the head-sampling decision for one new unit of work and
// returns a live span (with a fresh trace ID) for the sampled ones, nil
// for the rest. The unsampled path costs one atomic add.
func (t *Tracer) Start() *Span {
	if t == nil || t.every == 0 {
		return nil
	}
	if t.ctr.Add(1)%t.every != 0 {
		return nil
	}
	sp := t.get()
	sp.id = FormatID(splitmix64(t.seq.Add(1)))
	t.started.Add(1)
	return sp
}

// StartID is Start for fire-and-forget propagation: it makes the same
// sampling decision but returns only a trace ID ("" when unsampled),
// for emitters that stamp no stages of their own (the flowproxy miss
// forwarder tags outbound packets and moves on).
func (t *Tracer) StartID() string {
	if t == nil || t.every == 0 {
		return ""
	}
	if t.ctr.Add(1)%t.every != 0 {
		return ""
	}
	t.started.Add(1)
	return FormatID(splitmix64(t.seq.Add(1)))
}

// Adopt continues a trace started in another process under the given ID.
// It ignores the sampling rate — the head decision was made upstream —
// and returns nil only for a nil tracer or empty ID.
func (t *Tracer) Adopt(id string) *Span {
	if t == nil || id == "" {
		return nil
	}
	sp := t.get()
	sp.id = id
	t.adopted.Add(1)
	return sp
}

// Observe feeds one duration straight into a stage's histogram — the
// route for epoch-granular stages (distill, publish, reload apply) whose
// unit of work is not a single packet.
func (t *Tracer) Observe(st Stage, d time.Duration) {
	if t == nil || d < 0 || st >= numStages {
		return
	}
	t.hists[st].observe(int64(d))
}

// flush folds a finished span's consecutive stage deltas into the stage
// histograms: each stamped stage records the time since the previous
// stamped stage, so a cross-process span contributes exactly the stages
// its process ran.
func (t *Tracer) flush(sp *Span) {
	var last int64
	for st := Stage(0); st < numStages; st++ {
		ns := sp.stamps[st]
		if ns == 0 {
			continue
		}
		if last != 0 && ns >= last {
			t.hists[st].observe(ns - last)
		}
		last = ns
	}
	t.finished.Add(1)
	sp.id = ""
	t.pool.Put(sp)
}

// StageSnapshot is one stage's histogram at a point in time, shaped for
// Prometheus exposition: Counts[i] observations fell in
// (Bounds[i-1], Bounds[i]] (non-cumulative), Count and SumSeconds cover
// everything including the implicit +Inf bucket.
type StageSnapshot struct {
	Stage      string
	Count      uint64
	SumSeconds float64
	Bounds     []float64
	Counts     []uint64
}

// TracerStats is the tracer's own accounting.
type TracerStats struct {
	SampleEvery uint64 `json:"sample_every"` // 0 = not starting new traces
	Started     uint64 `json:"started"`      // spans head-sampled here
	Adopted     uint64 `json:"adopted"`      // spans continued from upstream
	Finished    uint64 `json:"finished"`     // spans flushed into the histograms
}

// Stats returns the tracer's accounting counters.
func (t *Tracer) Stats() TracerStats {
	if t == nil {
		return TracerStats{}
	}
	return TracerStats{
		SampleEvery: t.every,
		Started:     t.started.Load(),
		Adopted:     t.adopted.Load(),
		Finished:    t.finished.Load(),
	}
}

// Snapshot returns every stage's histogram in pipeline order — the feed
// behind the leaksig_stage_seconds exposition. The stage set is fixed, so
// the series catalog is stable from the first scrape.
func (t *Tracer) Snapshot() []StageSnapshot {
	if t == nil {
		return nil
	}
	out := make([]StageSnapshot, numStages)
	for st := Stage(0); st < numStages; st++ {
		h := &t.hists[st]
		s := StageSnapshot{
			Stage:      st.String(),
			Count:      h.count.Load(),
			SumSeconds: float64(h.sumNs.Load()) / 1e9,
			Bounds:     histBounds[:],
			Counts:     make([]uint64, histBucketCount),
		}
		for i := 0; i < histBucketCount; i++ {
			s.Counts[i] = h.counts[i].Load()
		}
		out[st] = s
	}
	return out
}

// splitmix64 is the SplitMix64 finalizer: a cheap bijection turning the
// sequential span counter into well-spread trace IDs without any global
// RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

const hexDigits = "0123456789abcdef"

// FormatID renders a trace ID in its canonical 16-hex-digit form.
func FormatID(v uint64) string {
	var b [16]byte
	for i := 15; i >= 0; i-- {
		b[i] = hexDigits[v&0xf]
		v >>= 4
	}
	return string(b[:])
}
