package obs

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"

	"leaksig/internal/resilience"
)

// collectSink records delivered batches.
type collectSink struct {
	mu      sync.Mutex
	batches [][]byte
}

func (c *collectSink) sink(_ context.Context, batch []byte) error {
	c.mu.Lock()
	c.batches = append(c.batches, append([]byte(nil), batch...))
	c.mu.Unlock()
	return nil
}

func (c *collectSink) events(t *testing.T) []Event {
	t.Helper()
	c.mu.Lock()
	defer c.mu.Unlock()
	var out []Event
	for _, b := range c.batches {
		sc := bufio.NewScanner(bytes.NewReader(b))
		for sc.Scan() {
			var ev Event
			if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
				t.Fatalf("bad NDJSON line %q: %v", sc.Text(), err)
			}
			out = append(out, ev)
		}
	}
	return out
}

func TestShipperDeliversNDJSON(t *testing.T) {
	var cs collectSink
	s := NewShipper(ShipperConfig{
		Sink:          cs.sink,
		Node:          "testd",
		FlushEvents:   4,
		FlushInterval: 10 * time.Millisecond,
	})
	for i := 0; i < 10; i++ {
		if !s.Ship(Event{Type: "verdict", Tenant: "app.a", Matched: []int{i}}) {
			t.Fatalf("Ship %d rejected", i)
		}
	}
	s.Close()

	evs := cs.events(t)
	if len(evs) != 10 {
		t.Fatalf("delivered %d events, want 10", len(evs))
	}
	for _, ev := range evs {
		if ev.Node != "testd" || ev.Type != "verdict" || ev.Tenant != "app.a" {
			t.Fatalf("event fields not stamped: %+v", ev)
		}
		if ev.Time.IsZero() {
			t.Fatal("event time not stamped")
		}
	}
	st := s.Stats()
	if st.Shipped != 10 || st.DroppedBuffer != 0 || st.DroppedUpload != 0 {
		t.Fatalf("stats = %+v, want 10 shipped and no drops", st)
	}
}

// TestShipperNeverBlocksOnStalledSink is the ops-plane invariant: with
// the consumer wedged, producers keep shipping at full speed, overflow
// is dropped and counted, and nothing deadlocks. Run under -race in CI.
func TestShipperNeverBlocksOnStalledSink(t *testing.T) {
	release := make(chan struct{})
	var delivered sync.WaitGroup
	delivered.Add(1)
	var once sync.Once
	s := NewShipper(ShipperConfig{
		Sink: func(ctx context.Context, _ []byte) error {
			once.Do(delivered.Done)
			<-release // wedged until the test releases it
			return nil
		},
		BufferEvents:  64,
		FlushEvents:   8,
		FlushInterval: time.Millisecond,
		MaxAttempts:   1,
	})
	// LIFO: release the sink first, then Close can drain.
	defer s.Close()
	defer close(release)

	// Concurrent producers hammer the shipper while the sink is wedged.
	const producers, perProducer = 8, 200
	start := time.Now()
	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				s.Ship(Event{Type: "verdict", Tenant: "t", Version: int64(p*perProducer + i)})
			}
		}(p)
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("producers took %v with a stalled sink; Ship must not block", elapsed)
	}

	delivered.Wait() // the wedged delivery is in flight — the buffer bound is now hard
	st := s.Stats()
	total := st.Shipped + st.DroppedBuffer + st.DroppedUpload + uint64(st.Buffered)
	// The in-flight batch (taken from the ring, not yet counted anywhere)
	// accounts for at most FlushEvents of slack.
	if want := uint64(producers * perProducer); total > want || total+8 < want {
		t.Fatalf("accounting leak: shipped=%d dropBuf=%d dropUp=%d buffered=%d, want ~%d total",
			st.Shipped, st.DroppedBuffer, st.DroppedUpload, st.Buffered, want)
	}
	if st.DroppedBuffer == 0 {
		t.Fatal("expected buffer-overflow drops with a stalled sink and 1600 events into a 64-event ring")
	}
	if st.Buffered > 64 {
		t.Fatalf("buffered=%d exceeds the 64-event bound", st.Buffered)
	}
}

func TestShipperRetriesThenDrops(t *testing.T) {
	var mu sync.Mutex
	attempts := 0
	s := NewShipper(ShipperConfig{
		Sink: func(context.Context, []byte) error {
			mu.Lock()
			attempts++
			mu.Unlock()
			return context.DeadlineExceeded
		},
		FlushEvents:   1,
		FlushInterval: time.Millisecond,
		RetryMin:      time.Millisecond,
		RetryMax:      2 * time.Millisecond,
		MaxAttempts:   3,
	})
	s.Ship(Event{Type: "publish"})
	deadline := time.Now().Add(5 * time.Second)
	for {
		st := s.Stats()
		if st.DroppedUpload == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch never abandoned: %+v", st)
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	mu.Lock()
	defer mu.Unlock()
	if attempts < 3 {
		t.Fatalf("sink saw %d attempts, want >= 3 (MaxAttempts)", attempts)
	}
	if st := s.Stats(); st.UploadFailures < 3 {
		t.Fatalf("upload failures = %d, want >= 3", st.UploadFailures)
	}
}

// TestShipperFlushesPendingOnClose: events below the size trigger and
// ahead of the interval must still reach the sink when the shipper is
// closed — SIGTERM must not silently abandon the tail of the stream.
func TestShipperFlushesPendingOnClose(t *testing.T) {
	var cs collectSink
	s := NewShipper(ShipperConfig{
		Sink:          cs.sink,
		FlushEvents:   256,       // never reached
		FlushInterval: time.Hour, // never fires
	})
	for i := 0; i < 5; i++ {
		s.Ship(Event{Type: "verdict", Version: int64(i)})
	}
	s.Close()
	if evs := cs.events(t); len(evs) != 5 {
		t.Fatalf("final flush delivered %d events, want 5", len(evs))
	}
	if st := s.Stats(); st.Shipped != 5 || st.DroppedUpload != 0 || st.Buffered != 0 {
		t.Fatalf("stats after close = %+v, want 5 shipped, nothing dropped or buffered", st)
	}
}

// TestShipperCountsFinalFlushFailureAsDropped: when the sink is dead at
// shutdown, the final single-attempt flush gives up and the loss is
// visible in dropped_upload rather than vanishing.
func TestShipperCountsFinalFlushFailureAsDropped(t *testing.T) {
	s := NewShipper(ShipperConfig{
		Sink: func(context.Context, []byte) error {
			return context.DeadlineExceeded
		},
		FlushEvents:   256,
		FlushInterval: time.Hour,
	})
	for i := 0; i < 7; i++ {
		s.Ship(Event{Type: "verdict", Version: int64(i)})
	}
	s.Close()
	st := s.Stats()
	if st.DroppedUpload != 7 {
		t.Fatalf("dropped_upload = %d after failed final flush, want 7 (stats %+v)", st.DroppedUpload, st)
	}
	if st.Shipped != 0 || st.Buffered != 0 {
		t.Fatalf("stats after failed final flush = %+v, want nothing shipped or buffered", st)
	}
}

// TestShipperBreakerShedsAfterConsecutiveFailures: with a breaker
// configured, a consistently failing sink opens it and later batches are
// shed (counted dropped) without dialing.
func TestShipperBreakerShedsAfterConsecutiveFailures(t *testing.T) {
	var mu sync.Mutex
	dials := 0
	clk := time.Unix(1000, 0)
	br := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 2,
		OpenFor:          time.Hour,
		Clock:            func() time.Time { return clk },
	})
	s := NewShipper(ShipperConfig{
		Sink: func(context.Context, []byte) error {
			mu.Lock()
			dials++
			mu.Unlock()
			return context.DeadlineExceeded
		},
		Breaker:       br,
		FlushEvents:   1,
		FlushInterval: time.Millisecond,
		RetryMin:      time.Millisecond,
		RetryMax:      time.Millisecond,
		MaxAttempts:   1,
	})
	for i := 0; i < 10; i++ {
		s.Ship(Event{Type: "verdict", Version: int64(i)})
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.DroppedUpload >= 10 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("batches not drained: %+v", s.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	s.Close()
	if got := br.State(); got != resilience.Open {
		t.Fatalf("breaker state = %v, want open", got)
	}
	mu.Lock()
	defer mu.Unlock()
	if dials > 2 {
		t.Fatalf("sink dialed %d times with threshold 2; open breaker must shed", dials)
	}
	if st := s.Stats(); st.UploadFailures < 10 {
		t.Fatalf("shed attempts not accounted as failures: %+v", st)
	}
}

func TestShipperCollectFamilies(t *testing.T) {
	var cs collectSink
	s := NewShipper(ShipperConfig{Sink: cs.sink, FlushInterval: time.Millisecond})
	s.Ship(Event{Type: "x"})
	s.Close()
	reg := NewRegistry()
	reg.Register(s)
	out := reg.Expose()
	for _, fam := range []string{
		"leaksig_events_shipped_total",
		`leaksig_events_dropped_total{reason="buffer_full"}`,
		`leaksig_events_dropped_total{reason="upload_abandoned"}`,
		"leaksig_events_buffered",
		"leaksig_events_flush_seconds_count",
	} {
		if !strings.Contains(out, fam) {
			t.Errorf("scrape missing %s:\n%s", fam, out)
		}
	}
}
