// Package obs is the fleet's observability substrate: Prometheus
// text-format exposition, structured event shipping, and per-tenant
// intake accounting, built on the standard library alone so every daemon
// can afford to link it.
//
// The package deliberately splits instrumentation into two postures:
//
//   - Stateful instruments (Counter, Gauge, Histogram and their labeled
//     vector forms) for code that counts as it goes — the event shipper's
//     drop accounting, the intake rate limiter's per-tenant tallies.
//   - Snapshot collectors (Collector / CollectorFunc) for subsystems that
//     already keep rich internal snapshots — engine.Snapshot,
//     engine.PoolSnapshot, siggen.Stats, sigserver.ServerStats — which a
//     scrape projects into metric families at read time. The hot paths
//     stay untouched: nothing in the match loop knows this package
//     exists.
//
// A Registry aggregates both and serves GET /metrics in the Prometheus
// text exposition format (version 0.0.4). Label cardinality is the
// operator's contract: the only unbounded-looking label is `tenant`, and
// every emitter bounds it by construction (pool MaxTenants, limiter
// table size, learner reservoir caps) — see ARCHITECTURE.md
// "Observability".
package obs

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Label is one name="value" pair on a sample.
type Label struct {
	Name  string
	Value string
}

// L is shorthand for constructing a Label.
func L(name, value string) Label { return Label{Name: name, Value: value} }

// kind is a metric family's TYPE line.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// sample is one exposition line: a metric name (already including any
// _bucket/_sum/_count suffix), its labels, and the value.
type sample struct {
	name   string
	labels []Label
	value  float64
}

// family groups every sample sharing one metric name under one HELP/TYPE
// header, as the exposition format requires.
type family struct {
	name    string
	help    string
	kind    kind
	samples []sample
}

// MetricWriter accumulates samples during one collection pass and
// renders them grouped by family. Collectors receive one per scrape; it
// is not safe for concurrent use (each scrape drives collectors
// sequentially).
type MetricWriter struct {
	order    []string
	families map[string]*family
}

func newMetricWriter() *MetricWriter {
	return &MetricWriter{families: make(map[string]*family)}
}

func (m *MetricWriter) familyFor(name, help string, k kind) *family {
	f := m.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: k}
		m.families[name] = f
		m.order = append(m.order, name)
	}
	return f
}

// Counter emits one counter sample. Counters must be cumulative and
// monotonically non-decreasing; by convention their names end in _total.
func (m *MetricWriter) Counter(name, help string, v float64, labels ...Label) {
	f := m.familyFor(name, help, kindCounter)
	f.samples = append(f.samples, sample{name: name, labels: labels, value: v})
}

// Gauge emits one gauge sample — a value that can go up and down.
func (m *MetricWriter) Gauge(name, help string, v float64, labels ...Label) {
	f := m.familyFor(name, help, kindGauge)
	f.samples = append(f.samples, sample{name: name, labels: labels, value: v})
}

// Histogram emits one full fixed-bucket histogram: counts[i] is the
// number of observations in (-inf, buckets[i]]; count and sum cover all
// observations (the implicit +Inf bucket equals count).
func (m *MetricWriter) Histogram(name, help string, buckets []float64, counts []uint64, count uint64, sum float64, labels ...Label) {
	f := m.familyFor(name, help, kindHistogram)
	cum := uint64(0)
	for i, le := range buckets {
		cum += counts[i]
		ls := append(append([]Label{}, labels...), L("le", formatFloat(le)))
		f.samples = append(f.samples, sample{name: name + "_bucket", labels: ls, value: float64(cum)})
	}
	inf := append(append([]Label{}, labels...), L("le", "+Inf"))
	f.samples = append(f.samples, sample{name: name + "_bucket", labels: inf, value: float64(count)})
	f.samples = append(f.samples, sample{name: name + "_sum", labels: labels, value: sum})
	f.samples = append(f.samples, sample{name: name + "_count", labels: labels, value: float64(count)})
}

// render writes the accumulated families in first-seen order.
func (m *MetricWriter) render(sb *strings.Builder) {
	for _, name := range m.order {
		f := m.families[name]
		sb.WriteString("# HELP ")
		sb.WriteString(f.name)
		sb.WriteByte(' ')
		sb.WriteString(escapeHelp(f.help))
		sb.WriteByte('\n')
		sb.WriteString("# TYPE ")
		sb.WriteString(f.name)
		sb.WriteByte(' ')
		sb.WriteString(string(f.kind))
		sb.WriteByte('\n')
		for _, s := range f.samples {
			sb.WriteString(s.name)
			if len(s.labels) > 0 {
				sb.WriteByte('{')
				for i, l := range s.labels {
					if i > 0 {
						sb.WriteByte(',')
					}
					sb.WriteString(l.Name)
					sb.WriteString(`="`)
					sb.WriteString(escapeLabel(l.Value))
					sb.WriteByte('"')
				}
				sb.WriteByte('}')
			}
			sb.WriteByte(' ')
			sb.WriteString(formatFloat(s.value))
			sb.WriteByte('\n')
		}
	}
}

// formatFloat renders a value the way Prometheus expects: shortest
// round-trip form, with +Inf/-Inf/NaN spelled out.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

var labelEscaper = strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
var helpEscaper = strings.NewReplacer(`\`, `\\`, "\n", `\n`)

func escapeLabel(s string) string { return labelEscaper.Replace(s) }
func escapeHelp(s string) string  { return helpEscaper.Replace(s) }

// Collector contributes samples to one scrape.
type Collector interface {
	Collect(m *MetricWriter)
}

// CollectorFunc adapts a function to Collector.
type CollectorFunc func(m *MetricWriter)

// Collect implements Collector.
func (f CollectorFunc) Collect(m *MetricWriter) { f(m) }

// Registry aggregates collectors and serves them as one exposition
// document. The zero value is unusable; construct with NewRegistry. All
// methods are safe for concurrent use; collectors run sequentially per
// scrape on the scraping goroutine.
type Registry struct {
	mu         sync.RWMutex
	collectors []Collector
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry { return &Registry{} }

// Register adds a collector to every future scrape. Collectors emitting
// the same family name must agree on its type and help; the first
// registration wins the header.
func (r *Registry) Register(c Collector) {
	r.mu.Lock()
	r.collectors = append(r.collectors, c)
	r.mu.Unlock()
}

// Expose renders one scrape in the Prometheus text format.
func (r *Registry) Expose() string {
	r.mu.RLock()
	cs := append([]Collector(nil), r.collectors...)
	r.mu.RUnlock()
	m := newMetricWriter()
	for _, c := range cs {
		c.Collect(m)
	}
	var sb strings.Builder
	m.render(&sb)
	return sb.String()
}

// Handler serves GET /metrics scrapes of this registry.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet && req.Method != http.MethodHead {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		body := r.Expose()
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		w.Header().Set("Cache-Control", "no-store")
		fmt.Fprint(w, body)
	})
}

// Counter is a monotonically increasing cumulative count. The zero value
// is usable; all methods are safe for concurrent use.
type Counter struct {
	n atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.n.Add(1) }

// Add adds n (which must be non-negative; counters never decrease).
func (c *Counter) Add(n uint64) { c.n.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.n.Load() }

// Gauge is a value that may go up and down. The zero value is usable;
// all methods are safe for concurrent use.
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Add adjusts the gauge by delta, retrying on concurrent writers.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Histogram counts observations into fixed buckets chosen at
// construction. Construct with NewHistogram; all methods are safe for
// concurrent use. Observation is a binary search plus two atomic adds —
// cheap enough for per-batch (not per-packet) paths.
type Histogram struct {
	buckets []float64 // upper bounds, strictly increasing
	counts  []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the running sum
}

// NewHistogram builds a histogram over the given strictly increasing
// upper bounds (the +Inf bucket is implicit).
func NewHistogram(buckets []float64) *Histogram {
	b := append([]float64(nil), buckets...)
	sort.Float64s(b)
	return &Histogram{buckets: b, counts: make([]atomic.Uint64, len(b))}
}

// ExpBuckets returns n bounds growing geometrically from start by factor
// — the usual latency/size ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	out := make([]float64, n)
	v := start
	for i := range out {
		out[i] = v
		v *= factor
	}
	return out
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := sort.SearchFloat64s(h.buckets, v)
	if i < len(h.counts) {
		h.counts[i].Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Write emits the histogram into one collection pass.
func (h *Histogram) Write(m *MetricWriter, name, help string, labels ...Label) {
	counts := make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	m.Histogram(name, help, h.buckets, counts, h.count.Load(), math.Float64frombits(h.sumBits.Load()), labels...)
}

// CounterVec is a family of counters split by one label. Construct with
// NewCounterVec. The table grows one entry per distinct label value;
// callers must bound the values they pass (tenant keys must come from a
// bounded table, never raw traffic).
type CounterVec struct {
	name, help string
	label      string

	mu   sync.Mutex
	byst map[string]*Counter
}

// NewCounterVec builds a labeled counter family.
func NewCounterVec(name, help, label string) *CounterVec {
	return &CounterVec{name: name, help: help, label: label, byst: make(map[string]*Counter)}
}

// With returns the counter for one label value, creating it at zero.
func (v *CounterVec) With(value string) *Counter {
	v.mu.Lock()
	defer v.mu.Unlock()
	c := v.byst[value]
	if c == nil {
		c = &Counter{}
		v.byst[value] = c
	}
	return c
}

// Forget drops one label value's series (used when the labeled entity —
// a tenant — is evicted and its count has been folded into an aggregate).
func (v *CounterVec) Forget(value string) {
	v.mu.Lock()
	delete(v.byst, value)
	v.mu.Unlock()
}

// Collect implements Collector: one sample per live label value, in
// sorted order for a stable exposition.
func (v *CounterVec) Collect(m *MetricWriter) {
	v.mu.Lock()
	keys := make([]string, 0, len(v.byst))
	for k := range v.byst {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	type kv struct {
		k string
		n uint64
	}
	out := make([]kv, len(keys))
	for i, k := range keys {
		out[i] = kv{k, v.byst[k].Value()}
	}
	v.mu.Unlock()
	for _, e := range out {
		m.Counter(v.name, v.help, float64(e.n), L(v.label, e.k))
	}
}
