package obs

import (
	"runtime"
	"runtime/debug"
	"sort"
	"strconv"

	"leaksig/internal/durable"
	"leaksig/internal/engine"
	"leaksig/internal/faultinject"
	"leaksig/internal/obs/trace"
	"leaksig/internal/resilience"
	"leaksig/internal/siggen"
	"leaksig/internal/sigserver"
)

// The adapters in this file project the subsystems' existing internal
// snapshots — engine.Snapshot, engine.PoolSnapshot, siggen.Stats,
// sigserver.ServerStats — into metric families at scrape time. Each
// takes a snapshot function rather than the object itself, so a daemon
// can point one at whatever backend posture it runs (single engine,
// pool, embedded learner) and the subsystems never import obs.

func boolGauge(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// EngineCollector projects one engine's snapshot (and, when shards is
// non-nil, its per-shard breakdown) into the leaksig_engine_* families.
func EngineCollector(snap func() engine.Snapshot, shards func() []engine.ShardStat) Collector {
	return CollectorFunc(func(m *MetricWriter) {
		s := snap()
		writeEngineSnapshot(m, s, nil)
		if shards == nil {
			return
		}
		for i, sh := range shards() {
			shard := L("shard", strconv.Itoa(i))
			m.Counter("leaksig_engine_shard_processed_total", "Packets matched, per worker shard.", float64(sh.Processed), shard)
			m.Counter("leaksig_engine_shard_matched_total", "Leaking packets, per worker shard.", float64(sh.Matched), shard)
			m.Gauge("leaksig_engine_shard_batch_target", "Adaptive drain target, per worker shard.", float64(sh.BatchTarget), shard)
			m.Gauge("leaksig_engine_shard_ring_depth", "Packets occupying the shard's MPSC ring.", float64(sh.RingDepth), shard)
		}
	})
}

// writeEngineSnapshot emits the leaksig_engine_* families for one
// snapshot under the given labels (none for a single engine, a tenant
// label inside a pool).
func writeEngineSnapshot(m *MetricWriter, s engine.Snapshot, labels []Label) {
	m.Counter("leaksig_engine_ingested_total", "Packets accepted by Submit/TrySubmit.", float64(s.Ingested), labels...)
	m.Counter("leaksig_engine_processed_total", "Packets matched and emitted.", float64(s.Processed), labels...)
	m.Counter("leaksig_engine_matched_total", "Processed packets that matched at least one signature.", float64(s.Matched), labels...)
	m.Counter("leaksig_engine_dropped_total", "Packets rejected by TrySubmit under backpressure.", float64(s.Dropped), labels...)
	m.Counter("leaksig_engine_sync_vetted_total", "Packets vetted inline via MatchPacket (proxy path).", float64(s.SyncVetted), labels...)
	m.Counter("leaksig_engine_sync_matched_total", "Inline vets that matched at least one signature.", float64(s.SyncMatched), labels...)
	m.Counter("leaksig_engine_reloads_total", "Signature hot reloads applied since construction.", float64(s.Reloads), labels...)
	m.Gauge("leaksig_engine_reload_generation", "Generation ticket of the live signature set (monotonic; coalesced tickets skip).", float64(s.ReloadGen), labels...)
	m.Gauge("leaksig_engine_reload_pending", "1 while an async reload compile is queued or in flight.", boolGauge(s.PendingReload), labels...)
	m.Gauge("leaksig_engine_reload_last_seconds", "Compile+install wall time of the last applied reload.", s.LastReload.Seconds(), labels...)
	m.Gauge("leaksig_engine_queue_depth", "Packets accepted but not yet processed.", float64(s.QueueDepth), labels...)
	m.Gauge("leaksig_engine_shards", "Worker shard count.", float64(s.Shards), labels...)
	m.Gauge("leaksig_engine_signatures", "Signatures in the live set.", float64(s.Signatures), labels...)
	m.Gauge("leaksig_engine_signature_version", "Live signature-set version.", float64(s.Version), labels...)
	m.Gauge("leaksig_engine_batch_target", "Mean adaptive batch target across shards.", float64(s.BatchTarget), labels...)
	m.Gauge("leaksig_engine_packets_per_second", "Lifetime processed packets per second.", s.PacketsPerSec, labels...)
	m.Gauge("leaksig_engine_match_rate", "Matched / processed, in [0, 1].", s.MatchRate, labels...)
	m.Gauge("leaksig_engine_latency_seconds", "Sampled queue-to-verdict latency quantiles.", s.P50.Seconds(), append(append([]Label{}, labels...), L("quantile", "0.5"))...)
	m.Gauge("leaksig_engine_latency_seconds", "Sampled queue-to-verdict latency quantiles.", s.P99.Seconds(), append(append([]Label{}, labels...), L("quantile", "0.99"))...)
}

// PoolCollector projects a pool snapshot: pool lifecycle gauges, the
// eviction-surviving aggregate as the unlabeled leaksig_engine_*
// families, and each live tenant's engine snapshot under its tenant
// label. Cardinality is bounded by the pool's MaxTenants cap.
func PoolCollector(snap func() engine.PoolSnapshot) Collector {
	return CollectorFunc(func(m *MetricWriter) {
		s := snap()
		m.Gauge("leaksig_pool_tenants", "Live tenants.", float64(s.Tenants))
		m.Counter("leaksig_pool_created_total", "Tenants ever created.", float64(s.Created))
		m.Counter("leaksig_pool_evicted_total", "Tenants evicted (idle, LRU, or explicit).", float64(s.Evicted))
		m.Counter("leaksig_pool_upgraded_total", "Degraded tenants regranted charged shards after budget freed.", float64(s.Upgraded))
		m.Gauge("leaksig_pool_shard_budget", "Configured global shard budget.", float64(s.ShardBudget))
		m.Gauge("leaksig_pool_shards_in_use", "Shards charged by live tenants.", float64(s.ShardsInUse))
		m.Gauge("leaksig_pool_degraded_tenants", "Live tenants running on an uncharged single-shard grant (budget pressure).", float64(s.DegradedTenants))
		writeEngineSnapshot(m, s.Aggregate, nil)
		tenants := make([]string, 0, len(s.PerTenant))
		for k := range s.PerTenant {
			tenants = append(tenants, k)
		}
		sort.Strings(tenants)
		for _, k := range tenants {
			writeEngineSnapshot(m, s.PerTenant[k], []Label{L("tenant", k)})
		}
	})
}

// SiggenCollector projects the learner's stats into leaksig_siggen_*
// families. Named-set versions carry the set label; cardinality is
// bounded by the learner's live published names (tenants with retired
// sets drop out of the books, and the label with them).
func SiggenCollector(snap func() siggen.Stats) Collector {
	return CollectorFunc(func(m *MetricWriter) {
		s := snap()
		m.Counter("leaksig_siggen_observed_total", "Misses admitted past the filter into the intake queue.", float64(s.Observed))
		m.Counter("leaksig_siggen_sink_dropped_total", "Misses dropped at the sink (intake queue full).", float64(s.SinkDropped))
		m.Counter("leaksig_siggen_admitted_total", "Intake samples routed to a reservoir.", float64(s.Admitted))
		m.Counter("leaksig_siggen_sampled_total", "Packets stored by a reservoir.", float64(s.Sampled))
		m.Counter("leaksig_siggen_overflow_tenants_total", "Admissions routed to the shared overflow reservoir.", float64(s.OverflowTenants))
		m.Gauge("leaksig_siggen_pending_samples", "Packets currently held in reservoirs.", float64(s.PendingSamples))
		m.Gauge("leaksig_siggen_reservoir_tenants", "Tenants with a private reservoir this epoch.", float64(s.Tenants))
		m.Gauge("leaksig_siggen_clusters", "Rolling clusters.", float64(s.Clusters))
		m.Gauge("leaksig_siggen_cluster_members", "Members across rolling clusters.", float64(s.ClusterMembers))
		m.Counter("leaksig_siggen_cluster_rejected_total", "Arrivals dropped by the clusterer (table full, nothing close).", float64(s.ClusterRejected))
		m.Gauge("leaksig_siggen_silhouette", "Last compaction's medoid silhouette.", s.Silhouette)
		m.Counter("leaksig_siggen_epochs_total", "Generation epochs run.", float64(s.Epochs))
		m.Gauge("leaksig_siggen_candidates", "Candidate signatures in the last distillation.", float64(s.Candidates))
		m.Gauge("leaksig_siggen_rejected_bayes", "Candidates rejected by the Bayes gate in the last distillation.", float64(s.RejectedBayes))
		m.Gauge("leaksig_siggen_rejected_fp", "Candidates rejected by the held-out FP gate in the last distillation.", float64(s.RejectedFP))
		m.Gauge("leaksig_siggen_accepted", "Candidates accepted in the last distillation.", float64(s.Accepted))
		m.Gauge("leaksig_siggen_catalog_signatures", "Signatures currently published (or publishable).", float64(s.Catalog))
		m.Counter("leaksig_siggen_retired_signatures_total", "Signatures retired because every source cluster went stale.", float64(s.RetiredSig))
		m.Counter("leaksig_siggen_publishes_total", "Global-set publishes.", float64(s.Publishes))
		m.Counter("leaksig_siggen_named_publishes_total", "Per-tenant named-set publishes.", float64(s.NamedPublishes))
		m.Counter("leaksig_siggen_publish_errors_total", "Failed publish round trips.", float64(s.PublishErrors))
		m.Gauge("leaksig_siggen_set_version", "Last published version, per set (the default set is the empty label).", float64(s.LastVersion), L("set", ""))
		names := make([]string, 0, len(s.NamedVersions))
		for k := range s.NamedVersions {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			m.Gauge("leaksig_siggen_set_version", "Last published version, per set (the default set is the empty label).", float64(s.NamedVersions[k]), L("set", k))
		}
	})
}

// SigserverCollector projects the signature server's stats into
// leaksig_sigserver_* families, every set under its name (the default
// set is the empty label). Cardinality is bounded by the server's named
// set cap.
func SigserverCollector(snap func() sigserver.ServerStats) Collector {
	return CollectorFunc(func(m *MetricWriter) {
		s := snap()
		m.Gauge("leaksig_sigserver_seq", "Catalog sequence: publishes to any set.", float64(s.Seq))
		emit := func(name string, st sigserver.NamedSetStats) {
			set := L("set", name)
			m.Gauge("leaksig_sigserver_version", "Current published version, per set.", float64(st.Version), set)
			m.Gauge("leaksig_sigserver_signatures", "Signatures in the published set, per set.", float64(st.Signatures), set)
			m.Counter("leaksig_sigserver_publishes_total", "Accepted publishes, per set.", float64(st.Publishes), set)
			m.Counter("leaksig_sigserver_publishes_rejected_total", "Publishes rejected by the strict-increase guard, per set.", float64(st.PublishesRejected), set)
		}
		emit("", sigserver.NamedSetStats{
			Version:           s.Version,
			Signatures:        s.Signatures,
			Publishes:         s.Publishes,
			PublishesRejected: s.PublishesRejected,
		})
		names := make([]string, 0, len(s.Sets))
		for k := range s.Sets {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			emit(k, s.Sets[k])
		}
	})
}

// TracerCollector projects a tracer's per-stage latency histograms into
// the leaksig_stage_seconds family, one stage label per pipeline station,
// plus the tracer's own span accounting. The stage set is fixed, so the
// series catalog never grows, and only sampled spans ever feed the
// histograms — the families cost the hot path nothing.
func TracerCollector(t *trace.Tracer) Collector {
	return CollectorFunc(func(m *MetricWriter) {
		if t == nil {
			return
		}
		for _, s := range t.Snapshot() {
			m.Histogram("leaksig_stage_seconds", "Sampled per-stage pipeline latency, by stage.",
				s.Bounds, s.Counts, s.Count, s.SumSeconds, L("stage", s.Stage))
		}
		st := t.Stats()
		m.Counter("leaksig_trace_spans_started_total", "Spans head-sampled in this process.", float64(st.Started))
		m.Counter("leaksig_trace_spans_adopted_total", "Spans continued from an upstream trace ID.", float64(st.Adopted))
		m.Counter("leaksig_trace_spans_finished_total", "Spans flushed into the stage histograms.", float64(st.Finished))
	})
}

// FlightCollector projects a flight recorder's accounting into
// leaksig_flight_* families — how much it has seen, holds, and how often
// its dump trigger fired or was rate-limited.
func FlightCollector(f *trace.Flight) Collector {
	return CollectorFunc(func(m *MetricWriter) {
		if f == nil {
			return
		}
		st := f.Stats()
		m.Counter("leaksig_flight_events_total", "Flight-recorder events ever recorded.", float64(st.Recorded))
		m.Gauge("leaksig_flight_events_held", "Events currently held in the flight rings.", float64(st.Held))
		m.Counter("leaksig_flight_triggers_total", "Flight dump-trigger firings.", float64(st.Triggers))
		m.Counter("leaksig_flight_triggers_throttled_total", "Trigger conditions suppressed by the rate limit.", float64(st.Throttled))
	})
}

// ProxyCollector projects the flow-control proxy's allow/block tallies —
// the decision counters the engine families cannot carry.
func ProxyCollector(stats func() (allowed, blocked int64)) Collector {
	return CollectorFunc(func(m *MetricWriter) {
		allowed, blocked := stats()
		m.Counter("leaksig_proxy_decisions_total", "Proxy policy decisions, by action.", float64(allowed), L("action", "allow"))
		m.Counter("leaksig_proxy_decisions_total", "Proxy policy decisions, by action.", float64(blocked), L("action", "block"))
	})
}

// JournalCollector projects a durable journal's accounting into
// leaksig_journal_* families — append volume, fsync errors (the "your
// durability is a lie" signal worth alerting on), recovery salvage, and
// on-disk size.
func JournalCollector(snap func() durable.JournalStats) Collector {
	return CollectorFunc(func(m *MetricWriter) {
		s := snap()
		m.Counter("leaksig_journal_appends_total", "Records appended to the publish journal.", float64(s.Appends))
		m.Counter("leaksig_journal_fsync_errors_total", "Journal fsync failures (appends kept, durability degraded).", float64(s.FsyncErrors))
		m.Counter("leaksig_journal_recovered_records_total", "Records replayed from the journal at the last open.", float64(s.Recovered))
		m.Counter("leaksig_journal_truncated_bytes_total", "Bytes discarded as a torn or corrupt tail at the last open.", float64(s.TruncatedBytes))
		m.Counter("leaksig_journal_compactions_total", "Journal compaction passes.", float64(s.Compactions))
		m.Gauge("leaksig_journal_size_bytes", "Journal file size.", float64(s.SizeBytes))
	})
}

// BreakerCollector projects a circuit breaker's state and accounting
// under the given breaker label — state as a 0/1/2 gauge
// (closed/open/half_open) so a flat line at 1 reads as a sustained
// outage on the dashboard.
func BreakerCollector(name string, br *resilience.Breaker) Collector {
	return CollectorFunc(func(m *MetricWriter) {
		if br == nil {
			return
		}
		lbl := L("breaker", name)
		var state float64
		switch br.State() {
		case resilience.Open:
			state = 1
		case resilience.HalfOpen:
			state = 2
		}
		st := br.Stats()
		m.Gauge("leaksig_breaker_state", "Circuit breaker state: 0 closed, 1 open, 2 half-open.", state, lbl)
		m.Counter("leaksig_breaker_opens_total", "Transitions into the open state.", float64(st.Opens), lbl)
		m.Counter("leaksig_breaker_failures_total", "Attempt outcomes recorded as failures.", float64(st.Failures), lbl)
		m.Counter("leaksig_breaker_shed_total", "Attempts refused without dialing while open.", float64(st.ShedAttempts), lbl)
	})
}

// FaultCollector projects a chaos injector's tallies into the
// leaksig_faults_injected_total family — so a chaos run's blast radius
// is measurable from the same scrape as its effects. A nil injector
// emits nothing.
func FaultCollector(in *faultinject.Injector) Collector {
	return CollectorFunc(func(m *MetricWriter) {
		if in == nil {
			return
		}
		s := in.Stats()
		const help = "Faults injected by the chaos harness, by kind."
		m.Counter("leaksig_faults_injected_total", help, float64(s.Latencies), L("kind", "latency"))
		m.Counter("leaksig_faults_injected_total", help, float64(s.Errors5xx), L("kind", "error_5xx"))
		m.Counter("leaksig_faults_injected_total", help, float64(s.Resets), L("kind", "reset"))
		m.Counter("leaksig_faults_injected_total", help, float64(s.Partials), L("kind", "partial"))
		m.Counter("leaksig_faults_injected_total", help, float64(s.Blackholes), L("kind", "blackhole"))
	})
}

// BuildInfoCollector emits the constant leaksig_build_info gauge: module
// version and Go toolchain as labels, value 1 — the join key that makes
// fleet rollouts attributable in dashboards.
func BuildInfoCollector() Collector {
	version := "unknown"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	goversion := runtime.Version()
	return CollectorFunc(func(m *MetricWriter) {
		m.Gauge("leaksig_build_info", "Build metadata: constant 1, labeled with the module version and Go toolchain.", 1,
			L("version", version), L("goversion", goversion))
	})
}
