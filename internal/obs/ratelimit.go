package obs

import (
	"sync"
	"time"
)

// RateLimiterConfig parameterizes a RateLimiter.
type RateLimiterConfig struct {
	// Rate is the sustained per-tenant intake in packets per second; <= 0
	// disables limiting (every Allow passes).
	Rate float64

	// Burst is the bucket depth — how far above the sustained rate one
	// tenant may spike; 0 defaults to Rate (one second of burst).
	Burst float64

	// MaxTenants bounds the bucket table. Tenant keys ride on traffic
	// fields (attacker-influenced in an exposed deployment), so the table
	// must not grow without limit: past the cap the stalest bucket is
	// recycled, and its per-tenant counter series folds into the
	// aggregate before the label disappears. Default 4096.
	MaxTenants int
}

func (c RateLimiterConfig) withDefaults() RateLimiterConfig {
	if c.Burst <= 0 {
		c.Burst = c.Rate
	}
	if c.MaxTenants <= 0 {
		c.MaxTenants = 4096
	}
	return c
}

// tokenBucket is one tenant's refill state. Tokens refill continuously
// at Rate up to Burst; each admitted packet spends one.
type tokenBucket struct {
	tokens float64
	last   time.Time // last refill instant; also the recency key for eviction
}

// RateLimiterStats is a point-in-time view of the limiter's accounting.
type RateLimiterStats struct {
	Allowed uint64 `json:"allowed"` // packets admitted
	Limited uint64 `json:"limited"` // packets rejected by an empty bucket
	Tenants int    `json:"tenants"` // live bucket-table entries
}

// RateLimiter enforces a per-tenant token-bucket intake limit and keeps
// the per-tenant accounting the ops plane scrapes: admissions and drops
// per tenant (bounded by the bucket table) plus aggregate totals that
// survive bucket eviction. Construct with NewRateLimiter; all methods
// are safe for concurrent use.
//
// The drop POLICY is the caller's: Allow only answers whether the packet
// is within budget. leakstream drops or blocks on a false answer per its
// -rate-policy flag; other intakes may prefer to shed load elsewhere.
type RateLimiter struct {
	cfg RateLimiterConfig

	mu      sync.Mutex
	buckets map[string]*tokenBucket

	allowed Counter
	limited Counter

	allowedBy *CounterVec
	limitedBy *CounterVec

	now func() time.Time // test hook
}

// NewRateLimiter builds a limiter. A Rate <= 0 yields a pass-through
// limiter that still counts admissions (intake accounting without
// enforcement).
func NewRateLimiter(cfg RateLimiterConfig) *RateLimiter {
	cfg = cfg.withDefaults()
	return &RateLimiter{
		cfg:       cfg,
		buckets:   make(map[string]*tokenBucket),
		allowedBy: NewCounterVec("leaksig_intake_tenant_allowed_total", "Packets admitted at intake, per tenant (bounded by the limiter table).", "tenant"),
		limitedBy: NewCounterVec("leaksig_intake_tenant_limited_total", "Packets rejected at intake by the rate limit, per tenant (bounded by the limiter table).", "tenant"),
		now:       time.Now,
	}
}

// Allow reports whether one packet for tenant fits the budget, spending
// a token when it does. Unlimited (Rate <= 0) limiters always admit.
func (l *RateLimiter) Allow(tenant string) bool {
	if l.cfg.Rate <= 0 {
		l.allowed.Inc()
		l.allowedBy.With(tenant).Inc()
		return true
	}
	now := l.now()
	l.mu.Lock()
	b := l.buckets[tenant]
	if b == nil {
		if len(l.buckets) >= l.cfg.MaxTenants {
			l.evictStalestLocked()
		}
		// A new bucket starts full: a tenant's first packets are its
		// burst allowance.
		b = &tokenBucket{tokens: l.cfg.Burst, last: now}
		l.buckets[tenant] = b
	} else {
		if dt := now.Sub(b.last).Seconds(); dt > 0 {
			b.tokens += dt * l.cfg.Rate
			if b.tokens > l.cfg.Burst {
				b.tokens = l.cfg.Burst
			}
			b.last = now
		}
	}
	ok := b.tokens >= 1
	if ok {
		b.tokens--
	}
	l.mu.Unlock()
	if ok {
		l.allowed.Inc()
		l.allowedBy.With(tenant).Inc()
	} else {
		l.limited.Inc()
		l.limitedBy.With(tenant).Inc()
	}
	return ok
}

// evictStalestLocked recycles the least-recently-refilled bucket and its
// labeled counter series (the aggregate totals keep the history).
// Callers hold l.mu.
func (l *RateLimiter) evictStalestLocked() {
	victim := ""
	var oldest time.Time
	first := true
	for k, b := range l.buckets {
		if first || b.last.Before(oldest) {
			victim, oldest, first = k, b.last, false
		}
	}
	if victim != "" {
		delete(l.buckets, victim)
		l.allowedBy.Forget(victim)
		l.limitedBy.Forget(victim)
	}
}

// Stats returns the limiter's aggregate accounting.
func (l *RateLimiter) Stats() RateLimiterStats {
	l.mu.Lock()
	tenants := len(l.buckets)
	l.mu.Unlock()
	return RateLimiterStats{
		Allowed: l.allowed.Value(),
		Limited: l.limited.Value(),
		Tenants: tenants,
	}
}

// Collect implements Collector: aggregate admission/drop totals (always
// present, even at zero, so dashboards can alert on absence-of-data
// separately from zero-drops) plus the bounded per-tenant breakdowns —
// separate families, so summing the tenant label never double-counts
// the aggregate, and the aggregate survives bucket eviction.
func (l *RateLimiter) Collect(m *MetricWriter) {
	st := l.Stats()
	m.Counter("leaksig_intake_allowed_total", "Packets admitted at intake across all tenants.", float64(st.Allowed))
	m.Counter("leaksig_intake_limited_total", "Packets rejected at intake by the per-tenant rate limit, across all tenants.", float64(st.Limited))
	m.Gauge("leaksig_intake_limiter_tenants", "Live token buckets in the intake limiter table.", float64(st.Tenants))
	l.allowedBy.Collect(m)
	l.limitedBy.Collect(m)
}
