package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestPoolTenantIsolation(t *testing.T) {
	p := NewPool(nil, PoolConfig{Engine: Config{Shards: 1, BatchSize: 4}})
	defer p.Close()
	p.ReloadTenant("app.alpha", tokenSet(1, "alpha-token"))
	p.ReloadTenant("app.beta", tokenSet(1, "beta-token"))

	// Identical traffic — carrying only the alpha token — into both
	// tenants: a leak for alpha, invisible to beta.
	const n = 200
	for i := 0; i < n; i++ {
		pk := pkt(int64(i), "tracker.example.com", "alpha-token")
		if err := p.Submit("app.alpha", pk); err != nil {
			t.Fatal(err)
		}
		if err := p.Submit("app.beta", pk); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	alpha, ok := p.TenantMetrics("app.alpha")
	if !ok || alpha.Matched != n {
		t.Fatalf("alpha tenant matched %d of %d (live=%v)", alpha.Matched, n, ok)
	}
	beta, ok := p.TenantMetrics("app.beta")
	if !ok || beta.Matched != 0 {
		t.Fatalf("beta tenant matched %d, want 0 (live=%v)", beta.Matched, ok)
	}
}

func TestPoolLazyCreationAndDefaultReload(t *testing.T) {
	p := NewPool(tokenSet(1, "v1-token"), PoolConfig{Engine: Config{Shards: 1}})
	defer p.Close()
	if got := len(p.Tenants()); got != 0 {
		t.Fatalf("fresh pool has %d tenants", got)
	}
	if m := p.MatchPacket("cohort-7", pkt(0, "a.example.com", "v1-token")); len(m) == 0 {
		t.Fatal("lazily created tenant did not start on the pool's default set")
	}
	if got := len(p.Tenants()); got != 1 {
		t.Fatalf("pool has %d tenants after first use, want 1", got)
	}

	// A pinned tenant survives pool-wide reloads; unpinned ones follow.
	p.ReloadTenant("pinned", tokenSet(1, "pinned-token"))
	p.Reload(tokenSet(2, "v2-token"))
	if m := p.MatchPacket("cohort-7", pkt(0, "a.example.com", "v2-token")); len(m) == 0 {
		t.Fatal("unpinned tenant did not follow the pool-wide reload")
	}
	if m := p.MatchPacket("pinned", pkt(0, "a.example.com", "pinned-token")); len(m) == 0 {
		t.Fatal("pinned tenant lost its private set on pool-wide reload")
	}
	if m := p.MatchPacket("fresh", pkt(0, "a.example.com", "v2-token")); len(m) == 0 {
		t.Fatal("tenant created after Reload did not start on the new default")
	}
}

func TestPoolShardBudget(t *testing.T) {
	p := NewPool(nil, PoolConfig{
		Engine:      Config{Shards: 2, BatchSize: 4},
		ShardBudget: 4,
	})
	defer p.Close()
	for _, key := range []string{"t1", "t2", "t3"} {
		p.Tenant(key)
	}
	snap := p.Metrics()
	if snap.PerTenant["t1"].Shards != 2 || snap.PerTenant["t2"].Shards != 2 {
		t.Fatalf("first two tenants got %d and %d shards, want 2 each",
			snap.PerTenant["t1"].Shards, snap.PerTenant["t2"].Shards)
	}
	// The budget is spent: the third tenant degrades to one shard rather
	// than being refused.
	if snap.PerTenant["t3"].Shards != 1 {
		t.Fatalf("over-budget tenant got %d shards, want 1", snap.PerTenant["t3"].Shards)
	}

	// Eviction returns shards to the budget: dropping t1 (2 shards) and
	// t3 (1 degraded shard) leaves t2 alone, freeing 2 of the 4.
	p.Evict("t1")
	p.Evict("t3")
	p.Tenant("t4")
	snap = p.Metrics()
	if snap.PerTenant["t4"].Shards != 2 {
		t.Fatalf("tenant after eviction got %d shards, want 2 from the returned budget",
			snap.PerTenant["t4"].Shards)
	}
	if snap.ShardsInUse != 4 {
		t.Fatalf("shards in use = %d, want 4 (t2 + t4)", snap.ShardsInUse)
	}
}

func TestPoolIdleEviction(t *testing.T) {
	var evicted atomic.Uint64
	var finalProcessed atomic.Uint64
	p := NewPool(tokenSet(1, "x-token"), PoolConfig{
		Engine:        Config{Shards: 1, BatchSize: 4},
		IdleAfter:     50 * time.Millisecond,
		SweepInterval: 10 * time.Millisecond,
		OnEvict: func(key string, final Snapshot) {
			evicted.Add(1)
			finalProcessed.Add(final.Processed)
		},
	})
	defer p.Close()
	const n = 100
	for i := 0; i < n; i++ {
		if err := p.Submit("ephemeral", pkt(int64(i), "a.example.com", "x-token")); err != nil {
			t.Fatal(err)
		}
	}
	// Wait on the eviction callback, not the tenant map: the map entry
	// disappears before the drain completes, so map emptiness races the
	// final counters.
	deadline := time.After(5 * time.Second)
	for evicted.Load() == 0 {
		select {
		case <-deadline:
			t.Fatal("idle tenant never evicted")
		case <-time.After(5 * time.Millisecond):
		}
	}
	if evicted.Load() != 1 || finalProcessed.Load() != n {
		t.Fatalf("eviction callback: count=%d processed=%d, want 1 and %d",
			evicted.Load(), finalProcessed.Load(), n)
	}
	// The retired tenant's history survives in the aggregate.
	snap := p.Metrics()
	if snap.Aggregate.Processed != n || snap.Aggregate.Matched != n {
		t.Fatalf("aggregate lost evicted history: %+v", snap.Aggregate)
	}
	if snap.Evicted != 1 || snap.Created != 1 {
		t.Fatalf("lifecycle counters: created=%d evicted=%d", snap.Created, snap.Evicted)
	}
}

// TestPoolEvictionRacesIngest is the satellite stress: an aggressive
// janitor evicting while producers hammer Submit must never lose a
// packet — evicted tenants drain, and racing Submits recreate them.
func TestPoolEvictionRacesIngest(t *testing.T) {
	p := NewPool(tokenSet(1, "x-token"), PoolConfig{
		Engine:        Config{Shards: 1, BatchSize: 2, FlushInterval: 100 * time.Microsecond},
		IdleAfter:     time.Millisecond,
		SweepInterval: time.Millisecond,
	})
	const (
		producers  = 4
		perFeeder  = 500
		tenantKeys = 3
	)
	var wg sync.WaitGroup
	for g := 0; g < producers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perFeeder; i++ {
				key := fmt.Sprintf("pop-%d", i%tenantKeys)
				if err := p.Submit(key, pkt(int64(i), "a.example.com", "x-token")); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
				if i%100 == 0 {
					time.Sleep(2 * time.Millisecond) // let idleness accrue
				}
			}
		}(g)
	}
	wg.Wait()
	p.Close()
	snap := p.Metrics()
	const want = producers * perFeeder
	if snap.Aggregate.Ingested != want || snap.Aggregate.Processed != want {
		t.Fatalf("lost packets across evictions: ingested=%d processed=%d, want %d",
			snap.Aggregate.Ingested, snap.Aggregate.Processed, want)
	}
	if snap.Evicted == 0 {
		t.Log("warning: no evictions fired during the race window")
	}
}

func TestPoolMaxTenantsEvictsLRU(t *testing.T) {
	p := NewPool(nil, PoolConfig{
		Engine:     Config{Shards: 1},
		MaxTenants: 2,
	})
	defer p.Close()
	p.Tenant("old")
	time.Sleep(2 * time.Millisecond)
	p.Tenant("mid")
	time.Sleep(2 * time.Millisecond)
	p.Tenant("old") // refresh: "mid" is now least recently active
	p.Tenant("new") // overflow evicts "mid"
	keys := map[string]bool{}
	for _, k := range p.Tenants() {
		keys[k] = true
	}
	if !keys["old"] || !keys["new"] || keys["mid"] {
		t.Fatalf("tenants after LRU overflow = %v, want {old, new}", keys)
	}
	if got := p.Metrics().Evicted; got != 1 {
		t.Fatalf("evictions = %d, want 1", got)
	}
}

// TestPoolAggregateSurvivesLRUEviction pins the accounting contract the
// ops plane scrapes: a tenant recycled by the MaxTenants LRU cap drops
// out of TenantMetrics and the per-tenant snapshot, but its lifetime
// counters fold into the eviction-surviving aggregate — so fleet-wide
// totals never regress when the tenant table churns.
func TestPoolAggregateSurvivesLRUEviction(t *testing.T) {
	p := NewPool(tokenSet(1, "x-token"), PoolConfig{
		Engine:     Config{Shards: 1, BatchSize: 4},
		MaxTenants: 2,
	})
	defer p.Close()
	const n = 50
	feed := func(key string) {
		for i := 0; i < n; i++ {
			if err := p.Submit(key, pkt(int64(i), "a.example.com", "x-token")); err != nil {
				t.Fatal(err)
			}
		}
		p.Flush()
		time.Sleep(2 * time.Millisecond) // make LRU recency unambiguous
	}
	feed("t1")
	feed("t2")
	feed("t3") // creating t3 overflows the cap and recycles t1

	if _, ok := p.TenantMetrics("t1"); ok {
		t.Fatal("LRU-evicted tenant still answers TenantMetrics")
	}
	if snap, ok := p.TenantMetrics("t3"); !ok || snap.Processed != n || snap.Matched != n {
		t.Fatalf("live tenant: ok=%v processed=%d matched=%d, want %d each", ok, snap.Processed, snap.Matched, n)
	}
	snap := p.Metrics()
	if snap.Aggregate.Processed != 3*n || snap.Aggregate.Matched != 3*n {
		t.Fatalf("aggregate lost LRU-evicted history: processed=%d matched=%d, want %d each",
			snap.Aggregate.Processed, snap.Aggregate.Matched, 3*n)
	}
	if _, live := snap.PerTenant["t1"]; live {
		t.Fatal("evicted tenant still in the per-tenant snapshot")
	}
	if snap.Evicted != 1 || snap.Created != 3 {
		t.Fatalf("lifecycle counters: created=%d evicted=%d, want 1 and 3", snap.Evicted, snap.Created)
	}
}

func TestPoolClose(t *testing.T) {
	p := NewPool(nil, PoolConfig{Engine: Config{Shards: 1}})
	p.Tenant("x")
	p.Close()
	p.Close() // idempotent
	if err := p.Submit("x", pkt(0, "a.example.com", "q=1")); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if p.TrySubmit("x", pkt(0, "a.example.com", "q=1")) {
		t.Fatal("TrySubmit accepted after Close")
	}
	if p.Tenant("x") != nil {
		t.Fatal("Tenant returned an engine after Close")
	}
}

// TestPoolConfigureTenant checks the per-tenant config hook sees the
// budget-granted shard count and can attach per-tenant sinks.
func TestPoolConfigureTenant(t *testing.T) {
	sinks := map[string]*CountSink{}
	var mu sync.Mutex
	p := NewPool(tokenSet(1, "x-token"), PoolConfig{
		Engine:      Config{Shards: 1, BatchSize: 4},
		ShardBudget: 8,
		ConfigureTenant: func(key string, cfg Config) Config {
			sink := NewCountSink()
			mu.Lock()
			sinks[key] = sink
			mu.Unlock()
			cfg.Sink = sink
			return cfg
		},
	})
	defer p.Close()
	for i := 0; i < 50; i++ {
		if err := p.Submit("a", pkt(int64(i), "h.example.com", "x-token")); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 30; i++ {
		if err := p.Submit("b", pkt(int64(i), "h.example.com", "zone=1")); err != nil {
			t.Fatal(err)
		}
	}
	p.Flush()
	aPackets, aLeaks := sinks["a"].Totals()
	bPackets, bLeaks := sinks["b"].Totals()
	if aPackets != 50 || aLeaks != 50 {
		t.Fatalf("tenant a sink = (%d, %d), want (50, 50)", aPackets, aLeaks)
	}
	if bPackets != 30 || bLeaks != 0 {
		t.Fatalf("tenant b sink = (%d, %d), want (30, 0)", bPackets, bLeaks)
	}
}

// TestPoolReloadPinnedRace hammers the pin-vs-pool-wide-reload ordering:
// whatever the interleaving, a tenant pinned by ReloadTenant must end up
// on its private set, never silently reverted to the pool default.
func TestPoolReloadPinnedRace(t *testing.T) {
	for i := 0; i < 50; i++ {
		p := NewPool(tokenSet(1, "default-token"), PoolConfig{Engine: Config{Shards: 1}})
		p.Tenant("t")
		var wg sync.WaitGroup
		wg.Add(2)
		go func() { defer wg.Done(); p.Reload(tokenSet(2, "default-token")) }()
		go func() { defer wg.Done(); p.ReloadTenant("t", tokenSet(9, "pinned-token")) }()
		wg.Wait()
		if m := p.MatchPacket("t", pkt(0, "h.example.com", "pinned-token")); len(m) == 0 {
			t.Fatalf("iteration %d: pinned set lost to a concurrent pool-wide reload", i)
		}
		p.Close()
	}
}

// TestPoolEvictDrainsSinkBeforeRetiring pins the contract the siggen
// miss sink depends on: when a tenant is evicted, every packet it
// accepted must flow through its bound sink before Evict returns —
// otherwise the learner would silently lose the tail of an evicted
// population's sample.
func TestPoolEvictDrainsSinkBeforeRetiring(t *testing.T) {
	const n = 400
	var seen atomic.Uint64
	sink := CallbackSink(func(v Verdict) {
		if v.Seq%64 == 0 {
			time.Sleep(200 * time.Microsecond) // keep the queue non-empty
		}
		seen.Add(1)
	})
	p := NewPool(nil, PoolConfig{Engine: Config{Shards: 2, BatchSize: 4, Sink: sink}})
	defer p.Close()
	for i := 0; i < n; i++ {
		if err := p.Submit("victim", pkt(int64(i), "host.example.com", "zone=1")); err != nil {
			t.Fatal(err)
		}
	}
	if !p.Evict("victim") {
		t.Fatal("tenant missing")
	}
	if got := seen.Load(); got != n {
		t.Fatalf("sink saw %d of %d packets when Evict returned", got, n)
	}
}

// TestPoolEvictRacesSinkFlush hammers eviction against concurrent
// submitters: whatever interleaving happens, once the pool is closed the
// sink must have seen every accepted packet exactly once.
func TestPoolEvictRacesSinkFlush(t *testing.T) {
	var seen atomic.Uint64
	sink := CallbackSink(func(Verdict) { seen.Add(1) })
	p := NewPool(nil, PoolConfig{Engine: Config{Shards: 1, BatchSize: 4, Sink: sink}})

	const (
		workers    = 4
		perWorker  = 300
		evictEvery = 50 * time.Microsecond
	)
	var wg sync.WaitGroup
	stop := make(chan struct{})
	evictorDone := make(chan struct{})
	go func() { // the evictor
		defer close(evictorDone)
		for {
			select {
			case <-stop:
				return
			default:
				p.Evict("victim")
				time.Sleep(evictEvery)
			}
		}
	}()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				if err := p.Submit("victim", pkt(int64(w*perWorker+i), "host.example.com", "zone=1")); err != nil {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	<-evictorDone
	p.Close()
	if got := seen.Load(); got != workers*perWorker {
		t.Fatalf("sink saw %d packets, want %d (lost across eviction)", got, workers*perWorker)
	}
}

// TestPoolBudgetNeverOverCommits is the regression for the shard-budget
// over-commit: create() granted a degraded single shard when the budget
// was exhausted but still charged it, so ShardsInUse could exceed
// ShardBudget and the books never reconciled. Degraded grants must be
// uncharged and visible through DegradedTenants.
func TestPoolBudgetNeverOverCommits(t *testing.T) {
	p := NewPool(nil, PoolConfig{
		Engine:      Config{Shards: 2, BatchSize: 4},
		ShardBudget: 4,
	})
	defer p.Close()

	// Exhaust the budget, then keep creating: t1+t2 spend the 4 shards,
	// t3..t5 run degraded on uncharged single shards.
	for _, key := range []string{"t1", "t2", "t3", "t4", "t5"} {
		p.Tenant(key)
	}
	snap := p.Metrics()
	if snap.ShardsInUse > snap.ShardBudget {
		t.Fatalf("books over-committed: %d shards in use, budget %d", snap.ShardsInUse, snap.ShardBudget)
	}
	if snap.ShardsInUse != 4 || snap.DegradedTenants != 3 {
		t.Fatalf("at exhaustion: in-use=%d degraded=%d, want 4 and 3", snap.ShardsInUse, snap.DegradedTenants)
	}
	for _, key := range []string{"t3", "t4", "t5"} {
		if snap.PerTenant[key].Shards != 1 {
			t.Fatalf("degraded tenant %s got %d shards, want 1", key, snap.PerTenant[key].Shards)
		}
	}

	// Evicting a charged tenant frees real shards — and the freed budget
	// flows straight back: one of the degraded tenants is upgraded to a
	// charged 2-shard grant, re-spending the budget without ever
	// over-committing it.
	p.Evict("t1")
	snap = p.Metrics()
	if snap.ShardsInUse != 4 || snap.DegradedTenants != 2 || snap.Upgraded != 1 {
		t.Fatalf("after eviction: in-use=%d degraded=%d upgraded=%d, want 4, 2, 1",
			snap.ShardsInUse, snap.DegradedTenants, snap.Upgraded)
	}
	if snap.ShardsInUse > snap.ShardBudget {
		t.Fatalf("books over-committed after upgrade: %d > %d", snap.ShardsInUse, snap.ShardBudget)
	}

	// Evicting a still-degraded tenant frees no charged shards; with the
	// budget spent again, a new tenant degrades rather than over-commits.
	var stillDegraded string
	for key, m := range snap.PerTenant {
		if key != "t1" && key != "t2" && m.Shards == 1 {
			stillDegraded = key
			break
		}
	}
	if stillDegraded == "" {
		t.Fatal("no degraded tenant left to evict")
	}
	p.Evict(stillDegraded)
	p.Tenant("t6")
	snap = p.Metrics()
	if snap.PerTenant["t6"].Shards != 1 || snap.ShardsInUse != 4 || snap.DegradedTenants != 2 {
		t.Fatalf("post-eviction creation: shards=%d in-use=%d degraded=%d, want 1, 4, 2",
			snap.PerTenant["t6"].Shards, snap.ShardsInUse, snap.DegradedTenants)
	}
	if snap.ShardsInUse > snap.ShardBudget {
		t.Fatalf("books over-committed after recycle: %d > %d", snap.ShardsInUse, snap.ShardBudget)
	}
}

// TestPoolUpgradeAfterBudgetFrees pins the degraded-tenant upgrade: a
// tenant admitted during budget exhaustion runs on one uncharged shard,
// and when the hog that spent the budget is evicted, the pool resizes
// the degraded tenant back up to the template grant — charged, books
// reconciled, pressure signal cleared — without losing a packet or its
// pinned signature set.
func TestPoolUpgradeAfterBudgetFrees(t *testing.T) {
	var seen atomic.Uint64
	p := NewPool(tokenSet(1, "default-token"), PoolConfig{
		Engine:      Config{Shards: 4, BatchSize: 4, OnVerdict: func(Verdict) { seen.Add(1) }},
		ShardBudget: 4,
	})
	defer p.Close()

	p.Tenant("big") // spends the whole budget
	p.ReloadTenant("late", tokenSet(7, "late-token"))
	const n = 200
	for i := 0; i < n; i++ {
		if err := p.Submit("late", pkt(int64(i), "h.example.com", "late-token")); err != nil {
			t.Fatal(err)
		}
	}
	snap := p.Metrics()
	if snap.PerTenant["late"].Shards != 1 || snap.DegradedTenants != 1 {
		t.Fatalf("before upgrade: shards=%d degraded=%d, want 1 and 1",
			snap.PerTenant["late"].Shards, snap.DegradedTenants)
	}

	p.Evict("big")
	snap = p.Metrics()
	if snap.PerTenant["late"].Shards != 4 {
		t.Fatalf("degraded tenant not resized: %d shards, want 4", snap.PerTenant["late"].Shards)
	}
	if snap.DegradedTenants != 0 || snap.Upgraded != 1 {
		t.Fatalf("after upgrade: degraded=%d upgraded=%d, want 0 and 1", snap.DegradedTenants, snap.Upgraded)
	}
	if snap.ShardsInUse != 4 || snap.ShardsInUse > snap.ShardBudget {
		t.Fatalf("books after upgrade: in-use=%d budget=%d, want exactly 4", snap.ShardsInUse, snap.ShardBudget)
	}
	// The swap drained, not dropped: every pre-upgrade verdict is in the
	// books (the old engine's counters folded into the aggregate).
	if got := seen.Load(); got < n {
		t.Fatalf("upgrade lost packets: sink saw %d of %d", got, n)
	}
	if agg := snap.Aggregate.Processed; agg < n {
		t.Fatalf("aggregate lost upgrade history: processed=%d, want >= %d", agg, n)
	}
	// The pin rode along onto the upgraded engine.
	if m := p.MatchPacket("late", pkt(0, "h.example.com", "late-token")); len(m) == 0 {
		t.Fatal("upgraded tenant lost its pinned set")
	}
	if m := p.MatchPacket("late", pkt(0, "h.example.com", "default-token")); len(m) != 0 {
		t.Fatal("upgraded tenant fell back to the pool default set")
	}
}

// TestPoolPinSurvivesEviction pins the durability contract ReloadTenant
// gained: a pin is recorded without eagerly creating an engine, and a
// tenant recreated after eviction starts on its pinned set — never
// silently back on the pool default (which may hold other populations'
// signatures).
func TestPoolPinSurvivesEviction(t *testing.T) {
	p := NewPool(tokenSet(1, "default-token"), PoolConfig{Engine: Config{Shards: 1}})
	defer p.Close()

	p.ReloadTenant("pinned", tokenSet(5, "pinned-token"))
	if got := len(p.Tenants()); got != 0 {
		t.Fatalf("ReloadTenant eagerly created %d engines", got)
	}
	if m := p.MatchPacket("pinned", pkt(0, "h.example.com", "pinned-token")); len(m) == 0 {
		t.Fatal("lazily created tenant did not start on its pinned set")
	}

	if !p.Evict("pinned") {
		t.Fatal("tenant missing")
	}
	if m := p.MatchPacket("pinned", pkt(0, "h.example.com", "pinned-token")); len(m) == 0 {
		t.Fatal("eviction lost the pin: recreated tenant misses its pinned set")
	}
	if m := p.MatchPacket("pinned", pkt(0, "h.example.com", "default-token")); len(m) != 0 {
		t.Fatal("recreated tenant fell back to the pool default set")
	}

	// Pool-wide reloads still skip the recreated pinned tenant.
	p.Reload(tokenSet(9, "default-token"))
	if m := p.MatchPacket("pinned", pkt(0, "h.example.com", "pinned-token")); len(m) == 0 {
		t.Fatal("pool-wide reload overwrote a recreated tenant's pin")
	}
}
