package engine

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// PoolConfig parameterizes a Pool. The zero value selects sensible
// defaults: a GOMAXPROCS-sized shard budget, no tenant cap, and no idle
// eviction.
type PoolConfig struct {
	// Engine is the per-tenant engine template. Its Shards field is a
	// per-tenant ceiling; the pool may grant fewer when the shard budget
	// runs low. Sink and OnVerdict apply to every tenant unless
	// ConfigureTenant overrides them.
	Engine Config

	// ShardBudget caps the total worker goroutines across all live
	// tenants; 0 means runtime.GOMAXPROCS(0). Tenants created after the
	// budget is exhausted still run, degraded to one shard each, so
	// admission never fails — the budget shapes parallelism, not
	// availability. Degraded grants are not charged against the budget
	// (ShardsInUse never exceeds ShardBudget); they are counted in
	// PoolSnapshot.DegradedTenants instead, so budget pressure stays
	// visible. Evicting a tenant returns its charged shards to the
	// budget, and freed budget flows back: degraded tenants are upgraded
	// to charged multi-shard grants, busiest first.
	ShardBudget int

	// MaxTenants caps concurrently live tenants; 0 means unlimited.
	// Creating a tenant past the cap evicts the least-recently-active
	// one first (its queued packets drain before the new tenant starts).
	MaxTenants int

	// IdleAfter evicts tenants that have not seen a Submit, TrySubmit,
	// MatchPacket, or ReloadTenant for this long; 0 disables idle
	// eviction. Evicted tenants drain fully and fold their counters into
	// the pool aggregate; a later packet for the same key transparently
	// recreates the tenant.
	IdleAfter time.Duration

	// SweepInterval is how often the eviction janitor scans; 0 means
	// IdleAfter/4 (floor 100ms). Ignored when IdleAfter is 0.
	SweepInterval time.Duration

	// ConfigureTenant, when non-nil, finalizes each new tenant's engine
	// config: it receives the tenant key and the template (with the
	// budget-granted shard count already applied) and returns the config
	// to use. The returned Shards value is clamped to the grant.
	ConfigureTenant func(key string, cfg Config) Config

	// OnEvict, when non-nil, observes every eviction with the tenant's
	// final drained snapshot. It runs on the evicting goroutine.
	OnEvict func(key string, final Snapshot)
}

func (c PoolConfig) withDefaults() PoolConfig {
	if c.ShardBudget <= 0 {
		c.ShardBudget = runtime.GOMAXPROCS(0)
	}
	if c.IdleAfter > 0 && c.SweepInterval <= 0 {
		c.SweepInterval = c.IdleAfter / 4
		if c.SweepInterval < 100*time.Millisecond {
			c.SweepInterval = 100 * time.Millisecond
		}
	}
	return c
}

// tenant pairs one engine with its activity clock and signature pinning.
type tenant struct {
	key        string
	eng        *Engine
	shards     int          // shards granted to the engine
	charged    int          // shards charged against the pool budget (0 for degraded grants)
	lastActive atomic.Int64 // unix nanos of the most recent use

	// reloadMu orders signature swaps on this tenant: pinning and
	// pool-wide reloads both take it, so a concurrent Pool.Reload can
	// never overwrite a just-pinned set. pinned is only read or written
	// under it.
	reloadMu sync.Mutex
	pinned   bool // ReloadTenant set a tenant-specific set; pool-wide Reload skips it
}

func (t *tenant) touch() { t.lastActive.Store(time.Now().UnixNano()) }

// Pool maps tenant keys — app package names, device cohorts, proxy hosts —
// to independently configured engines sharing a global shard budget, so
// one signature service can isolate per-population traffic the way the
// paper's per-module signatures isolate ad libraries. Tenants are created
// lazily on first use, evicted when idle (or least-recently-active when
// MaxTenants overflows), and aggregated into pool-wide metrics that
// survive eviction. Construct with NewPool; all methods are safe for
// concurrent use.
type Pool struct {
	cfg PoolConfig

	mu          sync.RWMutex
	tenants     map[string]*tenant
	set         *signature.Set // default set for new and unpinned tenants
	pins        map[string]*signature.Set
	shardsInUse int
	degraded    int // live tenants running on an uncharged 1-shard grant
	closed      bool

	created   atomic.Uint64
	evictions atomic.Uint64
	upgrades  atomic.Uint64

	// Counters folded in from evicted tenants, so the aggregate never
	// loses history.
	retIngested, retProcessed, retMatched, retDropped uint64
	retSyncVetted, retSyncMatched                     uint64
	retReloads                                        int64

	stopJanitor chan struct{}
	janitorDone chan struct{}
	start       time.Time
}

// NewPool starts an empty pool whose tenants begin life on the signature
// set (nil for empty).
func NewPool(set *signature.Set, cfg PoolConfig) *Pool {
	cfg = cfg.withDefaults()
	p := &Pool{
		cfg:         cfg,
		tenants:     make(map[string]*tenant),
		set:         set,
		pins:        make(map[string]*signature.Set),
		stopJanitor: make(chan struct{}),
		janitorDone: make(chan struct{}),
		start:       time.Now(),
	}
	if cfg.IdleAfter > 0 {
		go p.runJanitor()
	} else {
		close(p.janitorDone)
	}
	return p
}

// Tenant returns the engine serving key, creating it on first use. It
// returns nil after Close. Callers that hold the engine across calls must
// tolerate ErrClosed from Submit — an idle eviction may retire it at any
// time — or simply route through Pool.Submit, which retries.
func (p *Pool) Tenant(key string) *Engine {
	p.mu.RLock()
	t := p.tenants[key]
	closed := p.closed
	p.mu.RUnlock()
	if closed {
		return nil
	}
	if t != nil {
		t.touch()
		return t.eng
	}
	t = p.create(key)
	if t == nil {
		return nil
	}
	return t.eng
}

// create makes (or returns the raced-in) tenant for key, charging the
// shard budget and evicting the least-recently-active tenant when
// MaxTenants overflows. A set pinned earlier via ReloadTenant (the pin
// table survives eviction) becomes the new engine's signature set, so
// recreation after idle/LRU eviction never silently falls back to the
// pool default — per-tenant isolation holds across pool churn. It
// returns nil only when the pool is closed.
func (p *Pool) create(key string) *tenant {
	for {
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			return nil
		}
		if t := p.tenants[key]; t != nil {
			p.mu.Unlock()
			t.touch()
			return t
		}
		// Over the tenant cap: evict the least-recently-active tenant,
		// then retry — eviction drops the lock while draining.
		if p.cfg.MaxTenants > 0 && len(p.tenants) >= p.cfg.MaxTenants {
			victim := ""
			oldest := int64(1<<63 - 1)
			for k, t := range p.tenants {
				if at := t.lastActive.Load(); at < oldest {
					oldest, victim = at, k
				}
			}
			p.mu.Unlock()
			p.Evict(victim)
			continue
		}

		// Reserve shards from the budget under the lock, then build the
		// engine outside it: compiling a signature set and running the
		// user's ConfigureTenant hook must not stall every other
		// tenant's Submit (and the hook may itself inspect the pool).
		grant := p.cfg.Engine.Shards
		if grant <= 0 {
			grant = runtime.GOMAXPROCS(0)
		}
		degraded := false
		if free := p.cfg.ShardBudget - p.shardsInUse; grant > free {
			if free >= 1 {
				grant = free
			} else {
				// Budget exhausted: degrade to one shard, never refuse —
				// but charge nothing, or ShardsInUse would exceed the
				// budget and the books could never reconcile.
				grant = 1
				degraded = true
			}
		}
		if !degraded {
			p.shardsInUse += grant
		}
		set := p.set
		pin, pinned := p.pins[key]
		if pinned {
			set = pin
		}
		p.mu.Unlock()

		cfg := p.cfg.Engine
		cfg.Shards = grant
		if p.cfg.ConfigureTenant != nil {
			cfg = p.cfg.ConfigureTenant(key, cfg)
			if cfg.Shards <= 0 || cfg.Shards > grant {
				cfg.Shards = grant
			}
		}
		charged := cfg.Shards
		if degraded {
			charged = 0
		}
		t := &tenant{key: key, eng: New(set, cfg), shards: cfg.Shards, charged: charged, pinned: pinned}
		t.touch()

		p.mu.Lock()
		if refund := grant - t.shards; refund > 0 && !degraded {
			p.shardsInUse -= refund // ConfigureTenant took fewer shards
		}
		if p.closed || p.tenants[key] != nil {
			// Lost the race (or the pool closed): roll back and defer to
			// the winner.
			p.shardsInUse -= t.charged
			p.mu.Unlock()
			t.eng.Close()
			if p.isClosed() {
				return nil
			}
			continue
		}
		p.tenants[key] = t
		if degraded {
			p.degraded++
		}
		// A ReloadTenant racing the build may have pinned a newer set
		// while the lock was dropped; it only saw the pin table (the
		// tenant was not in the map yet), so land its set now.
		latest, stillPinned := p.pins[key]
		p.mu.Unlock()
		if stillPinned && latest != set {
			p.applyPin(t)
		}
		p.created.Add(1)
		return t
	}
}

// isClosed reports whether Close has begun.
func (p *Pool) isClosed() bool {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return p.closed
}

// applyPin lands the pin table's current set on a live tenant, ordered
// against pool-wide reloads by reloadMu. Re-reading the table under the
// reload lock makes pin application convergent: however ReloadTenant
// races tenant creation, the LAST application always installs the
// latest pinned set.
func (p *Pool) applyPin(t *tenant) {
	t.reloadMu.Lock()
	defer t.reloadMu.Unlock()
	p.mu.RLock()
	set, ok := p.pins[t.key]
	p.mu.RUnlock()
	if !ok {
		return
	}
	t.pinned = true
	t.eng.Reload(set)
}

// Submit queues one packet for the tenant, creating the tenant on first
// use and blocking under that tenant's backpressure. A concurrent
// eviction is transparent: the packet lands on the recreated tenant.
// It returns ErrClosed only after Pool.Close.
func (p *Pool) Submit(key string, pkt *httpmodel.Packet) error {
	for {
		e := p.Tenant(key)
		if e == nil {
			return ErrClosed
		}
		err := e.Submit(pkt)
		if err == ErrClosed {
			continue // tenant evicted between lookup and submit; recreate
		}
		return err
	}
}

// TrySubmit queues one packet for the tenant without blocking, reporting
// false when the tenant's shard is saturated or the pool is closed.
func (p *Pool) TrySubmit(key string, pkt *httpmodel.Packet) bool {
	for {
		p.mu.RLock()
		t := p.tenants[key]
		closed := p.closed
		p.mu.RUnlock()
		if closed {
			return false
		}
		if t == nil {
			if t = p.create(key); t == nil {
				return false
			}
		}
		t.touch()
		if t.eng.TrySubmit(pkt) {
			return true
		}
		// Saturation is a real answer; only the eviction race retries.
		if !t.eng.isClosed() {
			return false
		}
	}
}

// MatchPacket vets one packet synchronously against the tenant's live
// signature set, creating the tenant on first use — the per-tenant form
// of Engine.MatchPacket, and the flowcontrol pool-backend hook.
func (p *Pool) MatchPacket(key string, pkt *httpmodel.Packet) []int {
	e := p.Tenant(key)
	if e == nil {
		return nil
	}
	return e.MatchPacket(pkt)
}

// Reload installs the signature set as the pool-wide default: every
// unpinned live tenant hot-reloads it, and future tenants start on it.
// Tenants pinned by ReloadTenant keep their private sets — the pin check
// and the swap are ordered by each tenant's reload lock, so a concurrent
// ReloadTenant can never be overwritten by the default set.
func (p *Pool) Reload(set *signature.Set) {
	p.mu.Lock()
	p.set = set
	targets := make([]*tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		targets = append(targets, t)
	}
	p.mu.Unlock()
	for _, t := range targets {
		t.reloadMu.Lock()
		if !t.pinned {
			t.eng.Reload(set)
		}
		t.reloadMu.Unlock()
	}
}

// ReloadTenant pins a tenant-private signature set — this is how one
// pool serves differently-signed populations (per-app sets, per-cohort
// canary rollouts, the learner's per-tenant published sets). Pool-wide
// Reload no longer touches the tenant. The pin is durable: it is
// recorded even when the tenant is not live (no engine is eagerly
// created — a fleet-wide set catalog can be pinned without
// instantiating every tenant), and it survives idle/LRU eviction, so a
// recreated tenant starts on its pinned set rather than silently
// falling back to the pool default.
func (p *Pool) ReloadTenant(key string, set *signature.Set) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.pins[key] = set
	t := p.tenants[key]
	p.mu.Unlock()
	if t != nil {
		p.applyPin(t)
		t.touch()
	}
}

// Evict drains and retires the tenant, folding its final counters into
// the pool aggregate and returning its shards to the budget. It reports
// whether the tenant existed. The tenant's queued packets are fully
// matched (and its sinks fed) before Evict returns.
func (p *Pool) Evict(key string) bool {
	p.mu.Lock()
	t := p.tenants[key]
	if t == nil {
		p.mu.Unlock()
		return false
	}
	delete(p.tenants, key)
	p.shardsInUse -= t.charged
	if t.charged == 0 {
		p.degraded--
	}
	p.mu.Unlock()

	t.eng.Close() // drains every accepted packet
	final := t.eng.Metrics()
	p.mu.Lock()
	p.retIngested += final.Ingested
	p.retProcessed += final.Processed
	p.retMatched += final.Matched
	p.retDropped += final.Dropped
	p.retSyncVetted += final.SyncVetted
	p.retSyncMatched += final.SyncMatched
	p.retReloads += final.Reloads
	p.mu.Unlock()
	p.evictions.Add(1)
	if p.cfg.OnEvict != nil {
		p.cfg.OnEvict(key, final)
	}
	p.upgradeDegraded()
	return true
}

// upgradeDegraded resizes degraded tenants back up after an eviction
// frees budget, so a tenant admitted during budget exhaustion is not
// stuck on one uncharged shard for its whole life. Each round picks the
// degraded tenant with the most ingested packets — the busiest starved
// tenant — and regrants it a weighted share of the free budget (its
// ingested fraction across all degraded tenants, clamped to the template
// ceiling, floor 2). The upgrade is a drain-and-swap: the old engine
// drains fully, its counters fold into the retained aggregate, and a new
// charged engine takes over the key, landing any pinned set.
func (p *Pool) upgradeDegraded() {
	for {
		p.mu.Lock()
		if p.closed || p.degraded == 0 {
			p.mu.Unlock()
			return
		}
		ceiling := p.cfg.Engine.Shards
		if ceiling <= 0 {
			ceiling = runtime.GOMAXPROCS(0)
		}
		free := p.cfg.ShardBudget - p.shardsInUse
		if ceiling < 2 || free < 2 {
			// A 1-shard template cannot be upgraded; under 2 free shards
			// a regrant would not beat the uncharged shard it replaces.
			p.mu.Unlock()
			return
		}
		var (
			victim *tenant
			weight uint64
			total  uint64
		)
		for _, t := range p.tenants {
			if t.charged != 0 {
				continue
			}
			w := t.eng.ingested.Load() + 1 // +1 so idle tenants still weigh in
			total += w
			if victim == nil || w > weight {
				victim, weight = t, w
			}
		}
		if victim == nil {
			p.mu.Unlock()
			return
		}
		grant := int(uint64(free) * weight / total)
		if grant > ceiling {
			grant = ceiling
		}
		if grant < 2 {
			grant = 2
		}
		delete(p.tenants, victim.key)
		p.degraded--
		p.shardsInUse += grant // reserve before dropping the lock
		set := p.set
		pin, pinned := p.pins[victim.key]
		if pinned {
			set = pin
		}
		p.mu.Unlock()

		victim.eng.Close() // drains every accepted packet before the swap
		final := victim.eng.Metrics()

		cfg := p.cfg.Engine
		cfg.Shards = grant
		if p.cfg.ConfigureTenant != nil {
			cfg = p.cfg.ConfigureTenant(victim.key, cfg)
			if cfg.Shards <= 0 || cfg.Shards > grant {
				cfg.Shards = grant
			}
		}
		nt := &tenant{key: victim.key, eng: New(set, cfg), shards: cfg.Shards, charged: cfg.Shards, pinned: pinned}
		nt.touch()

		p.mu.Lock()
		if refund := grant - nt.shards; refund > 0 {
			p.shardsInUse -= refund // ConfigureTenant took fewer shards
		}
		// The drained engine's history must survive the swap, exactly as
		// it survives an eviction.
		p.retIngested += final.Ingested
		p.retProcessed += final.Processed
		p.retMatched += final.Matched
		p.retDropped += final.Dropped
		p.retSyncVetted += final.SyncVetted
		p.retSyncMatched += final.SyncMatched
		p.retReloads += final.Reloads
		if p.closed || p.tenants[victim.key] != nil {
			// The pool closed, or a producer recreated the tenant while
			// the old engine drained; the recreation already charged the
			// post-eviction budget, so defer to it and roll back ours.
			p.shardsInUse -= nt.charged
			p.mu.Unlock()
			nt.eng.Close()
			if p.isClosed() {
				return
			}
			continue
		}
		p.tenants[victim.key] = nt
		latest, stillPinned := p.pins[victim.key]
		p.mu.Unlock()
		if stillPinned && latest != set {
			p.applyPin(nt)
		}
		p.upgrades.Add(1)
	}
}

// runJanitor periodically evicts tenants idle longer than IdleAfter.
func (p *Pool) runJanitor() {
	defer close(p.janitorDone)
	tick := time.NewTicker(p.cfg.SweepInterval)
	defer tick.Stop()
	for {
		select {
		case <-p.stopJanitor:
			return
		case <-tick.C:
			cutoff := time.Now().Add(-p.cfg.IdleAfter).UnixNano()
			p.mu.RLock()
			var idle []string
			for k, t := range p.tenants {
				if t.lastActive.Load() < cutoff {
					idle = append(idle, k)
				}
			}
			p.mu.RUnlock()
			for _, k := range idle {
				p.Evict(k)
			}
		}
	}
}

// Tenants returns the live tenant keys in unspecified order.
func (p *Pool) Tenants() []string {
	p.mu.RLock()
	defer p.mu.RUnlock()
	keys := make([]string, 0, len(p.tenants))
	for k := range p.tenants {
		keys = append(keys, k)
	}
	return keys
}

// TenantMetrics returns the tenant's snapshot and whether it is live.
func (p *Pool) TenantMetrics(key string) (Snapshot, bool) {
	p.mu.RLock()
	t := p.tenants[key]
	p.mu.RUnlock()
	if t == nil {
		return Snapshot{}, false
	}
	return t.eng.Metrics(), true
}

// Flush blocks until every packet accepted so far by every live tenant
// has been matched.
func (p *Pool) Flush() {
	p.mu.RLock()
	engines := make([]*Engine, 0, len(p.tenants))
	for _, t := range p.tenants {
		engines = append(engines, t.eng)
	}
	p.mu.RUnlock()
	for _, e := range engines {
		e.Flush()
	}
}

// Close stops the janitor, drains and closes every tenant, and makes all
// further submissions fail. Close is idempotent.
func (p *Pool) Close() {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return
	}
	p.closed = true
	tenants := make([]*tenant, 0, len(p.tenants))
	for _, t := range p.tenants {
		tenants = append(tenants, t)
	}
	p.tenants = make(map[string]*tenant)
	p.shardsInUse = 0
	p.degraded = 0
	p.mu.Unlock()

	close(p.stopJanitor)
	<-p.janitorDone
	for _, t := range tenants {
		t.eng.Close()
		final := t.eng.Metrics()
		p.mu.Lock()
		p.retIngested += final.Ingested
		p.retProcessed += final.Processed
		p.retMatched += final.Matched
		p.retDropped += final.Dropped
		p.retSyncVetted += final.SyncVetted
		p.retSyncMatched += final.SyncMatched
		p.retReloads += final.Reloads
		p.mu.Unlock()
	}
}

// PoolSnapshot is a point-in-time view of the pool: per-tenant engine
// snapshots plus lifetime aggregates that include evicted tenants.
type PoolSnapshot struct {
	Tenants     int    // live tenants
	Created     uint64 // tenants ever created
	Evicted     uint64 // tenants evicted (idle, LRU, or explicit)
	Upgraded    uint64 // degraded tenants regranted charged shards after budget freed
	ShardBudget int    // configured global shard budget
	ShardsInUse int    // shards charged by live tenants (never exceeds ShardBudget)

	// DegradedTenants counts live tenants created after the budget was
	// exhausted: they run on a single uncharged shard until an eviction
	// frees budget and the pool upgrades them back to charged grants, so
	// a non-zero value is the operator's signal of sustained budget
	// pressure.
	DegradedTenants int

	// Aggregate sums counters across live and evicted tenants. Its
	// latency quantiles are zero — per-tenant quantiles cannot be merged
	// soundly; read them from PerTenant.
	Aggregate Snapshot

	PerTenant map[string]Snapshot
}

// Metrics assembles a pool snapshot. It is safe to call while streaming.
func (p *Pool) Metrics() PoolSnapshot {
	p.mu.RLock()
	tenants := make(map[string]*tenant, len(p.tenants))
	for k, t := range p.tenants {
		tenants[k] = t
	}
	snap := PoolSnapshot{
		Tenants:         len(tenants),
		Created:         p.created.Load(),
		Evicted:         p.evictions.Load(),
		Upgraded:        p.upgrades.Load(),
		ShardBudget:     p.cfg.ShardBudget,
		ShardsInUse:     p.shardsInUse,
		DegradedTenants: p.degraded,
		PerTenant:       make(map[string]Snapshot, len(tenants)),
		Aggregate: Snapshot{
			Ingested:    p.retIngested,
			Processed:   p.retProcessed,
			Matched:     p.retMatched,
			Dropped:     p.retDropped,
			SyncVetted:  p.retSyncVetted,
			SyncMatched: p.retSyncMatched,
			Reloads:     p.retReloads,
			Uptime:      time.Since(p.start),
		},
	}
	p.mu.RUnlock()
	for k, t := range tenants {
		m := t.eng.Metrics()
		snap.PerTenant[k] = m
		snap.Aggregate.Shards += m.Shards
		snap.Aggregate.Ingested += m.Ingested
		snap.Aggregate.Processed += m.Processed
		snap.Aggregate.Matched += m.Matched
		snap.Aggregate.Dropped += m.Dropped
		snap.Aggregate.SyncVetted += m.SyncVetted
		snap.Aggregate.SyncMatched += m.SyncMatched
		snap.Aggregate.Reloads += m.Reloads
		snap.Aggregate.QueueDepth += m.QueueDepth
	}
	if secs := snap.Aggregate.Uptime.Seconds(); secs > 0 {
		snap.Aggregate.PacketsPerSec = float64(snap.Aggregate.Processed) / secs
	}
	if snap.Aggregate.Processed > 0 {
		snap.Aggregate.MatchRate = float64(snap.Aggregate.Matched) / float64(snap.Aggregate.Processed)
	}
	return snap
}
