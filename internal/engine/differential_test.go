package engine

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"testing"

	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// diffRef rebuilds the engine's pre-ring submit path in miniature: a
// mutex-guarded accumulator that flushes fixed-size batches onto a
// channel, drained by one matching worker. It is the differential
// baseline for the lock-free ring path — same packets in, and the
// per-packet matched-ID decisions must come out identical.
type diffRef struct {
	eng   *detect.Engine
	batch int

	mu  sync.Mutex
	acc []*httpmodel.Packet

	ch  chan []*httpmodel.Packet
	wg  sync.WaitGroup
	out sync.Map // packet ID -> []int matched
}

func newDiffRef(set *signature.Set, batch int) *diffRef {
	r := &diffRef{eng: detect.NewEngine(set), batch: batch, ch: make(chan []*httpmodel.Packet, 64)}
	r.wg.Add(1)
	go func() {
		defer r.wg.Done()
		var sc detect.Scratch
		for b := range r.ch {
			for _, p := range b {
				r.out.Store(p.ID, append([]int(nil), r.eng.MatchInto(p, &sc)...))
			}
		}
	}()
	return r
}

func (r *diffRef) submit(p *httpmodel.Packet) {
	r.mu.Lock()
	r.acc = append(r.acc, p)
	var flush []*httpmodel.Packet
	if len(r.acc) >= r.batch {
		flush, r.acc = r.acc, nil
	}
	r.mu.Unlock()
	if flush != nil {
		r.ch <- flush
	}
}

func (r *diffRef) close() {
	r.mu.Lock()
	rest := r.acc
	r.acc = nil
	r.mu.Unlock()
	if len(rest) > 0 {
		r.ch <- rest
	}
	close(r.ch)
	r.wg.Wait()
}

// diffPacket fabricates one packet from a randomized class: clean (no
// tokens), partial (the shared token only — every signature needs both),
// or a leak against signature k of scratchTestSet.
func diffPacket(id int64, rng *rand.Rand, sigs int) *httpmodel.Packet {
	var path string
	switch rng.Intn(3) {
	case 0:
		path = "/a?x=1"
	case 1:
		path = "/a?shared=&x=1"
	default:
		path = fmt.Sprintf("/a?shared=&tok-%04d=v", rng.Intn(sigs))
	}
	return &httpmodel.Packet{
		ID:     id,
		Host:   fmt.Sprintf("h%d.example", rng.Intn(17)),
		Method: "GET",
		Path:   path,
		Proto:  "HTTP/1.1",
	}
}

// TestDifferentialRingVsChannelSubmit streams randomized multi-producer
// interleavings through the ring-based engine and the channel-based
// reference simultaneously, then requires the per-packet-ID matched-ID
// decisions to agree exactly. Run under -race this also exercises the
// ring's multi-producer publication ordering.
func TestDifferentialRingVsChannelSubmit(t *testing.T) {
	const (
		producers   = 4
		perProducer = 2500
		sigs        = 64
	)
	set := scratchTestSet(sigs)

	var got sync.Map // packet ID -> []int matched
	e := New(set, Config{
		Shards: 4, BatchSize: 8, MinBatch: 1, MaxBatch: 64, QueueDepth: 256,
		OnVerdict: func(v Verdict) {
			got.Store(v.Packet.ID, append([]int(nil), v.Matched...))
		},
	})
	ref := newDiffRef(set, 7)

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(1000 + w)))
			for i := 0; i < perProducer; i++ {
				p := diffPacket(int64(w*perProducer+i), rng, sigs)
				// Randomize which path sees the packet first, so neither
				// engine's ordering is systematically ahead.
				if rng.Intn(2) == 0 {
					if err := e.Submit(p); err != nil {
						t.Error(err)
						return
					}
					ref.submit(p)
				} else {
					ref.submit(p)
					if err := e.Submit(p); err != nil {
						t.Error(err)
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	e.Close()
	ref.close()

	total := 0
	ref.out.Range(func(id, want any) bool {
		total++
		g, ok := got.Load(id)
		if !ok {
			t.Errorf("packet %d: ring engine produced no verdict", id)
			return false
		}
		gs, ws := g.([]int), want.([]int)
		sort.Ints(gs)
		sort.Ints(ws)
		if len(gs) != len(ws) {
			t.Errorf("packet %d: ring matched %v, channel reference matched %v", id, gs, ws)
			return false
		}
		for i := range gs {
			if gs[i] != ws[i] {
				t.Errorf("packet %d: ring matched %v, channel reference matched %v", id, gs, ws)
				return false
			}
		}
		return true
	})
	if total != producers*perProducer {
		t.Errorf("reference decided %d packets, want %d", total, producers*perProducer)
	}
}

// TestDifferentialVerdictsAcrossReload extends the scratch-safety hammer
// with a decision oracle: while producers stream all four payload
// classes and the main goroutine flips the live set between v1 and v2,
// every verdict must be consistent with the signature-set version it was
// decided under, and no packet may be dropped. Whichever side of a
// reload a packet lands on, its (Version, payload) pair has exactly one
// correct answer.
func TestDifferentialVerdictsAcrossReload(t *testing.T) {
	v1 := tokenSet(1, "alpha-token")
	v2 := tokenSet(2, "beta-token")

	// class -> payload; expected leak is a pure function of (class, version).
	payloads := []string{"zone=1", "alpha-token", "beta-token", "alpha-token&beta-token"}
	expect := func(class int, version int64) bool {
		switch class {
		case 1:
			return version == 1
		case 2:
			return version == 2
		case 3:
			return true
		}
		return false
	}

	const (
		producers   = 3
		perProducer = 4000
	)
	classOf := make([]int, producers*perProducer)
	var verdicts sync.Map // packet ID -> Verdict
	e := New(v1, Config{
		Shards: 2, BatchSize: 8, QueueDepth: 256,
		OnVerdict: func(v Verdict) { verdicts.Store(v.Packet.ID, v) },
	})

	var wg sync.WaitGroup
	for w := 0; w < producers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(2000 + w)))
			for i := 0; i < perProducer; i++ {
				id := w*perProducer + i
				class := rng.Intn(len(payloads))
				classOf[id] = class
				p := pkt(int64(id), fmt.Sprintf("h%d.example", rng.Intn(11)), payloads[class])
				if err := e.Submit(p); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 100; i++ {
		if i%2 == 0 {
			e.Reload(v2)
		} else {
			e.Reload(v1)
		}
	}
	wg.Wait()
	e.Close()

	n := 0
	verdicts.Range(func(id, vv any) bool {
		n++
		v := vv.(Verdict)
		if v.Version != 1 && v.Version != 2 {
			t.Errorf("packet %d: verdict under unknown version %d", id, v.Version)
			return false
		}
		if want := expect(classOf[id.(int64)], v.Version); v.Leak() != want {
			t.Errorf("packet %d (class %d): leak=%v under version %d, want %v",
				id, classOf[id.(int64)], v.Leak(), v.Version, want)
			return false
		}
		return true
	})
	if n != producers*perProducer {
		t.Errorf("verdicts = %d, want %d: packets dropped across reloads", n, producers*perProducer)
	}
	if m := e.Metrics(); m.Processed != m.Ingested {
		t.Errorf("processed %d != ingested %d after drain", m.Processed, m.Ingested)
	}
}
