package engine

import (
	"fmt"
	"sync"
	"time"

	"leaksig/internal/stats"
)

// latencySampleEvery controls queue-to-verdict latency sampling: recording
// a latency costs two clock reads, so only every N-th accepted packet is
// timed. At streaming volumes the sampled quantiles converge on the true
// ones while the hot path stays free of clock calls.
const latencySampleEvery = 64

// latencyWindow is how many recent latency samples each shard retains for
// the quantile snapshot.
const latencyWindow = 1024

// latencyRing is a fixed-size ring of recent latency samples, one per
// shard so recording never contends across shards.
type latencyRing struct {
	mu  sync.Mutex
	buf []int64 // nanoseconds
	n   uint64  // total samples ever recorded
}

func newLatencyRing() *latencyRing {
	return &latencyRing{buf: make([]int64, latencyWindow)}
}

func (r *latencyRing) record(d time.Duration) {
	r.mu.Lock()
	r.buf[r.n%uint64(len(r.buf))] = int64(d)
	r.n++
	r.mu.Unlock()
}

// samples returns the retained window in microseconds, ready for a CDF.
func (r *latencyRing) samples() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	n := r.n
	if n > uint64(len(r.buf)) {
		n = uint64(len(r.buf))
	}
	out := make([]int, n)
	for i := uint64(0); i < n; i++ {
		out[i] = int(r.buf[i] / int64(time.Microsecond))
	}
	return out
}

// Snapshot is a point-in-time view of the engine's counters and latency
// distribution.
type Snapshot struct {
	Shards     int   // worker count
	Version    int64 // signature-set version currently live
	Signatures int   // signatures in the live set
	Reloads    int64 // hot reloads applied since construction

	// ReloadGen is the generation ticket of the live set: it increases
	// with every applied reload and, because ReloadAsync coalesces
	// bursts, may skip tickets that were superseded before compiling.
	ReloadGen uint64
	// ReloadIssued is the highest ticket ever handed out. The gap to
	// ReloadGen is the coalescing outcome: issued − applied reloads were
	// superseded (or are still pending) rather than compiled.
	ReloadIssued uint64
	// PendingReload reports an async reload compile queued or in flight.
	PendingReload bool
	// LastReload is the compile+install wall time of the last applied
	// reload — the churn-cost signal for the reload-latency metric.
	LastReload time.Duration

	Ingested  uint64 // packets accepted by Submit/TrySubmit
	Processed uint64 // packets matched and emitted
	Matched   uint64 // processed packets that matched >= 1 signature
	Dropped   uint64 // packets rejected by TrySubmit under backpressure

	SyncVetted  uint64 // packets vetted inline via MatchPacket (proxy path)
	SyncMatched uint64 // inline vets that matched >= 1 signature

	QueueDepth  int           // packets accepted but not yet processed
	BatchTarget int           // mean adaptive batch target across shards
	Uptime      time.Duration // since construction

	PacketsPerSec float64 // processed / uptime
	MatchRate     float64 // matched / processed, in [0, 1]

	P50 time.Duration // median queue-to-verdict latency (sampled)
	P99 time.Duration // tail queue-to-verdict latency (sampled)
}

// String renders the snapshot as one log-friendly line.
func (s Snapshot) String() string {
	return fmt.Sprintf(
		"engine: v%d sigs=%d shards=%d reloads=%d in=%d out=%d matched=%d dropped=%d sync=%d/%d queue=%d batch=%d pps=%.0f matchrate=%.4f p50=%s p99=%s",
		s.Version, s.Signatures, s.Shards, s.Reloads,
		s.Ingested, s.Processed, s.Matched, s.Dropped,
		s.SyncMatched, s.SyncVetted,
		s.QueueDepth, s.BatchTarget, s.PacketsPerSec, s.MatchRate, s.P50, s.P99)
}

// ShardStat is one worker shard's share of the engine counters — the
// per-shard breakdown behind Snapshot, for shard-labeled exposition and
// load-balance diagnostics (a hot host hashing every packet onto one
// shard shows up here long before it shows in the aggregate).
type ShardStat struct {
	Processed   uint64 // packets this shard matched
	Matched     uint64 // processed packets that matched >= 1 signature
	BatchTarget int    // current adaptive drain target
	RingDepth   int    // packets occupying the shard's MPSC ring
}

// ShardStats returns the per-shard counters, indexed by shard. It is
// safe to call concurrently with streaming.
func (e *Engine) ShardStats() []ShardStat {
	out := make([]ShardStat, len(e.shards))
	for i, s := range e.shards {
		out[i] = ShardStat{
			Processed:   s.processed.Load(),
			Matched:     s.matched.Load(),
			BatchTarget: int(s.target.Load()),
			RingDepth:   s.ring.len(),
		}
	}
	return out
}

// Metrics assembles a snapshot from the per-shard counters. It is safe to
// call concurrently with streaming.
func (e *Engine) Metrics() Snapshot {
	cs := e.set.Load()
	snap := Snapshot{
		Shards:        len(e.shards),
		Version:       cs.version,
		Signatures:    cs.sigs,
		Reloads:       e.reloads.Load(),
		ReloadGen:     cs.gen,
		ReloadIssued:  e.reloadGen.Load(),
		PendingReload: e.pending.Load() != nil || e.compiling.Load(),
		LastReload:    time.Duration(e.lastReloadNs.Load()),
		Ingested:      e.ingested.Load(),
		Dropped:       e.dropped.Load(),
		SyncVetted:    e.syncVetted.Load(),
		SyncMatched:   e.syncMatched.Load(),
		Uptime:        time.Since(e.start),
	}
	var lat []int
	var targets int
	for _, s := range e.shards {
		snap.Processed += s.processed.Load()
		snap.Matched += s.matched.Load()
		targets += int(s.target.Load())
		lat = append(lat, s.lat.samples()...)
	}
	if len(e.shards) > 0 {
		snap.BatchTarget = targets / len(e.shards)
	}
	if pending := snap.Ingested - snap.Processed; pending <= snap.Ingested {
		snap.QueueDepth = int(pending)
	}
	if secs := snap.Uptime.Seconds(); secs > 0 {
		snap.PacketsPerSec = float64(snap.Processed) / secs
	}
	if snap.Processed > 0 {
		snap.MatchRate = float64(snap.Matched) / float64(snap.Processed)
	}
	if len(lat) > 0 {
		cdf := stats.NewCDF(lat)
		snap.P50 = time.Duration(cdf.Quantile(0.50)) * time.Microsecond
		snap.P99 = time.Duration(cdf.Quantile(0.99)) * time.Microsecond
	}
	return snap
}
