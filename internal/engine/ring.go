package engine

import (
	"sync/atomic"
)

// ring is the bounded lock-free multi-producer single-consumer queue
// feeding one shard's worker — the replacement for the old mutex-guarded
// accumulator + channel hop on the submit path. Producers claim a slot
// with one CAS on the tail ticket and publish with one atomic store;
// the consumer drains runs of published slots with plain loads and a
// single head advance. No mutex, no channel send, and — the point — no
// per-batch slice allocation anywhere on the packet path.
//
// The layout is the classic Vyukov bounded queue: each slot carries a
// sequence number that encodes whose turn it is. seq == pos means the
// slot is free for the producer claiming ticket pos; seq == pos+1 means
// the item at pos is published and readable; after consumption the slot
// is re-armed with seq = pos + capacity for its next lap.
//
// Wakeups use a parked flag plus a one-slot channel. The consumer sets
// parked before re-checking emptiness; producers publish before loading
// parked. Both are sequentially consistent atomics, so either the
// consumer's emptiness check sees the new item or the producer's parked
// load sees the flag — a lost wakeup is impossible (the Dekker pattern).
type ring struct {
	mask  uint64
	slots []ringSlot

	_    [56]byte // keep tail and head off each other's cache line
	tail atomic.Uint64
	_    [56]byte
	head atomic.Uint64
	_    [56]byte

	parked atomic.Int32
	wake   chan struct{}
}

type ringSlot struct {
	seq atomic.Uint64
	it  item
}

// newRing builds a ring with at least the requested capacity, rounded up
// to a power of two. The floor is 2: in a 1-slot ring the published
// marker (pos+1) and the next lap's free marker (pos+capacity) collide,
// letting a producer overwrite an unconsumed item.
func newRing(capacity int) *ring {
	n := 2
	for n < capacity {
		n <<= 1
	}
	r := &ring{
		mask:  uint64(n - 1),
		slots: make([]ringSlot, n),
		wake:  make(chan struct{}, 1),
	}
	for i := range r.slots {
		r.slots[i].seq.Store(uint64(i))
	}
	return r
}

// push enqueues one item, returning false when the ring is full. Safe for
// any number of concurrent producers.
func (r *ring) push(it item) bool {
	for {
		pos := r.tail.Load()
		s := &r.slots[pos&r.mask]
		switch d := int64(s.seq.Load()) - int64(pos); {
		case d == 0:
			if r.tail.CompareAndSwap(pos, pos+1) {
				s.it = it
				s.seq.Store(pos + 1)
				if r.parked.Load() == 1 {
					select {
					case r.wake <- struct{}{}:
					default:
					}
				}
				return true
			}
		case d < 0:
			return false // a full lap behind: the ring is full
		}
		// d > 0: another producer claimed pos first; reload and retry.
	}
}

// drain pops up to len(buf) published items into buf, returning how many
// it copied. Consumer-side only. It stops at the first unpublished slot,
// so a producer preempted between claim and publish stalls the consumer
// for at most its own slot.
func (r *ring) drain(buf []item) int {
	pos := r.head.Load()
	n := 0
	for n < len(buf) {
		s := &r.slots[pos&r.mask]
		if s.seq.Load() != pos+1 {
			break
		}
		buf[n] = s.it
		s.it.p = nil // drop the packet ref: the ring must not pin drained packets
		s.seq.Store(pos + uint64(len(r.slots)))
		pos++
		n++
	}
	if n > 0 {
		r.head.Store(pos)
	}
	return n
}

// empty reports whether no published item waits at the head.
func (r *ring) empty() bool {
	pos := r.head.Load()
	return r.slots[pos&r.mask].seq.Load() != pos+1
}

// len approximates the occupancy (claimed slots, published or not).
func (r *ring) len() int {
	if d := r.tail.Load() - r.head.Load(); d <= uint64(len(r.slots)) {
		return int(d)
	}
	return len(r.slots)
}

// park blocks the consumer until an item is published or stop closes.
// Callers must re-check the ring after park returns; stale wakeups are
// possible and benign.
func (r *ring) park(stop <-chan struct{}) {
	r.parked.Store(1)
	if !r.empty() {
		r.parked.Store(0)
		return
	}
	select {
	case <-r.wake:
	case <-stop:
	}
	r.parked.Store(0)
}
