package engine

import "sync"

// VerdictBatch is a pooled, arena-backed batch of verdicts: one worker
// drain's worth of results whose Matched slices are all carved from a
// single shared []int arena. Batches are recycled through a sync.Pool,
// so in the steady state the full-verdict delivery path allocates
// nothing per packet — the leak-verdict copy that used to cost one
// allocation per leaking packet lands in the arena instead.
//
// A batch handed to a BatchShardSink is valid only for the duration of
// the call: the engine resets and re-pools it as soon as the sink
// returns. A consumer that retains verdicts (or their Matched slices)
// past the call must copy them. Sinks that need the retain-forever
// contract should stay on the per-verdict ShardSink path, where the
// engine copies Matched for every leak.
type VerdictBatch struct {
	verdicts []Verdict
	ids      []int   // arena backing every Matched slice in the batch
	spans    []vspan // per-verdict arena extent, resolved at seal time
}

type vspan struct{ off, n int }

// Verdicts returns the batch contents, one verdict per packet in shard
// order. Valid only until the sink call returns.
func (b *VerdictBatch) Verdicts() []Verdict { return b.verdicts }

// add appends one verdict, copying ids into the arena. Matched pointers
// are not materialized yet — the arena may still move while growing —
// so callers must seal before handing the batch out.
func (b *VerdictBatch) add(v Verdict, ids []int) {
	b.spans = append(b.spans, vspan{off: len(b.ids), n: len(ids)})
	b.ids = append(b.ids, ids...)
	b.verdicts = append(b.verdicts, v)
}

// seal materializes every verdict's Matched slice against the final
// arena. Capacity-clamped subslices keep a consumer's append from
// bleeding into its neighbor's IDs.
func (b *VerdictBatch) seal() {
	for i := range b.verdicts {
		if sp := b.spans[i]; sp.n > 0 {
			b.verdicts[i].Matched = b.ids[sp.off : sp.off+sp.n : sp.off+sp.n]
		}
	}
}

// reset clears the batch for reuse, keeping the backing arrays.
func (b *VerdictBatch) reset() {
	for i := range b.verdicts {
		b.verdicts[i] = Verdict{} // drop packet refs so the pool doesn't pin them
	}
	b.verdicts = b.verdicts[:0]
	b.ids = b.ids[:0]
	b.spans = b.spans[:0]
}

// vbatchPool recycles VerdictBatches across all engines; batches are
// handed out and returned only by shard workers.
var vbatchPool = sync.Pool{New: func() any { return new(VerdictBatch) }}

// BatchShardSink is the batch-delivery extension of ShardSink. When a
// bound shard sink implements it (and the engine has no OnVerdict
// callback), the worker assembles each drain's verdicts into one pooled
// VerdictBatch and calls Batch once, instead of calling Verdict per
// packet — the zero-allocation verdict path. The batch is valid only
// during the call; see VerdictBatch.
type BatchShardSink interface {
	ShardSink
	Batch(b *VerdictBatch)
}

// BatchCallbackSink adapts a per-batch function to the Sink interface —
// the batch-delivery analogue of CallbackSink. The slice passed to fn is
// valid only during the call and fn runs on shard worker goroutines
// concurrently, so it must be safe for that and must copy anything it
// keeps.
func BatchCallbackSink(fn func([]Verdict)) Sink { return batchCallbackSink{fn} }

type batchCallbackSink struct{ fn func([]Verdict) }

func (s batchCallbackSink) Bind(shard, shards int) ShardSink { return s }
func (s batchCallbackSink) CountOnly() bool                  { return false }
func (s batchCallbackSink) Count(bool)                       {}
func (s batchCallbackSink) Verdict(v Verdict)                { s.fn([]Verdict{v}) }
func (s batchCallbackSink) Batch(b *VerdictBatch)            { s.fn(b.Verdicts()) }
