package engine

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// sinkWorkload streams n packets, every third a leak, through an engine
// built by mk and returns it closed.
func sinkWorkload(t *testing.T, n int, cfg Config) *Engine {
	t.Helper()
	e := New(tokenSet(1, "udid=f3a9c1d2"), cfg)
	for i := 0; i < n; i++ {
		payload := "zone=1"
		if i%3 == 0 {
			payload = "udid=f3a9c1d2"
		}
		if err := e.Submit(pkt(int64(i), fmt.Sprintf("h%d.example.com", i%11), payload)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	return e
}

func TestCountSinkTotals(t *testing.T) {
	const n = 900
	sink := NewCountSink()
	e := sinkWorkload(t, n, Config{Shards: 4, BatchSize: 16, Sink: sink})
	packets, leaks := sink.Totals()
	if packets != n {
		t.Fatalf("count sink saw %d packets, want %d", packets, n)
	}
	if want := uint64(n / 3); leaks != want {
		t.Fatalf("count sink saw %d leaks, want %d", leaks, want)
	}
	m := e.Metrics()
	if m.Processed != packets || m.Matched != leaks {
		t.Fatalf("sink totals (%d, %d) disagree with metrics (%d, %d)",
			packets, leaks, m.Processed, m.Matched)
	}
	// No OnVerdict and a count-only sink: every shard took the fast path.
	for i, s := range e.shards {
		if !s.countOnly {
			t.Errorf("shard %d not on the count-only fast path", i)
		}
	}
}

func TestCallbackSinkMatchesOnVerdict(t *testing.T) {
	const n = 600
	var viaSink, viaCallback atomic.Uint64
	sinkWorkload(t, n, Config{Shards: 2, BatchSize: 8,
		Sink: CallbackSink(func(v Verdict) {
			if v.Leak() {
				viaSink.Add(1)
			}
		})})
	sinkWorkload(t, n, Config{Shards: 2, BatchSize: 8,
		OnVerdict: func(v Verdict) {
			if v.Leak() {
				viaCallback.Add(1)
			}
		}})
	if viaSink.Load() != viaCallback.Load() || viaSink.Load() != n/3 {
		t.Fatalf("CallbackSink saw %d leaks, OnVerdict saw %d, want %d",
			viaSink.Load(), viaCallback.Load(), n/3)
	}
}

// TestSinkAndCallbackBothFire checks that configuring both delivery paths
// feeds both, which forces the full-verdict path even for a count-only
// sink.
func TestSinkAndCallbackBothFire(t *testing.T) {
	const n = 300
	sink := NewCountSink()
	var callbacks atomic.Uint64
	e := sinkWorkload(t, n, Config{Shards: 2, BatchSize: 8,
		Sink:      sink,
		OnVerdict: func(Verdict) { callbacks.Add(1) },
	})
	packets, _ := sink.Totals()
	if packets != n || callbacks.Load() != n {
		t.Fatalf("sink saw %d, callback saw %d, want %d each", packets, callbacks.Load(), n)
	}
	for i, s := range e.shards {
		if s.countOnly {
			t.Errorf("shard %d took the count-only path despite OnVerdict", i)
		}
	}
}

// TestCountSinkSharedAcrossEngines is the pool-template scenario: one sink
// bound by two engines with different shard counts aggregates both.
func TestCountSinkSharedAcrossEngines(t *testing.T) {
	sink := NewCountSink()
	mk := func(shards, n int) {
		e := New(tokenSet(1, "udid=f3a9c1d2"), Config{Shards: shards, BatchSize: 4, Sink: sink})
		for i := 0; i < n; i++ {
			if err := e.Submit(pkt(int64(i), "a.example.com", "udid=f3a9c1d2")); err != nil {
				t.Fatal(err)
			}
		}
		e.Close()
	}
	mk(1, 100)
	mk(4, 200)
	packets, leaks := sink.Totals()
	if packets != 300 || leaks != 300 {
		t.Fatalf("shared sink totals = (%d, %d), want (300, 300)", packets, leaks)
	}
}
