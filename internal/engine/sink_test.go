package engine

import (
	"fmt"
	"sync/atomic"
	"testing"
)

// sinkWorkload streams n packets, every third a leak, through an engine
// built by mk and returns it closed.
func sinkWorkload(t *testing.T, n int, cfg Config) *Engine {
	t.Helper()
	e := New(tokenSet(1, "udid=f3a9c1d2"), cfg)
	for i := 0; i < n; i++ {
		payload := "zone=1"
		if i%3 == 0 {
			payload = "udid=f3a9c1d2"
		}
		if err := e.Submit(pkt(int64(i), fmt.Sprintf("h%d.example.com", i%11), payload)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	return e
}

func TestCountSinkTotals(t *testing.T) {
	const n = 900
	sink := NewCountSink()
	e := sinkWorkload(t, n, Config{Shards: 4, BatchSize: 16, Sink: sink})
	packets, leaks := sink.Totals()
	if packets != n {
		t.Fatalf("count sink saw %d packets, want %d", packets, n)
	}
	if want := uint64(n / 3); leaks != want {
		t.Fatalf("count sink saw %d leaks, want %d", leaks, want)
	}
	m := e.Metrics()
	if m.Processed != packets || m.Matched != leaks {
		t.Fatalf("sink totals (%d, %d) disagree with metrics (%d, %d)",
			packets, leaks, m.Processed, m.Matched)
	}
	// No OnVerdict and a count-only sink: every shard took the fast path.
	for i, s := range e.shards {
		if !s.countOnly {
			t.Errorf("shard %d not on the count-only fast path", i)
		}
	}
}

func TestCallbackSinkMatchesOnVerdict(t *testing.T) {
	const n = 600
	var viaSink, viaCallback atomic.Uint64
	sinkWorkload(t, n, Config{Shards: 2, BatchSize: 8,
		Sink: CallbackSink(func(v Verdict) {
			if v.Leak() {
				viaSink.Add(1)
			}
		})})
	sinkWorkload(t, n, Config{Shards: 2, BatchSize: 8,
		OnVerdict: func(v Verdict) {
			if v.Leak() {
				viaCallback.Add(1)
			}
		}})
	if viaSink.Load() != viaCallback.Load() || viaSink.Load() != n/3 {
		t.Fatalf("CallbackSink saw %d leaks, OnVerdict saw %d, want %d",
			viaSink.Load(), viaCallback.Load(), n/3)
	}
}

// TestSinkAndCallbackBothFire checks that configuring both delivery paths
// feeds both, which forces the full-verdict path even for a count-only
// sink.
func TestSinkAndCallbackBothFire(t *testing.T) {
	const n = 300
	sink := NewCountSink()
	var callbacks atomic.Uint64
	e := sinkWorkload(t, n, Config{Shards: 2, BatchSize: 8,
		Sink:      sink,
		OnVerdict: func(Verdict) { callbacks.Add(1) },
	})
	packets, _ := sink.Totals()
	if packets != n || callbacks.Load() != n {
		t.Fatalf("sink saw %d, callback saw %d, want %d each", packets, callbacks.Load(), n)
	}
	for i, s := range e.shards {
		if s.countOnly {
			t.Errorf("shard %d took the count-only path despite OnVerdict", i)
		}
	}
}

// TestCountSinkSharedAcrossEngines is the pool-template scenario: one sink
// bound by two engines with different shard counts aggregates both.
func TestCountSinkSharedAcrossEngines(t *testing.T) {
	sink := NewCountSink()
	mk := func(shards, n int) {
		e := New(tokenSet(1, "udid=f3a9c1d2"), Config{Shards: shards, BatchSize: 4, Sink: sink})
		for i := 0; i < n; i++ {
			if err := e.Submit(pkt(int64(i), "a.example.com", "udid=f3a9c1d2")); err != nil {
				t.Fatal(err)
			}
		}
		e.Close()
	}
	mk(1, 100)
	mk(4, 200)
	packets, leaks := sink.Totals()
	if packets != 300 || leaks != 300 {
		t.Fatalf("shared sink totals = (%d, %d), want (300, 300)", packets, leaks)
	}
}

func TestTeeSinkFansOut(t *testing.T) {
	const n = 600
	count := NewCountSink()
	var cb atomic.Uint64
	sinkWorkload(t, n, Config{Shards: 2, BatchSize: 8,
		Sink: TeeSink(count, CallbackSink(func(v Verdict) {
			if v.Leak() {
				cb.Add(1)
			}
		}))})
	packets, leaks := count.Totals()
	if packets != n || leaks != n/3 {
		t.Fatalf("count side saw (%d, %d), want (%d, %d)", packets, leaks, n, n/3)
	}
	if cb.Load() != n/3 {
		t.Fatalf("callback side saw %d leaks, want %d", cb.Load(), n/3)
	}
}

func TestTeeSinkCountOnlyOnlyWhenAllChildrenAre(t *testing.T) {
	countA, countB := NewCountSink(), NewCountSink()
	if !TeeSink(countA, countB).Bind(0, 1).CountOnly() {
		t.Fatal("tee of count-only sinks should be count-only")
	}
	if TeeSink(countA, CallbackSink(func(Verdict) {})).Bind(0, 1).CountOnly() {
		t.Fatal("tee with a verdict consumer must not be count-only")
	}
	if TeeSink() != nil {
		t.Fatal("empty tee should be nil")
	}
	if TeeSink(countA) != Sink(countA) {
		t.Fatal("single-child tee should unwrap")
	}
}

func TestMatchPacketSyncTelemetry(t *testing.T) {
	e := New(tokenSet(1, "udid=f3a9c1d2"), Config{Shards: 1})
	defer e.Close()
	e.MatchPacket(pkt(1, "a.example.com", "udid=f3a9c1d2"))
	e.MatchPacket(pkt(2, "a.example.com", "zone=1"))
	m := e.Metrics()
	if m.SyncVetted != 2 || m.SyncMatched != 1 {
		t.Fatalf("sync telemetry = %d/%d, want 2/1", m.SyncMatched, m.SyncVetted)
	}
	if m.Ingested != 0 || m.Processed != 0 {
		t.Fatalf("inline vets must not touch the stream counters: %+v", m)
	}
}
