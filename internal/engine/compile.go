package engine

import (
	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// compiledSet is one immutable, fully compiled generation of the signature
// set. The engine swaps whole generations through an atomic pointer; shard
// workers load the pointer once per batch, so a reload can never tear
// mid-batch and the hot path takes no lock.
type compiledSet struct {
	eng     *detect.Engine
	version int64
	sigs    int

	// gen is the reload ticket this generation was compiled under.
	// install applies generations strictly monotonically by gen, so a
	// slow background compile can never clobber a newer set (the
	// double-buffered ReloadAsync invariant).
	gen uint64
}

// compile builds a generation from a signature set — including the dense
// Aho–Corasick automaton and the inverted token→signature index, built
// once per hot reload, off the hot path. A nil set compiles to an empty
// generation that matches nothing, so the engine can start before the
// first sigserver fetch completes.
func compile(set *signature.Set) *compiledSet {
	if set == nil {
		set = &signature.Set{}
	}
	return &compiledSet{
		eng:     detect.NewEngine(set),
		version: set.Version,
		sigs:    set.Len(),
	}
}

// match returns the IDs of every signature the packet matches under this
// generation. It serves the synchronous paths (Engine.MatchPacket);
// detect.Engine draws scratch from its own per-generation sync.Pool, so
// the scan and resolution allocate nothing and only a leaking packet
// copies out its matched IDs. Shard workers bypass this and call
// MatchInto with their persistent scratch directly.
func (c *compiledSet) match(p *httpmodel.Packet) []int {
	return c.eng.MatchPacket(p)
}
