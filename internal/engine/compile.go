package engine

import (
	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// compiledSet is one immutable, fully compiled generation of the signature
// set. The engine swaps whole generations through an atomic pointer; shard
// workers load the pointer once per batch, so a reload can never tear
// mid-batch and the hot path takes no lock.
type compiledSet struct {
	eng     *detect.Engine
	version int64
	sigs    int
}

// compile builds a generation from a signature set. A nil set compiles to
// an empty generation that matches nothing, so the engine can start before
// the first sigserver fetch completes.
func compile(set *signature.Set) *compiledSet {
	if set == nil {
		set = &signature.Set{}
	}
	return &compiledSet{
		eng:     detect.NewEngine(set),
		version: set.Version,
		sigs:    set.Len(),
	}
}

// match returns the IDs of every signature the packet matches under this
// generation.
func (c *compiledSet) match(p *httpmodel.Packet) []int {
	return c.eng.MatchPacket(p)
}
