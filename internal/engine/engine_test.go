package engine

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"leaksig/internal/capture"
	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// tokenSet builds a one-signature set whose signature requires every token.
func tokenSet(version int64, tokens ...string) *signature.Set {
	return &signature.Set{
		Version: version,
		Signatures: []*signature.Signature{
			{ID: 1, Tokens: tokens, ClusterSize: 2},
		},
	}
}

// pkt fabricates a GET packet whose path carries the payload.
func pkt(id int64, host, payload string) *httpmodel.Packet {
	return &httpmodel.Packet{
		ID:     id,
		Host:   host,
		Method: "GET",
		Path:   "/track?" + payload,
		Proto:  "HTTP/1.1",
	}
}

func TestMatchSetParityWithBatch(t *testing.T) {
	set := tokenSet(1, "udid=f3a9c1d2")
	var packets []*httpmodel.Packet
	for i := 0; i < 500; i++ {
		payload := "zone=1"
		if i%3 == 0 {
			payload = "udid=f3a9c1d2"
		}
		packets = append(packets, pkt(int64(i), fmt.Sprintf("ad%d.example.com", i%7), payload))
	}
	cap := capture.New(packets)
	want := detect.MatchSetWith(detect.NewEngine(set), cap)
	for _, shards := range []int{1, 4} {
		got := MatchSet(set, cap, Config{Shards: shards, BatchSize: 8})
		if len(got) != len(want) {
			t.Fatalf("shards=%d: %d verdicts, want %d", shards, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("shards=%d: verdict[%d] = %v, want %v", shards, i, got[i], want[i])
			}
		}
	}
}

// TestHotReloadNoDropsVerdictsFlip is the rollover contract: packets
// streamed before a reload are judged under v1, packets submitted after
// Reload returns are judged under v2, and no packet is ever dropped.
func TestHotReloadNoDropsVerdictsFlip(t *testing.T) {
	v1 := tokenSet(1, "alpha-token")
	v2 := tokenSet(2, "beta-token")

	var mu sync.Mutex
	verdicts := make(map[uint64]Verdict)
	e := New(v1, Config{
		Shards:    4,
		BatchSize: 16,
		OnVerdict: func(v Verdict) {
			mu.Lock()
			verdicts[v.Seq] = v
			mu.Unlock()
		},
	})

	const half = 1000
	// Every packet carries the v2 token only: invisible to v1, a leak to v2.
	for i := 0; i < half; i++ {
		if err := e.Submit(pkt(int64(i), fmt.Sprintf("h%d.example.com", i%13), "beta-token")); err != nil {
			t.Fatal(err)
		}
	}
	e.Flush() // everything so far decided under v1

	e.Reload(v2)
	for i := half; i < 2*half; i++ {
		if err := e.Submit(pkt(int64(i), fmt.Sprintf("h%d.example.com", i%13), "beta-token")); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()

	if len(verdicts) != 2*half {
		t.Fatalf("dropped packets across reload: %d verdicts, want %d", len(verdicts), 2*half)
	}
	for seq, v := range verdicts {
		if seq < half {
			if v.Version != 1 || v.Leak() {
				t.Fatalf("seq %d: pre-reload verdict %+v, want clean under v1", seq, v)
			}
		} else {
			if v.Version != 2 || !v.Leak() {
				t.Fatalf("seq %d: post-reload verdict %+v, want leak under v2", seq, v)
			}
		}
	}
	m := e.Metrics()
	if m.Reloads != 1 || m.Version != 2 {
		t.Errorf("metrics after reload: reloads=%d version=%d", m.Reloads, m.Version)
	}
	if m.Processed != 2*half || m.Matched != half {
		t.Errorf("metrics counters: processed=%d matched=%d", m.Processed, m.Matched)
	}
}

// TestConcurrentReloadRace hammers Reload against a concurrent producer
// under the race detector and checks the no-drop invariant holds.
func TestConcurrentReloadRace(t *testing.T) {
	var count atomic.Uint64
	e := New(tokenSet(1, "alpha-token"), Config{
		Shards:    2,
		BatchSize: 4,
		OnVerdict: func(Verdict) { count.Add(1) },
	})
	const n = 2000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for v := int64(2); v < 40; v++ {
			e.Reload(tokenSet(v, "beta-token"))
			time.Sleep(50 * time.Microsecond)
		}
	}()
	for i := 0; i < n; i++ {
		if err := e.Submit(pkt(int64(i), fmt.Sprintf("h%d", i%31), "beta-token")); err != nil {
			t.Fatal(err)
		}
	}
	<-done
	e.Close()
	if got := count.Load(); got != n {
		t.Fatalf("verdicts = %d, want %d", got, n)
	}
}

func TestBackpressureTrySubmit(t *testing.T) {
	gate := make(chan struct{})
	var entered sync.Once
	started := make(chan struct{})
	e := New(tokenSet(1, "x-token"), Config{
		Shards:     1,
		BatchSize:  1,
		QueueDepth: 1,
		OnVerdict: func(Verdict) {
			entered.Do(func() { close(started) })
			<-gate // wedge the worker
		},
	})
	// First packet occupies the worker; then the ring (floor capacity 2)
	// fills; everything after must be rejected.
	if !e.TrySubmit(pkt(0, "a.example.com", "x-token")) {
		t.Fatal("first TrySubmit rejected")
	}
	<-started
	accepted := 1
	for i := 1; i < 64; i++ {
		if e.TrySubmit(pkt(int64(i), "a.example.com", "x-token")) {
			accepted++
		}
	}
	if accepted >= 64 {
		t.Fatal("no backpressure: every TrySubmit accepted")
	}
	m := e.Metrics()
	if m.Dropped == 0 {
		t.Fatal("drops not counted")
	}
	close(gate)
	e.Close()
	final := e.Metrics()
	if final.Processed != uint64(accepted) {
		t.Fatalf("processed %d, accepted %d: accepted packets were dropped", final.Processed, accepted)
	}
}

func TestShardAffinity(t *testing.T) {
	e := New(nil, Config{Shards: 4})
	defer e.Close()
	hosts := []string{"ads.alpha.com", "cdn.beta.net", "t.gamma.org", "x.delta.io", "m.epsilon.jp"}
	spread := make(map[*shard]bool)
	for _, h := range hosts {
		p := pkt(0, h, "q=1")
		first := e.shardFor(p, 0)
		for seq := uint64(1); seq < 10; seq++ {
			if e.shardFor(p, seq) != first {
				t.Fatalf("host %s not stable across sequences", h)
			}
		}
		spread[first] = true
	}
	if len(spread) < 2 {
		t.Errorf("all %d hosts landed on one shard", len(hosts))
	}

	rr := New(nil, Config{Shards: 4, Affinity: AffinityNone})
	defer rr.Close()
	p := pkt(0, "ads.alpha.com", "q=1")
	if rr.shardFor(p, 0) == rr.shardFor(p, 1) && rr.shardFor(p, 1) == rr.shardFor(p, 2) {
		t.Error("round-robin affinity pinned one shard")
	}
}

func TestSubmitAfterClose(t *testing.T) {
	e := New(nil, Config{Shards: 1})
	e.Close()
	e.Close() // idempotent
	if err := e.Submit(pkt(0, "a.example.com", "q=1")); err != ErrClosed {
		t.Fatalf("Submit after Close = %v, want ErrClosed", err)
	}
	if e.TrySubmit(pkt(0, "a.example.com", "q=1")) {
		t.Fatal("TrySubmit accepted after Close")
	}
}

func TestEmptySetMatchesNothing(t *testing.T) {
	var leaks atomic.Uint64
	e := New(nil, Config{Shards: 2, OnVerdict: func(v Verdict) {
		if v.Leak() {
			leaks.Add(1)
		}
	}})
	for i := 0; i < 100; i++ {
		if err := e.Submit(pkt(int64(i), "a.example.com", "udid=f3a9c1d2")); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	if leaks.Load() != 0 {
		t.Fatalf("empty set produced %d leaks", leaks.Load())
	}
}

// TestFlushInterval checks a lone packet still gets a verdict without
// further traffic — the background flusher must dispatch partial batches.
func TestFlushInterval(t *testing.T) {
	got := make(chan Verdict, 1)
	e := New(tokenSet(1, "x-token"), Config{
		Shards:        1,
		BatchSize:     64,
		FlushInterval: time.Millisecond,
		OnVerdict:     func(v Verdict) { got <- v },
	})
	defer e.Close()
	if err := e.Submit(pkt(7, "a.example.com", "x-token")); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if !v.Leak() || v.Seq != 0 {
			t.Fatalf("verdict = %+v", v)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("partial batch never flushed")
	}
}
