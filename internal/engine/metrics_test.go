package engine

import (
	"fmt"
	"strings"
	"testing"
	"time"
)

func TestLatencyRingWraps(t *testing.T) {
	r := newLatencyRing()
	for i := 0; i < latencyWindow*2; i++ {
		r.record(time.Duration(i) * time.Microsecond)
	}
	s := r.samples()
	if len(s) != latencyWindow {
		t.Fatalf("retained %d samples, want %d", len(s), latencyWindow)
	}
	// Every retained sample must come from the second pass.
	for _, v := range s {
		if v < latencyWindow {
			t.Fatalf("stale sample %d survived the wrap", v)
		}
	}
}

func TestLatencyRingPartial(t *testing.T) {
	r := newLatencyRing()
	if got := r.samples(); len(got) != 0 {
		t.Fatalf("empty ring returned %d samples", len(got))
	}
	r.record(5 * time.Microsecond)
	r.record(7 * time.Microsecond)
	if got := r.samples(); len(got) != 2 {
		t.Fatalf("partial ring returned %d samples, want 2", len(got))
	}
}

func TestMetricsSnapshot(t *testing.T) {
	e := New(tokenSet(3, "x-token"), Config{Shards: 2, BatchSize: 8})
	// Enough packets to cross several latency sampling strides.
	const n = 4 * latencySampleEvery
	for i := 0; i < n; i++ {
		payload := "zone=1"
		if i%2 == 0 {
			payload = "x-token"
		}
		if err := e.Submit(pkt(int64(i), fmt.Sprintf("h%d.example.com", i%5), payload)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	m := e.Metrics()
	if m.Ingested != n || m.Processed != n {
		t.Fatalf("ingested=%d processed=%d, want %d", m.Ingested, m.Processed, n)
	}
	if m.Matched != n/2 {
		t.Errorf("matched=%d, want %d", m.Matched, n/2)
	}
	if m.MatchRate < 0.49 || m.MatchRate > 0.51 {
		t.Errorf("match rate = %v", m.MatchRate)
	}
	if m.QueueDepth != 0 {
		t.Errorf("queue depth after Close = %d", m.QueueDepth)
	}
	if m.Version != 3 || m.Signatures != 1 || m.Shards != 2 {
		t.Errorf("identity fields: %+v", m)
	}
	if m.PacketsPerSec <= 0 {
		t.Errorf("packets/s = %v", m.PacketsPerSec)
	}
	if m.P50 > m.P99 {
		t.Errorf("p50 %v > p99 %v", m.P50, m.P99)
	}
	line := m.String()
	for _, want := range []string{"engine:", "pps=", "p99="} {
		if !strings.Contains(line, want) {
			t.Errorf("snapshot line %q missing %q", line, want)
		}
	}
}
