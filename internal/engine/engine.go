// Package engine is the streaming half of the detection system: a sharded
// worker pool that consumes HTTP packets from bounded lock-free rings and
// matches them against a hot-swappable compiled signature set.
//
// The batch matcher (detect.MatchSetWith) answers "which of these packets
// match" over a fully materialized capture; this package answers the
// deployment question of the paper's Figure 3 — a long-running service
// fed by live traffic, whose signature set rolls over whenever the
// generation server publishes a new version, with zero dropped packets
// and no lock on the hot path:
//
//   - Packets are hashed by destination host onto a fixed set of shards,
//     so packets for one host land on one worker and its matcher state
//     stays cache-warm (Config.Affinity switches to round-robin when
//     host locality is not wanted).
//   - Each shard's queue is a bounded lock-free MPSC ring: producers
//     publish a packet with one CAS and one atomic store — no mutex, no
//     channel hop, no batch-slice allocation. Workers drain runs of
//     published items and load the compiled-set pointer once per drain,
//     amortizing the atomic load across the adaptive batch.
//   - Reload compiles the new set off the hot path and swaps it in with
//     a single atomic pointer store; ReloadAsync moves even the compile
//     off the caller onto a background compiler with a double-buffered
//     pending slot, coalescing bursts of publishes so signature churn
//     never stalls intake. Generations apply strictly monotonically.
//   - Submit blocks while a shard's ring is full (bounded backpressure);
//     TrySubmit drops instead and counts the drop. A stalled sink slows
//     only its own shard's ring — sibling shards keep flowing.
//   - Drain sizes adapt to load: each shard's target doubles toward
//     Config.MaxBatch while its ring stays occupied and halves toward
//     Config.MinBatch when partial drains empty it, trading latency for
//     amortization only when the backlog pays for it.
//   - Results leave through a Sink bound per shard: CallbackSink carries
//     full verdicts, CountSink aggregates per-shard tallies without
//     assembling a Verdict at all (the count-only fast path), and
//     batch-capable sinks (BatchShardSink) receive pooled VerdictBatches
//     whose Matched slices live in a recycled arena — the zero-allocation
//     verdict path.
//
// Pool stacks a multi-tenant layer on top: tenant keys (app package,
// device cohort, destination host) map to independently configured
// engines sharing a global shard budget, created lazily on first packet,
// evicted when idle, each optionally pinned to a tenant-private
// signature set — one service instance isolating many traffic
// populations the way the paper's per-module signatures isolate ad
// libraries (§IV-A). When budget frees, degraded tenants are upgraded
// back to multi-shard grants by weighted rebalancing.
//
// Metrics (packets/s, match rate, ring depth, batch target, reloads,
// reload latency, p50/p99 latency) are exposed through Metrics, reusing
// internal/stats for the quantiles; Pool.Metrics aggregates across
// tenants, evicted ones included.
package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"leaksig/internal/capture"
	"leaksig/internal/httpmodel"
	"leaksig/internal/obs/trace"
	"leaksig/internal/signature"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// Affinity selects how packets map onto shards.
type Affinity int

const (
	// AffinityHost hashes the destination host, keeping each host's
	// traffic on one worker (the default).
	AffinityHost Affinity = iota
	// AffinityNone spreads packets round-robin for maximum balance when
	// per-host locality is not needed.
	AffinityNone
)

// Config parameterizes the engine. The zero value selects sensible
// defaults for every field.
type Config struct {
	// Shards is the worker count; 0 means runtime.GOMAXPROCS(0).
	Shards int
	// QueueDepth bounds the packets queued per shard — the capacity of
	// the shard's ring, rounded up to a power of two; 0 means 1024.
	QueueDepth int
	// BatchSize is the initial drain target: how many packets a worker
	// takes from its ring per drain; 0 means 64.
	BatchSize int
	// MinBatch and MaxBatch bound adaptive drain sizing. Each shard's
	// target starts at BatchSize, doubles (up to MaxBatch) when a full
	// drain leaves the ring still occupied — large drains amortize the
	// generation load under backlog — and halves (down to MinBatch) when
	// a partial drain empties the ring, so light traffic gets low
	// latency. Zero values default to BatchSize/8 and BatchSize*8
	// (clamped to [1, QueueDepth]); setting MinBatch = MaxBatch =
	// BatchSize pins the drain size.
	MinBatch int
	MaxBatch int
	// FlushInterval is retained for configuration compatibility and is
	// no longer used: ring-queued packets are visible to the worker
	// immediately, so no background flusher is needed to bound the
	// latency of lone packets.
	FlushInterval time.Duration
	// Affinity selects the shard-assignment strategy.
	Affinity Affinity
	// OnVerdict, when non-nil, receives every verdict. It is called from
	// shard worker goroutines concurrently and must be safe for that.
	// Setting it forces the per-verdict delivery path even for batch-
	// capable sinks.
	OnVerdict func(Verdict)
	// Sink, when non-nil, receives match results through per-shard
	// consumers (see Sink). A count-only sink with a nil OnVerdict lets
	// workers skip verdict assembly entirely; a BatchShardSink with a
	// nil OnVerdict receives pooled verdict batches; when both Sink and
	// OnVerdict are set, both receive every verdict.
	Sink Sink
	// Flight, when non-nil, is the flight recorder the engine feeds:
	// TrySubmit drops (with burst detection), blocking-submit stalls,
	// reload tickets issued and applied, and per-shard batch-target
	// changes. Nil disables recording at the cost of a nil check off the
	// per-packet path.
	Flight *trace.Flight
}

// ShardCount resolves the worker count this configuration will run with
// — what daemons size shard-striped companions (the flight recorder) to
// before constructing the engine.
func (c Config) ShardCount() int { return c.withDefaults().Shards }

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.BatchSize > c.QueueDepth {
		c.BatchSize = c.QueueDepth
	}
	if c.MinBatch <= 0 {
		c.MinBatch = c.BatchSize / 8
	}
	if c.MinBatch < 1 {
		c.MinBatch = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = c.BatchSize * 8
	}
	if c.MaxBatch > c.QueueDepth {
		c.MaxBatch = c.QueueDepth
	}
	if c.MinBatch > c.MaxBatch {
		c.MinBatch = c.MaxBatch
	}
	if c.BatchSize < c.MinBatch {
		c.BatchSize = c.MinBatch
	}
	if c.BatchSize > c.MaxBatch {
		c.BatchSize = c.MaxBatch
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = time.Millisecond
	}
	return c
}

// Verdict is the outcome of matching one streamed packet.
type Verdict struct {
	Packet  *httpmodel.Packet
	Seq     uint64        // zero-based acceptance order across the engine
	Matched []int         // IDs of matching signatures; empty means clean
	Version int64         // signature-set version the verdict was decided under
	Latency time.Duration // queue-to-verdict latency; 0 when unsampled
}

// Leak reports whether the packet matched any signature.
func (v Verdict) Leak() bool { return len(v.Matched) > 0 }

// pendingReload is the double-buffer slot between ReloadAsync and the
// background compiler: the latest requested set plus its generation
// ticket. Rapid republishes overwrite the slot, so at most one compile
// runs while one more waits — intervening sets are coalesced away.
type pendingReload struct {
	set *signature.Set
	gen uint64
}

// Engine is the streaming detector. Construct with New; all methods are
// safe for concurrent use.
type Engine struct {
	cfg       Config
	onVerdict func(Verdict)

	set    atomic.Pointer[compiledSet]
	shards []*shard

	seq      atomic.Uint64 // next acceptance sequence number
	ingested atomic.Uint64
	dropped  atomic.Uint64
	reloads  atomic.Int64

	// Reload machinery: gen tickets order every Reload/ReloadAsync call;
	// install applies compiled generations strictly monotonically, so a
	// slow background compile can never overwrite a newer set.
	reloadGen    atomic.Uint64
	pending      atomic.Pointer[pendingReload]
	compiling    atomic.Bool
	lastReloadNs atomic.Int64 // compile+install wall time of the last applied reload
	reloadCh     chan struct{}

	// Synchronous-vet counters: MatchPacket bypasses the queue, so the
	// shard counters never see it; these make inline consumers (the
	// flowcontrol proxy) share the engine's telemetry.
	syncVetted  atomic.Uint64
	syncMatched atomic.Uint64

	submitMu sync.RWMutex // closed check vs Close
	closed   bool

	stop    chan struct{} // closed by Close: wakes parked workers and the compiler
	stopped atomic.Bool   // set before stop closes; workers exit on empty ring
	wg      sync.WaitGroup
	start   time.Time
}

// New starts an engine over the signature set (nil for empty) and begins
// accepting packets immediately.
func New(set *signature.Set, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:       cfg,
		onVerdict: cfg.OnVerdict,
		reloadCh:  make(chan struct{}, 1),
		stop:      make(chan struct{}),
		start:     time.Now(),
	}
	e.set.Store(compile(set))
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		s := newShard(cfg.QueueDepth, cfg.BatchSize)
		s.idx = i
		if cfg.Sink != nil {
			s.sink = cfg.Sink.Bind(i, cfg.Shards)
			s.countOnly = e.onVerdict == nil && s.sink.CountOnly()
			if bs, ok := s.sink.(BatchShardSink); ok && e.onVerdict == nil && !s.countOnly {
				s.batchSink = bs
			}
		}
		e.shards[i] = s
		e.wg.Add(1)
		go e.run(s)
	}
	e.wg.Add(1)
	go e.runCompiler()
	return e
}

// install makes cs the live generation iff it is newer than the current
// one. Sync and async reloads race through here, and the monotonic gen
// check guarantees a stale compile is discarded rather than applied.
func (e *Engine) install(cs *compiledSet, started time.Time) bool {
	for {
		cur := e.set.Load()
		if cur != nil && cur.gen >= cs.gen {
			return false
		}
		if e.set.CompareAndSwap(cur, cs) {
			e.reloads.Add(1)
			e.lastReloadNs.Store(time.Since(started).Nanoseconds())
			e.cfg.Flight.Record(trace.FlightEvent{
				Kind: trace.KindReloadApply, Shard: -1,
				Value: int64(cs.gen), Detail: time.Since(started).String(),
			})
			return true
		}
	}
}

// Reload compiles the new signature set and atomically swaps it in,
// returning only after the new generation is live: packets submitted
// after Reload returns are judged under it. The compile happens on the
// caller's goroutine — intake is never blocked, but a caller reloading
// large sets at high frequency should prefer ReloadAsync. Packets
// already queued are never dropped — they are simply matched under
// whichever generation is live when their drain runs.
func (e *Engine) Reload(set *signature.Set) {
	gen := e.reloadGen.Add(1)
	e.cfg.Flight.Record(trace.FlightEvent{Kind: trace.KindReloadIssue, Shard: -1, Value: int64(gen)})
	started := time.Now()
	cs := compile(set)
	cs.gen = gen
	e.install(cs, started)
}

// ReloadAsync requests a reload and returns immediately: the dense
// compile runs on the engine's background compiler goroutine and the
// result is swapped in atomically when ready. Bursts coalesce — a
// republish that lands while a compile is in flight overwrites the
// single pending slot, so a 10k-signature tenant republishing every
// epoch costs at most one in-flight compile plus one queued, and intake
// never stalls. Generations still apply strictly monotonically; the
// final state always reflects the latest requested set.
func (e *Engine) ReloadAsync(set *signature.Set) {
	gen := e.reloadGen.Add(1)
	e.cfg.Flight.Record(trace.FlightEvent{
		Kind: trace.KindReloadIssue, Shard: -1, Value: int64(gen), Detail: "async",
	})
	e.pending.Store(&pendingReload{set: set, gen: gen})
	select {
	case e.reloadCh <- struct{}{}:
	default:
	}
}

// runCompiler is the background reload compiler: it drains the pending
// slot, compiling and installing the latest requested generation until
// none is left, then sleeps until the next ReloadAsync.
func (e *Engine) runCompiler() {
	defer e.wg.Done()
	for {
		select {
		case <-e.stop:
			return
		case <-e.reloadCh:
			for {
				pr := e.pending.Swap(nil)
				if pr == nil {
					break
				}
				e.compiling.Store(true)
				started := time.Now()
				cs := compile(pr.set)
				cs.gen = pr.gen
				e.install(cs, started)
				e.compiling.Store(false)
			}
		}
	}
}

// Version returns the live signature-set version.
func (e *Engine) Version() int64 { return e.set.Load().version }

// MatchPacket vets one packet synchronously against the live set,
// bypassing the queue. This is the flowcontrol backend hook: a proxy gets
// the engine's hot-reload semantics with inline request latency, and its
// verdicts land in the SyncVetted/SyncMatched telemetry.
func (e *Engine) MatchPacket(p *httpmodel.Packet) []int {
	m := e.set.Load().match(p)
	e.syncVetted.Add(1)
	if len(m) > 0 {
		e.syncMatched.Add(1)
	}
	return m
}

// isClosed reports whether Close has begun.
func (e *Engine) isClosed() bool {
	e.submitMu.RLock()
	defer e.submitMu.RUnlock()
	return e.closed
}

// shardFor maps a packet onto its shard.
func (e *Engine) shardFor(p *httpmodel.Packet, seq uint64) *shard {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	if e.cfg.Affinity == AffinityNone {
		return e.shards[seq%uint64(len(e.shards))]
	}
	// Inline FNV-1a over the host avoids a per-packet hasher allocation.
	h := uint64(14695981039346656037)
	for i := 0; i < len(p.Host); i++ {
		h ^= uint64(p.Host[i])
		h *= 1099511628211
	}
	return e.shards[h%uint64(len(e.shards))]
}

// Submit queues one packet for matching, blocking while the target shard's
// ring is full (backpressure). It returns ErrClosed after Close.
func (e *Engine) Submit(p *httpmodel.Packet) error {
	e.submitMu.RLock()
	defer e.submitMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	e.submit(p, true)
	return nil
}

// TrySubmit queues one packet without blocking. It reports false — and
// counts a drop — when the target shard is saturated or the engine is
// closed.
func (e *Engine) TrySubmit(p *httpmodel.Packet) bool {
	e.submitMu.RLock()
	defer e.submitMu.RUnlock()
	if e.closed {
		return false
	}
	return e.submit(p, false)
}

// submit publishes the packet into its shard's ring: one CAS, one store,
// zero allocations. When the ring is full a blocking submit spins briefly
// then sleeps in short slices until the worker frees a slot — the
// backpressure point. Caller holds submitMu.RLock, which is what
// guarantees Close observes no in-flight publication.
func (e *Engine) submit(p *httpmodel.Packet, block bool) bool {
	// Sequences from dropped TrySubmits are not reused, so Seq is a unique
	// admission ticket: gapless under Submit, with holes where TrySubmit
	// dropped.
	seq := e.seq.Add(1) - 1
	s := e.shardFor(p, seq)
	it := item{p: p, seq: seq}
	if seq%latencySampleEvery == 0 {
		it.enq = time.Now().UnixNano()
	}
	if p.Span != nil {
		p.Span.Stamp(trace.StageEnqueue)
	}
	if s.ring.push(it) {
		e.ingested.Add(1)
		return true
	}
	if !block {
		e.dropped.Add(1)
		e.cfg.Flight.RecordDrop(s.idx, p.Trace)
		p.EndTrace() // the dropped packet leaves the pipeline here
		return false
	}
	for spin := 0; ; spin++ {
		if spin < 8 {
			runtime.Gosched()
		} else {
			time.Sleep(5 * time.Microsecond)
		}
		// ~1.25ms of continuous backpressure on one ring means the shard's
		// consumer is not keeping up — most likely a stalled sink. Flag it
		// once per blocking episode; the recorder rate-limits the dump
		// trigger itself.
		if spin == sinkStallSpins {
			e.cfg.Flight.Trigger(trace.KindSinkStall, trace.FlightEvent{
				Kind: trace.KindSinkStall, Shard: s.idx, Trace: p.Trace,
				Value: int64(s.ring.len()), Detail: "blocking submit stalled",
			})
		}
		if s.ring.push(it) {
			e.ingested.Add(1)
			return true
		}
	}
}

// sinkStallSpins is the blocking-submit spin count treated as a stalled
// sink: 8 Gosched yields plus ~248 5µs sleeps ≈ 1.25ms on one full ring.
const sinkStallSpins = 256

// Flush blocks until every packet accepted so far has been matched. After
// Close it returns immediately (Close already drained the rings).
func (e *Engine) Flush() {
	if e.isClosed() {
		return
	}
	target := e.ingested.Load()
	for {
		var done uint64
		for _, s := range e.shards {
			done += s.processed.Load()
		}
		if done >= target {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Close stops intake, drains every queued packet through the matcher, and
// waits for the workers to exit. No accepted packet is ever dropped. Close
// is idempotent.
func (e *Engine) Close() {
	e.submitMu.Lock()
	if e.closed {
		e.submitMu.Unlock()
		return
	}
	e.closed = true
	e.submitMu.Unlock()

	// Every producer has finished (the write lock excluded them), so the
	// rings hold their final contents. Mark stopped before broadcasting:
	// a worker that wakes to an empty ring may then exit.
	e.stopped.Store(true)
	close(e.stop)
	e.wg.Wait()
}

// MatchSet streams an entire capture through a fresh engine and returns
// one verdict per packet in order — detect.MatchSetWith's drop-in
// streaming equivalent, and the basis of the engine-vs-batch benchmarks.
// A caller-supplied cfg.OnVerdict still fires for every verdict; with no
// OnVerdict and no Sink, collection rides the pooled batch path.
func MatchSet(set *signature.Set, s *capture.Set, cfg Config) []bool {
	out := make([]bool, s.Len())
	if cfg.OnVerdict == nil && cfg.Sink == nil {
		cfg.Sink = BatchCallbackSink(func(vs []Verdict) {
			for _, v := range vs {
				out[v.Seq] = v.Leak()
			}
		})
	} else {
		user := cfg.OnVerdict
		cfg.OnVerdict = func(v Verdict) {
			out[v.Seq] = len(v.Matched) > 0
			if user != nil {
				user(v)
			}
		}
	}
	e := New(set, cfg)
	for _, p := range s.Packets {
		e.Submit(p) // cannot fail: the engine closes only below
	}
	e.Close()
	return out
}
