// Package engine is the streaming half of the detection system: a sharded
// worker pool that consumes HTTP packets from a bounded ingest queue and
// matches them against a hot-swappable compiled signature set.
//
// The batch matcher (detect.MatchSetWith) answers "which of these packets
// match" over a fully materialized capture; this package answers the
// deployment question of the paper's Figure 3 — a long-running service
// fed by live traffic, whose signature set rolls over whenever the
// generation server publishes a new version, with zero dropped packets
// and no lock on the hot path:
//
//   - Packets are hashed by destination host onto a fixed set of shards,
//     so packets for one host land on one worker and its matcher state
//     stays cache-warm (Config.Affinity switches to round-robin when
//     host locality is not wanted).
//   - Producers batch packets per shard before dispatch; workers load
//     the compiled-set pointer once per batch, amortizing both channel
//     traffic and the atomic load.
//   - Reload compiles the new set off the hot path and swaps it in with
//     a single atomic pointer store. In-flight batches finish under the
//     generation they started with; every later batch sees the new one.
//   - Submit blocks when a shard's queue is full (bounded backpressure);
//     TrySubmit drops instead and counts the drop.
//   - Batch sizes adapt to load: each shard's target doubles toward
//     Config.MaxBatch while its queue backs up and halves toward
//     Config.MinBatch when the flusher ships partial batches into a
//     drained queue, trading latency for amortization only when the
//     backlog pays for it.
//   - Results leave through a Sink bound per shard: CallbackSink carries
//     full verdicts, CountSink aggregates per-shard tallies without
//     assembling a Verdict at all (the count-only fast path).
//
// Pool stacks a multi-tenant layer on top: tenant keys (app package,
// device cohort, destination host) map to independently configured
// engines sharing a global shard budget, created lazily on first packet,
// evicted when idle, each optionally pinned to a tenant-private
// signature set — one service instance isolating many traffic
// populations the way the paper's per-module signatures isolate ad
// libraries (§IV-A).
//
// Metrics (packets/s, match rate, queue depth, batch target, reloads,
// p50/p99 latency) are exposed through Metrics, reusing internal/stats
// for the quantiles; Pool.Metrics aggregates across tenants, evicted
// ones included.
package engine

import (
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"leaksig/internal/capture"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// ErrClosed is returned by Submit after Close.
var ErrClosed = errors.New("engine: closed")

// Affinity selects how packets map onto shards.
type Affinity int

const (
	// AffinityHost hashes the destination host, keeping each host's
	// traffic on one worker (the default).
	AffinityHost Affinity = iota
	// AffinityNone spreads packets round-robin for maximum balance when
	// per-host locality is not needed.
	AffinityNone
)

// Config parameterizes the engine. The zero value selects sensible
// defaults for every field.
type Config struct {
	// Shards is the worker count; 0 means runtime.GOMAXPROCS(0).
	Shards int
	// QueueDepth bounds the packets queued per shard (beyond the
	// accumulating batch); 0 means 1024. The bound is exact in batches
	// and approximate in packets once adaptive batching grows the batch
	// target past BatchSize.
	QueueDepth int
	// BatchSize is the initial batch target: how many packets a producer
	// accumulates per shard before dispatching to the worker; 0 means 64.
	BatchSize int
	// MinBatch and MaxBatch bound adaptive batch sizing. Each shard's
	// batch target starts at BatchSize, doubles (up to MaxBatch) when a
	// dispatch observes its queue at least half full — large batches
	// amortize channel traffic under backlog — and halves (down to
	// MinBatch) when the background flusher ships a partial batch into a
	// drained queue, so light traffic gets low latency. Zero values
	// default to BatchSize/8 and BatchSize*8 (clamped to [1, QueueDepth]);
	// setting MinBatch = MaxBatch = BatchSize pins the batch size.
	MinBatch int
	MaxBatch int
	// FlushInterval bounds how long a partial batch may linger before a
	// background flusher dispatches it anyway; 0 means 1ms.
	FlushInterval time.Duration
	// Affinity selects the shard-assignment strategy.
	Affinity Affinity
	// OnVerdict, when non-nil, receives every verdict. It is called from
	// shard worker goroutines concurrently and must be safe for that.
	OnVerdict func(Verdict)
	// Sink, when non-nil, receives match results through per-shard
	// consumers (see Sink). A count-only sink with a nil OnVerdict lets
	// workers skip verdict assembly entirely; when both Sink and
	// OnVerdict are set, both receive every verdict.
	Sink Sink
}

func (c Config) withDefaults() Config {
	if c.Shards <= 0 {
		c.Shards = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 1024
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 64
	}
	if c.BatchSize > c.QueueDepth {
		c.BatchSize = c.QueueDepth
	}
	if c.MinBatch <= 0 {
		c.MinBatch = c.BatchSize / 8
	}
	if c.MinBatch < 1 {
		c.MinBatch = 1
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = c.BatchSize * 8
	}
	if c.MaxBatch > c.QueueDepth {
		c.MaxBatch = c.QueueDepth
	}
	if c.MinBatch > c.MaxBatch {
		c.MinBatch = c.MaxBatch
	}
	if c.BatchSize < c.MinBatch {
		c.BatchSize = c.MinBatch
	}
	if c.BatchSize > c.MaxBatch {
		c.BatchSize = c.MaxBatch
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = time.Millisecond
	}
	return c
}

// Verdict is the outcome of matching one streamed packet.
type Verdict struct {
	Packet  *httpmodel.Packet
	Seq     uint64        // zero-based acceptance order across the engine
	Matched []int         // IDs of matching signatures; empty means clean
	Version int64         // signature-set version the verdict was decided under
	Latency time.Duration // queue-to-verdict latency; 0 when unsampled
}

// Leak reports whether the packet matched any signature.
func (v Verdict) Leak() bool { return len(v.Matched) > 0 }

// Engine is the streaming detector. Construct with New; all methods are
// safe for concurrent use.
type Engine struct {
	cfg       Config
	onVerdict func(Verdict)

	set    atomic.Pointer[compiledSet]
	shards []*shard

	seq      atomic.Uint64 // next acceptance sequence number
	ingested atomic.Uint64
	dropped  atomic.Uint64
	reloads  atomic.Int64

	// Synchronous-vet counters: MatchPacket bypasses the queue, so the
	// shard counters never see it; these make inline consumers (the
	// flowcontrol proxy) share the engine's telemetry.
	syncVetted  atomic.Uint64
	syncMatched atomic.Uint64

	submitMu sync.RWMutex // closed check vs Close
	closed   bool

	stopFlush chan struct{}
	flushDone chan struct{}
	wg        sync.WaitGroup
	start     time.Time
}

// New starts an engine over the signature set (nil for empty) and begins
// accepting packets immediately.
func New(set *signature.Set, cfg Config) *Engine {
	cfg = cfg.withDefaults()
	e := &Engine{
		cfg:       cfg,
		onVerdict: cfg.OnVerdict,
		stopFlush: make(chan struct{}),
		flushDone: make(chan struct{}),
		start:     time.Now(),
	}
	e.set.Store(compile(set))
	queueBatches := cfg.QueueDepth / cfg.BatchSize
	if queueBatches < 1 {
		queueBatches = 1
	}
	e.shards = make([]*shard, cfg.Shards)
	for i := range e.shards {
		s := newShard(queueBatches, cfg.BatchSize)
		if cfg.Sink != nil {
			s.sink = cfg.Sink.Bind(i, cfg.Shards)
			s.countOnly = e.onVerdict == nil && s.sink.CountOnly()
		}
		e.shards[i] = s
		e.wg.Add(1)
		go e.run(s)
	}
	go e.runFlusher()
	return e
}

// Reload compiles the new signature set and atomically swaps it in. The
// compile happens off the hot path; workers pick up the new generation at
// their next batch. Packets already queued are never dropped — they are
// simply matched under whichever generation is live when their batch runs.
func (e *Engine) Reload(set *signature.Set) {
	e.set.Store(compile(set))
	e.reloads.Add(1)
}

// Version returns the live signature-set version.
func (e *Engine) Version() int64 { return e.set.Load().version }

// MatchPacket vets one packet synchronously against the live set,
// bypassing the queue. This is the flowcontrol backend hook: a proxy gets
// the engine's hot-reload semantics with inline request latency, and its
// verdicts land in the SyncVetted/SyncMatched telemetry.
func (e *Engine) MatchPacket(p *httpmodel.Packet) []int {
	m := e.set.Load().match(p)
	e.syncVetted.Add(1)
	if len(m) > 0 {
		e.syncMatched.Add(1)
	}
	return m
}

// isClosed reports whether Close has begun.
func (e *Engine) isClosed() bool {
	e.submitMu.RLock()
	defer e.submitMu.RUnlock()
	return e.closed
}

// shardFor maps a packet onto its shard.
func (e *Engine) shardFor(p *httpmodel.Packet, seq uint64) *shard {
	if len(e.shards) == 1 {
		return e.shards[0]
	}
	if e.cfg.Affinity == AffinityNone {
		return e.shards[seq%uint64(len(e.shards))]
	}
	// Inline FNV-1a over the host avoids a per-packet hasher allocation.
	h := uint64(14695981039346656037)
	for i := 0; i < len(p.Host); i++ {
		h ^= uint64(p.Host[i])
		h *= 1099511628211
	}
	return e.shards[h%uint64(len(e.shards))]
}

// Submit queues one packet for matching, blocking while the target shard's
// queue is full (backpressure). It returns ErrClosed after Close.
func (e *Engine) Submit(p *httpmodel.Packet) error {
	e.submitMu.RLock()
	defer e.submitMu.RUnlock()
	if e.closed {
		return ErrClosed
	}
	e.submit(p, true)
	return nil
}

// TrySubmit queues one packet without blocking. It reports false — and
// counts a drop — when the target shard is saturated or the engine is
// closed.
func (e *Engine) TrySubmit(p *httpmodel.Packet) bool {
	e.submitMu.RLock()
	defer e.submitMu.RUnlock()
	if e.closed {
		return false
	}
	return e.submit(p, false)
}

// submit appends the packet to its shard's accumulating batch, first
// dispatching the batch if full. Caller holds submitMu.RLock.
func (e *Engine) submit(p *httpmodel.Packet, block bool) bool {
	// Sequences from dropped TrySubmits are not reused, so Seq is a unique
	// admission ticket: gapless under Submit, with holes where TrySubmit
	// dropped.
	seq := e.seq.Add(1) - 1
	s := e.shardFor(p, seq)
	s.mu.Lock()
	if target := int(s.target.Load()); len(s.acc) >= target {
		batch := s.acc
		if block {
			s.acc = make([]item, 0, target)
			s.mu.Unlock()
			s.in <- batch // backpressure point
			s.adapt(len(s.in), false, e.cfg)
			s.mu.Lock()
		} else {
			select {
			case s.in <- batch:
				s.acc = make([]item, 0, target)
				s.adapt(len(s.in), false, e.cfg)
			default:
				s.mu.Unlock()
				e.dropped.Add(1)
				return false
			}
		}
	}
	it := item{p: p, seq: seq}
	if seq%latencySampleEvery == 0 {
		it.enq = time.Now().UnixNano()
	}
	s.acc = append(s.acc, it)
	s.mu.Unlock()
	e.ingested.Add(1)
	return true
}

// runFlusher periodically dispatches lingering partial batches so a quiet
// shard still bounds its queue-to-verdict latency.
func (e *Engine) runFlusher() {
	defer close(e.flushDone)
	t := time.NewTicker(e.cfg.FlushInterval)
	defer t.Stop()
	for {
		select {
		case <-e.stopFlush:
			return
		case <-t.C:
			for _, s := range e.shards {
				s.flush(false, e.cfg)
			}
		}
	}
}

// Flush blocks until every packet accepted so far has been matched. After
// Close it returns immediately (Close already drained the queues).
func (e *Engine) Flush() {
	// The read lock excludes Close, whose channel close would otherwise
	// race our blocking sends.
	e.submitMu.RLock()
	if e.closed {
		e.submitMu.RUnlock()
		return
	}
	for _, s := range e.shards {
		s.flush(true, e.cfg)
	}
	e.submitMu.RUnlock()
	target := e.ingested.Load()
	for {
		var done uint64
		for _, s := range e.shards {
			done += s.processed.Load()
		}
		if done >= target {
			return
		}
		time.Sleep(100 * time.Microsecond)
	}
}

// Close stops intake, drains every queued packet through the matcher, and
// waits for the workers to exit. No accepted packet is ever dropped. Close
// is idempotent.
func (e *Engine) Close() {
	e.submitMu.Lock()
	if e.closed {
		e.submitMu.Unlock()
		return
	}
	e.closed = true
	e.submitMu.Unlock()

	close(e.stopFlush)
	<-e.flushDone
	for _, s := range e.shards {
		s.flush(true, e.cfg)
		close(s.in)
	}
	e.wg.Wait()
}

// MatchSet streams an entire capture through a fresh engine and returns
// one verdict per packet in order — detect.MatchSetWith's drop-in
// streaming equivalent, and the basis of the engine-vs-batch benchmarks.
// A caller-supplied cfg.OnVerdict still fires for every verdict.
func MatchSet(set *signature.Set, s *capture.Set, cfg Config) []bool {
	out := make([]bool, s.Len())
	user := cfg.OnVerdict
	cfg.OnVerdict = func(v Verdict) {
		out[v.Seq] = len(v.Matched) > 0
		if user != nil {
			user(v)
		}
	}
	e := New(set, cfg)
	for _, p := range s.Packets {
		e.Submit(p) // cannot fail: the engine closes only below
	}
	e.Close()
	return out
}
