package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
)

// item is one queued packet with its acceptance order and (when sampled)
// enqueue timestamp.
type item struct {
	p   *httpmodel.Packet
	seq uint64
	enq int64 // unix nanos at acceptance; 0 when the packet is unsampled
}

// shard owns one worker goroutine and the queue feeding it. Packets are
// batched on the producer side: Submit appends to acc under the shard
// lock and hands a full batch to the channel, so the worker pays channel
// and pointer-load costs once per batch, not once per packet.
type shard struct {
	in chan []item // full batches in flight to the worker

	mu  sync.Mutex
	acc []item // accumulating batch, at most the current target entries

	// target is the adaptive batch size: the accumulator dispatches when
	// it reaches this many packets. Producers double it (up to
	// Config.MaxBatch) when a dispatch finds the queue at least half
	// full, and the flusher halves it (down to Config.MinBatch) when a
	// partial batch ships into a drained queue.
	target atomic.Int32

	// sink is this shard's bound consumer (nil when the engine has no
	// sink); countOnly caches sink.CountOnly() && no OnVerdict, letting
	// the worker skip verdict assembly per batch rather than per packet.
	sink      ShardSink
	countOnly bool

	processed atomic.Uint64
	matched   atomic.Uint64
	lat       *latencyRing
}

func newShard(queueBatches, batchSize int) *shard {
	s := &shard{
		in:  make(chan []item, queueBatches),
		acc: make([]item, 0, batchSize),
		lat: newLatencyRing(),
	}
	s.target.Store(int32(batchSize))
	return s
}

// adapt retunes the batch target after a dispatch that observed queueLen
// batches in flight. drained marks a flusher-driven partial dispatch into
// an empty queue — the signal that traffic is too light to fill a batch
// within the flush interval, so smaller batches (lower latency) win.
// Lost updates between racing producers are harmless: both sides compute
// from a loaded value and stay inside [MinBatch, MaxBatch].
func (s *shard) adapt(queueLen int, drained bool, cfg Config) {
	t := int(s.target.Load())
	switch {
	case drained && queueLen == 0:
		if half := t / 2; half >= cfg.MinBatch {
			s.target.Store(int32(half))
		} else if t > cfg.MinBatch {
			s.target.Store(int32(cfg.MinBatch))
		}
	case queueLen >= (cap(s.in)+1)/2:
		if doubled := t * 2; doubled <= cfg.MaxBatch {
			s.target.Store(int32(doubled))
		} else if t < cfg.MaxBatch {
			s.target.Store(int32(cfg.MaxBatch))
		}
	}
}

// run is the worker loop: drain batches until the channel closes, loading
// the live signature generation once per batch. Count-only sinks take a
// dedicated loop with no Verdict assembly at all; the full path feeds the
// OnVerdict callback and/or the sink's Verdict method.
//
// The worker owns one detect.Scratch for its whole lifetime, so the
// scan+resolve path allocates nothing in the steady state. MatchInto
// re-sizes the scratch whenever the loaded generation differs from the
// one it was last used with, which makes hot reloads safe: a scratch
// sized for the old pattern count can never index the new automaton.
func (e *Engine) run(s *shard) {
	defer e.wg.Done()
	var sc detect.Scratch
	for batch := range s.in {
		cs := e.set.Load()
		if s.countOnly {
			for _, it := range batch {
				leak := len(cs.eng.MatchInto(it.p, &sc)) > 0
				s.processed.Add(1)
				if leak {
					s.matched.Add(1)
				}
				if it.enq != 0 {
					s.lat.record(time.Duration(time.Now().UnixNano() - it.enq))
				}
				s.sink.Count(leak)
			}
			continue
		}
		for _, it := range batch {
			ids := cs.eng.MatchInto(it.p, &sc)
			// The scratch-backed slice is reused next packet; verdicts
			// escape to sinks, so only a leak pays for a copy.
			var matched []int
			if len(ids) > 0 {
				matched = append(matched, ids...)
			}
			s.processed.Add(1)
			if len(matched) > 0 {
				s.matched.Add(1)
			}
			var lat time.Duration
			if it.enq != 0 {
				lat = time.Duration(time.Now().UnixNano() - it.enq)
				s.lat.record(lat)
			}
			if e.onVerdict != nil || s.sink != nil {
				v := Verdict{
					Packet:  it.p,
					Seq:     it.seq,
					Matched: matched,
					Version: cs.version,
					Latency: lat,
				}
				if e.onVerdict != nil {
					e.onVerdict(v)
				}
				if s.sink != nil {
					s.sink.Verdict(v)
				}
			}
		}
	}
}

// flush hands the accumulating batch to the worker. When block is false a
// full queue leaves the accumulator in place for the next flusher tick;
// when true the send waits for the worker (the backpressure point).
func (s *shard) flush(block bool, cfg Config) {
	s.mu.Lock()
	if len(s.acc) == 0 {
		s.mu.Unlock()
		return
	}
	batch := s.acc
	target := int(s.target.Load())
	partial := len(batch) < target
	if block {
		s.acc = make([]item, 0, target)
		s.mu.Unlock()
		s.in <- batch
		return
	}
	// Occupancy is sampled before the send: a partial batch shipped into
	// an already-empty queue is the light-traffic signal that shrinks the
	// batch target.
	qlen := len(s.in)
	select {
	case s.in <- batch:
		s.acc = make([]item, 0, target)
		if partial {
			s.adapt(qlen, true, cfg)
		}
	default:
		// Queue full: the worker is saturated; retry on the next tick.
	}
	s.mu.Unlock()
}
