package engine

import (
	"sync"
	"sync/atomic"
	"time"

	"leaksig/internal/httpmodel"
)

// item is one queued packet with its acceptance order and (when sampled)
// enqueue timestamp.
type item struct {
	p   *httpmodel.Packet
	seq uint64
	enq int64 // unix nanos at acceptance; 0 when the packet is unsampled
}

// shard owns one worker goroutine and the queue feeding it. Packets are
// batched on the producer side: Submit appends to acc under the shard
// lock and hands a full batch to the channel, so the worker pays channel
// and pointer-load costs once per batch, not once per packet.
type shard struct {
	in chan []item // full batches in flight to the worker

	mu  sync.Mutex
	acc []item // accumulating batch, at most batchSize entries

	processed atomic.Uint64
	matched   atomic.Uint64
	lat       *latencyRing
}

func newShard(queueBatches, batchSize int) *shard {
	return &shard{
		in:  make(chan []item, queueBatches),
		acc: make([]item, 0, batchSize),
		lat: newLatencyRing(),
	}
}

// run is the worker loop: drain batches until the channel closes, loading
// the live signature generation once per batch.
func (e *Engine) run(s *shard) {
	defer e.wg.Done()
	for batch := range s.in {
		cs := e.set.Load()
		for _, it := range batch {
			matched := cs.match(it.p)
			s.processed.Add(1)
			if len(matched) > 0 {
				s.matched.Add(1)
			}
			var lat time.Duration
			if it.enq != 0 {
				lat = time.Duration(time.Now().UnixNano() - it.enq)
				s.lat.record(lat)
			}
			if e.onVerdict != nil {
				e.onVerdict(Verdict{
					Packet:  it.p,
					Seq:     it.seq,
					Matched: matched,
					Version: cs.version,
					Latency: lat,
				})
			}
		}
	}
}

// flush hands the accumulating batch to the worker. When block is false a
// full queue leaves the accumulator in place for the next flusher tick;
// when true the send waits for the worker (the backpressure point).
func (s *shard) flush(block bool, batchSize int) {
	s.mu.Lock()
	if len(s.acc) == 0 {
		s.mu.Unlock()
		return
	}
	batch := s.acc
	if block {
		s.acc = make([]item, 0, batchSize)
		s.mu.Unlock()
		s.in <- batch
		return
	}
	select {
	case s.in <- batch:
		s.acc = make([]item, 0, batchSize)
	default:
		// Queue full: the worker is saturated; retry on the next tick.
	}
	s.mu.Unlock()
}
