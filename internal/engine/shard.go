package engine

import (
	"sync/atomic"
	"time"

	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/obs/trace"
)

// item is one queued packet with its acceptance order and (when sampled)
// enqueue timestamp.
type item struct {
	p   *httpmodel.Packet
	seq uint64
	enq int64 // unix nanos at acceptance; 0 when the packet is unsampled
}

// shard owns one worker goroutine and the lock-free MPSC ring feeding
// it. Producers push packets straight into the ring (one CAS + one
// store, no mutex, no allocation); the worker drains runs of published
// items into a private buffer, loading the compiled-set pointer once per
// drain so channel traffic, batch slices, and the per-packet atomic load
// are all gone from the hot path.
type shard struct {
	idx  int // position in Engine.shards, for flight-event attribution
	ring *ring

	// target is the adaptive drain limit: how many packets the worker
	// takes per drain, which is also the generation-load amortization
	// unit and the verdict-batch size. The worker doubles it (up to
	// Config.MaxBatch) on every full drain — backlog pays for
	// amortization — and halves it (down to Config.MinBatch) after two
	// consecutive partial drains that empty the ring, so light traffic
	// keeps small batches and low verdict latency without one burst-end
	// drain unlearning the batch size.
	target atomic.Int32

	// sink is this shard's bound consumer (nil when the engine has no
	// sink). countOnly caches sink.CountOnly() && no OnVerdict, letting
	// the worker skip verdict assembly per drain rather than per packet;
	// batchSink is non-nil when the sink opts into pooled VerdictBatch
	// delivery and no OnVerdict forces the per-verdict path.
	sink      ShardSink
	batchSink BatchShardSink
	countOnly bool

	// shrinkStreak counts consecutive drains that qualified for halving
	// the target. Shrinking waits for two in a row: the single partial
	// drain that ends every burst would otherwise throw away the batch
	// size the backlog just paid to learn, oscillating the target on
	// each producer/worker handoff. Worker-owned, so a plain int.
	shrinkStreak int

	processed atomic.Uint64
	matched   atomic.Uint64
	lat       *latencyRing
}

func newShard(queueDepth, batchSize int) *shard {
	s := &shard{
		ring: newRing(queueDepth),
		lat:  newLatencyRing(),
	}
	s.target.Store(int32(batchSize))
	return s
}

// adapt retunes the drain limit after a drain of n items that left
// occupancy claimed slots behind. Running inside the single consumer,
// updates never race; producers only read target through Metrics.
func (s *shard) adapt(n, occupancy int, cfg Config) {
	t := int(s.target.Load())
	switch {
	// A full drain is the backlog signal: at least a whole target was
	// waiting. Unlike producer-side accumulators, a large target adds no
	// latency — the worker never waits to fill it — so growth does not
	// also require leftover occupancy.
	case n >= t:
		s.shrinkStreak = 0
		if doubled := t * 2; doubled <= cfg.MaxBatch {
			s.target.Store(int32(doubled))
		} else if t < cfg.MaxBatch {
			s.target.Store(int32(cfg.MaxBatch))
		}
	case n <= t/2 && occupancy == 0:
		s.shrinkStreak++
		if s.shrinkStreak < 2 {
			break
		}
		s.shrinkStreak = 0
		if half := t / 2; half >= cfg.MinBatch {
			s.target.Store(int32(half))
		} else if t > cfg.MinBatch {
			s.target.Store(int32(cfg.MinBatch))
		}
	default:
		s.shrinkStreak = 0
	}
}

// run is the worker loop: drain the ring until the engine stops, loading
// the live signature generation once per drain. Count-only sinks take a
// dedicated loop with no Verdict assembly at all; batch-capable sinks
// get one pooled VerdictBatch per drain; the legacy path feeds the
// OnVerdict callback and/or the sink's per-verdict method with a copied
// Matched slice (the retain-safe contract).
//
// The worker owns one detect.Scratch for its whole lifetime, so the
// scan+resolve path allocates nothing in the steady state. MatchInto
// re-sizes the scratch whenever the loaded generation differs from the
// one it was last used with, which makes hot reloads safe: a scratch
// sized for the old pattern count can never index the new automaton.
func (e *Engine) run(s *shard) {
	defer e.wg.Done()
	var sc detect.Scratch
	buf := make([]item, e.cfg.MaxBatch)
	for {
		limit := int(s.target.Load())
		if limit > len(buf) {
			limit = len(buf)
		}
		n := s.ring.drain(buf[:limit])
		if n == 0 {
			// Close sets stopped only after every producer has finished
			// (it holds the write lock first), so stopped + empty ring
			// means no packet can still arrive.
			if e.stopped.Load() && s.ring.empty() {
				return
			}
			s.ring.park(e.stop)
			continue
		}
		cs := e.set.Load()
		switch {
		case s.countOnly:
			for i := 0; i < n; i++ {
				it := buf[i]
				// sp is nil for every unsampled packet, so tracing costs the
				// count-only path one pointer load and compare.
				sp := it.p.Span
				if sp != nil {
					sp.Stamp(trace.StageDrain)
				}
				leak := len(cs.eng.MatchInto(it.p, &sc)) > 0
				s.processed.Add(1)
				if leak {
					s.matched.Add(1)
				}
				if it.enq != 0 {
					s.lat.record(time.Duration(time.Now().UnixNano() - it.enq))
				}
				if sp != nil {
					sp.Stamp(trace.StageMatch)
				}
				s.sink.Count(leak)
				if sp != nil {
					sp.Stamp(trace.StageSink)
					sp.Finish()
				}
			}
		case s.batchSink != nil:
			vb := vbatchPool.Get().(*VerdictBatch)
			for i := 0; i < n; i++ {
				it := buf[i]
				if sp := it.p.Span; sp != nil {
					sp.Stamp(trace.StageDrain)
				}
				ids := cs.eng.MatchInto(it.p, &sc)
				s.processed.Add(1)
				if len(ids) > 0 {
					s.matched.Add(1)
				}
				var lat time.Duration
				if it.enq != 0 {
					lat = time.Duration(time.Now().UnixNano() - it.enq)
					s.lat.record(lat)
				}
				if sp := it.p.Span; sp != nil {
					sp.Stamp(trace.StageMatch)
				}
				vb.add(Verdict{
					Packet:  it.p,
					Seq:     it.seq,
					Version: cs.version,
					Latency: lat,
				}, ids)
			}
			vb.seal()
			s.batchSink.Batch(vb)
			// Sink delivery done: stamp and release every sampled span in the
			// batch. Consumers that retain packets past the callback must use
			// the Trace ID, not the Span (recycled here).
			for i := 0; i < n; i++ {
				if sp := buf[i].p.Span; sp != nil {
					sp.Stamp(trace.StageSink)
					sp.Finish()
				}
			}
			vb.reset()
			vbatchPool.Put(vb)
		default:
			for i := 0; i < n; i++ {
				it := buf[i]
				sp := it.p.Span
				if sp != nil {
					sp.Stamp(trace.StageDrain)
				}
				ids := cs.eng.MatchInto(it.p, &sc)
				// The scratch-backed slice is reused next packet; verdicts
				// escape to retaining consumers, so only a leak pays for a
				// copy.
				var matched []int
				if len(ids) > 0 {
					matched = append(matched, ids...)
				}
				s.processed.Add(1)
				if len(matched) > 0 {
					s.matched.Add(1)
				}
				var lat time.Duration
				if it.enq != 0 {
					lat = time.Duration(time.Now().UnixNano() - it.enq)
					s.lat.record(lat)
				}
				if sp != nil {
					sp.Stamp(trace.StageMatch)
				}
				if e.onVerdict != nil || s.sink != nil {
					v := Verdict{
						Packet:  it.p,
						Seq:     it.seq,
						Matched: matched,
						Version: cs.version,
						Latency: lat,
					}
					if e.onVerdict != nil {
						e.onVerdict(v)
					}
					if s.sink != nil {
						// A retaining sink (the learner intake) Holds the span
						// inside Verdict; the engine's reference ends here.
						s.sink.Verdict(v)
					}
				}
				if sp != nil {
					sp.Stamp(trace.StageSink)
					sp.Finish()
				}
			}
		}
		t0 := s.target.Load()
		s.adapt(n, s.ring.len(), e.cfg)
		if t1 := s.target.Load(); t1 != t0 {
			e.cfg.Flight.Record(trace.FlightEvent{
				Kind: trace.KindBatchTarget, Shard: s.idx, Value: int64(t1),
			})
		}
	}
}
