package engine

import (
	"sync/atomic"
	"testing"

	"leaksig/internal/httpmodel"
	"leaksig/internal/obs/trace"
)

// makeAllocPinPackets prebuilds a mixed clean/leaking packet stream so
// the AllocsPerRun loops below measure the engine, not packet
// fabrication.
func makeAllocPinPackets(n int) []*httpmodel.Packet {
	pkts := make([]*httpmodel.Packet, n)
	for i := range pkts {
		if i%3 == 0 {
			pkts[i] = scratchTestPacket(i)
		} else {
			pkts[i] = &httpmodel.Packet{
				ID: int64(i), Host: "ads.example", Method: "GET",
				Path: "/benign", Proto: "HTTP/1.1",
			}
		}
	}
	return pkts
}

// TestCountOnlyPathZeroAlloc pins the count-only streaming path at zero
// allocations per packet: Submit writes into the ring, the worker drains
// with its persistent buffer and scratch, and the CountSink bumps two
// atomics — no Verdict, no batch, no slice, nothing on the heap. The
// threshold tolerates stray runtime allocations (well under one per
// drain) while still failing on any real per-packet or per-batch cost.
func TestCountOnlyPathZeroAlloc(t *testing.T) {
	sink := NewCountSink()
	e := New(scratchTestSet(64), Config{
		Shards: 1, BatchSize: 8, QueueDepth: 1024, Sink: sink,
	})
	defer e.Close()
	if !e.shards[0].countOnly {
		t.Fatal("count-only path not engaged")
	}

	const batch = 256
	pkts := makeAllocPinPackets(batch)
	run := func() {
		for _, p := range pkts {
			if err := e.Submit(p); err != nil {
				t.Fatal(err)
			}
		}
		e.Flush()
	}
	run() // warm: size the scratch, settle the adaptive target

	allocs := testing.AllocsPerRun(20, run)
	if perPacket := allocs / batch; perPacket >= 0.01 {
		t.Errorf("count-only path allocates %.4f per packet (%.1f per %d), want 0", perPacket, allocs, batch)
	}
}

// TestCountOnlyPathZeroAllocWithTracing pins the same count-only path
// with the tracing plane compiled in and attached — tracer at sample 0
// on every packet, a flight recorder on the config — and demands it
// still allocates nothing per packet. This is the contract that lets
// tracing ship always-linked: the unsampled cost is one nil check on
// p.Span per stage hook, never a heap object.
func TestCountOnlyPathZeroAllocWithTracing(t *testing.T) {
	sink := NewCountSink()
	tracer := trace.NewTracer(0) // sampling off: BeginTrace never starts
	e := New(scratchTestSet(64), Config{
		Shards: 1, BatchSize: 8, QueueDepth: 1024, Sink: sink,
		Flight: trace.NewFlight(1, 0),
	})
	defer e.Close()
	if !e.shards[0].countOnly {
		t.Fatal("count-only path not engaged")
	}

	const batch = 256
	pkts := makeAllocPinPackets(batch)
	run := func() {
		for _, p := range pkts {
			p.BeginTrace(tracer)
			if err := e.Submit(p); err != nil {
				t.Fatal(err)
			}
		}
		e.Flush()
	}
	run() // warm: size the scratch, settle the adaptive target

	allocs := testing.AllocsPerRun(20, run)
	if perPacket := allocs / batch; perPacket >= 0.01 {
		t.Errorf("count-only path with tracing attached allocates %.4f per packet (%.1f per %d), want 0", perPacket, allocs, batch)
	}
	if st := tracer.Stats(); st.Started != 0 {
		t.Errorf("sample-0 tracer started %d spans, want 0", st.Started)
	}
}

// TestBatchVerdictPathAllocBudget pins the pooled-verdict path: a
// BatchCallbackSink consumer costs at most 2 allocations per packet in
// the steady state — the budget the VerdictBatch design is sized
// against. Measured it is ~0, because the batch, its spans, and the
// matched-ID arena all recycle through the pool.
func TestBatchVerdictPathAllocBudget(t *testing.T) {
	var total atomic.Uint64
	e := New(scratchTestSet(64), Config{
		Shards: 1, BatchSize: 8, QueueDepth: 1024,
		Sink: BatchCallbackSink(func(vs []Verdict) { total.Add(uint64(len(vs))) }),
	})
	defer e.Close()
	if e.shards[0].batchSink == nil {
		t.Fatal("batch sink path not engaged")
	}

	const batch = 256
	pkts := makeAllocPinPackets(batch)
	run := func() {
		for _, p := range pkts {
			if err := e.Submit(p); err != nil {
				t.Fatal(err)
			}
		}
		e.Flush()
	}
	run() // warm the pool, scratch, and adaptive target

	allocs := testing.AllocsPerRun(20, run)
	if perPacket := allocs / batch; perPacket > 2 {
		t.Errorf("batch verdict path allocates %.4f per packet, budget is 2", perPacket)
	}
	if total.Load() == 0 {
		t.Fatal("batch sink never saw a verdict")
	}
}
