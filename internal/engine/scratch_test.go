package engine

import (
	"fmt"
	"sync"
	"testing"

	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

func scratchTestSet(n int) *signature.Set {
	sigs := make([]*signature.Signature, n)
	for i := range sigs {
		sigs[i] = &signature.Signature{
			ID:     i,
			Tokens: []string{fmt.Sprintf("tok-%04d=", i), "shared="},
		}
	}
	return &signature.Set{Signatures: sigs, Version: int64(n)}
}

func scratchTestPacket(i int) *httpmodel.Packet {
	return &httpmodel.Packet{
		ID:     int64(i),
		Host:   "ads.example",
		Method: "GET",
		Path:   fmt.Sprintf("/a?shared=&tok-%04d=v", i%64),
		Proto:  "HTTP/1.1",
	}
}

// TestSteadyStateScanResolveZeroAlloc asserts the BenchmarkEngineStreaming
// steady state: the per-packet scan+resolve path a shard worker runs —
// MatchInto against the loaded generation with the worker's persistent
// scratch — performs zero allocations once warm, for clean and leaking
// packets alike.
func TestSteadyStateScanResolveZeroAlloc(t *testing.T) {
	cs := compile(scratchTestSet(64))
	var sc detect.Scratch
	leak := scratchTestPacket(3)
	clean := &httpmodel.Packet{Host: "ads.example", Method: "GET", Path: "/benign", Proto: "HTTP/1.1"}
	cs.eng.MatchInto(leak, &sc) // warm: first call sizes the scratch
	for name, p := range map[string]*httpmodel.Packet{"leak": leak, "clean": clean} {
		p := p
		allocs := testing.AllocsPerRun(200, func() {
			cs.eng.MatchInto(p, &sc)
		})
		if allocs != 0 {
			t.Errorf("%s packet: scan+resolve allocated %v per run, want 0", name, allocs)
		}
	}
}

// TestReloadConcurrentScratchSafety hammers Submit and the synchronous
// MatchPacket path while the engine hot-reloads between signature sets of
// very different sizes (different automaton state counts, token counts
// and signature counts). Per-worker scratches and the detect pool must
// re-adopt each new generation rather than index the new automaton with
// stale dimensions; run under -race in CI this also proves the swap is
// publication-safe.
func TestReloadConcurrentScratchSafety(t *testing.T) {
	small := scratchTestSet(2)
	large := scratchTestSet(300)
	e := New(small, Config{Shards: 2, QueueDepth: 256, BatchSize: 8})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { // streaming path: per-shard persistent scratch
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if err := e.Submit(scratchTestPacket(i)); err != nil {
				return
			}
		}
	}()
	go func() { // sync-vet path: pooled scratch
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			ids := e.MatchPacket(scratchTestPacket(i))
			if len(ids) > 1 {
				t.Errorf("sync vet matched %d signatures, want at most 1", len(ids))
				return
			}
		}
	}()
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			e.Reload(large)
		} else {
			e.Reload(small)
		}
	}
	close(stop)
	wg.Wait()
	e.Close()

	m := e.Metrics()
	if m.Processed != m.Ingested {
		t.Errorf("processed %d != ingested %d after drain", m.Processed, m.Ingested)
	}
	if m.Reloads < 200 {
		t.Errorf("reloads = %d, want >= 200", m.Reloads)
	}
}

// TestVerdictMatchedStableAcrossPackets guards the verdict copy-out: the
// matched-ID slice handed to sinks must not alias the worker scratch,
// which is overwritten by the next packet in the batch.
func TestVerdictMatchedStableAcrossPackets(t *testing.T) {
	set := scratchTestSet(64)
	var mu sync.Mutex
	var got []Verdict
	e := New(set, Config{Shards: 1, OnVerdict: func(v Verdict) {
		if v.Leak() {
			mu.Lock()
			got = append(got, v)
			mu.Unlock()
		}
	}})
	for i := 0; i < 64; i++ {
		if err := e.Submit(scratchTestPacket(i)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	if len(got) != 64 {
		t.Fatalf("got %d leak verdicts, want 64", len(got))
	}
	seen := make(map[int]bool)
	for _, v := range got {
		if len(v.Matched) != 1 {
			t.Fatalf("verdict matched %v, want exactly 1 ID", v.Matched)
		}
		seen[v.Matched[0]] = true
	}
	if len(seen) != 64 {
		t.Errorf("distinct matched IDs = %d, want 64 (scratch aliasing would collapse them)", len(seen))
	}
}
