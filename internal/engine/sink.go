package engine

import (
	"sync"
	"sync/atomic"
)

// Sink receives match results from the engine's shard workers. Bind is
// called once per shard at engine construction, before any packet flows,
// so an implementation can hand every worker private state — aggregation
// then happens at snapshot time, never on the hot path.
//
// Two implementations ship with the package: CallbackSink adapts a
// per-verdict function (the Config.OnVerdict behavior), and CountSink
// aggregates counters without ever assembling a Verdict, which is the
// fastest way to answer "how much of this population leaks" when nobody
// consumes individual verdicts.
type Sink interface {
	// Bind returns shard i's private consumer (0 <= i < shards). It is
	// called sequentially during New, once per shard.
	Bind(shard, shards int) ShardSink
}

// ShardSink is one shard's verdict consumer. Exactly one of Count or
// Verdict fires per packet: when CountOnly reports true (sampled once at
// bind time) the worker skips Verdict assembly entirely and calls Count;
// otherwise it builds the full Verdict and calls Verdict. Count runs on
// the shard's worker goroutine only; Verdict may race with other shards'
// Verdict calls when the implementation shares state across shards.
type ShardSink interface {
	// CountOnly reports whether this shard's worker may take the
	// count-only fast path. The engine reads it once at construction.
	CountOnly() bool
	// Count records one processed packet on the fast path; leak reports
	// whether it matched at least one signature.
	Count(leak bool)
	// Verdict receives one fully assembled verdict on the slow path.
	Verdict(v Verdict)
}

// CallbackSink adapts a per-verdict function to the Sink interface —
// the sink form of Config.OnVerdict. The function is shared by every
// shard and must be safe for concurrent use.
func CallbackSink(fn func(Verdict)) Sink { return callbackSink{fn} }

type callbackSink struct{ fn func(Verdict) }

func (s callbackSink) Bind(shard, shards int) ShardSink { return s }
func (s callbackSink) CountOnly() bool                  { return false }
func (s callbackSink) Count(bool)                       {}
func (s callbackSink) Verdict(v Verdict)                { s.fn(v) }

// TeeSink fans every result out to several sinks — e.g. a CountSink for
// cheap totals plus a siggen miss sink feeding the online signature
// generator. The tee takes the count-only fast path only when every
// child does; otherwise verdicts are assembled once and every child's
// Verdict sees them.
func TeeSink(sinks ...Sink) Sink {
	switch len(sinks) {
	case 0:
		return nil
	case 1:
		return sinks[0]
	}
	return teeSink(sinks)
}

type teeSink []Sink

func (t teeSink) Bind(shard, shards int) ShardSink {
	bound := make(teeShardSink, len(t))
	for i, s := range t {
		bound[i] = s.Bind(shard, shards)
	}
	return bound
}

type teeShardSink []ShardSink

func (t teeShardSink) CountOnly() bool {
	for _, s := range t {
		if !s.CountOnly() {
			return false
		}
	}
	return true
}

func (t teeShardSink) Count(leak bool) {
	for _, s := range t {
		s.Count(leak)
	}
}

func (t teeShardSink) Verdict(v Verdict) {
	for _, s := range t {
		s.Verdict(v)
	}
}

// countShardPad sizes the padding that keeps each shard's counters on
// their own cache line, so concurrent shards never write-share a line.
const countShardPad = 64

// CountSink is the count-only aggregation sink: per-shard packet and leak
// tallies with no verdict assembly, no callback indirection, and no
// cross-shard contention on the hot path. Construct with NewCountSink,
// pass as Config.Sink, and read the aggregate with Totals. One CountSink
// may back several engines (e.g. as a Pool's template sink), in which
// case Totals spans all of them; same-index shards then share a slot,
// which stays correct because the counters are atomic.
type CountSink struct {
	mu     sync.Mutex // serializes Bind growth
	shards atomic.Pointer[[]*countShard]
}

type countShard struct {
	packets atomic.Uint64
	leaks   atomic.Uint64
	_       [countShardPad - 16]byte
}

// NewCountSink returns an empty count sink ready to be bound.
func NewCountSink() *CountSink { return &CountSink{} }

// Bind implements Sink.
func (c *CountSink) Bind(shard, shards int) ShardSink {
	c.mu.Lock()
	defer c.mu.Unlock()
	var cur []*countShard
	if p := c.shards.Load(); p != nil {
		cur = *p
	}
	if len(cur) <= shard {
		grown := make([]*countShard, shards)
		copy(grown, cur)
		for i := len(cur); i < len(grown); i++ {
			grown[i] = new(countShard)
		}
		c.shards.Store(&grown)
		cur = grown
	}
	return (*countShardSink)(cur[shard])
}

// Totals returns the packets processed and the packets that matched at
// least one signature, summed across shards. It is safe to call while
// streaming; the two numbers are each internally consistent but may lag
// one another by in-flight packets.
func (c *CountSink) Totals() (packets, leaks uint64) {
	if p := c.shards.Load(); p != nil {
		for _, s := range *p {
			packets += s.packets.Load()
			leaks += s.leaks.Load()
		}
	}
	return packets, leaks
}

// countShardSink is one shard's slot, viewed through the ShardSink
// interface.
type countShardSink countShard

func (s *countShardSink) CountOnly() bool { return true }

func (s *countShardSink) Count(leak bool) {
	s.packets.Add(1)
	if leak {
		s.leaks.Add(1)
	}
}

func (s *countShardSink) Verdict(v Verdict) { s.Count(v.Leak()) }
