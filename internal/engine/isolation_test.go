package engine

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// gateSink wedges shard 0's verdict consumer on a gate channel and
// counts verdicts on every other shard — the instrument for the
// isolation pin below.
type gateSink struct {
	gate    chan struct{}
	entered chan struct{}
	once    atomic.Bool
	sibling atomic.Uint64
}

func (g *gateSink) Bind(shard, shards int) ShardSink {
	if shard == 0 {
		return &gateShardSink{g}
	}
	return &siblingShardSink{g}
}

type gateShardSink struct{ g *gateSink }

func (s *gateShardSink) CountOnly() bool { return false }
func (s *gateShardSink) Count(bool)      {}
func (s *gateShardSink) Verdict(Verdict) {
	if s.g.once.CompareAndSwap(false, true) {
		close(s.g.entered)
	}
	<-s.g.gate
}

type siblingShardSink struct{ g *gateSink }

func (s *siblingShardSink) CountOnly() bool { return false }
func (s *siblingShardSink) Count(bool)      {}
func (s *siblingShardSink) Verdict(Verdict) { s.g.sibling.Add(1) }

// TestStalledSinkIsolatesToOwnShard pins per-shard isolation: a sink
// that stalls on shard 0 backs up only shard 0's ring. Packets hashed to
// shard 1 keep flowing at full rate — sibling shards share no lock, no
// channel, and no ring with the stalled one.
func TestStalledSinkIsolatesToOwnShard(t *testing.T) {
	g := &gateSink{gate: make(chan struct{}), entered: make(chan struct{})}
	e := New(tokenSet(1, "x-token"), Config{
		Shards: 2, BatchSize: 4, QueueDepth: 16,
		Sink: g,
	})

	// Host affinity is stable, so probe one host per shard.
	var host0, host1 string
	for i := 0; host0 == "" || host1 == ""; i++ {
		if i > 1<<16 {
			t.Fatal("could not find hosts hashing to both shards")
		}
		h := fmt.Sprintf("h%d.example", i)
		switch e.shardFor(pkt(0, h, ""), 0) {
		case e.shards[0]:
			if host0 == "" {
				host0 = h
			}
		case e.shards[1]:
			if host1 == "" {
				host1 = h
			}
		}
	}

	// Wedge shard 0's worker in its sink, then fill its ring to rejection.
	if err := e.Submit(pkt(0, host0, "x-token")); err != nil {
		t.Fatal(err)
	}
	<-g.entered
	stalled := 0
	for i := 0; i < 256; i++ {
		if !e.TrySubmit(pkt(int64(1+i), host0, "x-token")) {
			break
		}
		stalled++
	}
	if stalled >= 256 {
		t.Fatal("shard 0 never saturated behind its stalled sink")
	}

	// Shard 1 must absorb a full stream — far more packets than any
	// shared queue could hold — while its sibling is dead in the water.
	const n = 5000
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			if err := e.Submit(pkt(int64(1000+i), host1, "x-token")); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("shard 1 submits starved behind shard 0's stalled sink")
	}
	deadline := time.Now().Add(10 * time.Second)
	for g.sibling.Load() < n {
		if time.Now().After(deadline) {
			t.Fatalf("shard 1 processed %d of %d while shard 0 stalled", g.sibling.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}

	close(g.gate)
	e.Close()
	if m := e.Metrics(); m.Processed != m.Ingested {
		t.Errorf("processed %d != ingested %d after release", m.Processed, m.Ingested)
	}
}
