package engine

import (
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// TestAdaptiveBatchGrowsUnderBacklog keeps a producer ahead of the single
// worker: every full drain that leaves the ring still occupied must
// double the drain target until it pins at MaxBatch.
func TestAdaptiveBatchGrowsUnderBacklog(t *testing.T) {
	e := New(tokenSet(1, "x-token"), Config{
		Shards:     1,
		BatchSize:  4,
		MinBatch:   2,
		MaxBatch:   64,
		QueueDepth: 256,
		OnVerdict:  func(Verdict) {},
	})
	defer e.Close()
	s := e.shards[0]
	// Blocking submits keep the ring saturated faster than the worker
	// can shrink it; each full drain with leftover occupancy grows the
	// target toward the ceiling.
	deadline := time.Now().Add(5 * time.Second)
	for i := 0; int(s.target.Load()) != 64; i++ {
		if err := e.Submit(pkt(int64(i), "a.example.com", "x-token")); err != nil {
			t.Fatal(err)
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch target stuck at %d after sustained backlog, want ceiling 64", s.target.Load())
		}
	}
}

// TestAdaptiveBatchShrinksWhenDrained sends lone packets through a large
// initial drain target: every partial drain that empties the ring must
// halve the target until it pins at MinBatch.
func TestAdaptiveBatchShrinksWhenDrained(t *testing.T) {
	verdicts := make(chan Verdict, 64)
	e := New(tokenSet(1, "x-token"), Config{
		Shards:    1,
		BatchSize: 64,
		MinBatch:  4,
		MaxBatch:  64,
		OnVerdict: func(v Verdict) { verdicts <- v },
	})
	defer e.Close()
	s := e.shards[0]
	deadline := time.After(5 * time.Second)
	for i := 0; int(s.target.Load()) > 4; i++ {
		if err := e.Submit(pkt(int64(i), "a.example.com", "zone=1")); err != nil {
			t.Fatal(err)
		}
		select {
		case <-verdicts: // a lone-packet drain emptied the ring
		case <-deadline:
			t.Fatalf("batch target stuck at %d, want floor 4", s.target.Load())
		}
	}
	if got := int(s.target.Load()); got < 4 {
		t.Fatalf("batch target %d fell below the floor 4", got)
	}
}

// TestAdaptiveBatchDisabled pins the target when MinBatch = MaxBatch =
// BatchSize, preserving the fixed-batch behavior.
func TestAdaptiveBatchDisabled(t *testing.T) {
	gate := make(chan struct{})
	e := New(tokenSet(1, "x-token"), Config{
		Shards:     1,
		BatchSize:  4,
		MinBatch:   4,
		MaxBatch:   4,
		QueueDepth: 64,
		OnVerdict:  func(Verdict) { <-gate },
	})
	for i := 0; i < 256; i++ {
		e.TrySubmit(pkt(int64(i), "a.example.com", "x-token"))
	}
	if got := int(e.shards[0].target.Load()); got != 4 {
		t.Errorf("pinned batch target moved to %d", got)
	}
	close(gate)
	e.Close()
}

// TestConfigBatchBounds checks the default and clamping rules that keep
// MinBatch <= BatchSize <= MaxBatch <= QueueDepth.
func TestConfigBatchBounds(t *testing.T) {
	cases := []struct {
		in            Config
		min, ini, max int
	}{
		{Config{}, 8, 64, 512},
		{Config{BatchSize: 1, QueueDepth: 1}, 1, 1, 1},
		{Config{BatchSize: 16, MinBatch: 32}, 32, 32, 128},
		{Config{BatchSize: 64, MaxBatch: 32}, 8, 32, 32},
		{Config{BatchSize: 64, QueueDepth: 128}, 8, 64, 128},
	}
	for _, c := range cases {
		got := c.in.withDefaults()
		if got.MinBatch != c.min || got.BatchSize != c.ini || got.MaxBatch != c.max {
			t.Errorf("%+v: bounds (%d, %d, %d), want (%d, %d, %d)",
				c.in, got.MinBatch, got.BatchSize, got.MaxBatch, c.min, c.ini, c.max)
		}
		if got.MinBatch > got.BatchSize || got.BatchSize > got.MaxBatch || got.MaxBatch > got.QueueDepth {
			t.Errorf("%+v: inconsistent bounds %+v", c.in, got)
		}
	}
}

// TestAdaptiveBatchVerdictParity re-checks batch-vs-streaming parity with
// aggressive adaptation, so resizing never loses or duplicates packets.
func TestAdaptiveBatchVerdictParity(t *testing.T) {
	set := tokenSet(1, "udid=f3a9c1d2")
	n := 3000
	var got atomic.Uint64
	e := New(set, Config{
		Shards:    2,
		BatchSize: 8,
		MinBatch:  1,
		MaxBatch:  256,
		OnVerdict: func(v Verdict) {
			if v.Leak() {
				got.Add(1)
			}
		},
	})
	want := 0
	for i := 0; i < n; i++ {
		payload := "zone=1"
		if i%5 == 0 {
			payload = "udid=f3a9c1d2"
			want++
		}
		if err := e.Submit(pkt(int64(i), fmt.Sprintf("h%d", i%9), payload)); err != nil {
			t.Fatal(err)
		}
	}
	e.Close()
	if int(got.Load()) != want {
		t.Fatalf("leaks under adaptive batching = %d, want %d", got.Load(), want)
	}
}
