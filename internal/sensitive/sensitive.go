// Package sensitive implements the paper's payload check: the ground-truth
// scanner that "separates application network traffic into two groups: one
// containing packets with sensitive information, and the other not" (§IV-A).
//
// Sensitive information follows §V-A: the UDIDs (Android ID, IMEI, IMSI,
// SIM Serial ID), their MD5 and SHA1 hex digests, and the carrier name.
// The scanner knows the device's concrete values, mirrors how the authors
// labelled their trace (they controlled the handset, so every sensitive
// byte string was known a priori), and reports which kinds occur in a
// packet's content.
package sensitive

import (
	"crypto/md5"
	"crypto/sha1"
	"encoding/hex"
	"strings"

	"leaksig/internal/ahocorasick"
	"leaksig/internal/android"
	"leaksig/internal/httpmodel"
)

// Kind is one row of the paper's Table III.
type Kind int

// Kinds in Table III order.
const (
	KindAndroidID Kind = iota
	KindAndroidIDMD5
	KindAndroidIDSHA1
	KindCarrier
	KindIMEI
	KindIMEIMD5
	KindIMEISHA1
	KindIMSI
	KindSIMSerial
	numKinds
)

var kindNames = [...]string{
	"ANDROID ID",
	"ANDROID ID MD5",
	"ANDROID ID SHA1",
	"CARRIER",
	"IMEI (Device ID)",
	"IMEI MD5",
	"IMEI SHA1",
	"IMSI (Subscriber ID)",
	"SIM Serial ID",
}

// String returns the Table III row label.
func (k Kind) String() string {
	if k >= 0 && int(k) < len(kindNames) {
		return kindNames[k]
	}
	return "UNKNOWN"
}

// Kinds returns all kinds in Table III order.
func Kinds() []Kind {
	out := make([]Kind, numKinds)
	for i := range out {
		out[i] = Kind(i)
	}
	return out
}

// NumKinds is the number of sensitive-information kinds.
const NumKinds = int(numKinds)

// MD5Hex returns the lowercase hex MD5 digest of s — the transformation ad
// modules apply to UDIDs before transmission (§III-B).
func MD5Hex(s string) string {
	sum := md5.Sum([]byte(s))
	return hex.EncodeToString(sum[:])
}

// SHA1Hex returns the lowercase hex SHA1 digest of s.
func SHA1Hex(s string) string {
	sum := sha1.Sum([]byte(s))
	return hex.EncodeToString(sum[:])
}

// Oracle scans packet contents for a device's sensitive values. It is
// immutable after construction and safe for concurrent use.
type Oracle struct {
	matcher *ahocorasick.Matcher
	kinds   []Kind // kind of pattern i
	device  *android.Device
}

// NewOracle builds the payload check for one device. Hash digests are
// matched in both lowercase and uppercase hex because ad modules differ in
// presentation; plain identifiers are matched verbatim, and the carrier
// name case-insensitively via its known casings.
func NewOracle(d *android.Device) *Oracle {
	var patterns [][]byte
	var kinds []Kind
	add := func(k Kind, values ...string) {
		for _, v := range values {
			if v == "" {
				continue
			}
			patterns = append(patterns, []byte(v))
			kinds = append(kinds, k)
		}
	}
	addHash := func(k Kind, digest string) {
		add(k, digest, strings.ToUpper(digest))
	}
	add(KindAndroidID, d.AndroidID, strings.ToUpper(d.AndroidID))
	addHash(KindAndroidIDMD5, MD5Hex(d.AndroidID))
	addHash(KindAndroidIDSHA1, SHA1Hex(d.AndroidID))
	add(KindCarrier, d.Carrier.Name, strings.ToLower(d.Carrier.Name), strings.ToUpper(d.Carrier.Name))
	add(KindIMEI, d.IMEI)
	addHash(KindIMEIMD5, MD5Hex(d.IMEI))
	addHash(KindIMEISHA1, SHA1Hex(d.IMEI))
	add(KindIMSI, d.IMSI)
	add(KindSIMSerial, d.SIMSerial)
	return &Oracle{
		matcher: ahocorasick.Compile(patterns),
		kinds:   kinds,
		device:  d,
	}
}

// Device returns the device the oracle was built for.
func (o *Oracle) Device() *android.Device { return o.device }

// ScanBytes reports the distinct kinds of sensitive information occurring
// in raw content, in Kind order.
func (o *Oracle) ScanBytes(content []byte) []Kind {
	occ := o.matcher.Occurs(content)
	var present [numKinds]bool
	for i, hit := range occ {
		if hit {
			present[o.kinds[i]] = true
		}
	}
	var out []Kind
	for k := Kind(0); k < numKinds; k++ {
		if present[k] {
			out = append(out, k)
		}
	}
	return out
}

// Scan reports the distinct kinds of sensitive information in the packet's
// content (request line + cookie + body).
func (o *Oracle) Scan(p *httpmodel.Packet) []Kind {
	return o.ScanBytes(p.Content())
}

// IsSensitive reports whether the packet carries any sensitive information —
// the predicate that forms the paper's suspicious group.
func (o *Oracle) IsSensitive(p *httpmodel.Packet) bool {
	return len(o.Scan(p)) > 0
}

// Value returns the raw (unhashed) device value underlying a kind, e.g. the
// IMEI digits for KindIMEI, KindIMEIMD5 and KindIMEISHA1. The carrier kind
// returns the carrier name.
func (o *Oracle) Value(k Kind) string {
	d := o.device
	switch k {
	case KindAndroidID, KindAndroidIDMD5, KindAndroidIDSHA1:
		return d.AndroidID
	case KindCarrier:
		return d.Carrier.Name
	case KindIMEI, KindIMEIMD5, KindIMEISHA1:
		return d.IMEI
	case KindIMSI:
		return d.IMSI
	case KindSIMSerial:
		return d.SIMSerial
	}
	return ""
}

// TransmittedValue returns the byte string an ad module would place in a
// packet for kind k: the raw value, or its lowercase hex digest for the
// hashed kinds.
func (o *Oracle) TransmittedValue(k Kind) string {
	switch k {
	case KindAndroidIDMD5:
		return MD5Hex(o.device.AndroidID)
	case KindAndroidIDSHA1:
		return SHA1Hex(o.device.AndroidID)
	case KindIMEIMD5:
		return MD5Hex(o.device.IMEI)
	case KindIMEISHA1:
		return SHA1Hex(o.device.IMEI)
	default:
		return o.Value(k)
	}
}
