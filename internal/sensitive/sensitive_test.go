package sensitive

import (
	"math/rand"
	"strings"
	"testing"

	"leaksig/internal/android"
	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
)

func testOracle() *Oracle {
	d := android.NewDevice(rand.New(rand.NewSource(1)), android.CarrierDocomo)
	return NewOracle(d)
}

func TestHashHelpers(t *testing.T) {
	if got := MD5Hex("abc"); got != "900150983cd24fb0d6963f7d28e17f72" {
		t.Errorf("MD5Hex = %s", got)
	}
	if got := SHA1Hex("abc"); got != "a9993e364706816aba3e25717850c26c9cd0d89d" {
		t.Errorf("SHA1Hex = %s", got)
	}
}

func TestKindStrings(t *testing.T) {
	if KindAndroidID.String() != "ANDROID ID" {
		t.Errorf("KindAndroidID = %q", KindAndroidID)
	}
	if KindSIMSerial.String() != "SIM Serial ID" {
		t.Errorf("KindSIMSerial = %q", KindSIMSerial)
	}
	if Kind(99).String() != "UNKNOWN" {
		t.Error("out-of-range kind")
	}
	if len(Kinds()) != NumKinds || NumKinds != 9 {
		t.Errorf("Kinds() = %v", Kinds())
	}
}

func TestScanEachKind(t *testing.T) {
	o := testOracle()
	d := o.Device()
	cases := []struct {
		payload string
		want    Kind
	}{
		{"android_id=" + d.AndroidID, KindAndroidID},
		{"aid=" + MD5Hex(d.AndroidID), KindAndroidIDMD5},
		{"aid=" + SHA1Hex(d.AndroidID), KindAndroidIDSHA1},
		{"carrier=" + d.Carrier.Name, KindCarrier},
		{"imei=" + d.IMEI, KindIMEI},
		{"di=" + MD5Hex(d.IMEI), KindIMEIMD5},
		{"di=" + SHA1Hex(d.IMEI), KindIMEISHA1},
		{"imsi=" + d.IMSI, KindIMSI},
		{"sim=" + d.SIMSerial, KindSIMSerial},
	}
	for _, c := range cases {
		p := httpmodel.Get("x.example", "/t?"+c.payload).
			Dest(ipaddr.MustParse("192.0.2.1"), 80).Build()
		got := o.Scan(p)
		found := false
		for _, k := range got {
			if k == c.want {
				found = true
			}
		}
		if !found {
			t.Errorf("Scan(%q) = %v, want to include %v", c.payload, got, c.want)
		}
	}
}

func TestScanUppercaseHash(t *testing.T) {
	o := testOracle()
	up := strings.ToUpper(MD5Hex(o.Device().IMEI))
	p := httpmodel.Get("x.example", "/t?h="+up).Dest(1, 80).Build()
	kinds := o.Scan(p)
	if len(kinds) != 1 || kinds[0] != KindIMEIMD5 {
		t.Errorf("Scan(uppercase md5) = %v", kinds)
	}
}

func TestScanCarrierCaseVariants(t *testing.T) {
	o := testOracle()
	for _, v := range []string{"NTTDOCOMO", "nttdocomo"} {
		p := httpmodel.Get("x.example", "/t?c="+v).Dest(1, 80).Build()
		if !o.IsSensitive(p) {
			t.Errorf("carrier variant %q not detected", v)
		}
	}
}

func TestScanBenignPacket(t *testing.T) {
	o := testOracle()
	p := httpmodel.Get("gstatic.com", "/images/logo.png").
		Dest(ipaddr.MustParse("198.51.100.4"), 80).
		UserAgent(o.Device().UserAgent()).
		Build()
	if o.IsSensitive(p) {
		t.Errorf("benign packet flagged: %v", o.Scan(p))
	}
}

func TestScanMultipleKindsOnePacket(t *testing.T) {
	// Mirrors the paper's §III-B observation: "ad-maker.info ... expect[s]
	// IMEI and Android ID" in a single request.
	o := testOracle()
	d := o.Device()
	p := httpmodel.Get("ad-maker.info", "/sdk/v1").
		Dest(ipaddr.MustParse("203.0.113.7"), 80).
		Query("imei", d.IMEI).
		Query("aid", d.AndroidID).
		Query("carrier", d.Carrier.Name).
		Build()
	kinds := o.Scan(p)
	if len(kinds) != 3 {
		t.Fatalf("Scan = %v, want 3 kinds", kinds)
	}
	// Kinds must come back in Table III order.
	for i := 1; i < len(kinds); i++ {
		if kinds[i-1] >= kinds[i] {
			t.Errorf("kinds unordered: %v", kinds)
		}
	}
}

func TestScanBodyAndCookie(t *testing.T) {
	o := testOracle()
	d := o.Device()
	inBody := httpmodel.Post("track.example", "/ev").
		Dest(1, 80).Form("udid", d.IMEI).Build()
	if !o.IsSensitive(inBody) {
		t.Error("IMEI in body not detected")
	}
	inCookie := httpmodel.Get("track.example", "/ev").
		Dest(1, 80).Cookie("device=" + d.AndroidID).Build()
	if !o.IsSensitive(inCookie) {
		t.Error("Android ID in cookie not detected")
	}
}

func TestValueAndTransmittedValue(t *testing.T) {
	o := testOracle()
	d := o.Device()
	if o.Value(KindIMEIMD5) != d.IMEI {
		t.Error("Value(IMEI MD5) should be raw IMEI")
	}
	if o.TransmittedValue(KindIMEIMD5) != MD5Hex(d.IMEI) {
		t.Error("TransmittedValue(IMEI MD5) should be the digest")
	}
	if o.TransmittedValue(KindIMEI) != d.IMEI {
		t.Error("TransmittedValue(IMEI) should be raw")
	}
	if o.Value(Kind(99)) != "" {
		t.Error("Value(unknown) should be empty")
	}
	if o.Value(KindCarrier) != d.Carrier.Name {
		t.Error("Value(carrier)")
	}
}

func TestOracleDistinguishesDevices(t *testing.T) {
	d1 := android.NewDevice(rand.New(rand.NewSource(1)), android.CarrierDocomo)
	d2 := android.NewDevice(rand.New(rand.NewSource(2)), android.CarrierDocomo)
	o1 := NewOracle(d1)
	p := httpmodel.Get("x.example", "/t?imei="+d2.IMEI).Dest(1, 80).Build()
	kinds := o1.Scan(p)
	for _, k := range kinds {
		if k == KindIMEI {
			t.Error("oracle for device 1 matched device 2's IMEI")
		}
	}
}
