package suffix

import (
	"math/rand"
	"sync"
	"testing"
)

// TestStreamChunkedEquivalence proves the streaming contract: feeding a
// string in arbitrary chunk splits yields exactly the BestLen and Finish
// result of one whole-string Feed.
func TestStreamChunkedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	alphabet := []byte("abcx=&0123")
	randText := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = alphabet[rng.Intn(len(alphabet))]
		}
		return b
	}
	for iter := 0; iter < 50; iter++ {
		src := randText(5 + rng.Intn(60))
		text := randText(5 + rng.Intn(60))
		a := New(src)

		whole := a.NewStream()
		whole.Feed(text)
		wantBest := whole.BestLen()
		wantMatch := append([]int32(nil), whole.Finish()...)

		chunked := a.NewStream()
		for pos := 0; pos < len(text); {
			n := 1 + rng.Intn(len(text)-pos)
			if rng.Intn(2) == 0 {
				chunked.FeedString(string(text[pos : pos+n]))
			} else {
				chunked.Feed(text[pos : pos+n])
			}
			pos += n
		}
		if got := chunked.BestLen(); got != wantBest {
			t.Fatalf("iter %d: chunked BestLen=%d whole=%d (src=%q text=%q)",
				iter, got, wantBest, src, text)
		}
		gotMatch := chunked.Finish()
		for i := range wantMatch {
			if gotMatch[i] != wantMatch[i] {
				t.Fatalf("iter %d: Finish()[%d]=%d whole=%d", iter, i, gotMatch[i], wantMatch[i])
			}
		}

		// Reset reuses the stream for a fresh text with no carry-over.
		chunked.Reset()
		chunked.Feed(text)
		if got := chunked.BestLen(); got != wantBest {
			t.Fatalf("iter %d: BestLen after Reset=%d want %d", iter, got, wantBest)
		}
	}
}

// TestStreamMatchesMatchLengths pins the production refactor: the
// internal matchLengths (now built on Stream) agrees with a hand-rolled
// longest-common-substring check via BestLen.
func TestStreamMatchesMatchLengths(t *testing.T) {
	src := []byte("udid=f3a9c1d2&zone=1")
	a := New(src)
	for _, text := range []string{
		"xxudid=f3a9yy", "zone=1", "nothing shared??", "", "udid=f3a9c1d2&zone=1",
	} {
		s := a.NewStream()
		s.FeedString(text)
		want := 0
		for i := 0; i < len(text); i++ {
			for j := i + want + 1; j <= len(text); j++ {
				if a.Contains([]byte(text[i:j])) {
					want = j - i
				} else {
					break
				}
			}
		}
		if got := s.BestLen(); got != want {
			t.Errorf("BestLen(%q)=%d, naive=%d", text, got, want)
		}
	}
}

// TestStreamsShareAutomatonConcurrently runs many Streams over one
// Automaton from concurrent goroutines under -race: the automaton is
// immutable after New, so per-stream state is the only mutation.
func TestStreamsShareAutomatonConcurrently(t *testing.T) {
	src := []byte("imei=356938035643809&aid=9774d56d682e549c&sess=abcdef")
	a := New(src)
	texts := [][]byte{
		[]byte("p=imei=356938035643809&x=1"),
		[]byte("nothing in common AT ALL"),
		[]byte("aid=9774d56d682e549c"),
		src,
	}
	wants := make([]int, len(texts))
	for i, txt := range texts {
		s := a.NewStream()
		s.Feed(txt)
		wants[i] = s.BestLen()
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s := a.NewStream()
			for iter := 0; iter < 200; iter++ {
				i := (g + iter) % len(texts)
				s.Reset()
				// Split each text at a goroutine-dependent boundary.
				cut := (g*7 + iter) % (len(texts[i]) + 1)
				s.Feed(texts[i][:cut])
				s.Feed(texts[i][cut:])
				if got := s.BestLen(); got != wants[i] {
					t.Errorf("g%d text %d: BestLen=%d want %d", g, i, got, wants[i])
					return
				}
				s.Finish()
			}
		}(g)
	}
	wg.Wait()
}
