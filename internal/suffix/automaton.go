// Package suffix implements a suffix automaton over byte strings and uses it
// to compute longest common substrings across two or more strings.
//
// Signature generation (§IV-E of the paper) needs "the longest common
// strings of HTTP contents" in each cluster. The suffix automaton gives the
// longest substring common to k strings in O(total length) time: build the
// automaton of the first string, then stream every other string through it,
// recording per state the longest match achieved, and finally take the
// minimum across strings at each state.
package suffix

// Automaton is a suffix automaton (directed acyclic word graph) of a single
// byte string. States are identified by dense int indices; state 0 is the
// initial state.
type Automaton struct {
	next     []map[byte]int32 // transitions
	link     []int32          // suffix links; link[0] == -1
	length   []int32          // longest substring length recognized at the state
	firstPos []int32          // end position (inclusive) of first occurrence
	last     int32
	src      []byte
}

// New builds the suffix automaton of s. The automaton keeps a reference to s
// for substring extraction; callers must not mutate s afterwards.
func New(s []byte) *Automaton {
	a := &Automaton{
		next:     make([]map[byte]int32, 1, 2*len(s)+2),
		link:     make([]int32, 1, 2*len(s)+2),
		length:   make([]int32, 1, 2*len(s)+2),
		firstPos: make([]int32, 1, 2*len(s)+2),
		src:      s,
	}
	a.next[0] = make(map[byte]int32)
	a.link[0] = -1
	for i, c := range s {
		a.extend(c, int32(i))
	}
	return a
}

func (a *Automaton) addState(length, link, firstPos int32) int32 {
	a.next = append(a.next, make(map[byte]int32))
	a.link = append(a.link, link)
	a.length = append(a.length, length)
	a.firstPos = append(a.firstPos, firstPos)
	return int32(len(a.next) - 1)
}

func (a *Automaton) extend(c byte, pos int32) {
	cur := a.addState(a.length[a.last]+1, -1, pos)
	p := a.last
	for p != -1 {
		if _, ok := a.next[p][c]; ok {
			break
		}
		a.next[p][c] = cur
		p = a.link[p]
	}
	if p == -1 {
		a.link[cur] = 0
	} else {
		q := a.next[p][c]
		if a.length[p]+1 == a.length[q] {
			a.link[cur] = q
		} else {
			clone := a.addState(a.length[p]+1, a.link[q], a.firstPos[q])
			// Copy q's transitions into the clone.
			for k, v := range a.next[q] {
				a.next[clone][k] = v
			}
			for p != -1 {
				if a.next[p][c] != q {
					break
				}
				a.next[p][c] = clone
				p = a.link[p]
			}
			a.link[q] = clone
			a.link[cur] = clone
		}
	}
	a.last = cur
}

// NumStates returns the number of states in the automaton.
func (a *Automaton) NumStates() int { return len(a.next) }

// Contains reports whether t occurs as a substring of the automaton's
// source string.
func (a *Automaton) Contains(t []byte) bool {
	v := int32(0)
	for _, c := range t {
		nv, ok := a.next[v][c]
		if !ok {
			return false
		}
		v = nv
	}
	return true
}

// matchLengths streams t through the automaton and returns, for each state,
// the length of the longest substring of t whose traversal ends at that
// state (capped at the state's own length), propagated down suffix links.
// It is the one-shot face of Stream: one Feed of the whole string.
func (a *Automaton) matchLengths(t []byte) []int32 {
	s := a.NewStream()
	s.Feed(t)
	return s.Finish()
}

// statesByLength returns state indices sorted by increasing length using a
// counting sort (lengths are bounded by len(src)).
func (a *Automaton) statesByLength() []int32 {
	maxLen := int32(len(a.src))
	count := make([]int32, maxLen+2)
	for _, l := range a.length {
		count[l]++
	}
	for i := int32(1); i <= maxLen+1; i++ {
		count[i] += count[i-1]
	}
	order := make([]int32, len(a.length))
	for s := len(a.length) - 1; s >= 0; s-- {
		l := a.length[s]
		count[l]--
		order[count[l]] = int32(s)
	}
	return order
}

// LongestCommonSubstring returns the longest substring shared by every
// string in ss. When several substrings tie for the maximum length the one
// occurring earliest in ss[0] is returned. The result aliases ss[0]'s
// backing array. An empty input or any empty member yields nil.
func LongestCommonSubstring(ss [][]byte) []byte {
	switch len(ss) {
	case 0:
		return nil
	case 1:
		return ss[0]
	}
	// Use the shortest string as the automaton source: fewer states, and
	// every common substring is a substring of it.
	ref := 0
	for i, s := range ss {
		if len(s) < len(ss[ref]) {
			ref = i
		}
	}
	if len(ss[ref]) == 0 {
		return nil
	}
	a := New(ss[ref])
	best := make([]int32, a.NumStates())
	for i := range best {
		best[i] = a.length[i]
	}
	for i, s := range ss {
		if i == ref {
			continue
		}
		m := a.matchLengths(s)
		for v := range best {
			if m[v] < best[v] {
				best[v] = m[v]
			}
		}
	}
	var bestLen, bestEnd int32
	bestEnd = -1
	for v := 1; v < a.NumStates(); v++ {
		if best[v] > bestLen ||
			(best[v] == bestLen && bestEnd >= 0 && a.firstPos[int32(v)] < bestEnd) {
			bestLen = best[v]
			bestEnd = a.firstPos[v]
		}
	}
	if bestLen == 0 {
		return nil
	}
	start := bestEnd - bestLen + 1
	return a.src[start : bestEnd+1]
}

// LongestCommonSubstring2 is a convenience wrapper for exactly two strings.
func LongestCommonSubstring2(a, b []byte) []byte {
	return LongestCommonSubstring([][]byte{a, b})
}
