package suffix

// Stream threads a match-length traversal over the automaton across
// arbitrary chunk boundaries: feeding a string in any number of pieces
// produces exactly the state one Feed of the concatenation would. This is
// the chunked face of the longest-common-substring machinery — token
// extraction streams each cluster member through the reference member's
// automaton without materializing a contiguous copy.
//
// A Stream is not safe for concurrent use, but any number of Streams may
// share one Automaton concurrently: the automaton is immutable after New,
// and every Stream owns its traversal state.
type Stream struct {
	a     *Automaton
	v, l  int32 // current state and matched length
	match []int32
	best  int32
}

// NewStream returns a fresh traversal over a.
func (a *Automaton) NewStream() *Stream {
	return &Stream{a: a, match: make([]int32, len(a.next))}
}

// Reset rewinds the stream to match a new string from scratch.
func (s *Stream) Reset() {
	s.v, s.l, s.best = 0, 0, 0
	for i := range s.match {
		s.match[i] = 0
	}
}

// step advances the traversal by one byte.
func (s *Stream) step(c byte) {
	a := s.a
	for {
		if nv, ok := a.next[s.v][c]; ok {
			s.v = nv
			s.l++
			break
		}
		if a.link[s.v] == -1 {
			s.l = 0
			break
		}
		s.v = a.link[s.v]
		s.l = a.length[s.v]
	}
	if s.l > s.match[s.v] {
		s.match[s.v] = s.l
	}
	if s.l > s.best {
		s.best = s.l
	}
}

// Feed advances the traversal over one chunk.
func (s *Stream) Feed(chunk []byte) {
	for _, c := range chunk {
		s.step(c)
	}
}

// FeedString advances the traversal over one string chunk.
func (s *Stream) FeedString(chunk string) {
	for i := 0; i < len(chunk); i++ {
		s.step(chunk[i])
	}
}

// BestLen returns the length of the longest substring of the fed text
// that occurs in the automaton's source, so far.
func (s *Stream) BestLen() int { return int(s.best) }

// Finish propagates the per-state match lengths down suffix links and
// returns them: match[v] is the length of the longest substring of the
// fed text whose traversal ends at v, capped at the state's own length.
// The returned slice is the stream's own; Reset clears it.
func (s *Stream) Finish() []int32 {
	a := s.a
	order := a.statesByLength()
	for i := len(order) - 1; i >= 0; i-- {
		st := order[i]
		p := a.link[st]
		if p < 0 || s.match[st] == 0 {
			continue
		}
		m := s.match[st]
		if m > a.length[p] {
			m = a.length[p]
		}
		if m > s.match[p] {
			s.match[p] = m
		}
	}
	return s.match
}
