package suffix

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

// naiveLCS computes the longest common substring of all strings by brute
// force, preferring the earliest occurrence in ss[0] among ties of maximal
// length. Used as a reference implementation.
func naiveLCS(ss [][]byte) []byte {
	if len(ss) == 0 {
		return nil
	}
	if len(ss) == 1 {
		return ss[0]
	}
	s0 := ss[0]
	for n := len(s0); n > 0; n-- {
		for i := 0; i+n <= len(s0); i++ {
			cand := s0[i : i+n]
			all := true
			for _, t := range ss[1:] {
				if !bytes.Contains(t, cand) {
					all = false
					break
				}
			}
			if all {
				return cand
			}
		}
	}
	return nil
}

func TestAutomatonContains(t *testing.T) {
	s := []byte("abcbcabcabx")
	a := New(s)
	for i := 0; i < len(s); i++ {
		for j := i + 1; j <= len(s); j++ {
			if !a.Contains(s[i:j]) {
				t.Fatalf("Contains(%q) = false", s[i:j])
			}
		}
	}
	for _, bad := range []string{"xy", "bcx", "abcabz", "z"} {
		if a.Contains([]byte(bad)) {
			t.Errorf("Contains(%q) = true", bad)
		}
	}
	if !a.Contains(nil) {
		t.Error("empty string should be contained")
	}
}

func TestAutomatonStateCountLinear(t *testing.T) {
	s := bytes.Repeat([]byte("ab"), 500)
	a := New(s)
	if a.NumStates() > 2*len(s) {
		t.Errorf("state count %d exceeds 2n = %d", a.NumStates(), 2*len(s))
	}
}

func TestLCS2Known(t *testing.T) {
	cases := []struct {
		a, b, want string
	}{
		{"", "", ""},
		{"abc", "", ""},
		{"", "abc", ""},
		{"abc", "abc", "abc"},
		{"abcdef", "zabcyf", "abc"},
		{"GET /ad?id=123", "GET /ad?id=456", "GET /ad?id="},
		{"xyz", "abc", ""},
		{"banana", "ananas", "anana"},
	}
	for _, c := range cases {
		got := LongestCommonSubstring2([]byte(c.a), []byte(c.b))
		if string(got) != c.want {
			t.Errorf("LCS(%q, %q) = %q, want %q", c.a, c.b, got, c.want)
		}
	}
}

func TestLCSMulti(t *testing.T) {
	cases := []struct {
		in   []string
		want string
	}{
		{[]string{"abcdef", "xxabcx", "yabcy"}, "abc"},
		{[]string{"udid=8a6b1c&app=1", "udid=8a6b1c&app=2", "x=1&udid=8a6b1c"}, "udid=8a6b1c"},
		{[]string{"one", "two", "three"}, ""},
		{[]string{"same", "same", "same"}, "same"},
		{[]string{"ab", "ba", "aa"}, "a"},
	}
	for _, c := range cases {
		ss := make([][]byte, len(c.in))
		for i, s := range c.in {
			ss[i] = []byte(s)
		}
		got := LongestCommonSubstring(ss)
		if string(got) != c.want && len(got) != len(c.want) {
			t.Errorf("LCS(%v) = %q, want %q (or same length)", c.in, got, c.want)
		}
		// Verify the result really is common.
		for _, s := range ss {
			if !bytes.Contains(s, got) {
				t.Errorf("LCS(%v) = %q not contained in %q", c.in, got, s)
			}
		}
	}
}

func TestLCSDegenerate(t *testing.T) {
	if got := LongestCommonSubstring(nil); got != nil {
		t.Errorf("LCS(nil) = %q", got)
	}
	if got := LongestCommonSubstring([][]byte{[]byte("solo")}); string(got) != "solo" {
		t.Errorf("LCS(single) = %q", got)
	}
	if got := LongestCommonSubstring([][]byte{[]byte("a"), nil}); got != nil {
		t.Errorf("LCS with empty member = %q", got)
	}
}

func TestLCS2MatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	alpha := []byte("abcd")
	randStr := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return b
	}
	for i := 0; i < 400; i++ {
		a := randStr(rng.Intn(30))
		b := randStr(rng.Intn(30))
		got := LongestCommonSubstring2(a, b)
		want := naiveLCS([][]byte{a, b})
		if len(got) != len(want) {
			t.Fatalf("LCS(%q, %q) = %q (len %d), naive %q (len %d)",
				a, b, got, len(got), want, len(want))
		}
		if !bytes.Contains(a, got) || !bytes.Contains(b, got) {
			t.Fatalf("LCS(%q, %q) = %q is not common", a, b, got)
		}
	}
}

func TestLCSMultiMatchesNaiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	alpha := []byte("abc")
	randStr := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = alpha[rng.Intn(len(alpha))]
		}
		return b
	}
	for i := 0; i < 200; i++ {
		k := 2 + rng.Intn(4)
		ss := make([][]byte, k)
		for j := range ss {
			ss[j] = randStr(1 + rng.Intn(20))
		}
		got := LongestCommonSubstring(ss)
		want := naiveLCS(ss)
		if len(got) != len(want) {
			t.Fatalf("LCS(%q) = %q (len %d), naive %q (len %d)", ss, got, len(got), want, len(want))
		}
		for _, s := range ss {
			if !bytes.Contains(s, got) {
				t.Fatalf("LCS(%q) = %q not common", ss, got)
			}
		}
	}
}

func TestLCSPropertyCommonAndMaximalLength(t *testing.T) {
	f := func(a, b string) bool {
		if len(a) > 32 {
			a = a[:32]
		}
		if len(b) > 32 {
			b = b[:32]
		}
		got := LongestCommonSubstring2([]byte(a), []byte(b))
		if !strings.Contains(a, string(got)) || !strings.Contains(b, string(got)) {
			return false
		}
		want := naiveLCS([][]byte{[]byte(a), []byte(b)})
		return len(got) == len(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestLCSSharedTemplateAcrossPackets(t *testing.T) {
	// Simulates ad-module request lines that share a URL template but carry
	// different per-request parameters: the template must be recovered.
	tmpl := "GET /ad/v2/fetch?zone=77&udid=f3a9c1d200b14e67&fmt=json&seq="
	packets := [][]byte{
		[]byte(tmpl + "1 HTTP/1.1"),
		[]byte(tmpl + "2918 HTTP/1.1"),
		[]byte(tmpl + "77 HTTP/1.1"),
	}
	got := LongestCommonSubstring(packets)
	if !bytes.HasPrefix(got, []byte(tmpl)) {
		t.Errorf("template not recovered: got %q", got)
	}
}
