package capture

import (
	"bytes"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
)

func sampleSet() *Set {
	mk := func(id int64, app, host, path string) *httpmodel.Packet {
		return httpmodel.Get(host, path).
			ID(id).App(app).Time(1325376000+id).
			Dest(ipaddr.MustParse("203.0.113.9"), 80).
			UserAgent("Dalvik/1.4").
			Build()
	}
	s := New(nil)
	s.Append(
		mk(1, "com.a", "admob.com", "/ads?id=1"),
		mk(2, "com.a", "gstatic.com", "/img/x.png"),
		mk(3, "com.b", "admob.com", "/ads?id=2"),
		httpmodel.Post("flurry.com", "/aap.do").
			ID(4).App("com.c").Time(1325376100).
			Dest(ipaddr.MustParse("198.51.100.77"), 80).
			Cookie("s=1").
			BodyString("imei=353918051234563&os=android").
			Build(),
	)
	return s
}

func TestFilterAndSplit(t *testing.T) {
	s := sampleSet()
	ads := s.Filter(func(p *httpmodel.Packet) bool { return p.Host == "admob.com" })
	if ads.Len() != 2 {
		t.Fatalf("Filter len = %d", ads.Len())
	}
	yes, no := s.Split(func(p *httpmodel.Packet) bool { return p.Method == "POST" })
	if yes.Len() != 1 || no.Len() != 3 {
		t.Fatalf("Split = %d/%d", yes.Len(), no.Len())
	}
	if s.Len() != 4 {
		t.Error("source mutated")
	}
}

func TestSample(t *testing.T) {
	s := sampleSet()
	rng := rand.New(rand.NewSource(1))
	got := s.Sample(rng, 2)
	if got.Len() != 2 {
		t.Fatalf("Sample len = %d", got.Len())
	}
	// Stable order: IDs ascending because source was ascending.
	if got.Packets[0].ID >= got.Packets[1].ID {
		t.Errorf("sample order not stable: %d, %d", got.Packets[0].ID, got.Packets[1].ID)
	}
	all := s.Sample(rng, 100)
	if all.Len() != s.Len() {
		t.Errorf("oversized sample len = %d", all.Len())
	}
	all.Packets[0] = nil
	if s.Packets[0] == nil {
		t.Error("oversized sample aliases source slice")
	}
}

func TestSampleUniform(t *testing.T) {
	// Every packet should be selected roughly equally often.
	s := sampleSet()
	counts := make(map[int64]int)
	rng := rand.New(rand.NewSource(42))
	const iters = 4000
	for i := 0; i < iters; i++ {
		for _, p := range s.Sample(rng, 2).Packets {
			counts[p.ID]++
		}
	}
	for id, c := range counts {
		frac := float64(c) / float64(iters)
		if frac < 0.40 || frac > 0.60 { // expected 0.5 each
			t.Errorf("packet %d selected fraction %.3f, want ~0.5", id, frac)
		}
	}
}

func TestAppsHosts(t *testing.T) {
	s := sampleSet()
	apps := s.Apps()
	if strings.Join(apps, ",") != "com.a,com.b,com.c" {
		t.Errorf("Apps = %v", apps)
	}
	hosts := s.Hosts()
	if strings.Join(hosts, ",") != "admob.com,gstatic.com,flurry.com" {
		t.Errorf("Hosts = %v", hosts)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	s := sampleSet()
	var buf bytes.Buffer
	if err := s.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSetsEqual(t, s, got)
}

func TestBinaryRoundTrip(t *testing.T) {
	s := sampleSet()
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBinary(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertSetsEqual(t, s, got)
}

func assertSetsEqual(t *testing.T, want, got *Set) {
	t.Helper()
	if got.Len() != want.Len() {
		t.Fatalf("len = %d, want %d", got.Len(), want.Len())
	}
	for i := range want.Packets {
		w, g := want.Packets[i], got.Packets[i]
		if g.ID != w.ID || g.App != w.App || g.Time != w.Time {
			t.Errorf("packet %d metadata mismatch: %+v vs %+v", i, g, w)
		}
		if g.RequestLine() != w.RequestLine() || g.Host != w.Host {
			t.Errorf("packet %d request mismatch", i)
		}
		if g.DstIP != w.DstIP || g.DstPort != w.DstPort {
			t.Errorf("packet %d destination mismatch", i)
		}
		if !bytes.Equal(g.Body, w.Body) {
			t.Errorf("packet %d body mismatch", i)
		}
		if g.Cookie() != w.Cookie() {
			t.Errorf("packet %d cookie mismatch", i)
		}
	}
}

func TestBinaryRejectsBadMagic(t *testing.T) {
	if _, err := ReadBinary(bytes.NewReader([]byte("NOTMAGIC rest"))); err == nil {
		t.Error("bad magic accepted")
	}
	if _, err := ReadBinary(bytes.NewReader(nil)); err == nil {
		t.Error("empty stream accepted")
	}
}

func TestBinaryRejectsTruncated(t *testing.T) {
	s := sampleSet()
	var buf bytes.Buffer
	if err := s.WriteBinary(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()
	for _, cut := range []int{len(raw) - 1, len(raw) / 2, 9} {
		if _, err := ReadBinary(bytes.NewReader(raw[:cut])); err == nil {
			t.Errorf("truncated stream (cut %d) accepted", cut)
		}
	}
}

func TestJSONLRejectsGarbage(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("{not json}\n")); err == nil {
		t.Error("garbage JSONL accepted")
	}
}

func TestFileRoundTrips(t *testing.T) {
	dir := t.TempDir()
	s := sampleSet()

	jp := filepath.Join(dir, "cap.jsonl")
	if err := s.SaveJSONL(jp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadJSONL(jp)
	if err != nil {
		t.Fatal(err)
	}
	assertSetsEqual(t, s, got)

	bp := filepath.Join(dir, "cap.bin")
	if err := s.SaveBinary(bp); err != nil {
		t.Fatal(err)
	}
	got, err = LoadBinary(bp)
	if err != nil {
		t.Fatal(err)
	}
	assertSetsEqual(t, s, got)
}

func TestEmptySetRoundTrips(t *testing.T) {
	s := New(nil)
	var jbuf, bbuf bytes.Buffer
	if err := s.WriteJSONL(&jbuf); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadJSONL(&jbuf); err != nil || got.Len() != 0 {
		t.Errorf("empty JSONL round trip: %v, len %d", err, got.Len())
	}
	if err := s.WriteBinary(&bbuf); err != nil {
		t.Fatal(err)
	}
	if got, err := ReadBinary(&bbuf); err != nil || got.Len() != 0 {
		t.Errorf("empty binary round trip: %v", err)
	}
}
