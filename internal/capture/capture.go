// Package capture stores and transports HTTP packet datasets.
//
// The paper's pipeline (Figure 3a) begins with "a separate server collects
// application traffic". Set is that collected trace: an ordered list of
// packets plus helpers for the operations the evaluation performs on it —
// filtering, random sampling of the signature-generation subset P ⊂ H
// (§IV-D), and splitting into suspicious/normal groups (§V-A).
//
// Two interchange formats are provided: JSONL (one packet per line, human
// inspectable) and a length-prefixed binary framing of the raw HTTP wire
// format (compact, mirrors what an on-path collector would store).
package capture

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"os"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
)

// Set is an ordered collection of captured packets.
type Set struct {
	Packets []*httpmodel.Packet
}

// New returns a Set over the given packets.
func New(ps []*httpmodel.Packet) *Set { return &Set{Packets: ps} }

// Len returns the number of packets.
func (s *Set) Len() int { return len(s.Packets) }

// Append adds packets to the set.
func (s *Set) Append(ps ...*httpmodel.Packet) { s.Packets = append(s.Packets, ps...) }

// Filter returns a new Set holding the packets for which keep returns true.
// Packets are shared, not copied.
func (s *Set) Filter(keep func(*httpmodel.Packet) bool) *Set {
	out := &Set{}
	for _, p := range s.Packets {
		if keep(p) {
			out.Packets = append(out.Packets, p)
		}
	}
	return out
}

// Split partitions the set into (true-side, false-side) by predicate.
func (s *Set) Split(pred func(*httpmodel.Packet) bool) (*Set, *Set) {
	yes, no := &Set{}, &Set{}
	for _, p := range s.Packets {
		if pred(p) {
			yes.Packets = append(yes.Packets, p)
		} else {
			no.Packets = append(no.Packets, p)
		}
	}
	return yes, no
}

// Sample returns n packets drawn uniformly without replacement, in stable
// order of their original position. If n >= Len, all packets are returned.
// This implements the paper's "selected N HTTP packets at random out of the
// suspicious group" (§V-A).
func (s *Set) Sample(rng *rand.Rand, n int) *Set {
	if n >= len(s.Packets) {
		out := make([]*httpmodel.Packet, len(s.Packets))
		copy(out, s.Packets)
		return &Set{Packets: out}
	}
	idx := rng.Perm(len(s.Packets))[:n]
	// Preserve capture order for determinism downstream.
	chosen := make(map[int]bool, n)
	for _, i := range idx {
		chosen[i] = true
	}
	out := make([]*httpmodel.Packet, 0, n)
	for i, p := range s.Packets {
		if chosen[i] {
			out = append(out, p)
		}
	}
	return &Set{Packets: out}
}

// Apps returns the distinct application names in first-seen order.
func (s *Set) Apps() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range s.Packets {
		if p.App != "" && !seen[p.App] {
			seen[p.App] = true
			out = append(out, p.App)
		}
	}
	return out
}

// Hosts returns the distinct destination hosts in first-seen order.
func (s *Set) Hosts() []string {
	seen := make(map[string]bool)
	var out []string
	for _, p := range s.Packets {
		if !seen[p.Host] {
			seen[p.Host] = true
			out = append(out, p.Host)
		}
	}
	return out
}

// WriteJSONL writes one JSON object per packet.
func (s *Set) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, p := range s.Packets {
		if err := enc.Encode(p); err != nil {
			return fmt.Errorf("capture: encoding packet %d: %w", p.ID, err)
		}
	}
	return bw.Flush()
}

// ReadJSONL reads a JSONL stream produced by WriteJSONL.
func ReadJSONL(r io.Reader) (*Set, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	s := &Set{}
	for {
		var p httpmodel.Packet
		if err := dec.Decode(&p); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("capture: decoding packet %d: %w", len(s.Packets), err)
		}
		s.Packets = append(s.Packets, &p)
	}
	return s, nil
}

// Binary framing: a magic header, then per packet
//
//	uint32 frameLen | uint64 id | uint32 ip | uint16 port |
//	uint32 appLen | app | uint64 time | uint32 rawLen | raw-HTTP
//
// all big-endian. The raw HTTP request carries everything else.
var binaryMagic = [8]byte{'L', 'S', 'I', 'G', 'C', 'A', 'P', '1'}

// WriteBinary writes the compact binary capture format.
func (s *Set) WriteBinary(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := bw.Write(binaryMagic[:]); err != nil {
		return err
	}
	for _, p := range s.Packets {
		raw := p.WireBytes()
		app := []byte(p.App)
		frame := 8 + 4 + 2 + 4 + len(app) + 8 + 4 + len(raw)
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(frame))
		if _, err := bw.Write(hdr[:]); err != nil {
			return err
		}
		var fixed [8]byte
		binary.BigEndian.PutUint64(fixed[:], uint64(p.ID))
		bw.Write(fixed[:])
		binary.BigEndian.PutUint32(fixed[:4], uint32(p.DstIP))
		bw.Write(fixed[:4])
		binary.BigEndian.PutUint16(fixed[:2], p.DstPort)
		bw.Write(fixed[:2])
		binary.BigEndian.PutUint32(fixed[:4], uint32(len(app)))
		bw.Write(fixed[:4])
		bw.Write(app)
		binary.BigEndian.PutUint64(fixed[:], uint64(p.Time))
		bw.Write(fixed[:])
		binary.BigEndian.PutUint32(fixed[:4], uint32(len(raw)))
		bw.Write(fixed[:4])
		if _, err := bw.Write(raw); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadBinary reads the binary capture format.
func ReadBinary(r io.Reader) (*Set, error) {
	br := bufio.NewReader(r)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return nil, fmt.Errorf("capture: reading magic: %w", err)
	}
	if magic != binaryMagic {
		return nil, fmt.Errorf("capture: bad magic %q", magic)
	}
	s := &Set{}
	for {
		var hdr [4]byte
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			if err == io.EOF {
				break
			}
			return nil, fmt.Errorf("capture: reading frame header: %w", err)
		}
		frame := make([]byte, binary.BigEndian.Uint32(hdr[:]))
		if _, err := io.ReadFull(br, frame); err != nil {
			return nil, fmt.Errorf("capture: reading frame: %w", err)
		}
		p, err := decodeFrame(frame)
		if err != nil {
			return nil, err
		}
		s.Packets = append(s.Packets, p)
	}
	return s, nil
}

func decodeFrame(frame []byte) (*httpmodel.Packet, error) {
	const fixedMin = 8 + 4 + 2 + 4
	if len(frame) < fixedMin {
		return nil, fmt.Errorf("capture: frame too short (%d bytes)", len(frame))
	}
	id := int64(binary.BigEndian.Uint64(frame[0:8]))
	ip := ipaddr.Addr(binary.BigEndian.Uint32(frame[8:12]))
	port := binary.BigEndian.Uint16(frame[12:14])
	appLen := int(binary.BigEndian.Uint32(frame[14:18]))
	rest := frame[18:]
	if len(rest) < appLen+8+4 {
		return nil, fmt.Errorf("capture: truncated frame")
	}
	app := string(rest[:appLen])
	rest = rest[appLen:]
	tm := int64(binary.BigEndian.Uint64(rest[0:8]))
	rawLen := int(binary.BigEndian.Uint32(rest[8:12]))
	rest = rest[12:]
	if len(rest) != rawLen {
		return nil, fmt.Errorf("capture: raw length %d does not match remainder %d", rawLen, len(rest))
	}
	p, err := httpmodel.ParseWireBytes(rest, ip, port)
	if err != nil {
		return nil, fmt.Errorf("capture: frame id %d: %w", id, err)
	}
	p.ID = id
	p.App = app
	p.Time = tm
	return p, nil
}

// SaveJSONL writes the set to a file in JSONL format.
func (s *Set) SaveJSONL(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteJSONL(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadJSONL reads a JSONL capture file.
func LoadJSONL(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadJSONL(f)
}

// SaveBinary writes the set to a file in binary format.
func (s *Set) SaveBinary(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := s.WriteBinary(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadBinary reads a binary capture file.
func LoadBinary(path string) (*Set, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadBinary(f)
}
