package trafficgen

// Adversarial leak variants: the same identifier exfiltration the plain
// profiles emit, but with the leaking body transformed the way evasive
// apps actually ship it — base64, hex, or URL percent-encoding, or gzip
// compression. These packets are the test bed for decode-view scanning:
// a cleartext token signature misses every one of them unless the
// matching signature opts into the corresponding view.

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"encoding/hex"
	"fmt"
	"math/rand"
	"net/url"

	"leaksig/internal/android"
	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
	"leaksig/internal/signature"
)

// Encoding names one body transformation an adversarial app applies
// before exfiltrating.
type Encoding string

const (
	EncodingClear  Encoding = "clear"
	EncodingBase64 Encoding = "base64"
	EncodingHex    Encoding = "hex"
	EncodingURL    Encoding = "url"
	EncodingGzip   Encoding = "gzip"
)

// Encodings lists every adversarial encoding, cleartext first.
func Encodings() []Encoding {
	return []Encoding{EncodingClear, EncodingBase64, EncodingHex, EncodingURL, EncodingGzip}
}

// ViewName returns the decode view that makes the encoding scannable
// ("" for cleartext, which the raw scan already covers).
func (e Encoding) ViewName() string {
	switch e {
	case EncodingBase64:
		return "base64"
	case EncodingHex:
		return "hex"
	case EncodingURL:
		return "url"
	case EncodingGzip:
		return "gzip"
	}
	return ""
}

// AdversarialConfig configures GenerateAdversarial. Zero values select
// the noted defaults.
type AdversarialConfig struct {
	Seed        int64
	PerEncoding int             // leaking packets per encoding (default 8)
	Device      *android.Device // nil fabricates one from Seed
}

// AdversarialSet is a labeled adversarial capture: Packets[i] leaks the
// device identifiers under Encodings[i].
type AdversarialSet struct {
	Device    *android.Device
	Packets   []*httpmodel.Packet
	Encodings []Encoding
}

// adversarialHost is the fake tracker the adversarial profiles beacon to.
const adversarialHost = "collect.exfil-cdn.example"

// encodeLeakBody transforms one cleartext leak payload.
func encodeLeakBody(enc Encoding, clear []byte) []byte {
	switch enc {
	case EncodingBase64:
		out := make([]byte, base64.StdEncoding.EncodedLen(len(clear)))
		base64.StdEncoding.Encode(out, clear)
		return append([]byte("p="), out...)
	case EncodingHex:
		out := make([]byte, hex.EncodedLen(len(clear)))
		hex.Encode(out, clear)
		return append([]byte("p="), out...)
	case EncodingURL:
		// Escape aggressively: every '=' and '&' of the cleartext form
		// hides behind %XX, so the raw scan sees no identifier tokens.
		return []byte("p=" + url.QueryEscape(string(clear)))
	case EncodingGzip:
		var b bytes.Buffer
		zw := gzip.NewWriter(&b)
		zw.Write(clear)
		zw.Close()
		return b.Bytes()
	}
	return clear
}

// GenerateAdversarial fabricates PerEncoding leaking POSTs per encoding,
// deterministically from Seed. Every packet carries the device's IMEI
// and Android ID in its body, transformed per its encoding; per-packet
// jitter (sequence numbers, random session tokens) keeps the corpus from
// being byte-identical.
func GenerateAdversarial(cfg AdversarialConfig) *AdversarialSet {
	if cfg.PerEncoding <= 0 {
		cfg.PerEncoding = 8
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dev := cfg.Device
	if dev == nil {
		carriers := android.Carriers()
		dev = android.NewDevice(rng, carriers[rng.Intn(len(carriers))])
	}
	out := &AdversarialSet{Device: dev}
	id := int64(1)
	ip := ipaddr.FromOctets(203, 0, 113, 77)
	for _, enc := range Encodings() {
		for i := 0; i < cfg.PerEncoding; i++ {
			clear := fmt.Sprintf("imei=%s&aid=%s&seq=%d&sess=%08x",
				dev.IMEI, dev.AndroidID, i, rng.Uint32())
			p := httpmodel.Post(adversarialHost, "/v1/collect").
				ID(id).
				App("com.adversarial.beacon").
				Dest(ip, 80).
				UserAgent("Dalvik/1.6.0").
				Header("Content-Type", "application/octet-stream").
				Body(encodeLeakBody(enc, []byte(clear))).
				Build()
			out.Packets = append(out.Packets, p)
			out.Encodings = append(out.Encodings, enc)
			id++
		}
	}
	return out
}

// AdversarialSignature builds the cleartext identifier signature for the
// device, opted into the named views: a conjunction of the IMEI and
// Android ID constrained to the adversarial host. With every view
// enabled it catches all encodings; with none it catches only cleartext.
func AdversarialSignature(dev *android.Device, views []string) *signature.Signature {
	return &signature.Signature{
		Tokens:     []string{"imei=" + dev.IMEI, "aid=" + dev.AndroidID},
		HostSuffix: "exfil-cdn.example",
		Views:      append([]string(nil), views...),
	}
}
