// Package trafficgen fabricates the paper's measurement dataset: 1,188
// applications' worth of HTTP traffic from one handset (107,859 GET/POST
// packets, §III/§V-A), calibrated so that
//
//   - permission combinations match Table I's five printed rows,
//   - per-destination packet and application counts match Table II,
//   - sensitive-information composition approximates Table III, and
//   - the per-application destination distribution matches Figure 2
//     (7% single-destination, 74% within 10, 90% within 16, mean 7.9,
//     maximum 84 — the embedded-browser outlier).
//
// The generator is fully deterministic for a given Config.Seed.
package trafficgen

import (
	"fmt"
	"math/rand"
	"sort"

	"leaksig/internal/adnet"
	"leaksig/internal/android"
	"leaksig/internal/capture"
	"leaksig/internal/httpmodel"
)

// Config parameterizes generation. Zero fields select the paper's values.
type Config struct {
	Seed         int64
	NumApps      int             // default 1188
	TotalPackets int             // default 107859
	Carrier      android.Carrier // default NTT docomo
}

func (c Config) withDefaults() Config {
	if c.NumApps == 0 {
		c.NumApps = 1188
	}
	if c.TotalPackets == 0 {
		c.TotalPackets = 107859
	}
	if c.Carrier == (android.Carrier{}) {
		c.Carrier = android.CarrierDocomo
	}
	return c
}

// App is one synthetic application: its manifest plus the facts ad modules
// observe and its assigned destinations.
type App struct {
	Manifest   *android.Manifest
	Info       adnet.AppInfo
	DestTarget int              // Figure 2 capacity drawn for this app
	Profiles   []*adnet.Profile // destinations assigned
	Heavy      bool             // one of the high-fanout applications
}

// Dataset is the full synthetic capture with its provenance.
type Dataset struct {
	Config   Config
	Device   *android.Device
	Apps     []*App
	Universe *adnet.Universe
	Capture  *capture.Set
}

// appByPackage returns the app with the given package name, or nil.
func (d *Dataset) AppByPackage(pkg string) *App {
	for _, a := range d.Apps {
		if a.Manifest.Package == pkg {
			return a
		}
	}
	return nil
}

// Generate builds the dataset.
func Generate(cfg Config) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	device := android.NewDevice(rng, cfg.Carrier)
	universe := adnet.NewUniverse(cfg.TotalPackets)
	apps := buildApps(rng, cfg.NumApps)
	markHeavyApps(apps)
	assignDestinations(rng, universe, apps)
	set := emitPackets(rng, device, universe, apps)
	return &Dataset{
		Config:   cfg,
		Device:   device,
		Apps:     apps,
		Universe: universe,
		Capture:  set,
	}
}

// tableIRow describes one permission-combination row and its share of the
// 1,188 applications. The five printed Table I rows come first; the last
// three absorb the 233 applications the paper's table leaves unexplained
// (all still hold INTERNET so that every app produces traffic, matching
// Figure 2's minimum of one destination — see DESIGN.md §3).
type tableIRow struct {
	count int
	perms []android.Permission
}

func tableIRows() []tableIRow {
	const (
		inet     = android.PermInternet
		fineLoc  = android.PermAccessFineLocation
		phone    = android.PermReadPhoneState
		contacts = android.PermReadContacts
	)
	return []tableIRow{
		{302, []android.Permission{inet}},
		{329, []android.Permission{inet, phone}},
		{153, []android.Permission{inet, fineLoc, phone}},
		{148, []android.Permission{inet, fineLoc}},
		{23, []android.Permission{inet, fineLoc, phone, contacts}},
		{120, []android.Permission{inet, contacts}},
		{74, []android.Permission{inet, phone, contacts}},
		{39, []android.Permission{inet, fineLoc, contacts}},
	}
}

var pkgPrefixes = []string{"jp.co", "com", "jp", "net", "org"}
var pkgWords = []string{
	"puzzle", "battle", "camera", "manga", "cook", "train", "navi",
	"weather", "quiz", "ranch", "ninja", "samurai", "bento", "kanji",
	"photo", "memo", "alarm", "radio", "sushi", "karaoke", "mahjong",
	"shogi", "pachi", "derby", "tycoon", "garden", "fishing", "runner",
}

// buildApps fabricates the application population with Table I permission
// rows scaled to numApps.
func buildApps(rng *rand.Rand, numApps int) []*App {
	rows := tableIRows()
	baseTotal := 0
	for _, r := range rows {
		baseTotal += r.count
	}
	var apps []*App
	mk := func(idx int, perms []android.Permission) *App {
		pkg := fmt.Sprintf("%s.%s%s%d",
			pkgPrefixes[idx%len(pkgPrefixes)],
			pkgWords[idx%len(pkgWords)],
			pkgWords[(idx/len(pkgWords)+idx)%len(pkgWords)],
			idx)
		man := &android.Manifest{
			Package:     pkg,
			UID:         10000 + idx,
			Permissions: android.NewSet(perms...),
		}
		return &App{
			Manifest: man,
			Info: adnet.AppInfo{
				Package:       pkg,
				HasPhoneState: man.Permissions.Has(android.PermReadPhoneState),
				HasLocation:   man.Permissions.HasLocation(),
				InstallUUID:   randHex(rng, 32),
				PubID:         randHex(rng, 12),
			},
			DestTarget: sampleDestTarget(rng),
		}
	}
	idx := 0
	for ri, r := range rows {
		n := r.count * numApps / baseTotal
		if ri == 0 {
			// First row absorbs rounding so totals are exact.
			n = numApps
			for rj, rr := range rows[1:] {
				_ = rj
				n -= rr.count * numApps / baseTotal
			}
		}
		for i := 0; i < n; i++ {
			apps = append(apps, mk(idx, r.perms))
			idx++
		}
	}
	return apps
}

// sampleDestTarget draws one application's destination-count target from
// the Figure 2 calibration: P(1)=.068, bulk 2..10 with decreasing weights,
// plateau 11..16, exponential tail 17+.
func sampleDestTarget(rng *rand.Rand) int {
	u := rng.Float64()
	switch {
	case u < 0.068:
		return 1
	case u < 0.74:
		// Weights 9,8,...,1 over 2..10.
		w := rng.Intn(45)
		for k, acc := 0, 0; k < 9; k++ {
			acc += 9 - k
			if w < acc {
				return 2 + k
			}
		}
		return 10
	case u < 0.90:
		return 11 + rng.Intn(6)
	default:
		t := 17 + int(rng.ExpFloat64()*6)
		if t > 60 {
			t = 60
		}
		return t
	}
}

// markHeavyApps designates the high-fanout applications: the top 21 by
// destination target (floored at 25 destinations), with the single largest
// raised to 84 — the paper's embedded-browser outlier.
func markHeavyApps(apps []*App) {
	idx := make([]int, len(apps))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return apps[idx[a]].DestTarget > apps[idx[b]].DestTarget
	})
	nHeavy := 21
	if nHeavy > len(apps) {
		nHeavy = len(apps)
	}
	for r := 0; r < nHeavy; r++ {
		a := apps[idx[r]]
		a.Heavy = true
		if a.DestTarget < 25 {
			a.DestTarget = 25 + r
		}
	}
	if nHeavy > 0 {
		apps[idx[0]].DestTarget = 84
	}
}

// assignDestinations matches profiles to apps so that both the per-profile
// app targets (Table II) and the per-app destination targets (Figure 2)
// hold approximately. Profiles claim apps by weighted sampling on remaining
// app capacity, biased toward READ_PHONE_STATE holders for IMEI-hungry
// modules and restricted to heavy apps for HeavyOnly families.
func assignDestinations(rng *rand.Rand, u *adnet.Universe, apps []*App) {
	remaining := make([]float64, len(apps))
	for i, a := range apps {
		remaining[i] = float64(a.DestTarget)
	}
	// Order: heavy-only families first (their pool is tiny), then sensitive
	// profiles needing phone state, then other sensitive, then benign, each
	// by descending app target so big rows see full capacity.
	order := make([]*adnet.Profile, len(u.Profiles))
	copy(order, u.Profiles)
	rank := func(p *adnet.Profile) int {
		switch {
		case p.HeavyOnly:
			return 0
		case p.Sensitive && p.NeedsPhoneState:
			return 1
		case p.Sensitive:
			return 2
		default:
			return 3
		}
	}
	sort.SliceStable(order, func(i, j int) bool {
		ri, rj := rank(order[i]), rank(order[j])
		if ri != rj {
			return ri < rj
		}
		return order[i].TargetApps > order[j].TargetApps
	})
	for _, p := range order {
		k := p.TargetApps
		if k <= 0 {
			continue
		}
		chosen := sampleApps(rng, apps, remaining, p, k)
		for _, ai := range chosen {
			apps[ai].Profiles = append(apps[ai].Profiles, p)
			remaining[ai]--
		}
	}
	// Every application produced traffic in the paper's trace (Figure 2's
	// minimum is one destination); give stragglers one benign destination.
	var fallback []*adnet.Profile
	for _, p := range u.Profiles {
		if !p.Sensitive && !p.HeavyOnly && p.TargetApps >= 10 {
			fallback = append(fallback, p)
		}
	}
	if len(fallback) > 0 {
		for _, a := range apps {
			if len(a.Profiles) == 0 {
				a.Profiles = append(a.Profiles, fallback[rng.Intn(len(fallback))])
			}
		}
	}
}

// sampleApps draws up to k distinct eligible apps weighted by remaining
// capacity (plus a floor so saturated apps stay reachable when the pool is
// tight) and the profile's permission bias.
func sampleApps(rng *rand.Rand, apps []*App, remaining []float64, p *adnet.Profile, k int) []int {
	type cand struct {
		idx int
		w   float64
	}
	var pool []cand
	for i, a := range apps {
		if p.HeavyOnly && !a.Heavy {
			continue
		}
		w := remaining[i]
		if w < 0 {
			w = 0
		}
		w += 0.02
		if p.NeedsPhoneState {
			if a.Info.HasPhoneState {
				w *= 8
			} else if p.Category == adnet.CatAdBeacon {
				// A beacon SDK with no permissionless fallback simply cannot
				// run inside an app lacking READ_PHONE_STATE: hard gate.
				continue
			} else {
				w *= 0.1
			}
		}
		pool = append(pool, cand{idx: i, w: w})
	}
	if k > len(pool) {
		k = len(pool)
	}
	out := make([]int, 0, k)
	total := 0.0
	for _, c := range pool {
		total += c.w
	}
	for len(out) < k {
		r := rng.Float64() * total
		pick := -1
		for ci := range pool {
			if pool[ci].w <= 0 {
				continue
			}
			r -= pool[ci].w
			if r <= 0 {
				pick = ci
				break
			}
		}
		if pick < 0 {
			// Numerical residue: take the last weighted candidate.
			for ci := len(pool) - 1; ci >= 0; ci-- {
				if pool[ci].w > 0 {
					pick = ci
					break
				}
			}
			if pick < 0 {
				break
			}
		}
		out = append(out, pool[pick].idx)
		total -= pool[pick].w
		pool[pick].w = 0
	}
	sort.Ints(out)
	return out
}

// collection window: January–April 2012 (§III-B).
const (
	captureStart = 1325376000 // 2012-01-01T00:00:00Z
	captureEnd   = 1335830399 // 2012-04-30T23:59:59Z
)

// emitPackets realizes every profile's packet budget over its assigned
// apps, stamps capture metadata, and returns the packets in time order.
func emitPackets(rng *rand.Rand, device *android.Device, u *adnet.Universe, apps []*App) *capture.Set {
	// Invert the assignment: per profile, its apps.
	byProfile := make(map[*adnet.Profile][]*App)
	for _, a := range apps {
		for _, p := range a.Profiles {
			byProfile[p] = append(byProfile[p], a)
		}
	}
	var packets []*httpmodel.Packet
	for _, p := range u.Profiles {
		assigned := byProfile[p]
		if len(assigned) == 0 || p.TargetPackets <= 0 {
			continue
		}
		counts := splitBudget(rng, p.TargetPackets, len(assigned))
		for ai, a := range assigned {
			ctx := &adnet.BuildCtx{Rng: rng, Device: device, App: a.Info}
			for n := 0; n < counts[ai]; n++ {
				pkt := p.Build(ctx)
				pkt.DstIP = p.IP
				pkt.DstPort = p.Port
				pkt.App = a.Manifest.Package
				pkt.Time = captureStart + rng.Int63n(captureEnd-captureStart)
				packets = append(packets, pkt)
			}
		}
	}
	sort.SliceStable(packets, func(i, j int) bool { return packets[i].Time < packets[j].Time })
	for i, pkt := range packets {
		pkt.ID = int64(i + 1)
	}
	return capture.New(packets)
}

// splitBudget divides total packets over n holders: every holder gets at
// least one, the rest is distributed by exponential activity weights.
func splitBudget(rng *rand.Rand, total, n int) []int {
	counts := make([]int, n)
	if total <= n {
		for i := 0; i < total; i++ {
			counts[i]++
		}
		return counts
	}
	weights := make([]float64, n)
	sum := 0.0
	for i := range weights {
		weights[i] = rng.ExpFloat64() + 0.05
		sum += weights[i]
	}
	rest := total - n
	given := 0
	for i := range counts {
		c := int(float64(rest) * weights[i] / sum)
		counts[i] = 1 + c
		given += c
	}
	// Distribute the rounding remainder round-robin.
	for i := 0; given < rest; i = (i + 1) % n {
		counts[i]++
		given++
	}
	return counts
}

const hexAlphabet = "0123456789abcdef"

func randHex(rng *rand.Rand, n int) string {
	b := make([]byte, n)
	for i := range b {
		b[i] = hexAlphabet[rng.Intn(16)]
	}
	return string(b)
}
