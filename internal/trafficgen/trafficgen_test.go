package trafficgen

import (
	"math/rand"
	"testing"

	"leaksig/internal/android"
	"leaksig/internal/capture"
	"leaksig/internal/httpmodel"
	"leaksig/internal/sensitive"
	"leaksig/internal/stats"
)

// fullDataset is generated once; several tests inspect it.
var fullDataset = Generate(Config{Seed: 1})

func TestTotalPacketsNearPaper(t *testing.T) {
	got := fullDataset.Capture.Len()
	want := 107859
	if diff := got - want; diff < -2000 || diff > 2000 {
		t.Errorf("total packets = %d, want within 2000 of %d", got, want)
	}
}

func TestTableIRowsExact(t *testing.T) {
	counts := make(map[android.Combo]int)
	for _, a := range fullDataset.Apps {
		counts[a.Manifest.DangerousCombo()]++
	}
	want := map[android.Combo]int{
		android.ComboInternetOnly:                  302,
		android.ComboInternetPhone:                 329,
		android.ComboInternetLocationPhone:         153,
		android.ComboInternetLocation:              148,
		android.ComboInternetLocationPhoneContacts: 23,
		android.ComboOther:                         233,
	}
	for combo, n := range want {
		if counts[combo] != n {
			t.Errorf("combo %v = %d apps, want %d", combo, counts[combo], n)
		}
	}
	if len(fullDataset.Apps) != 1188 {
		t.Errorf("apps = %d", len(fullDataset.Apps))
	}
}

func TestEveryPacketValid(t *testing.T) {
	for _, p := range fullDataset.Capture.Packets[:2000] {
		if err := p.Validate(); err != nil {
			t.Fatalf("invalid packet: %v", err)
		}
		if p.App == "" || p.Time == 0 || p.DstIP == 0 {
			t.Fatalf("missing metadata: %+v", p)
		}
	}
}

func TestPacketsTimeOrderedWithSequentialIDs(t *testing.T) {
	ps := fullDataset.Capture.Packets
	for i := 1; i < len(ps); i++ {
		if ps[i].Time < ps[i-1].Time {
			t.Fatalf("packets not time ordered at %d", i)
		}
		if ps[i].ID != ps[i-1].ID+1 {
			t.Fatalf("IDs not sequential at %d", i)
		}
	}
}

func TestDeterministicForSeed(t *testing.T) {
	a := Generate(Config{Seed: 7, NumApps: 120, TotalPackets: 9000})
	b := Generate(Config{Seed: 7, NumApps: 120, TotalPackets: 9000})
	if a.Capture.Len() != b.Capture.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Capture.Len(), b.Capture.Len())
	}
	for i := range a.Capture.Packets {
		pa, pb := a.Capture.Packets[i], b.Capture.Packets[i]
		if pa.RequestLine() != pb.RequestLine() || pa.Host != pb.Host || pa.App != pb.App {
			t.Fatalf("packet %d differs:\n%v\n%v", i, pa, pb)
		}
	}
	c := Generate(Config{Seed: 8, NumApps: 120, TotalPackets: 9000})
	same := c.Capture.Len() == a.Capture.Len()
	if same {
		diff := false
		for i := range a.Capture.Packets {
			if a.Capture.Packets[i].RequestLine() != c.Capture.Packets[i].RequestLine() {
				diff = true
				break
			}
		}
		if !diff {
			t.Error("different seeds produced identical traces")
		}
	}
}

func TestFigure2DestinationDistribution(t *testing.T) {
	perApp := destinationCounts(fullDataset)
	s := stats.Summarize(perApp)
	if s.Count != 1188 {
		t.Fatalf("apps with traffic = %d", s.Count)
	}
	if s.Mean < 6.5 || s.Mean > 9.5 {
		t.Errorf("mean destinations = %.2f, want ~7.9", s.Mean)
	}
	if s.Max < 60 || s.Max > 90 {
		t.Errorf("max destinations = %d, want ~84", s.Max)
	}
	cdf := stats.NewCDF(perApp)
	if f := cdf.FractionAtMost(1); f < 0.03 || f > 0.12 {
		t.Errorf("fraction with 1 destination = %.3f, want ~0.07", f)
	}
	if f := cdf.FractionAtMost(10); f < 0.64 || f > 0.84 {
		t.Errorf("fraction <=10 = %.3f, want ~0.74", f)
	}
	if f := cdf.FractionAtMost(16); f < 0.82 || f > 0.96 {
		t.Errorf("fraction <=16 = %.3f, want ~0.90", f)
	}
}

func destinationCounts(d *Dataset) []int {
	hostsByApp := make(map[string]map[string]bool)
	for _, p := range d.Capture.Packets {
		m := hostsByApp[p.App]
		if m == nil {
			m = make(map[string]bool)
			hostsByApp[p.App] = m
		}
		m[p.Host] = true
	}
	var out []int
	for _, m := range hostsByApp {
		out = append(out, len(m))
	}
	return out
}

func TestTableIIDestinationTargets(t *testing.T) {
	pktByHost := stats.NewFreq[string]()
	appsByHost := make(map[string]map[string]bool)
	for _, p := range fullDataset.Capture.Packets {
		pktByHost.Add(p.Host)
		m := appsByHost[p.Host]
		if m == nil {
			m = make(map[string]bool)
			appsByHost[p.Host] = m
		}
		m[p.App] = true
	}
	check := func(host string, wantPkts, wantApps int) {
		t.Helper()
		gotP := pktByHost[host]
		gotA := len(appsByHost[host])
		if gotP < wantPkts*90/100 || gotP > wantPkts*110/100 {
			t.Errorf("%s packets = %d, want ~%d", host, gotP, wantPkts)
		}
		if gotA < wantApps*80/100 || gotA > wantApps*115/100 {
			t.Errorf("%s apps = %d, want ~%d", host, gotA, wantApps)
		}
	}
	check("doubleclick.net", 5786, 407)
	check("admob.com", 1299, 401)
	check("i-mobile.co.jp", 3729, 100)
	check("ad-maker.info", 3391, 195)
	check("gree.jp", 228, 45)
}

func TestTableIIISensitiveComposition(t *testing.T) {
	oracle := sensitive.NewOracle(fullDataset.Device)
	kindPkts := make(map[sensitive.Kind]int)
	suspicious := 0
	for _, p := range fullDataset.Capture.Packets {
		kinds := oracle.Scan(p)
		if len(kinds) > 0 {
			suspicious++
		}
		for _, k := range kinds {
			kindPkts[k]++
		}
	}
	t.Logf("suspicious = %d (paper 23309)", suspicious)
	paper := map[sensitive.Kind]int{
		sensitive.KindAndroidID:     7590,
		sensitive.KindAndroidIDMD5:  10058,
		sensitive.KindAndroidIDSHA1: 1247,
		sensitive.KindCarrier:       2095,
		sensitive.KindIMEI:          3331,
		sensitive.KindIMEIMD5:       692,
		sensitive.KindIMEISHA1:      1062,
		sensitive.KindIMSI:          655,
		sensitive.KindSIMSerial:     369,
	}
	for k, want := range paper {
		got := kindPkts[k]
		t.Logf("%-22s generated %6d  paper %6d", k, got, want)
		if got < want*55/100 || got > want*160/100 {
			t.Errorf("%v packets = %d, outside [0.55, 1.6]x of paper's %d", k, got, want)
		}
	}
	if suspicious < 19000 || suspicious > 28000 {
		t.Errorf("suspicious packets = %d, want ~23309", suspicious)
	}
	// Ordering properties the paper emphasizes must hold: hashed Android ID
	// dominates, SIM serial is rarest.
	if kindPkts[sensitive.KindAndroidIDMD5] <= kindPkts[sensitive.KindAndroidID] {
		t.Error("ANDROID ID MD5 should dominate plain ANDROID ID")
	}
	if kindPkts[sensitive.KindSIMSerial] >= kindPkts[sensitive.KindIMSI]*3 {
		t.Error("SIM serial should be among the rarest kinds")
	}
}

func TestPermissionsGateIMEI(t *testing.T) {
	// No packet from an app lacking READ_PHONE_STATE may carry the IMEI
	// family: the reference-monitor behaviour ad modules are subject to.
	oracle := sensitive.NewOracle(fullDataset.Device)
	phonePerm := make(map[string]bool)
	for _, a := range fullDataset.Apps {
		phonePerm[a.Manifest.Package] = a.Info.HasPhoneState
	}
	imeiKinds := map[sensitive.Kind]bool{
		sensitive.KindIMEI: true, sensitive.KindIMEIMD5: true, sensitive.KindIMEISHA1: true,
		sensitive.KindIMSI: true, sensitive.KindSIMSerial: true,
	}
	for _, p := range fullDataset.Capture.Packets {
		if phonePerm[p.App] {
			continue
		}
		for _, k := range oracle.Scan(p) {
			if imeiKinds[k] {
				t.Fatalf("app %s without READ_PHONE_STATE leaked %v: %s", p.App, k, p)
			}
		}
	}
}

func TestScaledDownGeneration(t *testing.T) {
	d := Generate(Config{Seed: 3, NumApps: 100, TotalPackets: 8000})
	if len(d.Apps) != 100 {
		t.Fatalf("apps = %d", len(d.Apps))
	}
	if d.Capture.Len() < 4000 {
		t.Errorf("packets = %d, want a few thousand", d.Capture.Len())
	}
	oracle := sensitive.NewOracle(d.Device)
	susp := 0
	for _, p := range d.Capture.Packets {
		if oracle.IsSensitive(p) {
			susp++
		}
	}
	if susp == 0 {
		t.Error("scaled dataset has no sensitive packets")
	}
}

func TestSplitBudget(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, tc := range []struct{ total, n int }{{100, 7}, {7, 7}, {3, 7}, {5000, 3}, {1, 1}} {
		counts := splitBudget(rng, tc.total, tc.n)
		if len(counts) != tc.n {
			t.Fatalf("len = %d", len(counts))
		}
		sum := 0
		for _, c := range counts {
			sum += c
			if c < 0 {
				t.Fatalf("negative count")
			}
			if tc.total >= tc.n && c == 0 {
				t.Fatalf("holder got zero despite budget %d >= %d", tc.total, tc.n)
			}
		}
		if sum != tc.total {
			t.Fatalf("splitBudget(%d, %d) sums to %d", tc.total, tc.n, sum)
		}
	}
}

func TestSampleDestTargetDistribution(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	var xs []int
	for i := 0; i < 20000; i++ {
		xs = append(xs, sampleDestTarget(rng))
	}
	s := stats.Summarize(xs)
	if s.Mean < 7.0 || s.Mean > 8.8 {
		t.Errorf("sampled mean = %.2f, want ~7.9", s.Mean)
	}
	if s.Min != 1 {
		t.Errorf("min = %d", s.Min)
	}
	cdf := stats.NewCDF(xs)
	if f := cdf.FractionAtMost(1); f < 0.05 || f > 0.09 {
		t.Errorf("P(1) = %.3f", f)
	}
}

func TestUUIDTrackerTrafficIsBenign(t *testing.T) {
	oracle := sensitive.NewOracle(fullDataset.Device)
	seen := 0
	for _, p := range fullDataset.Capture.Packets {
		if p.Host[0] == 'c' && len(p.Host) > 3 && p.Path[:7] == "/v1/imp" {
			if kinds := oracle.Scan(p); len(kinds) > 0 {
				t.Fatalf("uuid tracker packet flagged sensitive: %v %s", kinds, p)
			}
			seen++
			if seen > 500 {
				break
			}
		}
	}
	if seen == 0 {
		t.Skip("no uuid tracker packets sampled")
	}
}

func TestCaptureRoundTripSample(t *testing.T) {
	small := capture.New(fullDataset.Capture.Packets[:500])
	var cnt int
	for _, p := range small.Packets {
		if p.Method == "POST" {
			cnt++
		}
		_ = p.Content()
	}
	_ = cnt
	var hosts = small.Hosts()
	if len(hosts) < 5 {
		t.Errorf("sample covers %d hosts", len(hosts))
	}
	var _ = httpmodel.ByID
}
