// Package httpmodel defines the HTTP packet representation the whole system
// operates on, plus a raw wire-format parser and serializer.
//
// The paper (§IV-B/C) models an HTTP packet p as two tuples:
//
//	destination: {ip, port, host}
//	content:     {request-line, cookie, message-body}
//
// Packet carries both tuples plus capture metadata (application, sequence
// number, synthetic timestamp) used by the evaluation harness. Only the two
// tuples ever enter the distance computation.
package httpmodel

import (
	"fmt"
	"sort"
	"strings"

	"leaksig/internal/ipaddr"
	"leaksig/internal/obs/trace"
)

// Header is one HTTP header field.
type Header struct {
	Name  string `json:"name"`
	Value string `json:"value"`
}

// Packet is one captured GET/POST HTTP request.
type Packet struct {
	// Capture metadata.
	ID   int64  `json:"id"`             // unique per capture
	App  string `json:"app,omitempty"`  // application package name
	Time int64  `json:"time,omitempty"` // synthetic unix timestamp

	// Destination tuple (§IV-B).
	Host    string      `json:"host"`
	DstIP   ipaddr.Addr `json:"dst_ip"`
	DstPort uint16      `json:"dst_port"`

	// Content tuple (§IV-C).
	Method  string   `json:"method"`            // "GET" or "POST"
	Path    string   `json:"path"`              // request target, including query
	Proto   string   `json:"proto"`             // e.g. "HTTP/1.1"
	Headers []Header `json:"headers,omitempty"` // all headers except Host
	Body    []byte   `json:"body,omitempty"`

	// Tracing. Trace is the cross-process trace ID ("" for unsampled
	// packets) and survives NDJSON hops; Span is the live in-process span
	// and never leaves the process. Both are nil/empty on the unsampled
	// fast path.
	Trace string      `json:"trace,omitempty"`
	Span  *trace.Span `json:"-"`
}

// RequestLine returns the HTTP request line without the trailing CRLF,
// e.g. "GET /ad?zone=1 HTTP/1.1".
func (p *Packet) RequestLine() string {
	return p.Method + " " + p.Path + " " + p.Proto
}

// Cookie returns the concatenation of all Cookie header values, joined by
// "; " in header order. It returns "" when the request carries no cookie.
func (p *Packet) Cookie() string {
	var parts []string
	for _, h := range p.Headers {
		if strings.EqualFold(h.Name, "Cookie") {
			parts = append(parts, h.Value)
		}
	}
	return strings.Join(parts, "; ")
}

// HeaderValue returns the first value of the named header (case-insensitive)
// and whether it was present.
func (p *Packet) HeaderValue(name string) (string, bool) {
	for _, h := range p.Headers {
		if strings.EqualFold(h.Name, name) {
			return h.Value, true
		}
	}
	return "", false
}

// SetHeader replaces every existing value of the named header with one value,
// or appends it if absent.
func (p *Packet) SetHeader(name, value string) {
	out := p.Headers[:0]
	for _, h := range p.Headers {
		if !strings.EqualFold(h.Name, name) {
			out = append(out, h)
		}
	}
	p.Headers = append(out, Header{Name: name, Value: value})
}

// Content returns the bytes the signature matcher scans: request line,
// cookie, and body, separated by newlines. The separator prevents tokens
// from spanning two fields.
func (p *Packet) Content() []byte {
	rl := p.RequestLine()
	ck := p.Cookie()
	n := len(rl) + 1 + len(ck) + 1 + len(p.Body)
	buf := make([]byte, 0, n)
	buf = append(buf, rl...)
	buf = append(buf, '\n')
	buf = append(buf, ck...)
	buf = append(buf, '\n')
	buf = append(buf, p.Body...)
	return buf
}

// ContentFields returns the three content components in the order the paper
// sums their NCD terms: request-line, cookie, message-body.
func (p *Packet) ContentFields() [3][]byte {
	return [3][]byte{
		[]byte(p.RequestLine()),
		[]byte(p.Cookie()),
		p.Body,
	}
}

// ContentVisitor receives a packet's scannable content as a stream of
// chunks, field by field, without any concatenation buffer being built.
// Implementations that thread matcher state across Text/Bytes chunks and
// reset it on Field see exactly the semantics of scanning each
// ContentFields() element in isolation: chunks of one field are
// contiguous, fields are hard boundaries.
type ContentVisitor interface {
	// Field marks the start of the next content field (request line,
	// cookie, body — in Content() order). It is called even when the
	// field is empty.
	Field()
	// Text delivers the next chunk of the current field.
	Text(s string)
	// Bytes delivers the next chunk of the current field.
	Bytes(b []byte)
}

// VisitContent streams the same bytes Content() would produce — minus the
// '\n' field separators, which Field stands in for — to v, chunk by
// chunk, allocating nothing. This is the zero-allocation scan path: the
// request line is visited as its five constituent chunks, the cookie
// field as each Cookie header value joined by "; " chunks, the body as
// one []byte chunk.
func (p *Packet) VisitContent(v ContentVisitor) {
	v.Field()
	v.Text(p.Method)
	v.Text(" ")
	v.Text(p.Path)
	v.Text(" ")
	v.Text(p.Proto)
	v.Field()
	first := true
	for i := range p.Headers {
		if strings.EqualFold(p.Headers[i].Name, "Cookie") {
			if !first {
				v.Text("; ")
			}
			v.Text(p.Headers[i].Value)
			first = false
		}
	}
	v.Field()
	v.Bytes(p.Body)
}

// Query parses the query portion of the path into key/value pairs in
// order of appearance. Keys without '=' get an empty value. It performs no
// percent-decoding: signatures operate on raw bytes.
func (p *Packet) Query() []Header {
	qi := strings.IndexByte(p.Path, '?')
	if qi < 0 || qi == len(p.Path)-1 {
		return nil
	}
	var out []Header
	for _, kv := range strings.Split(p.Path[qi+1:], "&") {
		if kv == "" {
			continue
		}
		if eq := strings.IndexByte(kv, '='); eq >= 0 {
			out = append(out, Header{Name: kv[:eq], Value: kv[eq+1:]})
		} else {
			out = append(out, Header{Name: kv})
		}
	}
	return out
}

// QueryValue returns the first value of the named query parameter.
func (p *Packet) QueryValue(key string) (string, bool) {
	for _, kv := range p.Query() {
		if kv.Name == key {
			return kv.Value, true
		}
	}
	return "", false
}

// Clone returns a deep copy of the packet. The clone keeps the trace ID
// but not the live span — span ownership stays with the original.
func (p *Packet) Clone() *Packet {
	q := *p
	q.Headers = append([]Header(nil), p.Headers...)
	q.Body = append([]byte(nil), p.Body...)
	q.Span = nil
	return &q
}

// BeginTrace attaches tracing to a freshly ingested packet: a packet
// arriving with a trace ID from upstream adopts it; otherwise the tracer
// makes its head-sampling decision and, when sampled, the packet gets a
// fresh span stamped at ingest. Unsampled packets (and a nil tracer)
// leave both fields zero at the cost of one atomic add.
func (p *Packet) BeginTrace(t *trace.Tracer) {
	if p.Span != nil {
		return
	}
	if p.Trace != "" {
		if sp := t.Adopt(p.Trace); sp != nil {
			p.Span = sp
			sp.Stamp(trace.StageIngest)
		}
		return
	}
	if sp := t.Start(); sp != nil {
		p.Span = sp
		p.Trace = sp.ID()
		sp.Stamp(trace.StageIngest)
	}
}

// EndTrace finishes and detaches the packet's span (keeping the trace
// ID), for owners done with per-packet staging.
func (p *Packet) EndTrace() {
	if p.Span != nil {
		p.Span.Finish()
		p.Span = nil
	}
}

// Validate checks structural invariants: method is GET or POST, path is
// non-empty and starts with '/', protocol is HTTP/1.x, host is non-empty,
// and GET requests carry no body.
func (p *Packet) Validate() error {
	switch p.Method {
	case "GET", "POST":
	default:
		return fmt.Errorf("httpmodel: packet %d: unsupported method %q", p.ID, p.Method)
	}
	if p.Path == "" || p.Path[0] != '/' {
		return fmt.Errorf("httpmodel: packet %d: bad path %q", p.ID, p.Path)
	}
	if p.Proto != "HTTP/1.0" && p.Proto != "HTTP/1.1" {
		return fmt.Errorf("httpmodel: packet %d: bad protocol %q", p.ID, p.Proto)
	}
	if p.Host == "" {
		return fmt.Errorf("httpmodel: packet %d: missing host", p.ID)
	}
	if p.Method == "GET" && len(p.Body) > 0 {
		return fmt.Errorf("httpmodel: packet %d: GET with body", p.ID)
	}
	return nil
}

// String returns a short human-readable description of the packet.
func (p *Packet) String() string {
	return fmt.Sprintf("%s %s%s -> %s:%d", p.Method, p.Host, p.Path, p.DstIP, p.DstPort)
}

// ByID sorts packets in place by capture ID.
func ByID(ps []*Packet) {
	sort.Slice(ps, func(i, j int) bool { return ps[i].ID < ps[j].ID })
}
