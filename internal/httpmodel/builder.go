package httpmodel

import (
	"strings"

	"leaksig/internal/ipaddr"
)

// Builder assembles packets fluently. It is used heavily by the synthetic
// traffic generator and by tests. Build returns a fresh packet each call, so
// a builder can be reused as a template.
type Builder struct {
	p Packet
}

// NewBuilder starts a builder for the given method, host, and path.
func NewBuilder(method, host, path string) *Builder {
	return &Builder{p: Packet{
		Method: method,
		Host:   host,
		Path:   path,
		Proto:  "HTTP/1.1",
	}}
}

// Get starts a GET request builder.
func Get(host, path string) *Builder { return NewBuilder("GET", host, path) }

// Post starts a POST request builder.
func Post(host, path string) *Builder { return NewBuilder("POST", host, path) }

// ID sets the capture ID.
func (b *Builder) ID(id int64) *Builder { b.p.ID = id; return b }

// App sets the originating application package name.
func (b *Builder) App(app string) *Builder { b.p.App = app; return b }

// Time sets the synthetic capture timestamp.
func (b *Builder) Time(t int64) *Builder { b.p.Time = t; return b }

// Dest sets the destination IP and port.
func (b *Builder) Dest(ip ipaddr.Addr, port uint16) *Builder {
	b.p.DstIP = ip
	b.p.DstPort = port
	return b
}

// Proto overrides the HTTP protocol version string.
func (b *Builder) Proto(proto string) *Builder { b.p.Proto = proto; return b }

// Header appends a header field.
func (b *Builder) Header(name, value string) *Builder {
	b.p.Headers = append(b.p.Headers, Header{Name: name, Value: value})
	return b
}

// Cookie appends a Cookie header.
func (b *Builder) Cookie(value string) *Builder { return b.Header("Cookie", value) }

// UserAgent appends a User-Agent header.
func (b *Builder) UserAgent(value string) *Builder { return b.Header("User-Agent", value) }

// Query appends one key=value pair to the path's query string.
func (b *Builder) Query(key, value string) *Builder {
	sep := "?"
	if strings.ContainsRune(b.p.Path, '?') {
		sep = "&"
	}
	b.p.Path += sep + key + "=" + value
	return b
}

// Body sets the message body (POST payloads).
func (b *Builder) Body(body []byte) *Builder {
	b.p.Body = append([]byte(nil), body...)
	return b
}

// BodyString sets the message body from a string.
func (b *Builder) BodyString(body string) *Builder { return b.Body([]byte(body)) }

// Form sets an application/x-www-form-urlencoded body from ordered pairs
// and the matching Content-Type header.
func (b *Builder) Form(pairs ...string) *Builder {
	if len(pairs)%2 != 0 {
		panic("httpmodel: Form requires an even number of arguments")
	}
	var sb strings.Builder
	for i := 0; i < len(pairs); i += 2 {
		if i > 0 {
			sb.WriteByte('&')
		}
		sb.WriteString(pairs[i])
		sb.WriteByte('=')
		sb.WriteString(pairs[i+1])
	}
	b.Header("Content-Type", "application/x-www-form-urlencoded")
	return b.BodyString(sb.String())
}

// Build returns a copy of the assembled packet.
func (b *Builder) Build() *Packet {
	return b.p.Clone()
}
