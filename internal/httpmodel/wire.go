package httpmodel

import (
	"bufio"
	"bytes"
	"fmt"
	"io"
	"strconv"
	"strings"

	"leaksig/internal/ipaddr"
)

// maxLineLen bounds a single request or header line when parsing.
const maxLineLen = 64 * 1024

// WriteWire serializes the packet as a raw HTTP/1.x request:
// request line, Host header, remaining headers, blank line, body.
// A Content-Length header is emitted for non-empty bodies unless one is
// already present.
func (p *Packet) WriteWire(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := fmt.Fprintf(bw, "%s %s %s\r\n", p.Method, p.Path, p.Proto); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(bw, "Host: %s\r\n", p.Host); err != nil {
		return err
	}
	hasCL := false
	for _, h := range p.Headers {
		if strings.EqualFold(h.Name, "Content-Length") {
			hasCL = true
		}
		if _, err := fmt.Fprintf(bw, "%s: %s\r\n", h.Name, h.Value); err != nil {
			return err
		}
	}
	if len(p.Body) > 0 && !hasCL {
		if _, err := fmt.Fprintf(bw, "Content-Length: %d\r\n", len(p.Body)); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("\r\n"); err != nil {
		return err
	}
	if _, err := bw.Write(p.Body); err != nil {
		return err
	}
	return bw.Flush()
}

// WireBytes returns the raw HTTP/1.x request bytes.
func (p *Packet) WireBytes() []byte {
	var buf bytes.Buffer
	// Writes to bytes.Buffer cannot fail.
	_ = p.WriteWire(&buf)
	return buf.Bytes()
}

// ParseWire parses one raw HTTP/1.x request. The destination IP and port are
// transport-level facts the wire format does not carry, so the caller
// supplies them (a capture tool knows the socket address). The Host header
// is lifted into Packet.Host and removed from Headers.
func ParseWire(r io.Reader, dstIP ipaddr.Addr, dstPort uint16) (*Packet, error) {
	br := bufio.NewReader(r)
	line, err := readLine(br)
	if err != nil {
		return nil, fmt.Errorf("httpmodel: reading request line: %w", err)
	}
	parts := strings.SplitN(line, " ", 3)
	if len(parts) != 3 {
		return nil, fmt.Errorf("httpmodel: malformed request line %q", line)
	}
	p := &Packet{
		Method:  parts[0],
		Path:    parts[1],
		Proto:   parts[2],
		DstIP:   dstIP,
		DstPort: dstPort,
	}
	contentLength := -1
	for {
		line, err := readLine(br)
		if err != nil {
			return nil, fmt.Errorf("httpmodel: reading headers: %w", err)
		}
		if line == "" {
			break
		}
		colon := strings.IndexByte(line, ':')
		if colon <= 0 {
			return nil, fmt.Errorf("httpmodel: malformed header line %q", line)
		}
		name := strings.TrimSpace(line[:colon])
		value := strings.TrimSpace(line[colon+1:])
		switch {
		case strings.EqualFold(name, "Host"):
			p.Host = value
		case strings.EqualFold(name, "Content-Length"):
			n, err := strconv.Atoi(value)
			if err != nil || n < 0 {
				return nil, fmt.Errorf("httpmodel: bad Content-Length %q", value)
			}
			contentLength = n
			p.Headers = append(p.Headers, Header{Name: name, Value: value})
		default:
			p.Headers = append(p.Headers, Header{Name: name, Value: value})
		}
	}
	if contentLength > 0 {
		body := make([]byte, contentLength)
		if _, err := io.ReadFull(br, body); err != nil {
			return nil, fmt.Errorf("httpmodel: reading body: %w", err)
		}
		p.Body = body
	}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// ParseWireBytes is ParseWire over an in-memory buffer.
func ParseWireBytes(raw []byte, dstIP ipaddr.Addr, dstPort uint16) (*Packet, error) {
	return ParseWire(bytes.NewReader(raw), dstIP, dstPort)
}

// readLine reads one CRLF- or LF-terminated line, returning it without the
// terminator. It rejects lines longer than maxLineLen.
func readLine(br *bufio.Reader) (string, error) {
	var sb strings.Builder
	for {
		chunk, err := br.ReadString('\n')
		sb.WriteString(chunk)
		if err != nil {
			return "", err
		}
		if sb.Len() > maxLineLen {
			return "", fmt.Errorf("line exceeds %d bytes", maxLineLen)
		}
		if strings.HasSuffix(chunk, "\n") {
			break
		}
	}
	s := sb.String()
	s = strings.TrimSuffix(s, "\n")
	s = strings.TrimSuffix(s, "\r")
	return s, nil
}
