package httpmodel

import (
	"bytes"
	"strings"
	"testing"

	"leaksig/internal/ipaddr"
)

func samplePacket() *Packet {
	return Get("ad-maker.info", "/ad/v2").
		ID(7).
		App("com.example.game").
		Dest(ipaddr.MustParse("203.0.113.9"), 80).
		Query("zone", "12").
		Query("udid", "f3a9c1d200b14e67").
		UserAgent("Dalvik/1.4 (Linux; Android 2.3.4)").
		Cookie("sid=abc123").
		Build()
}

func TestRequestLine(t *testing.T) {
	p := samplePacket()
	want := "GET /ad/v2?zone=12&udid=f3a9c1d200b14e67 HTTP/1.1"
	if got := p.RequestLine(); got != want {
		t.Errorf("RequestLine = %q, want %q", got, want)
	}
}

func TestCookieConcatenation(t *testing.T) {
	p := samplePacket()
	if got := p.Cookie(); got != "sid=abc123" {
		t.Errorf("Cookie = %q", got)
	}
	p.Headers = append(p.Headers, Header{Name: "cookie", Value: "u=2"})
	if got := p.Cookie(); got != "sid=abc123; u=2" {
		t.Errorf("Cookie multi = %q", got)
	}
	q := Get("x.example", "/").Build()
	if q.Cookie() != "" {
		t.Errorf("Cookie absent = %q", q.Cookie())
	}
}

func TestHeaderAccessors(t *testing.T) {
	p := samplePacket()
	if v, ok := p.HeaderValue("user-agent"); !ok || !strings.HasPrefix(v, "Dalvik") {
		t.Errorf("HeaderValue(user-agent) = %q, %v", v, ok)
	}
	if _, ok := p.HeaderValue("X-Missing"); ok {
		t.Error("HeaderValue for missing header reported ok")
	}
	p.SetHeader("User-Agent", "Other/1.0")
	if v, _ := p.HeaderValue("User-Agent"); v != "Other/1.0" {
		t.Errorf("SetHeader replace failed: %q", v)
	}
	n := 0
	for _, h := range p.Headers {
		if strings.EqualFold(h.Name, "User-Agent") {
			n++
		}
	}
	if n != 1 {
		t.Errorf("SetHeader left %d copies", n)
	}
}

func TestContentLayout(t *testing.T) {
	p := samplePacket()
	c := p.Content()
	parts := bytes.SplitN(c, []byte("\n"), 3)
	if len(parts) != 3 {
		t.Fatalf("Content has %d parts", len(parts))
	}
	if string(parts[0]) != p.RequestLine() {
		t.Errorf("content[0] = %q", parts[0])
	}
	if string(parts[1]) != p.Cookie() {
		t.Errorf("content[1] = %q", parts[1])
	}
	if !bytes.Equal(parts[2], p.Body) {
		t.Errorf("content[2] = %q", parts[2])
	}
}

func TestContentFieldsOrder(t *testing.T) {
	p := Post("api.example.jp", "/submit").
		Dest(ipaddr.MustParse("198.51.100.3"), 80).
		Cookie("k=v").
		BodyString("a=1&b=2").
		Build()
	f := p.ContentFields()
	if string(f[0]) != "POST /submit HTTP/1.1" {
		t.Errorf("field 0 = %q", f[0])
	}
	if string(f[1]) != "k=v" {
		t.Errorf("field 1 = %q", f[1])
	}
	if string(f[2]) != "a=1&b=2" {
		t.Errorf("field 2 = %q", f[2])
	}
}

func TestQueryParsing(t *testing.T) {
	p := samplePacket()
	q := p.Query()
	if len(q) != 2 || q[0].Name != "zone" || q[0].Value != "12" || q[1].Name != "udid" {
		t.Errorf("Query = %v", q)
	}
	if v, ok := p.QueryValue("udid"); !ok || v != "f3a9c1d200b14e67" {
		t.Errorf("QueryValue(udid) = %q, %v", v, ok)
	}
	if _, ok := p.QueryValue("absent"); ok {
		t.Error("QueryValue(absent) reported ok")
	}
	noQ := Get("x.example", "/plain").Build()
	if noQ.Query() != nil {
		t.Errorf("Query on plain path = %v", noQ.Query())
	}
	flag := Get("x.example", "/p?flag&k=v").Build()
	fq := flag.Query()
	if len(fq) != 2 || fq[0].Name != "flag" || fq[0].Value != "" {
		t.Errorf("Query with bare flag = %v", fq)
	}
}

func TestCloneIsDeep(t *testing.T) {
	p := Post("x.example", "/p").Dest(1, 80).BodyString("abc").Cookie("a=1").Build()
	q := p.Clone()
	q.Body[0] = 'X'
	q.Headers[0].Value = "changed"
	if p.Body[0] != 'a' {
		t.Error("Clone shares body")
	}
	if p.Headers[0].Value == "changed" {
		t.Error("Clone shares headers")
	}
}

func TestValidate(t *testing.T) {
	good := samplePacket()
	if err := good.Validate(); err != nil {
		t.Errorf("valid packet rejected: %v", err)
	}
	cases := []func(*Packet){
		func(p *Packet) { p.Method = "PUT" },
		func(p *Packet) { p.Path = "noslash" },
		func(p *Packet) { p.Path = "" },
		func(p *Packet) { p.Proto = "HTTP/2" },
		func(p *Packet) { p.Host = "" },
		func(p *Packet) { p.Body = []byte("x") }, // GET with body
	}
	for i, mutate := range cases {
		p := samplePacket()
		mutate(p)
		if err := p.Validate(); err == nil {
			t.Errorf("case %d: invalid packet accepted", i)
		}
	}
}

func TestByID(t *testing.T) {
	ps := []*Packet{{ID: 3}, {ID: 1}, {ID: 2}}
	ByID(ps)
	for i, want := range []int64{1, 2, 3} {
		if ps[i].ID != want {
			t.Fatalf("ByID order: %v", []int64{ps[0].ID, ps[1].ID, ps[2].ID})
		}
	}
}

func TestStringFormat(t *testing.T) {
	p := samplePacket()
	s := p.String()
	for _, want := range []string{"GET", "ad-maker.info", "/ad/v2", "203.0.113.9", "80"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q missing %q", s, want)
		}
	}
}

func TestBuilderFormAndReuse(t *testing.T) {
	b := Post("track.example", "/t").Dest(5, 8080).Form("udid", "abc", "carrier", "docomo")
	p1 := b.Build()
	p2 := b.Build()
	if string(p1.Body) != "udid=abc&carrier=docomo" {
		t.Errorf("Form body = %q", p1.Body)
	}
	if ct, _ := p1.HeaderValue("Content-Type"); ct != "application/x-www-form-urlencoded" {
		t.Errorf("Content-Type = %q", ct)
	}
	p1.Body[0] = 'X'
	if p2.Body[0] == 'X' {
		t.Error("builds share body storage")
	}
}

func TestBuilderFormOddPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("odd Form args did not panic")
		}
	}()
	Post("x", "/").Form("only-key")
}

// fieldRecorder collects VisitContent chunks, reassembling one string per
// field.
type fieldRecorder struct {
	fields []string
}

func (r *fieldRecorder) Field()         { r.fields = append(r.fields, "") }
func (r *fieldRecorder) Text(s string)  { r.fields[len(r.fields)-1] += s }
func (r *fieldRecorder) Bytes(b []byte) { r.fields[len(r.fields)-1] += string(b) }

func TestVisitContentMatchesContentFields(t *testing.T) {
	packets := []*Packet{
		samplePacket(),
		Get("x.example", "/plain").Dest(1, 80).Build(),
		Post("track.example", "/t").Dest(5, 8080).
			Form("udid", "abc", "carrier", "docomo").Build(),
		Get("c.example", "/p").Dest(2, 80).
			Cookie("a=1").Cookie("b=2").Build(), // multiple Cookie headers join with "; "
	}
	for pi, p := range packets {
		var rec fieldRecorder
		p.VisitContent(&rec)
		if len(rec.fields) != 3 {
			t.Fatalf("packet %d: VisitContent produced %d fields, want 3", pi, len(rec.fields))
		}
		want := p.ContentFields()
		for i := range want {
			if rec.fields[i] != string(want[i]) {
				t.Errorf("packet %d field %d: VisitContent %q != ContentFields %q",
					pi, i, rec.fields[i], want[i])
			}
		}
	}
}
