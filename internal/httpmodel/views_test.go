package httpmodel

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"encoding/hex"
	"strings"
	"testing"
)

// collectSpans runs one decoder and gathers the emitted spans as copies
// (emitted slices alias scratch buffers).
func collectSpans(view View, src []byte) [][]byte {
	var vs ViewScratch
	var out [][]byte
	VisitDecodedView(view, src, &vs, func(dec []byte) {
		out = append(out, append([]byte(nil), dec...))
	})
	return out
}

func TestDecodeBase64Span(t *testing.T) {
	secret := "imei=356938035643809&aid=9774d56d682e549c"
	cases := map[string]string{
		"standard":       base64.StdEncoding.EncodeToString([]byte(secret)),
		"raw (unpadded)": base64.RawStdEncoding.EncodeToString([]byte(secret)),
		"url-safe":       base64.URLEncoding.EncodeToString([]byte(secret)),
		"key= prefix":    "p=" + base64.StdEncoding.EncodeToString([]byte(secret)),
		"embedded":       "junk!!(" + base64.StdEncoding.EncodeToString([]byte(secret)) + ")&more",
	}
	for name, body := range cases {
		spans := collectSpans(ViewBase64, []byte(body))
		found := false
		for _, s := range spans {
			if bytes.Contains(s, []byte(secret)) {
				found = true
			}
		}
		if !found {
			t.Errorf("%s: secret not recovered from %q; spans=%q", name, body, spans)
		}
	}
}

func TestDecodeBase64SkipsShortRuns(t *testing.T) {
	// Everyday query strings are full of short alphanumeric runs; none
	// may produce garbage decoded spans.
	if spans := collectSpans(ViewBase64, []byte("a=1&b=2&c=short")); len(spans) != 0 {
		t.Errorf("short runs decoded: %q", spans)
	}
}

func TestDecodeHexSpan(t *testing.T) {
	secret := "imei=356938035643809"
	body := "p=" + hex.EncodeToString([]byte(secret)) + "&q=1"
	spans := collectSpans(ViewHex, []byte(body))
	if len(spans) == 0 || !bytes.Contains(spans[0], []byte(secret)) {
		t.Fatalf("hex secret not recovered: %q", spans)
	}
	// Odd-length runs decode their even prefix.
	odd := hex.EncodeToString([]byte(secret)) + "a"
	spans = collectSpans(ViewHex, []byte("!"+odd+"!"))
	if len(spans) == 0 || !bytes.Contains(spans[0], []byte(secret)) {
		t.Fatalf("odd-length hex run not trimmed: %q", spans)
	}
}

func TestDecodeURLField(t *testing.T) {
	secret := "imei=356938035643809&aid=abc"
	body := "p=" + strings.NewReplacer("=", "%3D", "&", "%26").Replace(secret)
	spans := collectSpans(ViewURL, []byte(body))
	if len(spans) != 1 || !bytes.Contains(spans[0], []byte(secret)) {
		t.Fatalf("url secret not recovered: %q", spans)
	}
	// Unencoded fields emit nothing (the raw scan already covers them).
	if spans := collectSpans(ViewURL, []byte("plain=text")); len(spans) != 0 {
		t.Errorf("unencoded field emitted: %q", spans)
	}
	// Invalid escapes pass through literally, no panic.
	if spans := collectSpans(ViewURL, []byte("bad%zz+esc%4")); len(spans) != 1 ||
		!bytes.Equal(spans[0], []byte("bad%zz esc%4")) {
		t.Errorf("invalid escapes mishandled: %q", spans)
	}
}

func TestDecodeGzipField(t *testing.T) {
	secret := "imei=356938035643809&aid=9774d56d682e549c&pad=xxxxxxxxxxxxxxxx"
	var b bytes.Buffer
	zw := gzip.NewWriter(&b)
	zw.Write([]byte(secret))
	zw.Close()
	spans := collectSpans(ViewGzip, b.Bytes())
	if len(spans) != 1 || !bytes.Equal(spans[0], []byte(secret)) {
		t.Fatalf("gzip secret not recovered: %q", spans)
	}
	// Truncated stream: the cleanly-inflated prefix still comes out.
	trunc := b.Bytes()[:b.Len()-8]
	spans = collectSpans(ViewGzip, trunc)
	if len(spans) != 1 || !bytes.HasPrefix([]byte(secret), spans[0]) {
		t.Fatalf("truncated gzip: %q", spans)
	}
	// Non-gzip bodies emit nothing.
	if spans := collectSpans(ViewGzip, []byte("just a plain body here")); len(spans) != 0 {
		t.Errorf("non-gzip body emitted: %q", spans)
	}
}

func TestDecodeBounded(t *testing.T) {
	// A gzip bomb — 10 MB of zeros — must cap at MaxViewOutput.
	var b bytes.Buffer
	zw := gzip.NewWriter(&b)
	zw.Write(make([]byte, 10<<20))
	zw.Close()
	spans := collectSpans(ViewGzip, b.Bytes())
	if len(spans) != 1 || len(spans[0]) > MaxViewOutput {
		t.Fatalf("gzip output not bounded: %d spans, %d bytes", len(spans), len(spans[0]))
	}
	// A huge base64 run must cap too, and many runs must cap at
	// maxViewSpans.
	big := bytes.Repeat([]byte("QUFBQQ"), 100000)
	for _, view := range []View{ViewBase64, ViewHex} {
		total, n := 0, 0
		var vs ViewScratch
		VisitDecodedView(view, big, &vs, func(dec []byte) { total += len(dec); n++ })
		if total > MaxViewOutput {
			t.Errorf("%v: decoded %d bytes > MaxViewOutput", view, total)
		}
	}
	many := bytes.Repeat([]byte("41414141414141414141!"), 100)
	var vs ViewScratch
	n := 0
	VisitDecodedView(ViewHex, many, &vs, func([]byte) { n++ })
	if n > maxViewSpans {
		t.Errorf("hex emitted %d spans > maxViewSpans", n)
	}
}

func TestVisitContentViews(t *testing.T) {
	secret := "imei=356938035643809&aid=9774d56d682e549c"
	body := "p=" + base64.StdEncoding.EncodeToString([]byte(secret))
	p := Post("x.example", "/c").Body([]byte(body)).Build()

	var vs ViewScratch
	got := map[View][]string{}
	fields := 0
	p.VisitContentViews(&funcVisitor{
		field: func() { fields++ },
		view: func(v View, chunk []byte) {
			got[v] = append(got[v], string(chunk))
		},
	}, ViewBase64.Mask()|ViewHex.Mask(), &vs)

	if fields != 3 {
		t.Fatalf("fields = %d, want 3", fields)
	}
	joined := strings.Join(got[ViewBase64], "")
	if !strings.Contains(joined, secret) {
		t.Fatalf("base64 view spans missing secret: %q", got[ViewBase64])
	}
	if len(got[ViewHex]) != 0 {
		t.Fatalf("hex view emitted for non-hex content: %q", got[ViewHex])
	}

	// Zero mask must behave exactly like VisitContent: no view spans.
	got = map[View][]string{}
	p.VisitContentViews(&funcVisitor{
		field: func() {},
		view: func(v View, chunk []byte) {
			got[v] = append(got[v], string(chunk))
		},
	}, 0, &vs)
	if len(got) != 0 {
		t.Fatalf("zero mask emitted view spans: %v", got)
	}
}

// funcVisitor adapts closures to ViewVisitor; raw chunks are discarded,
// view chunks are routed with their view.
type funcVisitor struct {
	field  func()
	view   func(View, []byte)
	inView bool
	v      View
}

func (f *funcVisitor) Field() {
	f.inView = false
	f.field()
}
func (f *funcVisitor) ViewField(v View) {
	f.inView = true
	f.v = v
}
func (f *funcVisitor) Text(s string) {
	if f.inView {
		f.view(f.v, []byte(s))
	}
}
func (f *funcVisitor) Bytes(b []byte) {
	if f.inView {
		f.view(f.v, b)
	}
}

func TestParseViewRoundTrip(t *testing.T) {
	for v := View(0); v < NumViews; v++ {
		got, ok := ParseView(v.String())
		if !ok || got != v {
			t.Errorf("ParseView(%q) = %v, %v", v.String(), got, ok)
		}
	}
	if _, ok := ParseView("rot13"); ok {
		t.Error("unknown view accepted")
	}
	m := ViewMaskOf([]string{"base64", "gzip", "bogus"})
	if !m.Has(ViewBase64) || !m.Has(ViewGzip) || m.Has(ViewHex) {
		t.Errorf("ViewMaskOf mask = %b", m)
	}
}

// FuzzViewDecoders drives every decoder with arbitrary bytes: none may
// panic, and none may emit more than MaxViewOutput bytes per call.
func FuzzViewDecoders(f *testing.F) {
	f.Add([]byte("p=" + base64.StdEncoding.EncodeToString([]byte("imei=356938035643809"))))
	f.Add([]byte("p=" + hex.EncodeToString([]byte("imei=356938035643809"))))
	f.Add([]byte("p=imei%3D356938035643809%26x%3D1"))
	var gz bytes.Buffer
	zw := gzip.NewWriter(&gz)
	zw.Write([]byte("imei=356938035643809"))
	zw.Close()
	f.Add(gz.Bytes())
	f.Add([]byte{0x1f, 0x8b, 0x08, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0xff, 0x00})
	f.Add([]byte("===="))
	f.Add(bytes.Repeat([]byte("A"), 4096))

	f.Fuzz(func(t *testing.T, data []byte) {
		var vs ViewScratch
		for view := View(0); view < NumViews; view++ {
			total := 0
			VisitDecodedView(view, data, &vs, func(dec []byte) {
				total += len(dec)
				if len(dec) < minDecodedEmit {
					t.Fatalf("view %v emitted %d-byte span < minDecodedEmit", view, len(dec))
				}
			})
			if total > MaxViewOutput {
				t.Fatalf("view %v emitted %d bytes > MaxViewOutput", view, total)
			}
		}
	})
}
