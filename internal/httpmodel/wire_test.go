package httpmodel

import (
	"bytes"
	"strings"
	"testing"

	"leaksig/internal/ipaddr"
)

func TestWireRoundTripGet(t *testing.T) {
	p := samplePacket()
	raw := p.WireBytes()
	got, err := ParseWireBytes(raw, p.DstIP, p.DstPort)
	if err != nil {
		t.Fatalf("ParseWireBytes: %v", err)
	}
	if got.Method != p.Method || got.Path != p.Path || got.Proto != p.Proto || got.Host != p.Host {
		t.Errorf("round trip mismatch: %+v vs %+v", got, p)
	}
	if got.Cookie() != p.Cookie() {
		t.Errorf("cookie mismatch: %q vs %q", got.Cookie(), p.Cookie())
	}
	if got.DstIP != p.DstIP || got.DstPort != p.DstPort {
		t.Error("destination not preserved")
	}
}

func TestWireRoundTripPostBody(t *testing.T) {
	p := Post("api.example.jp", "/v1/events").
		Dest(ipaddr.MustParse("198.51.100.20"), 8080).
		Form("imei", "353918051234563", "os", "android").
		Build()
	raw := p.WireBytes()
	if !bytes.Contains(raw, []byte("Content-Length: ")) {
		t.Fatalf("wire form missing Content-Length:\n%s", raw)
	}
	got, err := ParseWireBytes(raw, p.DstIP, p.DstPort)
	if err != nil {
		t.Fatalf("ParseWireBytes: %v", err)
	}
	if !bytes.Equal(got.Body, p.Body) {
		t.Errorf("body mismatch: %q vs %q", got.Body, p.Body)
	}
}

func TestWireFormatShape(t *testing.T) {
	p := Get("example.com", "/x").Dest(1, 80).Header("Accept", "*/*").Build()
	raw := string(p.WireBytes())
	want := "GET /x HTTP/1.1\r\nHost: example.com\r\nAccept: */*\r\n\r\n"
	if raw != want {
		t.Errorf("wire =\n%q\nwant\n%q", raw, want)
	}
}

func TestParseWireLFOnly(t *testing.T) {
	raw := "GET /p HTTP/1.1\nHost: h.example\nUser-Agent: test\n\n"
	p, err := ParseWireBytes([]byte(raw), 9, 80)
	if err != nil {
		t.Fatalf("LF-only parse failed: %v", err)
	}
	if p.Host != "h.example" {
		t.Errorf("Host = %q", p.Host)
	}
}

func TestParseWireHostLifted(t *testing.T) {
	p, err := ParseWireBytes([]byte("GET / HTTP/1.1\r\nHost: a.example\r\nX-Y: z\r\n\r\n"), 1, 80)
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range p.Headers {
		if strings.EqualFold(h.Name, "Host") {
			t.Error("Host header not lifted out of Headers")
		}
	}
	if p.Host != "a.example" {
		t.Errorf("Host = %q", p.Host)
	}
}

func TestParseWireErrors(t *testing.T) {
	cases := []string{
		"",                                      // empty
		"GARBAGE\r\n\r\n",                       // bad request line
		"GET /\r\n\r\n",                         // two-field request line
		"GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", // bad header
		"GET / HTTP/1.1\r\nHost: h\r\nContent-Length: xx\r\n\r\n",     // bad CL
		"POST / HTTP/1.1\r\nHost: h\r\nContent-Length: 10\r\n\r\nabc", // short body
		"PUT / HTTP/1.1\r\nHost: h\r\n\r\n",                           // bad method (Validate)
		"GET relative HTTP/1.1\r\nHost: h\r\n\r\n",                    // bad path
		"GET / HTTP/1.1\r\n\r\n",                                      // no host
	}
	for _, raw := range cases {
		if _, err := ParseWireBytes([]byte(raw), 1, 80); err == nil {
			t.Errorf("ParseWireBytes(%q) succeeded, want error", raw)
		}
	}
}

func TestParseWireNegativeContentLength(t *testing.T) {
	raw := "POST / HTTP/1.1\r\nHost: h\r\nContent-Length: -5\r\n\r\n"
	if _, err := ParseWireBytes([]byte(raw), 1, 80); err == nil {
		t.Error("negative Content-Length accepted")
	}
}

func TestParseWirePreservesHeaderOrder(t *testing.T) {
	raw := "GET / HTTP/1.1\r\nHost: h\r\nB: 2\r\nA: 1\r\nB: 3\r\n\r\n"
	p, err := ParseWireBytes([]byte(raw), 1, 80)
	if err != nil {
		t.Fatal(err)
	}
	var names []string
	for _, h := range p.Headers {
		names = append(names, h.Name+"="+h.Value)
	}
	want := "B=2,A=1,B=3"
	if got := strings.Join(names, ","); got != want {
		t.Errorf("header order = %s, want %s", got, want)
	}
}

func TestWireRoundTripPropertyMany(t *testing.T) {
	builders := []*Builder{
		Get("admob.com", "/ads?id=1").Dest(100, 80),
		Post("flurry.com", "/aap.do").Dest(200, 443).BodyString("binary\x00payload\xff"),
		Get("x.jp", "/?").Dest(1, 80),
		Post("y.jp", "/p").Dest(2, 80).Cookie("a=b; c=d").BodyString(strings.Repeat("z", 4096)),
	}
	for i, b := range builders {
		p := b.Build()
		got, err := ParseWireBytes(p.WireBytes(), p.DstIP, p.DstPort)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if got.RequestLine() != p.RequestLine() {
			t.Errorf("case %d: request line %q vs %q", i, got.RequestLine(), p.RequestLine())
		}
		if !bytes.Equal(got.Body, p.Body) {
			t.Errorf("case %d: body mismatch", i)
		}
	}
}
