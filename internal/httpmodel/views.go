package httpmodel

// Decode views: transformed renderings of a packet's content fields that
// the matcher can scan in addition to the raw bytes, so signatures catch
// payloads an app base64/hex/URL-encodes or gzip-compresses before
// exfiltration. Views are opt-in per signature — decoding costs — and
// every decoder is bounded and panic-free on hostile input: output is
// capped at MaxViewOutput bytes per field per view across at most
// maxViewSpans spans, and a malformed encoding yields whatever prefix
// decoded cleanly rather than an error. Views are single-level: a view is
// decoded from the raw field only, never from another view's output.

import (
	"bytes"
	"compress/gzip"
	"encoding/base64"
	"encoding/hex"
	"strings"
)

// View identifies one content transformation.
type View uint8

const (
	ViewBase64 View = iota
	ViewHex
	ViewURL
	ViewGzip
	// NumViews bounds per-view arrays indexed by View.
	NumViews
)

// ViewMask is a bitmask of Views.
type ViewMask uint8

// Mask returns the single-view mask.
func (v View) Mask() ViewMask { return 1 << v }

// Has reports whether the mask includes v.
func (m ViewMask) Has(v View) bool { return m&v.Mask() != 0 }

// String returns the canonical wire name of the view.
func (v View) String() string {
	switch v {
	case ViewBase64:
		return "base64"
	case ViewHex:
		return "hex"
	case ViewURL:
		return "url"
	case ViewGzip:
		return "gzip"
	}
	return "view?"
}

// ParseView resolves a wire view name.
func ParseView(name string) (View, bool) {
	switch name {
	case "base64":
		return ViewBase64, true
	case "hex":
		return ViewHex, true
	case "url":
		return ViewURL, true
	case "gzip":
		return ViewGzip, true
	}
	return 0, false
}

// ViewMaskOf folds the named views into a mask, ignoring unknown names
// (an unknown view can never be scanned, so it simply contributes no
// bits; publish-time validation rejects it before it gets here).
func ViewMaskOf(names []string) ViewMask {
	var m ViewMask
	for _, n := range names {
		if v, ok := ParseView(n); ok {
			m |= v.Mask()
		}
	}
	return m
}

const (
	// MaxViewOutput caps the decoded bytes one field yields under one
	// view, no matter what the input claims (a gzip bomb decodes to at
	// most this much).
	MaxViewOutput = 64 << 10
	// maxViewSpans caps how many encoded spans of one field are decoded
	// under one view.
	maxViewSpans = 16
	// minEncodedSpan is the shortest base64/hex run worth decoding:
	// shorter runs are everywhere in plain text and would only buy
	// garbage spans.
	minEncodedSpan = 16
	// minDecodedEmit drops decoded spans too short to ever contain a
	// token worth matching.
	minDecodedEmit = 4
)

// ViewScratch holds the reusable buffers one decoding pass needs: the
// raw-field accumulator, the normalize and decode buffers, and a
// resettable gzip reader. A zero ViewScratch is ready to use; after
// warm-up, decoding through it allocates nothing.
type ViewScratch struct {
	field []byte // raw field accumulation for VisitContentViews
	norm  []byte // base64 normalization buffer
	dec   []byte // decode output buffer
	gzsrc bytes.Reader
	gz    *gzip.Reader
}

// ViewVisitor extends ContentVisitor with decoded-span delivery: after a
// field's raw chunks, each decoded span arrives as ViewField(v) followed
// by Bytes chunks. Every span is its own ViewField — spans are disjoint
// regions of the encoded field, so matcher state must not thread across
// them, exactly as it must not thread across fields.
type ViewVisitor interface {
	ContentVisitor
	// ViewField marks the start of one decoded span of view v.
	ViewField(v View)
}

// VisitContentViews streams the packet like VisitContent and, after each
// field's raw chunks, the field's decoded spans under every view in
// mask. With a zero mask it is exactly VisitContent.
func (p *Packet) VisitContentViews(v ViewVisitor, mask ViewMask, vs *ViewScratch) {
	if mask == 0 {
		p.VisitContent(v)
		return
	}
	v.Field()
	vs.field = vs.field[:0]
	vs.field = append(vs.field, p.Method...)
	vs.field = append(vs.field, ' ')
	vs.field = append(vs.field, p.Path...)
	vs.field = append(vs.field, ' ')
	vs.field = append(vs.field, p.Proto...)
	v.Text(p.Method)
	v.Text(" ")
	v.Text(p.Path)
	v.Text(" ")
	v.Text(p.Proto)
	visitFieldViews(v, mask, vs.field, vs)

	v.Field()
	vs.field = vs.field[:0]
	first := true
	for i := range p.Headers {
		if strings.EqualFold(p.Headers[i].Name, "Cookie") {
			if !first {
				v.Text("; ")
				vs.field = append(vs.field, "; "...)
			}
			v.Text(p.Headers[i].Value)
			vs.field = append(vs.field, p.Headers[i].Value...)
			first = false
		}
	}
	visitFieldViews(v, mask, vs.field, vs)

	v.Field()
	v.Bytes(p.Body)
	visitFieldViews(v, mask, p.Body, vs)
}

// visitFieldViews delivers one raw field's decoded spans for every view
// in mask.
func visitFieldViews(v ViewVisitor, mask ViewMask, field []byte, vs *ViewScratch) {
	if len(field) == 0 {
		return
	}
	for view := View(0); view < NumViews; view++ {
		if !mask.Has(view) {
			continue
		}
		VisitDecodedView(view, field, vs, func(dec []byte) {
			v.ViewField(view)
			v.Bytes(dec)
		})
	}
}

// VisitDecodedView streams every decoded span src yields under view to
// emit. It never panics: hostile input yields at most MaxViewOutput
// bytes across at most maxViewSpans spans, and malformed encodings emit
// the prefix that decoded cleanly (or nothing). Emitted slices alias
// vs's buffers and are valid only until the next decode through vs.
func VisitDecodedView(view View, src []byte, vs *ViewScratch, emit func([]byte)) {
	switch view {
	case ViewBase64:
		decodeBase64Spans(src, vs, emit)
	case ViewHex:
		decodeHexSpans(src, vs, emit)
	case ViewURL:
		decodeURLField(src, vs, emit)
	case ViewGzip:
		decodeGzipField(src, vs, emit)
	}
}

// isBase64Byte covers the standard and URL-safe alphabets. Padding '='
// is deliberately NOT alphabet: valid base64 carries '=' only as
// trailing padding, so treating it as a run terminator cleanly separates
// a blob from a "key=" prefix that would otherwise shift its phase.
func isBase64Byte(c byte) bool {
	return c >= 'A' && c <= 'Z' || c >= 'a' && c <= 'z' || c >= '0' && c <= '9' ||
		c == '+' || c == '/' || c == '-' || c == '_'
}

func isHexByte(c byte) bool {
	return c >= '0' && c <= '9' || c >= 'a' && c <= 'f' || c >= 'A' && c <= 'F'
}

// decodeBase64Spans finds maximal runs of base64-alphabet bytes of at
// least minEncodedSpan characters and decodes each: URL-safe characters
// are normalized to the standard alphabet, padding is dropped, and a
// trailing character that cannot start a final quantum is trimmed, so a
// run embedded in surrounding text still decodes its valid prefix.
func decodeBase64Spans(src []byte, vs *ViewScratch, emit func([]byte)) {
	budget := MaxViewOutput
	spans := 0
	for i := 0; i < len(src) && spans < maxViewSpans && budget >= minDecodedEmit; {
		if !isBase64Byte(src[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(src) && isBase64Byte(src[j]) {
			j++
		}
		run := src[i:j]
		i = j
		if len(run) < minEncodedSpan {
			continue
		}
		vs.norm = vs.norm[:0]
		for _, c := range run {
			switch c {
			case '-':
				c = '+'
			case '_':
				c = '/'
			}
			vs.norm = append(vs.norm, c)
		}
		// Cap the encoded length so the decoded output fits the budget,
		// then trim to a decodable length (len%4 == 1 is impossible).
		n := len(vs.norm)
		if max := (budget / 3) * 4; n > max {
			n = max
		}
		if n%4 == 1 {
			n--
		}
		if n < minEncodedSpan {
			continue
		}
		need := base64.RawStdEncoding.DecodedLen(n)
		if cap(vs.dec) < need {
			vs.dec = make([]byte, need)
		}
		m, err := base64.RawStdEncoding.Decode(vs.dec[:need], vs.norm[:n])
		if m < minDecodedEmit {
			_ = err // malformed tail: whatever prefix decoded is kept
			continue
		}
		budget -= m
		spans++
		emit(vs.dec[:m])
	}
}

// decodeHexSpans finds maximal runs of hex digits of at least
// minEncodedSpan characters, trims each to an even length, and decodes.
func decodeHexSpans(src []byte, vs *ViewScratch, emit func([]byte)) {
	budget := MaxViewOutput
	spans := 0
	for i := 0; i < len(src) && spans < maxViewSpans && budget >= minDecodedEmit; {
		if !isHexByte(src[i]) {
			i++
			continue
		}
		j := i + 1
		for j < len(src) && isHexByte(src[j]) {
			j++
		}
		run := src[i:j]
		i = j
		if len(run) < minEncodedSpan {
			continue
		}
		n := len(run) &^ 1
		if max := budget * 2; n > max {
			n = max &^ 1
		}
		need := n / 2
		if cap(vs.dec) < need {
			vs.dec = make([]byte, need)
		}
		m, err := hex.Decode(vs.dec[:need], run[:n])
		if m < minDecodedEmit {
			_ = err
			continue
		}
		budget -= m
		spans++
		emit(vs.dec[:m])
	}
}

// decodeURLField percent-decodes the whole field ('+' becomes a space,
// invalid escapes pass through literally) and emits it as one span when
// any byte actually changed.
func decodeURLField(src []byte, vs *ViewScratch, emit func([]byte)) {
	if bytes.IndexByte(src, '%') < 0 && bytes.IndexByte(src, '+') < 0 {
		return
	}
	vs.dec = vs.dec[:0]
	changed := false
	for i := 0; i < len(src) && len(vs.dec) < MaxViewOutput; i++ {
		c := src[i]
		switch {
		case c == '+':
			vs.dec = append(vs.dec, ' ')
			changed = true
		case c == '%' && i+2 < len(src) && isHexByte(src[i+1]) && isHexByte(src[i+2]):
			var b [1]byte
			hex.Decode(b[:], src[i+1:i+3])
			vs.dec = append(vs.dec, b[0])
			changed = true
			i += 2
		default:
			vs.dec = append(vs.dec, c)
		}
	}
	if changed && len(vs.dec) >= minDecodedEmit {
		emit(vs.dec)
	}
}

// decodeGzipField inflates a field that starts with the gzip magic,
// emitting at most MaxViewOutput decompressed bytes. A corrupt or
// truncated stream emits whatever prefix inflated cleanly.
func decodeGzipField(src []byte, vs *ViewScratch, emit func([]byte)) {
	if len(src) < 10 || src[0] != 0x1f || src[1] != 0x8b {
		return
	}
	vs.gzsrc.Reset(src)
	if vs.gz == nil {
		gz, err := gzip.NewReader(&vs.gzsrc)
		if err != nil {
			return
		}
		vs.gz = gz
	} else if err := vs.gz.Reset(&vs.gzsrc); err != nil {
		return
	}
	vs.gz.Multistream(false)
	if cap(vs.dec) < MaxViewOutput {
		vs.dec = make([]byte, MaxViewOutput)
	}
	buf := vs.dec[:MaxViewOutput]
	total := 0
	for total < len(buf) {
		n, err := vs.gz.Read(buf[total:])
		total += n
		if err != nil {
			break
		}
	}
	if total >= minDecodedEmit {
		emit(buf[:total])
	}
}
