package ncd

import (
	"bytes"
	"compress/flate"
	"math/rand"
	"sync"
	"testing"
)

func TestFlateCompressedLenMatchesManual(t *testing.T) {
	f := Default()
	data := bytes.Repeat([]byte("abcabc"), 50)
	var buf bytes.Buffer
	w, _ := flate.NewWriter(&buf, flate.BestCompression)
	w.Write(data)
	w.Close()
	if got := f.CompressedLen(data); got != buf.Len() {
		t.Errorf("CompressedLen = %d, manual flate = %d", got, buf.Len())
	}
}

func TestCompressedLen2EqualsConcat(t *testing.T) {
	f := Default()
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 50; i++ {
		a := make([]byte, rng.Intn(300))
		b := make([]byte, rng.Intn(300))
		rng.Read(a)
		rng.Read(b)
		concat := append(append([]byte{}, a...), b...)
		if got, want := f.CompressedLen2(a, b), f.CompressedLen(concat); got != want {
			t.Fatalf("CompressedLen2 = %d, CompressedLen(concat) = %d", got, want)
		}
	}
}

func TestDistanceIdenticalIsSmall(t *testing.T) {
	f := Default()
	x := bytes.Repeat([]byte("GET /ad?udid=f3a9c1d2&zone=7 HTTP/1.1\r\n"), 4)
	d := Distance(f, x, x)
	if d < 0 || d > 0.35 {
		t.Errorf("NCD(x, x) = %v, want near 0", d)
	}
}

func TestDistanceRandomIsLarge(t *testing.T) {
	f := Default()
	rng := rand.New(rand.NewSource(9))
	x := make([]byte, 512)
	y := make([]byte, 512)
	rng.Read(x)
	rng.Read(y)
	d := Distance(f, x, y)
	if d < 0.7 {
		t.Errorf("NCD(random, random) = %v, want > 0.7", d)
	}
}

func TestDistanceOrdering(t *testing.T) {
	// Similar strings must score lower than dissimilar ones.
	f := Default()
	base := []byte("GET /track/v1?udid=8a6b1c9f33d200e7&carrier=docomo&os=android2.3 HTTP/1.1")
	near := []byte("GET /track/v1?udid=8a6b1c9f33d200e7&carrier=docomo&os=android4.0 HTTP/1.1")
	rng := rand.New(rand.NewSource(1))
	far := make([]byte, len(base))
	rng.Read(far)
	dNear := Distance(f, base, near)
	dFar := Distance(f, base, far)
	if dNear >= dFar {
		t.Errorf("NCD(base, near) = %v should be < NCD(base, far) = %v", dNear, dFar)
	}
}

func TestDistanceSymmetryApprox(t *testing.T) {
	// NCD is symmetric up to compressor asymmetry on concatenation order;
	// for flate on textual inputs the difference should be tiny.
	f := Default()
	x := []byte("udid=8a6b1c9f33d200e7&app=com.example.game&zone=12")
	y := []byte("udid=8a6b1c9f33d200e7&app=com.example.tool&zone=99")
	dxy := Distance(f, x, y)
	dyx := Distance(f, y, x)
	diff := dxy - dyx
	if diff < 0 {
		diff = -diff
	}
	if diff > 0.1 {
		t.Errorf("NCD asymmetry too large: d(x,y)=%v d(y,x)=%v", dxy, dyx)
	}
}

func TestDistanceEmptyInputs(t *testing.T) {
	f := Default()
	if d := Distance(f, nil, nil); d != 0 {
		t.Errorf("NCD(empty, empty) = %v, want 0", d)
	}
	// One empty side: distance should be high (shares nothing).
	d := Distance(f, nil, bytes.Repeat([]byte("abcdefgh"), 32))
	if d <= 0.5 {
		t.Errorf("NCD(empty, x) = %v, want > 0.5", d)
	}
}

func TestDistanceNonNegative(t *testing.T) {
	f := Default()
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 100; i++ {
		a := make([]byte, rng.Intn(200))
		b := make([]byte, rng.Intn(200))
		rng.Read(a)
		rng.Read(b)
		if d := Distance(f, a, b); d < 0 {
			t.Fatalf("NCD < 0: %v", d)
		}
	}
}

func TestCacheAgreesAndMemoizes(t *testing.T) {
	f := Default()
	c := NewCache(f)
	x := []byte("GET /a?b=c HTTP/1.1")
	y := []byte("GET /a?b=d HTTP/1.1")
	if got, want := Distance(c, x, y), Distance(f, x, y); got != want {
		t.Errorf("cached distance %v != direct %v", got, want)
	}
	if c.Len() != 2 {
		t.Errorf("cache entries = %d, want 2", c.Len())
	}
	// Second evaluation should not add entries.
	Distance(c, x, y)
	if c.Len() != 2 {
		t.Errorf("cache entries after repeat = %d, want 2", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache(Default())
	inputs := make([][]byte, 16)
	rng := rand.New(rand.NewSource(2))
	for i := range inputs {
		inputs[i] = make([]byte, 64)
		rng.Read(inputs[i])
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			r := rand.New(rand.NewSource(seed))
			for i := 0; i < 200; i++ {
				a := inputs[r.Intn(len(inputs))]
				b := inputs[r.Intn(len(inputs))]
				if d := Distance(c, a, b); d < 0 {
					t.Errorf("negative distance %v", d)
				}
			}
		}(int64(g))
	}
	wg.Wait()
	if c.Len() != len(inputs) {
		t.Errorf("cache entries = %d, want %d", c.Len(), len(inputs))
	}
}

func TestNewFlateInvalidLevelPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewFlate(99) did not panic")
		}
	}()
	NewFlate(99)
}

func BenchmarkCompressedLen256(b *testing.B) {
	f := Default()
	data := bytes.Repeat([]byte("GET /ad?udid=f3a9c1d2&zone=7\r\n"), 9)[:256]
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f.CompressedLen(data)
	}
}

func BenchmarkDistanceCached(b *testing.B) {
	c := NewCache(Default())
	x := bytes.Repeat([]byte("GET /ad?udid=f3a9c1d2&zone=7\r\n"), 6)
	y := bytes.Repeat([]byte("GET /ad?udid=99aa88bb&zone=9\r\n"), 6)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Distance(c, x, y)
	}
}
