// Package ncd implements the normalized compression distance (NCD) used by
// the HTTP packet content distance (§IV-C of the paper).
//
// For strings x and y the paper defines
//
//	ncd(x, y) = (C(xy) − min(C(x), C(y))) / max(C(x), C(y))
//
// where C(s) is the length of the compressed form of s. NCD approximates
// the normalized information distance of Kolmogorov complexity theory
// (Cilibrasi [15]): similar strings compress well together, so the
// concatenation adds little beyond the larger of the two parts.
//
// The package exposes a Compressor interface, a DEFLATE implementation
// backed by compress/flate (the only stdlib general-purpose compressor),
// and a memoizing wrapper that caches C(x) for repeated pairwise work such
// as distance-matrix construction.
package ncd

import (
	"compress/flate"
	"sync"
)

// Compressor measures the compressed length of a byte string. Implementations
// must be safe for concurrent use.
type Compressor interface {
	// CompressedLen returns the length in bytes of the compressed form of p.
	CompressedLen(p []byte) int
	// CompressedLen2 returns the compressed length of the concatenation
	// p followed by q, without materializing the concatenation.
	CompressedLen2(p, q []byte) int
}

// countingWriter counts bytes written and discards them.
type countingWriter int

func (c *countingWriter) Write(p []byte) (int, error) {
	*c += countingWriter(len(p))
	return len(p), nil
}

// Flate is a Compressor backed by compress/flate. The zero value is not
// usable; construct with NewFlate.
type Flate struct {
	level int
	pool  sync.Pool // of *flateState
}

type flateState struct {
	w *flate.Writer
	n countingWriter
}

// NewFlate returns a DEFLATE compressor at the given level
// (flate.BestSpeed .. flate.BestCompression). The paper does not name its
// compressor; DEFLATE at BestCompression is the conventional NCD choice and
// the repository default.
func NewFlate(level int) *Flate {
	f := &Flate{level: level}
	f.pool.New = func() any {
		st := &flateState{}
		w, err := flate.NewWriter(&st.n, level)
		if err != nil {
			// Only possible for an invalid level; validated below.
			panic(err)
		}
		st.w = w
		return st
	}
	// Validate the level eagerly so NewFlate panics instead of first use.
	st := f.pool.Get().(*flateState)
	f.pool.Put(st)
	return f
}

// Default returns the repository's default compressor: DEFLATE at
// BestCompression.
func Default() *Flate { return NewFlate(flate.BestCompression) }

// CompressedLen implements Compressor.
func (f *Flate) CompressedLen(p []byte) int {
	return f.CompressedLen2(p, nil)
}

// CompressedLen2 implements Compressor.
func (f *Flate) CompressedLen2(p, q []byte) int {
	st := f.pool.Get().(*flateState)
	st.n = 0
	st.w.Reset(&st.n)
	if len(p) > 0 {
		st.w.Write(p) // flate writes to countingWriter cannot fail
	}
	if len(q) > 0 {
		st.w.Write(q)
	}
	st.w.Close()
	n := int(st.n)
	f.pool.Put(st)
	return n
}

// Distance returns the normalized compression distance between x and y
// under compressor c, following the paper's formula. The result is
// approximately in [0, 1]; real compressors can exceed 1 slightly. Two empty
// strings have distance 0.
func Distance(c Compressor, x, y []byte) float64 {
	if len(x) == 0 && len(y) == 0 {
		return 0
	}
	cx := c.CompressedLen(x)
	cy := c.CompressedLen(y)
	cxy := c.CompressedLen2(x, y)
	mn, mx := cx, cy
	if mn > mx {
		mn, mx = mx, mn
	}
	if mx == 0 {
		return 0
	}
	d := float64(cxy-mn) / float64(mx)
	if d < 0 {
		d = 0
	}
	return d
}

// Cache memoizes single-string compressed lengths in front of an underlying
// compressor. Concatenation lengths are not cached (each pair is visited
// once during matrix construction), but the two single-string terms of every
// NCD evaluation hit the cache after first use. Cache is safe for
// concurrent use.
type Cache struct {
	c  Compressor
	mu sync.RWMutex
	m  map[string]int
}

// NewCache wraps c with a memoizing layer.
func NewCache(c Compressor) *Cache {
	return &Cache{c: c, m: make(map[string]int)}
}

// CompressedLen implements Compressor with memoization.
func (k *Cache) CompressedLen(p []byte) int {
	key := string(p)
	k.mu.RLock()
	n, ok := k.m[key]
	k.mu.RUnlock()
	if ok {
		return n
	}
	n = k.c.CompressedLen(p)
	k.mu.Lock()
	k.m[key] = n
	k.mu.Unlock()
	return n
}

// CompressedLen2 implements Compressor; concatenations are not memoized.
func (k *Cache) CompressedLen2(p, q []byte) int {
	return k.c.CompressedLen2(p, q)
}

// Len reports the number of memoized entries.
func (k *Cache) Len() int {
	k.mu.RLock()
	defer k.mu.RUnlock()
	return len(k.m)
}
