// Package stats provides the small statistical summaries the evaluation
// harness reports: frequency distributions, cumulative distributions
// (Figure 2 of the paper is a cumulative frequency distribution of HTTP
// host destinations per application), and scalar summaries.
package stats

import (
	"fmt"
	"sort"
)

// Summary holds scalar statistics over a sample of integers.
type Summary struct {
	Count int
	Min   int
	Max   int
	Mean  float64
}

// Summarize computes Count/Min/Max/Mean of xs. An empty sample returns the
// zero Summary.
func Summarize(xs []int) Summary {
	if len(xs) == 0 {
		return Summary{}
	}
	s := Summary{Count: len(xs), Min: xs[0], Max: xs[0]}
	total := 0
	for _, x := range xs {
		if x < s.Min {
			s.Min = x
		}
		if x > s.Max {
			s.Max = x
		}
		total += x
	}
	s.Mean = float64(total) / float64(len(xs))
	return s
}

// CDF is an empirical cumulative distribution over integer values.
type CDF struct {
	n      int
	values []int // sorted
}

// NewCDF builds the empirical CDF of xs.
func NewCDF(xs []int) *CDF {
	vs := append([]int(nil), xs...)
	sort.Ints(vs)
	return &CDF{n: len(vs), values: vs}
}

// N returns the sample size.
func (c *CDF) N() int { return c.n }

// AtMost returns the number of samples with value <= x.
func (c *CDF) AtMost(x int) int {
	return sort.SearchInts(c.values, x+1)
}

// FractionAtMost returns the fraction of samples with value <= x in [0, 1].
// An empty CDF returns 0.
func (c *CDF) FractionAtMost(x int) float64 {
	if c.n == 0 {
		return 0
	}
	return float64(c.AtMost(x)) / float64(c.n)
}

// Quantile returns the smallest value v such that at least q of the mass is
// <= v, for q in (0, 1]. It panics on an empty CDF or out-of-range q.
func (c *CDF) Quantile(q float64) int {
	if c.n == 0 {
		panic("stats: Quantile of empty CDF")
	}
	if q <= 0 || q > 1 {
		panic(fmt.Sprintf("stats: Quantile(%v) out of range", q))
	}
	idx := int(q*float64(c.n)+0.999999) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= c.n {
		idx = c.n - 1
	}
	return c.values[idx]
}

// Points returns the CDF as (value, cumulative fraction) pairs at each
// distinct value, suitable for plotting Figure 2.
func (c *CDF) Points() []Point {
	var out []Point
	for i := 0; i < c.n; {
		v := c.values[i]
		j := i
		for j < c.n && c.values[j] == v {
			j++
		}
		out = append(out, Point{Value: v, Fraction: float64(j) / float64(c.n)})
		i = j
	}
	return out
}

// Point is one step of an empirical CDF.
type Point struct {
	Value    int
	Fraction float64
}

// Freq counts occurrences of each key.
type Freq[K comparable] map[K]int

// NewFreq returns an empty frequency counter.
func NewFreq[K comparable]() Freq[K] { return make(Freq[K]) }

// Add increments the count for k.
func (f Freq[K]) Add(k K) { f[k]++ }

// AddN increments the count for k by n.
func (f Freq[K]) AddN(k K, n int) { f[k] += n }

// Total returns the sum of all counts.
func (f Freq[K]) Total() int {
	t := 0
	for _, n := range f {
		t += n
	}
	return t
}

// Pair is a key with its count.
type Pair[K comparable] struct {
	Key   K
	Count int
}

// SortedByCount returns pairs in descending count order; ties are resolved
// by the caller-provided less function on keys for determinism.
func (f Freq[K]) SortedByCount(keyLess func(a, b K) bool) []Pair[K] {
	out := make([]Pair[K], 0, len(f))
	for k, n := range f {
		out = append(out, Pair[K]{Key: k, Count: n})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		return keyLess(out[i].Key, out[j].Key)
	})
	return out
}
