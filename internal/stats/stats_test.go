package stats

import (
	"math/rand"
	"testing"
)

func TestSummarize(t *testing.T) {
	s := Summarize([]int{4, 1, 7, 2})
	if s.Count != 4 || s.Min != 1 || s.Max != 7 || s.Mean != 3.5 {
		t.Errorf("Summarize = %+v", s)
	}
	if z := Summarize(nil); z != (Summary{}) {
		t.Errorf("Summarize(nil) = %+v", z)
	}
}

func TestCDFBasics(t *testing.T) {
	c := NewCDF([]int{1, 1, 2, 5, 10})
	if c.N() != 5 {
		t.Fatalf("N = %d", c.N())
	}
	cases := []struct {
		x    int
		want int
	}{
		{0, 0}, {1, 2}, {2, 3}, {4, 3}, {5, 4}, {10, 5}, {100, 5},
	}
	for _, cse := range cases {
		if got := c.AtMost(cse.x); got != cse.want {
			t.Errorf("AtMost(%d) = %d, want %d", cse.x, got, cse.want)
		}
	}
	if got := c.FractionAtMost(2); got != 0.6 {
		t.Errorf("FractionAtMost(2) = %v", got)
	}
	if got := NewCDF(nil).FractionAtMost(3); got != 0 {
		t.Errorf("empty FractionAtMost = %v", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c := NewCDF([]int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10})
	if got := c.Quantile(0.5); got != 5 {
		t.Errorf("Quantile(0.5) = %d", got)
	}
	if got := c.Quantile(1.0); got != 10 {
		t.Errorf("Quantile(1.0) = %d", got)
	}
	if got := c.Quantile(0.01); got != 1 {
		t.Errorf("Quantile(0.01) = %d", got)
	}
}

func TestCDFQuantilePanics(t *testing.T) {
	for _, q := range []float64{0, -1, 1.5} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Quantile(%v) did not panic", q)
				}
			}()
			NewCDF([]int{1}).Quantile(q)
		}()
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Quantile on empty CDF did not panic")
			}
		}()
		NewCDF(nil).Quantile(0.5)
	}()
}

func TestCDFPoints(t *testing.T) {
	c := NewCDF([]int{3, 1, 3, 2})
	pts := c.Points()
	want := []Point{{1, 0.25}, {2, 0.5}, {3, 1.0}}
	if len(pts) != len(want) {
		t.Fatalf("Points = %v", pts)
	}
	for i := range want {
		if pts[i] != want[i] {
			t.Errorf("Points[%d] = %v, want %v", i, pts[i], want[i])
		}
	}
}

func TestCDFMonotonic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	xs := make([]int, 200)
	for i := range xs {
		xs[i] = rng.Intn(50)
	}
	c := NewCDF(xs)
	prev := 0.0
	for x := -1; x <= 51; x++ {
		f := c.FractionAtMost(x)
		if f < prev {
			t.Fatalf("CDF not monotonic at %d: %v < %v", x, f, prev)
		}
		prev = f
	}
	if c.FractionAtMost(51) != 1.0 {
		t.Error("CDF does not reach 1")
	}
}

func TestFreq(t *testing.T) {
	f := NewFreq[string]()
	f.Add("a")
	f.Add("b")
	f.Add("a")
	f.AddN("c", 5)
	if f.Total() != 8 {
		t.Errorf("Total = %d", f.Total())
	}
	pairs := f.SortedByCount(func(a, b string) bool { return a < b })
	if pairs[0].Key != "c" || pairs[0].Count != 5 {
		t.Errorf("pairs[0] = %+v", pairs[0])
	}
	if pairs[1].Key != "a" || pairs[2].Key != "b" {
		t.Errorf("tie-break order wrong: %+v", pairs)
	}
}

func TestFreqTieBreakDeterministic(t *testing.T) {
	f := NewFreq[string]()
	for _, k := range []string{"z", "y", "x"} {
		f.Add(k)
	}
	for i := 0; i < 10; i++ {
		pairs := f.SortedByCount(func(a, b string) bool { return a < b })
		if pairs[0].Key != "x" || pairs[1].Key != "y" || pairs[2].Key != "z" {
			t.Fatalf("non-deterministic tie break: %+v", pairs)
		}
	}
}
