package signature

import (
	"sort"
	"strings"
	"sync"
	"testing"

	"leaksig/internal/httpmodel"
)

// legacyKey is the pre-kind key algorithm, frozen here verbatim: host
// suffix, NUL, sorted tokens NUL-joined. View-less conjunction keys must
// never drift from it — catalog fingerprints of every set published
// before kinds existed depend on it.
func legacyKey(s *Signature) string {
	sorted := append([]string(nil), s.Tokens...)
	sort.Strings(sorted)
	return s.HostSuffix + "\x00" + strings.Join(sorted, "\x00")
}

func TestKeyStability(t *testing.T) {
	sigs := []*Signature{
		{Tokens: []string{"zzz", "aaa"}},
		{Tokens: []string{"imei=1"}, HostSuffix: "ads.example"},
		{Kind: KindConjunction, Tokens: []string{"b", "a"}},
	}
	for i, s := range sigs {
		if got, want := s.Key(), legacyKey(s); got != want {
			t.Errorf("sig %d: key %q, legacy algorithm %q", i, got, want)
		}
	}
	// Kinded and viewed keys must NOT collide with legacy keys for the
	// same tokens, and subsequence keys must be order-sensitive.
	base := &Signature{Tokens: []string{"a", "b"}}
	sub := &Signature{Kind: KindSubsequence, Tokens: []string{"a", "b"}}
	subRev := &Signature{Kind: KindSubsequence, Tokens: []string{"b", "a"}}
	viewed := &Signature{Tokens: []string{"a", "b"}, Views: []string{"hex", "base64"}}
	keys := map[string]string{
		base.Key():   "conjunction",
		sub.Key():    "subsequence",
		subRev.Key(): "subsequence reversed",
		viewed.Key(): "viewed conjunction",
	}
	if len(keys) != 4 {
		t.Errorf("kinded/viewed keys collide: %v", keys)
	}
	// Conjunction keys ignore token order; view order is canonicalized.
	if (&Signature{Tokens: []string{"b", "a"}}).Key() != base.Key() {
		t.Error("conjunction key is order-sensitive")
	}
	v2 := &Signature{Tokens: []string{"a", "b"}, Views: []string{"base64", "hex"}}
	if v2.Key() != viewed.Key() {
		t.Error("view order changed the key")
	}
}

func TestEffectiveKindAndValidate(t *testing.T) {
	if k := (&Signature{}).EffectiveKind(); k != KindConjunction {
		t.Errorf("absent kind resolves to %q", k)
	}
	if k := (&Signature{Kind: KindSubsequence}).EffectiveKind(); k != KindSubsequence {
		t.Errorf("subsequence kind resolves to %q", k)
	}
	ok := &Set{Signatures: []*Signature{
		{Tokens: []string{"a"}},
		{Kind: KindConjunction, Tokens: []string{"a"}},
		{Kind: KindSubsequence, Tokens: []string{"a"}, Views: KnownViews()},
	}}
	if err := ok.Validate(); err != nil {
		t.Errorf("valid set rejected: %v", err)
	}
	badKind := &Set{Signatures: []*Signature{{ID: 7, Kind: "regex", Tokens: []string{"a"}}}}
	if err := badKind.Validate(); err == nil || !strings.Contains(err.Error(), "kind") {
		t.Errorf("unknown kind accepted: %v", err)
	}
	badView := &Set{Signatures: []*Signature{{Tokens: []string{"a"}, Views: []string{"rot13"}}}}
	if err := badView.Validate(); err == nil || !strings.Contains(err.Error(), "view") {
		t.Errorf("unknown view accepted: %v", err)
	}
	for _, v := range KnownViews() {
		if !ValidViewName(v) {
			t.Errorf("KnownViews lists invalid view %q", v)
		}
	}
}

func TestMatchesOrdered(t *testing.T) {
	content := []byte("GET /a?imei=123&aid=456 HTTP/1.1\n\nsess=789")
	cases := []struct {
		toks []string
		want bool
	}{
		{[]string{"imei=123", "aid=456"}, true},
		{[]string{"aid=456", "imei=123"}, false}, // order matters
		{[]string{"imei=123", "imei=123"}, false},
		{[]string{"GET", "sess=789"}, true},
		{[]string{"absent"}, false},
		{nil, false},
	}
	for _, c := range cases {
		if got := MatchesOrdered(c.toks, content); got != c.want {
			t.Errorf("MatchesOrdered(%q) = %v, want %v", c.toks, got, c.want)
		}
	}
	// Overlapping occurrences: greedy must still find ["ab","ba"] in "aba"? No —
	// tokens consume their bytes, so "aba" holds "ab" then only "a".
	if MatchesOrdered([]string{"ab", "ba"}, []byte("aba")) {
		t.Error("overlapping tokens double-counted")
	}
	if !MatchesOrdered([]string{"ab", "ba"}, []byte("abba")) {
		t.Error("adjacent tokens missed")
	}
}

func TestSignatureMatchesContentByKind(t *testing.T) {
	content := []byte("x aid=456 y imei=123 z")
	conj := &Signature{Tokens: []string{"imei=123", "aid=456"}}
	if !conj.MatchesContent(content) {
		t.Error("conjunction should ignore order")
	}
	sub := &Signature{Kind: KindSubsequence, Tokens: []string{"imei=123", "aid=456"}}
	if sub.MatchesContent(content) {
		t.Error("subsequence should require order")
	}
	sub2 := &Signature{Kind: KindSubsequence, Tokens: []string{"aid=456", "imei=123"}}
	if !sub2.MatchesContent(content) {
		t.Error("ordered subsequence should match")
	}
	if (&Signature{Kind: KindSubsequence}).MatchesContent(content) {
		t.Error("token-less signature matched")
	}
}

func TestAsKinded(t *testing.T) {
	src := &SubsequenceSignature{
		ID: 3, Tokens: []string{"b", "a"}, HostSuffix: "x.example", ClusterSize: 5,
	}
	k := src.AsKinded()
	if k.Kind != KindSubsequence || k.ID != 3 || k.HostSuffix != "x.example" ||
		k.ClusterSize != 5 || strings.Join(k.Tokens, ",") != "b,a" {
		t.Fatalf("AsKinded lost fields: %+v", k)
	}
	k.Tokens[0] = "mutated"
	if src.Tokens[0] != "b" {
		t.Error("AsKinded aliases the source token slice")
	}
}

// TestSubsequenceSetConcurrentMatches exercises one SubsequenceSet (and
// its kinded promotions) from many goroutines under -race: matching is
// read-only and must be safe to share.
func TestSubsequenceSetConcurrentMatches(t *testing.T) {
	set := &SubsequenceSet{Signatures: []*SubsequenceSignature{
		{ID: 0, Tokens: []string{"imei=123", "aid=456"}},
		{ID: 1, Tokens: []string{"sess="}, HostSuffix: "ads.example"},
	}}
	mk := func(host, path string) *httpmodel.Packet {
		return &httpmodel.Packet{Method: "GET", Host: host, Path: path, Proto: "HTTP/1.1"}
	}
	pkts := []*httpmodel.Packet{
		mk("x.ads.example", "/a?imei=123&aid=456"),
		mk("x.ads.example", "/a?aid=456&imei=123"),
		mk("x.ads.example", "/a?sess=1"),
		mk("other.example", "/a?sess=1"),
	}
	want := []bool{true, false, true, false}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for iter := 0; iter < 500; iter++ {
				for i, p := range pkts {
					if got := set.Matches(p); got != want[i] {
						t.Errorf("packet %d: Matches=%v want %v", i, got, want[i])
						return
					}
					kinded := set.Signatures[i%2].AsKinded()
					_ = kinded.MatchesContent(p.Content())
				}
			}
		}()
	}
	wg.Wait()
}
