package signature

// Token-subsequence signatures — Polygraph's [14] second signature class,
// included alongside the Bayes signature as part of the paper's §VI
// future-work direction. A token-subsequence signature is an ordered token
// list; a packet matches when every token occurs in order (gaps allowed),
// which is stricter than a conjunction (order matters) but still robust to
// varying gap contents.

import (
	"bytes"
	"strings"

	"leaksig/internal/httpmodel"
)

// SubsequenceSignature is one ordered token sequence.
type SubsequenceSignature struct {
	ID          int      `json:"id"`
	Tokens      []string `json:"tokens"` // must occur in this order
	HostSuffix  string   `json:"host_suffix,omitempty"`
	ClusterSize int      `json:"cluster_size"`
}

// MatchesContent reports whether the tokens occur in order within content.
func (s *SubsequenceSignature) MatchesContent(content []byte) bool {
	if len(s.Tokens) == 0 {
		return false
	}
	pos := 0
	for _, tok := range s.Tokens {
		idx := bytes.Index(content[pos:], []byte(tok))
		if idx < 0 {
			return false
		}
		pos += idx + len(tok)
	}
	return true
}

// Matches reports whether the packet satisfies the signature, including the
// optional destination constraint.
func (s *SubsequenceSignature) Matches(p *httpmodel.Packet) bool {
	if !HostMatchesSuffix(p.Host, s.HostSuffix) {
		return false
	}
	return s.MatchesContent(p.Content())
}

// Key returns a canonical identity (order-sensitive, unlike conjunction
// keys).
func (s *SubsequenceSignature) Key() string {
	return s.HostSuffix + "\x00" + strings.Join(s.Tokens, "\x00")
}

// SubsequenceSet is an ordered collection of subsequence signatures.
type SubsequenceSet struct {
	Signatures   []*SubsequenceSignature `json:"signatures"`
	TrainingSize int                     `json:"training_size"`
}

// Len returns the number of signatures.
func (s *SubsequenceSet) Len() int { return len(s.Signatures) }

// Matches reports whether any signature matches the packet.
func (s *SubsequenceSet) Matches(p *httpmodel.Packet) bool {
	content := p.Content()
	for _, sig := range s.Signatures {
		if !HostMatchesSuffix(p.Host, sig.HostSuffix) {
			continue
		}
		if sig.MatchesContent(content) {
			return true
		}
	}
	return false
}

// GenerateSubsequence produces one ordered-token signature per cluster,
// using the same extraction and filtering as the conjunction generator —
// ExtractTokens already emits tokens in left-to-right content order, which
// is exactly the subsequence the cluster members share.
func GenerateSubsequence(clusters [][]*httpmodel.Packet, opts Options) *SubsequenceSet {
	o := opts.withDefaults()
	set := &SubsequenceSet{}
	seen := make(map[string]bool)
	total := 0
	for _, cl := range clusters {
		total += len(cl)
		if len(cl) < o.MinClusterSize {
			continue
		}
		contents := make([][]byte, len(cl))
		for i, p := range cl {
			contents[i] = p.Content()
		}
		tokens := ExtractTokens(contents, o.MinTokenLen, o.MaxTokensPerSignature)
		// Order-preserving filtering: the conjunction generator may reorder
		// on dedup; here order is the point, so filter in place.
		kept := tokens[:0]
		for _, t := range tokens {
			if InformativeLen(t, o.Stoplist) >= o.MinTokenLen {
				kept = append(kept, t)
			}
		}
		if len(kept) == 0 {
			continue
		}
		sig := &SubsequenceSignature{Tokens: kept, ClusterSize: len(cl)}
		if o.HostConstraint {
			hosts := make([]string, len(cl))
			for i, p := range cl {
				hosts[i] = p.Host
			}
			sig.HostSuffix = CommonHostSuffix(hosts)
		}
		key := sig.Key()
		if seen[key] {
			continue
		}
		seen[key] = true
		sig.ID = len(set.Signatures)
		set.Signatures = append(set.Signatures, sig)
	}
	set.TrainingSize = total
	return set
}
