package signature

import (
	"testing"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
)

func TestSubsequenceMatchesContentOrder(t *testing.T) {
	s := &SubsequenceSignature{Tokens: []string{"alpha-", "beta-", "gamma-"}}
	cases := []struct {
		content string
		want    bool
	}{
		{"alpha-xxbeta-yygamma-zz", true},
		{"alpha-beta-gamma-", true},
		{"gamma-beta-alpha-", false},       // wrong order
		{"alpha-gamma-", false},            // missing token
		{"xxalpha-xx gamma- beta-", false}, // out of order tail
		{"", false},
	}
	for _, c := range cases {
		if got := s.MatchesContent([]byte(c.content)); got != c.want {
			t.Errorf("MatchesContent(%q) = %v, want %v", c.content, got, c.want)
		}
	}
}

func TestSubsequenceOverlappingTokensNotReused(t *testing.T) {
	// After matching a token the cursor advances past it: the same bytes
	// cannot satisfy two tokens.
	s := &SubsequenceSignature{Tokens: []string{"abab", "abab"}}
	if s.MatchesContent([]byte("abab")) {
		t.Error("single occurrence satisfied two ordered tokens")
	}
	if !s.MatchesContent([]byte("abababab")) {
		t.Error("two occurrences not matched")
	}
}

func TestSubsequenceEmptySignatureNeverMatches(t *testing.T) {
	s := &SubsequenceSignature{}
	if s.MatchesContent([]byte("anything")) {
		t.Error("empty subsequence matched")
	}
}

func TestSubsequenceHostConstraint(t *testing.T) {
	s := &SubsequenceSignature{Tokens: []string{"udid="}, HostSuffix: "ads.example"}
	hit := httpmodel.Get("r.ads.example", "/x?udid=1").Dest(1, 80).Build()
	miss := httpmodel.Get("other.jp", "/x?udid=1").Dest(1, 80).Build()
	if !s.Matches(hit) {
		t.Error("matching host rejected")
	}
	if s.Matches(miss) {
		t.Error("non-matching host accepted")
	}
}

func TestGenerateSubsequence(t *testing.T) {
	mk := func(seq string) *httpmodel.Packet {
		return httpmodel.Get("ads.x.jp", "/fetch").
			Query("zone", seq).
			Query("udid", "f3a9c1d200b14e67").
			Query("seq", seq+seq).
			Dest(ipaddr.MustParse("203.0.113.4"), 80).Build()
	}
	cluster := []*httpmodel.Packet{mk("1"), mk("2"), mk("37")}
	set := GenerateSubsequence([][]*httpmodel.Packet{cluster}, Options{})
	if set.Len() != 1 {
		t.Fatalf("signatures = %d", set.Len())
	}
	sig := set.Signatures[0]
	if len(sig.Tokens) == 0 {
		t.Fatal("no tokens")
	}
	// Fresh same-module packet matches; reordered template does not.
	if !set.Matches(mk("9")) {
		t.Error("fresh module packet missed")
	}
	reordered := httpmodel.Get("ads.x.jp", "/fetch").
		Query("udid", "f3a9c1d200b14e67").
		Query("zone", "1").
		Dest(ipaddr.MustParse("203.0.113.4"), 80).Build()
	_ = reordered // order-sensitivity depends on extracted tokens; check content directly
	if sig.MatchesContent([]byte("udid=f3a9c1d200b14e67 then GET /fetch?zone=")) {
		t.Error("reversed token order matched")
	}
}

func TestGenerateSubsequenceRespectsMinClusterSize(t *testing.T) {
	single := []*httpmodel.Packet{
		httpmodel.Get("a.jp", "/x?udid=f3a9c1d200b14e67").Dest(1, 80).Build(),
	}
	set := GenerateSubsequence([][]*httpmodel.Packet{single}, Options{MinClusterSize: 2})
	if set.Len() != 0 {
		t.Errorf("singleton produced %d signatures", set.Len())
	}
	if set.TrainingSize != 1 {
		t.Errorf("TrainingSize = %d", set.TrainingSize)
	}
}

func TestGenerateSubsequenceDeduplicates(t *testing.T) {
	mk := func(seq string) *httpmodel.Packet {
		return httpmodel.Get("ads.x.jp", "/fetch?udid=f3a9c1d200b14e67&r="+seq).
			Dest(ipaddr.MustParse("203.0.113.4"), 80).Build()
	}
	cl := []*httpmodel.Packet{mk("1"), mk("2")}
	set := GenerateSubsequence([][]*httpmodel.Packet{cl, cl}, Options{})
	if set.Len() != 1 {
		t.Errorf("duplicate clusters produced %d signatures", set.Len())
	}
}

func TestSubsequenceSetEmpty(t *testing.T) {
	set := &SubsequenceSet{}
	p := httpmodel.Get("a.jp", "/x").Dest(1, 80).Build()
	if set.Matches(p) {
		t.Error("empty set matched")
	}
}
