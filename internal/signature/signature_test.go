package signature

import (
	"bytes"
	"strings"
	"testing"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
)

func adPacket(path string) *httpmodel.Packet {
	return httpmodel.Get("ad-maker.info", path).
		Dest(ipaddr.MustParse("203.0.113.10"), 80).Build()
}

func TestExtractTokensTemplate(t *testing.T) {
	contents := [][]byte{
		[]byte("GET /ad/v2?zone=12&udid=f3a9c1d200b14e67&seq=1 HTTP/1.1\n\n"),
		[]byte("GET /ad/v2?zone=98&udid=f3a9c1d200b14e67&seq=204 HTTP/1.1\n\n"),
		[]byte("GET /ad/v2?zone=5&udid=f3a9c1d200b14e67&seq=77 HTTP/1.1\n\n"),
	}
	tokens := ExtractTokens(contents, 6, 12)
	if len(tokens) == 0 {
		t.Fatal("no tokens extracted")
	}
	joined := strings.Join(tokens, "|")
	if !strings.Contains(joined, "udid=f3a9c1d200b14e67") {
		t.Errorf("invariant udid token missing: %v", tokens)
	}
	// Every token must occur in every content.
	for _, tok := range tokens {
		for _, c := range contents {
			if !bytes.Contains(c, []byte(tok)) {
				t.Errorf("token %q not in all contents", tok)
			}
		}
	}
}

func TestExtractTokensOrderedInOrder(t *testing.T) {
	contents := [][]byte{
		[]byte("AAAA-longcommonmiddle-ZZZZ1"),
		[]byte("AAAA+longcommonmiddle+ZZZZ2"),
	}
	tokens := ExtractTokens(contents, 4, 12)
	// In-order traversal: AAAA then middle then ZZZZ.
	if len(tokens) != 3 || tokens[0] != "AAAA" || tokens[1] != "longcommonmiddle" || tokens[2] != "ZZZZ" {
		t.Errorf("tokens = %v", tokens)
	}
}

func TestExtractTokensSplitsFieldSpanningTokens(t *testing.T) {
	// The LCS "aaaa\nbbbb-" straddles the '\n' field separator and must
	// split into its parts; the later token "cccc" must survive the
	// split growing the list (regression: in-place filtering overwrote
	// not-yet-read tokens).
	contents := [][]byte{
		[]byte("aaaa\nbbbb-XXccccXX"),
		[]byte("aaaa\nbbbb-YYccccYY"),
	}
	got := ExtractTokens(contents, 4, 12)
	want := []string{"aaaa", "bbbb-", "cccc"}
	if len(got) != len(want) {
		t.Fatalf("tokens = %q, want %q", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tokens = %q, want %q", got, want)
		}
	}
	for _, tok := range got {
		if strings.Contains(tok, "\n") {
			t.Errorf("token %q still contains the field separator", tok)
		}
	}
}

func TestExtractTokensRespectsBudgetAndMinLen(t *testing.T) {
	contents := [][]byte{
		[]byte("aaaaaa-bbbbbb-cccccc-dddddd"),
		[]byte("aaaaaa+bbbbbb+cccccc+dddddd"),
	}
	if got := ExtractTokens(contents, 6, 2); len(got) > 2 {
		t.Errorf("budget exceeded: %v", got)
	}
	if got := ExtractTokens(contents, 30, 12); got != nil {
		t.Errorf("minLen not respected: %v", got)
	}
	if got := ExtractTokens(nil, 6, 12); got != nil {
		t.Errorf("empty input: %v", got)
	}
}

func TestInformativeLen(t *testing.T) {
	stop := DefaultStoplist()
	if got := InformativeLen(" HTTP/1.1", stop); got != 0 {
		t.Errorf("boilerplate scored %d", got)
	}
	if got := InformativeLen("GET /ad/v2?zone=", stop); got < 6 {
		t.Errorf("real prefix scored %d", got)
	}
	if got := InformativeLen("udid=f3a9c1d200b14e67", stop); got < 16 {
		t.Errorf("udid token scored %d", got)
	}
	if got := InformativeLen("", stop); got != 0 {
		t.Errorf("empty token scored %d", got)
	}
}

func TestGenerateBasic(t *testing.T) {
	cluster1 := []*httpmodel.Packet{
		adPacket("/ad/v2?zone=12&imei=353918051234563"),
		adPacket("/ad/v2?zone=98&imei=353918051234563"),
		adPacket("/ad/v2?zone=5&imei=353918051234563"),
	}
	cluster2 := []*httpmodel.Packet{
		httpmodel.Get("admob.com", "/mads/gma?u=8a6b1c9f33d200e7&fmt=html").Dest(1, 80).Build(),
		httpmodel.Get("admob.com", "/mads/gma?u=8a6b1c9f33d200e7&fmt=json").Dest(1, 80).Build(),
	}
	set := Generate([][]*httpmodel.Packet{cluster1, cluster2}, Options{})
	if set.Len() != 2 {
		t.Fatalf("signatures = %d, want 2", set.Len())
	}
	if set.TrainingSize != 5 {
		t.Errorf("TrainingSize = %d", set.TrainingSize)
	}
	found := false
	for _, sig := range set.Signatures {
		for _, tok := range sig.Tokens {
			if strings.Contains(tok, "imei=353918051234563") {
				found = true
			}
		}
		if sig.ClusterSize == 0 {
			t.Error("missing cluster size")
		}
	}
	if !found {
		t.Error("imei token not present in any signature")
	}
}

func TestGenerateDeduplicates(t *testing.T) {
	c := []*httpmodel.Packet{
		adPacket("/ad/v2?zone=1&imei=353918051234563"),
		adPacket("/ad/v2?zone=2&imei=353918051234563"),
	}
	// Same cluster twice plus a bigger duplicate: one signature results,
	// carrying the larger cluster size.
	big := []*httpmodel.Packet{c[0], c[1], adPacket("/ad/v2?zone=3&imei=353918051234563")}
	_ = big
	set := Generate([][]*httpmodel.Packet{c, c}, Options{})
	if set.Len() != 1 {
		t.Fatalf("duplicate clusters produced %d signatures", set.Len())
	}
}

func TestGenerateMinClusterSize(t *testing.T) {
	single := []*httpmodel.Packet{adPacket("/ad/v2?zone=1&imei=353918051234563")}
	set := Generate([][]*httpmodel.Packet{single}, Options{MinClusterSize: 2})
	if set.Len() != 0 {
		t.Errorf("singleton cluster produced %d signatures despite MinClusterSize", set.Len())
	}
	set = Generate([][]*httpmodel.Packet{single}, Options{})
	if set.Len() != 1 {
		t.Errorf("default should keep singleton clusters: %d", set.Len())
	}
}

func TestGenerateBenignFilter(t *testing.T) {
	cluster := []*httpmodel.Packet{
		httpmodel.Get("api.example.jp", "/v1/items?format=json&lang=ja&imei=353918051234563").Dest(1, 80).Build(),
		httpmodel.Get("api.example.jp", "/v1/items?format=json&lang=ja&imei=353918051234563&p=2").Dest(1, 80).Build(),
	}
	benign := []*httpmodel.Packet{
		httpmodel.Get("api.example.jp", "/v1/items?format=json&lang=ja&q=weather").Dest(1, 80).Build(),
		httpmodel.Get("api.other.jp", "/v1/items?format=json&lang=ja&q=news").Dest(1, 80).Build(),
	}
	noFilter := Generate([][]*httpmodel.Packet{cluster}, Options{})
	withFilter := Generate([][]*httpmodel.Packet{cluster}, Options{
		BenignSample:      benign,
		MaxBenignFraction: 0.5,
	})
	if noFilter.Len() != 1 || withFilter.Len() != 1 {
		t.Fatalf("unexpected signature counts %d/%d", noFilter.Len(), withFilter.Len())
	}
	for _, tok := range withFilter.Signatures[0].Tokens {
		if strings.Contains(tok, "format=json&lang=ja") && !strings.Contains(tok, "imei") {
			t.Errorf("benign-common token survived filter: %q", tok)
		}
	}
	// The discriminative imei token must survive.
	joined := strings.Join(withFilter.Signatures[0].Tokens, "|")
	if !strings.Contains(joined, "imei=353918051234563") {
		t.Errorf("imei token lost: %v", withFilter.Signatures[0].Tokens)
	}
}

func TestCommonHostSuffix(t *testing.T) {
	cases := []struct {
		hosts []string
		want  string
	}{
		{[]string{"a.admob.com", "b.admob.com"}, "admob.com"},
		{[]string{"admob.com", "admob.com"}, "admob.com"},
		{[]string{"x.doubleclick.net", "y.doubleclick.net", "z.doubleclick.net"}, "doubleclick.net"},
		{[]string{"a.example.com", "a.example.org"}, ""},
		{[]string{"foo.co.jp", "bar.co.jp"}, "co.jp"},
		{[]string{"onlyone.example"}, "onlyone.example"},
		{nil, ""},
		{[]string{"xmob.com", "admob.com"}, ""}, // "mob.com" is not label-aligned
	}
	for _, c := range cases {
		if got := CommonHostSuffix(c.hosts); got != c.want {
			t.Errorf("CommonHostSuffix(%v) = %q, want %q", c.hosts, got, c.want)
		}
	}
}

func TestHostMatchesSuffix(t *testing.T) {
	cases := []struct {
		host, suffix string
		want         bool
	}{
		{"a.admob.com", "admob.com", true},
		{"admob.com", "admob.com", true},
		{"xadmob.com", "admob.com", false},
		{"anything.example", "", true},
		{"admob.com.evil.example", "admob.com", false},
	}
	for _, c := range cases {
		if got := HostMatchesSuffix(c.host, c.suffix); got != c.want {
			t.Errorf("HostMatchesSuffix(%q, %q) = %v", c.host, c.suffix, got)
		}
	}
}

func TestGenerateHostConstraint(t *testing.T) {
	cluster := []*httpmodel.Packet{
		adPacket("/ad/v2?zone=1&imei=353918051234563"),
		adPacket("/ad/v2?zone=2&imei=353918051234563"),
	}
	set := Generate([][]*httpmodel.Packet{cluster}, Options{HostConstraint: true})
	if set.Len() != 1 {
		t.Fatal("no signature")
	}
	if set.Signatures[0].HostSuffix != "ad-maker.info" {
		t.Errorf("HostSuffix = %q", set.Signatures[0].HostSuffix)
	}
}

func TestSetJSONRoundTrip(t *testing.T) {
	cluster := []*httpmodel.Packet{
		adPacket("/ad/v2?zone=1&imei=353918051234563"),
		adPacket("/ad/v2?zone=2&imei=353918051234563"),
	}
	set := Generate([][]*httpmodel.Packet{cluster}, Options{HostConstraint: true})
	set.Version = 42
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Version != 42 || got.Len() != set.Len() {
		t.Fatalf("round trip: %+v", got)
	}
	if got.Signatures[0].Key() != set.Signatures[0].Key() {
		t.Error("signature key changed through serialization")
	}
}

func TestReadJSONError(t *testing.T) {
	if _, err := ReadJSON(strings.NewReader("{bad")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestSignatureKeyOrderIndependent(t *testing.T) {
	a := &Signature{Tokens: []string{"x", "y"}, HostSuffix: "h"}
	b := &Signature{Tokens: []string{"y", "x"}, HostSuffix: "h"}
	if a.Key() != b.Key() {
		t.Error("Key depends on token order")
	}
	c := &Signature{Tokens: []string{"x", "y"}, HostSuffix: "other"}
	if a.Key() == c.Key() {
		t.Error("Key ignores host suffix")
	}
}

func TestSignatureString(t *testing.T) {
	s := &Signature{ID: 3, Tokens: []string{"tok"}, HostSuffix: "h.example"}
	out := s.String()
	for _, want := range []string{"sig#3", "h.example", `"tok"`} {
		if !strings.Contains(out, want) {
			t.Errorf("String() = %q missing %q", out, want)
		}
	}
}

func TestBoilerplateOnlyClusterProducesNoSignature(t *testing.T) {
	// Packets sharing nothing but protocol boilerplate must yield nothing —
	// the failure mode §VI warns about.
	cluster := []*httpmodel.Packet{
		httpmodel.Get("a1.example", "/p1?x=abc123def").Dest(1, 80).Build(),
		httpmodel.Get("b2.example", "/q9?y=zzz999qqq").Dest(2, 80).Build(),
	}
	set := Generate([][]*httpmodel.Packet{cluster}, Options{})
	for _, sig := range set.Signatures {
		for _, tok := range sig.Tokens {
			if InformativeLen(tok, DefaultStoplist()) < 6 {
				t.Errorf("boilerplate token survived: %q", tok)
			}
		}
	}
}
