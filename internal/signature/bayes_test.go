package signature

import (
	"bytes"
	"math"
	"testing"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
)

func leakCluster(host, key, value string, n int) []*httpmodel.Packet {
	out := make([]*httpmodel.Packet, n)
	for i := range out {
		out[i] = httpmodel.Get(host, "/fetch").
			Query("zone", string(rune('1'+i%9))).
			Query(key, value).
			Dest(ipaddr.MustParse("203.0.113.4"), 80).Build()
	}
	return out
}

func benignTraffic(n int) []*httpmodel.Packet {
	out := make([]*httpmodel.Packet, n)
	for i := range out {
		out[i] = httpmodel.Get("api.benign.jp", "/v2/items").
			Query("format", "json").
			Query("page", string(rune('1'+i%9))).
			Dest(ipaddr.MustParse("198.51.100.9"), 80).Build()
	}
	return out
}

func TestBayesDetectsTrainedPattern(t *testing.T) {
	clusters := [][]*httpmodel.Packet{
		leakCluster("ads.x.jp", "udid", "f3a9c1d200b14e67", 6),
		leakCluster("trk.y.jp", "imei", "353918051234563", 6),
	}
	benign := benignTraffic(40)
	sig := GenerateBayes(clusters, benign, BayesOptions{})
	if sig.NumTokens() == 0 {
		t.Fatal("no tokens learned")
	}
	// Fresh packets with the leaked values must match.
	fresh := leakCluster("ads.x.jp", "udid", "f3a9c1d200b14e67", 3)
	for _, p := range fresh {
		if !sig.Matches(p) {
			t.Errorf("trained pattern missed: %s (score %.2f, thr %.2f)",
				p.RequestLine(), sig.ScoreContent(p.Content()), sig.Threshold)
		}
	}
	// Benign traffic must not.
	for _, p := range benignTraffic(20) {
		if sig.Matches(p) {
			t.Errorf("benign matched: %s (score %.2f)", p.RequestLine(), sig.ScoreContent(p.Content()))
		}
	}
}

func TestBayesScoresSignSensible(t *testing.T) {
	clusters := [][]*httpmodel.Packet{leakCluster("ads.x.jp", "udid", "f3a9c1d200b14e67", 8)}
	benign := benignTraffic(40)
	sig := GenerateBayes(clusters, benign, BayesOptions{})
	for i, tok := range sig.Tokens {
		// Tokens extracted from suspicious traffic that never occur in the
		// benign sample must score positive.
		inBenign := false
		for _, p := range benign {
			if bytes.Contains(p.Content(), []byte(tok)) {
				inBenign = true
			}
		}
		if !inBenign && sig.Scores[i] <= 0 {
			t.Errorf("token %q absent from benign but scored %.3f", tok, sig.Scores[i])
		}
	}
}

func TestBayesThresholdBoundsTrainingFP(t *testing.T) {
	clusters := [][]*httpmodel.Packet{leakCluster("ads.x.jp", "udid", "f3a9c1d200b14e67", 8)}
	benign := benignTraffic(200)
	sig := GenerateBayes(clusters, benign, BayesOptions{TargetTrainFP: 0.01})
	fp := 0
	for _, p := range benign {
		if sig.Matches(p) {
			fp++
		}
	}
	if frac := float64(fp) / float64(len(benign)); frac > 0.02 {
		t.Errorf("training FP = %.3f, target 0.01", frac)
	}
}

func TestBayesEmptyInputs(t *testing.T) {
	sig := GenerateBayes(nil, nil, BayesOptions{})
	if sig.NumTokens() != 0 {
		t.Errorf("tokens from nothing: %d", sig.NumTokens())
	}
	if sig.Matches(benignTraffic(1)[0]) {
		t.Error("empty signature matched")
	}
	if !math.IsInf(sig.Threshold, 1) {
		t.Errorf("empty signature threshold = %v", sig.Threshold)
	}
}

func TestBayesNoBenignSample(t *testing.T) {
	clusters := [][]*httpmodel.Packet{leakCluster("ads.x.jp", "udid", "f3a9c1d200b14e67", 6)}
	sig := GenerateBayes(clusters, nil, BayesOptions{})
	fresh := leakCluster("ads.x.jp", "udid", "f3a9c1d200b14e67", 2)
	for _, p := range fresh {
		if !sig.Matches(p) {
			t.Error("trained pattern missed without benign calibration")
		}
	}
}

func TestBayesJSONRoundTrip(t *testing.T) {
	clusters := [][]*httpmodel.Packet{leakCluster("ads.x.jp", "udid", "f3a9c1d200b14e67", 6)}
	sig := GenerateBayes(clusters, benignTraffic(30), BayesOptions{})
	var buf bytes.Buffer
	if err := sig.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadBayesJSON(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTokens() != sig.NumTokens() || got.Threshold != sig.Threshold {
		t.Errorf("round trip changed signature: %d/%f vs %d/%f",
			got.NumTokens(), got.Threshold, sig.NumTokens(), sig.Threshold)
	}
	p := leakCluster("ads.x.jp", "udid", "f3a9c1d200b14e67", 1)[0]
	if got.Matches(p) != sig.Matches(p) {
		t.Error("round trip changed verdict")
	}
}

func TestBayesJSONRejectsMismatchedScores(t *testing.T) {
	raw := `{"tokens":["a","b"],"scores":[1.0],"threshold":0.5}`
	if _, err := ReadBayesJSON(bytes.NewReader([]byte(raw))); err == nil {
		t.Error("mismatched scores accepted")
	}
	if _, err := ReadBayesJSON(bytes.NewReader([]byte("{bad"))); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBayesToleratesPartialTokenPresence(t *testing.T) {
	// The probabilistic advantage over conjunctions: a packet carrying most
	// but not all high-scoring tokens can still match.
	clusters := [][]*httpmodel.Packet{
		leakCluster("ads.x.jp", "udid", "f3a9c1d200b14e67", 8),
	}
	sig := GenerateBayes(clusters, benignTraffic(60), BayesOptions{})
	// A mutated module packet: same identifier parameter, but the template
	// prefix (the "GET /fetch?zone=" token) is gone.
	p := httpmodel.Get("ads.x.jp", "/v3/new-endpoint").
		Query("v", "3").
		Query("udid", "f3a9c1d200b14e67").
		Dest(ipaddr.MustParse("203.0.113.4"), 80).Build()
	if !sig.Matches(p) {
		t.Errorf("partial token presence not detected (score %.2f, thr %.2f)",
			sig.ScoreContent(p.Content()), sig.Threshold)
	}
}
