// Package signature generates conjunction signatures from clustered HTTP
// packets (§IV-E of the paper).
//
// A conjunction signature, following Polygraph [14], is a set of invariant
// tokens; a packet matches when every token occurs in its content. For each
// cluster in the hierarchical clustering result, the generator extracts
// "the longest common substrings" of member contents: the longest substring
// common to all members is a token, the members are split around it, and
// the two sides are processed recursively, yielding an ordered token set.
//
// Clustering "applied carelessly ... can produce signatures that match most
// network packets (e.g POST *, GET *, * HTTP/1.1)" (§VI). Two filters
// address this: a stoplist of protocol boilerplate, and an optional
// benign-frequency filter that drops tokens common in a sample of normal
// traffic.
package signature

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strings"

	"leaksig/internal/httpmodel"
	"leaksig/internal/suffix"
)

// Signature is one published signature of any kind.
type Signature struct {
	ID int `json:"id"`
	// Kind selects the matching discipline (KindConjunction,
	// KindSubsequence). Empty means conjunction — the legacy wire
	// spelling, so sets published before kinds existed parse unchanged.
	Kind        string   `json:"kind,omitempty"`
	Tokens      []string `json:"tokens"`                // conjunction: all must occur; subsequence: in this order
	HostSuffix  string   `json:"host_suffix,omitempty"` // optional destination constraint (label-aligned)
	ClusterSize int      `json:"cluster_size"`          // provenance: member count of the source cluster
	// Views lists the decode views (KnownViews) the matcher scans in
	// addition to the raw content. Opt-in per signature: decoding costs,
	// so only signatures hunting encoded payloads pay it.
	Views []string `json:"views,omitempty"`
}

// Key returns a canonical identity for deduplication. Conjunction keys
// sort the token multiset; subsequence keys preserve order (order is the
// signature). A kind-absent signature keys identically to an explicit
// conjunction, and the legacy key format is preserved verbatim for
// view-less conjunctions so pre-kind set fingerprints never shift.
func (s *Signature) Key() string {
	toks := s.Tokens
	if s.EffectiveKind() == KindConjunction {
		sorted := append([]string(nil), s.Tokens...)
		sort.Strings(sorted)
		toks = sorted
	}
	key := s.HostSuffix + "\x00" + strings.Join(toks, "\x00")
	if k := s.EffectiveKind(); k != KindConjunction {
		key = "\x02" + k + "\x01" + key
	}
	if len(s.Views) > 0 {
		key += "\x03" + viewsKey(s.Views)
	}
	return key
}

// String renders a compact human-readable form.
func (s *Signature) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "sig#%d", s.ID)
	if s.Kind != "" && s.Kind != KindConjunction {
		fmt.Fprintf(&b, " kind=%s", s.Kind)
	}
	if s.HostSuffix != "" {
		fmt.Fprintf(&b, " host~%s", s.HostSuffix)
	}
	if len(s.Views) > 0 {
		fmt.Fprintf(&b, " views=%s", viewsKey(s.Views))
	}
	for _, t := range s.Tokens {
		fmt.Fprintf(&b, " %q", t)
	}
	return b.String()
}

// Set is an ordered collection of signatures plus generation metadata.
type Set struct {
	Signatures []*Signature `json:"signatures"`
	// TrainingSize is the number of packets the signatures were generated
	// from (the paper's N).
	TrainingSize int `json:"training_size"`
	// Version increases monotonically when a distribution server reissues
	// the set (Figure 3a).
	Version int64 `json:"version"`
	// Traces carries the sampled trace IDs of packets whose misses
	// contributed to this generation (bounded; provenance only — excluded
	// from fingerprinting, so identical signatures under different traces
	// never republish).
	Traces []string `json:"traces,omitempty"`
}

// Len returns the number of signatures.
func (s *Set) Len() int { return len(s.Signatures) }

// WriteJSON serializes the set.
func (s *Set) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// ReadJSON deserializes a set written by WriteJSON.
func ReadJSON(r io.Reader) (*Set, error) {
	var s Set
	if err := json.NewDecoder(r).Decode(&s); err != nil {
		return nil, fmt.Errorf("signature: decoding set: %w", err)
	}
	return &s, nil
}

// DefaultStoplist contains HTTP boilerplate that must never count toward a
// token's informative content: fragments present in nearly every request.
func DefaultStoplist() []string {
	return []string{
		"GET /", "POST /",
		" HTTP/1.1", " HTTP/1.0", "HTTP/1.",
		"http://", "https://",
		"Content-Type", "application/x-www-form-urlencoded",
		"User-Agent", "Mozilla/", "Dalvik/",
		"&", "=", "?", "; ",
	}
}

// Options configures Generate. The zero value selects the defaults noted on
// each field.
type Options struct {
	// MinTokenLen is the minimum token length kept (default 6). The paper
	// does not state a value; shorter tokens are dominated by boilerplate.
	MinTokenLen int

	// MaxTokensPerSignature bounds the token extraction recursion
	// (default 12).
	MaxTokensPerSignature int

	// MinClusterSize skips clusters with fewer members (default 1 — the
	// paper generates a signature for every cluster).
	MinClusterSize int

	// Stoplist overrides DefaultStoplist when non-nil.
	Stoplist []string

	// BenignSample, when non-empty, enables the frequency filter: a token
	// occurring in more than MaxBenignFraction of the sample is dropped.
	BenignSample []*httpmodel.Packet

	// MaxBenignFraction defaults to 0.05 when BenignSample is set.
	MaxBenignFraction float64

	// HostConstraint attaches the common trailing host labels of each
	// cluster to its signature as a destination constraint.
	HostConstraint bool
}

func (o Options) withDefaults() Options {
	if o.MinTokenLen == 0 {
		o.MinTokenLen = 6
	}
	if o.MaxTokensPerSignature == 0 {
		o.MaxTokensPerSignature = 12
	}
	if o.MinClusterSize == 0 {
		o.MinClusterSize = 1
	}
	if o.Stoplist == nil {
		o.Stoplist = DefaultStoplist()
	}
	if o.MaxBenignFraction == 0 {
		o.MaxBenignFraction = 0.05
	}
	return o
}

// Generate produces the conjunction signature set for the given clusters of
// packets. Clusters yielding no tokens after filtering produce no
// signature; duplicate signatures are emitted once (largest cluster wins).
func Generate(clusters [][]*httpmodel.Packet, opts Options) *Set {
	o := opts.withDefaults()
	set := &Set{}
	seen := make(map[string]*Signature)
	total := 0
	for _, cl := range clusters {
		total += len(cl)
		if len(cl) < o.MinClusterSize {
			continue
		}
		contents := make([][]byte, len(cl))
		for i, p := range cl {
			contents[i] = p.Content()
		}
		tokens := ExtractTokens(contents, o.MinTokenLen, o.MaxTokensPerSignature)
		tokens = filterTokens(tokens, o)
		if len(tokens) == 0 {
			continue
		}
		sig := &Signature{Tokens: tokens, ClusterSize: len(cl)}
		if o.HostConstraint {
			hosts := make([]string, len(cl))
			for i, p := range cl {
				hosts[i] = p.Host
			}
			sig.HostSuffix = CommonHostSuffix(hosts)
		}
		key := sig.Key()
		if prev, ok := seen[key]; ok {
			if sig.ClusterSize > prev.ClusterSize {
				prev.ClusterSize = sig.ClusterSize
			}
			continue
		}
		sig.ID = len(set.Signatures)
		seen[key] = sig
		set.Signatures = append(set.Signatures, sig)
	}
	set.TrainingSize = total
	return set
}

// ExtractTokens returns the ordered invariant tokens of the contents: the
// longest substring common to every member, recursively applied to the
// parts left and right of it (in-order), keeping tokens of at least minLen
// bytes and at most maxTokens tokens.
func ExtractTokens(contents [][]byte, minLen, maxTokens int) []string {
	if len(contents) == 0 || maxTokens <= 0 {
		return nil
	}
	var raw []string
	extractRec(contents, minLen, maxTokens, &raw)
	// Field hygiene: Content() joins the request line, cookie and body
	// with '\n', so a longest-common-substring can straddle a field
	// separator — but the matcher scans fields in isolation and such a
	// token could never fire. Split on '\n' and keep each part that still
	// clears minLen, preserving in-order positions. Splitting can emit
	// more parts than it consumed, so it cannot filter raw in place.
	needSplit := false
	for _, tok := range raw {
		if strings.Contains(tok, "\n") {
			needSplit = true
			break
		}
	}
	if !needSplit {
		return raw
	}
	out := make([]string, 0, len(raw))
	for _, tok := range raw {
		if !strings.Contains(tok, "\n") {
			out = append(out, tok)
			continue
		}
		for _, part := range strings.Split(tok, "\n") {
			if len(part) >= minLen {
				out = append(out, part)
			}
		}
	}
	if len(out) > maxTokens {
		out = out[:maxTokens]
	}
	if len(out) == 0 {
		return nil
	}
	return out
}

func extractRec(contents [][]byte, minLen, maxTokens int, out *[]string) {
	if len(*out) >= maxTokens {
		return
	}
	for _, c := range contents {
		if len(c) < minLen {
			return
		}
	}
	tok := suffix.LongestCommonSubstring(contents)
	if len(tok) < minLen {
		return
	}
	lefts := make([][]byte, len(contents))
	rights := make([][]byte, len(contents))
	for i, c := range contents {
		pos := indexBytes(c, tok)
		lefts[i] = c[:pos]
		rights[i] = c[pos+len(tok):]
	}
	extractRec(lefts, minLen, maxTokens, out)
	if len(*out) < maxTokens {
		*out = append(*out, string(tok))
	}
	extractRec(rights, minLen, maxTokens, out)
}

func indexBytes(haystack, needle []byte) int {
	// strings.Index on conversions avoids an import cycle with bytes’
	// identical semantics; needle is guaranteed present.
	return strings.Index(string(haystack), string(needle))
}

// filterTokens applies the stoplist and benign-frequency filters.
func filterTokens(tokens []string, o Options) []string {
	var benignContents [][]byte
	if len(o.BenignSample) > 0 {
		benignContents = make([][]byte, len(o.BenignSample))
		for i, p := range o.BenignSample {
			benignContents[i] = p.Content()
		}
	}
	out := tokens[:0]
	seen := make(map[string]bool)
	for _, t := range tokens {
		if seen[t] {
			continue
		}
		seen[t] = true
		if InformativeLen(t, o.Stoplist) < o.MinTokenLen {
			continue
		}
		if benignContents != nil && benignFraction(t, benignContents) > o.MaxBenignFraction {
			continue
		}
		out = append(out, t)
	}
	return out
}

// InformativeLen returns the number of bytes of t remaining after deleting
// every occurrence of every stoplist entry (longest-match-first, repeated to
// a fixed point). A token made of pure boilerplate scores near zero.
func InformativeLen(t string, stoplist []string) int {
	// Delete longer stop entries first so substring-of-stop entries do not
	// shadow them.
	sorted := append([]string(nil), stoplist...)
	sort.Slice(sorted, func(i, j int) bool { return len(sorted[i]) > len(sorted[j]) })
	cur := t
	for {
		next := cur
		for _, s := range sorted {
			if s == "" {
				continue
			}
			next = strings.ReplaceAll(next, s, "")
		}
		if next == cur {
			break
		}
		cur = next
	}
	// Whitespace and separators carry no information either.
	cur = strings.Map(func(r rune) rune {
		switch r {
		case ' ', '\t', '\r', '\n', '/', '.', ':', ';', ',':
			return -1
		}
		return r
	}, cur)
	return len(cur)
}

func benignFraction(token string, benign [][]byte) float64 {
	if len(benign) == 0 {
		return 0
	}
	hits := 0
	for _, b := range benign {
		if strings.Contains(string(b), token) {
			hits++
		}
	}
	return float64(hits) / float64(len(benign))
}

// CommonHostSuffix returns the longest common label-aligned suffix of the
// hosts, e.g. ["a.admob.com", "b.admob.com"] -> "admob.com". It returns ""
// when fewer than two trailing labels are shared (a bare TLD is too generic
// to constrain anything).
func CommonHostSuffix(hosts []string) string {
	if len(hosts) == 0 {
		return ""
	}
	split := func(h string) []string { return strings.Split(h, ".") }
	common := split(hosts[0])
	for _, h := range hosts[1:] {
		labels := split(h)
		n := len(common)
		if len(labels) < n {
			n = len(labels)
		}
		k := 0
		for k < n && common[len(common)-1-k] == labels[len(labels)-1-k] {
			k++
		}
		common = common[len(common)-k:]
		if len(common) < 2 {
			return ""
		}
	}
	if len(common) < 2 {
		return ""
	}
	return strings.Join(common, ".")
}

// HostMatchesSuffix reports whether host ends with the label-aligned
// suffix: either equal to it or ending in "."+suffix. An empty suffix
// matches everything.
func HostMatchesSuffix(host, suffix string) bool {
	if suffix == "" {
		return true
	}
	if host == suffix {
		return true
	}
	return strings.HasSuffix(host, "."+suffix)
}
