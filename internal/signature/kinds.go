package signature

// Signature kinds. The wire format stays a single Signature struct; Kind
// selects the matching discipline and an absent (empty) kind means
// conjunction, so every set published before kinds existed parses and
// matches exactly as it always did.

import (
	"bytes"
	"fmt"
	"sort"
	"strings"
)

// Signature kinds. KindConjunction is the paper's unordered token set
// (every token must occur somewhere in the content); KindSubsequence is
// Polygraph's ordered token list (every token must occur in order, gaps
// allowed). The empty string is the legacy wire spelling of conjunction.
const (
	KindConjunction = "conjunction"
	KindSubsequence = "subsequence"
)

// EffectiveKind resolves the wire kind: an absent kind is a conjunction.
func (s *Signature) EffectiveKind() string {
	if s.Kind == "" {
		return KindConjunction
	}
	return s.Kind
}

// ValidKind reports whether k is a kind this engine can compile. The
// empty string (legacy conjunction) is valid.
func ValidKind(k string) bool {
	switch k {
	case "", KindConjunction, KindSubsequence:
		return true
	}
	return false
}

// KnownViews lists the decode views a signature may opt into, in
// canonical order. Each name selects one transformed view of the packet
// content that the matcher scans in addition to the raw bytes.
func KnownViews() []string { return []string{"base64", "gzip", "hex", "url"} }

// ValidViewName reports whether v names a known decode view.
func ValidViewName(v string) bool {
	switch v {
	case "base64", "gzip", "hex", "url":
		return true
	}
	return false
}

// Validate checks that every signature carries a compilable kind and
// known view names, so a typo'd kind is rejected at the publish boundary
// instead of silently never matching in the fleet.
func (s *Set) Validate() error {
	for _, sig := range s.Signatures {
		if !ValidKind(sig.Kind) {
			return fmt.Errorf("signature: sig %d: unknown kind %q", sig.ID, sig.Kind)
		}
		for _, v := range sig.Views {
			if !ValidViewName(v) {
				return fmt.Errorf("signature: sig %d: unknown view %q", sig.ID, v)
			}
		}
	}
	return nil
}

// viewsKey renders the views as a canonical sorted fragment for Key().
func viewsKey(views []string) string {
	vs := append([]string(nil), views...)
	sort.Strings(vs)
	return strings.Join(vs, ",")
}

// MatchesOrdered reports whether the tokens occur in order (gaps allowed)
// within content, the subsequence-kind matching discipline. The greedy
// left-to-right walk is exact: taking the earliest occurrence of each
// token always leaves the most room for the rest.
func MatchesOrdered(tokens []string, content []byte) bool {
	if len(tokens) == 0 {
		return false
	}
	pos := 0
	for _, tok := range tokens {
		idx := bytes.Index(content[pos:], []byte(tok))
		if idx < 0 {
			return false
		}
		pos += idx + len(tok)
	}
	return true
}

// MatchesContent applies the signature's kind discipline to one content
// buffer, ignoring the host constraint. This is the per-kind reference
// semantics the compiled engine must agree with.
func (s *Signature) MatchesContent(content []byte) bool {
	if len(s.Tokens) == 0 {
		return false
	}
	if s.EffectiveKind() == KindSubsequence {
		return MatchesOrdered(s.Tokens, content)
	}
	for _, tok := range s.Tokens {
		if !bytes.Contains(content, []byte(tok)) {
			return false
		}
	}
	return true
}

// AsKinded promotes a SubsequenceSignature into the published kinded
// model, preserving token order, host constraint, and provenance.
func (s *SubsequenceSignature) AsKinded() *Signature {
	return &Signature{
		ID:          s.ID,
		Kind:        KindSubsequence,
		Tokens:      append([]string(nil), s.Tokens...),
		HostSuffix:  s.HostSuffix,
		ClusterSize: s.ClusterSize,
	}
}
