package signature

// Probabilistic signatures — the upgrade path the paper names in §VI:
// "Probabilistic signatures [14], [30], [31] might improve detection of
// information leakage on Android applications, and we hope to include them
// in our scheme in future work." This file implements the Bayes signature
// of Polygraph [14]: every token carries a log-likelihood-ratio score and a
// packet matches when the summed score of its present tokens exceeds a
// threshold calibrated against benign traffic.

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"

	"leaksig/internal/ahocorasick"
	"leaksig/internal/httpmodel"
)

// BayesOptions configures GenerateBayes. The zero value selects the noted
// defaults.
type BayesOptions struct {
	// MinTokenLen and MaxTokensPerCluster bound token extraction
	// (defaults 6 and 12, matching conjunction generation).
	MinTokenLen         int
	MaxTokensPerCluster int
	// Smoothing is the Laplace pseudo-count for occurrence probabilities
	// (default 1).
	Smoothing float64
	// TargetTrainFP bounds the fraction of the benign sample the calibrated
	// threshold may match (default 0.005).
	TargetTrainFP float64
	// Stoplist overrides DefaultStoplist when non-nil.
	Stoplist []string
}

func (o BayesOptions) withDefaults() BayesOptions {
	if o.MinTokenLen == 0 {
		o.MinTokenLen = 6
	}
	if o.MaxTokensPerCluster == 0 {
		o.MaxTokensPerCluster = 12
	}
	if o.Smoothing == 0 {
		o.Smoothing = 1
	}
	if o.TargetTrainFP == 0 {
		o.TargetTrainFP = 0.005
	}
	if o.Stoplist == nil {
		o.Stoplist = DefaultStoplist()
	}
	return o
}

// BayesSignature is one trained probabilistic signature: a token vocabulary
// with per-token scores and a decision threshold.
type BayesSignature struct {
	Tokens    []string  `json:"tokens"`
	Scores    []float64 `json:"scores"`
	Threshold float64   `json:"threshold"`
	// TrainingSize is the number of suspicious packets trained on.
	TrainingSize int `json:"training_size"`

	matcher *ahocorasick.Matcher
}

// GenerateBayes trains a Bayes signature. Token candidates come from the
// same per-cluster longest-common-substring extraction the conjunction
// generator uses; scores are smoothed log likelihood ratios of token
// occurrence in the suspicious sample versus the benign sample; the
// threshold is the smallest value whose benign false-match rate does not
// exceed TargetTrainFP.
func GenerateBayes(clusters [][]*httpmodel.Packet, benign []*httpmodel.Packet, opts BayesOptions) *BayesSignature {
	o := opts.withDefaults()

	// Candidate vocabulary: union of every cluster's invariant tokens.
	seen := make(map[string]bool)
	var vocab []string
	var suspicious []*httpmodel.Packet
	for _, cl := range clusters {
		suspicious = append(suspicious, cl...)
		contents := make([][]byte, len(cl))
		for i, p := range cl {
			contents[i] = p.Content()
		}
		for _, tok := range ExtractTokens(contents, o.MinTokenLen, o.MaxTokensPerCluster) {
			if seen[tok] || InformativeLen(tok, o.Stoplist) < o.MinTokenLen {
				continue
			}
			seen[tok] = true
			vocab = append(vocab, tok)
		}
	}
	sort.Strings(vocab)
	sig := &BayesSignature{Tokens: vocab, TrainingSize: len(suspicious)}
	if len(vocab) == 0 {
		sig.Threshold = math.Inf(1)
		sig.compile()
		return sig
	}
	sig.compile()

	// Occurrence counts in both corpora.
	suspCount := make([]float64, len(vocab))
	benignCount := make([]float64, len(vocab))
	countInto := func(ps []*httpmodel.Packet, counts []float64) {
		for _, p := range ps {
			occ := sig.matcher.Occurs(p.Content())
			for i, hit := range occ {
				if hit {
					counts[i]++
				}
			}
		}
	}
	countInto(suspicious, suspCount)
	countInto(benign, benignCount)

	nS := float64(len(suspicious)) + 2*o.Smoothing
	nB := float64(len(benign)) + 2*o.Smoothing
	sig.Scores = make([]float64, len(vocab))
	for i := range vocab {
		pS := (suspCount[i] + o.Smoothing) / nS
		pB := (benignCount[i] + o.Smoothing) / nB
		sig.Scores[i] = math.Log(pS / pB)
	}

	// Calibrate the threshold on the benign sample: the (1 - TargetTrainFP)
	// quantile of benign scores, floored at a tiny positive value so empty
	// content never matches.
	if len(benign) == 0 {
		sig.Threshold = sig.maxScore() / 2
		return sig
	}
	scores := make([]float64, len(benign))
	for i, p := range benign {
		scores[i] = sig.ScoreContent(p.Content())
	}
	sort.Float64s(scores)
	idx := int(float64(len(scores)) * (1 - o.TargetTrainFP))
	if idx >= len(scores) {
		idx = len(scores) - 1
	}
	thr := scores[idx]
	if thr < 1e-9 {
		thr = 1e-9
	}
	sig.Threshold = math.Nextafter(thr, math.Inf(1))
	return sig
}

// maxScore returns the sum of positive token scores — the largest value any
// packet can reach.
func (b *BayesSignature) maxScore() float64 {
	s := 0.0
	for _, v := range b.Scores {
		if v > 0 {
			s += v
		}
	}
	return s
}

func (b *BayesSignature) compile() {
	patterns := make([][]byte, len(b.Tokens))
	for i, t := range b.Tokens {
		patterns[i] = []byte(t)
	}
	b.matcher = ahocorasick.Compile(patterns)
}

// ScoreContent returns the summed score of tokens present in content.
func (b *BayesSignature) ScoreContent(content []byte) float64 {
	if b.matcher == nil {
		b.compile()
	}
	occ := b.matcher.Occurs(content)
	s := 0.0
	for i, hit := range occ {
		if hit {
			s += b.Scores[i]
		}
	}
	return s
}

// Matches reports whether the packet's score exceeds the threshold.
func (b *BayesSignature) Matches(p *httpmodel.Packet) bool {
	return b.ScoreContent(p.Content()) > b.Threshold
}

// NumTokens returns the vocabulary size.
func (b *BayesSignature) NumTokens() int { return len(b.Tokens) }

// WriteJSON serializes the signature.
func (b *BayesSignature) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(b)
}

// ReadBayesJSON deserializes a signature written by WriteJSON.
func ReadBayesJSON(r io.Reader) (*BayesSignature, error) {
	var b BayesSignature
	if err := json.NewDecoder(r).Decode(&b); err != nil {
		return nil, fmt.Errorf("signature: decoding bayes signature: %w", err)
	}
	if len(b.Scores) != len(b.Tokens) {
		return nil, fmt.Errorf("signature: bayes signature has %d scores for %d tokens",
			len(b.Scores), len(b.Tokens))
	}
	b.compile()
	return &b, nil
}
