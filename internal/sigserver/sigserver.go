// Package sigserver implements the signature distribution side of the
// paper's deployment (Figure 3a): "a separate server collects application
// traffic, clustering the data and generating signatures", and the
// on-device "information flow control application ... fetches signatures
// from the servers".
//
// Server publishes versioned signature sets over HTTP; Client fetches them
// with conditional requests so an unchanged set costs one cheap round trip.
package sigserver

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"

	"leaksig/internal/signature"
)

// Server holds the currently published signature set. It is safe for
// concurrent use; the zero value is not usable, construct with New.
type Server struct {
	mu      sync.RWMutex
	set     *signature.Set
	version int64
}

// New returns a server with an empty signature set at version 0.
func New() *Server {
	return &Server{set: &signature.Set{}}
}

// Publish replaces the current signature set and bumps the version. The
// set's Version field is overwritten with the server's new version.
func (s *Server) Publish(set *signature.Set) int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	set.Version = s.version
	s.set = set
	return s.version
}

// Current returns the published set and version.
func (s *Server) Current() (*signature.Set, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.set, s.version
}

// Handler returns the HTTP API:
//
//	GET /signatures — the signature set as JSON, ETag = version;
//	                  supports If-None-Match → 304
//	GET /version    — the current version as text
//	GET /healthz    — liveness
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /signatures", func(w http.ResponseWriter, r *http.Request) {
		set, version := s.Current()
		etag := fmt.Sprintf("%q", strconv.FormatInt(version, 10))
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			http.Error(w, "encoding failure", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", etag)
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		_, version := s.Current()
		fmt.Fprintf(w, "%d", version)
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	return mux
}

// Client fetches signature sets from a Server's HTTP API.
type Client struct {
	base string
	hc   *http.Client

	mu     sync.Mutex
	etag   string
	cached *signature.Set
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8700"). httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

// Fetch retrieves the current signature set, reusing the cached copy when
// the server reports it unchanged. The second result reports whether the
// set changed since the previous Fetch.
func (c *Client) Fetch(ctx context.Context) (*signature.Set, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/signatures", nil)
	if err != nil {
		return nil, false, fmt.Errorf("sigserver: building request: %w", err)
	}
	c.mu.Lock()
	if c.etag != "" {
		req.Header.Set("If-None-Match", c.etag)
	}
	c.mu.Unlock()
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("sigserver: fetching signatures: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		c.mu.Lock()
		cached := c.cached
		c.mu.Unlock()
		if cached == nil {
			return nil, false, fmt.Errorf("sigserver: 304 without cached set")
		}
		return cached, false, nil
	case http.StatusOK:
		set, err := signature.ReadJSON(resp.Body)
		if err != nil {
			return nil, false, err
		}
		c.mu.Lock()
		c.etag = resp.Header.Get("ETag")
		c.cached = set
		c.mu.Unlock()
		return set, true, nil
	default:
		return nil, false, fmt.Errorf("sigserver: unexpected status %s", resp.Status)
	}
}

// Version asks the server for its current version.
func (c *Client) Version(ctx context.Context) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/version", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("sigserver: fetching version: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("sigserver: unexpected status %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64))
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(string(bytes.TrimSpace(body)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sigserver: parsing version %q: %w", body, err)
	}
	return v, nil
}
