// Package sigserver implements the signature distribution side of the
// paper's deployment (Figure 3a): "a separate server collects application
// traffic, clustering the data and generating signatures", and the
// on-device "information flow control application ... fetches signatures
// from the servers".
//
// Server publishes versioned signature sets over HTTP; Client fetches them
// with conditional requests so an unchanged set costs one cheap round trip.
// Publishes are observable three ways: in-process via OnPublish callbacks
// or the Changed broadcast channel, and over HTTP via the long-polling
// /wait endpoint, which Client.Watch uses so a streaming consumer learns
// of a new version within one round trip instead of a poll interval.
//
// Beyond the default set, a server distributes any number of named sets —
// one per traffic population, the way the paper's per-module signatures
// isolate ad libraries — under /sets/{name}/..., each with its own version
// sequence, strict-increase publish guard, and long-poll wait. A global
// catalog sequence (bumped by every publish to any set) backs GET /sets and
// GET /sets/wait, which Client.WatchSets uses to follow every population
// with one long poll instead of one per set.
package sigserver

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"leaksig/internal/resilience"
	"leaksig/internal/signature"
)

// waitTimeoutMax caps how long one /wait request may hang before the
// server answers with the unchanged version and the client re-arms.
const waitTimeoutMax = 30 * time.Second

// maxNamedSets bounds how many named sets one server will hold — set
// names arrive from publishers (tenant keys, ultimately traffic fields),
// so the table must not grow without limit.
const maxNamedSets = 4096

// ErrStaleVersion is returned by PublishVersioned (and surfaced over
// HTTP as 409 Conflict) when a publish carries a version at or below the
// server's current one — the guard that stops stale or looping
// auto-publishers from rolling the fleet backwards.
var ErrStaleVersion = errors.New("sigserver: publish version not greater than current")

// ErrBadSetName rejects set names that cannot round-trip a URL path
// segment (empty, over 200 bytes, containing '/' or control bytes, or
// the path-cleaning hazards "." and "..").
var ErrBadSetName = errors.New("sigserver: invalid set name")

// ErrTooManySets rejects publishes that would create a named set past
// the server's table bound.
var ErrTooManySets = errors.New("sigserver: named set limit reached")

// ValidSetName reports whether name can be a named set: it must
// round-trip a URL path segment. "." and ".." are rejected because
// ServeMux path cleaning folds them away before routing (a POST to
// /sets/../publish redirects to /publish and the redirected request
// loses its body) — and set names ultimately come from traffic fields,
// so a crafted Host of ".." must not wedge a publisher in a permanent
// retry loop. Publishers with attacker-influenced tenant keys should
// screen names with this before queueing a publish.
func ValidSetName(name string) bool {
	if name == "" || len(name) > 200 || name == "." || name == ".." {
		return false
	}
	for i := 0; i < len(name); i++ {
		if name[i] < 0x20 || name[i] == 0x7f || name[i] == '/' {
			return false
		}
	}
	return true
}

// setState is one distributable signature set: the default set or one
// named (per-population) set, each with its own version sequence and
// change broadcast.
type setState struct {
	name string

	mu      sync.RWMutex
	set     *signature.Set
	version int64
	changed chan struct{} // closed and replaced on every publish

	publishes         atomic.Uint64
	publishesRejected atomic.Uint64
}

func newSetState(name string) *setState {
	return &setState{name: name, set: &signature.Set{}, changed: make(chan struct{})}
}

// current returns the state's set and version.
func (st *setState) current() (*signature.Set, int64) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.set, st.version
}

// read returns the version plus the change channel armed for the next
// publish — the long-poll primitives in one consistent snapshot.
func (st *setState) read() (int64, <-chan struct{}) {
	st.mu.RLock()
	defer st.mu.RUnlock()
	return st.version, st.changed
}

// Server holds the currently published signature sets: the default set
// plus any number of named per-population sets. It is safe for concurrent
// use; the zero value is not usable, construct with New.
type Server struct {
	def *setState

	// mu guards the named-set table and the callback lists.
	mu             sync.RWMutex
	named          map[string]*setState
	onPublish      []func(int64)
	onPublishNamed []func(name string, version int64)

	// seq counts publishes to any set; /sets/wait long-polls it so one
	// watcher can follow every population with a single connection.
	seqMu      sync.Mutex
	seq        int64
	seqChanged chan struct{}
}

// New returns a server with an empty default signature set at version 0
// and no named sets.
func New() *Server {
	return &Server{
		def:        newSetState(""),
		named:      make(map[string]*setState),
		seqChanged: make(chan struct{}),
	}
}

// state resolves a set name to its state. "" is the default set. With
// create, a missing named set is added (subject to the name and table
// bounds); without it, a missing name returns (nil, nil).
func (s *Server) state(name string, create bool) (*setState, error) {
	if name == "" {
		return s.def, nil
	}
	if !ValidSetName(name) {
		return nil, fmt.Errorf("%w: %q", ErrBadSetName, name)
	}
	s.mu.RLock()
	st := s.named[name]
	s.mu.RUnlock()
	if st != nil || !create {
		return st, nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if st := s.named[name]; st != nil {
		return st, nil
	}
	if len(s.named) >= maxNamedSets {
		return nil, ErrTooManySets
	}
	st = newSetState(name)
	s.named[name] = st
	return st, nil
}

// installLocked installs set at version on st. It is entered holding
// st.mu and releases it before the broadcasts and callbacks run.
func (s *Server) installLocked(st *setState, set *signature.Set, version int64) (int64, error) {
	st.version = version
	set.Version = version
	st.set = set
	notify := st.changed
	st.changed = make(chan struct{})
	st.mu.Unlock()
	st.publishes.Add(1)
	close(notify)

	s.seqMu.Lock()
	s.seq++
	seqNotify := s.seqChanged
	s.seqChanged = make(chan struct{})
	s.seqMu.Unlock()
	close(seqNotify)

	s.mu.RLock()
	var cbs []func(int64)
	if st == s.def {
		cbs = append(cbs, s.onPublish...)
	}
	named := append([]func(name string, version int64){}, s.onPublishNamed...)
	s.mu.RUnlock()
	for _, fn := range cbs {
		fn(version)
	}
	for _, fn := range named {
		fn(st.name, version)
	}
	return version, nil
}

// publishTo replaces st's set, auto-bumping the version.
func (s *Server) publishTo(st *setState, set *signature.Set) int64 {
	st.mu.Lock()
	v, _ := s.installLocked(st, set, st.version+1)
	return v
}

// publishVersionedTo installs the set under its own Version field, which
// must strictly exceed st's current version.
func (s *Server) publishVersionedTo(st *setState, set *signature.Set) (int64, error) {
	st.mu.Lock()
	if set.Version <= st.version {
		cur := st.version
		st.mu.Unlock()
		st.publishesRejected.Add(1)
		return cur, fmt.Errorf("%w: got %d, current %d", ErrStaleVersion, set.Version, cur)
	}
	return s.installLocked(st, set, set.Version)
}

// Publish replaces the current default signature set and bumps the
// version. The set's Version field is overwritten with the server's new
// version. Every OnPublish callback runs synchronously before Publish
// returns, and the Changed broadcast fires.
func (s *Server) Publish(set *signature.Set) int64 {
	return s.publishTo(s.def, set)
}

// PublishVersioned installs the set under its own Version field, which
// must be strictly greater than the server's current version; stale
// versions are rejected with ErrStaleVersion (and counted). This is the
// auto-publish path: writers stamp last-seen + 1, so two loops feeding
// one server cannot ping-pong the fleet between their generations.
func (s *Server) PublishVersioned(set *signature.Set) (int64, error) {
	return s.publishVersionedTo(s.def, set)
}

// PublishSet routes a publish by its version stamp: 0 means "assign me
// the next version" (Publish), anything else is checked against the
// strict-increase guard (PublishVersioned). It is the behavior of the
// HTTP publish endpoint.
func (s *Server) PublishSet(set *signature.Set) (int64, error) {
	if set.Version == 0 {
		return s.Publish(set), nil
	}
	return s.PublishVersioned(set)
}

// PublishNamed replaces the named set, auto-bumping its version and
// creating the set on first publish. "" routes to the default set.
func (s *Server) PublishNamed(name string, set *signature.Set) (int64, error) {
	st, err := s.state(name, true)
	if err != nil {
		return 0, err
	}
	return s.publishTo(st, set), nil
}

// PublishNamedVersioned installs the named set under its own Version
// field with the same strict-increase guard as PublishVersioned — each
// name carries its own independent version sequence.
func (s *Server) PublishNamedVersioned(name string, set *signature.Set) (int64, error) {
	st, err := s.state(name, true)
	if err != nil {
		return 0, err
	}
	return s.publishVersionedTo(st, set)
}

// PublishNamedSet routes a named publish by its version stamp, the
// behavior of POST /sets/{name}/publish.
func (s *Server) PublishNamedSet(name string, set *signature.Set) (int64, error) {
	if set.Version == 0 {
		return s.PublishNamed(name, set)
	}
	return s.PublishNamedVersioned(name, set)
}

// Current returns the published default set and version.
func (s *Server) Current() (*signature.Set, int64) {
	return s.def.current()
}

// CurrentNamed returns the named set, its version, and whether the name
// has ever been published. An unpublished name reads as an empty set at
// version 0 — the same zero state the default set starts in.
func (s *Server) CurrentNamed(name string) (*signature.Set, int64, bool) {
	if name == "" {
		set, v := s.def.current()
		return set, v, true
	}
	s.mu.RLock()
	st := s.named[name]
	s.mu.RUnlock()
	if st == nil {
		return &signature.Set{}, 0, false
	}
	set, v := st.current()
	return set, v, true
}

// SetNames returns the published named-set names, sorted.
func (s *Server) SetNames() []string {
	s.mu.RLock()
	names := make([]string, 0, len(s.named))
	for name := range s.named {
		names = append(names, name)
	}
	s.mu.RUnlock()
	sort.Strings(names)
	return names
}

// Seq returns the catalog sequence: the count of publishes to any set.
func (s *Server) Seq() int64 {
	s.seqMu.Lock()
	defer s.seqMu.Unlock()
	return s.seq
}

// setsSnapshot returns the catalog sequence plus every set's version
// (the default set included as ""). The sequence is read FIRST: a publish
// racing the snapshot then shows up in the versions (harmless early
// delivery) rather than only in the sequence (a watcher sleeping past it).
func (s *Server) setsSnapshot() (int64, map[string]int64) {
	seq := s.Seq()
	s.mu.RLock()
	versions := make(map[string]int64, len(s.named)+1)
	for name, st := range s.named {
		_, versions[name] = st.current()
	}
	s.mu.RUnlock()
	_, versions[""] = s.def.current()
	return seq, versions
}

// OnPublish registers a callback invoked with the new version after every
// default-set Publish. Callbacks run synchronously on the publishing
// goroutine and must not call Publish themselves.
func (s *Server) OnPublish(fn func(version int64)) {
	s.mu.Lock()
	s.onPublish = append(s.onPublish, fn)
	s.mu.Unlock()
}

// OnPublishNamed registers a callback invoked with the set name and new
// version after every publish to any set (the default set reports as "").
// Callbacks run synchronously on the publishing goroutine.
func (s *Server) OnPublishNamed(fn func(name string, version int64)) {
	s.mu.Lock()
	s.onPublishNamed = append(s.onPublishNamed, fn)
	s.mu.Unlock()
}

// Changed returns a channel that is closed at the next default-set
// Publish. Receive from it to block until the set changes, then call
// Current (and Changed again to re-arm).
func (s *Server) Changed() <-chan struct{} {
	_, ch := s.def.read()
	return ch
}

// NamedSetStats are one named set's version and publish counters.
type NamedSetStats struct {
	Version           int64  `json:"version"`
	Signatures        int    `json:"signatures"`
	Publishes         uint64 `json:"publishes"`
	PublishesRejected uint64 `json:"publishes_rejected"`
}

// ServerStats are the server's lifetime publish counters and live state.
// The top-level fields describe the default set; Sets breaks out every
// named set, and Seq is the catalog sequence across all of them.
type ServerStats struct {
	Version           int64                    `json:"version"`
	Signatures        int                      `json:"signatures"`
	Publishes         uint64                   `json:"publishes"`
	PublishesRejected uint64                   `json:"publishes_rejected"`
	Seq               int64                    `json:"seq"`
	Sets              map[string]NamedSetStats `json:"sets,omitempty"`
}

func statsOf(st *setState) NamedSetStats {
	set, v := st.current()
	return NamedSetStats{
		Version:           v,
		Signatures:        set.Len(),
		Publishes:         st.publishes.Load(),
		PublishesRejected: st.publishesRejected.Load(),
	}
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServerStats {
	def := statsOf(s.def)
	out := ServerStats{
		Version:           def.Version,
		Signatures:        def.Signatures,
		Publishes:         def.Publishes,
		PublishesRejected: def.PublishesRejected,
		Seq:               s.Seq(),
	}
	s.mu.RLock()
	if len(s.named) > 0 {
		out.Sets = make(map[string]NamedSetStats, len(s.named))
		for name, st := range s.named {
			out.Sets[name] = statsOf(st)
		}
	}
	s.mu.RUnlock()
	return out
}

// Handler returns the HTTP API:
//
//	GET /signatures            — the default set as JSON, ETag = version;
//	                             supports If-None-Match → 304
//	GET /version               — the default set's version as text
//	GET /wait                  — long-poll: ?v=N blocks until version > N
//	                             (or a timeout), then answers the current
//	                             version as text
//	GET /sets                  — catalog: {"seq":N,"sets":{name:version}}
//	                             with the default set listed as ""
//	GET /sets/wait             — long-poll: ?s=N blocks until the catalog
//	                             sequence exceeds N (any set published)
//	GET /sets/{name}/signatures, /version, /wait
//	                           — the named-set forms; an unpublished name
//	                             reads as an empty set at version 0
//	GET /stats                 — publish counters as JSON, named sets
//	                             broken out under "sets"
//	GET /healthz               — liveness
//	GET /readyz                — readiness: 503 until any set holds a
//	                             published (or seeded) version
//
// Handler is strictly read-only; mount PublishHandler (or use
// HandlerWithPublish) to accept publishes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("Cache-Control", "no-store")
		json.NewEncoder(w).Encode(s.Stats())
	})
	mux.HandleFunc("GET /signatures", func(w http.ResponseWriter, r *http.Request) {
		set, version := s.Current()
		writeSetJSON(w, r, set, version)
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		_, version := s.Current()
		fmt.Fprintf(w, "%d", version)
	})
	mux.HandleFunc("GET /wait", func(w http.ResponseWriter, r *http.Request) {
		s.serveWait(w, r, "v", s.def.read)
	})
	mux.HandleFunc("GET /sets", func(w http.ResponseWriter, r *http.Request) {
		seq, versions := s.setsSnapshot()
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(struct {
			Seq  int64            `json:"seq"`
			Sets map[string]int64 `json:"sets"`
		}{Seq: seq, Sets: versions})
	})
	mux.HandleFunc("GET /sets/wait", func(w http.ResponseWriter, r *http.Request) {
		s.serveWait(w, r, "s", func() (int64, <-chan struct{}) {
			s.seqMu.Lock()
			defer s.seqMu.Unlock()
			return s.seq, s.seqChanged
		})
	})
	mux.HandleFunc("GET /sets/{name}/signatures", func(w http.ResponseWriter, r *http.Request) {
		set, version, _ := s.CurrentNamed(r.PathValue("name"))
		writeSetJSON(w, r, set, version)
	})
	mux.HandleFunc("GET /sets/{name}/version", func(w http.ResponseWriter, r *http.Request) {
		_, version, _ := s.CurrentNamed(r.PathValue("name"))
		fmt.Fprintf(w, "%d", version)
	})
	mux.HandleFunc("GET /sets/{name}/wait", func(w http.ResponseWriter, r *http.Request) {
		name := r.PathValue("name")
		// An unpublished name waits on the catalog broadcast: its first
		// publish bumps the sequence, re-arming the check — so watching a
		// set that does not exist yet neither errors nor allocates state.
		s.serveWait(w, r, "v", func() (int64, <-chan struct{}) {
			s.mu.RLock()
			st := s.named[name]
			s.mu.RUnlock()
			if st == nil {
				s.seqMu.Lock()
				defer s.seqMu.Unlock()
				return 0, s.seqChanged
			}
			return st.read()
		})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	mux.HandleFunc("GET /readyz", func(w http.ResponseWriter, r *http.Request) {
		// A distributor with nothing to distribute should not take
		// watcher traffic: cold nodes answer 503 until a seed load or
		// first publish lands a version in some set.
		_, version := s.Current()
		if version == 0 && s.Seq() == 0 {
			http.Error(w, "no signature set yet", http.StatusServiceUnavailable)
			return
		}
		io.WriteString(w, "ready")
	})
	return mux
}

// TraceHeader carries a trace ID across the pipeline's HTTP hops: the
// publisher sets it from the set's first provenance trace, the server
// stores it into the set and echoes it on fetches, so a watcher's reload
// can adopt the trace of the miss that started the generation.
const TraceHeader = "X-Leaksig-Trace"

// writeSetJSON serves one signature set with the ETag/If-None-Match
// conditional-request contract shared by the default and named endpoints.
func writeSetJSON(w http.ResponseWriter, r *http.Request, set *signature.Set, version int64) {
	etag := fmt.Sprintf("%q", strconv.FormatInt(version, 10))
	if len(set.Traces) > 0 {
		w.Header().Set(TraceHeader, set.Traces[0])
	}
	if r.Header.Get("If-None-Match") == etag {
		w.WriteHeader(http.StatusNotModified)
		return
	}
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		http.Error(w, "encoding failure", http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("ETag", etag)
	w.Write(buf.Bytes())
}

// serveWait is the long-poll shared by /wait, /sets/wait, and the named
// waits: block until read() exceeds the ?{param}= value (or a timeout),
// then answer the current value as text.
func (s *Server) serveWait(w http.ResponseWriter, r *http.Request, param string, read func() (int64, <-chan struct{})) {
	after := int64(0)
	if v := r.URL.Query().Get(param); v != "" {
		n, err := strconv.ParseInt(v, 10, 64)
		if err != nil {
			http.Error(w, "bad "+param+" parameter", http.StatusBadRequest)
			return
		}
		after = n
	}
	timeout := waitTimeoutMax
	if t := r.URL.Query().Get("timeout"); t != "" {
		d, err := time.ParseDuration(t)
		if err != nil || d <= 0 {
			http.Error(w, "bad timeout parameter", http.StatusBadRequest)
			return
		}
		if d < timeout {
			timeout = d
		}
	}
	deadline := time.NewTimer(timeout)
	defer deadline.Stop()
	for {
		current, notify := read()
		if current > after {
			fmt.Fprintf(w, "%d", current)
			return
		}
		select {
		case <-notify:
			// Re-read: coalesced publishes may have advanced further.
		case <-deadline.C:
			fmt.Fprintf(w, "%d", current)
			return
		case <-r.Context().Done():
			return
		}
	}
}

// PublishHandler returns the write endpoints:
//
//	POST /publish              — replace the default set
//	POST /sets/{name}/publish  — replace (or create) the named set
//
// Both route by the body's Version field: 0 auto-bumps, a non-zero
// Version must exceed the set's current one or the publish is rejected
// with 409 Conflict; the accepted version is answered as text.
//
// A non-empty token requires `Authorization: Bearer <token>` (compared
// in constant time); an empty token leaves the endpoints open, which is
// only safe behind loopback or an authenticating front. The endpoints are
// deliberately not part of Handler, so mounting the read-only API never
// exposes a write path by accident.
func (s *Server) PublishHandler(token string) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /publish", func(w http.ResponseWriter, r *http.Request) {
		s.servePublish(w, r, "", token)
	})
	mux.HandleFunc("POST /sets/{name}/publish", func(w http.ResponseWriter, r *http.Request) {
		s.servePublish(w, r, r.PathValue("name"), token)
	})
	return mux
}

func (s *Server) servePublish(w http.ResponseWriter, r *http.Request, name, token string) {
	if token != "" {
		if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+token)) != 1 {
			http.Error(w, "missing or wrong bearer token", http.StatusUnauthorized)
			return
		}
	}
	set, err := signature.ReadJSON(r.Body)
	if err != nil {
		http.Error(w, fmt.Sprintf("bad signature set: %v", err), http.StatusBadRequest)
		return
	}
	// Reject unknown kinds and views here, at the wire boundary: a
	// typo'd kind accepted into the fleet would compile to a signature
	// that silently never matches.
	if err := set.Validate(); err != nil {
		http.Error(w, fmt.Sprintf("bad signature set: %v", err), http.StatusBadRequest)
		return
	}
	// A publisher that carries trace context only in the header (older
	// bodies, hand-rolled curl publishes) still gets provenance stored.
	if id := r.Header.Get(TraceHeader); id != "" && len(set.Traces) == 0 {
		set.Traces = []string{id}
	}
	v, err := s.PublishNamedSet(name, set)
	if err != nil {
		status := http.StatusBadRequest
		if errors.Is(err, ErrStaleVersion) {
			status = http.StatusConflict
		}
		http.Error(w, err.Error(), status)
		return
	}
	fmt.Fprintf(w, "%d", v)
}

// HandlerWithPublish mounts the read-only API plus the publish endpoints
// guarded by token ("" leaves them open; see PublishHandler).
func (s *Server) HandlerWithPublish(token string) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("POST /publish", s.PublishHandler(token))
	mux.Handle("POST /sets/{name}/publish", s.PublishHandler(token))
	return mux
}

// setCache is one set's conditional-fetch state inside a Client.
type setCache struct {
	etag   string
	cached *signature.Set
}

// Client fetches signature sets from a Server's HTTP API — the default
// set and any named sets, each cached independently for conditional
// requests.
type Client struct {
	base    string
	hc      *http.Client
	token   string
	breaker *resilience.Breaker

	jmu  sync.Mutex
	jrng *rand.Rand
	// sleep parks a watch loop between retries; tests replace it with a
	// fake clock so backoff behavior is assertable without real time.
	sleep func(ctx context.Context, d time.Duration) error

	mu     sync.Mutex
	caches map[string]*setCache // keyed by set name; "" = default
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8700"). httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{
		base:   base,
		hc:     httpClient,
		jrng:   rand.New(rand.NewSource(time.Now().UnixNano())),
		sleep:  sleepCtx,
		caches: make(map[string]*setCache),
	}
}

// SetToken installs the bearer token sent on Publish ("" sends none).
// Call before the first Publish; it is not synchronized with in-flight
// requests.
func (c *Client) SetToken(token string) { c.token = token }

// SetBreaker gates the publish path behind a circuit breaker: while it
// is open, Publish and PublishNamed fail immediately with an error
// wrapping resilience.ErrOpen instead of dialing a dead server. Fetch
// and watch paths are NOT gated — serving stale signatures beats
// serving none, so reads keep probing. Call before concurrent use.
func (c *Client) SetBreaker(br *resilience.Breaker) { c.breaker = br }

// SetRetrySeed fixes the watch-retry jitter stream — for tests and
// chaos harnesses that need reproducible retry timing. Call before
// concurrent use.
func (c *Client) SetRetrySeed(seed int64) {
	c.jmu.Lock()
	c.jrng = rand.New(rand.NewSource(seed))
	c.jmu.Unlock()
}

// retrySleep parks a watch loop for a jittered interval drawn uniformly
// from [d/2, d]. The jitter is the point: thousands of watchers that
// all lost the same restarted server would otherwise retry in lockstep
// forever, re-flooding it at exactly the fallback cadence.
func (c *Client) retrySleep(ctx context.Context, d time.Duration) error {
	if d > 1 {
		c.jmu.Lock()
		f := c.jrng.Float64()
		c.jmu.Unlock()
		d -= time.Duration(f * 0.5 * float64(d))
	}
	return c.sleep(ctx, d)
}

// pathPrefix maps a set name to its URL prefix: "" (default set) stays at
// the root, named sets live under /sets/{name}.
func pathPrefix(name string) string {
	if name == "" {
		return ""
	}
	return "/sets/" + url.PathEscape(name)
}

// Publish POSTs the set to the server's default publish endpoint and
// returns the version the server accepted it as. A non-zero set.Version
// engages the server's strict-increase guard; a 409 response surfaces as
// an error wrapping ErrStaleVersion.
func (c *Client) Publish(ctx context.Context, set *signature.Set) (int64, error) {
	return c.publishPath(ctx, "", set)
}

// PublishNamed is Publish against one named set's independent version
// sequence.
func (c *Client) PublishNamed(ctx context.Context, name string, set *signature.Set) (int64, error) {
	return c.publishPath(ctx, name, set)
}

func (c *Client) publishPath(ctx context.Context, name string, set *signature.Set) (int64, error) {
	if c.breaker != nil {
		if !c.breaker.Allow() {
			return 0, fmt.Errorf("sigserver: publish %q: %w", name, resilience.ErrOpen)
		}
		v, err := c.publishOnce(ctx, name, set)
		// A stale-version conflict proves the server is alive and
		// deciding; only transport and server-side failures count
		// against the breaker.
		if errors.Is(err, ErrStaleVersion) {
			c.breaker.Record(nil)
		} else {
			c.breaker.Record(err)
		}
		return v, err
	}
	return c.publishOnce(ctx, name, set)
}

func (c *Client) publishOnce(ctx context.Context, name string, set *signature.Set) (int64, error) {
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		return 0, fmt.Errorf("sigserver: encoding set: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+pathPrefix(name)+"/publish", &buf)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if len(set.Traces) > 0 {
		req.Header.Set(TraceHeader, set.Traces[0])
	}
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("sigserver: publishing: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return 0, fmt.Errorf("%w: %s", ErrStaleVersion, bytes.TrimSpace(body))
	default:
		return 0, fmt.Errorf("sigserver: publish status %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	v, err := strconv.ParseInt(string(bytes.TrimSpace(body)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sigserver: parsing publish version %q: %w", body, err)
	}
	return v, nil
}

// Fetch retrieves the current default signature set, reusing the cached
// copy when the server reports it unchanged. The second result reports
// whether the set changed since the previous Fetch.
func (c *Client) Fetch(ctx context.Context) (*signature.Set, bool, error) {
	return c.fetchPath(ctx, "")
}

// FetchNamed is Fetch against one named set, with its own conditional
// cache. An unpublished name yields an empty set at version 0.
func (c *Client) FetchNamed(ctx context.Context, name string) (*signature.Set, bool, error) {
	return c.fetchPath(ctx, name)
}

func (c *Client) cache(name string) *setCache {
	sc := c.caches[name]
	if sc == nil {
		sc = &setCache{}
		c.caches[name] = sc
	}
	return sc
}

func (c *Client) fetchPath(ctx context.Context, name string) (*signature.Set, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+pathPrefix(name)+"/signatures", nil)
	if err != nil {
		return nil, false, fmt.Errorf("sigserver: building request: %w", err)
	}
	c.mu.Lock()
	if etag := c.cache(name).etag; etag != "" {
		req.Header.Set("If-None-Match", etag)
	}
	c.mu.Unlock()
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("sigserver: fetching signatures: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		c.mu.Lock()
		cached := c.cache(name).cached
		c.mu.Unlock()
		if cached == nil {
			return nil, false, fmt.Errorf("sigserver: 304 without cached set")
		}
		return cached, false, nil
	case http.StatusOK:
		set, err := signature.ReadJSON(resp.Body)
		if err != nil {
			return nil, false, err
		}
		c.mu.Lock()
		sc := c.cache(name)
		sc.etag = resp.Header.Get("ETag")
		sc.cached = set
		c.mu.Unlock()
		return set, true, nil
	default:
		return nil, false, fmt.Errorf("sigserver: unexpected status %s", resp.Status)
	}
}

// Version asks the server for the default set's current version.
func (c *Client) Version(ctx context.Context) (int64, error) {
	return c.intGet(ctx, pathPrefix("")+"/version")
}

// VersionNamed asks the server for one named set's current version.
func (c *Client) VersionNamed(ctx context.Context, name string) (int64, error) {
	return c.intGet(ctx, pathPrefix(name)+"/version")
}

// intGet fetches one integer-bodied endpoint.
func (c *Client) intGet(ctx context.Context, path string) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("sigserver: fetching %s: %w", path, err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return 0, fmt.Errorf("sigserver: server has no %s endpoint: %w", path, ErrNoWait)
	default:
		return 0, fmt.Errorf("sigserver: unexpected status %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64))
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(string(bytes.TrimSpace(body)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sigserver: parsing %s body %q: %w", path, body, err)
	}
	return v, nil
}

// WaitVersion long-polls the server's /wait endpoint until the default
// set's version exceeds after, returning the version it saw. A
// server-side timeout returns the unchanged version; callers loop.
// Servers predating /wait yield an error wrapping ErrNoWait, which Watch
// treats as a signal to fall back to interval polling.
func (c *Client) WaitVersion(ctx context.Context, after int64) (int64, error) {
	return c.intGet(ctx, fmt.Sprintf("%s/wait?v=%d", pathPrefix(""), after))
}

// WaitVersionNamed is WaitVersion against one named set. Waiting on a
// name that has not been published yet blocks until its first publish.
func (c *Client) WaitVersionNamed(ctx context.Context, name string, after int64) (int64, error) {
	return c.intGet(ctx, fmt.Sprintf("%s/wait?v=%d", pathPrefix(name), after))
}

// Sets fetches the server's set catalog: the catalog sequence plus every
// set's version, the default set included as "".
func (c *Client) Sets(ctx context.Context) (int64, map[string]int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/sets", nil)
	if err != nil {
		return 0, nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("sigserver: fetching sets: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return 0, nil, fmt.Errorf("sigserver: server has no /sets endpoint: %w", ErrNoWait)
	default:
		return 0, nil, fmt.Errorf("sigserver: unexpected status %s", resp.Status)
	}
	var out struct {
		Seq  int64            `json:"seq"`
		Sets map[string]int64 `json:"sets"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&out); err != nil {
		return 0, nil, fmt.Errorf("sigserver: decoding sets: %w", err)
	}
	if out.Sets == nil {
		out.Sets = map[string]int64{}
	}
	return out.Seq, out.Sets, nil
}

// WaitSets long-polls /sets/wait until the catalog sequence exceeds
// after — i.e. until any set (default or named) is published.
func (c *Client) WaitSets(ctx context.Context, after int64) (int64, error) {
	return c.intGet(ctx, fmt.Sprintf("/sets/wait?s=%d", after))
}

// ErrNoWait marks a server without the /wait long-poll endpoint.
var ErrNoWait = errors.New("wait endpoint unsupported")

// fetchTimeout bounds one Watch fetch attempt so a hung server cannot
// stall the refresh loop forever.
const fetchTimeout = 30 * time.Second

// Watch delivers the current default signature set, then every subsequent
// publish, to fn until ctx is cancelled. Between deliveries it blocks on
// the server's /wait long-poll, so a new version arrives within one round
// trip; against servers without /wait (or across transient errors) it
// degrades to polling every fallback (which also bounds the retry delay;
// 0 means 10s). Every round trip carries its own deadline, so a
// half-open connection costs one retry, never a wedged watch. fn runs on
// the watching goroutine.
func (c *Client) Watch(ctx context.Context, fallback time.Duration, fn func(*signature.Set)) error {
	return c.watchSet(ctx, "", fallback, fn)
}

// WatchNamed is Watch against one named set.
func (c *Client) WatchNamed(ctx context.Context, name string, fallback time.Duration, fn func(*signature.Set)) error {
	return c.watchSet(ctx, name, fallback, fn)
}

func (c *Client) watchSet(ctx context.Context, name string, fallback time.Duration, fn func(*signature.Set)) error {
	if fallback <= 0 {
		fallback = 10 * time.Second
	}
	longPoll := true
	first := true
	for {
		set, changed, err := c.fetchTimed(ctx, name)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if err := c.retrySleep(ctx, fallback); err != nil {
				return err
			}
			continue
		case changed || first:
			fn(set)
			first = false
		}
		last := set.Version

		if !longPoll {
			if err := c.retrySleep(ctx, fallback); err != nil {
				return err
			}
			continue
		}
		// Re-arm the long poll until the version actually advances: a
		// server-side timeout answers with the unchanged version, and
		// re-fetching /signatures on it would learn nothing — at fleet
		// fan-out that doubles idle request volume. Only an advanced
		// version (or an error, which is cheap to resync after) breaks
		// out to the fetch.
		for {
			v, err := c.waitVersionTimed(ctx, name, last)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				if errors.Is(err, ErrNoWait) {
					longPoll = false
				}
				if err := c.retrySleep(ctx, fallback); err != nil {
					return err
				}
				break
			}
			if v > last {
				break
			}
		}
	}
}

// WatchSets follows every set the server distributes: it delivers the
// default set immediately, every named set already published, and then
// each set's subsequent publishes — all through one /sets/wait long poll
// instead of one connection per set. fn receives the set name ("" for
// the default) and runs on the watching goroutine. Against servers
// without /sets it degrades to polling every fallback.
func (c *Client) WatchSets(ctx context.Context, fallback time.Duration, fn func(name string, set *signature.Set)) error {
	if fallback <= 0 {
		fallback = 10 * time.Second
	}
	longPoll := true
	first := true
	known := make(map[string]int64)
	for {
		seq, versions, err := c.setsTimed(ctx)
		if err != nil {
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if errors.Is(err, ErrNoWait) {
				// Server predates /sets: the named catalog cannot be
				// followed at all, so degrade to watching the default set —
				// the only set such a server distributes.
				return c.watchSet(ctx, "", fallback, func(set *signature.Set) { fn("", set) })
			}
			if err := c.retrySleep(ctx, fallback); err != nil {
				return err
			}
			continue
		}
		if _, ok := versions[""]; !ok {
			versions[""] = 0 // the default set is always watched
		}
		fetchFailed := false
		for name, v := range versions {
			if !first && v == known[name] {
				continue
			}
			set, _, err := c.fetchTimed(ctx, name)
			if err != nil {
				fetchFailed = true
				continue
			}
			fn(name, set)
			known[name] = set.Version
		}
		first = false
		if fetchFailed {
			// A set listed in the catalog was not delivered; retry after
			// the fallback interval rather than parking on /sets/wait —
			// the sequence only advances on another publish, which may
			// never come, and the undelivered set would be lost until it
			// did.
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if err := c.retrySleep(ctx, fallback); err != nil {
				return err
			}
			continue
		}

		if !longPoll {
			if err := c.retrySleep(ctx, fallback); err != nil {
				return err
			}
			continue
		}
		// Same re-arm rule as watchSet: only an advanced catalog sequence
		// warrants re-listing the sets.
		for {
			v, err := c.waitSetsTimed(ctx, seq)
			if err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				if errors.Is(err, ErrNoWait) {
					longPoll = false
				}
				if err := c.retrySleep(ctx, fallback); err != nil {
					return err
				}
				break
			}
			if v > seq {
				break
			}
		}
	}
}

// fetchTimed is fetchPath with a per-attempt deadline.
func (c *Client) fetchTimed(ctx context.Context, name string) (*signature.Set, bool, error) {
	ctx, cancel := context.WithTimeout(ctx, fetchTimeout)
	defer cancel()
	return c.fetchPath(ctx, name)
}

// setsTimed is Sets with a per-attempt deadline.
func (c *Client) setsTimed(ctx context.Context) (int64, map[string]int64, error) {
	ctx, cancel := context.WithTimeout(ctx, fetchTimeout)
	defer cancel()
	return c.Sets(ctx)
}

// waitVersionTimed is WaitVersion(Named) with a deadline comfortably
// above the server's own long-poll cap, so only a hung connection — not a
// patient server — trips it.
func (c *Client) waitVersionTimed(ctx context.Context, name string, after int64) (int64, error) {
	ctx, cancel := context.WithTimeout(ctx, waitTimeoutMax+fetchTimeout)
	defer cancel()
	if name == "" {
		return c.WaitVersion(ctx, after)
	}
	return c.WaitVersionNamed(ctx, name, after)
}

// waitSetsTimed is WaitSets with the same generous deadline.
func (c *Client) waitSetsTimed(ctx context.Context, after int64) (int64, error) {
	ctx, cancel := context.WithTimeout(ctx, waitTimeoutMax+fetchTimeout)
	defer cancel()
	return c.WaitSets(ctx, after)
}

// sleepCtx sleeps for d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
