// Package sigserver implements the signature distribution side of the
// paper's deployment (Figure 3a): "a separate server collects application
// traffic, clustering the data and generating signatures", and the
// on-device "information flow control application ... fetches signatures
// from the servers".
//
// Server publishes versioned signature sets over HTTP; Client fetches them
// with conditional requests so an unchanged set costs one cheap round trip.
// Publishes are observable three ways: in-process via OnPublish callbacks
// or the Changed broadcast channel, and over HTTP via the long-polling
// /wait endpoint, which Client.Watch uses so a streaming consumer learns
// of a new version within one round trip instead of a poll interval.
package sigserver

import (
	"bytes"
	"context"
	"crypto/subtle"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"leaksig/internal/signature"
)

// waitTimeoutMax caps how long one /wait request may hang before the
// server answers with the unchanged version and the client re-arms.
const waitTimeoutMax = 30 * time.Second

// ErrStaleVersion is returned by PublishVersioned (and surfaced over
// HTTP as 409 Conflict) when a publish carries a version at or below the
// server's current one — the guard that stops stale or looping
// auto-publishers from rolling the fleet backwards.
var ErrStaleVersion = errors.New("sigserver: publish version not greater than current")

// Server holds the currently published signature set. It is safe for
// concurrent use; the zero value is not usable, construct with New.
type Server struct {
	mu        sync.RWMutex
	set       *signature.Set
	version   int64
	changed   chan struct{} // closed and replaced on every Publish
	onPublish []func(int64)

	publishes         atomic.Uint64
	publishesRejected atomic.Uint64
}

// New returns a server with an empty signature set at version 0.
func New() *Server {
	return &Server{set: &signature.Set{}, changed: make(chan struct{})}
}

// Publish replaces the current signature set and bumps the version. The
// set's Version field is overwritten with the server's new version. Every
// OnPublish callback runs synchronously before Publish returns, and the
// Changed broadcast fires.
func (s *Server) Publish(set *signature.Set) int64 {
	s.mu.Lock()
	version := s.version + 1
	v, _ := s.publishLocked(set, version)
	return v
}

// PublishVersioned installs the set under its own Version field, which
// must be strictly greater than the server's current version; stale
// versions are rejected with ErrStaleVersion (and counted). This is the
// auto-publish path: writers stamp last-seen + 1, so two loops feeding
// one server cannot ping-pong the fleet between their generations.
func (s *Server) PublishVersioned(set *signature.Set) (int64, error) {
	s.mu.Lock()
	if set.Version <= s.version {
		cur := s.version
		s.mu.Unlock()
		s.publishesRejected.Add(1)
		return cur, fmt.Errorf("%w: got %d, current %d", ErrStaleVersion, set.Version, cur)
	}
	return s.publishLocked(set, set.Version)
}

// publishLocked installs the set at version, releasing s.mu before the
// broadcast and callbacks. Callers hold s.mu.
func (s *Server) publishLocked(set *signature.Set, version int64) (int64, error) {
	s.version = version
	set.Version = version
	s.set = set
	notify := s.changed
	s.changed = make(chan struct{})
	callbacks := make([]func(int64), len(s.onPublish))
	copy(callbacks, s.onPublish)
	s.mu.Unlock()
	s.publishes.Add(1)
	close(notify)
	for _, fn := range callbacks {
		fn(version)
	}
	return version, nil
}

// PublishSet routes a publish by its version stamp: 0 means "assign me
// the next version" (Publish), anything else is checked against the
// strict-increase guard (PublishVersioned). It is the behavior of the
// HTTP publish endpoint.
func (s *Server) PublishSet(set *signature.Set) (int64, error) {
	if set.Version == 0 {
		return s.Publish(set), nil
	}
	return s.PublishVersioned(set)
}

// ServerStats are the server's lifetime publish counters and live state.
type ServerStats struct {
	Version           int64  `json:"version"`
	Signatures        int    `json:"signatures"`
	Publishes         uint64 `json:"publishes"`
	PublishesRejected uint64 `json:"publishes_rejected"`
}

// Stats returns a snapshot of the server's counters.
func (s *Server) Stats() ServerStats {
	s.mu.RLock()
	st := ServerStats{Version: s.version, Signatures: s.set.Len()}
	s.mu.RUnlock()
	st.Publishes = s.publishes.Load()
	st.PublishesRejected = s.publishesRejected.Load()
	return st
}

// OnPublish registers a callback invoked with the new version after every
// Publish. Callbacks run synchronously on the publishing goroutine and
// must not call Publish themselves.
func (s *Server) OnPublish(fn func(version int64)) {
	s.mu.Lock()
	s.onPublish = append(s.onPublish, fn)
	s.mu.Unlock()
}

// Changed returns a channel that is closed at the next Publish. Receive
// from it to block until the set changes, then call Current (and Changed
// again to re-arm).
func (s *Server) Changed() <-chan struct{} {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.changed
}

// Current returns the published set and version.
func (s *Server) Current() (*signature.Set, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.set, s.version
}

// Handler returns the HTTP API:
//
//	GET /signatures — the signature set as JSON, ETag = version;
//	                  supports If-None-Match → 304
//	GET /version    — the current version as text
//	GET /wait       — long-poll: ?v=N blocks until version > N (or a
//	                  timeout), then answers the current version as text
//	GET /stats      — publish counters as JSON (publishes_rejected et al.)
//	GET /healthz    — liveness
//
// Handler is strictly read-only; mount PublishHandler (or use
// HandlerWithPublish) to accept publishes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /stats", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(s.Stats())
	})
	mux.HandleFunc("GET /signatures", func(w http.ResponseWriter, r *http.Request) {
		set, version := s.Current()
		etag := fmt.Sprintf("%q", strconv.FormatInt(version, 10))
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		var buf bytes.Buffer
		if err := set.WriteJSON(&buf); err != nil {
			http.Error(w, "encoding failure", http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "application/json")
		w.Header().Set("ETag", etag)
		w.Write(buf.Bytes())
	})
	mux.HandleFunc("GET /version", func(w http.ResponseWriter, r *http.Request) {
		_, version := s.Current()
		fmt.Fprintf(w, "%d", version)
	})
	mux.HandleFunc("GET /wait", func(w http.ResponseWriter, r *http.Request) {
		after := int64(0)
		if v := r.URL.Query().Get("v"); v != "" {
			n, err := strconv.ParseInt(v, 10, 64)
			if err != nil {
				http.Error(w, "bad v parameter", http.StatusBadRequest)
				return
			}
			after = n
		}
		timeout := waitTimeoutMax
		if t := r.URL.Query().Get("timeout"); t != "" {
			d, err := time.ParseDuration(t)
			if err != nil || d <= 0 {
				http.Error(w, "bad timeout parameter", http.StatusBadRequest)
				return
			}
			if d < timeout {
				timeout = d
			}
		}
		deadline := time.NewTimer(timeout)
		defer deadline.Stop()
		for {
			s.mu.RLock()
			version := s.version
			notify := s.changed
			s.mu.RUnlock()
			if version > after {
				fmt.Fprintf(w, "%d", version)
				return
			}
			select {
			case <-notify:
				// Re-read: coalesced publishes may have advanced further.
			case <-deadline.C:
				fmt.Fprintf(w, "%d", version)
				return
			case <-r.Context().Done():
				return
			}
		}
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	})
	return mux
}

// PublishHandler returns the write endpoint:
//
//	POST /publish — replace the set: a body with Version 0 auto-bumps,
//	                a non-zero Version must exceed the current one or
//	                the publish is rejected with 409 Conflict; answers
//	                the accepted version as text
//
// A non-empty token requires `Authorization: Bearer <token>` (compared
// in constant time); an empty token leaves the endpoint open, which is
// only safe behind loopback or an authenticating front. The endpoint is
// deliberately not part of Handler, so mounting the read-only API never
// exposes a write path by accident.
func (s *Server) PublishHandler(token string) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		if token != "" {
			if subtle.ConstantTimeCompare([]byte(r.Header.Get("Authorization")), []byte("Bearer "+token)) != 1 {
				http.Error(w, "missing or wrong bearer token", http.StatusUnauthorized)
				return
			}
		}
		set, err := signature.ReadJSON(r.Body)
		if err != nil {
			http.Error(w, fmt.Sprintf("bad signature set: %v", err), http.StatusBadRequest)
			return
		}
		v, err := s.PublishSet(set)
		if err != nil {
			http.Error(w, err.Error(), http.StatusConflict)
			return
		}
		fmt.Fprintf(w, "%d", v)
	})
}

// HandlerWithPublish mounts the read-only API plus the publish endpoint
// guarded by token ("" leaves it open; see PublishHandler).
func (s *Server) HandlerWithPublish(token string) http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", s.Handler())
	mux.Handle("POST /publish", s.PublishHandler(token))
	return mux
}

// Client fetches signature sets from a Server's HTTP API.
type Client struct {
	base  string
	hc    *http.Client
	token string

	mu     sync.Mutex
	etag   string
	cached *signature.Set
}

// NewClient builds a client for the server at base (e.g.
// "http://127.0.0.1:8700"). httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

// SetToken installs the bearer token sent on Publish ("" sends none).
// Call before the first Publish; it is not synchronized with in-flight
// requests.
func (c *Client) SetToken(token string) { c.token = token }

// Publish POSTs the set to the server's publish endpoint and returns the
// version the server accepted it as. A non-zero set.Version engages the
// server's strict-increase guard; a 409 response surfaces as an error
// wrapping ErrStaleVersion.
func (c *Client) Publish(ctx context.Context, set *signature.Set) (int64, error) {
	var buf bytes.Buffer
	if err := set.WriteJSON(&buf); err != nil {
		return 0, fmt.Errorf("sigserver: encoding set: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.base+"/publish", &buf)
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	if c.token != "" {
		req.Header.Set("Authorization", "Bearer "+c.token)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("sigserver: publishing: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusConflict:
		return 0, fmt.Errorf("%w: %s", ErrStaleVersion, bytes.TrimSpace(body))
	default:
		return 0, fmt.Errorf("sigserver: publish status %s: %s", resp.Status, bytes.TrimSpace(body))
	}
	v, err := strconv.ParseInt(string(bytes.TrimSpace(body)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sigserver: parsing publish version %q: %w", body, err)
	}
	return v, nil
}

// Fetch retrieves the current signature set, reusing the cached copy when
// the server reports it unchanged. The second result reports whether the
// set changed since the previous Fetch.
func (c *Client) Fetch(ctx context.Context) (*signature.Set, bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/signatures", nil)
	if err != nil {
		return nil, false, fmt.Errorf("sigserver: building request: %w", err)
	}
	c.mu.Lock()
	if c.etag != "" {
		req.Header.Set("If-None-Match", c.etag)
	}
	c.mu.Unlock()
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, false, fmt.Errorf("sigserver: fetching signatures: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusNotModified:
		c.mu.Lock()
		cached := c.cached
		c.mu.Unlock()
		if cached == nil {
			return nil, false, fmt.Errorf("sigserver: 304 without cached set")
		}
		return cached, false, nil
	case http.StatusOK:
		set, err := signature.ReadJSON(resp.Body)
		if err != nil {
			return nil, false, err
		}
		c.mu.Lock()
		c.etag = resp.Header.Get("ETag")
		c.cached = set
		c.mu.Unlock()
		return set, true, nil
	default:
		return nil, false, fmt.Errorf("sigserver: unexpected status %s", resp.Status)
	}
}

// Version asks the server for its current version.
func (c *Client) Version(ctx context.Context) (int64, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/version", nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("sigserver: fetching version: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("sigserver: unexpected status %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64))
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(string(bytes.TrimSpace(body)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sigserver: parsing version %q: %w", body, err)
	}
	return v, nil
}

// WaitVersion long-polls the server's /wait endpoint until its version
// exceeds after, returning the version it saw. A server-side timeout
// returns the unchanged version; callers loop. Servers predating /wait
// yield an error wrapping ErrNoWait, which Watch treats as a signal to
// fall back to interval polling.
func (c *Client) WaitVersion(ctx context.Context, after int64) (int64, error) {
	url := fmt.Sprintf("%s/wait?v=%d", c.base, after)
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return 0, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, fmt.Errorf("sigserver: waiting for version: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		return 0, fmt.Errorf("sigserver: server has no /wait endpoint: %w", ErrNoWait)
	default:
		return 0, fmt.Errorf("sigserver: unexpected status %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64))
	if err != nil {
		return 0, err
	}
	v, err := strconv.ParseInt(string(bytes.TrimSpace(body)), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("sigserver: parsing wait version %q: %w", body, err)
	}
	return v, nil
}

// ErrNoWait marks a server without the /wait long-poll endpoint.
var ErrNoWait = errors.New("wait endpoint unsupported")

// fetchTimeout bounds one Watch fetch attempt so a hung server cannot
// stall the refresh loop forever.
const fetchTimeout = 30 * time.Second

// Watch delivers the current signature set, then every subsequent publish,
// to fn until ctx is cancelled. Between deliveries it blocks on the
// server's /wait long-poll, so a new version arrives within one round
// trip; against servers without /wait (or across transient errors) it
// degrades to polling every fallback (which also bounds the retry delay;
// 0 means 10s). Every round trip carries its own deadline, so a
// half-open connection costs one retry, never a wedged watch. fn runs on
// the watching goroutine.
func (c *Client) Watch(ctx context.Context, fallback time.Duration, fn func(*signature.Set)) error {
	if fallback <= 0 {
		fallback = 10 * time.Second
	}
	longPoll := true
	first := true
	last := int64(0)
	for {
		set, changed, err := c.fetchTimed(ctx)
		switch {
		case err != nil:
			if ctx.Err() != nil {
				return ctx.Err()
			}
			if err := sleepCtx(ctx, fallback); err != nil {
				return err
			}
			continue
		case changed || first:
			fn(set)
			first = false
		}
		last = set.Version

		if longPoll {
			if _, err := c.waitVersionTimed(ctx, last); err != nil {
				if ctx.Err() != nil {
					return ctx.Err()
				}
				if errors.Is(err, ErrNoWait) {
					longPoll = false
				}
				if err := sleepCtx(ctx, fallback); err != nil {
					return err
				}
			}
			continue
		}
		if err := sleepCtx(ctx, fallback); err != nil {
			return err
		}
	}
}

// fetchTimed is Fetch with a per-attempt deadline.
func (c *Client) fetchTimed(ctx context.Context) (*signature.Set, bool, error) {
	ctx, cancel := context.WithTimeout(ctx, fetchTimeout)
	defer cancel()
	return c.Fetch(ctx)
}

// waitVersionTimed is WaitVersion with a deadline comfortably above the
// server's own long-poll cap, so only a hung connection — not a patient
// server — trips it.
func (c *Client) waitVersionTimed(ctx context.Context, after int64) (int64, error) {
	ctx, cancel := context.WithTimeout(ctx, waitTimeoutMax+fetchTimeout)
	defer cancel()
	return c.WaitVersion(ctx, after)
}

// sleepCtx sleeps for d or until the context ends.
func sleepCtx(ctx context.Context, d time.Duration) error {
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
		return ctx.Err()
	case <-t.C:
		return nil
	}
}
