package sigserver

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"leaksig/internal/signature"
)

func testSet(tokens ...string) *signature.Set {
	return &signature.Set{Signatures: []*signature.Signature{
		{ID: 0, Tokens: tokens, ClusterSize: 2},
	}}
}

func TestPublishBumpsVersion(t *testing.T) {
	s := New()
	if _, v := s.Current(); v != 0 {
		t.Fatalf("initial version = %d", v)
	}
	v1 := s.Publish(testSet("tok-one"))
	v2 := s.Publish(testSet("tok-two"))
	if v1 != 1 || v2 != 2 {
		t.Errorf("versions = %d, %d", v1, v2)
	}
	set, v := s.Current()
	if v != 2 || set.Version != 2 || set.Signatures[0].Tokens[0] != "tok-two" {
		t.Errorf("current = %+v at %d", set, v)
	}
}

func TestFetchRoundTrip(t *testing.T) {
	s := New()
	s.Publish(testSet("udid=f3a9c1d2"))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	set, changed, err := c.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("first fetch should report change")
	}
	if set.Len() != 1 || set.Signatures[0].Tokens[0] != "udid=f3a9c1d2" {
		t.Fatalf("fetched set = %+v", set)
	}

	// Second fetch: unchanged, served from cache via 304.
	set2, changed, err := c.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("unchanged fetch reported change")
	}
	if set2 != set {
		t.Error("cache not reused on 304")
	}

	// Publish a new set: fetch must see it.
	s.Publish(testSet("imei=3539"))
	set3, changed, err := c.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !changed || set3.Signatures[0].Tokens[0] != "imei=3539" {
		t.Errorf("update not observed: changed=%v set=%+v", changed, set3)
	}
}

func TestVersionEndpoint(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	v, err := c.Version(context.Background())
	if err != nil || v != 0 {
		t.Fatalf("version = %d, %v", v, err)
	}
	s.Publish(testSet("x-token"))
	v, err = c.Version(context.Background())
	if err != nil || v != 1 {
		t.Fatalf("version after publish = %d, %v", v, err)
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %s", resp.Status)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/signatures", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("POST /signatures succeeded")
	}
}

func TestClientErrorPaths(t *testing.T) {
	// Unreachable server.
	c := NewClient("http://127.0.0.1:1", nil)
	if _, _, err := c.Fetch(context.Background()); err == nil {
		t.Error("fetch from unreachable server succeeded")
	}
	if _, err := c.Version(context.Background()); err == nil {
		t.Error("version from unreachable server succeeded")
	}
	// Garbage version body.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not-a-number"))
	}))
	defer garbage.Close()
	if _, err := NewClient(garbage.URL, nil).Version(context.Background()); err == nil {
		t.Error("garbage version parsed")
	}
}

func TestFetchContextCancelled(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := NewClient(ts.URL, nil).Fetch(ctx); err == nil {
		t.Error("cancelled fetch succeeded")
	}
}

func TestOnPublishCallback(t *testing.T) {
	s := New()
	var got []int64
	s.OnPublish(func(v int64) { got = append(got, v) })
	s.Publish(testSet("tok-one"))
	s.Publish(testSet("tok-two"))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("callback versions = %v", got)
	}
}

func TestChangedBroadcast(t *testing.T) {
	s := New()
	ch := s.Changed()
	select {
	case <-ch:
		t.Fatal("Changed fired before any publish")
	default:
	}
	s.Publish(testSet("tok-one"))
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Changed did not fire on publish")
	}
	// Re-arm: the next channel waits for the next publish.
	ch2 := s.Changed()
	select {
	case <-ch2:
		t.Fatal("re-armed channel already closed")
	default:
	}
}

func TestWaitLongPoll(t *testing.T) {
	s := New()
	s.Publish(testSet("tok-one")) // version 1
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, nil)

	// Already-newer version answers immediately.
	v, err := c.WaitVersion(context.Background(), 0)
	if err != nil || v != 1 {
		t.Fatalf("WaitVersion(0) = %d, %v", v, err)
	}

	// Blocks until a publish from another goroutine.
	go func() {
		time.Sleep(50 * time.Millisecond)
		s.Publish(testSet("tok-two"))
	}()
	start := time.Now()
	v, err = c.WaitVersion(context.Background(), 1)
	if err != nil || v != 2 {
		t.Fatalf("WaitVersion(1) = %d, %v", v, err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("WaitVersion returned before the publish")
	}

	// Server-side timeout returns the unchanged version.
	resp, err := http.Get(ts.URL + "/wait?v=2&timeout=30ms")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "2" {
		t.Fatalf("timed-out wait body = %q", body)
	}

	// Bad parameters are rejected.
	for _, q := range []string{"?v=abc", "?timeout=xyz", "?timeout=-1s"} {
		resp, err := http.Get(ts.URL + "/wait" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /wait%s = %s, want 400", q, resp.Status)
		}
	}
}

func TestWaitVersionNoEndpoint(t *testing.T) {
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer legacy.Close()
	c := NewClient(legacy.URL, nil)
	_, err := c.WaitVersion(context.Background(), 0)
	if !errors.Is(err, ErrNoWait) {
		t.Fatalf("err = %v, want ErrNoWait", err)
	}
}

func TestWatchDeliversUpdates(t *testing.T) {
	s := New()
	s.Publish(testSet("tok-one"))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sets := make(chan *signature.Set, 8)
	done := make(chan error, 1)
	go func() {
		done <- c.Watch(ctx, time.Second, func(set *signature.Set) { sets <- set })
	}()

	first := <-sets
	if first.Version != 1 || first.Signatures[0].Tokens[0] != "tok-one" {
		t.Fatalf("initial delivery = %+v", first)
	}
	s.Publish(testSet("tok-two"))
	select {
	case next := <-sets:
		if next.Version != 2 || next.Signatures[0].Tokens[0] != "tok-two" {
			t.Fatalf("update delivery = %+v", next)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Watch never delivered the update")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Watch returned %v", err)
	}
}

func TestPublishVersionedRejectsStale(t *testing.T) {
	s := New()
	set := testSet("tok-one")
	set.Version = 5
	if v, err := s.PublishVersioned(set); err != nil || v != 5 {
		t.Fatalf("versioned publish: v=%d err=%v", v, err)
	}
	// Same version again: rejected, server unchanged.
	stale := testSet("tok-two")
	stale.Version = 5
	if _, err := s.PublishVersioned(stale); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale publish err = %v, want ErrStaleVersion", err)
	}
	// Lower version: rejected too.
	lower := testSet("tok-three")
	lower.Version = 2
	if _, err := s.PublishVersioned(lower); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("lower publish err = %v, want ErrStaleVersion", err)
	}
	cur, v := s.Current()
	if v != 5 || cur.Signatures[0].Tokens[0] != "tok-one" {
		t.Fatalf("rejected publishes mutated the server: v=%d", v)
	}
	st := s.Stats()
	if st.Publishes != 1 || st.PublishesRejected != 2 {
		t.Fatalf("stats = %+v, want 1 publish and 2 rejections", st)
	}
	// Auto-bump continues from the explicit version.
	if v := s.Publish(testSet("tok-four")); v != 6 {
		t.Fatalf("auto publish after versioned = %d, want 6", v)
	}
}

func TestPublishSetRoutesByVersion(t *testing.T) {
	s := New()
	if v, err := s.PublishSet(testSet("a")); err != nil || v != 1 {
		t.Fatalf("zero-version publish: v=%d err=%v", v, err)
	}
	explicit := testSet("b")
	explicit.Version = 10
	if v, err := s.PublishSet(explicit); err != nil || v != 10 {
		t.Fatalf("explicit publish: v=%d err=%v", v, err)
	}
	stale := testSet("c")
	stale.Version = 3
	if _, err := s.PublishSet(stale); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale routed publish err = %v", err)
	}
}

func TestHTTPPublishAndStats(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.HandlerWithPublish("sekret"))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	set := testSet("udid=f3a9c1d2")
	set.Version = 3
	// Without the token the guarded endpoint refuses.
	if _, err := c.Publish(ctx, set); err == nil {
		t.Fatal("tokenless publish accepted")
	}
	c.SetToken("sekret")
	v, err := c.Publish(ctx, set)
	if err != nil || v != 3 {
		t.Fatalf("client publish: v=%d err=%v", v, err)
	}
	// A watcher fetches what was published.
	got, changed, err := c.Fetch(ctx)
	if err != nil || !changed || got.Version != 3 {
		t.Fatalf("fetch after publish: %+v changed=%v err=%v", got, changed, err)
	}
	// Stale over HTTP: 409 surfaced as ErrStaleVersion.
	stale := testSet("tok-two")
	stale.Version = 2
	if _, err := c.Publish(ctx, stale); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale HTTP publish err = %v", err)
	}
	// Stats endpoint carries the rejection counter.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st ServerStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding stats %q: %v", body, err)
	}
	if st.Version != 3 || st.Publishes != 1 || st.PublishesRejected != 1 || st.Signatures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVersionedPublishWakesWatchers(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan int64, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Watch(ctx, 50*time.Millisecond, func(set *signature.Set) { got <- set.Version })
	}()
	if v := <-got; v != 0 {
		t.Fatalf("initial watch version = %d", v)
	}
	set := testSet("x")
	set.Version = 9
	if _, err := s.PublishVersioned(set); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 9 {
			t.Fatalf("watcher saw version %d, want 9", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never woke on versioned publish")
	}
	cancel()
	<-done
}
