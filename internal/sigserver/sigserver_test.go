package sigserver

import (
	"context"
	"net/http"
	"net/http/httptest"
	"testing"

	"leaksig/internal/signature"
)

func testSet(tokens ...string) *signature.Set {
	return &signature.Set{Signatures: []*signature.Signature{
		{ID: 0, Tokens: tokens, ClusterSize: 2},
	}}
}

func TestPublishBumpsVersion(t *testing.T) {
	s := New()
	if _, v := s.Current(); v != 0 {
		t.Fatalf("initial version = %d", v)
	}
	v1 := s.Publish(testSet("tok-one"))
	v2 := s.Publish(testSet("tok-two"))
	if v1 != 1 || v2 != 2 {
		t.Errorf("versions = %d, %d", v1, v2)
	}
	set, v := s.Current()
	if v != 2 || set.Version != 2 || set.Signatures[0].Tokens[0] != "tok-two" {
		t.Errorf("current = %+v at %d", set, v)
	}
}

func TestFetchRoundTrip(t *testing.T) {
	s := New()
	s.Publish(testSet("udid=f3a9c1d2"))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	set, changed, err := c.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("first fetch should report change")
	}
	if set.Len() != 1 || set.Signatures[0].Tokens[0] != "udid=f3a9c1d2" {
		t.Fatalf("fetched set = %+v", set)
	}

	// Second fetch: unchanged, served from cache via 304.
	set2, changed, err := c.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("unchanged fetch reported change")
	}
	if set2 != set {
		t.Error("cache not reused on 304")
	}

	// Publish a new set: fetch must see it.
	s.Publish(testSet("imei=3539"))
	set3, changed, err := c.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !changed || set3.Signatures[0].Tokens[0] != "imei=3539" {
		t.Errorf("update not observed: changed=%v set=%+v", changed, set3)
	}
}

func TestVersionEndpoint(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	v, err := c.Version(context.Background())
	if err != nil || v != 0 {
		t.Fatalf("version = %d, %v", v, err)
	}
	s.Publish(testSet("x-token"))
	v, err = c.Version(context.Background())
	if err != nil || v != 1 {
		t.Fatalf("version after publish = %d, %v", v, err)
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %s", resp.Status)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/signatures", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("POST /signatures succeeded")
	}
}

func TestClientErrorPaths(t *testing.T) {
	// Unreachable server.
	c := NewClient("http://127.0.0.1:1", nil)
	if _, _, err := c.Fetch(context.Background()); err == nil {
		t.Error("fetch from unreachable server succeeded")
	}
	if _, err := c.Version(context.Background()); err == nil {
		t.Error("version from unreachable server succeeded")
	}
	// Garbage version body.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not-a-number"))
	}))
	defer garbage.Close()
	if _, err := NewClient(garbage.URL, nil).Version(context.Background()); err == nil {
		t.Error("garbage version parsed")
	}
}

func TestFetchContextCancelled(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := NewClient(ts.URL, nil).Fetch(ctx); err == nil {
		t.Error("cancelled fetch succeeded")
	}
}
