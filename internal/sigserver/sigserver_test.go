package sigserver

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"leaksig/internal/signature"
)

func testSet(tokens ...string) *signature.Set {
	return &signature.Set{Signatures: []*signature.Signature{
		{ID: 0, Tokens: tokens, ClusterSize: 2},
	}}
}

func TestPublishBumpsVersion(t *testing.T) {
	s := New()
	if _, v := s.Current(); v != 0 {
		t.Fatalf("initial version = %d", v)
	}
	v1 := s.Publish(testSet("tok-one"))
	v2 := s.Publish(testSet("tok-two"))
	if v1 != 1 || v2 != 2 {
		t.Errorf("versions = %d, %d", v1, v2)
	}
	set, v := s.Current()
	if v != 2 || set.Version != 2 || set.Signatures[0].Tokens[0] != "tok-two" {
		t.Errorf("current = %+v at %d", set, v)
	}
}

func TestFetchRoundTrip(t *testing.T) {
	s := New()
	s.Publish(testSet("udid=f3a9c1d2"))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	set, changed, err := c.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !changed {
		t.Error("first fetch should report change")
	}
	if set.Len() != 1 || set.Signatures[0].Tokens[0] != "udid=f3a9c1d2" {
		t.Fatalf("fetched set = %+v", set)
	}

	// Second fetch: unchanged, served from cache via 304.
	set2, changed, err := c.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if changed {
		t.Error("unchanged fetch reported change")
	}
	if set2 != set {
		t.Error("cache not reused on 304")
	}

	// Publish a new set: fetch must see it.
	s.Publish(testSet("imei=3539"))
	set3, changed, err := c.Fetch(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if !changed || set3.Signatures[0].Tokens[0] != "imei=3539" {
		t.Errorf("update not observed: changed=%v set=%+v", changed, set3)
	}
}

func TestVersionEndpoint(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	v, err := c.Version(context.Background())
	if err != nil || v != 0 {
		t.Fatalf("version = %d, %v", v, err)
	}
	s.Publish(testSet("x-token"))
	v, err = c.Version(context.Background())
	if err != nil || v != 1 {
		t.Fatalf("version after publish = %d, %v", v, err)
	}
}

func TestHealthz(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("healthz = %s", resp.Status)
	}
}

// TestReadyz pins the readiness contract orchestrators route on: alive
// is not ready — a server with nothing to distribute answers 503 until
// a publish (to any set) gives watchers something to fetch.
func TestReadyz(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	get := func() int {
		t.Helper()
		resp, err := http.Get(ts.URL + "/readyz")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get(); code != http.StatusServiceUnavailable {
		t.Fatalf("empty server readyz = %d, want 503", code)
	}
	s.Publish(testSet("x-token"))
	if code := get(); code != http.StatusOK {
		t.Fatalf("readyz after publish = %d, want 200", code)
	}
}

// TestReadyzNamedSetOnly covers the learner-seeded posture: the first
// publish may land in a named set, never touching the default — the
// server is still ready (watchers of that set have content).
func TestReadyzNamedSetOnly(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	if _, err := s.PublishNamed("app.alpha", testSet("alpha-token")); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("readyz with only a named set = %s, want 200", resp.Status)
	}
}

// TestStatsHeaders pins the /stats response contract: explicit JSON
// content type and no-store, so point-in-time snapshots never come back
// stale from an intermediary cache.
func TestStatsHeaders(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("Content-Type = %q", ct)
	}
	if cc := resp.Header.Get("Cache-Control"); cc != "no-store" {
		t.Errorf("Cache-Control = %q, want no-store", cc)
	}
}

func TestMethodNotAllowed(t *testing.T) {
	ts := httptest.NewServer(New().Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/signatures", "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Error("POST /signatures succeeded")
	}
}

func TestClientErrorPaths(t *testing.T) {
	// Unreachable server.
	c := NewClient("http://127.0.0.1:1", nil)
	if _, _, err := c.Fetch(context.Background()); err == nil {
		t.Error("fetch from unreachable server succeeded")
	}
	if _, err := c.Version(context.Background()); err == nil {
		t.Error("version from unreachable server succeeded")
	}
	// Garbage version body.
	garbage := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("not-a-number"))
	}))
	defer garbage.Close()
	if _, err := NewClient(garbage.URL, nil).Version(context.Background()); err == nil {
		t.Error("garbage version parsed")
	}
}

func TestFetchContextCancelled(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := NewClient(ts.URL, nil).Fetch(ctx); err == nil {
		t.Error("cancelled fetch succeeded")
	}
}

func TestOnPublishCallback(t *testing.T) {
	s := New()
	var got []int64
	s.OnPublish(func(v int64) { got = append(got, v) })
	s.Publish(testSet("tok-one"))
	s.Publish(testSet("tok-two"))
	if len(got) != 2 || got[0] != 1 || got[1] != 2 {
		t.Fatalf("callback versions = %v", got)
	}
}

func TestChangedBroadcast(t *testing.T) {
	s := New()
	ch := s.Changed()
	select {
	case <-ch:
		t.Fatal("Changed fired before any publish")
	default:
	}
	s.Publish(testSet("tok-one"))
	select {
	case <-ch:
	case <-time.After(time.Second):
		t.Fatal("Changed did not fire on publish")
	}
	// Re-arm: the next channel waits for the next publish.
	ch2 := s.Changed()
	select {
	case <-ch2:
		t.Fatal("re-armed channel already closed")
	default:
	}
}

func TestWaitLongPoll(t *testing.T) {
	s := New()
	s.Publish(testSet("tok-one")) // version 1
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, nil)

	// Already-newer version answers immediately.
	v, err := c.WaitVersion(context.Background(), 0)
	if err != nil || v != 1 {
		t.Fatalf("WaitVersion(0) = %d, %v", v, err)
	}

	// Blocks until a publish from another goroutine.
	go func() {
		time.Sleep(50 * time.Millisecond)
		s.Publish(testSet("tok-two"))
	}()
	start := time.Now()
	v, err = c.WaitVersion(context.Background(), 1)
	if err != nil || v != 2 {
		t.Fatalf("WaitVersion(1) = %d, %v", v, err)
	}
	if time.Since(start) < 40*time.Millisecond {
		t.Error("WaitVersion returned before the publish")
	}

	// Server-side timeout returns the unchanged version.
	resp, err := http.Get(ts.URL + "/wait?v=2&timeout=30ms")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "2" {
		t.Fatalf("timed-out wait body = %q", body)
	}

	// Bad parameters are rejected.
	for _, q := range []string{"?v=abc", "?timeout=xyz", "?timeout=-1s"} {
		resp, err := http.Get(ts.URL + "/wait" + q)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("GET /wait%s = %s, want 400", q, resp.Status)
		}
	}
}

func TestWaitVersionNoEndpoint(t *testing.T) {
	legacy := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.NotFound(w, r)
	}))
	defer legacy.Close()
	c := NewClient(legacy.URL, nil)
	_, err := c.WaitVersion(context.Background(), 0)
	if !errors.Is(err, ErrNoWait) {
		t.Fatalf("err = %v, want ErrNoWait", err)
	}
}

func TestWatchDeliversUpdates(t *testing.T) {
	s := New()
	s.Publish(testSet("tok-one"))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sets := make(chan *signature.Set, 8)
	done := make(chan error, 1)
	go func() {
		done <- c.Watch(ctx, time.Second, func(set *signature.Set) { sets <- set })
	}()

	first := <-sets
	if first.Version != 1 || first.Signatures[0].Tokens[0] != "tok-one" {
		t.Fatalf("initial delivery = %+v", first)
	}
	s.Publish(testSet("tok-two"))
	select {
	case next := <-sets:
		if next.Version != 2 || next.Signatures[0].Tokens[0] != "tok-two" {
			t.Fatalf("update delivery = %+v", next)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Watch never delivered the update")
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Watch returned %v", err)
	}
}

func TestPublishVersionedRejectsStale(t *testing.T) {
	s := New()
	set := testSet("tok-one")
	set.Version = 5
	if v, err := s.PublishVersioned(set); err != nil || v != 5 {
		t.Fatalf("versioned publish: v=%d err=%v", v, err)
	}
	// Same version again: rejected, server unchanged.
	stale := testSet("tok-two")
	stale.Version = 5
	if _, err := s.PublishVersioned(stale); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale publish err = %v, want ErrStaleVersion", err)
	}
	// Lower version: rejected too.
	lower := testSet("tok-three")
	lower.Version = 2
	if _, err := s.PublishVersioned(lower); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("lower publish err = %v, want ErrStaleVersion", err)
	}
	cur, v := s.Current()
	if v != 5 || cur.Signatures[0].Tokens[0] != "tok-one" {
		t.Fatalf("rejected publishes mutated the server: v=%d", v)
	}
	st := s.Stats()
	if st.Publishes != 1 || st.PublishesRejected != 2 {
		t.Fatalf("stats = %+v, want 1 publish and 2 rejections", st)
	}
	// Auto-bump continues from the explicit version.
	if v := s.Publish(testSet("tok-four")); v != 6 {
		t.Fatalf("auto publish after versioned = %d, want 6", v)
	}
}

func TestPublishSetRoutesByVersion(t *testing.T) {
	s := New()
	if v, err := s.PublishSet(testSet("a")); err != nil || v != 1 {
		t.Fatalf("zero-version publish: v=%d err=%v", v, err)
	}
	explicit := testSet("b")
	explicit.Version = 10
	if v, err := s.PublishSet(explicit); err != nil || v != 10 {
		t.Fatalf("explicit publish: v=%d err=%v", v, err)
	}
	stale := testSet("c")
	stale.Version = 3
	if _, err := s.PublishSet(stale); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale routed publish err = %v", err)
	}
}

func TestHTTPPublishAndStats(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.HandlerWithPublish("sekret"))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx := context.Background()

	set := testSet("udid=f3a9c1d2")
	set.Version = 3
	// Without the token the guarded endpoint refuses.
	if _, err := c.Publish(ctx, set); err == nil {
		t.Fatal("tokenless publish accepted")
	}
	c.SetToken("sekret")
	v, err := c.Publish(ctx, set)
	if err != nil || v != 3 {
		t.Fatalf("client publish: v=%d err=%v", v, err)
	}
	// A watcher fetches what was published.
	got, changed, err := c.Fetch(ctx)
	if err != nil || !changed || got.Version != 3 {
		t.Fatalf("fetch after publish: %+v changed=%v err=%v", got, changed, err)
	}
	// Stale over HTTP: 409 surfaced as ErrStaleVersion.
	stale := testSet("tok-two")
	stale.Version = 2
	if _, err := c.Publish(ctx, stale); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale HTTP publish err = %v", err)
	}
	// Stats endpoint carries the rejection counter.
	resp, err := http.Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	var st ServerStats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("decoding stats %q: %v", body, err)
	}
	if st.Version != 3 || st.Publishes != 1 || st.PublishesRejected != 1 || st.Signatures != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestVersionedPublishWakesWatchers(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	got := make(chan int64, 4)
	done := make(chan struct{})
	go func() {
		defer close(done)
		c.Watch(ctx, 50*time.Millisecond, func(set *signature.Set) { got <- set.Version })
	}()
	if v := <-got; v != 0 {
		t.Fatalf("initial watch version = %d", v)
	}
	set := testSet("x")
	set.Version = 9
	if _, err := s.PublishVersioned(set); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-got:
		if v != 9 {
			t.Fatalf("watcher saw version %d, want 9", v)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("watcher never woke on versioned publish")
	}
	cancel()
	<-done
}

func TestNamedSetsIndependentVersions(t *testing.T) {
	s := New()
	if v, err := s.PublishNamed("tenant-a", testSet("a-token")); err != nil || v != 1 {
		t.Fatalf("first named publish: v=%d err=%v", v, err)
	}
	if v, err := s.PublishNamed("tenant-b", testSet("b-token")); err != nil || v != 1 {
		t.Fatalf("second name starts its own sequence: v=%d err=%v", v, err)
	}
	if v := s.Publish(testSet("default-token")); v != 1 {
		t.Fatalf("default set sequence entangled with named: v=%d", v)
	}
	// Strict-increase guard is per name.
	stale := testSet("a-two")
	stale.Version = 1
	if _, err := s.PublishNamedVersioned("tenant-a", stale); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale named publish err = %v", err)
	}
	fresh := testSet("b-two")
	fresh.Version = 5
	if v, err := s.PublishNamedVersioned("tenant-b", fresh); err != nil || v != 5 {
		t.Fatalf("versioned named publish: v=%d err=%v", v, err)
	}
	set, v, ok := s.CurrentNamed("tenant-a")
	if !ok || v != 1 || set.Signatures[0].Tokens[0] != "a-token" {
		t.Fatalf("tenant-a = %+v at %d (ok=%v)", set, v, ok)
	}
	// Unknown names read as the empty zero state, without being created.
	if _, v, ok := s.CurrentNamed("ghost"); ok || v != 0 {
		t.Fatalf("unknown name: v=%d ok=%v", v, ok)
	}
	names := s.SetNames()
	if len(names) != 2 || names[0] != "tenant-a" || names[1] != "tenant-b" {
		t.Fatalf("SetNames = %v", names)
	}
	st := s.Stats()
	if st.Sets["tenant-a"].PublishesRejected != 1 || st.Sets["tenant-b"].Version != 5 {
		t.Fatalf("stats sets = %+v", st.Sets)
	}
	if st.Seq != 4 {
		t.Fatalf("catalog seq = %d, want 4 (3 accepted named+default publishes... )", st.Seq)
	}
}

func TestNamedSetNameValidation(t *testing.T) {
	s := New()
	// "." and ".." are path-cleaning hazards: ServeMux folds them away
	// before routing, so a publish to them could never be fetched back.
	for _, bad := range []string{"", "a/b", "x\ny", ".", "..", string(make([]byte, 201))} {
		if bad == "" {
			continue // "" routes to the default set, which is valid
		}
		if _, err := s.PublishNamed(bad, testSet("t")); !errors.Is(err, ErrBadSetName) {
			t.Fatalf("name %q accepted (err=%v)", bad, err)
		}
	}
}

func TestNamedSetsHTTPRoundTrip(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.HandlerWithPublish("sekret"))
	defer ts.Close()
	c := NewClient(ts.URL, nil)
	c.SetToken("sekret")
	ctx := context.Background()

	if _, err := c.PublishNamed(ctx, "com.app one", testSet("app-token")); err != nil {
		t.Fatalf("named HTTP publish: %v", err)
	}
	set, changed, err := c.FetchNamed(ctx, "com.app one")
	if err != nil || !changed || set.Version != 1 || set.Signatures[0].Tokens[0] != "app-token" {
		t.Fatalf("named fetch: %+v changed=%v err=%v", set, changed, err)
	}
	// Conditional refetch is per name.
	if _, changed, err := c.FetchNamed(ctx, "com.app one"); err != nil || changed {
		t.Fatalf("named refetch: changed=%v err=%v", changed, err)
	}
	if v, err := c.VersionNamed(ctx, "com.app one"); err != nil || v != 1 {
		t.Fatalf("named version: v=%d err=%v", v, err)
	}
	// The default set is untouched by named publishes.
	if v, err := c.Version(ctx); err != nil || v != 0 {
		t.Fatalf("default version after named publish: v=%d err=%v", v, err)
	}
	// Unpublished names fetch as the empty zero state.
	ghost, _, err := c.FetchNamed(ctx, "ghost")
	if err != nil || ghost.Version != 0 || ghost.Len() != 0 {
		t.Fatalf("ghost fetch: %+v err=%v", ghost, err)
	}
	// Catalog listing includes the default set as "".
	seq, versions, err := c.Sets(ctx)
	if err != nil || seq != 1 || versions["com.app one"] != 1 || versions[""] != 0 {
		t.Fatalf("sets: seq=%d versions=%v err=%v", seq, versions, err)
	}
	// Stale named publish over HTTP surfaces as ErrStaleVersion.
	stale := testSet("two")
	stale.Version = 1
	if _, err := c.PublishNamed(ctx, "com.app one", stale); !errors.Is(err, ErrStaleVersion) {
		t.Fatalf("stale named HTTP publish err = %v", err)
	}
}

func TestNamedWaitBeforeFirstPublish(t *testing.T) {
	s := New()
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	c := NewClient(ts.URL, nil)

	// Waiting on a name that does not exist yet blocks until its first
	// publish (and creates no server state while blocked).
	go func() {
		time.Sleep(50 * time.Millisecond)
		if len(s.SetNames()) != 0 {
			t.Error("waiting on an unpublished name allocated server state")
		}
		s.PublishNamed("late", testSet("late-token"))
	}()
	v, err := c.WaitVersionNamed(context.Background(), "late", 0)
	if err != nil || v != 1 {
		t.Fatalf("named wait: v=%d err=%v", v, err)
	}
}

func TestWatchNamedDeliversUpdates(t *testing.T) {
	s := New()
	s.PublishNamed("pop", testSet("one"))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	sets := make(chan *signature.Set, 8)
	go c.WatchNamed(ctx, "pop", time.Second, func(set *signature.Set) { sets <- set })

	if first := <-sets; first.Version != 1 {
		t.Fatalf("initial named delivery = %+v", first)
	}
	s.PublishNamed("pop", testSet("two"))
	select {
	case next := <-sets:
		if next.Version != 2 || next.Signatures[0].Tokens[0] != "two" {
			t.Fatalf("named update = %+v", next)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WatchNamed never delivered the update")
	}
}

func TestWatchSetsFollowsEveryPopulation(t *testing.T) {
	s := New()
	s.Publish(testSet("default-one"))
	s.PublishNamed("tenant-a", testSet("a-one"))
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()

	type delivery struct {
		name string
		set  *signature.Set
	}
	got := make(chan delivery, 16)
	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go c.WatchSets(ctx, time.Second, func(name string, set *signature.Set) {
		got <- delivery{name, set}
	})

	// Initial pass: default plus every published named set.
	initial := map[string]int64{}
	for i := 0; i < 2; i++ {
		select {
		case d := <-got:
			initial[d.name] = d.set.Version
		case <-time.After(5 * time.Second):
			t.Fatalf("initial catalog pass incomplete: %v", initial)
		}
	}
	if initial[""] != 1 || initial["tenant-a"] != 1 {
		t.Fatalf("initial deliveries = %v", initial)
	}

	// A publish to a brand-new name wakes the single catalog watch.
	s.PublishNamed("tenant-b", testSet("b-one"))
	select {
	case d := <-got:
		if d.name != "tenant-b" || d.set.Version != 1 {
			t.Fatalf("new-set delivery = %q v%d", d.name, d.set.Version)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WatchSets never delivered the new named set")
	}

	// An update to an existing name is delivered with that name.
	s.PublishNamed("tenant-a", testSet("a-two"))
	select {
	case d := <-got:
		if d.name != "tenant-a" || d.set.Version != 2 {
			t.Fatalf("update delivery = %q v%d", d.name, d.set.Version)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("WatchSets never delivered the named update")
	}
}

// TestWatchSkipsRefetchOnUnchangedWait pins the idle-watch cost: a /wait
// long-poll that times out with an unchanged version must NOT trigger a
// redundant /signatures fetch — at fleet fan-out that fetch doubled idle
// request volume for zero information.
func TestWatchSkipsRefetchOnUnchangedWait(t *testing.T) {
	var fetches, waits, version atomic.Int64
	version.Store(1)
	mux := http.NewServeMux()
	mux.HandleFunc("GET /signatures", func(w http.ResponseWriter, r *http.Request) {
		fetches.Add(1)
		v := version.Load()
		etag := fmt.Sprintf("%q", strconv.FormatInt(v, 10))
		if r.Header.Get("If-None-Match") == etag {
			w.WriteHeader(http.StatusNotModified)
			return
		}
		set := testSet("tok-one")
		set.Version = v
		w.Header().Set("ETag", etag)
		set.WriteJSON(w)
	})
	mux.HandleFunc("GET /wait", func(w http.ResponseWriter, r *http.Request) {
		// Simulate three idle long-poll timeouts (unchanged version),
		// then one real advance; every later wait is idle again.
		if waits.Add(1) == 4 {
			version.Store(2)
		}
		fmt.Fprintf(w, "%d", version.Load())
	})
	ts := httptest.NewServer(mux)
	defer ts.Close()

	c := NewClient(ts.URL, nil)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	delivered := make(chan int64, 8)
	go c.Watch(ctx, time.Second, func(s *signature.Set) { delivered <- s.Version })

	<-delivered // initial delivery
	// Wait until the advanced wait answer forces the second fetch.
	deadline := time.Now().Add(5 * time.Second)
	for fetches.Load() < 2 && time.Now().Before(deadline) {
		time.Sleep(5 * time.Millisecond)
	}
	cancel()
	if w, f := waits.Load(), fetches.Load(); w < 4 || f != 2 {
		t.Fatalf("waits=%d fetches=%d; want >=4 waits and exactly 2 fetches (no refetch on unchanged version)", w, f)
	}
}
