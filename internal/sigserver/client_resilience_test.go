package sigserver

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"leaksig/internal/resilience"
	"leaksig/internal/signature"
)

// TestWatchRetryBackoffIsJittered drives Watch against an unreachable
// server with the sleep stubbed out (a fake clock: no real time
// passes), and asserts every retry delay is jittered into [fallback/2,
// fallback] rather than pinned at the fallback — the property that
// keeps a watcher fleet from re-flooding a restarted server in
// lockstep.
func TestWatchRetryBackoffIsJittered(t *testing.T) {
	const fallback = 10 * time.Second
	c := NewClient("http://127.0.0.1:1", nil) // nothing listens here
	c.SetRetrySeed(42)

	ctx, cancel := context.WithCancel(context.Background())
	delays := make(chan time.Duration, 16)
	c.sleep = func(ctx context.Context, d time.Duration) error {
		select {
		case delays <- d:
		default:
			cancel() // collected enough; end the watch
		}
		return ctx.Err()
	}

	err := c.Watch(ctx, fallback, func(*signature.Set) {
		t.Error("watch delivered a set from an unreachable server")
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("watch ended with %v, want context.Canceled", err)
	}
	close(delays)

	var got []time.Duration
	for d := range delays {
		got = append(got, d)
	}
	if len(got) < 8 {
		t.Fatalf("captured %d retry delays, want >= 8", len(got))
	}
	distinct := map[time.Duration]struct{}{}
	for i, d := range got {
		if d > fallback || d < fallback/2 {
			t.Fatalf("retry %d slept %v, want within [%v, %v]", i, d, fallback/2, fallback)
		}
		distinct[d] = struct{}{}
	}
	if len(distinct) < 2 {
		t.Fatalf("all %d retries slept identically (%v); jitter is not applied", len(got), got[0])
	}

	// Determinism: the same seed reproduces the same delay sequence.
	c2 := NewClient("http://127.0.0.1:1", nil)
	c2.SetRetrySeed(42)
	ctx2, cancel2 := context.WithCancel(context.Background())
	var got2 []time.Duration
	c2.sleep = func(ctx context.Context, d time.Duration) error {
		if len(got2) < len(got) {
			got2 = append(got2, d)
			return ctx.Err()
		}
		cancel2()
		return context.Canceled
	}
	c2.Watch(ctx2, fallback, func(*signature.Set) {})
	cancel2()
	for i := range got {
		if i < len(got2) && got2[i] != got[i] {
			t.Fatalf("retry %d: seed 42 gave %v then %v", i, got[i], got2[i])
		}
	}
}

// TestClientPublishBreaker verifies the breaker gates the publish path:
// consecutive failures open it, an open breaker sheds publishes without
// dialing, and a recovered server closes it again.
func TestClientPublishBreaker(t *testing.T) {
	var healthy atomic.Bool
	var hits atomic.Int64
	backend := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		hits.Add(1)
		if !healthy.Load() {
			http.Error(w, "down", http.StatusInternalServerError)
			return
		}
		w.Write([]byte("7"))
	}))
	defer backend.Close()

	clk := time.Unix(1000, 0)
	br := resilience.NewBreaker(resilience.BreakerConfig{
		FailureThreshold: 3,
		OpenFor:          time.Minute,
		Clock:            func() time.Time { return clk },
	})
	c := NewClient(backend.URL, backend.Client())
	c.SetBreaker(br)

	ctx := context.Background()
	set := &signature.Set{Version: 7}
	for i := 0; i < 3; i++ {
		if _, err := c.Publish(ctx, set); err == nil {
			t.Fatalf("publish %d against a 500ing server succeeded", i)
		}
	}
	if got := br.State(); got != resilience.Open {
		t.Fatalf("breaker state = %v after 3 failures, want open", got)
	}

	before := hits.Load()
	if _, err := c.Publish(ctx, set); !errors.Is(err, resilience.ErrOpen) {
		t.Fatalf("publish while open: err = %v, want ErrOpen", err)
	}
	if hits.Load() != before {
		t.Fatal("open breaker still dialed the server")
	}

	// Window elapses, server recovers: the half-open probe closes it.
	healthy.Store(true)
	clk = clk.Add(time.Minute)
	if _, err := c.Publish(ctx, set); err != nil {
		t.Fatalf("probe publish after recovery: %v", err)
	}
	if got := br.State(); got != resilience.Closed {
		t.Fatalf("breaker state = %v after successful probe, want closed", got)
	}
}

// TestClientBreakerTreatsStaleVersionAsAlive: a 409 means the server is
// up and enforcing its guard; it must not push the breaker toward open.
func TestClientBreakerTreatsStaleVersionAsAlive(t *testing.T) {
	srv := New()
	srv.Publish(&signature.Set{}) // version 1
	backend := httptest.NewServer(srv.HandlerWithPublish(""))
	defer backend.Close()

	br := resilience.NewBreaker(resilience.BreakerConfig{FailureThreshold: 1, OpenFor: time.Minute})
	c := NewClient(backend.URL, backend.Client())
	c.SetBreaker(br)

	for i := 0; i < 5; i++ {
		_, err := c.Publish(context.Background(), &signature.Set{Version: 1}) // stale on purpose
		if !errors.Is(err, ErrStaleVersion) {
			t.Fatalf("publish %d: err = %v, want ErrStaleVersion", i, err)
		}
	}
	if got := br.State(); got != resilience.Closed {
		t.Fatalf("breaker state = %v after 409s, want closed (server is alive)", got)
	}
}
