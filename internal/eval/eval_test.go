package eval

import (
	"strings"
	"testing"

	"leaksig/internal/android"
	"leaksig/internal/core"
	"leaksig/internal/distance"
	"leaksig/internal/sensitive"
	"leaksig/internal/trafficgen"
)

// fullEnv is shared by the heavyweight experiments.
var fullEnv = NewEnv(trafficgen.Config{Seed: 1})

// smallEnv keeps the fast tests fast.
var smallEnv = NewEnv(trafficgen.Config{Seed: 5, NumApps: 150, TotalPackets: 12000})

func TestEnvLabelsPartition(t *testing.T) {
	if fullEnv.Suspicious.Len()+fullEnv.Normal.Len() != fullEnv.Dataset.Capture.Len() {
		t.Fatal("suspicious + normal != total")
	}
	n := 0
	for _, s := range fullEnv.Sensitive {
		if s {
			n++
		}
	}
	if n != fullEnv.Suspicious.Len() {
		t.Fatalf("label count %d != suspicious size %d", n, fullEnv.Suspicious.Len())
	}
	if fullEnv.Suspicious.Len() < 20000 || fullEnv.Suspicious.Len() > 26000 {
		t.Errorf("suspicious = %d, paper 23309", fullEnv.Suspicious.Len())
	}
}

func TestTableIShape(t *testing.T) {
	rows := fullEnv.TableI()
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	want := []int{302, 329, 153, 148, 23, 233}
	for i, r := range rows {
		if r.Apps != want[i] {
			t.Errorf("row %v = %d apps, want %d", r.Combo, r.Apps, want[i])
		}
	}
	if rows[0].Combo != android.ComboInternetOnly || rows[5].Combo != android.ComboOther {
		t.Error("row order wrong")
	}
}

func TestTableIIShape(t *testing.T) {
	rows := fullEnv.TableII(26)
	if len(rows) != 26 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Apps must be non-increasing (paper sorts by application count).
	for i := 1; i < len(rows); i++ {
		if rows[i].Apps > rows[i-1].Apps {
			t.Errorf("rows not sorted by apps: %v before %v", rows[i-1], rows[i])
		}
	}
	// The paper's top rows must appear.
	byHost := make(map[string]TableIIRow)
	for _, r := range rows {
		byHost[r.Host] = r
	}
	top, ok := byHost["doubleclick.net"]
	if !ok {
		t.Fatal("doubleclick.net missing from Table II")
	}
	if top.Apps < 350 || top.Packets < 5200 {
		t.Errorf("doubleclick row = %+v", top)
	}
	if _, ok := byHost["admob.com"]; !ok {
		t.Error("admob.com missing")
	}
}

func TestTableIIIShape(t *testing.T) {
	rows := fullEnv.TableIII()
	if len(rows) != sensitive.NumKinds {
		t.Fatalf("rows = %d", len(rows))
	}
	get := func(k sensitive.Kind) TableIIIRow {
		for _, r := range rows {
			if r.Kind == k {
				return r
			}
		}
		t.Fatalf("kind %v missing", k)
		return TableIIIRow{}
	}
	md5 := get(sensitive.KindAndroidIDMD5)
	aid := get(sensitive.KindAndroidID)
	sim := get(sensitive.KindSIMSerial)
	imei := get(sensitive.KindIMEI)
	if md5.Packets <= aid.Packets {
		t.Error("ANDROID ID MD5 should carry the most packets")
	}
	if sim.Packets >= aid.Packets {
		t.Error("SIM serial should be among the rarest")
	}
	// Hosts: IMEI flows to the most destinations in the paper (94).
	if imei.Hosts < 50 {
		t.Errorf("IMEI hosts = %d, paper 94", imei.Hosts)
	}
	// Apps: MD5'd Android ID reaches the most apps (433 in the paper).
	if md5.Apps < 250 {
		t.Errorf("ANDROID ID MD5 apps = %d, paper 433", md5.Apps)
	}
	for _, r := range rows {
		if r.Packets > 0 && (r.Apps == 0 || r.Hosts == 0) {
			t.Errorf("row %v has packets but no apps/hosts", r.Kind)
		}
	}
}

func TestFigure2Shape(t *testing.T) {
	f := fullEnv.Figure2()
	if f.TotalApps != 1188 {
		t.Errorf("apps = %d", f.TotalApps)
	}
	if f.Mean < 6.5 || f.Mean > 9.5 {
		t.Errorf("mean = %.2f, paper 7.9", f.Mean)
	}
	if f.Max < 60 || f.Max > 90 {
		t.Errorf("max = %d, paper 84", f.Max)
	}
	if f.FracOne < 0.03 || f.FracOne > 0.12 {
		t.Errorf("frac(1) = %.3f, paper 0.07", f.FracOne)
	}
	if f.FracLE10 < 0.62 || f.FracLE10 > 0.86 {
		t.Errorf("frac(<=10) = %.3f, paper 0.74", f.FracLE10)
	}
	if f.FracLE16 < 0.80 || f.FracLE16 > 0.97 {
		t.Errorf("frac(<=16) = %.3f, paper 0.90", f.FracLE16)
	}
	// CDF points must be monotone in both coordinates.
	for i := 1; i < len(f.Points); i++ {
		if f.Points[i].Value <= f.Points[i-1].Value || f.Points[i].Fraction < f.Points[i-1].Fraction {
			t.Fatal("CDF points not monotone")
		}
	}
}

func TestFigure4PaperShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full Figure 4 sweep is expensive")
	}
	pts := fullEnv.Figure4(Figure4Config{SampleSeed: 42})
	if len(pts) != 5 {
		t.Fatalf("points = %d", len(pts))
	}
	first, last := pts[0], pts[len(pts)-1]
	// Paper: TP 85% -> 94%; the reproduction must rise and land high.
	if last.TP <= first.TP {
		t.Errorf("TP does not rise: %.1f -> %.1f", first.TP, last.TP)
	}
	if first.TP < 65 || first.TP > 95 {
		t.Errorf("TP@100 = %.1f, paper 85", first.TP)
	}
	if last.TP < 88 || last.TP > 99.5 {
		t.Errorf("TP@500 = %.1f, paper 94", last.TP)
	}
	// Paper: FN 15% -> 5%.
	if last.FN >= first.FN {
		t.Errorf("FN does not fall: %.1f -> %.1f", first.FN, last.FN)
	}
	if last.FN < 0.5 || last.FN > 12 {
		t.Errorf("FN@500 = %.1f, paper 5", last.FN)
	}
	// Paper: FP 0.3% -> 2.3%; ours must stay small throughout.
	for _, p := range pts {
		if p.FP > 4 {
			t.Errorf("FP@%d = %.2f%%, paper stays under 2.3%%", p.N, p.FP)
		}
		if p.TP+p.FN < 99.0 || p.TP+p.FN > 101.0 {
			t.Errorf("TP+FN@%d = %.2f, should be 100 under the paper's equations", p.N, p.TP+p.FN)
		}
	}
	if last.FP < 0.1 {
		t.Errorf("FP@500 = %.2f%%, expected measurable false positives from generic signatures", last.FP)
	}
}

func TestFigure4SmallEnvFast(t *testing.T) {
	pts := smallEnv.Figure4(Figure4Config{Ns: []int{40, 120}, SampleSeed: 9})
	if len(pts) != 2 {
		t.Fatalf("points = %d", len(pts))
	}
	if pts[1].TP < pts[0].TP-15 {
		t.Errorf("TP collapsed: %.1f -> %.1f", pts[0].TP, pts[1].TP)
	}
	for _, p := range pts {
		if p.Signatures == 0 {
			t.Errorf("no signatures at N=%d", p.N)
		}
		if p.TP < 0 || p.TP > 100.5 || p.FN < 0 || p.FP < 0 {
			t.Errorf("rates out of range at N=%d: %+v", p.N, p)
		}
	}
}

func TestFigure4RepeatsSmoothing(t *testing.T) {
	one := smallEnv.Figure4(Figure4Config{Ns: []int{60}, SampleSeed: 1, Repeats: 1})
	three := smallEnv.Figure4(Figure4Config{Ns: []int{60}, SampleSeed: 1, Repeats: 3})
	if len(one) != 1 || len(three) != 1 {
		t.Fatal("point counts")
	}
	// Averaged rates stay within the feasible band.
	if three[0].TP < 0 || three[0].TP > 100.5 {
		t.Errorf("averaged TP = %.2f", three[0].TP)
	}
}

func TestFigure4ContentOnlyAblationRuns(t *testing.T) {
	// The destination term is the paper's novelty; the ablation must run
	// and produce valid rates (quality comparison happens in the bench).
	pts := smallEnv.Figure4(Figure4Config{
		Ns:         []int{60},
		SampleSeed: 4,
		Pipeline: core.Config{
			Distance: distance.Config{DestinationWeight: -1},
		},
	})
	if len(pts) != 1 || pts[0].TP < 0 || pts[0].TP > 100.5 {
		t.Errorf("ablation point invalid: %+v", pts)
	}
}

func TestSampleSuspiciousDeterministic(t *testing.T) {
	a := fullEnv.SampleSuspicious(3, 50)
	b := fullEnv.SampleSuspicious(3, 50)
	if len(a) != 50 || len(b) != 50 {
		t.Fatalf("sample sizes %d/%d", len(a), len(b))
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			t.Fatal("sampling not deterministic")
		}
	}
}

func TestDescribe(t *testing.T) {
	d := fullEnv.Describe()
	for _, want := range []string{"1188 apps", "suspicious", "destinations"} {
		if !strings.Contains(d, want) {
			t.Errorf("Describe() = %q missing %q", d, want)
		}
	}
}

func TestCompareSignatureTypes(t *testing.T) {
	rows := smallEnv.CompareSignatureTypes(100, 3, core.Config{})
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	names := map[string]bool{}
	for _, r := range rows {
		names[r.Type] = true
		if r.TP < 0 || r.TP > 100.5 || r.FN < 0 || r.FP < 0 {
			t.Errorf("%s rates out of range: %+v", r.Type, r)
		}
		if r.Signatures == 0 {
			t.Errorf("%s produced no signatures/tokens", r.Type)
		}
	}
	for _, want := range []string{"conjunction", "token-subsequence", "bayes"} {
		if !names[want] {
			t.Errorf("missing signature type %s", want)
		}
	}
	// Every class must detect a meaningful share of the leaks on this
	// dataset; Bayes should not be catastrophically worse than conjunction.
	for _, r := range rows {
		if r.TP < 30 {
			t.Errorf("%s TP = %.1f%%, implausibly low", r.Type, r.TP)
		}
	}
}
