// Package eval regenerates every table and figure of the paper's
// evaluation from the synthetic dataset:
//
//	Table I   — applications per dangerous permission combination
//	Table II  — packets and applications per HTTP host destination
//	Table III — packets/applications/destinations per sensitive-info kind
//	Figure 2  — cumulative distribution of destinations per application
//	Figure 4  — TP/FN/FP detection rates as the signature-generation
//	            sample N sweeps 100..500
//
// Each experiment returns structured rows consumed by tests, by the root
// benchmarks, and by cmd/leakeval's renderer.
package eval

import (
	"fmt"
	"math/rand"

	"leaksig/internal/android"
	"leaksig/internal/capture"
	"leaksig/internal/core"
	"leaksig/internal/detect"
	"leaksig/internal/httpmodel"
	"leaksig/internal/sensitive"
	"leaksig/internal/signature"
	"leaksig/internal/stats"
	"leaksig/internal/trafficgen"
)

// Env bundles one generated dataset with its ground-truth labelling, shared
// by all experiments.
type Env struct {
	Dataset    *trafficgen.Dataset
	Oracle     *sensitive.Oracle
	Sensitive  []bool       // per packet of Dataset.Capture
	Suspicious *capture.Set // packets with sensitive information (§V-A)
	Normal     *capture.Set // the rest
}

// NewEnv generates a dataset and labels it with the payload check.
func NewEnv(cfg trafficgen.Config) *Env {
	ds := trafficgen.Generate(cfg)
	oracle := sensitive.NewOracle(ds.Device)
	labels := make([]bool, ds.Capture.Len())
	susp, norm := &capture.Set{}, &capture.Set{}
	for i, p := range ds.Capture.Packets {
		if oracle.IsSensitive(p) {
			labels[i] = true
			susp.Append(p)
		} else {
			norm.Append(p)
		}
	}
	return &Env{
		Dataset:    ds,
		Oracle:     oracle,
		Sensitive:  labels,
		Suspicious: susp,
		Normal:     norm,
	}
}

// --- Table I ---------------------------------------------------------------

// TableIRow is one permission-combination row.
type TableIRow struct {
	Combo android.Combo
	Apps  int
}

// TableI tabulates applications per dangerous permission combination. Rows
// follow the paper's order; a final OTHER row collects off-table combos.
func (e *Env) TableI() []TableIRow {
	counts := make(map[android.Combo]int)
	for _, a := range e.Dataset.Apps {
		counts[a.Manifest.DangerousCombo()]++
	}
	order := []android.Combo{
		android.ComboInternetOnly,
		android.ComboInternetPhone,
		android.ComboInternetLocationPhone,
		android.ComboInternetLocation,
		android.ComboInternetLocationPhoneContacts,
		android.ComboOther,
	}
	rows := make([]TableIRow, 0, len(order))
	for _, c := range order {
		rows = append(rows, TableIRow{Combo: c, Apps: counts[c]})
	}
	return rows
}

// --- Table II --------------------------------------------------------------

// TableIIRow is one destination row.
type TableIIRow struct {
	Host    string
	Packets int
	Apps    int
}

// TableII returns the top destinations by application count, mirroring the
// paper's Table II (which lists 26 rows). topN <= 0 selects 26.
func (e *Env) TableII(topN int) []TableIIRow {
	if topN <= 0 {
		topN = 26
	}
	pkts := stats.NewFreq[string]()
	apps := make(map[string]map[string]bool)
	for _, p := range e.Dataset.Capture.Packets {
		pkts.Add(p.Host)
		m := apps[p.Host]
		if m == nil {
			m = make(map[string]bool)
			apps[p.Host] = m
		}
		m[p.App] = true
	}
	appFreq := stats.NewFreq[string]()
	for h, m := range apps {
		appFreq.AddN(h, len(m))
	}
	pairs := appFreq.SortedByCount(func(a, b string) bool { return a < b })
	if len(pairs) > topN {
		pairs = pairs[:topN]
	}
	rows := make([]TableIIRow, len(pairs))
	for i, pr := range pairs {
		rows[i] = TableIIRow{Host: pr.Key, Packets: pkts[pr.Key], Apps: pr.Count}
	}
	return rows
}

// --- Table III -------------------------------------------------------------

// TableIIIRow is one sensitive-information row.
type TableIIIRow struct {
	Kind    sensitive.Kind
	Packets int
	Apps    int
	Hosts   int
}

// TableIII tabulates, per identifier kind, the packets carrying it and the
// distinct applications and destinations involved.
func (e *Env) TableIII() []TableIIIRow {
	type acc struct {
		pkts  int
		apps  map[string]bool
		hosts map[string]bool
	}
	accs := make([]acc, sensitive.NumKinds)
	for i := range accs {
		accs[i] = acc{apps: make(map[string]bool), hosts: make(map[string]bool)}
	}
	for _, p := range e.Dataset.Capture.Packets {
		for _, k := range e.Oracle.Scan(p) {
			accs[k].pkts++
			accs[k].apps[p.App] = true
			accs[k].hosts[p.Host] = true
		}
	}
	rows := make([]TableIIIRow, sensitive.NumKinds)
	for i := range rows {
		rows[i] = TableIIIRow{
			Kind:    sensitive.Kind(i),
			Packets: accs[i].pkts,
			Apps:    len(accs[i].apps),
			Hosts:   len(accs[i].hosts),
		}
	}
	return rows
}

// --- Figure 2 --------------------------------------------------------------

// Figure2Result summarizes the per-application destination distribution.
type Figure2Result struct {
	Points    []stats.Point // empirical CDF steps
	Mean      float64
	Max       int
	FracOne   float64 // fraction with exactly 1 destination (paper: 7%)
	FracLE10  float64 // paper: 74%
	FracLE16  float64 // paper: 90%
	TotalApps int
}

// Figure2 computes the destination CDF.
func (e *Env) Figure2() Figure2Result {
	perApp := make(map[string]map[string]bool)
	for _, p := range e.Dataset.Capture.Packets {
		m := perApp[p.App]
		if m == nil {
			m = make(map[string]bool)
			perApp[p.App] = m
		}
		m[p.Host] = true
	}
	var xs []int
	for _, m := range perApp {
		xs = append(xs, len(m))
	}
	cdf := stats.NewCDF(xs)
	sum := stats.Summarize(xs)
	return Figure2Result{
		Points:    cdf.Points(),
		Mean:      sum.Mean,
		Max:       sum.Max,
		FracOne:   cdf.FractionAtMost(1),
		FracLE10:  cdf.FractionAtMost(10),
		FracLE16:  cdf.FractionAtMost(16),
		TotalApps: sum.Count,
	}
}

// --- Figure 4 --------------------------------------------------------------

// Figure4Point is one sweep point of the detection experiment.
type Figure4Point struct {
	N          int
	Signatures int
	Result     detect.Result
	TP, FN, FP float64 // percentages
}

// Figure4Config parameterizes the sweep.
type Figure4Config struct {
	// Ns are the sample sizes; nil selects the paper's 100..500 step 100.
	Ns []int
	// SampleSeed seeds the random draw of the N suspicious packets.
	SampleSeed int64
	// Repeats averages the rates over this many independent sample draws
	// per N (default 1, the paper's single draw). Averaging smooths the
	// step effects of rarely-sampled module families.
	Repeats int
	// Pipeline configures distance/clustering/signatures; the zero value is
	// the repository default (see core.Config).
	Pipeline core.Config
}

// Figure4 runs the paper's detection experiment: for each N, sample N
// suspicious packets, cluster them, generate signatures, apply them to the
// full dataset, and score with the paper's equations.
func (e *Env) Figure4(cfg Figure4Config) []Figure4Point {
	ns := cfg.Ns
	if ns == nil {
		ns = []int{100, 200, 300, 400, 500}
	}
	reps := cfg.Repeats
	if reps < 1 {
		reps = 1
	}
	pl := core.NewPipeline(cfg.Pipeline)
	out := make([]Figure4Point, 0, len(ns))
	for _, n := range ns {
		var pt Figure4Point
		pt.N = n
		for r := 0; r < reps; r++ {
			rng := rand.New(rand.NewSource(cfg.SampleSeed + int64(n) + int64(r)*7919))
			sample := e.Suspicious.Sample(rng, n)
			set := pl.GenerateSignatures(sample.Packets)
			eng := core.NewDetector(set)
			res := detect.Evaluate(eng, e.Dataset.Capture, e.Sensitive, sample.Len())
			pt.Signatures += set.Len()
			pt.Result = res // last repeat's raw counts, for inspection
			pt.TP += res.TruePositiveRate * 100
			pt.FN += res.FalseNegativeRate * 100
			pt.FP += res.FalsePositiveRate * 100
		}
		pt.Signatures /= reps
		pt.TP /= float64(reps)
		pt.FN /= float64(reps)
		pt.FP /= float64(reps)
		out = append(out, pt)
	}
	return out
}

// --- Signature-type comparison (extension) ----------------------------------

// SignatureTypeRow is one row of the signature-class comparison: the
// paper's conjunction signatures against the probabilistic and ordered
// variants it names as future work (§VI).
type SignatureTypeRow struct {
	Type       string
	Signatures int // or vocabulary size for the Bayes model
	TP, FN, FP float64
}

// CompareSignatureTypes runs the detection experiment at one N for all
// three signature classes over the same sample and benign calibration set.
func (e *Env) CompareSignatureTypes(n int, sampleSeed int64, pcfg core.Config) []SignatureTypeRow {
	rng := rand.New(rand.NewSource(sampleSeed))
	sample := e.Suspicious.Sample(rng, n)
	benign := e.Normal.Sample(rng, 500)

	pl := core.NewPipeline(pcfg)
	_, clusters := pl.Cluster(sample.Packets)

	rows := make([]SignatureTypeRow, 0, 3)
	score := func(name string, m detect.Matcher, count int) {
		res := detect.EvaluateMatcher(m, e.Dataset.Capture, e.Sensitive, sample.Len())
		rows = append(rows, SignatureTypeRow{
			Type:       name,
			Signatures: count,
			TP:         res.TruePositiveRate * 100,
			FN:         res.FalseNegativeRate * 100,
			FP:         res.FalsePositiveRate * 100,
		})
	}

	conj := signature.Generate(clusters, signature.Options{MinClusterSize: 2})
	score("conjunction", detect.NewEngine(conj), conj.Len())

	subseq := signature.GenerateSubsequence(clusters, signature.Options{MinClusterSize: 2})
	score("token-subsequence", subseq, subseq.Len())

	bayes := signature.GenerateBayes(clusters, benign.Packets, signature.BayesOptions{})
	score("bayes", bayes, bayes.NumTokens())

	return rows
}

// SampleSuspicious draws n suspicious packets with the given seed — the
// §V-A sampling step, exposed for tools and examples.
func (e *Env) SampleSuspicious(seed int64, n int) []*httpmodel.Packet {
	rng := rand.New(rand.NewSource(seed))
	return e.Suspicious.Sample(rng, n).Packets
}

// Describe returns a one-paragraph dataset summary.
func (e *Env) Describe() string {
	return fmt.Sprintf("dataset: %d apps, %d packets (%d suspicious / %d normal), %d destinations",
		len(e.Dataset.Apps), e.Dataset.Capture.Len(),
		e.Suspicious.Len(), e.Normal.Len(), len(e.Dataset.Capture.Hosts()))
}
