package faultinject

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"
)

func TestParseSpec(t *testing.T) {
	cfg, err := Parse("seed=7, reset=0.1, latency_p=0.25, latency=20ms, error=0.05, partial=0.1, blackhole=0.01")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Seed != 7 || cfg.ResetP != 0.1 || cfg.LatencyP != 0.25 ||
		cfg.Latency != 20*time.Millisecond || cfg.ErrorP != 0.05 ||
		cfg.PartialP != 0.1 || cfg.BlackholeP != 0.01 {
		t.Fatalf("cfg = %+v", cfg)
	}
}

func TestParseDefaultsLatency(t *testing.T) {
	cfg, err := Parse("latency_p=0.5")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if cfg.Latency != 20*time.Millisecond {
		t.Fatalf("latency default = %v, want 20ms", cfg.Latency)
	}
}

func TestParseRejectsBadInput(t *testing.T) {
	for _, spec := range []string{"reset=1.5", "bogus=1", "reset", "latency=notadur"} {
		if _, err := Parse(spec); err == nil {
			t.Fatalf("Parse(%q): want error", spec)
		}
	}
}

func TestParseEmptyIsInert(t *testing.T) {
	cfg, err := Parse("")
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if New(cfg) != nil {
		t.Fatal("empty spec should build a nil injector")
	}
}

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if got := in.Transport(http.DefaultTransport); got != http.DefaultTransport {
		t.Fatal("nil injector should return base transport unchanged")
	}
	c := &http.Client{}
	if got := in.Client(c); got != c {
		t.Fatal("nil injector should return client unchanged")
	}
	if st := in.Stats(); st != (Stats{}) {
		t.Fatalf("nil stats = %+v", st)
	}
	if in.String() != "faults off" {
		t.Fatalf("nil String = %q", in.String())
	}
}

func TestInjectedResetsAreDeterministic(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	run := func(seed int64) []bool {
		in := New(Config{Seed: seed, ResetP: 0.5})
		client := in.Client(srv.Client())
		var outcomes []bool
		for i := 0; i < 40; i++ {
			resp, err := client.Get(srv.URL)
			if err != nil {
				if !strings.Contains(err.Error(), ErrInjectedReset.Error()) {
					t.Fatalf("unexpected error kind: %v", err)
				}
				outcomes = append(outcomes, false)
				continue
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			outcomes = append(outcomes, true)
		}
		if st := in.Stats(); st.Resets == 0 || st.Resets == 40 {
			t.Fatalf("resets = %d, want some but not all of 40", st.Resets)
		}
		return outcomes
	}

	a, b := run(99), run(99)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("request %d: same seed diverged", i)
		}
	}
}

func TestInjected5xx(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	in := New(Config{Seed: 3, ErrorP: 1})
	client := in.Client(srv.Client())
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	if st := in.Stats(); st.Errors5xx != 1 {
		t.Fatalf("errors_5xx = %d, want 1", st.Errors5xx)
	}
}

func TestInjectedPartialBody(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()

	in := New(Config{Seed: 3, PartialP: 1})
	client := in.Client(srv.Client())
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if !errors.Is(err, io.ErrUnexpectedEOF) {
		t.Fatalf("read error = %v, want unexpected EOF", err)
	}
	if len(body) >= len(payload) {
		t.Fatalf("read %d bytes, want a strict prefix of %d", len(body), len(payload))
	}
}

func TestInjectedBlackholeHonorsContext(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	in := New(Config{Seed: 3, BlackholeP: 1})
	client := in.Client(srv.Client())
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, srv.URL, nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("blackholed request should fail")
	}
	if elapsed := time.Since(start); elapsed < 20*time.Millisecond {
		t.Fatalf("blackhole returned in %v, want to hold until context deadline", elapsed)
	}
	if st := in.Stats(); st.Blackholes != 1 {
		t.Fatalf("blackholes = %d, want 1", st.Blackholes)
	}
}

func TestFromEnv(t *testing.T) {
	t.Setenv("LEAKSIG_FAULTS", "seed=5,reset=0.2")
	t.Setenv("FAULT_SEED", "77")
	in, err := FromEnv()
	if err != nil {
		t.Fatalf("FromEnv: %v", err)
	}
	if in == nil {
		t.Fatal("FromEnv returned nil injector for a live spec")
	}
	if in.cfg.Seed != 77 {
		t.Fatalf("seed = %d, want FAULT_SEED override 77", in.cfg.Seed)
	}

	t.Setenv("LEAKSIG_FAULTS", "")
	in, err = FromEnv()
	if err != nil || in != nil {
		t.Fatalf("empty env: injector=%v err=%v, want nil/nil", in, err)
	}
}
