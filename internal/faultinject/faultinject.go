// Package faultinject is a deterministic chaos harness for the HTTP
// control plane. An Injector wraps an http.RoundTripper (client side) or
// a net.Listener (server side) and injects faults — added latency, 5xx
// responses, connection resets, partial bodies, blackholes — drawn from
// a seeded PRNG, so a chaos run that found a bug replays bit-for-bit
// from the same seed.
//
// Wiring is spec-string driven so every daemon exposes it the same way:
// a -faults flag or the LEAKSIG_FAULTS environment variable holding e.g.
//
//	seed=7,reset=0.1,latency_p=0.1,latency=20ms
//
// A nil *Injector is inert and valid: Transport returns its input
// unchanged, so call sites wrap unconditionally and pay nothing when
// chaos is off.
package faultinject

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// ErrInjectedReset is the error surfaced for an injected connection
// reset on the client path.
var ErrInjectedReset = errors.New("faultinject: connection reset")

// ErrInjectedBlackhole is surfaced when a request is blackholed: it
// neither succeeds nor fails until the request context expires.
var ErrInjectedBlackhole = errors.New("faultinject: blackholed")

// Config sets per-fault probabilities (each in [0,1], checked
// independently per request) and the deterministic seed.
type Config struct {
	// Seed fixes the fault stream; 0 means seed from the current time
	// (still reproducible if the chosen seed is logged by the caller).
	Seed int64

	// LatencyP is the probability of delaying a request by Latency
	// before forwarding it. Latency defaults to 20ms when LatencyP > 0.
	LatencyP float64
	Latency  time.Duration

	// ErrorP is the probability of answering with a synthesized 503
	// instead of forwarding the request.
	ErrorP float64

	// ResetP is the probability of failing the request with
	// ErrInjectedReset, as a mid-flight connection teardown would.
	ResetP float64

	// PartialP is the probability of truncating the response body
	// halfway and ending it with an unexpected-EOF error.
	PartialP float64

	// BlackholeP is the probability of holding the request until its
	// context is canceled — the silent-drop failure mode.
	BlackholeP float64
}

// enabled reports whether any fault has a nonzero probability.
func (c Config) enabled() bool {
	return c.LatencyP > 0 || c.ErrorP > 0 || c.ResetP > 0 || c.PartialP > 0 || c.BlackholeP > 0
}

// Parse decodes a comma-separated spec like
// "seed=7,reset=0.1,latency_p=0.1,latency=20ms,error=0.05". Keys:
// seed, latency (duration), latency_p, error, reset, partial,
// blackhole. An empty spec returns a zero Config and no error.
func Parse(spec string) (Config, error) {
	var cfg Config
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return cfg, nil
	}
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			return cfg, fmt.Errorf("faultinject: bad field %q (want key=value)", field)
		}
		key, val = strings.TrimSpace(key), strings.TrimSpace(val)
		var err error
		switch key {
		case "seed":
			cfg.Seed, err = strconv.ParseInt(val, 10, 64)
		case "latency":
			cfg.Latency, err = time.ParseDuration(val)
		case "latency_p":
			cfg.LatencyP, err = parseProb(val)
		case "error":
			cfg.ErrorP, err = parseProb(val)
		case "reset":
			cfg.ResetP, err = parseProb(val)
		case "partial":
			cfg.PartialP, err = parseProb(val)
		case "blackhole":
			cfg.BlackholeP, err = parseProb(val)
		default:
			return cfg, fmt.Errorf("faultinject: unknown key %q", key)
		}
		if err != nil {
			return cfg, fmt.Errorf("faultinject: field %q: %w", field, err)
		}
	}
	if cfg.LatencyP > 0 && cfg.Latency == 0 {
		cfg.Latency = 20 * time.Millisecond
	}
	return cfg, nil
}

func parseProb(val string) (float64, error) {
	p, err := strconv.ParseFloat(val, 64)
	if err != nil {
		return 0, err
	}
	if p < 0 || p > 1 {
		return 0, fmt.Errorf("probability %v outside [0,1]", p)
	}
	return p, nil
}

// FromEnv builds an Injector from the LEAKSIG_FAULTS spec variable; a
// FAULT_SEED variable, when set, overrides the spec's seed so smoke
// harnesses can pin determinism without rewriting the spec. Returns
// (nil, nil) when LEAKSIG_FAULTS is unset or empty.
func FromEnv() (*Injector, error) {
	spec := os.Getenv("LEAKSIG_FAULTS")
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	cfg, err := Parse(spec)
	if err != nil {
		return nil, err
	}
	if s := os.Getenv("FAULT_SEED"); s != "" {
		seed, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("faultinject: FAULT_SEED: %w", err)
		}
		cfg.Seed = seed
	}
	return New(cfg), nil
}

// Stats counts injected faults by kind.
type Stats struct {
	Requests   uint64 `json:"requests"`
	Latencies  uint64 `json:"latencies"`
	Errors5xx  uint64 `json:"errors_5xx"`
	Resets     uint64 `json:"resets"`
	Partials   uint64 `json:"partials"`
	Blackholes uint64 `json:"blackholes"`
}

// Injector injects faults per Config. A nil Injector is valid and
// injects nothing. Safe for concurrent use.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	requests   atomic.Uint64
	latencies  atomic.Uint64
	errors5xx  atomic.Uint64
	resets     atomic.Uint64
	partials   atomic.Uint64
	blackholes atomic.Uint64
}

// New returns an Injector for cfg, or nil when cfg injects nothing —
// so "chaos off" and "no injector" are the same cheap path.
func New(cfg Config) *Injector {
	if !cfg.enabled() {
		return nil
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(seed))}
}

// roll draws a uniform [0,1) variate from the seeded stream.
func (in *Injector) roll() float64 {
	in.mu.Lock()
	f := in.rng.Float64()
	in.mu.Unlock()
	return f
}

// Stats returns fault counts so far. Nil-safe.
func (in *Injector) Stats() Stats {
	if in == nil {
		return Stats{}
	}
	return Stats{
		Requests:   in.requests.Load(),
		Latencies:  in.latencies.Load(),
		Errors5xx:  in.errors5xx.Load(),
		Resets:     in.resets.Load(),
		Partials:   in.partials.Load(),
		Blackholes: in.blackholes.Load(),
	}
}

// Transport wraps base with fault injection. A nil Injector returns
// base unchanged (nil base meaning http.DefaultTransport is preserved
// for the caller to resolve).
func (in *Injector) Transport(base http.RoundTripper) http.RoundTripper {
	if in == nil {
		return base
	}
	if base == nil {
		base = http.DefaultTransport
	}
	return &transport{in: in, base: base}
}

// Client wraps c (nil meaning a fresh default client) so its transport
// injects faults. Nil-safe: a nil Injector returns c unchanged.
func (in *Injector) Client(c *http.Client) *http.Client {
	if in == nil {
		return c
	}
	if c == nil {
		c = &http.Client{}
	}
	wrapped := *c
	wrapped.Transport = in.Transport(c.Transport)
	return &wrapped
}

type transport struct {
	in   *Injector
	base http.RoundTripper
}

func (t *transport) RoundTrip(req *http.Request) (*http.Response, error) {
	in := t.in
	in.requests.Add(1)
	cfg := in.cfg

	if cfg.BlackholeP > 0 && in.roll() < cfg.BlackholeP {
		in.blackholes.Add(1)
		<-req.Context().Done()
		return nil, fmt.Errorf("%w: %v", ErrInjectedBlackhole, req.Context().Err())
	}
	if cfg.LatencyP > 0 && in.roll() < cfg.LatencyP {
		in.latencies.Add(1)
		select {
		case <-time.After(cfg.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if cfg.ResetP > 0 && in.roll() < cfg.ResetP {
		in.resets.Add(1)
		return nil, &net.OpError{Op: "read", Net: "tcp", Err: ErrInjectedReset}
	}
	if cfg.ErrorP > 0 && in.roll() < cfg.ErrorP {
		in.errors5xx.Add(1)
		body := "injected fault\n"
		return &http.Response{
			Status:        "503 Service Unavailable",
			StatusCode:    http.StatusServiceUnavailable,
			Proto:         "HTTP/1.1",
			ProtoMajor:    1,
			ProtoMinor:    1,
			Header:        http.Header{"Content-Type": []string{"text/plain"}},
			Body:          io.NopCloser(strings.NewReader(body)),
			ContentLength: int64(len(body)),
			Request:       req,
		}, nil
	}

	resp, err := t.base.RoundTrip(req)
	if err != nil {
		return resp, err
	}
	if cfg.PartialP > 0 && in.roll() < cfg.PartialP {
		in.partials.Add(1)
		resp.Body = &partialBody{rc: resp.Body, remain: partialBudget(resp.ContentLength)}
		resp.ContentLength = -1
	}
	return resp, nil
}

// partialBudget picks how many body bytes to deliver before cutting the
// connection: half a known body, or a small fixed slice of a stream.
func partialBudget(contentLength int64) int64 {
	if contentLength > 1 {
		return contentLength / 2
	}
	return 64
}

// partialBody delivers remain bytes then fails with ErrUnexpectedEOF,
// mimicking a peer that died mid-response.
type partialBody struct {
	rc     io.ReadCloser
	remain int64
}

func (p *partialBody) Read(b []byte) (int, error) {
	if p.remain <= 0 {
		return 0, io.ErrUnexpectedEOF
	}
	if int64(len(b)) > p.remain {
		b = b[:p.remain]
	}
	n, err := p.rc.Read(b)
	p.remain -= int64(n)
	if err == io.EOF {
		return n, io.EOF
	}
	if p.remain <= 0 && err == nil {
		err = io.ErrUnexpectedEOF
	}
	return n, err
}

func (p *partialBody) Close() error { return p.rc.Close() }

// Listener wraps l so accepted connections are subject to reset and
// latency faults on the server side. Nil-safe.
func (in *Injector) Listener(l net.Listener) net.Listener {
	if in == nil {
		return l
	}
	return &listener{Listener: l, in: in}
}

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return c, err
	}
	return &conn{Conn: c, in: l.in}, nil
}

// conn applies per-write faults: an injected reset closes the
// connection mid-stream; latency delays the write.
type conn struct {
	net.Conn
	in *Injector
}

func (c *conn) Write(b []byte) (int, error) {
	in := c.in
	cfg := in.cfg
	if cfg.LatencyP > 0 && in.roll() < cfg.LatencyP {
		in.latencies.Add(1)
		time.Sleep(cfg.Latency)
	}
	if cfg.ResetP > 0 && in.roll() < cfg.ResetP {
		in.resets.Add(1)
		c.Conn.Close()
		return 0, &net.OpError{Op: "write", Net: "tcp", Err: ErrInjectedReset}
	}
	if cfg.PartialP > 0 && len(b) > 1 && in.roll() < cfg.PartialP {
		in.partials.Add(1)
		n, _ := c.Conn.Write(b[:len(b)/2])
		c.Conn.Close()
		return n, &net.OpError{Op: "write", Net: "tcp", Err: ErrInjectedReset}
	}
	return c.Conn.Write(b)
}

// String summarizes the active config for startup logs. Nil-safe.
func (in *Injector) String() string {
	if in == nil {
		return "faults off"
	}
	var buf bytes.Buffer
	fmt.Fprintf(&buf, "faults seed=%d", in.cfg.Seed)
	if in.cfg.LatencyP > 0 {
		fmt.Fprintf(&buf, " latency=%v@%.2g", in.cfg.Latency, in.cfg.LatencyP)
	}
	if in.cfg.ErrorP > 0 {
		fmt.Fprintf(&buf, " error=%.2g", in.cfg.ErrorP)
	}
	if in.cfg.ResetP > 0 {
		fmt.Fprintf(&buf, " reset=%.2g", in.cfg.ResetP)
	}
	if in.cfg.PartialP > 0 {
		fmt.Fprintf(&buf, " partial=%.2g", in.cfg.PartialP)
	}
	if in.cfg.BlackholeP > 0 {
		fmt.Fprintf(&buf, " blackhole=%.2g", in.cfg.BlackholeP)
	}
	return buf.String()
}
