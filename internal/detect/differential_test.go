package detect

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"

	"leaksig/internal/httpmodel"
	"leaksig/internal/ipaddr"
	"leaksig/internal/signature"
)

// refMatch is the naive reference matcher: a token occurs iff
// bytes.Contains finds it inside a single content field; a signature
// matches iff every token occurs and the host suffix constraint holds.
// This is also what the pre-dense engine computed for every token free of
// '\n' (the Content() field separator), so agreement here is agreement
// with the old matcher on all tokens signature generation can emit.
func refMatch(set *signature.Set, p *httpmodel.Packet) []int {
	fields := p.ContentFields()
	var out []int
	for _, sig := range set.Signatures {
		if len(sig.Tokens) == 0 {
			continue
		}
		if !signature.HostMatchesSuffix(p.Host, sig.HostSuffix) {
			continue
		}
		all := true
		for _, tok := range sig.Tokens {
			found := false
			for _, f := range fields {
				if bytes.Contains(f, []byte(tok)) {
					found = true
					break
				}
			}
			if !found {
				all = false
				break
			}
		}
		if all {
			out = append(out, sig.ID)
		}
	}
	return out
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestDifferentialEngineVsReference fuzzes random signature sets against
// random packets and asserts MatchPacket, MatchInto and Matches all agree
// with the naive per-field reference — including host constraints, shared
// tokens, duplicate tokens, and tokens planted to span field boundaries
// (which must NOT match).
func TestDifferentialEngineVsReference(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	vocab := []string{
		"udid=", "imei=", "f3a9c1d2", "zone=1", "carrier=docomo",
		"lat=35.6", "lon=139.7", "sess", "=&x=", "1 HTTP",
	}
	hosts := []string{"a.ads.example", "b.ads.example", "track.example", "cdn.other"}
	suffixes := []string{"", "ads.example", "example", "track.example", "absent.example"}

	randPacket := func() *httpmodel.Packet {
		b := httpmodel.Get(hosts[rng.Intn(len(hosts))], "/p")
		path := "/p?"
		for i := 0; i < rng.Intn(4); i++ {
			path += vocab[rng.Intn(len(vocab))] + "&"
		}
		b = httpmodel.Get(hosts[rng.Intn(len(hosts))], path)
		if rng.Intn(2) == 0 {
			ck := ""
			for i := 0; i < 1+rng.Intn(3); i++ {
				ck += vocab[rng.Intn(len(vocab))]
			}
			b = b.Cookie(ck)
		}
		p := b.Dest(ipaddr.MustParse("203.0.113.9"), 80).Build()
		if rng.Intn(3) == 0 {
			p.Method = "POST"
			body := ""
			for i := 0; i < rng.Intn(4); i++ {
				body += vocab[rng.Intn(len(vocab))] + "\n" // '\n' legal inside the body field
			}
			p.Body = []byte(body)
		}
		return p
	}

	for iter := 0; iter < 300; iter++ {
		nSigs := 1 + rng.Intn(6)
		sigs := make([]*signature.Signature, nSigs)
		for i := range sigs {
			nTok := 1 + rng.Intn(3)
			toks := make([]string, 0, nTok)
			for j := 0; j < nTok; j++ {
				tok := vocab[rng.Intn(len(vocab))]
				if rng.Intn(8) == 0 {
					tok = tok + "\n" + vocab[rng.Intn(len(vocab))] // spans fields: only the body may contain it
				}
				toks = append(toks, tok)
				if rng.Intn(6) == 0 {
					toks = append(toks, tok) // duplicate token in one signature
				}
			}
			sigs[i] = &signature.Signature{
				ID:         i,
				Tokens:     toks,
				HostSuffix: suffixes[rng.Intn(len(suffixes))],
			}
		}
		set := &signature.Set{Signatures: sigs}
		eng := NewEngine(set)
		sc := eng.NewScratch()
		for k := 0; k < 10; k++ {
			p := randPacket()
			want := refMatch(set, p)
			if got := eng.MatchPacket(p); !equalIDs(got, want) {
				t.Fatalf("iter %d: MatchPacket=%v ref=%v\nsigs=%+v\npacket=%s cookie=%q body=%q",
					iter, got, want, sigDump(sigs), p, p.Cookie(), p.Body)
			}
			if got := eng.MatchInto(p, sc); !equalIDs(got, want) {
				t.Fatalf("iter %d: MatchInto=%v ref=%v", iter, got, want)
			}
			if got := eng.Matches(p); got != (len(want) > 0) {
				t.Fatalf("iter %d: Matches=%v ref=%v", iter, got, want)
			}
		}
	}
}

func sigDump(sigs []*signature.Signature) string {
	out := ""
	for _, s := range sigs {
		out += fmt.Sprintf("{id=%d host=%q toks=%q} ", s.ID, s.HostSuffix, s.Tokens)
	}
	return out
}

// TestMatchIntoZeroAlloc pins the allocation budget of the scan+resolve
// core: with a warmed scratch, matching allocates nothing — for clean
// packets, matching packets, and host-filtered packets alike.
func TestMatchIntoZeroAlloc(t *testing.T) {
	set := sigSet(
		&signature.Signature{Tokens: []string{"udid=f3a9", "zone="}},
		&signature.Signature{Tokens: []string{"imei=3539"}, HostSuffix: "ads.example"},
		&signature.Signature{Tokens: []string{"sess="}},
	)
	e := NewEngine(set)
	sc := e.NewScratch()
	packets := []*httpmodel.Packet{
		adPkt("x.ads.example", "/a?zone=1&udid=f3a9"), // matches 0
		adPkt("x.ads.example", "/a?imei=3539"),        // matches 1
		adPkt("elsewhere.example", "/a?imei=3539"),    // host prefilter rejects
		adPkt("x.ads.example", "/benign"),             // clean
	}
	for _, p := range packets {
		e.MatchInto(p, sc) // warm (first call sizes the scratch)
	}
	for i, p := range packets {
		p := p
		allocs := testing.AllocsPerRun(200, func() { e.MatchInto(p, sc) })
		if allocs != 0 {
			t.Errorf("packet %d: MatchInto allocated %v per run, want 0", i, allocs)
		}
	}
}

// TestScratchAdoptsNewEngine proves the stale-scratch guard: a scratch
// warmed on a small engine handed to a much larger one (more tokens, more
// signatures, more states — the hot-reload shape) is resized instead of
// indexing out of bounds, and still produces correct results.
func TestScratchAdoptsNewEngine(t *testing.T) {
	small := NewEngine(sigSet(&signature.Signature{Tokens: []string{"aa"}}))
	sigs := make([]*signature.Signature, 100)
	for i := range sigs {
		sigs[i] = &signature.Signature{Tokens: []string{fmt.Sprintf("token-%03d=", i), "common="}}
	}
	large := NewEngine(sigSet(sigs...))

	sc := small.NewScratch()
	p := adPkt("x.example", "/a?aa")
	if got := small.MatchInto(p, sc); len(got) != 1 {
		t.Fatalf("small engine: %v", got)
	}
	p2 := adPkt("x.example", "/a?token-042=&common=")
	if got := large.MatchInto(p2, sc); len(got) != 1 || got[0] != 42 {
		t.Fatalf("large engine with adopted scratch: %v", got)
	}
	// And back: shrinking must be just as safe.
	if got := small.MatchInto(p, sc); len(got) != 1 {
		t.Fatalf("small engine after shrink: %v", got)
	}
}
