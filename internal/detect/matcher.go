package detect

import (
	"runtime"
	"sync"

	"leaksig/internal/capture"
	"leaksig/internal/httpmodel"
)

// Matcher is any packet-level detector: the conjunction Engine, a Bayes
// signature, or a token-subsequence set. Implementations must be safe for
// concurrent use.
type Matcher interface {
	Matches(p *httpmodel.Packet) bool
}

// MatchSetWith evaluates every packet of the set against an arbitrary
// Matcher in parallel, returning one verdict per packet in order.
func MatchSetWith(m Matcher, s *capture.Set) []bool {
	n := len(s.Packets)
	out := make([]bool, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		return out
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = m.Matches(s.Packets[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// EvaluateMatcher scores an arbitrary Matcher with the paper's equations,
// mirroring Evaluate for non-conjunction signature types.
func EvaluateMatcher(m Matcher, ds *capture.Set, sensitive []bool, n int) Result {
	if len(sensitive) != len(ds.Packets) {
		panic("detect: sensitivity label length mismatch")
	}
	matched := MatchSetWith(m, ds)
	r := Result{N: n}
	for i := range ds.Packets {
		if sensitive[i] {
			r.SensitiveTotal++
			if matched[i] {
				r.DetectedSensitive++
			} else {
				r.UndetectedSensitive++
			}
		} else {
			r.NormalTotal++
			if matched[i] {
				r.DetectedNormal++
			}
		}
	}
	if denom := r.SensitiveTotal - n; denom > 0 {
		r.TruePositiveRate = float64(r.DetectedSensitive-n) / float64(denom)
		r.FalseNegativeRate = float64(r.UndetectedSensitive) / float64(denom)
	}
	if denom := r.NormalTotal - n; denom > 0 {
		r.FalsePositiveRate = float64(r.DetectedNormal) / float64(denom)
	}
	return r
}
