package detect

import (
	"strings"
	"testing"

	"leaksig/internal/capture"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// substringMatcher is a trivial Matcher for tests.
type substringMatcher string

func (m substringMatcher) Matches(p *httpmodel.Packet) bool {
	return strings.Contains(string(p.Content()), string(m))
}

func TestMatchSetWithAgreesWithSerial(t *testing.T) {
	var ds capture.Set
	for i := 0; i < 300; i++ {
		if i%3 == 0 {
			ds.Append(adPkt("x.example", "/a?udid=f3a9"))
		} else {
			ds.Append(adPkt("x.example", "/benign"))
		}
	}
	m := substringMatcher("udid=f3a9")
	got := MatchSetWith(m, &ds)
	for i, p := range ds.Packets {
		if got[i] != m.Matches(p) {
			t.Fatalf("parallel verdict %d disagrees", i)
		}
	}
}

func TestMatchSetWithEmpty(t *testing.T) {
	out := MatchSetWith(substringMatcher("x"), &capture.Set{})
	if len(out) != 0 {
		t.Error("empty set")
	}
}

func TestEvaluateMatcherMatchesEvaluate(t *testing.T) {
	// The conjunction Engine implements Matcher; both evaluation paths
	// must produce identical results.
	set := sigSet(&signature.Signature{Tokens: []string{"udid=f3a9"}})
	e := NewEngine(set)
	var ds capture.Set
	var labels []bool
	for i := 0; i < 60; i++ {
		if i%2 == 0 {
			ds.Append(adPkt("x.example", "/s?udid=f3a9"))
			labels = append(labels, true)
		} else {
			ds.Append(adPkt("x.example", "/benign"))
			labels = append(labels, false)
		}
	}
	a := Evaluate(e, &ds, labels, 5)
	b := EvaluateMatcher(e, &ds, labels, 5)
	if a != b {
		t.Errorf("Evaluate %+v != EvaluateMatcher %+v", a, b)
	}
}

func TestEvaluateMatcherPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	var ds capture.Set
	ds.Append(adPkt("x.example", "/"))
	EvaluateMatcher(substringMatcher("x"), &ds, nil, 0)
}

var _ Matcher = (*Engine)(nil)
var _ Matcher = (*signature.BayesSignature)(nil)
var _ Matcher = (*signature.SubsequenceSet)(nil)
