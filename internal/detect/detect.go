// Package detect applies conjunction signature sets to HTTP packets and
// computes the paper's evaluation rates (§V-B).
//
// Matching runs one dense Aho–Corasick pass per packet over the union of
// every signature's tokens — field by field, with no concatenated content
// buffer — then resolves conjunctions through an inverted token→signature
// index with remaining-token counters and a host-suffix bucket prefilter,
// so per-packet work scales with the tokens that occur rather than the
// signature count. Evaluation implements the paper's equations verbatim:
//
//	TP = (#detected sensitive packets − N) / (#sensitive packets − N)
//	FN =  #undetected sensitive packets   / (#sensitive packets − N)
//	FP =  #detected non-sensitive packets / (#non-sensitive packets − N)
//
// where N is the number of (sensitive) packets the signatures were
// generated from. The N subtraction in the FP denominator is the paper's
// own formulation and is kept literal.
//
// This package is the offline posture: a fully materialized capture
// scored against an immutable compiled set. Its Engine is also the
// matcher core the streaming side (internal/engine) compiles each hot
// generation into.
package detect

import (
	"math/bits"
	"runtime"
	"strings"
	"sync"

	"leaksig/internal/ahocorasick"
	"leaksig/internal/capture"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// Engine matches packets against a compiled signature set. It is immutable
// after construction and safe for concurrent use.
//
// The compiled form is built for per-packet cost proportional to the
// tokens that actually occur, not to the signature count: one dense
// Aho–Corasick pass over the packet's content fields fills a token
// bitset, then an inverted index (token ID → postings list of signatures)
// drives remaining-token countdowns so only signatures sharing an
// occurring token are ever touched. Host constraints are a bucket
// prefilter: each distinct HostSuffix is one bucket, the packet marks its
// eligible buckets with O(host labels) map probes, and a signature whose
// tokens are all present still needs its bucket marked to match.
type Engine struct {
	set     *signature.Set
	matcher *ahocorasick.Matcher

	// needed[si] is the number of DISTINCT tokens signature si requires;
	// 0 means the signature can never match and appears in no postings
	// list.
	needed []int32
	// postings[tok] lists the signatures requiring token tok, each
	// exactly once.
	postings [][]int32

	// Host-suffix buckets: sigBucket[si] is the bucket of signature si's
	// HostSuffix; buckets maps each distinct non-empty suffix to its
	// bucket; emptyBucket is the bucket shared by suffix-less signatures
	// (-1 when absent), which every packet marks eligible.
	sigBucket   []int32
	buckets     map[string]int32
	emptyBucket int32
	numBuckets  int

	// Per-kind programs beyond the fast conjunction path (kinds.go).
	// viewMask is the union of every signature's decode views; when it
	// is zero the scan never touches the view machinery, and when both
	// program lists are empty matchExtInto is never called — a legacy
	// conjunction-only set compiles to exactly the PR 5 engine.
	viewMask httpmodel.ViewMask
	extConj  []extProgram
	subseq   []subseqProgram

	// scratchPool feeds the compatibility entry points (MatchPacket,
	// Matches); the pool lives on the engine, so a pooled scratch can
	// never outlive or cross generations.
	scratchPool sync.Pool
}

// NewEngine compiles the signature set.
func NewEngine(set *signature.Set) *Engine {
	e := &Engine{
		set:         set,
		needed:      make([]int32, len(set.Signatures)),
		sigBucket:   make([]int32, len(set.Signatures)),
		buckets:     make(map[string]int32),
		emptyBucket: -1,
	}
	tokenIndex := make(map[string]int32)
	var patterns [][]byte
	perSig := make([][]int32, len(set.Signatures))
	for si, sig := range set.Signatures {
		for _, tok := range sig.Tokens {
			id, ok := tokenIndex[tok]
			if !ok {
				id = int32(len(patterns))
				tokenIndex[tok] = id
				patterns = append(patterns, []byte(tok))
			}
			dup := false
			for _, seen := range perSig[si] {
				if seen == id {
					dup = true
					break
				}
			}
			if !dup {
				perSig[si] = append(perSig[si], id)
			}
		}
		e.needed[si] = int32(len(perSig[si]))

		bucket := int32(-1)
		if sig.HostSuffix == "" {
			if e.emptyBucket < 0 {
				e.emptyBucket = int32(e.numBuckets)
				e.numBuckets++
			}
			bucket = e.emptyBucket
		} else if b, ok := e.buckets[sig.HostSuffix]; ok {
			bucket = b
		} else {
			bucket = int32(e.numBuckets)
			e.buckets[sig.HostSuffix] = bucket
			e.numBuckets++
		}
		e.sigBucket[si] = bucket
	}
	e.compileKinds(set, perSig)
	e.postings = make([][]int32, len(patterns))
	for si, ids := range perSig {
		if e.needed[si] == 0 {
			continue // token-less and non-fast-path signatures: no postings
		}
		for _, id := range ids {
			e.postings[id] = append(e.postings[id], int32(si))
		}
	}
	e.matcher = ahocorasick.Compile(patterns)
	e.scratchPool.New = func() any { return &Scratch{} }
	return e
}

// Set returns the engine's signature set.
func (e *Engine) Set() *signature.Set { return e.set }

// NewScratch returns a scratch pre-sized for this engine. Callers that
// match many packets (shard workers, batch loops) should hold one per
// goroutine and pass it to MatchInto; the zero Scratch value works too.
func (e *Engine) NewScratch() *Scratch {
	sc := &Scratch{}
	sc.init(e)
	return sc
}

// markBuckets flags the host buckets the packet is eligible for: the
// empty-suffix bucket plus every label-aligned suffix of the host that
// some signature constrains to. This mirrors signature.HostMatchesSuffix
// exactly — host == suffix or host ending in "."+suffix.
func (e *Engine) markBuckets(host string, sc *Scratch) {
	if e.emptyBucket >= 0 {
		sc.bucketGen[e.emptyBucket] = sc.cur
	}
	if len(e.buckets) == 0 {
		return
	}
	for i := 0; ; {
		if b, ok := e.buckets[host[i:]]; ok {
			sc.bucketGen[b] = sc.cur
		}
		j := strings.IndexByte(host[i:], '.')
		if j < 0 {
			return
		}
		i += j + 1
	}
}

// MatchInto matches one packet using caller-owned scratch state and
// returns the IDs of every matching signature, in signature-set order.
// The returned slice is backed by the scratch and valid only until its
// next use. Steady-state calls perform no allocation; a scratch sized for
// a different engine (or the zero Scratch) is re-initialized first, so
// hot reloads can never leave a worker indexing the new automaton with
// old dimensions.
func (e *Engine) MatchInto(p *httpmodel.Packet, sc *Scratch) []int {
	if sc.owner != e {
		sc.init(e)
	}
	sc.begin()
	if e.viewMask == 0 {
		p.VisitContent(sc)
	} else {
		p.VisitContentViews(sc, e.viewMask, &sc.views)
	}
	e.markBuckets(p.Host, sc)

	// Postings-list conjunction resolution: walk only the tokens whose
	// bits are set, counting down each referencing signature's needed
	// total. A signature completes exactly once — at its last missing
	// token — so candidates cannot duplicate.
	sc.cand = sc.cand[:0]
	for w, word := range sc.occ {
		base := w << 6
		for word != 0 {
			tok := base + bits.TrailingZeros64(word)
			word &= word - 1
			for _, si := range e.postings[tok] {
				if sc.gen[si] != sc.cur {
					sc.gen[si] = sc.cur
					sc.rem[si] = e.needed[si]
				}
				sc.rem[si]--
				if sc.rem[si] == 0 && sc.bucketGen[e.sigBucket[si]] == sc.cur {
					sc.cand = append(sc.cand, si)
				}
			}
		}
	}
	if len(e.extConj) > 0 || len(e.subseq) > 0 {
		e.matchExtInto(p, sc)
	}
	// Candidates surface in token-discovery order; restore signature-set
	// order (insertion sort: the list is almost always 0–2 entries).
	for i := 1; i < len(sc.cand); i++ {
		for j := i; j > 0 && sc.cand[j-1] > sc.cand[j]; j-- {
			sc.cand[j-1], sc.cand[j] = sc.cand[j], sc.cand[j-1]
		}
	}
	sc.matched = sc.matched[:0]
	for _, si := range sc.cand {
		sc.matched = append(sc.matched, e.set.Signatures[si].ID)
	}
	return sc.matched
}

// MatchesWith reports whether any signature matches, using caller-owned
// scratch. Allocation-free in the steady state.
func (e *Engine) MatchesWith(p *httpmodel.Packet, sc *Scratch) bool {
	return len(e.MatchInto(p, sc)) > 0
}

// MatchPacket returns the IDs of every signature the packet matches. It
// draws scratch from the engine's pool, so the scan and resolution
// allocate nothing; only a non-empty result copies out (nil is returned
// for a clean packet).
func (e *Engine) MatchPacket(p *httpmodel.Packet) []int {
	sc := e.scratchPool.Get().(*Scratch)
	ids := e.MatchInto(p, sc)
	var out []int
	if len(ids) > 0 {
		out = append(out, ids...)
	}
	e.scratchPool.Put(sc)
	return out
}

// Matches reports whether any signature matches the packet. It is
// allocation-free in the steady state.
func (e *Engine) Matches(p *httpmodel.Packet) bool {
	sc := e.scratchPool.Get().(*Scratch)
	ok := len(e.MatchInto(p, sc)) > 0
	e.scratchPool.Put(sc)
	return ok
}

// MatchSet evaluates every packet of the set in parallel and returns one
// boolean per packet in order. Each worker amortizes one scratch across
// its whole range.
func (e *Engine) MatchSet(s *capture.Set) []bool {
	n := len(s.Packets)
	out := make([]bool, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		return out
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			sc := e.NewScratch()
			for i := lo; i < hi; i++ {
				out[i] = len(e.MatchInto(s.Packets[i], sc)) > 0
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Result holds the counts and rates of one detection run.
type Result struct {
	N int // signature-generation sample size

	SensitiveTotal int // packets in the suspicious group
	NormalTotal    int // packets in the normal group

	DetectedSensitive   int // sensitive packets matched by a signature
	UndetectedSensitive int // sensitive packets missed
	DetectedNormal      int // normal packets matched (false alarms)

	TruePositiveRate  float64 // paper's TP
	FalseNegativeRate float64 // paper's FN
	FalsePositiveRate float64 // paper's FP
}

// Evaluate runs the engine over the whole dataset and scores it against the
// ground-truth sensitivity labels. sensitive[i] must correspond to
// ds.Packets[i]; n is the paper's N (size of the training sample drawn from
// the suspicious group).
func Evaluate(e *Engine, ds *capture.Set, sensitive []bool, n int) Result {
	if len(sensitive) != len(ds.Packets) {
		panic("detect: sensitivity label length mismatch")
	}
	matched := e.MatchSet(ds)
	r := Result{N: n}
	for i := range ds.Packets {
		if sensitive[i] {
			r.SensitiveTotal++
			if matched[i] {
				r.DetectedSensitive++
			} else {
				r.UndetectedSensitive++
			}
		} else {
			r.NormalTotal++
			if matched[i] {
				r.DetectedNormal++
			}
		}
	}
	if denom := r.SensitiveTotal - n; denom > 0 {
		r.TruePositiveRate = float64(r.DetectedSensitive-n) / float64(denom)
		r.FalseNegativeRate = float64(r.UndetectedSensitive) / float64(denom)
	}
	if denom := r.NormalTotal - n; denom > 0 {
		r.FalsePositiveRate = float64(r.DetectedNormal) / float64(denom)
	}
	return r
}
