// Package detect applies conjunction signature sets to HTTP packets and
// computes the paper's evaluation rates (§V-B).
//
// Matching runs one Aho–Corasick pass per packet over the union of every
// signature's tokens, then checks each signature's token bitset and optional
// destination constraint. Evaluation implements the paper's equations
// verbatim:
//
//	TP = (#detected sensitive packets − N) / (#sensitive packets − N)
//	FN =  #undetected sensitive packets   / (#sensitive packets − N)
//	FP =  #detected non-sensitive packets / (#non-sensitive packets − N)
//
// where N is the number of (sensitive) packets the signatures were
// generated from. The N subtraction in the FP denominator is the paper's
// own formulation and is kept literal.
//
// This package is the offline posture: a fully materialized capture
// scored against an immutable compiled set. Its Engine is also the
// matcher core the streaming side (internal/engine) compiles each hot
// generation into.
package detect

import (
	"runtime"
	"sync"

	"leaksig/internal/ahocorasick"
	"leaksig/internal/capture"
	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// Engine matches packets against a compiled signature set. It is immutable
// after construction and safe for concurrent use.
type Engine struct {
	set      *signature.Set
	matcher  *ahocorasick.Matcher
	tokenIDs [][]int // per signature: indices into the matcher's pattern list
}

// NewEngine compiles the signature set.
func NewEngine(set *signature.Set) *Engine {
	tokenIndex := make(map[string]int)
	var patterns [][]byte
	tokenIDs := make([][]int, len(set.Signatures))
	for si, sig := range set.Signatures {
		ids := make([]int, 0, len(sig.Tokens))
		for _, tok := range sig.Tokens {
			id, ok := tokenIndex[tok]
			if !ok {
				id = len(patterns)
				tokenIndex[tok] = id
				patterns = append(patterns, []byte(tok))
			}
			ids = append(ids, id)
		}
		tokenIDs[si] = ids
	}
	return &Engine{
		set:      set,
		matcher:  ahocorasick.Compile(patterns),
		tokenIDs: tokenIDs,
	}
}

// Set returns the engine's signature set.
func (e *Engine) Set() *signature.Set { return e.set }

// MatchPacket returns the IDs of every signature the packet matches.
func (e *Engine) MatchPacket(p *httpmodel.Packet) []int {
	occ := e.matcher.Occurs(p.Content())
	var out []int
	for si, sig := range e.set.Signatures {
		if len(e.tokenIDs[si]) == 0 {
			continue
		}
		if !signature.HostMatchesSuffix(p.Host, sig.HostSuffix) {
			continue
		}
		all := true
		for _, id := range e.tokenIDs[si] {
			if !occ[id] {
				all = false
				break
			}
		}
		if all {
			out = append(out, sig.ID)
		}
	}
	return out
}

// Matches reports whether any signature matches the packet.
func (e *Engine) Matches(p *httpmodel.Packet) bool {
	occ := e.matcher.Occurs(p.Content())
	for si, sig := range e.set.Signatures {
		if len(e.tokenIDs[si]) == 0 {
			continue
		}
		if !signature.HostMatchesSuffix(p.Host, sig.HostSuffix) {
			continue
		}
		all := true
		for _, id := range e.tokenIDs[si] {
			if !occ[id] {
				all = false
				break
			}
		}
		if all {
			return true
		}
	}
	return false
}

// MatchSet evaluates every packet of the set in parallel and returns one
// boolean per packet in order.
func (e *Engine) MatchSet(s *capture.Set) []bool {
	n := len(s.Packets)
	out := make([]bool, n)
	workers := runtime.GOMAXPROCS(0)
	if workers > n {
		workers = n
	}
	if workers < 1 {
		return out
	}
	var wg sync.WaitGroup
	chunk := (n + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		if lo >= hi {
			break
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				out[i] = e.Matches(s.Packets[i])
			}
		}(lo, hi)
	}
	wg.Wait()
	return out
}

// Result holds the counts and rates of one detection run.
type Result struct {
	N int // signature-generation sample size

	SensitiveTotal int // packets in the suspicious group
	NormalTotal    int // packets in the normal group

	DetectedSensitive   int // sensitive packets matched by a signature
	UndetectedSensitive int // sensitive packets missed
	DetectedNormal      int // normal packets matched (false alarms)

	TruePositiveRate  float64 // paper's TP
	FalseNegativeRate float64 // paper's FN
	FalsePositiveRate float64 // paper's FP
}

// Evaluate runs the engine over the whole dataset and scores it against the
// ground-truth sensitivity labels. sensitive[i] must correspond to
// ds.Packets[i]; n is the paper's N (size of the training sample drawn from
// the suspicious group).
func Evaluate(e *Engine, ds *capture.Set, sensitive []bool, n int) Result {
	if len(sensitive) != len(ds.Packets) {
		panic("detect: sensitivity label length mismatch")
	}
	matched := e.MatchSet(ds)
	r := Result{N: n}
	for i := range ds.Packets {
		if sensitive[i] {
			r.SensitiveTotal++
			if matched[i] {
				r.DetectedSensitive++
			} else {
				r.UndetectedSensitive++
			}
		} else {
			r.NormalTotal++
			if matched[i] {
				r.DetectedNormal++
			}
		}
	}
	if denom := r.SensitiveTotal - n; denom > 0 {
		r.TruePositiveRate = float64(r.DetectedSensitive-n) / float64(denom)
		r.FalseNegativeRate = float64(r.UndetectedSensitive) / float64(denom)
	}
	if denom := r.NormalTotal - n; denom > 0 {
		r.FalsePositiveRate = float64(r.DetectedNormal) / float64(denom)
	}
	return r
}
