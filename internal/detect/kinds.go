package detect

// Per-kind match programs beyond the fast conjunction path. The compiler
// partitions the set three ways:
//
//   - view-less conjunctions stay on the PR 5 postings path, untouched;
//   - conjunctions with decode views become extended programs: a token
//     counts as present when its bit is set in the raw occurrence bitset
//     or in any opted view's bitset;
//   - subsequence signatures get a two-stage program: a bitset prefilter
//     (every token present somewhere in one stream — raw or one opted
//     view) followed by an ordered verify over that stream's materialized
//     content, which reproduces signature.MatchesOrdered exactly.
//
// All kinds share one automaton pass per stream; the extra programs run
// only when the compiled set actually contains them, so a legacy
// conjunction-only set pays nothing.

import (
	"bytes"

	"leaksig/internal/httpmodel"
	"leaksig/internal/signature"
)

// extProgram is one conjunction signature with decode views.
type extProgram struct {
	si     int32
	tokens []int32 // distinct token IDs
	views  httpmodel.ViewMask
}

// subseqProgram is one subsequence signature: distinct token IDs for the
// bitset prefilter plus the ordered token bytes for the verify walk.
type subseqProgram struct {
	si     int32
	tokens []int32  // distinct token IDs (prefilter)
	toks   [][]byte // tokens in signature order (verify)
	views  httpmodel.ViewMask
}

// bitSet reports whether token tok's bit is set in occ.
func bitSet(occ []uint64, tok int32) bool {
	return occ[tok>>6]&(1<<(tok&63)) != 0
}

// allBits reports whether every token's bit is set in occ.
func allBits(occ []uint64, tokens []int32) bool {
	for _, t := range tokens {
		if !bitSet(occ, t) {
			return false
		}
	}
	return true
}

// matchExtInto resolves the extended-conjunction and subsequence
// programs into sc.cand. The fast postings loop has already run; ext
// signatures are absent from every postings list, so no candidate can
// duplicate.
func (e *Engine) matchExtInto(p *httpmodel.Packet, sc *Scratch) {
	for i := range e.extConj {
		pr := &e.extConj[i]
		if sc.bucketGen[e.sigBucket[pr.si]] != sc.cur {
			continue
		}
		ok := true
		for _, t := range pr.tokens {
			if bitSet(sc.occ, t) {
				continue
			}
			found := false
			for v := httpmodel.View(0); v < httpmodel.NumViews; v++ {
				if pr.views.Has(v) && bitSet(sc.occView[v], t) {
					found = true
					break
				}
			}
			if !found {
				ok = false
				break
			}
		}
		if ok {
			sc.cand = append(sc.cand, pr.si)
		}
	}
	for i := range e.subseq {
		pr := &e.subseq[i]
		if sc.bucketGen[e.sigBucket[pr.si]] != sc.cur {
			continue
		}
		if allBits(sc.occ, pr.tokens) && e.verifyOrdered(p, pr, rawStream, sc) {
			sc.cand = append(sc.cand, pr.si)
			continue
		}
		for v := httpmodel.View(0); v < httpmodel.NumViews; v++ {
			if pr.views.Has(v) && allBits(sc.occView[v], pr.tokens) &&
				e.verifyOrdered(p, pr, v, sc) {
				sc.cand = append(sc.cand, pr.si)
				break
			}
		}
	}
}

// rawStream selects the undecoded content stream in verifyOrdered.
const rawStream = httpmodel.NumViews

// verifyOrdered materializes one stream of the packet — the raw content
// ('\n'-joined fields, exactly Packet.Content) or one decode view's
// spans '\n'-joined — into scratch and runs the ordered token walk over
// it. It only runs after the prefilter saw every token in the stream, so
// it is the rare path.
func (e *Engine) verifyOrdered(p *httpmodel.Packet, pr *subseqProgram, stream httpmodel.View, sc *Scratch) bool {
	buf := sc.content[:0]
	if stream == rawStream {
		buf = append(buf, p.Method...)
		buf = append(buf, ' ')
		buf = append(buf, p.Path...)
		buf = append(buf, ' ')
		buf = append(buf, p.Proto...)
		buf = append(buf, '\n')
		buf = appendCookie(buf, p)
		buf = append(buf, '\n')
		buf = append(buf, p.Body...)
	} else {
		// Decoded spans join with the same separator as fields, so a
		// token can never straddle two spans — matching the prefilter,
		// which scanned each span in isolation.
		sc.fieldBuf = sc.fieldBuf[:0]
		sc.fieldBuf = append(sc.fieldBuf, p.Method...)
		sc.fieldBuf = append(sc.fieldBuf, ' ')
		sc.fieldBuf = append(sc.fieldBuf, p.Path...)
		sc.fieldBuf = append(sc.fieldBuf, ' ')
		sc.fieldBuf = append(sc.fieldBuf, p.Proto...)
		buf = appendDecodedSpans(buf, stream, sc.fieldBuf, &sc.views)
		sc.fieldBuf = appendCookie(sc.fieldBuf[:0], p)
		buf = appendDecodedSpans(buf, stream, sc.fieldBuf, &sc.views)
		buf = appendDecodedSpans(buf, stream, p.Body, &sc.views)
	}
	sc.content = buf
	pos := 0
	for _, tok := range pr.toks {
		idx := bytes.Index(buf[pos:], tok)
		if idx < 0 {
			return false
		}
		pos += idx + len(tok)
	}
	return true
}

func appendCookie(buf []byte, p *httpmodel.Packet) []byte {
	first := true
	for i := range p.Headers {
		if equalFoldCookie(p.Headers[i].Name) {
			if !first {
				buf = append(buf, "; "...)
			}
			buf = append(buf, p.Headers[i].Value...)
			first = false
		}
	}
	return buf
}

// equalFoldCookie is strings.EqualFold(name, "Cookie") without the
// generic fold machinery.
func equalFoldCookie(name string) bool {
	if len(name) != 6 {
		return false
	}
	const lower = "cookie"
	for i := 0; i < 6; i++ {
		c := name[i]
		if c >= 'A' && c <= 'Z' {
			c += 'a' - 'A'
		}
		if c != lower[i] {
			return false
		}
	}
	return true
}

// appendDecodedSpans appends every decoded span of field under view,
// each terminated by '\n'.
func appendDecodedSpans(buf []byte, view httpmodel.View, field []byte, vs *httpmodel.ViewScratch) []byte {
	httpmodel.VisitDecodedView(view, field, vs, func(dec []byte) {
		buf = append(buf, dec...)
		buf = append(buf, '\n')
	})
	return buf
}

// compileKinds partitions the set into per-kind programs. perSig holds
// each signature's distinct token IDs. Fast conjunctions keep their
// postings; extended and subsequence signatures are pulled out of the
// postings index (needed[si] = 0) and resolved by matchExtInto.
func (e *Engine) compileKinds(set *signature.Set, perSig [][]int32) {
	for si, sig := range set.Signatures {
		if !signature.ValidKind(sig.Kind) {
			// Unknown kind: never matches (and never reaches postings).
			e.needed[si] = 0
			continue
		}
		vm := httpmodel.ViewMaskOf(sig.Views)
		kind := sig.EffectiveKind()
		if kind == signature.KindConjunction && vm == 0 {
			continue // fast path, already wired
		}
		e.needed[si] = 0 // keep out of the postings index
		if len(perSig[si]) == 0 {
			continue // token-less signatures never match
		}
		e.viewMask |= vm
		switch kind {
		case signature.KindConjunction:
			e.extConj = append(e.extConj, extProgram{
				si: int32(si), tokens: perSig[si], views: vm,
			})
		case signature.KindSubsequence:
			toks := make([][]byte, len(sig.Tokens))
			for i, t := range sig.Tokens {
				toks[i] = []byte(t)
			}
			e.subseq = append(e.subseq, subseqProgram{
				si: int32(si), tokens: perSig[si], toks: toks, views: vm,
			})
		}
	}
}
